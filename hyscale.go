// Package hyscale is the public API of this repository: a faithful,
// simulation-backed reproduction of "HyScale: Hybrid and Network Scaling of
// Dockerized Microservices in Cloud Data Centres" (Wong, Kwan, Jacobsen,
// Muthusamy — ICDCS 2019).
//
// The package exposes three layers:
//
//   - Algorithms: the paper's autoscalers — the Kubernetes HPA baseline, the
//     dedicated network scaler, and the two hybrid HyScale algorithms — as
//     pure decision functions over cluster snapshots (NewKubernetes,
//     NewNetworkHPA, NewHyScaleCPU, NewHyScaleCPUMem).
//
//   - Platform: the autoscaler platform of §V (Monitor, node managers, load
//     balancers) wired to a deterministic cluster simulator that reproduces
//     the physical effects of §III (CPU co-location contention, the memory
//     swap cliff, NIC tx-queue contention). Build one with NewSimulation.
//
//   - Experiments: a harness that regenerates every table and figure of the
//     paper's evaluation (see the Run* functions and cmd/hyscale-bench).
//
// A minimal session:
//
//	sim, _ := hyscale.NewSimulation(hyscale.SimConfig{
//		Seed:      1,
//		Nodes:     19,
//		Algorithm: hyscale.AlgoHyScaleCPUMem,
//	})
//	svc := hyscale.CPUBoundService("api", 0.12)
//	_ = sim.AddService(svc, 0.5, hyscale.WaveLoad(12, 0.3, 8*time.Minute))
//	_ = sim.Run(30 * time.Minute)
//	fmt.Println(sim.Report())
package hyscale

import (
	"fmt"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/obs"
	"hyscale/internal/platform"
	"hyscale/internal/resilience"
	"hyscale/internal/runner"
	"hyscale/internal/scalermgr"
	"hyscale/internal/workload"
)

// AlgorithmName selects one of the paper's autoscaling algorithms.
type AlgorithmName string

// The four algorithms evaluated in the paper.
const (
	// AlgoKubernetes is the horizontal CPU autoscaler baseline (§IV-A1).
	AlgoKubernetes AlgorithmName = "kubernetes"
	// AlgoNetwork is the dedicated horizontal network scaler (§IV-A2).
	AlgoNetwork AlgorithmName = "network"
	// AlgoHyScaleCPU is the CPU-only hybrid algorithm (§IV-B1).
	AlgoHyScaleCPU AlgorithmName = "hybrid"
	// AlgoHyScaleCPUMem is the CPU+memory hybrid algorithm (§IV-B2).
	AlgoHyScaleCPUMem AlgorithmName = "hybridmem"
	// AlgoManager is the multi-metric scaler manager: CPU, memory, network
	// and queue-depth scalers over stable/burst sliding windows, merged
	// max-wins (see internal/scalermgr).
	AlgoManager AlgorithmName = "manager"
	// AlgoManagerCost is the manager with the cost-optimal allocator on top:
	// optimizer → fallback → hold decision hierarchy, binpack placement,
	// drain-preferring scale-in and retention-aware scale-to-zero.
	AlgoManagerCost AlgorithmName = "manager-cost"
	// AlgoNone disables autoscaling (fixed allocations).
	AlgoNone AlgorithmName = "none"
)

// NewAlgorithm constructs a scaling algorithm with the paper's default
// parameters (5 s decisions, 3 s/50 s rescale intervals, 0.1 tolerance,
// 0.1/0.25 CPU thresholds). Beyond the four base names it accepts the
// runner's ablation suffixes ("hybridmem-noreclaim", ...) and the
// "-predictive" wrapper. AlgoNone (and "") returns a nil algorithm.
func NewAlgorithm(name AlgorithmName) (core.Algorithm, error) {
	algo, err := runner.NewAlgorithm(string(name), core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("hyscale: %w", err)
	}
	return algo, nil
}

// SimConfig configures a Simulation. Zero-valued fields fall back to the
// paper's experimental setup (19 worker nodes of 4 cores / 8 GiB / 1 Gbps,
// 5 s monitor period, 100 ms physics tick).
type SimConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Nodes is the number of worker machines (default 19).
	Nodes int
	// Algorithm selects the autoscaler (default AlgoHyScaleCPUMem).
	Algorithm AlgorithmName
	// Zones shards the control plane: the node pool is partitioned into this
	// many zones, each governed by its own arbiter (a full Monitor over the
	// zone's nodes), under a thin global allocator that assigns services to
	// zones and leases idle machines across zone boundaries when a zone runs
	// out of capacity. Zero or one keeps the classic single central monitor
	// and its byte-identical output.
	Zones int
	// ZoneLeaseHeadroomCPU is the per-node free-CPU threshold below which a
	// zone is considered starved and proactively leases an idle machine
	// before its poll (default 1 CPU; only meaningful with Zones > 1).
	ZoneLeaseHeadroomCPU float64
	// EvacuateZones enables the zone disaster-recovery path: a zone whose
	// nodes are all ruled dead has its services re-homed into surviving
	// zones and migrated back when it heals. Requires Zones > 1 and
	// SelfHealing.
	EvacuateZones bool
	// ZoneSpilloverZones bounds how many zones one evacuated service may
	// span when no single surviving zone fits it (<= 1 disables spillover).
	ZoneSpilloverZones int
	// ZoneReadoptAfter is the anti-flap cooldown before an evacuated service
	// migrates back into its healed home zone (default 30 s).
	ZoneReadoptAfter time.Duration
	// MonitorPeriod is the decision period (default 5 s).
	MonitorPeriod time.Duration
	// NodeCPU / NodeMemMB / NodeNetMbps resize the machines (defaults
	// 4 / 8192 / 1000).
	NodeCPU     float64
	NodeMemMB   float64
	NodeNetMbps float64
	// Faults configures deterministic control-plane fault injection
	// (failed docker updates, failed/slow replica starts, dropped stats
	// queries, black-holed backends). The zero value injects nothing.
	Faults faults.Config
	// DisableHardening turns off the control plane's resilience machinery
	// (retry/backoff, stale-snapshot degradation, LB health checks) so the
	// cost of faults can be measured unmitigated.
	DisableHardening bool
	// SelfHealing configures the Monitor's failure detector, desired-state
	// reconciler and checkpoint/restore. The zero value disables all three;
	// start from DefaultSelfHealing for the recommended thresholds.
	SelfHealing SelfHealingConfig
	// Observe enables the decision-trace journal (see Simulation.Journal):
	// every scaling decision with its observed inputs and outcome, plus
	// per-service time series sampled each monitor period. Off by default —
	// disabled observation costs nothing.
	Observe bool
	// CallGraph declares inter-service call edges: each completed request of
	// an upstream service fans calls out to downstream services, with
	// latency composition, bounded per-replica queues and fail-fast error
	// propagation. Empty (the default) keeps every service independent and
	// executes exactly the pre-call-graph code paths.
	CallGraph CallGraph
	// Resilience enables the cascading-failure defenses on call-graph runs:
	// per-edge circuit breakers, budgeted retries, deadline propagation and
	// adaptive load shedding. The zero value disables all of them.
	Resilience ResilienceConfig
	// Manager tunes the AlgoManager / AlgoManagerCost algorithms — sliding
	// window widths, per-scaler weights and targets, merge policy, and the
	// cost allocator's freshness/retention knobs. Nil means scalermgr
	// defaults; ignored by every other algorithm.
	Manager *ManagerConfig
}

// FaultConfig re-exports the fault-injection configuration for callers of
// the public API.
type FaultConfig = faults.Config

// FaultWindow scopes fault injection to a target and a time interval.
type FaultWindow = faults.Window

// SelfHealingConfig configures the Monitor's failure detector, desired-state
// reconciler and checkpoint/restore.
type SelfHealingConfig = monitor.SelfHealing

// RecoveryCounts tallies the self-healing layer's activity: detector
// transitions, lost/replaced/re-adopted replicas and monitor restarts.
type RecoveryCounts = monitor.RecoveryCounts

// NodeCondition is one node's failure-detector state.
type NodeCondition = monitor.NodeCondition

// DefaultSelfHealing returns the recommended self-healing settings (suspect
// after 2 missed polls, dead after 4, 10 s re-placement cooldown,
// checkpointing every poll).
func DefaultSelfHealing() SelfHealingConfig { return monitor.DefaultSelfHealing() }

// Simulation is a fully wired autoscaler platform running on the simulated
// cluster. It wraps the internal platform with a stable public surface.
type Simulation struct {
	world *platform.World
}

// platformConfig lowers the public SimConfig onto the internal platform
// configuration, filling paper defaults for zero-valued fields.
func (cfg SimConfig) platformConfig() platform.Config {
	pc := platform.DefaultConfig(cfg.Seed)
	if cfg.Nodes > 0 {
		pc.Nodes = cfg.Nodes
	}
	if cfg.MonitorPeriod > 0 {
		pc.MonitorPeriod = cfg.MonitorPeriod
	}
	if cfg.NodeCPU > 0 {
		pc.NodeTemplate.Capacity.CPU = cfg.NodeCPU
	}
	if cfg.NodeMemMB > 0 {
		pc.NodeTemplate.Capacity.MemMB = cfg.NodeMemMB
	}
	if cfg.NodeNetMbps > 0 {
		pc.NodeTemplate.Capacity.NetMbps = cfg.NodeNetMbps
		pc.NodeTemplate.Net.CapacityMbps = cfg.NodeNetMbps
	}
	pc.Zones = cfg.Zones
	pc.ZoneLeaseHeadroomCPU = cfg.ZoneLeaseHeadroomCPU
	pc.EvacuateZones = cfg.EvacuateZones
	pc.ZoneSpilloverZones = cfg.ZoneSpilloverZones
	pc.ZoneReadoptAfter = cfg.ZoneReadoptAfter
	pc.Faults = cfg.Faults
	pc.HardeningOff = cfg.DisableHardening
	pc.SelfHealing = cfg.SelfHealing
	pc.Observe = cfg.Observe
	pc.CallGraph = cfg.CallGraph
	pc.Resilience = cfg.Resilience
	return pc
}

// algorithmName returns the configured algorithm, defaulting to the paper's
// flagship HYSCALE_CPU+Mem.
func (cfg SimConfig) algorithmName() AlgorithmName {
	if cfg.Algorithm == "" {
		return AlgoHyScaleCPUMem
	}
	return cfg.Algorithm
}

// NewSimulation builds a simulation from cfg. It compiles the config to a
// RunSpec and materialises it through the same runner layer every experiment
// uses.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	spec := NewRunSpec("simulation", cfg, 0)
	w, _, err := runner.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("hyscale: %w", err)
	}
	return &Simulation{world: w}, nil
}

// AddService registers a microservice with its utilization target and load
// pattern and deploys its minimum replicas.
func (s *Simulation) AddService(spec workload.ServiceSpec, targetUtil float64, pattern loadgen.Pattern) error {
	return s.world.AddService(spec, targetUtil, pattern)
}

// Run advances the simulation to the given horizon of simulated time.
func (s *Simulation) Run(d time.Duration) error { return s.world.Run(d) }

// Report returns the aggregate user-perceived performance summary.
func (s *Simulation) Report() metrics.Summary { return s.world.Summary() }

// ServiceReport returns one service's summary.
func (s *Simulation) ServiceReport(name string) metrics.Summary {
	return s.world.Recorder().SummarizeService(name)
}

// Actions returns the cumulative scaling-operation counters, summed across
// zone arbiters when the control plane is zoned.
func (s *Simulation) Actions() monitor.ActionCounts { return s.world.Control().Counts() }

// ConnFailures breaks connection failures down by cause (all replicas
// starting, no backend at all, injected backend outage).
func (s *Simulation) ConnFailures() platform.ConnFailureBreakdown { return s.world.ConnFailures() }

// Recovery returns the self-healing counters: detector transitions,
// lost/replaced/re-adopted replicas and monitor restarts. All zero unless
// SimConfig.SelfHealing enabled the layer.
func (s *Simulation) Recovery() RecoveryCounts { return s.world.Control().Recovery() }

// NodeConditions returns every attached node's failure-detector state.
func (s *Simulation) NodeConditions() []NodeCondition { return s.world.Control().NodeConditions() }

// Replicas returns the live replica count of a service.
func (s *Simulation) Replicas(service string) int {
	return s.world.Control().ReplicaCount(service)
}

// ZoneSummary is one zone arbiter's merged ledger (nodes, services, replicas,
// action and recovery counters).
type ZoneSummary = monitor.ZoneSummary

// CrossZoneCounts tallies the global allocator's cross-zone activity.
type CrossZoneCounts = monitor.CrossZoneCounts

// ZoneSummaries returns one ledger per zone arbiter, in zone order; nil when
// the control plane is not zoned (SimConfig.Zones <= 1).
func (s *Simulation) ZoneSummaries() []ZoneSummary { return s.world.ZoneSummaries() }

// CrossZone returns the global allocator's node-lease counters (all zero
// when the control plane is not zoned).
func (s *Simulation) CrossZone() CrossZoneCounts { return s.world.CrossZone() }

// EvacCounts tallies zone evacuations, re-adoptions, displaced replicas and
// spillover placements (the disaster-recovery path).
type EvacCounts = monitor.EvacCounts

// ZoneEvac returns the zone disaster-recovery counters, nil unless the
// control plane is zoned and SimConfig.EvacuateZones was set.
func (s *Simulation) ZoneEvac() *EvacCounts { return s.world.ZoneEvac() }

// ClampedEvents counts simulator events that had to be clamped to "now"
// because a component scheduled them in the past. Non-zero values flag
// stale-timestamp bugs in custom scenario code.
func (s *Simulation) ClampedEvents() uint64 { return s.world.ClampedEvents() }

// World exposes the underlying platform for advanced scenarios (manual
// placement, stress containers, custom events). Most callers should not
// need it.
func (s *Simulation) World() *platform.World { return s.world }

// --- Call graphs and resilience ---------------------------------------------

// CallGraph declares the per-service call DAG: which downstream services each
// request fans out to, with what probability or count.
type CallGraph = workload.CallGraph

// CallEdge is one dependency edge of a CallGraph.
type CallEdge = workload.CallEdge

// ManagerConfig tunes the multi-metric scaler manager (AlgoManager /
// AlgoManagerCost): window widths, per-scaler weights/targets, the merge
// policy and the cost allocator's knobs.
type ManagerConfig = scalermgr.Config

// ManagerScalerConfig configures one scaler inside the manager.
type ManagerScalerConfig = scalermgr.ScalerConfig

// ManagerServiceTargets carries one service's SLO/cost objectives for the
// manager's cost-optimal allocator.
type ManagerServiceTargets = scalermgr.ServiceTargets

// ManagerRecommendation is one scaler's latest per-service recommendation,
// surfaced for observability.
type ManagerRecommendation = scalermgr.Recommendation

// ManagerRecommendations returns the multi-metric manager's latest
// per-scaler recommendations, nil when another algorithm is running.
func (s *Simulation) ManagerRecommendations() []ManagerRecommendation {
	return s.world.ManagerRecommendations()
}

// ResilienceConfig enables and tunes the cascading-failure defenses:
// per-edge circuit breakers, budgeted retries, deadline propagation and
// adaptive load shedding. The zero value disables all of them.
type ResilienceConfig = resilience.Config

// BreakerConfig parameterises the per-edge circuit breakers
// (ResilienceConfig.Breakers).
type BreakerConfig = resilience.BreakerConfig

// RetryConfig parameterises budgeted client retries (ResilienceConfig.Retry).
type RetryConfig = resilience.RetryConfig

// DeadlineConfig enables deadline propagation down the call chain
// (ResilienceConfig.Deadlines).
type DeadlineConfig = resilience.DeadlineConfig

// ShedConfig parameterises queue-occupancy load shedding
// (ResilienceConfig.Shedding).
type ShedConfig = resilience.ShedConfig

// ResilienceCounters tallies the defense layer's activity: shed requests,
// retries issued and denied, deadline misses, breaker short-circuits and
// opens.
type ResilienceCounters = resilience.Counters

// BreakerState is one circuit breaker's position (closed, open, half-open).
type BreakerState = resilience.BreakerState

// CascadeStats aggregates a call-graph run's root-request outcomes and
// per-edge traffic accounting.
type CascadeStats = platform.CascadeStats

// CascadeStats returns the call-graph accounting: root-request outcomes and
// per-edge issued/delivered/dropped counts. Zero unless SimConfig.CallGraph
// was set.
func (s *Simulation) CascadeStats() CascadeStats { return s.world.CascadeStats() }

// ResilienceCounters returns the defense layer's cumulative counters. Zero
// unless SimConfig.Resilience enabled a defense.
func (s *Simulation) ResilienceCounters() ResilienceCounters {
	return s.world.Resilience().Counters()
}

// BreakerStates returns every call-graph edge's current breaker state (empty
// unless breakers are enabled).
func (s *Simulation) BreakerStates() map[string]BreakerState {
	return s.world.Resilience().BreakerStates(s.world.Engine().Now())
}

// --- Observability ----------------------------------------------------------

// RunJournal is the decision-trace journal recorded when SimConfig.Observe is
// set: every scaling decision with its observed inputs and outcome, plus
// per-service time series. All methods are nil-safe.
type RunJournal = obs.Journal

// ScalingDecision is one journaled scaler decision.
type ScalingDecision = obs.Decision

// ServiceSample is one per-service time-series point, sampled each monitor
// period.
type ServiceSample = obs.Sample

// RunEvent is one journaled self-healing event (detector transition,
// reconcile step or monitor restart).
type RunEvent = obs.Event

// Journal returns the run's decision-trace journal, or nil when
// SimConfig.Observe was off. The nil journal is safe to query.
func (s *Simulation) Journal() *RunJournal { return s.world.Journal() }

// Decisions returns every journaled scaling decision in simulated-time order
// (empty unless SimConfig.Observe was set).
func (s *Simulation) Decisions() []ScalingDecision { return s.world.Journal().Decisions() }

// Samples returns every journaled per-service time-series point in
// simulated-time order (empty unless SimConfig.Observe was set).
func (s *Simulation) Samples() []ServiceSample { return s.world.Journal().Samples() }

// Events returns every journaled self-healing event in simulated-time order
// (empty unless SimConfig.Observe and SimConfig.SelfHealing were set).
func (s *Simulation) Events() []RunEvent { return s.world.Journal().Events() }

// --- RunSpec layer ----------------------------------------------------------

// RunSpec is the serializable description of one complete run — the unit the
// executor fans out. See internal/runner for the field reference.
type RunSpec = runner.RunSpec

// RunResult is everything one RunSpec produces.
type RunResult = runner.Result

// ServiceRun couples a service spec with its target utilization and load.
type ServiceRun = runner.ServiceRun

// LoadSpec is the declarative form of a load pattern.
type LoadSpec = runner.LoadSpec

// RunTiming is one run's wall-clock cost, reported by ExecuteSpecs.
type RunTiming = runner.Timing

// LoadSpecFor reflects a concrete load pattern into its declarative spec.
func LoadSpecFor(p loadgen.Pattern) LoadSpec { return runner.FromPattern(p) }

// NewRunSpec compiles a SimConfig into a RunSpec with the given name and
// simulated duration. Services can then be appended declaratively:
//
//	spec := hyscale.NewRunSpec("api-wave", hyscale.SimConfig{Seed: 1}, 30*time.Minute)
//	spec.Services = append(spec.Services, hyscale.ServiceRun{
//		Spec:   hyscale.CPUBoundService("api", 0.12),
//		Target: 0.5,
//		Load:   hyscale.LoadSpecFor(hyscale.WaveLoad(12, 0.3, 8*time.Minute)),
//	})
//	results, timings, err := hyscale.ExecuteSpecs(0, 1, []hyscale.RunSpec{spec})
func NewRunSpec(name string, cfg SimConfig, duration time.Duration) RunSpec {
	return RunSpec{
		Name:      name,
		Seed:      cfg.Seed,
		Platform:  cfg.platformConfig(),
		Algorithm: string(cfg.algorithmName()),
		Manager:   cfg.Manager,
		Duration:  duration,
	}
}

// ExecuteSpecs fans independent RunSpecs across a bounded worker pool
// (workers <= 0 uses GOMAXPROCS) and returns results in spec order. Output
// is bit-identical for any worker count: each run is an isolated world, and
// specs with Seed zero get a seed derived from (rootSeed, spec name) before
// any worker starts.
func ExecuteSpecs(workers int, rootSeed int64, specs []RunSpec) ([]RunResult, []RunTiming, error) {
	return runner.Execute(workers, rootSeed, specs)
}

// --- Service spec helpers -------------------------------------------------

func baseSpec(name string, kind workload.Kind) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: kind,
		CPUOverheadPerRequest: 0.01,
		BaselineMemMB:         300,
		InitialReplicaCPU:     1,
		InitialReplicaMemMB:   768,
		MinReplicas:           1,
		MaxReplicas:           10,
		Timeout:               30 * time.Second,
	}
}

// CPUBoundService returns a CPU-bound microservice consuming cpuSeconds of
// CPU per request.
func CPUBoundService(name string, cpuSeconds float64) workload.ServiceSpec {
	s := baseSpec(name, workload.KindCPUBound)
	s.CPUPerRequest = cpuSeconds
	s.MemPerRequest = 2
	return s
}

// MemoryBoundService returns a memory-bound microservice holding memMB of
// transient memory per request.
func MemoryBoundService(name string, memMB float64) workload.ServiceSpec {
	s := baseSpec(name, workload.KindMemoryBound)
	s.CPUPerRequest = 0.02
	s.MemPerRequest = memMB
	return s
}

// NetworkBoundService returns a network-bound microservice transmitting
// megabits of response payload per request, shaped at capMbps per replica.
func NetworkBoundService(name string, megabits, capMbps float64) workload.ServiceSpec {
	s := baseSpec(name, workload.KindNetworkBound)
	s.CPUPerRequest = 0.03
	s.MemPerRequest = 4
	s.NetPerRequest = megabits
	s.InitialReplicaNetMbps = capMbps
	return s
}

// MixedService returns a mixed CPU+memory microservice.
func MixedService(name string, cpuSeconds, memMB float64) workload.ServiceSpec {
	s := baseSpec(name, workload.KindMixed)
	s.CPUPerRequest = cpuSeconds
	s.MemPerRequest = memMB
	s.InitialReplicaMemMB = 640
	return s
}

// --- Load pattern helpers ---------------------------------------------------

// ConstantLoad is a flat arrival rate in requests/second.
func ConstantLoad(rps float64) loadgen.Pattern { return loadgen.Constant{RPS: rps} }

// WaveLoad is the paper's low-burst stable pattern: a sinusoid around base
// with the given relative amplitude and period.
func WaveLoad(baseRPS, amplitude float64, period time.Duration) loadgen.Pattern {
	return loadgen.Wave{Base: baseRPS, Amplitude: amplitude, Period: period}
}

// BurstLoad is the paper's high-burst unstable pattern: rate jumps from base
// to peak for burstLen out of every period.
func BurstLoad(baseRPS, peakRPS float64, period, burstLen time.Duration) loadgen.Pattern {
	return loadgen.Burst{Base: baseRPS, Peak: peakRPS, Period: period, BurstLen: burstLen}
}

// NodeDefaults returns the paper's machine shape, for callers that want to
// inspect or derive cluster configs.
func NodeDefaults() cluster.NodeConfig { return cluster.DefaultNodeConfig("node") }
