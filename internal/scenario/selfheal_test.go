package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const withSelfHealing = `{
  "seed": 3,
  "nodes": 4,
  "algorithm": "hybridmem",
  "duration": "90s",
  "services": [
    {
      "name": "api", "kind": "cpu",
      "cpuPerRequest": 0.1, "targetUtil": 0.5,
      "load": {"type": "constant", "base": 8}
    }
  ],
  "failures": [{"node": "node-0", "at": "30s"}],
  "faults": {
    "windows": [
      {"kind": "monitor-crash", "from": "45s", "to": "60s"},
      {"kind": "partition", "target": "node-1", "direction": "actions", "from": "10s", "to": "20s"}
    ]
  },
  "selfHealing": {
    "enabled": true,
    "suspectAfter": 3,
    "deadAfter": 5,
    "cooldown": "15s",
    "checkpoint": true,
    "checkpointEvery": "10s"
  }
}`

func TestParseSelfHealingBlock(t *testing.T) {
	sc, err := Parse(strings.NewReader(withSelfHealing))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.SelfHealing.Config()
	if !cfg.Enabled || cfg.SuspectAfter != 3 || cfg.DeadAfter != 5 {
		t.Errorf("self-healing config = %+v", cfg)
	}
	if cfg.Cooldown != 15*time.Second || !cfg.Checkpoint || cfg.CheckpointEvery != 10*time.Second {
		t.Errorf("self-healing config = %+v", cfg)
	}
	fc := sc.Faults.Config(sc.Seed)
	if len(fc.Windows) != 2 {
		t.Fatalf("windows = %d", len(fc.Windows))
	}
	if fc.Windows[1].Direction != "actions" {
		t.Errorf("direction = %q", fc.Windows[1].Direction)
	}
	if err := fc.Validate(); err != nil {
		t.Errorf("valid windows rejected: %v", err)
	}
}

func TestSelfHealingValidation(t *testing.T) {
	bad := strings.Replace(withSelfHealing, `"direction": "actions"`, `"direction": "sideways"`, 1)
	sc, err := Parse(strings.NewReader(bad))
	if err == nil {
		err = sc.Validate()
	}
	if err == nil {
		t.Error("unknown partition direction accepted")
	}
}

func TestNilSelfHealingDisabled(t *testing.T) {
	var s *SelfHealing
	if cfg := s.Config(); cfg.Enabled {
		t.Error("nil selfHealing block enabled the detector")
	}
}

// TestShippedScenarioFilesParse guards the example scenarios in scenarios/
// against schema drift — every shipped file must parse and validate.
func TestShippedScenarioFilesParse(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario files found: %v", err)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Parse(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if filepath.Base(path) == "slo-cost-tradeoff.json" {
			if sc.Algorithm != "manager-cost" {
				t.Errorf("%s: algorithm = %q, want manager-cost", path, sc.Algorithm)
			}
			if sc.Manager == nil || len(sc.Manager.Services) == 0 {
				t.Errorf("%s: expected a manager block with per-service targets", path)
			}
			spec, err := sc.Compile()
			if err != nil {
				t.Errorf("%s: compile: %v", path, err)
			} else if spec.Manager == nil {
				t.Errorf("%s: compiled spec lost the manager config", path)
			}
		}
		if filepath.Base(path) == "datacenter-zones.json" {
			if sc.Zones == nil || sc.Zones.Count != 8 {
				t.Errorf("%s: expected a zones block with count 8, got %+v", path, sc.Zones)
			}
			if got := len(sc.ExpandedServices()); got != 500 {
				t.Errorf("%s: expands to %d services, want 500", path, got)
			}
			if sc.Nodes != 1000 {
				t.Errorf("%s: nodes = %d, want 1000", path, sc.Nodes)
			}
			spec, err := sc.Compile()
			if err != nil {
				t.Errorf("%s: compile: %v", path, err)
			} else if spec.Platform.Zones != 8 {
				t.Errorf("%s: compiled Platform.Zones = %d, want 8", path, spec.Platform.Zones)
			}
		}
		if filepath.Base(path) == "zone-outage.json" {
			if sc.Zones == nil || sc.Zones.Count != 4 {
				t.Errorf("%s: expected a zones block with count 4, got %+v", path, sc.Zones)
			}
			if sc.DR == nil || !sc.DR.Evacuate || sc.DR.SpilloverZones != 2 {
				t.Errorf("%s: expected dr block with evacuate + spilloverZones 2, got %+v", path, sc.DR)
			}
			if sc.Faults == nil || len(sc.Faults.Windows) == 0 || sc.Faults.Windows[0].Kind != "zone-outage" {
				t.Errorf("%s: expected a zone-outage fault window", path)
			}
			spec, err := sc.Compile()
			if err != nil {
				t.Errorf("%s: compile: %v", path, err)
			} else {
				if !spec.Platform.EvacuateZones {
					t.Errorf("%s: compiled spec lost EvacuateZones", path)
				}
				if spec.Platform.ZoneSpilloverZones != 2 {
					t.Errorf("%s: compiled ZoneSpilloverZones = %d, want 2", path, spec.Platform.ZoneSpilloverZones)
				}
			}
		}
	}
}
