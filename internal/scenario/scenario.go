// Package scenario provides a declarative JSON format for describing a
// complete autoscaling experiment — cluster shape, algorithm, microservices,
// load patterns and fault injections — so users can run custom scenarios
// with cmd/hyscale-sim without writing Go.
//
// A minimal scenario:
//
//	{
//	  "seed": 1,
//	  "nodes": 19,
//	  "algorithm": "hybridmem",
//	  "duration": "20m",
//	  "services": [
//	    {
//	      "name": "api", "kind": "cpu",
//	      "cpuPerRequest": 0.12, "targetUtil": 0.5,
//	      "load": {"type": "wave", "base": 15, "amplitude": 0.3, "period": "8m"}
//	    }
//	  ]
//	}
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/monitor"
	"hyscale/internal/platform"
	"hyscale/internal/resilience"
	"hyscale/internal/runner"
	"hyscale/internal/scalermgr"
	"hyscale/internal/workload"
)

// Duration wraps time.Duration with JSON support for "90s"/"20m" strings.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"30s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Load describes an arrival pattern.
type Load struct {
	// Type is one of constant|wave|burst|ramp|diurnal|flashcrowd, or none
	// for services that receive no external traffic (downstream tiers of a
	// call graph, driven purely by upstream calls).
	Type string `json:"type"`
	// Base is the base rate in requests/second (constant rate for
	// "constant", start rate for "ramp").
	Base float64 `json:"base"`
	// Peak is the burst/flash-crowd peak or ramp end rate.
	Peak float64 `json:"peak,omitempty"`
	// Amplitude is the relative swing for wave/diurnal.
	Amplitude float64 `json:"amplitude,omitempty"`
	// Period is the wave/burst cycle.
	Period Duration `json:"period,omitempty"`
	// BurstLen is the burst duration within each period.
	BurstLen Duration `json:"burstLen,omitempty"`
	// Phase shifts the pattern.
	Phase Duration `json:"phase,omitempty"`
	// RampUp is the ramp/flash-crowd rise time.
	RampUp Duration `json:"rampUp,omitempty"`
	// Start is the flash-crowd start time.
	Start Duration `json:"start,omitempty"`
	// Hold is the flash-crowd plateau.
	Hold Duration `json:"hold,omitempty"`
}

// Pattern materialises the load description.
func (l Load) Pattern() (loadgen.Pattern, error) {
	switch l.Type {
	case "", "none":
		return nil, nil
	case "constant":
		return loadgen.Constant{RPS: l.Base}, nil
	case "wave":
		return loadgen.Wave{Base: l.Base, Amplitude: l.Amplitude,
			Period: time.Duration(l.Period), PhaseShift: time.Duration(l.Phase)}, nil
	case "burst":
		return loadgen.Burst{Base: l.Base, Peak: l.Peak,
			Period: time.Duration(l.Period), BurstLen: time.Duration(l.BurstLen),
			PhaseShift: time.Duration(l.Phase)}, nil
	case "ramp":
		return loadgen.Ramp{Start: l.Base, End: l.Peak, Duration: time.Duration(l.RampUp)}, nil
	case "diurnal":
		return loadgen.Diurnal{Base: l.Base, DayAmplitude: l.Amplitude,
			Day: time.Duration(l.Period)}, nil
	case "flashcrowd":
		return loadgen.FlashCrowd{Base: l.Base, Peak: l.Peak,
			Start: time.Duration(l.Start), RampUp: time.Duration(l.RampUp),
			Hold: time.Duration(l.Hold), Decay: time.Duration(l.RampUp)}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown load type %q", l.Type)
	}
}

// Service describes one microservice. Zero-valued resource fields fall back
// to kind-appropriate defaults.
type Service struct {
	Name string `json:"name"`
	// Kind is one of cpu|mem|net|mixed.
	Kind string `json:"kind"`

	CPUPerRequest float64 `json:"cpuPerRequest,omitempty"`
	MemPerRequest float64 `json:"memPerRequest,omitempty"`
	NetPerRequest float64 `json:"netPerRequest,omitempty"`
	BaselineMemMB float64 `json:"baselineMemMB,omitempty"`
	BackgroundCPU float64 `json:"backgroundCPU,omitempty"`

	InitialCPU     float64 `json:"initialCPU,omitempty"`
	InitialMemMB   float64 `json:"initialMemMB,omitempty"`
	InitialNetMbps float64 `json:"initialNetMbps,omitempty"`

	MinReplicas int      `json:"minReplicas,omitempty"`
	MaxReplicas int      `json:"maxReplicas,omitempty"`
	Timeout     Duration `json:"timeout,omitempty"`
	StateSyncMB float64  `json:"stateSyncMB,omitempty"`
	// QueueLimit bounds one replica's in-flight admissions (0 = unbounded);
	// the back-pressure knob for call-graph scenarios.
	QueueLimit int `json:"queueLimit,omitempty"`

	TargetUtil float64 `json:"targetUtil,omitempty"`
	Load       Load    `json:"load"`

	// Count expands this entry into count services named name-000…name-NNN,
	// with each clone's periodic load phase-staggered across one period so
	// the fleet does not scale in lock-step. Zero or one declares a single
	// service. Large-cluster scenarios use this to declare hundreds of
	// services in a few lines.
	Count int `json:"count,omitempty"`
}

// expandServices returns the service list with every Count > 1 entry
// replaced by its clones.
func expandServices(services []Service) []Service {
	out := make([]Service, 0, len(services))
	for _, s := range services {
		if s.Count <= 1 {
			out = append(out, s)
			continue
		}
		for i := 0; i < s.Count; i++ {
			c := s
			c.Name = fmt.Sprintf("%s-%03d", s.Name, i)
			c.Count = 0
			if p := time.Duration(s.Load.Period); p > 0 {
				c.Load.Phase = Duration(time.Duration(s.Load.Phase) + p*time.Duration(i)/time.Duration(s.Count))
			}
			out = append(out, c)
		}
	}
	return out
}

// Spec materialises the service description with defaults filled in.
func (s Service) Spec() (workload.ServiceSpec, error) {
	var kind workload.Kind
	switch s.Kind {
	case "cpu":
		kind = workload.KindCPUBound
	case "mem":
		kind = workload.KindMemoryBound
	case "net":
		kind = workload.KindNetworkBound
	case "mixed":
		kind = workload.KindMixed
	default:
		return workload.ServiceSpec{}, fmt.Errorf("scenario: service %q has unknown kind %q", s.Name, s.Kind)
	}
	spec := workload.ServiceSpec{
		Name: s.Name, Kind: kind,
		CPUPerRequest:         s.CPUPerRequest,
		CPUOverheadPerRequest: 0.01,
		MemPerRequest:         s.MemPerRequest,
		NetPerRequest:         s.NetPerRequest,
		BaselineMemMB:         s.BaselineMemMB,
		BackgroundCPU:         s.BackgroundCPU,
		InitialReplicaCPU:     s.InitialCPU,
		InitialReplicaMemMB:   s.InitialMemMB,
		InitialReplicaNetMbps: s.InitialNetMbps,
		MinReplicas:           s.MinReplicas,
		MaxReplicas:           s.MaxReplicas,
		Timeout:               time.Duration(s.Timeout),
		StateSyncMB:           s.StateSyncMB,
		QueueLimit:            s.QueueLimit,
	}
	// Kind-appropriate defaults for the common fields.
	if spec.CPUPerRequest == 0 {
		switch kind {
		case workload.KindNetworkBound:
			spec.CPUPerRequest = 0.025
		case workload.KindMemoryBound:
			spec.CPUPerRequest = 0.02
		default:
			spec.CPUPerRequest = 0.12
		}
	}
	if spec.MemPerRequest == 0 {
		switch kind {
		case workload.KindMemoryBound:
			spec.MemPerRequest = 40
		case workload.KindMixed:
			spec.MemPerRequest = 90
		default:
			spec.MemPerRequest = 4
		}
	}
	if kind == workload.KindNetworkBound && spec.NetPerRequest == 0 {
		spec.NetPerRequest = 6
	}
	if spec.BaselineMemMB == 0 {
		spec.BaselineMemMB = 300
	}
	if spec.InitialReplicaCPU == 0 {
		spec.InitialReplicaCPU = 1
	}
	if spec.InitialReplicaMemMB == 0 {
		if kind == workload.KindMixed {
			spec.InitialReplicaMemMB = 640
		} else {
			spec.InitialReplicaMemMB = 768
		}
	}
	if kind == workload.KindNetworkBound && spec.InitialReplicaNetMbps == 0 {
		spec.InitialReplicaNetMbps = 50
	}
	if spec.MinReplicas == 0 {
		spec.MinReplicas = 1
	}
	if spec.MaxReplicas == 0 {
		spec.MaxReplicas = 10
	}
	if spec.Timeout == 0 {
		spec.Timeout = 30 * time.Second
	}
	return spec, spec.Validate()
}

// NodeFailure schedules a machine failure.
type NodeFailure struct {
	Node string   `json:"node"`
	At   Duration `json:"at"`
}

// FaultWindow forces one fault kind during an interval — see faults.Window.
type FaultWindow struct {
	// Kind is one of
	// vertical|start|stats|backend|monitor-crash|partition|slow-backend|
	// zone-outage|zone-partition.
	Kind string `json:"kind"`
	// Target narrows the window to one container/service/node; empty hits
	// every target (monitor-crash windows take no target). Zone kinds
	// require a decimal zone-index target and a zoned control plane
	// (zones.count >= 2).
	Target string   `json:"target,omitempty"`
	From   Duration `json:"from"`
	To     Duration `json:"to"`
	// Direction narrows a partition or zone-partition window to one side of
	// the monitor↔node link: "stats" (queries black-holed) or "actions"
	// (control actions black-holed); empty cuts both.
	Direction string `json:"direction,omitempty"`
	// Factor is the CPU-work multiplier of a slow-backend window (> 1).
	Factor float64 `json:"factor,omitempty"`
}

// Faults declares control-plane fault injection for a scenario.
type Faults struct {
	// Seed decorrelates the fault schedule from the scenario seed; zero
	// reuses the scenario seed.
	Seed int64 `json:"seed,omitempty"`

	VerticalFailProb float64 `json:"verticalFailProb,omitempty"`

	StartFailProb float64  `json:"startFailProb,omitempty"`
	StartSlowProb float64  `json:"startSlowProb,omitempty"`
	StartSlowBy   Duration `json:"startSlowBy,omitempty"`

	StatsDropProb float64 `json:"statsDropProb,omitempty"`

	BackendDownProb  float64  `json:"backendDownProb,omitempty"`
	BackendDownFor   Duration `json:"backendDownFor,omitempty"`
	BackendDownEvery Duration `json:"backendDownEvery,omitempty"`

	Windows []FaultWindow `json:"windows,omitempty"`

	// Hardening toggles the control plane's resilience mechanisms; omitted
	// means enabled.
	Hardening *bool `json:"hardening,omitempty"`
}

// Config materialises the fault declaration.
func (f *Faults) Config(scenarioSeed int64) faults.Config {
	if f == nil {
		return faults.Config{}
	}
	seed := f.Seed
	if seed == 0 {
		seed = scenarioSeed
	}
	cfg := faults.Config{
		Seed:             seed,
		VerticalFailProb: f.VerticalFailProb,
		StartFailProb:    f.StartFailProb,
		StartSlowProb:    f.StartSlowProb,
		StartSlowBy:      time.Duration(f.StartSlowBy),
		StatsDropProb:    f.StatsDropProb,
		BackendDownProb:  f.BackendDownProb,
		BackendDownFor:   time.Duration(f.BackendDownFor),
		BackendDownEvery: time.Duration(f.BackendDownEvery),
	}
	for _, w := range f.Windows {
		cfg.Windows = append(cfg.Windows, faults.Window{
			Kind:      faults.Kind(w.Kind),
			Target:    w.Target,
			From:      time.Duration(w.From),
			To:        time.Duration(w.To),
			Direction: w.Direction,
			Factor:    w.Factor,
		})
	}
	return cfg
}

// Resilience declares the cascading-failure defenses for a scenario. Each
// block is off when omitted, so a bare `"resilience": {}` enables nothing.
type Resilience struct {
	Breakers  *BreakerDecl  `json:"breakers,omitempty"`
	Retry     *RetryDecl    `json:"retry,omitempty"`
	Deadlines *DeadlineDecl `json:"deadlines,omitempty"`
	Shedding  *ShedDecl     `json:"shedding,omitempty"`
}

// BreakerDecl declares the per-edge circuit breakers.
type BreakerDecl struct {
	// FailuresToOpen is the consecutive-failure trip count (default 5).
	FailuresToOpen int `json:"failuresToOpen,omitempty"`
	// OpenFor is the open-state cooldown before half-open (default 5s).
	OpenFor Duration `json:"openFor,omitempty"`
	// HalfOpenProbes is the probe count a half-open breaker admits
	// (default 1).
	HalfOpenProbes int `json:"halfOpenProbes,omitempty"`
}

// RetryDecl declares the client retry policy and its budget.
type RetryDecl struct {
	// MaxAttempts bounds attempts per call slot including the first
	// (default 3).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// Backoff is the delay before each retry (default 100ms).
	Backoff Duration `json:"backoff,omitempty"`
	// Budget caps retries at Budget × first-attempt calls per calling
	// service (0 = unlimited — the retry-storm configuration).
	Budget float64 `json:"budget,omitempty"`
}

// DeadlineDecl enables deadline propagation down the call chain.
type DeadlineDecl struct {
	// Margin is subtracted per hop from the inherited deadline.
	Margin Duration `json:"margin,omitempty"`
}

// ShedDecl declares utilization-triggered adaptive load shedding.
type ShedDecl struct {
	// UtilThreshold is the replica admission-queue occupancy (in-flight over
	// queueLimit) above which shedding ramps (default 0.9).
	UtilThreshold float64 `json:"utilThreshold,omitempty"`
	// MaxShed caps the shed probability (default 0.95).
	MaxShed float64 `json:"maxShed,omitempty"`
}

// Config materialises the resilience declaration.
func (r *Resilience) Config() resilience.Config {
	if r == nil {
		return resilience.Config{}
	}
	var cfg resilience.Config
	if b := r.Breakers; b != nil {
		cfg.Breakers = &resilience.BreakerConfig{
			FailuresToOpen: b.FailuresToOpen,
			OpenFor:        time.Duration(b.OpenFor),
			HalfOpenProbes: b.HalfOpenProbes,
		}
	}
	if t := r.Retry; t != nil {
		cfg.Retry = &resilience.RetryConfig{
			MaxAttempts: t.MaxAttempts,
			Backoff:     time.Duration(t.Backoff),
			Budget:      t.Budget,
		}
	}
	if d := r.Deadlines; d != nil {
		cfg.Deadlines = &resilience.DeadlineConfig{Margin: time.Duration(d.Margin)}
	}
	if s := r.Shedding; s != nil {
		cfg.Shedding = &resilience.ShedConfig{
			UtilThreshold: s.UtilThreshold,
			MaxShed:       s.MaxShed,
		}
	}
	return cfg
}

// SelfHealing declares the Monitor's failure detector, reconciler and
// checkpoint/restore for a scenario.
type SelfHealing struct {
	// Enabled turns on the heartbeat failure detector and reconciler.
	Enabled bool `json:"enabled"`
	// SuspectAfter / DeadAfter are the consecutive-missed-poll thresholds
	// (defaults 2 and 4).
	SuspectAfter int `json:"suspectAfter,omitempty"`
	DeadAfter    int `json:"deadAfter,omitempty"`
	// Cooldown delays each lost replica's re-placement (default 10s).
	Cooldown Duration `json:"cooldown,omitempty"`
	// Checkpoint enables monitor decision-state snapshots, restored after
	// monitor-crash fault windows; CheckpointEvery spaces them (zero
	// snapshots every poll).
	Checkpoint      bool     `json:"checkpoint,omitempty"`
	CheckpointEvery Duration `json:"checkpointEvery,omitempty"`
}

// Config materialises the self-healing declaration.
func (s *SelfHealing) Config() monitor.SelfHealing {
	if s == nil {
		return monitor.SelfHealing{}
	}
	return monitor.SelfHealing{
		Enabled:         s.Enabled,
		SuspectAfter:    s.SuspectAfter,
		DeadAfter:       s.DeadAfter,
		Cooldown:        time.Duration(s.Cooldown),
		Checkpoint:      s.Checkpoint,
		CheckpointEvery: time.Duration(s.CheckpointEvery),
	}
}

// ManagerScaler declares one scaler inside the manager block.
type ManagerScaler struct {
	// Metric is one of cpu|memory|net|queue.
	Metric string `json:"metric"`
	// Weight is the scaler's vote under the "weighted" merge policy.
	Weight float64 `json:"weight,omitempty"`
	// Target overrides the scaler's utilization target (resource scalers:
	// fraction of request; queue: per-replica depth).
	Target float64 `json:"target,omitempty"`
	// StableWindow / BurstWindow override the manager-wide window widths.
	StableWindow Duration `json:"stableWindow,omitempty"`
	BurstWindow  Duration `json:"burstWindow,omitempty"`
}

// ManagerService declares one service's SLO/cost targets for the manager.
type ManagerService struct {
	Service string `json:"service"`
	// SLOMs is a response-time objective in milliseconds: under
	// "manager-cost" the service keeps burst headroom on scale-down.
	SLOMs float64 `json:"sloMs,omitempty"`
	// TargetUtil / QueueTarget override the per-service scaler targets.
	TargetUtil  float64 `json:"targetUtil,omitempty"`
	QueueTarget float64 `json:"queueTarget,omitempty"`
}

// Manager tunes the "manager" / "manager-cost" algorithm family: sliding
// window widths, per-scaler weights and targets, the merge policy, and the
// cost allocator's freshness/retention knobs. Omitted means scalermgr
// defaults; the block is ignored by every other algorithm.
type Manager struct {
	StableWindow Duration         `json:"stableWindow,omitempty"`
	BurstWindow  Duration         `json:"burstWindow,omitempty"`
	MergePolicy  string           `json:"mergePolicy,omitempty"`
	Scalers      []ManagerScaler  `json:"scalers,omitempty"`
	QueueTarget  float64          `json:"queueTarget,omitempty"`
	FreshWithin  Duration         `json:"freshWithin,omitempty"`
	Retention    Duration         `json:"retention,omitempty"`
	SLOTargetMs  float64          `json:"sloTargetMs,omitempty"`
	Services     []ManagerService `json:"services,omitempty"`
}

// Config materialises the manager declaration (nil-safe: nil yields nil,
// leaving the runner on scalermgr defaults).
func (m *Manager) Config() *scalermgr.Config {
	if m == nil {
		return nil
	}
	cfg := scalermgr.Config{
		StableWindow: time.Duration(m.StableWindow),
		BurstWindow:  time.Duration(m.BurstWindow),
		MergePolicy:  m.MergePolicy,
		QueueTarget:  m.QueueTarget,
		FreshWithin:  time.Duration(m.FreshWithin),
		Retention:    time.Duration(m.Retention),
		SLOTargetMs:  m.SLOTargetMs,
	}
	for _, s := range m.Scalers {
		cfg.Scalers = append(cfg.Scalers, scalermgr.ScalerConfig{
			Metric:       s.Metric,
			Weight:       s.Weight,
			Target:       s.Target,
			StableWindow: time.Duration(s.StableWindow),
			BurstWindow:  time.Duration(s.BurstWindow),
		})
	}
	for _, s := range m.Services {
		cfg.Services = append(cfg.Services, scalermgr.ServiceTargets{
			Service:     s.Service,
			SLOMs:       s.SLOMs,
			TargetUtil:  s.TargetUtil,
			QueueTarget: s.QueueTarget,
		})
	}
	return &cfg
}

// Zones declares a sharded control plane: the node pool is partitioned into
// Count zones, each governed by its own arbiter, under a thin global
// allocator that assigns services to zones and leases idle machines across
// zone boundaries when a zone runs out of capacity. Omitted (or count 1)
// keeps the classic single-monitor control plane.
type Zones struct {
	// Count is the number of zones (≥ 1; clamped to the node count).
	Count int `json:"count"`
	// LeaseHeadroomCPU is the per-node free-CPU threshold below which a zone
	// is considered starved and proactively leases an idle machine
	// (default 1 CPU).
	LeaseHeadroomCPU float64 `json:"leaseHeadroomCPU,omitempty"`
}

// DR declares the zone disaster-recovery path: evacuation of services out of
// a zone whose nodes are all ruled dead, optional cross-zone spillover when
// no single surviving zone fits a service, and migration home when the zone
// heals. Requires a zoned control plane (zones.count >= 2) and selfHealing —
// the per-zone failure detectors are what rules a zone down.
type DR struct {
	// Evacuate enables the path; false (or an omitted dr block) leaves a
	// dead zone's services down until it heals.
	Evacuate bool `json:"evacuate"`
	// SpilloverZones bounds how many zones one evacuated service may span
	// (home plus spill shards); <= 1 disables spillover.
	SpilloverZones int `json:"spilloverZones,omitempty"`
	// ReadoptAfter is how long a healed zone must stay fully healthy before
	// its services migrate home (default 30s).
	ReadoptAfter Duration `json:"readoptAfter,omitempty"`
}

// Scenario is a complete experiment description.
type Scenario struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`
	NodeCPU   float64 `json:"nodeCPU,omitempty"`
	NodeMemMB float64 `json:"nodeMemMB,omitempty"`
	// Algorithm is one of
	// kubernetes|network|hybrid|hybridmem|manager|manager-cost|none, with
	// optional ablation suffixes for the hybrids and the "-predictive"
	// wrapper for any of them.
	Algorithm string `json:"algorithm"`
	// MonitorPeriod overrides the 5s default.
	MonitorPeriod Duration `json:"monitorPeriod,omitempty"`
	// Duration is the simulated horizon.
	Duration Duration `json:"duration"`

	// Zones shards the control plane into per-zone arbiters (nil or count 1
	// keeps the single central monitor).
	Zones *Zones `json:"zones,omitempty"`
	// DR declares zone evacuation / re-adoption (nil disables; requires
	// zones.count >= 2 and selfHealing).
	DR *DR `json:"dr,omitempty"`

	Services []Service     `json:"services"`
	Failures []NodeFailure `json:"failures,omitempty"`
	// Faults declares control-plane fault injection (nil injects nothing).
	Faults *Faults `json:"faults,omitempty"`
	// SelfHealing declares the Monitor's failure detector, reconciler and
	// checkpoint/restore (nil disables all three).
	SelfHealing *SelfHealing `json:"selfHealing,omitempty"`
	// CallGraph declares inter-service call edges; every edge endpoint must
	// name a declared service and the graph must be acyclic. Nil keeps all
	// services independent.
	CallGraph *workload.CallGraph `json:"callGraph,omitempty"`
	// Resilience declares the cascading-failure defenses (nil disables all).
	Resilience *Resilience `json:"resilience,omitempty"`
	// Manager tunes the "manager"/"manager-cost" algorithms (nil keeps
	// scalermgr defaults; ignored by every other algorithm).
	Manager *Manager `json:"manager,omitempty"`
}

// Parse reads a scenario from JSON, rejecting unknown fields so typos
// surface instead of silently doing nothing. Decode errors carry the
// offending key path ("services[2].qeueLimit") rather than the std json
// package's bare message.
func Parse(r io.Reader) (*Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, describeError(data, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks the scenario for structural problems.
func (sc *Scenario) Validate() error {
	if sc.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if len(sc.Services) == 0 {
		return fmt.Errorf("scenario: at least one service required")
	}
	nodes := sc.Nodes
	if nodes == 0 {
		nodes = platform.DefaultConfig(0).Nodes
	}
	zones := 1
	if sc.Zones != nil {
		if sc.Zones.Count < 1 {
			return fmt.Errorf("scenario: zones.count must be >= 1, got %d", sc.Zones.Count)
		}
		if sc.Zones.Count > nodes {
			return fmt.Errorf("scenario: zones.count (%d) exceeds nodes (%d) — a zone with no nodes can never host a service", sc.Zones.Count, nodes)
		}
		if sc.Zones.LeaseHeadroomCPU < 0 {
			return fmt.Errorf("scenario: zones.leaseHeadroomCPU must be >= 0")
		}
		zones = sc.Zones.Count
	}
	if sc.DR != nil && sc.DR.Evacuate {
		if zones < 2 {
			return fmt.Errorf("scenario: dr.evacuate requires a zoned control plane (zones.count >= 2)")
		}
		if sc.SelfHealing == nil || !sc.SelfHealing.Enabled {
			return fmt.Errorf("scenario: dr.evacuate requires selfHealing (the zone failure detectors are its trigger)")
		}
	}
	if sc.DR != nil {
		if sc.DR.SpilloverZones < 0 {
			return fmt.Errorf("scenario: dr.spilloverZones must be >= 0")
		}
		if sc.DR.ReadoptAfter < 0 {
			return fmt.Errorf("scenario: dr.readoptAfter must be >= 0")
		}
	}
	if sc.Faults != nil {
		for i, w := range sc.Faults.Windows {
			if w.Kind != string(faults.KindZoneOutage) && w.Kind != string(faults.KindZonePartition) {
				continue
			}
			if zones < 2 {
				return fmt.Errorf("scenario: faults.windows[%d]: %s needs a zoned control plane (zones.count >= 2)", i, w.Kind)
			}
			zi, err := strconv.Atoi(w.Target)
			if err != nil || zi < 0 || zi >= zones {
				return fmt.Errorf("scenario: faults.windows[%d]: %s targets zone %q, want an index in [0,%d)", i, w.Kind, w.Target, zones)
			}
		}
	}
	for _, s := range sc.Services {
		if s.Count < 0 {
			return fmt.Errorf("scenario: service %q: count must be >= 0", s.Name)
		}
	}
	seen := make(map[string]bool)
	for _, s := range sc.ExpandedServices() {
		if s.Name == "" {
			return fmt.Errorf("scenario: service with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("scenario: duplicate service %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := s.Spec(); err != nil {
			return err
		}
		if _, err := s.Load.Pattern(); err != nil {
			return fmt.Errorf("scenario: service %q: %w", s.Name, err)
		}
	}
	if err := sc.Faults.Config(sc.Seed).Validate(); err != nil {
		return err
	}
	if sc.CallGraph != nil {
		if err := sc.CallGraph.Validate(seen); err != nil {
			return err
		}
	}
	if err := sc.Resilience.Config().Validate(); err != nil {
		return err
	}
	if sc.Manager != nil {
		if err := sc.Manager.Config().Validate(); err != nil {
			return err
		}
		for _, ms := range sc.Manager.Services {
			if !seen[ms.Service] {
				return fmt.Errorf("scenario: manager targets unknown service %q", ms.Service)
			}
		}
	}
	return nil
}

// Compile lowers the scenario onto the repository's common execution layer:
// one self-contained runner.RunSpec that Build, Run and the CLI all share.
func (sc *Scenario) Compile() (runner.RunSpec, error) {
	cfg := platform.DefaultConfig(sc.Seed)
	if sc.Nodes > 0 {
		cfg.Nodes = sc.Nodes
	}
	if sc.NodeCPU > 0 {
		cfg.NodeTemplate.Capacity.CPU = sc.NodeCPU
	}
	if sc.NodeMemMB > 0 {
		cfg.NodeTemplate.Capacity.MemMB = sc.NodeMemMB
	}
	if sc.MonitorPeriod > 0 {
		cfg.MonitorPeriod = time.Duration(sc.MonitorPeriod)
	}
	if sc.Zones != nil {
		cfg.Zones = sc.Zones.Count
		cfg.ZoneLeaseHeadroomCPU = sc.Zones.LeaseHeadroomCPU
	}
	if sc.DR != nil {
		cfg.EvacuateZones = sc.DR.Evacuate
		cfg.ZoneSpilloverZones = sc.DR.SpilloverZones
		cfg.ZoneReadoptAfter = time.Duration(sc.DR.ReadoptAfter)
	}
	cfg.Faults = sc.Faults.Config(sc.Seed)
	if sc.Faults != nil && sc.Faults.Hardening != nil {
		cfg.HardeningOff = !*sc.Faults.Hardening
	}
	cfg.SelfHealing = sc.SelfHealing.Config()
	if sc.CallGraph != nil {
		cfg.CallGraph = *sc.CallGraph
	}
	cfg.Resilience = sc.Resilience.Config()

	spec := runner.RunSpec{
		Name:      "scenario",
		Seed:      sc.Seed,
		Platform:  cfg,
		Algorithm: sc.Algorithm,
		Manager:   sc.Manager.Config(),
		Duration:  time.Duration(sc.Duration),
	}
	for _, s := range sc.ExpandedServices() {
		svc, err := s.Spec()
		if err != nil {
			return runner.RunSpec{}, err
		}
		pattern, err := s.Load.Pattern()
		if err != nil {
			return runner.RunSpec{}, fmt.Errorf("scenario: service %q: %w", s.Name, err)
		}
		target := s.TargetUtil
		if target == 0 {
			target = 0.5
		}
		spec.Services = append(spec.Services, runner.ServiceRun{
			Spec: svc, Target: target, Load: runner.FromPattern(pattern),
		})
	}
	for _, f := range sc.Failures {
		spec.NodeFailures = append(spec.NodeFailures, runner.NodeFailure{
			At: time.Duration(f.At), Node: f.Node,
		})
	}
	return spec, nil
}

// ExpandedServices returns the declared services with every count-expanded
// entry replaced by its clones — the list Compile actually deploys.
func (sc *Scenario) ExpandedServices() []Service {
	return expandServices(sc.Services)
}

// Build materialises the scenario into a runnable World.
func (sc *Scenario) Build() (*platform.World, error) {
	spec, err := sc.Compile()
	if err != nil {
		return nil, err
	}
	w, _, err := runner.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return w, nil
}

// buildAlgorithm delegates to the runner's algorithm naming (ablation
// suffixes and the -predictive wrapper included), erroring on names that do
// not resolve to a concrete algorithm.
func buildAlgorithm(name string) (core.Algorithm, error) {
	algo, err := runner.NewAlgorithm(name, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if algo == nil {
		return nil, fmt.Errorf("scenario: algorithm %q resolves to no autoscaler", name)
	}
	return algo, nil
}

// Run builds and runs the scenario, returning the world for inspection.
func (sc *Scenario) Run() (*platform.World, error) {
	spec, err := sc.Compile()
	if err != nil {
		return nil, err
	}
	res, err := runner.Run(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return res.World, nil
}
