package scenario

import (
	"strings"
	"testing"
	"time"
)

const minimal = `{
  "seed": 1,
  "nodes": 4,
  "algorithm": "hybridmem",
  "duration": "90s",
  "services": [
    {
      "name": "api", "kind": "cpu",
      "cpuPerRequest": 0.1, "targetUtil": 0.5,
      "load": {"type": "wave", "base": 10, "amplitude": 0.3, "period": "1m"}
    }
  ]
}`

func TestParseMinimal(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Nodes != 4 || sc.Algorithm != "hybridmem" {
		t.Errorf("parsed = %+v", sc)
	}
	if time.Duration(sc.Duration) != 90*time.Second {
		t.Errorf("duration = %v", sc.Duration)
	}
	spec, err := sc.Services[0].Spec()
	if err != nil {
		t.Fatal(err)
	}
	// Defaults filled in.
	if spec.BaselineMemMB != 300 || spec.MinReplicas != 1 || spec.MaxReplicas != 10 {
		t.Errorf("defaults not applied: %+v", spec)
	}
	if spec.Timeout != 30*time.Second {
		t.Errorf("timeout default = %v", spec.Timeout)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(minimal, `"seed": 1`, `"sede": 1`, 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("typo field accepted")
	}
}

func TestParseValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(string) string
	}{
		{"bad duration", func(s string) string { return strings.Replace(s, `"90s"`, `"ninety"`, 1) }},
		{"zero duration", func(s string) string { return strings.Replace(s, `"90s"`, `"0s"`, 1) }},
		{"no services", func(s string) string {
			return strings.Replace(s, `"services": [`, `"services": [], "failures": [`, 1)
		}},
		{"bad kind", func(s string) string { return strings.Replace(s, `"kind": "cpu"`, `"kind": "gpu"`, 1) }},
		{"bad load", func(s string) string { return strings.Replace(s, `"type": "wave"`, `"type": "sawtooth"`, 1) }},
		{"empty name", func(s string) string { return strings.Replace(s, `"name": "api"`, `"name": ""`, 1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.mutate(minimal))); err == nil {
				t.Error("invalid scenario accepted")
			}
		})
	}
}

func TestDuplicateServiceNames(t *testing.T) {
	dup := strings.Replace(minimal, `]
}`, `, {
      "name": "api", "kind": "cpu",
      "load": {"type": "constant", "base": 1}
    }]
}`, 1)
	if _, err := Parse(strings.NewReader(dup)); err == nil {
		t.Error("duplicate service accepted")
	}
}

func TestLoadPatternTypes(t *testing.T) {
	tests := []struct {
		load Load
		at   time.Duration
		want float64
	}{
		{Load{Type: "constant", Base: 7}, time.Hour, 7},
		{Load{Type: "ramp", Base: 0, Peak: 10, RampUp: Duration(10 * time.Second)}, Duration(5 * time.Second).toTime(), 5},
		{Load{Type: "burst", Base: 1, Peak: 9, Period: Duration(time.Minute), BurstLen: Duration(10 * time.Second)}, 5 * time.Second, 9},
		{Load{Type: "diurnal", Base: 10, Amplitude: 0.5, Period: Duration(time.Hour)}, 0, 10},
		{Load{Type: "flashcrowd", Base: 2, Peak: 20, Start: Duration(time.Minute), RampUp: Duration(time.Second), Hold: Duration(time.Minute)}, 90 * time.Second, 20},
	}
	for _, tt := range tests {
		p, err := tt.load.Pattern()
		if err != nil {
			t.Fatalf("%s: %v", tt.load.Type, err)
		}
		if got := p.Rate(tt.at); got != tt.want {
			t.Errorf("%s.Rate(%v) = %v, want %v", tt.load.Type, tt.at, got, tt.want)
		}
	}
}

func (d Duration) toTime() time.Duration { return time.Duration(d) }

func TestBuildAndRunEndToEnd(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.Completed < 500 {
		t.Errorf("completed = %d, want >= 500", s.Completed)
	}
	if s.FailedPercent() > 1 {
		t.Errorf("failed = %.2f%%", s.FailedPercent())
	}
}

func TestBuildWithFailures(t *testing.T) {
	js := strings.Replace(minimal, `"services"`, `"failures": [{"node": "node-1", "at": "30s"}], "services"`, 1)
	sc, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Cluster().Nodes()); got != 3 {
		t.Errorf("nodes = %d after failure, want 3", got)
	}
}

func TestBuildAlgorithms(t *testing.T) {
	for _, name := range []string{
		"kubernetes", "network", "hybrid", "hybridmem",
		"hybrid-noreclaim", "hybridmem-vertical-only", "hybrid-horizontal-only",
	} {
		a, err := buildAlgorithm(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Name() != name {
			t.Errorf("Name = %q, want %q", a.Name(), name)
		}
	}
	if _, err := buildAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// "none" handled at Build level: the scenario runs with a no-op scaler.
	js := strings.Replace(minimal, `"hybridmem"`, `"none"`, 1)
	sc, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Build(); err != nil {
		t.Errorf("algorithm none: %v", err)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration(90 * time.Second)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Errorf("marshal = %s", b)
	}
	var d2 Duration
	if err := d2.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Errorf("round trip = %v", d2)
	}
	if err := d2.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("numeric duration accepted")
	}
}
