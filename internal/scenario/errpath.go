package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
)

// This file rewrites the std json package's terse decode errors into ones
// that carry the offending key path. encoding/json reports an unknown field
// as `json: unknown field "qeueLimit"` with no location — useless in a
// scenario with a dozen services — so describeError re-walks the document
// against the Scenario struct's json tags to find where that key actually
// sits ("services[2].qeueLimit"). Type errors already carry a field path;
// they are just reformatted, and syntax errors gain a line/column.

// describeError enriches a Decode error with the offending key path.
func describeError(data []byte, err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		path := typeErr.Field
		if path == "" {
			path = "(document root)"
		}
		return fmt.Errorf("scenario: invalid value at %s: got JSON %s, want %s",
			path, typeErr.Value, typeErr.Type)
	}
	var synErr *json.SyntaxError
	if errors.As(err, &synErr) {
		line, col := lineCol(data, synErr.Offset)
		return fmt.Errorf("scenario: invalid JSON at line %d, column %d: %w", line, col, err)
	}
	if name, ok := unknownFieldName(err); ok {
		if path, found := findKeyPath(data, name); found {
			return fmt.Errorf("scenario: unknown field %q at %s", name, path)
		}
		return fmt.Errorf("scenario: unknown field %q", name)
	}
	return fmt.Errorf("scenario: %w", err)
}

// unknownFieldName extracts the field from `json: unknown field "x"`.
func unknownFieldName(err error) (string, bool) {
	msg := err.Error()
	const marker = `unknown field "`
	i := strings.Index(msg, marker)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, offset int64) (int, int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col := 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// findKeyPath locates field as an unknown key somewhere in the document,
// walking the generically-decoded value in lockstep with the Scenario
// struct's json tags.
func findKeyPath(data []byte, field string) (string, bool) {
	var v interface{}
	if json.Unmarshal(data, &v) != nil {
		return "", false
	}
	return findUnknown(v, reflect.TypeOf(Scenario{}), "", field)
}

// findUnknown recursively matches the decoded value against the struct
// shape; keys absent from the struct's tags are the unknown-field suspects.
func findUnknown(v interface{}, t reflect.Type, path, field string) (string, bool) {
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		m, ok := v.(map[string]interface{})
		if !ok {
			return "", false
		}
		fields := jsonFields(t)
		for key, val := range m {
			sub := key
			if path != "" {
				sub = path + "." + key
			}
			ft, known := fields[key]
			if !known {
				if key == field {
					return sub, true
				}
				continue
			}
			if p, found := findUnknown(val, ft, sub, field); found {
				return p, true
			}
		}
	case reflect.Slice, reflect.Array:
		arr, ok := v.([]interface{})
		if !ok {
			return "", false
		}
		for i, item := range arr {
			if p, found := findUnknown(item, t.Elem(), fmt.Sprintf("%s[%d]", path, i), field); found {
				return p, true
			}
		}
	case reflect.Map:
		m, ok := v.(map[string]interface{})
		if !ok {
			return "", false
		}
		for key, val := range m {
			sub := key
			if path != "" {
				sub = path + "." + key
			}
			if p, found := findUnknown(val, t.Elem(), sub, field); found {
				return p, true
			}
		}
	}
	return "", false
}

// jsonFields maps a struct's json keys to their field types, honouring tag
// renames and skipping "-" fields.
func jsonFields(t reflect.Type) map[string]reflect.Type {
	out := make(map[string]reflect.Type, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" {
			continue // unexported
		}
		name := f.Name
		if tag, ok := f.Tag.Lookup("json"); ok {
			base, _, _ := strings.Cut(tag, ",")
			if base == "-" {
				continue
			}
			if base != "" {
				name = base
			}
		}
		out[name] = f.Type
	}
	return out
}
