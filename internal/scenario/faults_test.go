package scenario

import (
	"strings"
	"testing"
	"time"

	"hyscale/internal/faults"
)

const withFaults = `{
  "seed": 3,
  "nodes": 4,
  "algorithm": "hybridmem",
  "duration": "90s",
  "services": [
    {
      "name": "api", "kind": "cpu",
      "cpuPerRequest": 0.1, "targetUtil": 0.5,
      "load": {"type": "constant", "base": 8}
    }
  ],
  "faults": {
    "verticalFailProb": 0.2,
    "startFailProb": 0.1,
    "startSlowProb": 0.15,
    "startSlowBy": "6s",
    "statsDropProb": 0.25,
    "backendDownProb": 0.1,
    "backendDownFor": "8s",
    "backendDownEvery": "1m",
    "windows": [
      {"kind": "stats", "target": "node-1", "from": "20s", "to": "40s"}
    ]
  }
}`

func TestParseFaultsBlock(t *testing.T) {
	sc, err := Parse(strings.NewReader(withFaults))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Faults.Config(sc.Seed)
	if cfg.Seed != 3 {
		t.Errorf("fault seed = %d, want scenario seed 3", cfg.Seed)
	}
	if cfg.VerticalFailProb != 0.2 || cfg.StatsDropProb != 0.25 {
		t.Errorf("probs = %+v", cfg)
	}
	if cfg.StartSlowBy != 6*time.Second || cfg.BackendDownFor != 8*time.Second {
		t.Errorf("durations = %+v", cfg)
	}
	if len(cfg.Windows) != 1 || cfg.Windows[0].Kind != faults.KindStats ||
		cfg.Windows[0].Target != "node-1" || cfg.Windows[0].From != 20*time.Second {
		t.Errorf("windows = %+v", cfg.Windows)
	}
	if !cfg.Enabled() {
		t.Error("faults config should be enabled")
	}
}

func TestParseFaultsValidation(t *testing.T) {
	bad := strings.Replace(withFaults, `"verticalFailProb": 0.2`, `"verticalFailProb": 1.7`, 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range fault probability accepted")
	}
	bogus := strings.Replace(withFaults, `"kind": "stats"`, `"kind": "bogus"`, 1)
	if _, err := Parse(strings.NewReader(bogus)); err == nil {
		t.Error("unknown fault window kind accepted")
	}
}

func TestBuildWiresFaultsAndHardening(t *testing.T) {
	sc, err := Parse(strings.NewReader(withFaults))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := w.FaultInjector()
	if inj == nil || !inj.Enabled() {
		t.Fatal("built world has no fault injector")
	}
	if !w.Monitor().Hardening.Enabled {
		t.Error("hardening should default to enabled")
	}

	// An explicit "hardening": false flips the switch.
	off := strings.Replace(withFaults, `"faults": {`, `"faults": {
    "hardening": false,`, 1)
	sc2, err := Parse(strings.NewReader(off))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := sc2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w2.Monitor().Hardening.Enabled {
		t.Error("hardening: false not honoured")
	}
}

func TestNilFaultsIsInert(t *testing.T) {
	var f *Faults
	cfg := f.Config(9)
	if cfg.Enabled() {
		t.Error("nil faults block produced an enabled config")
	}
}

func TestScenarioRunWithFaultsIsDeterministic(t *testing.T) {
	run := func() (uint64, float64) {
		sc, err := Parse(strings.NewReader(withFaults))
		if err != nil {
			t.Fatal(err)
		}
		w, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		s := w.Summary()
		return w.Monitor().Counts().StaleSnapshots, s.FailedPercent()
	}
	stale1, failed1 := run()
	stale2, failed2 := run()
	if stale1 != stale2 || failed1 != failed2 {
		t.Errorf("runs diverged: (%d, %v) vs (%d, %v)", stale1, failed1, stale2, failed2)
	}
	// The stats window (20s-40s, node-1) guarantees drops; the monitor must
	// have served at least one stale snapshot in its place.
	if stale1 == 0 {
		t.Error("expected stale snapshots from the stats window")
	}
}
