package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := Vector{CPU: 1, MemMB: 100, NetMbps: 10}
	b := Vector{CPU: 0.5, MemMB: 50, NetMbps: 5}

	got := a.Add(b)
	want := Vector{CPU: 1.5, MemMB: 150, NetMbps: 15}
	if got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}

	got = a.Sub(b)
	want = Vector{CPU: 0.5, MemMB: 50, NetMbps: 5}
	if got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
}

func TestSubMayGoNegative(t *testing.T) {
	a := Vector{CPU: 1}
	b := Vector{CPU: 2, MemMB: 10}
	got := a.Sub(b)
	if got.CPU != -1 || got.MemMB != -10 {
		t.Errorf("Sub = %v, want {-1 -10 0}", got)
	}
	if got.NonNegative() {
		t.Error("NonNegative() = true for negative vector")
	}
}

func TestScale(t *testing.T) {
	v := Vector{CPU: 2, MemMB: 10, NetMbps: 4}
	got := v.Scale(0.5)
	want := Vector{CPU: 1, MemMB: 5, NetMbps: 2}
	if got != want {
		t.Errorf("Scale(0.5) = %v, want %v", got, want)
	}
}

func TestClampNonNegative(t *testing.T) {
	v := Vector{CPU: -1, MemMB: 5, NetMbps: -0.001}
	got := v.ClampNonNegative()
	want := Vector{CPU: 0, MemMB: 5, NetMbps: 0}
	if got != want {
		t.Errorf("ClampNonNegative = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	a := Vector{CPU: 1, MemMB: 200, NetMbps: 3}
	b := Vector{CPU: 2, MemMB: 100, NetMbps: 3}
	if got := a.Min(b); got != (Vector{CPU: 1, MemMB: 100, NetMbps: 3}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (Vector{CPU: 2, MemMB: 200, NetMbps: 3}) {
		t.Errorf("Max = %v", got)
	}
}

func TestFitsIn(t *testing.T) {
	tests := []struct {
		name string
		v, o Vector
		want bool
	}{
		{"equal", Vector{CPU: 1, MemMB: 1, NetMbps: 1}, Vector{CPU: 1, MemMB: 1, NetMbps: 1}, true},
		{"smaller", Vector{CPU: 0.5}, Vector{CPU: 1, MemMB: 1}, true},
		{"cpu too big", Vector{CPU: 2}, Vector{CPU: 1, MemMB: 10}, false},
		{"mem too big", Vector{MemMB: 11}, Vector{CPU: 1, MemMB: 10}, false},
		{"net too big", Vector{NetMbps: 1}, Vector{CPU: 1, MemMB: 10}, false},
		{"epsilon slack", Vector{CPU: 1 + 1e-12}, Vector{CPU: 1}, true},
		{"zero fits zero", Vector{}, Vector{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.FitsIn(tt.o); got != tt.want {
				t.Errorf("FitsIn = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsZero(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector should be zero")
	}
	if (Vector{CPU: 0.001}).IsZero() {
		t.Error("non-zero vector reported zero")
	}
}

func TestString(t *testing.T) {
	s := Vector{CPU: 1.5, MemMB: 512, NetMbps: 100}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// sane filters out the extreme magnitudes quick generates by default, which
// overflow float64 arithmetic and are meaningless as resource amounts.
func sane(vs ...Vector) bool {
	for _, v := range vs {
		if anyNaN(v) || math.Abs(v.CPU) > 1e12 || math.Abs(v.MemMB) > 1e12 || math.Abs(v.NetMbps) > 1e12 {
			return false
		}
	}
	return true
}

// Property: Add then Sub round-trips.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b Vector) bool {
		if !sane(a, b) {
			return true
		}
		got := a.Add(b).Sub(b)
		const eps = 1e-6
		return math.Abs(got.CPU-a.CPU) < eps+math.Abs(a.CPU)*eps &&
			math.Abs(got.MemMB-a.MemMB) < eps+math.Abs(a.MemMB)*eps &&
			math.Abs(got.NetMbps-a.NetMbps) < eps+math.Abs(a.NetMbps)*eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClampNonNegative always yields a non-negative vector that fits
// no worse than the original.
func TestQuickClampNonNegative(t *testing.T) {
	f := func(v Vector) bool {
		if !sane(v) {
			return true
		}
		c := v.ClampNonNegative()
		return c.NonNegative() && c.CPU >= v.CPU-1e-9 && c.MemMB >= v.MemMB-1e-9 && c.NetMbps >= v.NetMbps-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Min fits in both arguments (for finite non-NaN inputs).
func TestQuickMinFits(t *testing.T) {
	f := func(a, b Vector) bool {
		if anyNaN(a) || anyNaN(b) {
			return true
		}
		m := a.Min(b)
		return m.FitsIn(a) && m.FitsIn(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaN(v Vector) bool {
	return math.IsNaN(v.CPU) || math.IsNaN(v.MemMB) || math.IsNaN(v.NetMbps)
}
