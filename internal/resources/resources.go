// Package resources defines the resource vector used throughout the
// simulator: CPU in fractional cores, memory in MiB and network bandwidth in
// Mbps. These are the three dimensions the HyScale paper scales (CPU shares,
// memory limits, tc egress bandwidth).
package resources

import (
	"fmt"
	"math"
)

// Vector is a point in the three-dimensional resource space. The zero value
// means "no resources". All fields are non-negative by convention; use
// ClampNonNegative after subtraction when a floor at zero is required.
type Vector struct {
	// CPU is measured in fractional cores (1.0 == one full core).
	CPU float64
	// MemMB is measured in MiB.
	MemMB float64
	// NetMbps is egress network bandwidth in megabits per second.
	NetMbps float64
}

// Add returns v + o component-wise.
func (v Vector) Add(o Vector) Vector {
	return Vector{CPU: v.CPU + o.CPU, MemMB: v.MemMB + o.MemMB, NetMbps: v.NetMbps + o.NetMbps}
}

// Sub returns v - o component-wise. The result may have negative components;
// callers that need a floor should chain ClampNonNegative.
func (v Vector) Sub(o Vector) Vector {
	return Vector{CPU: v.CPU - o.CPU, MemMB: v.MemMB - o.MemMB, NetMbps: v.NetMbps - o.NetMbps}
}

// Scale returns v with every component multiplied by k.
func (v Vector) Scale(k float64) Vector {
	return Vector{CPU: v.CPU * k, MemMB: v.MemMB * k, NetMbps: v.NetMbps * k}
}

// ClampNonNegative returns v with negative components replaced by zero.
func (v Vector) ClampNonNegative() Vector {
	return Vector{
		CPU:     math.Max(0, v.CPU),
		MemMB:   math.Max(0, v.MemMB),
		NetMbps: math.Max(0, v.NetMbps),
	}
}

// Min returns the component-wise minimum of v and o.
func (v Vector) Min(o Vector) Vector {
	return Vector{
		CPU:     math.Min(v.CPU, o.CPU),
		MemMB:   math.Min(v.MemMB, o.MemMB),
		NetMbps: math.Min(v.NetMbps, o.NetMbps),
	}
}

// Max returns the component-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	return Vector{
		CPU:     math.Max(v.CPU, o.CPU),
		MemMB:   math.Max(v.MemMB, o.MemMB),
		NetMbps: math.Max(v.NetMbps, o.NetMbps),
	}
}

// FitsIn reports whether every component of v is less than or equal to the
// corresponding component of o (within a small epsilon to absorb float
// accumulation error).
func (v Vector) FitsIn(o Vector) bool {
	const eps = 1e-9
	return v.CPU <= o.CPU+eps && v.MemMB <= o.MemMB+eps && v.NetMbps <= o.NetMbps+eps
}

// IsZero reports whether all components are exactly zero.
func (v Vector) IsZero() bool {
	return v.CPU == 0 && v.MemMB == 0 && v.NetMbps == 0
}

// NonNegative reports whether no component is negative (within epsilon).
func (v Vector) NonNegative() bool {
	const eps = 1e-9
	return v.CPU >= -eps && v.MemMB >= -eps && v.NetMbps >= -eps
}

// String implements fmt.Stringer with a compact human-readable form.
func (v Vector) String() string {
	return fmt.Sprintf("{cpu=%.3f mem=%.1fMB net=%.1fMbps}", v.CPU, v.MemMB, v.NetMbps)
}
