// Package runner is the single execution layer behind every experiment,
// scenario and CLI run in this repository. A RunSpec is a self-contained,
// serializable description of one simulation run — platform configuration,
// algorithm, services with declarative load shapes, pinned replicas, stress
// contenders, fixed-count injections, machine churn schedules, and named
// setup hooks. The experiment harness, the scenario layer and the public
// facade all COMPILE to RunSpecs; the Executor fans independent specs out
// across a bounded worker pool and returns results in spec order with
// bit-identical output for any worker count, because each run builds its own
// isolated World whose RNG derives from (root seed, spec name) rather than
// sharing state.
package runner

import (
	"fmt"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
	"hyscale/internal/loadgen"
	"hyscale/internal/platform"
	"hyscale/internal/resources"
	"hyscale/internal/scalermgr"
	"hyscale/internal/workload"
)

// LoadSpec is the declarative form of a loadgen.Pattern, covering every
// concrete pattern the repository ships. The Custom field is the escape
// hatch for programmatic patterns (e.g. trace-driven closures); it is the
// one part of a RunSpec that does not serialize.
type LoadSpec struct {
	// Type selects the pattern:
	// constant|wave|burst|ramp|diurnal|flashcrowd|scaled|custom, or empty
	// for no generator (fixed-count injection runs).
	Type string `json:"type,omitempty"`

	Base      float64       `json:"base,omitempty"`
	Peak      float64       `json:"peak,omitempty"`
	Amplitude float64       `json:"amplitude,omitempty"`
	Period    time.Duration `json:"period,omitempty"`
	BurstLen  time.Duration `json:"burstLen,omitempty"`
	Phase     time.Duration `json:"phase,omitempty"`
	RampUp    time.Duration `json:"rampUp,omitempty"`
	Start     time.Duration `json:"start,omitempty"`
	Hold      time.Duration `json:"hold,omitempty"`
	Decay     time.Duration `json:"decay,omitempty"`

	// RippleAmplitude and Ripple add the diurnal short cycle.
	RippleAmplitude float64       `json:"rippleAmplitude,omitempty"`
	Ripple          time.Duration `json:"ripple,omitempty"`

	// Factor and Inner describe a "scaled" wrapper around another spec.
	Factor float64   `json:"factor,omitempty"`
	Inner  *LoadSpec `json:"inner,omitempty"`

	// Custom carries an arbitrary pattern for Type "custom".
	Custom loadgen.Pattern `json:"-"`
}

// FromPattern reflects a concrete loadgen pattern back into its declarative
// spec, falling back to the non-serializable custom escape hatch for
// arbitrary implementations (loadgen.Func, loadgen.Sum, trace closures).
func FromPattern(p loadgen.Pattern) LoadSpec {
	switch v := p.(type) {
	case nil:
		return LoadSpec{}
	case loadgen.Constant:
		return LoadSpec{Type: "constant", Base: v.RPS}
	case loadgen.Wave:
		return LoadSpec{Type: "wave", Base: v.Base, Amplitude: v.Amplitude,
			Period: v.Period, Phase: v.PhaseShift}
	case loadgen.Burst:
		return LoadSpec{Type: "burst", Base: v.Base, Peak: v.Peak,
			Period: v.Period, BurstLen: v.BurstLen, Phase: v.PhaseShift}
	case loadgen.Ramp:
		return LoadSpec{Type: "ramp", Base: v.Start, Peak: v.End, RampUp: v.Duration}
	case loadgen.Diurnal:
		return LoadSpec{Type: "diurnal", Base: v.Base, Amplitude: v.DayAmplitude,
			Period: v.Day, RippleAmplitude: v.RippleAmplitude, Ripple: v.Ripple}
	case loadgen.FlashCrowd:
		return LoadSpec{Type: "flashcrowd", Base: v.Base, Peak: v.Peak,
			Start: v.Start, RampUp: v.RampUp, Hold: v.Hold, Decay: v.Decay}
	case loadgen.Scaled:
		inner := FromPattern(v.Pattern)
		return LoadSpec{Type: "scaled", Factor: v.Factor, Inner: &inner}
	default:
		return LoadSpec{Type: "custom", Custom: p}
	}
}

// Pattern materialises the spec; an empty Type yields a nil pattern (no
// generator, for injection-driven runs).
func (l LoadSpec) Pattern() (loadgen.Pattern, error) {
	switch l.Type {
	case "":
		return nil, nil
	case "constant":
		return loadgen.Constant{RPS: l.Base}, nil
	case "wave":
		return loadgen.Wave{Base: l.Base, Amplitude: l.Amplitude,
			Period: l.Period, PhaseShift: l.Phase}, nil
	case "burst":
		return loadgen.Burst{Base: l.Base, Peak: l.Peak,
			Period: l.Period, BurstLen: l.BurstLen, PhaseShift: l.Phase}, nil
	case "ramp":
		return loadgen.Ramp{Start: l.Base, End: l.Peak, Duration: l.RampUp}, nil
	case "diurnal":
		return loadgen.Diurnal{Base: l.Base, DayAmplitude: l.Amplitude, Day: l.Period,
			RippleAmplitude: l.RippleAmplitude, Ripple: l.Ripple}, nil
	case "flashcrowd":
		return loadgen.FlashCrowd{Base: l.Base, Peak: l.Peak, Start: l.Start,
			RampUp: l.RampUp, Hold: l.Hold, Decay: l.Decay}, nil
	case "scaled":
		if l.Inner == nil {
			return nil, fmt.Errorf("runner: scaled load without inner pattern")
		}
		inner, err := l.Inner.Pattern()
		if err != nil {
			return nil, err
		}
		return loadgen.Scaled{Pattern: inner, Factor: l.Factor}, nil
	case "custom":
		if l.Custom == nil {
			return nil, fmt.Errorf("runner: custom load without a pattern value")
		}
		return l.Custom, nil
	default:
		return nil, fmt.Errorf("runner: unknown load type %q", l.Type)
	}
}

// ServiceRun couples one microservice with its utilization target and load.
type ServiceRun struct {
	Spec   workload.ServiceSpec `json:"spec"`
	Target float64              `json:"target,omitempty"`
	Load   LoadSpec             `json:"load,omitempty"`
}

// PinnedReplica deploys one replica on an explicit node with an explicit
// allocation, bypassing the autoscaler — the §III microbenchmark layout.
type PinnedReplica struct {
	Service string           `json:"service"`
	Node    string           `json:"node"`
	Alloc   resources.Vector `json:"alloc"`
}

// StressSpec places a stress contender (progrium-stress / network hog) on a
// node.
type StressSpec struct {
	Node      string           `json:"node"`
	Alloc     resources.Vector `json:"alloc"`
	CPUDemand float64          `json:"cpuDemand,omitempty"`
	NetFlows  int              `json:"netFlows,omitempty"`
}

// InjectSpec schedules Count requests arriving uniformly over Window
// starting at At — the fixed-count client of the §III microbenchmarks.
type InjectSpec struct {
	At      time.Duration `json:"at"`
	Window  time.Duration `json:"window"`
	Service string        `json:"service"`
	Count   int           `json:"count"`
}

// NodeFailure schedules a machine death.
type NodeFailure struct {
	At   time.Duration `json:"at"`
	Node string        `json:"node"`
}

// NodeRecovery schedules a fresh machine joining the cluster.
type NodeRecovery struct {
	At     time.Duration      `json:"at"`
	Config cluster.NodeConfig `json:"config"`
}

// RunSpec is a complete, self-contained description of one simulation run.
// Everything every harness in the repository used to wire by hand lives
// here; Build materialises it and the Executor runs batches of them.
type RunSpec struct {
	// Name identifies the run (used for timing, errors and seed derivation);
	// it should be unique within a batch.
	Name string `json:"name"`
	// Label is the report row label; defaults to Name.
	Label string `json:"label,omitempty"`
	// Seed drives all of the run's randomness. Zero means "derive from the
	// Executor's root seed and Name", which decorrelates runs in a batch
	// without any shared RNG state.
	Seed int64 `json:"seed,omitempty"`
	// Platform configures the world; a zero value means
	// platform.DefaultConfig(Seed). Platform.Seed is overridden by Seed.
	Platform platform.Config `json:"platform"`
	// Algorithm names the autoscaler, with ablation suffixes and the
	// "-predictive" wrapper ("hybridmem-noreclaim", "kubernetes-predictive",
	// ...). Empty or "none" runs without autoscaling.
	Algorithm string `json:"algorithm,omitempty"`
	// AlgoConfig overrides core.DefaultConfig() for the algorithm.
	AlgoConfig *core.Config `json:"algoConfig,omitempty"`
	// Manager tunes the "manager" algorithm family (per-scaler windows,
	// weights, merge policy, SLO/cost targets). Nil means scalermgr
	// defaults; ignored by every other algorithm, so specs without a
	// manager block are byte-for-byte unaffected.
	Manager *scalermgr.Config `json:"manager,omitempty"`

	// Duration is the simulated horizon.
	Duration time.Duration `json:"duration"`
	// DrainExtra, when positive, keeps ticking up to DrainExtra past
	// Duration until no requests remain in flight (RunUntilDrained).
	DrainExtra time.Duration `json:"drainExtra,omitempty"`

	Services []ServiceRun    `json:"services,omitempty"`
	Pinned   []PinnedReplica `json:"pinned,omitempty"`
	Stress   []StressSpec    `json:"stress,omitempty"`
	Inject   []InjectSpec    `json:"inject,omitempty"`

	NodeFailures   []NodeFailure  `json:"nodeFailures,omitempty"`
	NodeRecoveries []NodeRecovery `json:"nodeRecoveries,omitempty"`

	// Hooks names registered setup functions (RegisterHook) that run after
	// services are deployed and before the clock starts — the extension
	// point for world mutations a declarative field cannot express.
	Hooks []string `json:"hooks,omitempty"`

	// Observe enables the decision-trace journal for this run (see
	// internal/obs). Each run owns an isolated journal, so parallel executor
	// batches stay deterministic. Equivalent to setting Platform.Observe but
	// also applies when Platform is defaulted.
	Observe bool `json:"observe,omitempty"`
}

// RowLabel returns the report label: Label, or Name when unset.
func (s RunSpec) RowLabel() string {
	if s.Label != "" {
		return s.Label
	}
	return s.Name
}
