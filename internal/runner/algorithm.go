package runner

import (
	"fmt"
	"strings"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/scalermgr"
)

// PredictiveHorizon is the extrapolation window the "-predictive" wrapper
// uses — one monitor period, matching the paper's 5 s decision loop.
const PredictiveHorizon = 5 * time.Second

// NewAlgorithm instantiates a scaling algorithm by report name. This is THE
// name-to-algorithm mapping for the repository — experiments, scenarios and
// the facade all resolve through it. Ablation variants are spelled
// "<base>-noreclaim", "<base>-vertical-only" and "<base>-horizontal-only";
// the "-predictive" suffix composes with any spelling. The multi-metric
// manager is "manager", its cost-optimal allocator "manager-cost" (default
// scalermgr configuration; use NewAlgorithmManaged to tune it). Empty and
// "none" return a nil algorithm (no autoscaling).
func NewAlgorithm(name string, cfg core.Config) (core.Algorithm, error) {
	return NewAlgorithmManaged(name, cfg, nil)
}

// NewAlgorithmManaged is NewAlgorithm with an optional scalermgr
// configuration for the "manager" family (nil means defaults; ignored by
// every other algorithm).
func NewAlgorithmManaged(name string, cfg core.Config, mgr *scalermgr.Config) (core.Algorithm, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	if inner, ok := strings.CutSuffix(name, "-predictive"); ok {
		algo, err := NewAlgorithmManaged(inner, cfg, mgr)
		if err != nil {
			return nil, err
		}
		if algo == nil {
			return nil, fmt.Errorf("runner: cannot wrap %q with prediction", name)
		}
		return core.NewPredictive(algo, PredictiveHorizon), nil
	}
	base, variant, _ := strings.Cut(name, "-")
	if base == "manager" {
		var mcfg scalermgr.Config
		if mgr != nil {
			mcfg = *mgr
		}
		switch variant {
		case "":
			return scalermgr.New(cfg, mcfg, false)
		case "cost":
			return scalermgr.New(cfg, mcfg, true)
		default:
			return nil, fmt.Errorf("runner: unknown manager variant %q", name)
		}
	}
	opts := core.HyScaleOptions{}
	switch variant {
	case "":
	case "noreclaim":
		opts.DisableReclamation = true
	case "vertical-only":
		opts.DisableHorizontal = true
	case "horizontal-only":
		opts.DisableVertical = true
	default:
		return nil, fmt.Errorf("runner: unknown algorithm variant %q", name)
	}
	switch base {
	case "kubernetes":
		if variant != "" {
			return nil, fmt.Errorf("runner: kubernetes has no variants, got %q", name)
		}
		return core.NewKubernetes(cfg), nil
	case "network":
		if variant != "" {
			return nil, fmt.Errorf("runner: network has no variants, got %q", name)
		}
		return core.NewNetworkHPA(cfg), nil
	case "hybrid":
		return core.NewHyScaleVariant(cfg, false, opts)
	case "hybridmem":
		return core.NewHyScaleVariant(cfg, true, opts)
	default:
		return nil, fmt.Errorf("runner: unknown algorithm %q", name)
	}
}
