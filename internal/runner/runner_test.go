package runner

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/loadgen"
	"hyscale/internal/platform"
	"hyscale/internal/workload"
)

// smokeSpec is a tiny but real run: one CPU-bound service under constant
// load for a few simulated seconds.
func smokeSpec(name string, seed int64) RunSpec {
	svc := workload.ServiceSpec{
		Name: "svc", Kind: workload.KindCPUBound,
		CPUPerRequest: 0.05, CPUOverheadPerRequest: 0.01,
		MemPerRequest: 2, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 1, MaxReplicas: 4, Timeout: 10 * time.Second,
	}
	cfg := platform.DefaultConfig(seed)
	cfg.Nodes = 3
	return RunSpec{
		Name:     name,
		Seed:     seed,
		Platform: cfg,
		Duration: 10 * time.Second,
		Services: []ServiceRun{{Spec: svc, Target: 0.5, Load: LoadSpec{Type: "constant", Base: 5}}},
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, "run-a")
	if a != DeriveSeed(1, "run-a") {
		t.Error("DeriveSeed is not deterministic")
	}
	if a == DeriveSeed(1, "run-b") {
		t.Error("distinct names should derive distinct seeds")
	}
	if a == DeriveSeed(2, "run-a") {
		t.Error("distinct roots should derive distinct seeds")
	}
	if DeriveSeed(0, "") == 0 {
		t.Error("derived seed must never be zero")
	}
}

func TestExecuteOrderAndDeterminism(t *testing.T) {
	var specs []RunSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, smokeSpec(fmt.Sprintf("run-%d", i), int64(i+1)))
	}
	serial, _, err := Execute(1, 1, specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Execute(4, 1, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("want %d results, got %d serial / %d parallel", len(specs), len(serial), len(parallel))
	}
	for i := range specs {
		if serial[i].Spec.Name != specs[i].Name {
			t.Errorf("result %d out of order: got %s", i, serial[i].Spec.Name)
		}
		if serial[i].Summary != parallel[i].Summary {
			t.Errorf("run %s: summary differs between 1 and 4 workers:\n  %+v\n  %+v",
				specs[i].Name, serial[i].Summary, parallel[i].Summary)
		}
		if serial[i].Actions != parallel[i].Actions {
			t.Errorf("run %s: action counts differ between 1 and 4 workers", specs[i].Name)
		}
		if serial[i].Summary.Completed == 0 {
			t.Errorf("run %s completed no requests", specs[i].Name)
		}
	}
}

func TestExecuteDerivesSeeds(t *testing.T) {
	a := smokeSpec("same-config-a", 0)
	b := smokeSpec("same-config-b", 0)
	results, _, err := Execute(2, 7, []RunSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Spec.Seed == 0 || results[1].Spec.Seed == 0 {
		t.Fatal("executor should resolve zero seeds")
	}
	if results[0].Spec.Seed == results[1].Spec.Seed {
		t.Error("distinct spec names should get decorrelated derived seeds")
	}
}

func TestExecuteErrorPropagation(t *testing.T) {
	good := smokeSpec("good", 1)
	bad := smokeSpec("bad", 1)
	bad.Algorithm = "no-such-algorithm"
	_, _, err := Execute(2, 1, []RunSpec{good, bad})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("want error naming the failing spec, got %v", err)
	}
}

func TestLoadSpecRoundTrip(t *testing.T) {
	patterns := []loadgen.Pattern{
		loadgen.Constant{RPS: 12},
		loadgen.Wave{Base: 10, Amplitude: 0.3, Period: 8 * time.Minute, PhaseShift: time.Minute},
		loadgen.Burst{Base: 5, Peak: 20, Period: 10 * time.Minute, BurstLen: 2 * time.Minute},
		loadgen.Ramp{Start: 1, End: 9, Duration: 5 * time.Minute},
		loadgen.Diurnal{Base: 8, DayAmplitude: 0.5, Day: 24 * time.Hour, RippleAmplitude: 0.1, Ripple: time.Hour},
		loadgen.FlashCrowd{Base: 4, Peak: 40, Start: time.Minute, RampUp: 30 * time.Second, Hold: 2 * time.Minute, Decay: time.Minute},
		loadgen.Scaled{Pattern: loadgen.Constant{RPS: 6}, Factor: 0.5},
	}
	for _, p := range patterns {
		spec := FromPattern(p)
		back, err := spec.Pattern()
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Errorf("%T: round trip changed the pattern:\n  in  %+v\n  out %+v", p, p, back)
		}
	}

	// Arbitrary implementations fall back to the custom escape hatch.
	custom := loadgen.Func(func(t time.Duration) float64 { return 1 })
	spec := FromPattern(custom)
	if spec.Type != "custom" {
		t.Fatalf("want custom fallback, got %q", spec.Type)
	}
	if _, err := spec.Pattern(); err != nil {
		t.Fatalf("custom round trip: %v", err)
	}

	// Nil pattern means "no generator" and survives the round trip.
	if got := FromPattern(nil); got.Type != "" {
		t.Errorf("nil pattern should map to empty type, got %q", got.Type)
	}
	if p, err := (LoadSpec{}).Pattern(); err != nil || p != nil {
		t.Errorf("empty spec should yield nil pattern, got %v, %v", p, err)
	}

	// Error cases.
	if _, err := (LoadSpec{Type: "scaled"}).Pattern(); err == nil {
		t.Error("scaled without inner should error")
	}
	if _, err := (LoadSpec{Type: "custom"}).Pattern(); err == nil {
		t.Error("custom without value should error")
	}
	if _, err := (LoadSpec{Type: "squarewave"}).Pattern(); err == nil {
		t.Error("unknown type should error")
	}
}

func TestNewAlgorithmNaming(t *testing.T) {
	// Every accepted name round-trips through Algorithm.Name().
	for _, name := range []string{
		"kubernetes", "network", "hybrid", "hybridmem",
		"hybrid-noreclaim", "hybridmem-noreclaim",
		"hybrid-vertical-only", "hybridmem-vertical-only",
		"hybrid-horizontal-only", "hybridmem-horizontal-only",
		"kubernetes-predictive", "hybridmem-predictive",
		"hybridmem-noreclaim-predictive",
	} {
		algo, err := NewAlgorithm(name, core.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if algo == nil || algo.Name() != name {
			t.Errorf("%s: got %v", name, algo)
		}
	}
	for _, name := range []string{"", "none"} {
		algo, err := NewAlgorithm(name, core.DefaultConfig())
		if err != nil || algo != nil {
			t.Errorf("%q should be nil, nil; got %v, %v", name, algo, err)
		}
	}
	for _, name := range []string{"nope", "kubernetes-noreclaim", "network-vertical-only", "hybrid-bogus"} {
		if _, err := NewAlgorithm(name, core.DefaultConfig()); err == nil {
			t.Errorf("%q should be rejected", name)
		}
	}
}

func TestHooksRegistry(t *testing.T) {
	ran := false
	RegisterHook("runner-test-probe", func(w *platform.World, spec RunSpec) (Finalizer, error) {
		ran = true
		return func(res *Result) {
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra["probe"] = 42
		}, nil
	})

	spec := smokeSpec("hooked", 1)
	spec.Hooks = []string{"runner-test-probe"}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("hook did not run")
	}
	if res.Extra["probe"] != 42 {
		t.Errorf("finalizer output missing: %v", res.Extra)
	}

	// Unknown hooks fail the build with the available names listed.
	spec.Hooks = []string{"no-such-hook"}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "runner-test-probe") {
		t.Errorf("want unknown-hook error listing registered names, got %v", err)
	}

	// Duplicate registration panics.
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterHook should panic")
		}
	}()
	RegisterHook("runner-test-probe", func(w *platform.World, spec RunSpec) (Finalizer, error) { return nil, nil })
}

func TestRunRejectsZeroDuration(t *testing.T) {
	spec := smokeSpec("no-duration", 1)
	spec.Duration = 0
	if _, err := Run(spec); err == nil {
		t.Error("zero duration should error")
	}
}
