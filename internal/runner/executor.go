package runner

import (
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Executor fans a batch of RunSpecs across a bounded worker pool. Results
// come back in spec order and are bit-identical for any worker count: each
// spec runs in its own isolated world whose seed is fixed before any worker
// starts (explicit spec seed, or derived from RootSeed and the spec name),
// so scheduling order between workers cannot leak into the measurements.
type Executor struct {
	// Workers bounds concurrency; <=0 means GOMAXPROCS.
	Workers int
	// RootSeed seeds specs that do not pin their own Seed, via DeriveSeed.
	RootSeed int64
}

// DeriveSeed mixes a root seed with a spec name (FNV-1a) into a per-run
// seed. The same (root, name) pair always yields the same seed, so a batch
// is reproducible while distinct runs stay decorrelated.
func DeriveSeed(root int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	seed := int64(h.Sum64()) ^ root
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Timing records how long one run took, for the CLI's per-run report.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Execute runs every spec and returns the results in spec order. The first
// error (earliest spec index) is returned after all in-flight runs finish;
// remaining specs are still attempted so timing stays comparable. Timings
// are returned in spec order alongside the results.
func (x *Executor) Execute(specs []RunSpec) ([]Result, []Timing, error) {
	workers := x.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}

	// Resolve seeds up front so results cannot depend on which worker picks
	// up which spec.
	resolved := make([]RunSpec, len(specs))
	for i, s := range specs {
		if s.Seed == 0 {
			s.Seed = DeriveSeed(x.RootSeed, s.Name)
		}
		resolved[i] = s
	}

	results := make([]Result, len(resolved))
	timings := make([]Timing, len(resolved))
	errs := make([]error, len(resolved))

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				res, err := Run(resolved[i])
				res.Elapsed = time.Since(start)
				results[i], errs[i] = res, err
				timings[i] = Timing{Name: resolved[i].Name, Elapsed: res.Elapsed}
			}
		}()
	}
	for i := range resolved {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, timings, err
		}
	}
	return results, timings, nil
}

// Execute runs specs with the given worker bound and root seed — the
// package-level convenience most call sites use.
func Execute(workers int, rootSeed int64, specs []RunSpec) ([]Result, []Timing, error) {
	x := &Executor{Workers: workers, RootSeed: rootSeed}
	return x.Execute(specs)
}
