package runner

import (
	"fmt"
	"sort"
	"sync"

	"hyscale/internal/platform"
)

// Finalizer runs after a world's clock stops, letting a hook harvest
// measurements into Result.Extra (e.g. the chaos uptime probe). A nil
// Finalizer is fine.
type Finalizer func(res *Result)

// Hook mutates a freshly-built world before the clock starts — the escape
// hatch for setups a declarative RunSpec field cannot express (heterogeneous
// node swaps, custom probes). Hooks are referenced from specs by registered
// name so the spec itself stays serializable.
type Hook func(w *platform.World, spec RunSpec) (Finalizer, error)

var (
	hooksMu sync.RWMutex
	hooks   = map[string]Hook{}
)

// RegisterHook makes a hook addressable from RunSpec.Hooks. Registering a
// duplicate name panics: hook names are a global namespace wired at init
// time, and a silent overwrite would make runs depend on package init order.
func RegisterHook(name string, h Hook) {
	if name == "" || h == nil {
		panic("runner: RegisterHook requires a name and a hook")
	}
	hooksMu.Lock()
	defer hooksMu.Unlock()
	if _, dup := hooks[name]; dup {
		panic(fmt.Sprintf("runner: hook %q registered twice", name))
	}
	hooks[name] = h
}

// lookupHook resolves a registered hook.
func lookupHook(name string) (Hook, error) {
	hooksMu.RLock()
	defer hooksMu.RUnlock()
	h, ok := hooks[name]
	if !ok {
		return nil, fmt.Errorf("runner: no hook registered as %q (have %v)", name, hookNamesLocked())
	}
	return h, nil
}

// HookNames lists the registered hooks, sorted — for error messages and CLI
// help.
func HookNames() []string {
	hooksMu.RLock()
	defer hooksMu.RUnlock()
	return hookNamesLocked()
}

func hookNamesLocked() []string {
	names := make([]string, 0, len(hooks))
	for n := range hooks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
