package runner

import (
	"fmt"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/cost"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/obs"
	"hyscale/internal/platform"
	"hyscale/internal/resilience"
)

// Result is what one RunSpec produces: the aggregate measurements every
// report row in the repository is built from.
type Result struct {
	Spec RunSpec `json:"spec"`

	Summary  metrics.Summary               `json:"summary"`
	Actions  monitor.ActionCounts          `json:"actions"`
	Recovery monitor.RecoveryCounts        `json:"recovery"`
	Cost     cost.Report                   `json:"cost"`
	ConnFail platform.ConnFailureBreakdown `json:"connFail"`

	// MonitorCrashes counts poll periods lost to monitor-crash fault windows.
	MonitorCrashes uint64 `json:"monitorCrashes,omitempty"`

	// PendingRetries is the retry-queue depth at the end of the run.
	PendingRetries int `json:"pendingRetries,omitempty"`

	// ClampedEvents counts events the engine had to clamp to "now" because a
	// component scheduled them in the past — the scheduling errors that used
	// to be silently dropped. Non-zero values flag stale-timestamp bugs.
	ClampedEvents uint64 `json:"clampedEvents"`

	// Cascade holds the call-graph run's root-outcome and per-edge
	// accounting (nil unless the spec configured a call graph).
	Cascade *platform.CascadeStats `json:"cascade,omitempty"`

	// Resilience holds the cascade-defense counters: shed, retries, retry
	// denials, deadline misses, breaker short-circuits and opens (nil unless
	// the spec configured a call graph).
	Resilience *resilience.Counters `json:"resilience,omitempty"`

	// Zones holds per-zone merged ledgers when the spec ran a zoned control
	// plane (Platform.Zones > 1); nil for single-zone runs.
	Zones []monitor.ZoneSummary `json:"zones,omitempty"`

	// CrossZone holds the global allocator's counters for zoned runs.
	CrossZone *monitor.CrossZoneCounts `json:"crossZone,omitempty"`

	// ZoneEvac holds the zone evacuation / re-adoption counters (nil unless
	// the spec enabled Platform.EvacuateZones on a zoned run).
	ZoneEvac *monitor.EvacCounts `json:"zoneEvac,omitempty"`

	// Extra holds hook-harvested measurements (e.g. "uptimePercent" from the
	// chaos probe).
	Extra map[string]float64 `json:"extra,omitempty"`

	// Elapsed is the wall-clock time the run took, filled by the Executor.
	Elapsed time.Duration `json:"elapsed"`

	// World is the simulated world after the run, for post-processing
	// (per-service summaries, replica series). Never serialized.
	World *platform.World `json:"-"`

	// Journal is the decision-trace journal (nil unless the spec set
	// Observe). Never serialized; export it with the obs package's JSONL/CSV
	// writers.
	Journal *obs.Journal `json:"-"`
}

// Build materialises a spec into a ready-to-run world plus the finalizers of
// its hooks. Callers that just want the measurements should use Run.
func Build(spec RunSpec) (*platform.World, []Finalizer, error) {
	cfg := spec.Platform
	if cfg.Nodes == 0 && cfg.Tick == 0 {
		cfg = platform.DefaultConfig(spec.Seed)
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.Observe {
		cfg.Observe = true
	}
	algoCfg := core.DefaultConfig()
	if spec.AlgoConfig != nil {
		algoCfg = *spec.AlgoConfig
	}
	algo, err := NewAlgorithmManaged(spec.Algorithm, algoCfg, spec.Manager)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	w, err := platform.New(cfg, algo)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	for _, s := range spec.Services {
		pattern, err := s.Load.Pattern()
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%s: %w", spec.Name, s.Spec.Name, err)
		}
		if err := w.AddService(s.Spec, s.Target, pattern); err != nil {
			return nil, nil, fmt.Errorf("%s/%s: %w", spec.Name, s.Spec.Name, err)
		}
	}
	for _, p := range spec.Pinned {
		if err := w.DeployReplica(p.Service, p.Node, p.Alloc); err != nil {
			return nil, nil, fmt.Errorf("%s: pin %s on %s: %w", spec.Name, p.Service, p.Node, err)
		}
	}
	for _, st := range spec.Stress {
		if err := w.AddStressContainer(st.Node, st.Alloc, st.CPUDemand, st.NetFlows); err != nil {
			return nil, nil, fmt.Errorf("%s: stress on %s: %w", spec.Name, st.Node, err)
		}
	}
	for _, in := range spec.Inject {
		if err := w.InjectRequests(in.At, in.Window, in.Service, in.Count); err != nil {
			return nil, nil, fmt.Errorf("%s: inject %s: %w", spec.Name, in.Service, err)
		}
	}
	for _, f := range spec.NodeFailures {
		if err := w.ScheduleNodeFailure(f.At, f.Node); err != nil {
			return nil, nil, fmt.Errorf("%s: node failure %s: %w", spec.Name, f.Node, err)
		}
	}
	for _, r := range spec.NodeRecoveries {
		if err := w.ScheduleNodeRecovery(r.At, r.Config); err != nil {
			return nil, nil, fmt.Errorf("%s: node recovery %s: %w", spec.Name, r.Config.ID, err)
		}
	}
	var fins []Finalizer
	for _, name := range spec.Hooks {
		h, err := lookupHook(name)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		fin, err := h(w, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: hook %s: %w", spec.Name, name, err)
		}
		if fin != nil {
			fins = append(fins, fin)
		}
	}
	return w, fins, nil
}

// Run builds and executes one spec to completion, harvesting the standard
// measurements plus any hook finalizer output.
func Run(spec RunSpec) (Result, error) {
	w, fins, err := Build(spec)
	if err != nil {
		return Result{}, err
	}
	if spec.Duration <= 0 {
		return Result{}, fmt.Errorf("%s: run duration must be positive", spec.Name)
	}
	if spec.DrainExtra > 0 {
		err = w.RunUntilDrained(spec.Duration, spec.DrainExtra)
	} else {
		err = w.Run(spec.Duration)
	}
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	ctl := w.Control()
	res := Result{
		Spec:           spec,
		Summary:        w.Summary(),
		Actions:        ctl.Counts(),
		Recovery:       ctl.Recovery(),
		Cost:           w.CostReport(),
		ConnFail:       w.ConnFailures(),
		MonitorCrashes: w.MonitorCrashes(),
		PendingRetries: ctl.PendingRetries(),
		ClampedEvents:  w.ClampedEvents(),
		World:          w,
		Journal:        w.Journal(),
	}
	if zs := w.ZoneSummaries(); zs != nil {
		res.Zones = zs
		cz := w.CrossZone()
		res.CrossZone = &cz
		res.ZoneEvac = w.ZoneEvac()
	}
	if w.HasCallGraph() {
		cs := w.CascadeStats()
		rc := w.Resilience().Counters()
		res.Cascade = &cs
		res.Resilience = &rc
	}
	for _, fin := range fins {
		fin(&res)
	}
	return res, nil
}
