package faults

import (
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if i.Enabled() {
		t.Error("nil injector enabled")
	}
	if i.VerticalFails(time.Second, "c") {
		t.Error("nil injector failed a vertical")
	}
	if fail, slow := i.StartFault(time.Second, "svc/0"); fail || slow != 0 {
		t.Error("nil injector faulted a start")
	}
	if i.StatsDropped(time.Second, "node-0") {
		t.Error("nil injector dropped stats")
	}
	if i.BackendDown(time.Second, "svc", "c") {
		t.Error("nil injector downed a backend")
	}
}

func TestNewReturnsNilForInertConfig(t *testing.T) {
	if New(Config{Seed: 42}) != nil {
		t.Error("New with zero probabilities should return nil")
	}
	if New(Config{VerticalFailProb: 0.1}) == nil {
		t.Error("New with a probability should return an injector")
	}
	if New(Config{Windows: []Window{{Kind: KindStats, From: 0, To: time.Second}}}) == nil {
		t.Error("New with a window should return an injector")
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 7, VerticalFailProb: 0.5, StartFailProb: 0.2, StartSlowProb: 0.3,
		StatsDropProb: 0.5, BackendDownProb: 0.5,
	}
	a, b := New(cfg), New(cfg)
	for s := 0; s < 200; s++ {
		now := time.Duration(s) * time.Second
		if a.VerticalFails(now, "c1") != b.VerticalFails(now, "c1") {
			t.Fatal("vertical decisions diverged")
		}
		af, as := a.StartFault(now, "svc/3")
		bf, bs := b.StartFault(now, "svc/3")
		if af != bf || as != bs {
			t.Fatal("start decisions diverged")
		}
		if a.StatsDropped(now, "node-2") != b.StatsDropped(now, "node-2") {
			t.Fatal("stats decisions diverged")
		}
		if a.BackendDown(now, "svc", "c1") != b.BackendDown(now, "svc", "c1") {
			t.Fatal("backend decisions diverged")
		}
	}
}

// TestDecisionsAreOrderIndependent is the property that makes hardened and
// unhardened runs comparable: asking twice (or in any order) does not change
// the answer.
func TestDecisionsAreOrderIndependent(t *testing.T) {
	i := New(Config{Seed: 3, VerticalFailProb: 0.4, StatsDropProb: 0.4})
	now := 17 * time.Second
	first := i.VerticalFails(now, "x")
	i.StatsDropped(5*time.Second, "node-9") // interleaved query
	i.VerticalFails(99*time.Second, "y")
	if i.VerticalFails(now, "x") != first {
		t.Error("repeated query changed its answer")
	}
}

func TestProbabilitiesApproximateRates(t *testing.T) {
	i := New(Config{Seed: 11, VerticalFailProb: 0.3})
	hits := 0
	const n = 5000
	for s := 0; s < n; s++ {
		if i.VerticalFails(time.Duration(s)*time.Second, "c") {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.25 || got > 0.35 {
		t.Errorf("empirical fail rate = %.3f, want ~0.30", got)
	}
}

func TestStartFaultSplitsFailAndSlow(t *testing.T) {
	i := New(Config{Seed: 5, StartFailProb: 0.2, StartSlowProb: 0.3, StartSlowBy: 8 * time.Second})
	fails, slows := 0, 0
	const n = 5000
	for s := 0; s < n; s++ {
		fail, slow := i.StartFault(time.Duration(s)*time.Millisecond*137, "svc/1")
		if fail {
			fails++
		}
		if slow != 0 {
			if slow != 8*time.Second {
				t.Fatalf("slowBy = %v, want 8s", slow)
			}
			slows++
		}
	}
	if f := float64(fails) / n; f < 0.15 || f > 0.25 {
		t.Errorf("fail rate = %.3f, want ~0.20", f)
	}
	if sl := float64(slows) / n; sl < 0.25 || sl > 0.35 {
		t.Errorf("slow rate = %.3f, want ~0.30", sl)
	}
}

func TestBackendDownIsEpochAligned(t *testing.T) {
	i := New(Config{
		Seed: 1, BackendDownProb: 1, // every epoch is an outage
		BackendDownEvery: time.Minute, BackendDownFor: 10 * time.Second,
	})
	cases := []struct {
		at   time.Duration
		down bool
	}{
		{0, true}, {9 * time.Second, true}, {10 * time.Second, false},
		{59 * time.Second, false}, {time.Minute, true}, {70 * time.Second, false},
	}
	for _, c := range cases {
		if got := i.BackendDown(c.at, "svc", "c"); got != c.down {
			t.Errorf("BackendDown(%v) = %v, want %v", c.at, got, c.down)
		}
	}
}

func TestBackendDownDefaultsDurations(t *testing.T) {
	i := New(Config{Seed: 2, BackendDownProb: 1})
	// Defaults: 10s down at the head of each 1m epoch.
	if !i.BackendDown(5*time.Second, "svc", "c") {
		t.Error("not down inside default outage window")
	}
	if i.BackendDown(30*time.Second, "svc", "c") {
		t.Error("down outside default outage window")
	}
}

func TestWindowsForceFaults(t *testing.T) {
	i := New(Config{
		Seed: 9,
		Windows: []Window{
			{Kind: KindStats, Target: "node-3", From: 4 * time.Minute, To: 6 * time.Minute},
			{Kind: KindBackend, From: time.Minute, To: 2 * time.Minute}, // all targets
		},
	})
	if !i.StatsDropped(5*time.Minute, "node-3") {
		t.Error("window did not force stats drop")
	}
	if i.StatsDropped(5*time.Minute, "node-1") {
		t.Error("window leaked onto another target")
	}
	if i.StatsDropped(7*time.Minute, "node-3") {
		t.Error("window active past To")
	}
	if !i.BackendDown(90*time.Second, "any-svc", "any-container") {
		t.Error("target-less window did not apply to all")
	}
}

func TestScaled(t *testing.T) {
	base := Config{
		Seed: 1, VerticalFailProb: 0.4, StartFailProb: 0.2, StartSlowProb: 0.2,
		StatsDropProb: 0.4, BackendDownProb: 0.3, BackendDownFor: 5 * time.Second,
		Windows: []Window{{Kind: KindStats, From: 0, To: time.Second}},
	}
	half := base.Scaled(0.5)
	if half.VerticalFailProb != 0.2 || half.StatsDropProb != 0.2 || half.BackendDownProb != 0.15 {
		t.Errorf("Scaled(0.5) = %+v", half)
	}
	if half.BackendDownFor != 5*time.Second || len(half.Windows) != 1 {
		t.Error("Scaled should preserve durations and windows")
	}
	zero := base.Scaled(0)
	if zero.Enabled() {
		t.Error("Scaled(0) still enabled")
	}
	over := base.Scaled(10)
	if over.VerticalFailProb != 1 {
		t.Errorf("Scaled(10) prob = %v, want clamped to 1", over.VerticalFailProb)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{VerticalFailProb: 1.2}).Validate(); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if err := (Config{Windows: []Window{{Kind: "bogus", From: 0, To: time.Second}}}).Validate(); err == nil {
		t.Error("unknown window kind accepted")
	}
	if err := (Config{Windows: []Window{{Kind: KindStats, From: time.Second, To: time.Second}}}).Validate(); err == nil {
		t.Error("empty window accepted")
	}
	ok := Config{Seed: 1, StatsDropProb: 0.5, Windows: []Window{{Kind: KindBackend, From: 0, To: time.Minute}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
