package faults

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMonitorCrashWindow(t *testing.T) {
	i := New(Config{Windows: []Window{
		{Kind: KindMonitorCrash, From: time.Minute, To: 2 * time.Minute},
	}})
	if i.MonitorCrashed(30 * time.Second) {
		t.Error("crashed before the window")
	}
	if !i.MonitorCrashed(90 * time.Second) {
		t.Error("not crashed inside the window")
	}
	if i.MonitorCrashed(2 * time.Minute) {
		t.Error("crashed at To (window is half-open)")
	}
	// The crash must not leak into per-node fault queries.
	if i.StatsDropped(90*time.Second, "node-0") || i.StatsBlackout(90*time.Second, "node-0") {
		t.Error("monitor-crash window leaked onto node faults")
	}
}

func TestPartitionDirections(t *testing.T) {
	mk := func(dir string) *Injector {
		return New(Config{Windows: []Window{{
			Kind: KindPartition, Target: "node-1", Direction: dir,
			From: 0, To: time.Minute,
		}}})
	}

	both := mk("")
	if !both.StatsBlackout(time.Second, "node-1") || !both.ActionBlackout(time.Second, "node-1") {
		t.Error("undirected partition must cut both directions")
	}
	if both.StatsBlackout(time.Second, "node-2") {
		t.Error("partition leaked onto another node")
	}

	stats := mk(DirectionStats)
	if !stats.StatsBlackout(time.Second, "node-1") {
		t.Error("stats partition does not black out stats")
	}
	if stats.ActionBlackout(time.Second, "node-1") {
		t.Error("stats partition blacks out actions")
	}

	actions := mk(DirectionActions)
	if actions.StatsBlackout(time.Second, "node-1") {
		t.Error("actions partition blacks out stats")
	}
	if !actions.ActionBlackout(time.Second, "node-1") {
		t.Error("actions partition does not black out actions")
	}
}

func TestNilInjectorSelfHealQueriesAreInert(t *testing.T) {
	var i *Injector
	if i.MonitorCrashed(time.Second) || i.StatsBlackout(time.Second, "n") || i.ActionBlackout(time.Second, "n") {
		t.Error("nil injector injected a self-heal fault")
	}
}

func TestValidateSelfHealWindows(t *testing.T) {
	cases := []struct {
		name string
		w    Window
		ok   bool
	}{
		{"monitor-crash", Window{Kind: KindMonitorCrash, From: 0, To: time.Second}, true},
		{"monitor-crash with target", Window{Kind: KindMonitorCrash, Target: "node-0", From: 0, To: time.Second}, false},
		{"partition both", Window{Kind: KindPartition, Target: "node-0", From: 0, To: time.Second}, true},
		{"partition stats", Window{Kind: KindPartition, Target: "node-0", Direction: DirectionStats, From: 0, To: time.Second}, true},
		{"partition actions", Window{Kind: KindPartition, Target: "node-0", Direction: DirectionActions, From: 0, To: time.Second}, true},
		{"partition bad direction", Window{Kind: KindPartition, Target: "node-0", Direction: "sideways", From: 0, To: time.Second}, false},
		{"direction on stats kind", Window{Kind: KindStats, Target: "node-0", Direction: DirectionStats, From: 0, To: time.Second}, false},
	}
	for _, tc := range cases {
		err := (Config{Windows: []Window{tc.w}}).Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid window accepted", tc.name)
		}
	}
}

// TestScaledProperties property-checks Config.Scaled over arbitrary configs
// and rates: Scaled(0) is always inert, every scaled probability stays in
// [0,1] and validates, and durations/seed survive scaling.
func TestScaledProperties(t *testing.T) {
	gen := func(r *rand.Rand) Config {
		// Configs carry valid probabilities; rates beyond [0,1] (including
		// negative) are exercised on purpose — Scaled must clamp them.
		p := r.Float64
		c := Config{
			Seed:             r.Int63(),
			VerticalFailProb: p(), StartFailProb: p(), StartSlowProb: p(),
			StatsDropProb: p(), BackendDownProb: p(),
			StartSlowBy:    time.Duration(r.Intn(10)) * time.Second,
			BackendDownFor: time.Duration(r.Intn(10)) * time.Second,
		}
		if r.Intn(2) == 0 {
			c.Windows = []Window{{Kind: KindStats, From: 0, To: time.Second}}
		}
		return c
	}

	prop := func(seed int64, rate float64) bool {
		r := rand.New(rand.NewSource(seed))
		c := gen(r)
		rate = (rate - 0.25) * 4 // include negative and >1 rates

		s := c.Scaled(rate)
		for _, p := range []float64{
			s.VerticalFailProb, s.StartFailProb, s.StartSlowProb,
			s.StatsDropProb, s.BackendDownProb,
		} {
			if p < 0 || p > 1 {
				return false
			}
		}
		if err := s.Validate(); err != nil {
			return false
		}
		if s.Seed != c.Seed || s.StartSlowBy != c.StartSlowBy || s.BackendDownFor != c.BackendDownFor {
			return false
		}
		if rate <= 0 && s.Enabled() {
			return false
		}
		if rate > 0 && len(s.Windows) != len(c.Windows) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(seed int64, rate float64) bool { return prop(seed, rate) }, cfg); err != nil {
		t.Error(err)
	}
}
