// Package faults is a deterministic, seeded fault-injection layer for the
// control plane. Real autoscalers live with flaky control actions — `docker
// update` calls that error, replica starts that hang, node managers that
// miss a stats query, backends that silently stop accepting connections —
// and the paper's headline claims (≤10× fewer failed requests, ≥99.8 %
// uptime, §VI) are precisely claims about behaviour under such stress.
//
// Every fault decision is a pure function of (seed, fault kind, target,
// instant): the injector hashes those four values instead of consuming a
// shared random stream. This makes the fault schedule independent of how
// often — or in what order — the control plane asks, so a hardened run and
// an unhardened run of the same seed face the *same* faults, and two runs
// of the same configuration are byte-identical.
package faults

import (
	"fmt"
	"time"
)

// Kind names a fault site.
type Kind string

// Fault sites.
const (
	// KindVertical fails `docker update` actions.
	KindVertical Kind = "vertical"
	// KindStart fails or slows replica starts (`docker run`).
	KindStart Kind = "start"
	// KindStats drops node-manager stats queries.
	KindStats Kind = "stats"
	// KindBackend marks LB backends unhealthy for an interval.
	KindBackend Kind = "backend"
	// KindMonitorCrash takes the Monitor process itself down for the
	// window: no polls, no decisions, no retries. Only meaningful as a
	// Window (there is no per-attempt probability for a process crash);
	// Target must be empty.
	KindMonitorCrash Kind = "monitor-crash"
	// KindPartition cuts the monitor↔node link for the window's target
	// node. The partition may be asymmetric: Window.Direction selects
	// whether stats queries, control actions, or both are black-holed.
	KindPartition Kind = "partition"
	// KindSlowBackend multiplies the CPU work of requests admitted at the
	// target service during the window by Window.Factor — a degraded
	// dependency (lock convoy, cold cache, noisy neighbour) rather than a
	// dead one. Only meaningful as a Window.
	KindSlowBackend Kind = "slow-backend"
	// KindZoneOutage takes every node in the target zone dead for the
	// window: both stats queries and control actions towards the zone's
	// nodes are black-holed, so the zone's arbiter declares them dead and —
	// when evacuation is enabled — the global allocator re-homes the zone's
	// services. Target is the zone index as a decimal string ("0", "1", …)
	// and must be non-empty; only meaningful as a Window, and only on a
	// zoned (zones ≥ 2) control plane.
	KindZoneOutage Kind = "zone-outage"
	// KindZonePartition cuts the target zone's arbiter off from its nodes
	// for the window — the machines keep running but the control plane
	// cannot see (Direction "stats") or steer (Direction "actions") them;
	// empty Direction cuts both, like KindPartition but for a whole zone.
	// Target is the zone index as a decimal string and must be non-empty.
	KindZonePartition Kind = "zone-partition"
)

// Partition directions for KindPartition windows. An empty Direction cuts
// both ways.
const (
	// DirectionStats blacks out only the node's answers to stats queries
	// (the monitor goes blind but can still act on the node).
	DirectionStats = "stats"
	// DirectionActions blacks out only control actions towards the node
	// (the monitor sees the node but docker update/run/rm never arrive).
	DirectionActions = "actions"
)

// Window forces a fault during [From, To) for a target (or every target
// when Target is empty) — the schedule-driven half of the injector, for
// reproducing a specific outage ("node-3's manager is unreachable from
// minute 4 to minute 6").
type Window struct {
	Kind   Kind
	Target string
	From   time.Duration
	To     time.Duration
	// Direction narrows a KindPartition or KindZonePartition window to one
	// side of the monitor↔node link (DirectionStats or DirectionActions);
	// empty cuts both. Must be empty for every other kind.
	Direction string
	// Factor is the CPU-work multiplier of a KindSlowBackend window
	// (must be > 1); zero for every other kind.
	Factor float64
}

// Contains reports whether the window forces kind on target at now.
func (w Window) Contains(kind Kind, target string, now time.Duration) bool {
	return w.Kind == kind &&
		(w.Target == "" || w.Target == target) &&
		now >= w.From && now < w.To
}

// Config parameterises an Injector. The zero value injects nothing.
// Probabilities are per-attempt (vertical, start) or per-query (stats);
// backend outages are drawn once per epoch.
type Config struct {
	// Seed decorrelates the fault schedule from the simulation seed.
	Seed int64

	// VerticalFailProb fails a `docker update` attempt.
	VerticalFailProb float64

	// StartFailProb fails a replica start outright; StartSlowProb instead
	// delays readiness by StartSlowBy (image pull stall, slow mount).
	StartFailProb float64
	StartSlowProb float64
	StartSlowBy   time.Duration

	// StatsDropProb drops one node manager's answer to a Monitor stats
	// query (the NM is unreachable that poll).
	StatsDropProb float64

	// BackendDownProb is drawn once per container per BackendDownEvery
	// epoch; on a hit the backend drops every connection for the first
	// BackendDownFor of that epoch.
	BackendDownProb  float64
	BackendDownFor   time.Duration
	BackendDownEvery time.Duration

	// Windows force faults on a schedule, independent of the probabilities.
	Windows []Window
}

// Defaults for zero-valued durations when the matching probability is set.
const (
	defaultStartSlowBy      = 5 * time.Second
	defaultBackendDownFor   = 10 * time.Second
	defaultBackendDownEvery = time.Minute
)

// Enabled reports whether the config can inject any fault at all.
func (c Config) Enabled() bool {
	return c.VerticalFailProb > 0 || c.StartFailProb > 0 || c.StartSlowProb > 0 ||
		c.StatsDropProb > 0 || c.BackendDownProb > 0 || len(c.Windows) > 0
}

// Scaled multiplies every probability by rate (clamped to [0, 1]),
// preserving durations and windows — the chaos experiment's fault-rate
// sweep. Rate 0 returns a config that injects nothing.
func (c Config) Scaled(rate float64) Config {
	s := c
	s.VerticalFailProb = clampProb(c.VerticalFailProb * rate)
	s.StartFailProb = clampProb(c.StartFailProb * rate)
	s.StartSlowProb = clampProb(c.StartSlowProb * rate)
	s.StatsDropProb = clampProb(c.StatsDropProb * rate)
	s.BackendDownProb = clampProb(c.BackendDownProb * rate)
	if rate <= 0 {
		s.Windows = nil
	}
	return s
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Validate checks probabilities and windows.
func (c Config) Validate() error {
	for name, p := range map[string]float64{
		"verticalFailProb": c.VerticalFailProb,
		"startFailProb":    c.StartFailProb,
		"startSlowProb":    c.StartSlowProb,
		"statsDropProb":    c.StatsDropProb,
		"backendDownProb":  c.BackendDownProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s = %v out of [0,1]", name, p)
		}
	}
	for i, w := range c.Windows {
		switch w.Kind {
		case KindVertical, KindStart, KindStats, KindBackend, KindMonitorCrash, KindPartition, KindSlowBackend, KindZoneOutage, KindZonePartition:
		default:
			return fmt.Errorf("faults: window %d has unknown kind %q", i, w.Kind)
		}
		if w.To <= w.From {
			return fmt.Errorf("faults: window %d has non-positive span [%v, %v)", i, w.From, w.To)
		}
		if w.Kind == KindMonitorCrash && w.Target != "" {
			return fmt.Errorf("faults: window %d: monitor-crash windows take no target (got %q)", i, w.Target)
		}
		if (w.Kind == KindZoneOutage || w.Kind == KindZonePartition) && w.Target == "" {
			return fmt.Errorf("faults: window %d: %s windows need a zone-index target", i, w.Kind)
		}
		if w.Kind == KindPartition || w.Kind == KindZonePartition {
			switch w.Direction {
			case "", DirectionStats, DirectionActions:
			default:
				return fmt.Errorf("faults: window %d has unknown partition direction %q", i, w.Direction)
			}
		} else if w.Direction != "" {
			return fmt.Errorf("faults: window %d: direction %q only applies to partition windows", i, w.Direction)
		}
		if w.Kind == KindSlowBackend {
			if w.Factor <= 1 {
				return fmt.Errorf("faults: window %d: slow-backend windows need factor > 1 (got %v)", i, w.Factor)
			}
		} else if w.Factor != 0 {
			return fmt.Errorf("faults: window %d: factor %v only applies to slow-backend windows", i, w.Factor)
		}
	}
	return nil
}

// Injector answers fault queries. A nil *Injector injects nothing, so
// callers can wire it unconditionally.
type Injector struct {
	cfg Config
}

// New builds an injector. Returns nil when the config injects nothing, so
// `faults.New(cfg)` composes directly with the nil-safe query methods.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg}
}

// Config returns the injector's configuration (zero for a nil injector).
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// Enabled reports whether any fault can fire.
func (i *Injector) Enabled() bool { return i != nil && i.cfg.Enabled() }

// roll returns a deterministic uniform draw in [0, 1) for (kind, target, n).
func (i *Injector) roll(kind Kind, target string, n uint64) float64 {
	h := uint64(i.cfg.Seed) ^ 0x9e3779b97f4a7c15
	h = fnvMix(h, []byte(kind))
	h = fnvMix(h, []byte(target))
	var b [8]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(n >> (8 * k))
	}
	h = fnvMix(h, b[:])
	// splitmix64 finaliser for avalanche.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

func fnvMix(h uint64, data []byte) uint64 {
	for _, c := range data {
		h ^= uint64(c)
		h *= 1099511628211 // FNV-1a prime
	}
	return h
}

func (i *Injector) windowed(kind Kind, target string, now time.Duration) bool {
	for _, w := range i.cfg.Windows {
		if w.Contains(kind, target, now) {
			return true
		}
	}
	return false
}

// partitioned reports whether a KindPartition window cuts the given side of
// the monitor↔node link at now. A window with empty Direction cuts both.
func (i *Injector) partitioned(direction, nodeID string, now time.Duration) bool {
	if i == nil {
		return false
	}
	for _, w := range i.cfg.Windows {
		if w.Contains(KindPartition, nodeID, now) &&
			(w.Direction == "" || w.Direction == direction) {
			return true
		}
	}
	return false
}

// MonitorCrashed reports whether the Monitor process is down at now — the
// platform skips polls (and checkpointing) for the duration, then restarts
// the monitor at the first poll after the window.
func (i *Injector) MonitorCrashed(now time.Duration) bool {
	if i == nil {
		return false
	}
	return i.windowed(KindMonitorCrash, "", now)
}

// StatsBlackout reports whether a partition window is black-holing nodeID's
// stats answers at now. Unlike StatsDropped's per-query probability, this is
// a sustained outage, so the monitor's failure detector sees consecutive
// misses.
func (i *Injector) StatsBlackout(now time.Duration, nodeID string) bool {
	return i.partitioned(DirectionStats, nodeID, now)
}

// ActionBlackout reports whether a partition window is black-holing control
// actions towards nodeID at now (docker update/run/rm never arrive; the
// monitor requeues them).
func (i *Injector) ActionBlackout(now time.Duration, nodeID string) bool {
	return i.partitioned(DirectionActions, nodeID, now)
}

// HasZoneWindows reports whether any zone-outage or zone-partition window is
// configured — a cheap gate so the per-node fault hooks on a zoned control
// plane stay out of the hot path when no zone can ever fail.
func (i *Injector) HasZoneWindows() bool {
	if i == nil {
		return false
	}
	for _, w := range i.cfg.Windows {
		if w.Kind == KindZoneOutage || w.Kind == KindZonePartition {
			return true
		}
	}
	return false
}

// zoneCut reports whether a zone-scoped window is black-holing the given
// side of the monitor↔node link for zone at now. A zone-outage window cuts
// both sides; a zone-partition window respects its Direction.
func (i *Injector) zoneCut(direction, zone string, now time.Duration) bool {
	if i == nil {
		return false
	}
	for _, w := range i.cfg.Windows {
		if w.Contains(KindZoneOutage, zone, now) {
			return true
		}
		if w.Contains(KindZonePartition, zone, now) &&
			(w.Direction == "" || w.Direction == direction) {
			return true
		}
	}
	return false
}

// ZoneStatsCut reports whether the zone's stats answers are black-holed at
// now (zone-outage, or zone-partition with stats direction).
func (i *Injector) ZoneStatsCut(now time.Duration, zone string) bool {
	return i.zoneCut(DirectionStats, zone, now)
}

// ZoneActionsCut reports whether control actions towards the zone's nodes
// are black-holed at now (zone-outage, or zone-partition with actions
// direction).
func (i *Injector) ZoneActionsCut(now time.Duration, zone string) bool {
	return i.zoneCut(DirectionActions, zone, now)
}

// VerticalFails reports whether the `docker update` on containerID at now
// fails. Retrying at a later instant re-rolls, so transient faults clear.
func (i *Injector) VerticalFails(now time.Duration, containerID string) bool {
	if i == nil {
		return false
	}
	if i.windowed(KindVertical, containerID, now) {
		return true
	}
	return i.cfg.VerticalFailProb > 0 &&
		i.roll(KindVertical, containerID, uint64(now)) < i.cfg.VerticalFailProb
}

// StartFault reports the fate of a replica start at now: fail outright,
// or be slowed by the returned extra delay before readiness. key should
// identify the attempt stably (service name plus replica index).
func (i *Injector) StartFault(now time.Duration, key string) (fail bool, slowBy time.Duration) {
	if i == nil {
		return false, 0
	}
	if i.windowed(KindStart, key, now) {
		return true, 0
	}
	r := i.roll(KindStart, key, uint64(now))
	if r < i.cfg.StartFailProb {
		return true, 0
	}
	if r < i.cfg.StartFailProb+i.cfg.StartSlowProb {
		d := i.cfg.StartSlowBy
		if d <= 0 {
			d = defaultStartSlowBy
		}
		return false, d
	}
	return false, 0
}

// StatsDropped reports whether nodeID's answer to the stats query at now is
// lost.
func (i *Injector) StatsDropped(now time.Duration, nodeID string) bool {
	if i == nil {
		return false
	}
	if i.windowed(KindStats, nodeID, now) {
		return true
	}
	return i.cfg.StatsDropProb > 0 &&
		i.roll(KindStats, nodeID, uint64(now)) < i.cfg.StatsDropProb
}

// BackendDown reports whether containerID (a replica of service) is
// black-holing connections at now. Windows may target either the container
// ID or the whole service by name; the probabilistic epoch draw stays
// per-container. Outages are epoch-aligned: each BackendDownEvery the
// container is re-drawn, and on a hit it is down for the first
// BackendDownFor of the epoch — the same schedule regardless of who asks or
// how often.
func (i *Injector) BackendDown(now time.Duration, service, containerID string) bool {
	if i == nil {
		return false
	}
	if i.windowed(KindBackend, containerID, now) || (service != containerID && i.windowed(KindBackend, service, now)) {
		return true
	}
	if i.cfg.BackendDownProb <= 0 {
		return false
	}
	every := i.cfg.BackendDownEvery
	if every <= 0 {
		every = defaultBackendDownEvery
	}
	downFor := i.cfg.BackendDownFor
	if downFor <= 0 {
		downFor = defaultBackendDownFor
	}
	if downFor > every {
		downFor = every
	}
	epoch := uint64(now / every)
	if i.roll(KindBackend, containerID, epoch) >= i.cfg.BackendDownProb {
		return false
	}
	return now-time.Duration(epoch)*every < downFor
}

// SlowFactor returns the CPU-work multiplier a slow-backend window imposes
// on service at now (the largest when several overlap), or 1 when none does.
func (i *Injector) SlowFactor(now time.Duration, service string) float64 {
	if i == nil {
		return 1
	}
	factor := 1.0
	for _, w := range i.cfg.Windows {
		if w.Contains(KindSlowBackend, service, now) && w.Factor > factor {
			factor = w.Factor
		}
	}
	return factor
}
