package faults

import (
	"testing"
	"time"
)

func TestZoneOutageCutsBothDirections(t *testing.T) {
	i := New(Config{Seed: 1, Windows: []Window{
		{Kind: KindZoneOutage, Target: "2", From: 10 * time.Second, To: 20 * time.Second},
	}})
	mid := 15 * time.Second
	if !i.ZoneStatsCut(mid, "2") || !i.ZoneActionsCut(mid, "2") {
		t.Error("zone-outage must cut stats and actions for the target zone")
	}
	if i.ZoneStatsCut(mid, "1") || i.ZoneActionsCut(mid, "1") {
		t.Error("zone-outage leaked into another zone")
	}
	for _, now := range []time.Duration{9 * time.Second, 21 * time.Second} {
		if i.ZoneStatsCut(now, "2") || i.ZoneActionsCut(now, "2") {
			t.Errorf("zone-outage active outside its window at %v", now)
		}
	}
}

func TestZonePartitionDirections(t *testing.T) {
	cases := []struct {
		direction             string
		wantStats, wantAction bool
	}{
		{DirectionStats, true, false},
		{DirectionActions, false, true},
		{"", true, true}, // empty direction cuts both, like KindPartition
	}
	for _, c := range cases {
		i := New(Config{Seed: 1, Windows: []Window{
			{Kind: KindZonePartition, Target: "0", Direction: c.direction,
				From: 0, To: time.Minute},
		}})
		now := 30 * time.Second
		if got := i.ZoneStatsCut(now, "0"); got != c.wantStats {
			t.Errorf("direction %q: ZoneStatsCut = %v, want %v", c.direction, got, c.wantStats)
		}
		if got := i.ZoneActionsCut(now, "0"); got != c.wantAction {
			t.Errorf("direction %q: ZoneActionsCut = %v, want %v", c.direction, got, c.wantAction)
		}
	}
}

func TestZoneWindowValidation(t *testing.T) {
	missing := Config{Windows: []Window{
		{Kind: KindZoneOutage, From: 0, To: time.Second},
	}}
	if err := missing.Validate(); err == nil {
		t.Error("zone-outage window without a target accepted")
	}
	badDir := Config{Windows: []Window{
		{Kind: KindZonePartition, Target: "0", Direction: "sideways", From: 0, To: time.Second},
	}}
	if err := badDir.Validate(); err == nil {
		t.Error("zone-partition window with unknown direction accepted")
	}
	good := Config{Windows: []Window{
		{Kind: KindZoneOutage, Target: "3", From: 0, To: time.Second},
		{Kind: KindZonePartition, Target: "1", Direction: DirectionStats, From: 0, To: time.Second},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid zone windows rejected: %v", err)
	}
}

func TestNilInjectorZoneCutsInert(t *testing.T) {
	var i *Injector
	if i.ZoneStatsCut(time.Second, "0") || i.ZoneActionsCut(time.Second, "0") {
		t.Error("nil injector cut a zone")
	}
}
