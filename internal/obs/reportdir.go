package obs

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ReportFile is the rendered Markdown report's file name inside a report
// directory; DecisionsDir and SeriesDir hold the per-run artifacts.
const (
	ReportFile   = "report.md"
	DecisionsDir = "decisions"
	SeriesDir    = "series"
)

// uniqueSlugs assigns each run a distinct artifact slug, suffixing
// duplicates deterministically.
func uniqueSlugs(runs []RunReport) []string {
	out := make([]string, len(runs))
	used := make(map[string]int)
	for i, r := range runs {
		s := Slug(r.Name)
		if s == "" {
			s = "run"
		}
		used[s]++
		if n := used[s]; n > 1 {
			s = fmt.Sprintf("%s-%d", s, n)
		}
		out[i] = s
	}
	return out
}

// WriteReportDir writes a complete report directory for the batch: one
// decision JSONL and one series CSV per run, plus the rendered Markdown
// report. Every artifact is parsed back after writing, so a returned nil
// error guarantees the directory is well-formed. generatedBy is the command
// line quoted in the report preamble.
func WriteReportDir(dir, generatedBy string, runs []RunReport) error {
	for _, sub := range []string{dir, filepath.Join(dir, DecisionsDir), filepath.Join(dir, SeriesDir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
	}
	slugs := uniqueSlugs(runs)
	normalized := make([]RunReport, len(runs))
	for i, r := range runs {
		// Render and write under the unique slug so duplicate names cannot
		// clobber each other's artifacts.
		r.Name = slugName(r.Name, slugs[i], Slug(r.Name))
		normalized[i] = r

		jsonlPath := filepath.Join(dir, DecisionsDir, slugs[i]+".jsonl")
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		if err := r.Journal.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		csvPath := filepath.Join(dir, SeriesDir, slugs[i]+".csv")
		f, err = os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := r.Journal.WriteSeriesCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	report := RenderReport(generatedBy, normalized)
	if err := os.WriteFile(filepath.Join(dir, ReportFile), []byte(report), 0o644); err != nil {
		return err
	}
	return ValidateReportDir(dir)
}

// slugName keeps the run's display name unless its slug had to be
// de-duplicated, in which case the unique slug is appended so report links
// still resolve to the right artifact files.
func slugName(name, unique, plain string) string {
	if unique == plain {
		return name
	}
	return fmt.Sprintf("%s (%s)", name, unique)
}

// ValidateReportDir parses every artifact in a report directory — each
// decisions/*.jsonl line and each series/*.csv record — and checks the
// Markdown report exists. It is the report smoke check CI runs.
func ValidateReportDir(dir string) error {
	if fi, err := os.Stat(filepath.Join(dir, ReportFile)); err != nil || fi.Size() == 0 {
		return fmt.Errorf("obs: missing or empty %s in %s", ReportFile, dir)
	}
	jsonls, err := filepath.Glob(filepath.Join(dir, DecisionsDir, "*.jsonl"))
	if err != nil {
		return err
	}
	for _, p := range jsonls {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		_, err = ParseJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("obs: %s: %w", p, err)
		}
	}
	csvs, err := filepath.Glob(filepath.Join(dir, SeriesDir, "*.csv"))
	if err != nil {
		return err
	}
	if len(jsonls) == 0 || len(csvs) == 0 {
		return fmt.Errorf("obs: report dir %s has no run artifacts", dir)
	}
	for _, p := range csvs {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		recs, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			return fmt.Errorf("obs: %s: %w", p, err)
		}
		if len(recs) == 0 || strings.Join(recs[0], ",") != seriesHeader {
			return fmt.Errorf("obs: %s: unexpected series header", p)
		}
	}
	return nil
}
