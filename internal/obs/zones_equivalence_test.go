package obs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hyscale/internal/platform"
	"hyscale/internal/runner"
)

// TestReportGoldenZonesOne is the sharded-control-plane equivalence
// regression: the observed batch with an explicit zones=1 platform must
// produce byte-identical JSONL/CSV artifacts to the committed pre-refactor
// golden, at every worker count. zones=1 dispatches every control action
// through the ControlPlane interface the zoned plane also implements, so
// byte equality proves the refactor left the single-monitor path untouched.
func TestReportGoldenZonesOne(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_report_artifacts.txt"))
	if err != nil {
		t.Fatalf("missing golden file (generate via TestReportGolden with UPDATE_GOLDEN=1): %v", err)
	}
	for _, workers := range []int{1, 4, 8} {
		specs := observedSpecs()
		for i := range specs {
			cfg := platform.DefaultConfig(0)
			cfg.Zones = 1
			cfg.Observe = true
			specs[i].Platform = cfg
		}
		results, _, err := runner.Execute(workers, 1, specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := artifactBytes(t, results); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: zones=1 artifacts diverged from pre-refactor golden (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}
