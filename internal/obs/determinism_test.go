package obs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hyscale/internal/obs"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// observedSpecs builds a small batch of observed runs mixing algorithms and
// load shapes, sized so scale-outs, verticals and scale-ins all fire.
func observedSpecs() []runner.RunSpec {
	svc := func(name string) runner.ServiceRun {
		return runner.ServiceRun{
			Spec: workload.ServiceSpec{
				Name: name, Kind: workload.KindCPUBound,
				CPUPerRequest: 0.08, MemPerRequest: 2, BaselineMemMB: 200,
				CPUOverheadPerRequest: 0.01,
				InitialReplicaCPU:     1, InitialReplicaMemMB: 512,
				MinReplicas: 1, MaxReplicas: 8, Timeout: 20 * time.Second,
			},
			Target: 0.5,
			Load: runner.LoadSpec{Type: "burst", Base: 6, Peak: 30,
				Period: 80 * time.Second, BurstLen: 25 * time.Second},
		}
	}
	var specs []runner.RunSpec
	for _, algo := range []string{"kubernetes", "hybrid", "hybridmem"} {
		specs = append(specs, runner.RunSpec{
			Name:      "det/" + algo,
			Algorithm: algo,
			Duration:  4 * time.Minute,
			Services:  []runner.ServiceRun{svc("api"), svc("web")},
			Observe:   true,
		})
	}
	return specs
}

// artifactBytes serializes every run's JSONL and CSV artifacts into one
// buffer, in spec order.
func artifactBytes(t *testing.T, results []runner.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Journal == nil {
			t.Fatalf("%s: no journal on an observed run", r.Spec.Name)
		}
		fmt.Fprintf(&buf, "== %s ==\n", r.Spec.Name)
		if err := r.Journal.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Journal.WriteSeriesCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelJournalDeterminism is the tentpole guarantee: observed batches
// produce byte-identical decision logs and series CSVs for any executor
// worker count.
func TestParallelJournalDeterminism(t *testing.T) {
	var golden []byte
	for _, workers := range []int{1, 2, 4} {
		results, _, err := runner.Execute(workers, 1, observedSpecs())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b := artifactBytes(t, results)
		if golden == nil {
			golden = b
			// Sanity: the batch must actually journal something.
			totalDecisions := 0
			for _, r := range results {
				totalDecisions += len(r.Journal.Decisions())
				if len(r.Journal.Samples()) == 0 {
					t.Fatalf("%s: no series samples", r.Spec.Name)
				}
			}
			if totalDecisions == 0 {
				t.Fatal("batch journaled zero decisions")
			}
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("workers=%d: artifacts differ from workers=1 (%d vs %d bytes)",
				workers, len(b), len(golden))
		}
	}
}

// TestUnobservedRunHasNoJournal pins the zero-overhead contract: without
// Observe, no journal exists and the nil journal answers every query.
func TestUnobservedRunHasNoJournal(t *testing.T) {
	specs := observedSpecs()[:1]
	specs[0].Observe = false
	results, _, err := runner.Execute(1, 1, specs)
	if err != nil {
		t.Fatal(err)
	}
	j := results[0].Journal
	if j != nil {
		t.Fatalf("unobserved run produced a journal")
	}
	if j.Enabled() || j.Decisions() != nil || j.Samples() != nil ||
		j.Services() != nil || j.OutcomeCounts() != nil {
		t.Fatal("nil journal must answer every query with zero values")
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil journal WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

// TestJSONLRoundTrip checks ParseJSONL inverts WriteJSONL.
func TestJSONLRoundTrip(t *testing.T) {
	results, _, err := runner.Execute(1, 1, observedSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	j := results[0].Journal
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := j.Decisions()
	if len(parsed) != len(want) {
		t.Fatalf("round trip: %d decisions, want %d", len(parsed), len(want))
	}
	for i := range want {
		if parsed[i] != want[i] {
			t.Fatalf("decision %d: %+v != %+v", i, parsed[i], want[i])
		}
	}
}
