package obs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hyscale/internal/runner"
)

// TestReportGolden pins the -report artifact bytes against a committed
// golden file, at several executor worker counts. The golden was generated
// BEFORE the hot-path overhaul (scratch-buffer monitor snapshots, coalesced
// engine events, incremental metrics merge), so this test proves the
// optimized paths produce byte-identical observable output to the original
// implementation — not merely self-consistent output.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/obs -run TestReportGolden
func TestReportGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "golden_report_artifacts.txt")
	var firstRun []byte
	for _, workers := range []int{1, 4, 8} {
		results, _, err := runner.Execute(workers, 1, observedSpecs())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b := artifactBytes(t, results)
		if firstRun == nil {
			firstRun = b
		} else if !bytes.Equal(firstRun, b) {
			t.Fatalf("workers=%d: artifacts differ across worker counts", workers)
		}
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, firstRun, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(firstRun))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(want, firstRun) {
		t.Fatalf("report artifacts diverged from pre-change golden (%d vs %d bytes); if the change is intentional, regenerate with UPDATE_GOLDEN=1",
			len(firstRun), len(want))
	}
}
