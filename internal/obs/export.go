package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// secs renders a simulated time as seconds with no trailing zeros, the
// timestamp format shared by the JSONL and CSV artifacts.
func secs(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// decisionDTO is the stable wire form of a Decision: field order here is the
// JSONL column order, with the timestamp first.
type decisionDTO struct {
	T float64 `json:"t"`
	Decision
}

// WriteJSONL writes one JSON object per decision, in emission order. The
// encoding is fully deterministic (fixed field order, shortest-float
// numbers), so equal journals produce byte-identical files.
func (j *Journal) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range j.Decisions() {
		if err := enc.Encode(decisionDTO{T: d.At.Seconds(), Decision: d}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads back a WriteJSONL stream — the validation path for
// report artifacts.
func ParseJSONL(r io.Reader) ([]Decision, error) {
	var out []Decision
	dec := json.NewDecoder(r)
	for dec.More() {
		var d decisionDTO
		if err := dec.Decode(&d); err != nil {
			return nil, fmt.Errorf("obs: decision %d: %w", len(out), err)
		}
		d.Decision.At = time.Duration(d.T * float64(time.Second))
		out = append(out, d.Decision)
	}
	return out, nil
}

// seriesHeader is the CSV column set of WriteSeriesCSV.
const seriesHeader = "t_s,service,replicas,cpu_shares,cpu_usage,net_mbps,interval_completed,interval_failed,interval_mean_ms,interval_failed_pct,cum_failed_pct"

// WriteSeriesCSV writes the per-service time series in emission order
// (poll-major, service registration order within a poll). Deterministic for
// equal journals.
func (j *Journal) WriteSeriesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, seriesHeader); err != nil {
		return err
	}
	for _, s := range j.Samples() {
		_, err := fmt.Fprintf(bw, "%s,%s,%d,%s,%s,%s,%d,%d,%s,%s,%s\n",
			secs(s.At), s.Service, s.Replicas,
			fmtF(s.CPUShares), fmtF(s.CPUUsage), fmtF(s.NetMbps),
			s.IntervalCompleted, s.IntervalFailed,
			fmtF(float64(s.IntervalMean)/float64(time.Millisecond)),
			fmtF(s.IntervalFailedPct()), fmtF(s.CumFailedPct))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// fmtF renders a float compactly and deterministically (3 decimal places,
// trailing zeros trimmed).
func fmtF(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
