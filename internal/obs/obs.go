// Package obs is the decision-trace observability layer: a run observer
// that journals every scaling decision the Monitor attempts (with the
// observed per-service inputs that motivated it and the attempt's outcome,
// including the hardened control plane's retry/abandon/requeue paths) and
// appends per-service time series — replica count, cpu-shares, NIC
// utilisation, interval response time and failure rate — sampled on the
// monitor period.
//
// The layer is zero-overhead when disabled: every producer holds a *Journal
// that may be nil, and all Journal methods are nil-receiver-safe, so
// disabled runs execute exactly the code they did before this package
// existed. When enabled (platform.Config.Observe, runner.RunSpec.Observe,
// hyscale.SimConfig.Observe, or hyscale-bench -report), each run owns an
// isolated Journal, so the parallel executor's output stays byte-identical
// for any worker count.
//
// Artifacts: Journal.WriteJSONL emits one JSON object per decision,
// Journal.WriteSeriesCSV emits the per-service time series, and
// WriteReportDir renders a Markdown run report with unicode sparkline
// charts and a decision-timeline table (the format behind hyscale-bench
// -report and EXPERIMENTS.md's causal claims).
package obs

import (
	"time"

	"hyscale/internal/metrics"
	"hyscale/internal/resources"
)

// Kind classifies a scaling action.
type Kind string

// The three action kinds the Monitor executes.
const (
	KindVertical Kind = "vertical"  // docker update of an existing replica
	KindScaleOut Kind = "scale-out" // start a new replica
	KindScaleIn  Kind = "scale-in"  // remove a replica
)

// Outcome is what became of one action attempt.
type Outcome string

// Attempt outcomes. Requeued and Abandoned come from the hardened monitor's
// retry machinery; Moot means the target disappeared before execution;
// Overtaken means a retried scale-out found the service already at its
// replica ceiling; Rejected means the node refused the new allocation.
const (
	OutcomeApplied   Outcome = "applied"
	OutcomeRequeued  Outcome = "requeued"
	OutcomeAbandoned Outcome = "abandoned"
	OutcomeRejected  Outcome = "rejected"
	OutcomeOvertaken Outcome = "overtaken"
	OutcomeMoot      Outcome = "moot"
)

// EventKind classifies a self-healing control-plane event (failure-detector
// transitions, reconcile actions, checkpoint restores).
type EventKind string

// Self-healing event kinds, emitted by the Monitor's detector/reconciler.
const (
	EventNodeSuspect       EventKind = "node-suspect"
	EventNodeDead          EventKind = "node-dead"
	EventNodeRecovered     EventKind = "node-recovered"
	EventReconcileEnqueue  EventKind = "reconcile-enqueue"
	EventReconcileCancel   EventKind = "reconcile-cancel"
	EventReplicaReplaced   EventKind = "replica-replaced"
	EventReadopted         EventKind = "replica-readopted"
	EventStaleDrained      EventKind = "stale-drained"
	EventCheckpointRestore EventKind = "checkpoint-restore"
	EventColdRestart       EventKind = "cold-restart"
)

// Zone disaster-recovery event kinds, emitted by the zoned control plane when
// a collapsed zone's services are re-homed into surviving zones and when they
// migrate back after the zone heals. Event.Detail carries the zone move
// ("zone 3 -> zone 5").
const (
	EventZoneEvacuate EventKind = "zone-evacuate"
	EventZoneReadopt  EventKind = "zone-readopt"
)

// Circuit-breaker event kinds, emitted by the resilience layer on breaker
// state transitions. Event.Detail carries the call-graph edge ("a->b").
const (
	EventBreakerOpen     EventKind = "breaker-open"
	EventBreakerHalfOpen EventKind = "breaker-half-open"
	EventBreakerClose    EventKind = "breaker-close"
)

// EventScalerRecommend is emitted by the multi-metric scaler manager
// whenever its merged recommendation differs from a service's current
// replica count. Event.Detail carries the per-scaler breakdown
// ("service=api merged=5 current=3 cpu=5 memory=1 net=2 queue=1").
const EventScalerRecommend EventKind = "scaler-recommend"

// Event is one self-healing occurrence: a detector transition, a reconcile
// step, or a monitor restart.
type Event struct {
	// At is the simulated time of the event.
	At time.Duration `json:"-"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Node is the machine concerned (empty for monitor restarts).
	Node string `json:"node,omitempty"`
	// Service and Container narrow replica-level events.
	Service   string `json:"service,omitempty"`
	Container string `json:"container,omitempty"`
	// Detail is a short human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// ServiceObserved is the aggregate usage the Monitor observed for one
// service in the snapshot that motivated a decision — the algorithm's
// actual inputs.
type ServiceObserved struct {
	// CPU, MemMB and NetMbps sum measured usage across the service's
	// replicas.
	CPU     float64 `json:"cpu"`
	MemMB   float64 `json:"memMB"`
	NetMbps float64 `json:"netMbps"`
	// RequestedCPU sums the replicas' current CPU allocations, the
	// denominator of every utilisation formula.
	RequestedCPU float64 `json:"requestedCPU"`
	// Replicas is the live replica count at snapshot time.
	Replicas int `json:"replicas"`
}

// Decision is one attempt at one scaling action.
type Decision struct {
	// At is the simulated time of this attempt.
	At time.Duration `json:"-"`
	// Service is the microservice the action concerns.
	Service string `json:"service"`
	// Kind is the action class.
	Kind Kind `json:"kind"`
	// Container is the target replica (vertical, scale-in) or the replica
	// created by a successful scale-out.
	Container string `json:"container,omitempty"`
	// Node is the target machine (scale-out) or the container's host.
	Node string `json:"node,omitempty"`
	// Alloc is the allocation the action requested (new vertical size, or a
	// fresh replica's initial envelope). Zero for scale-ins.
	Alloc resources.Vector `json:"alloc"`
	// Observed is the service's aggregate usage in the snapshot that
	// motivated the decision (last-known for retried attempts).
	Observed ServiceObserved `json:"observed"`
	// Attempt counts prior executions of this action: 0 is the first try,
	// >0 is a hardened-monitor retry.
	Attempt int `json:"attempt"`
	// Outcome is what became of this attempt.
	Outcome Outcome `json:"outcome"`
}

// Sample is one per-service time-series point, taken each monitor period.
// Interval quantities cover the window since the previous sample; the
// cumulative failure percentage is the run total so far.
type Sample struct {
	// At is the simulated sample time.
	At time.Duration
	// Service is the microservice sampled.
	Service string
	// Replicas is the live replica count.
	Replicas int
	// CPUShares sums the replicas' allocated CPU (the docker cpu-shares
	// analogue, in cores).
	CPUShares float64
	// CPUUsage sums measured CPU consumption across replicas (cores).
	CPUUsage float64
	// NetMbps sums measured egress bandwidth across replicas.
	NetMbps float64
	// IntervalCompleted and IntervalFailed count request outcomes inside
	// this sample window.
	IntervalCompleted uint64
	IntervalFailed    uint64
	// IntervalMean is the mean response time of the window's completions
	// (zero when none completed).
	IntervalMean time.Duration
	// CumFailedPct is the cumulative failed-request percentage up to At.
	CumFailedPct float64
}

// IntervalFailedPct returns the window's failure percentage (zero when the
// window saw no traffic).
func (s Sample) IntervalFailedPct() float64 {
	total := s.IntervalCompleted + s.IntervalFailed
	if total == 0 {
		return 0
	}
	return 100 * float64(s.IntervalFailed) / float64(total)
}

// svcCounters tracks a service's previous cumulative counters so samples can
// report interval deltas.
type svcCounters struct {
	completed uint64
	failed    uint64
	totalLat  time.Duration
}

// Journal is one run's decision trace and time series. It is not safe for
// concurrent use (the simulation is single-threaded); every run owns its
// own instance. All methods tolerate a nil receiver, which is the entire
// disabled path.
type Journal struct {
	decisions []Decision
	samples   []Sample
	events    []Event
	prev      map[string]svcCounters
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{prev: make(map[string]svcCounters)}
}

// Enabled reports whether the journal is live (non-nil).
func (j *Journal) Enabled() bool { return j != nil }

// Decision appends one action-attempt record. No-op on a nil journal.
func (j *Journal) Decision(d Decision) {
	if j == nil {
		return
	}
	j.decisions = append(j.decisions, d)
}

// Event appends one self-healing event record. No-op on a nil journal.
func (j *Journal) Event(e Event) {
	if j == nil {
		return
	}
	j.events = append(j.events, e)
}

// Events returns the journal's self-healing events in emission order (nil
// journal: none).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	return j.events
}

// EventCounts tallies self-healing events by kind.
func (j *Journal) EventCounts() map[EventKind]int {
	if j == nil {
		return nil
	}
	out := make(map[EventKind]int)
	for _, e := range j.events {
		out[e.Kind]++
	}
	return out
}

// Sample appends one per-service series point from cumulative counters,
// computing the interval deltas against the service's previous sample.
// No-op on a nil journal.
func (j *Journal) Sample(at time.Duration, service string, replicas int,
	cpuShares, cpuUsage, netMbps float64,
	completed, failed uint64, totalLat time.Duration) {
	if j == nil {
		return
	}
	p := j.prev[service]
	s := Sample{
		At:        at,
		Service:   service,
		Replicas:  replicas,
		CPUShares: cpuShares,
		CPUUsage:  cpuUsage,
		NetMbps:   netMbps,
	}
	if completed >= p.completed {
		s.IntervalCompleted = completed - p.completed
	}
	if failed >= p.failed {
		s.IntervalFailed = failed - p.failed
	}
	if s.IntervalCompleted > 0 && totalLat >= p.totalLat {
		s.IntervalMean = (totalLat - p.totalLat) / time.Duration(s.IntervalCompleted)
	}
	if total := completed + failed; total > 0 {
		s.CumFailedPct = 100 * float64(failed) / float64(total)
	}
	j.prev[service] = svcCounters{completed: completed, failed: failed, totalLat: totalLat}
	j.samples = append(j.samples, s)
}

// Decisions returns the journal's decision records in emission order (nil
// journal: none).
func (j *Journal) Decisions() []Decision {
	if j == nil {
		return nil
	}
	return j.decisions
}

// Samples returns the journal's series samples in emission order (nil
// journal: none).
func (j *Journal) Samples() []Sample {
	if j == nil {
		return nil
	}
	return j.samples
}

// Services returns the distinct sampled service names in first-seen order.
func (j *Journal) Services() []string {
	if j == nil {
		return nil
	}
	var names []string
	seen := make(map[string]bool)
	for _, s := range j.samples {
		if !seen[s.Service] {
			seen[s.Service] = true
			names = append(names, s.Service)
		}
	}
	return names
}

// ServiceSamples returns the samples of one service in time order.
func (j *Journal) ServiceSamples(service string) []Sample {
	if j == nil {
		return nil
	}
	var out []Sample
	for _, s := range j.samples {
		if s.Service == service {
			out = append(out, s)
		}
	}
	return out
}

// OutcomeCounts tallies decisions by outcome.
func (j *Journal) OutcomeCounts() map[Outcome]int {
	if j == nil {
		return nil
	}
	out := make(map[Outcome]int)
	for _, d := range j.decisions {
		out[d.Outcome]++
	}
	return out
}

// RunReport couples one run's identity and aggregate summary with its
// journal — the unit WriteReportDir renders.
type RunReport struct {
	// Name is the RunSpec name (unique within a report).
	Name string
	// Label is the human row label (defaults to Name upstream).
	Label string
	// Algorithm names the autoscaler driving the run.
	Algorithm string
	// Seed is the resolved run seed.
	Seed int64
	// Duration is the simulated horizon.
	Duration time.Duration
	// Summary is the run's aggregate request statistics.
	Summary metrics.Summary
	// Journal is the run's decision trace and series (may be nil).
	Journal *Journal
	// Counters are the run's control-plane counters (hardening, faults and
	// self-healing recovery), in a fixed render order. Kept as plain pairs
	// so obs stays import-free of the monitor package.
	Counters []Counter
}

// Counter is one named cumulative control-plane counter attached to a run
// report.
type Counter struct {
	Name  string
	Value uint64
}
