package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hyscale/internal/metrics"
	"hyscale/internal/resources"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureJournal builds a fully deterministic journal exercising every
// outcome, both decision kinds with targets, and a service that collapses —
// the shapes the renderer must chart.
func fixtureJournal() *Journal {
	j := NewJournal()
	obs1 := ServiceObserved{CPU: 3.2, MemMB: 512, RequestedCPU: 1, Replicas: 1}
	j.Decision(Decision{At: 5 * time.Second, Service: "api", Kind: KindScaleOut,
		Container: "api-1", Node: "node-3",
		Alloc: resources.Vector{CPU: 2, MemMB: 768}, Observed: obs1, Outcome: OutcomeApplied})
	j.Decision(Decision{At: 10 * time.Second, Service: "api", Kind: KindVertical,
		Container: "api-0", Node: "node-1",
		Alloc: resources.Vector{CPU: 3, MemMB: 768}, Observed: obs1, Outcome: OutcomeRejected})
	j.Decision(Decision{At: 10 * time.Second, Service: "web", Kind: KindScaleOut,
		Node:     "node-2",
		Alloc:    resources.Vector{CPU: 1, MemMB: 512},
		Observed: ServiceObserved{CPU: 1.9, MemMB: 300, RequestedCPU: 2, Replicas: 2},
		Outcome:  OutcomeRequeued})
	j.Decision(Decision{At: 15 * time.Second, Service: "web", Kind: KindScaleOut,
		Node:     "node-2",
		Alloc:    resources.Vector{CPU: 1, MemMB: 512},
		Observed: ServiceObserved{CPU: 1.9, MemMB: 300, RequestedCPU: 2, Replicas: 2},
		Attempt:  1, Outcome: OutcomeAbandoned})
	j.Decision(Decision{At: 20 * time.Second, Service: "api", Kind: KindScaleIn,
		Container: "api-1", Node: "node-3", Observed: obs1, Outcome: OutcomeMoot})

	// api stays healthy; web's failure rate climbs then collapses.
	var webFailed, webDone, apiDone uint64
	var apiLat, webLat time.Duration
	for i := 1; i <= 12; i++ {
		at := time.Duration(i) * 5 * time.Second
		apiDone += 100
		apiLat += 100 * 150 * time.Millisecond
		j.Sample(at, "api", 1+i%3, float64(1+i%3), 0.8*float64(1+i%3), 0,
			apiDone, 0, apiLat)
		done := uint64(80)
		failed := uint64(0)
		if i > 6 {
			failed = uint64(20 * (i - 6)) // collapse after t=30s
			done = 80 - failed/2
		}
		webDone += done
		webFailed += failed
		webLat += time.Duration(done) * 400 * time.Millisecond
		j.Sample(at, "web", 2, 2, 1.5, 12.5, webDone, webFailed, webLat)
	}
	return j
}

func fixtureRuns() []RunReport {
	j := fixtureJournal()
	return []RunReport{{
		Name: "Fixture 1/hybrid", Label: "hybrid", Algorithm: "hybrid",
		Seed: 42, Duration: time.Minute,
		Summary: metrics.Summary{
			Requests: 2160, Completed: 2040, ConnectionFailures: 120,
			MeanLatency: 260 * time.Millisecond, P95Latency: 610 * time.Millisecond,
		},
		Journal: j,
	}, {
		Name: "Fixture 2/empty", Algorithm: "kubernetes",
		Seed: 7, Duration: time.Minute,
		Summary: metrics.Summary{Requests: 100, Completed: 100,
			MeanLatency: 90 * time.Millisecond, P95Latency: 120 * time.Millisecond},
		Journal: NewJournal(),
	}}
}

// TestRenderReportGolden pins the renderer's exact output. Regenerate with
//
//	go test ./internal/obs -run RenderReportGolden -update
func TestRenderReportGolden(t *testing.T) {
	got := RenderReport("hyscale-bench -exp fixture -seed 1 -report out", fixtureRuns())
	golden := filepath.Join("testdata", "report.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("rendered report drifted from %s (run with -update to regenerate)\n--- got ---\n%s", golden, got)
	}
}

func TestRenderReportSections(t *testing.T) {
	out := RenderReport("cmd", fixtureRuns())
	for _, want := range []string{
		"## Run index",
		"### Cluster time series",
		"### Per-service failure-rate trajectories (worst services)",
		"### Decision timeline",
		"| web |", // the collapsing service must appear in the trajectories
		"applied 1 · requeued 1 · abandoned 1 · rejected 1 · moot 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The empty journal's run renders without charts but with its summary.
	if !strings.Contains(out, "## Fixture 2/empty") {
		t.Error("report missing the empty run's section")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty input: %q", got)
	}
	if got := Sparkline([]float64{1, 1, 1}, 10); got != "▁▁▁" {
		t.Errorf("flat series: %q", got)
	}
	got := Sparkline([]float64{0, 7}, 10)
	if got != "▁█" {
		t.Errorf("min/max: %q", got)
	}
	// Longer than width downsamples to exactly width runes.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if n := len([]rune(Sparkline(long, 48))); n != 48 {
		t.Errorf("downsampled width = %d, want 48", n)
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Figure 6a: CPU-bound, low-burst/kubernetes": "figure-6a-cpu-bound-low-burst-kubernetes",
		"fig2/baseline": "fig2-baseline",
		"---":           "",
	} {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtF(t *testing.T) {
	for in, want := range map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2.0004:  "2",
		3.14159: "3.142",
		100:     "100",
	} {
		if got := fmtF(in); got != want {
			t.Errorf("fmtF(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteReportDir exercises the full artifact path including the
// parse-back validation.
func TestWriteReportDir(t *testing.T) {
	dir := t.TempDir()
	if err := WriteReportDir(dir, "cmd", fixtureRuns()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, ReportFile),
		filepath.Join(dir, DecisionsDir, "fixture-1-hybrid.jsonl"),
		filepath.Join(dir, SeriesDir, "fixture-1-hybrid.csv"),
		filepath.Join(dir, DecisionsDir, "fixture-2-empty.jsonl"),
	} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing artifact: %v", err)
		}
	}
	if err := ValidateReportDir(dir); err != nil {
		t.Errorf("ValidateReportDir: %v", err)
	}
}

// TestWriteReportDirDuplicateNames checks duplicate run names get distinct
// artifact files.
func TestWriteReportDirDuplicateNames(t *testing.T) {
	runs := []RunReport{
		{Name: "same", Journal: NewJournal()},
		{Name: "same", Journal: NewJournal()},
	}
	runs[0].Journal.Decision(Decision{At: time.Second, Service: "a", Kind: KindScaleOut, Outcome: OutcomeApplied})
	runs[1].Journal.Decision(Decision{At: time.Second, Service: "b", Kind: KindScaleIn, Outcome: OutcomeApplied})
	dir := t.TempDir()
	if err := WriteReportDir(dir, "cmd", runs); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"same.jsonl", "same-2.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, DecisionsDir, p)); err != nil {
			t.Errorf("missing %s: %v", p, err)
		}
	}
}
