// Package netem models the node network path the paper's §III-C experiments
// exercise: a shared NIC with a tx queue whose contention grows with the
// number of concurrently transmitting flows, and per-container tc-style
// egress caps. Vertical network scaling (re-splitting a node's bandwidth
// with tc+iptables) is fair and changes little, while horizontal scaling
// across machines relieves tx-queue contention — exactly the asymmetry that
// motivates the paper's dedicated horizontal network scaling algorithm.
package netem

import "math"

// Model captures the parameters of one node's network path.
type Model struct {
	// CapacityMbps is the NIC line rate.
	CapacityMbps float64
	// TxQueueContention is the per-extra-flow efficiency loss coefficient q:
	// with k concurrently transmitting containers, each flow's achievable
	// share is divided by (1 + q·(k−1)). Zero disables contention.
	TxQueueContention float64
}

// DefaultModel mirrors the paper's cluster: a shared NIC where contention is
// noticeable enough that spreading over ~8 machines keeps paying off
// (Fig. 3) before tapering.
func DefaultModel() Model {
	return Model{CapacityMbps: 1000, TxQueueContention: 0.15}
}

// Share is the outcome of one bandwidth-allocation round for a container.
type Share struct {
	// RateMbps is the egress bandwidth the container actually gets.
	RateMbps float64
}

// Flow describes one container that wants to transmit this tick.
type Flow struct {
	// CapMbps is the container's tc egress cap; 0 means unshaped.
	CapMbps float64
	// Count is the number of concurrent micro-flows (in-flight transmitting
	// requests) inside the container; 0 means the container is idle. The
	// node's tx-queue contention grows with the TOTAL micro-flow count —
	// which is exactly why spreading the same traffic over more machines
	// speeds it up (Fig. 3).
	Count int
}

// Allocate distributes the node's egress bandwidth among flows for one tick.
//
// The allocation is per-micro-flow max-min fair (each TCP flow gets an equal
// share, so a container's share is proportional to its flow count), each
// container clamped by its tc cap, with the whole NIC derated by the
// tx-queue contention of the total micro-flow count. It returns one Share
// per input flow (zero for inactive flows). Allocate never hands out more
// than the derated capacity.
func (m Model) Allocate(flows []Flow) []Share {
	var a Allocator
	return append([]Share(nil), a.Allocate(m, flows)...)
}

// state is one transmitting container's water-filling record.
type state struct {
	idx    int
	weight float64
	cap    float64 // +Inf when unshaped
	frozen bool
	rate   float64
}

// Allocator runs Model.Allocate's algorithm against reusable scratch
// buffers, so per-tick bandwidth allocation is free of steady-state
// allocations. One Allocator belongs to one node (it is not safe for
// concurrent use); the returned shares are valid until its next Allocate.
type Allocator struct {
	shares []Share
	states []state
}

// Allocate distributes bandwidth exactly like Model.Allocate, reusing the
// allocator's scratch. The result aliases internal storage — copy it to keep
// it past the next call.
func (a *Allocator) Allocate(m Model, flows []Flow) []Share {
	if cap(a.shares) < len(flows) {
		a.shares = make([]Share, len(flows))
	}
	shares := a.shares[:len(flows)]
	clear(shares)
	a.shares = shares
	active := 0
	total := 0
	for _, f := range flows {
		if f.Count > 0 {
			active++
			total += f.Count
		}
	}
	if active == 0 {
		return shares
	}

	capacity := m.CapacityMbps * m.Efficiency(total)

	// Weighted max-min fair water-filling: distribute capacity
	// proportionally to flow counts; freeze containers whose tc cap binds
	// and redistribute the leftovers among the rest.
	states := a.states[:0]
	for i, f := range flows {
		if f.Count <= 0 {
			continue
		}
		c := f.CapMbps
		if c <= 0 {
			c = math.Inf(1)
		}
		states = append(states, state{idx: i, weight: float64(f.Count), cap: c})
	}
	a.states = states

	remaining := capacity
	unfrozen := len(states)
	for unfrozen > 0 && remaining > 1e-12 {
		var weightSum float64
		for _, s := range states {
			if !s.frozen {
				weightSum += s.weight
			}
		}
		if weightSum <= 0 {
			break
		}
		progressed := false
		for i := range states {
			s := &states[i]
			if s.frozen {
				continue
			}
			grant := remaining * s.weight / weightSum
			if s.cap <= s.rate+grant {
				// The tc cap binds: top the container up to its cap and
				// freeze it.
				extra := s.cap - s.rate
				if extra < 0 {
					extra = 0
				}
				s.rate += extra
				remaining -= extra
				s.frozen = true
				unfrozen--
				progressed = true
			}
		}
		if !progressed {
			// No cap binds: hand out the final proportional split.
			for i := range states {
				s := &states[i]
				if !s.frozen {
					s.rate += remaining * s.weight / weightSum
				}
			}
			remaining = 0
		}
	}

	for _, s := range states {
		shares[s.idx] = Share{RateMbps: s.rate}
	}
	return shares
}

// Efficiency returns the NIC efficiency factor for k concurrently
// transmitting flows: 1/(1 + q·(k−1)). One flow always runs at full
// efficiency.
func (m Model) Efficiency(k int) float64 {
	if k <= 1 {
		return 1
	}
	return 1 / (1 + m.TxQueueContention*float64(k-1))
}
