package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEfficiency(t *testing.T) {
	m := Model{CapacityMbps: 1000, TxQueueContention: 0.15}
	tests := []struct {
		k    int
		want float64
	}{
		{0, 1}, {1, 1},
		{2, 1 / 1.15},
		{11, 1 / 2.5},
	}
	for _, tt := range tests {
		if got := m.Efficiency(tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Efficiency(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

func TestEfficiencyDisabled(t *testing.T) {
	m := Model{CapacityMbps: 100, TxQueueContention: 0}
	if got := m.Efficiency(50); got != 1 {
		t.Errorf("Efficiency with q=0 = %v, want 1", got)
	}
}

func TestAllocateNoFlows(t *testing.T) {
	m := DefaultModel()
	shares := m.Allocate([]Flow{{CapMbps: 10, Count: 0}, {}})
	for i, s := range shares {
		if s.RateMbps != 0 {
			t.Errorf("share[%d] = %v, want 0", i, s.RateMbps)
		}
	}
}

func TestAllocateSingleUncappedFlowGetsLineRate(t *testing.T) {
	m := Model{CapacityMbps: 1000, TxQueueContention: 0.15}
	shares := m.Allocate([]Flow{{Count: 1}})
	if math.Abs(shares[0].RateMbps-1000) > 1e-9 {
		t.Errorf("single flow = %v, want 1000", shares[0].RateMbps)
	}
}

func TestAllocateEqualSplitByFlowCount(t *testing.T) {
	m := Model{CapacityMbps: 900, TxQueueContention: 0}
	shares := m.Allocate([]Flow{{Count: 1}, {Count: 2}})
	if math.Abs(shares[0].RateMbps-300) > 1e-9 || math.Abs(shares[1].RateMbps-600) > 1e-9 {
		t.Errorf("shares = %v, want 300/600 (per-flow fairness)", shares)
	}
}

func TestAllocateCapBindsAndRedistributes(t *testing.T) {
	m := Model{CapacityMbps: 1000, TxQueueContention: 0}
	shares := m.Allocate([]Flow{{CapMbps: 100, Count: 1}, {Count: 1}})
	if math.Abs(shares[0].RateMbps-100) > 1e-9 {
		t.Errorf("capped flow = %v, want 100", shares[0].RateMbps)
	}
	if math.Abs(shares[1].RateMbps-900) > 1e-9 {
		t.Errorf("uncapped flow = %v, want 900 (leftover)", shares[1].RateMbps)
	}
}

func TestAllocateContentionDeratesTotal(t *testing.T) {
	m := Model{CapacityMbps: 1000, TxQueueContention: 0.15}
	// Two containers, 5 flows each: total 10 flows.
	shares := m.Allocate([]Flow{{Count: 5}, {Count: 5}})
	total := shares[0].RateMbps + shares[1].RateMbps
	want := 1000 * m.Efficiency(10)
	if math.Abs(total-want) > 1e-6 {
		t.Errorf("total = %v, want derated %v", total, want)
	}
}

func TestAllocateTinyCapDoesNotStall(t *testing.T) {
	m := Model{CapacityMbps: 1000, TxQueueContention: 0.1}
	shares := m.Allocate([]Flow{{CapMbps: 0.001, Count: 3}, {Count: 1}})
	if shares[0].RateMbps > 0.001+1e-9 {
		t.Errorf("capped = %v, want <= 0.001", shares[0].RateMbps)
	}
	if shares[1].RateMbps <= 0 {
		t.Error("uncapped flow starved")
	}
}

// Property: the sum of shares never exceeds the derated capacity, no share
// is negative, and no share exceeds its cap.
func TestQuickAllocateInvariants(t *testing.T) {
	m := Model{CapacityMbps: 1000, TxQueueContention: 0.15}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%8) + 1
		flows := make([]Flow, k)
		total := 0
		for i := range flows {
			if rng.Float64() < 0.7 {
				flows[i].Count = rng.Intn(20)
			}
			if rng.Float64() < 0.5 {
				flows[i].CapMbps = rng.Float64() * 200
			}
			total += flows[i].Count
		}
		shares := m.Allocate(flows)
		var sum float64
		for i, s := range shares {
			if s.RateMbps < -1e-9 {
				return false
			}
			if flows[i].Count == 0 && s.RateMbps != 0 {
				return false
			}
			if flows[i].CapMbps > 0 && s.RateMbps > flows[i].CapMbps+1e-6 {
				return false
			}
			sum += s.RateMbps
		}
		return sum <= m.CapacityMbps*m.Efficiency(total)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: allocation is work-conserving when nobody is capped — active
// flows split the whole derated capacity.
func TestQuickAllocateWorkConserving(t *testing.T) {
	m := Model{CapacityMbps: 500, TxQueueContention: 0.1}
	f := func(n uint8) bool {
		k := int(n%6) + 1
		flows := make([]Flow, k)
		total := 0
		for i := range flows {
			flows[i].Count = i + 1
			total += i + 1
		}
		shares := m.Allocate(flows)
		var sum float64
		for _, s := range shares {
			sum += s.RateMbps
		}
		return math.Abs(sum-m.CapacityMbps*m.Efficiency(total)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
