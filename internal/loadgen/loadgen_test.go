package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hyscale/internal/workload"
)

func spec() workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: "svc", Kind: workload.KindCPUBound,
		CPUPerRequest: 0.1, InitialReplicaCPU: 1, InitialReplicaMemMB: 256,
		MinReplicas: 1, MaxReplicas: 4, Timeout: 30 * time.Second,
	}
}

func TestConstantRate(t *testing.T) {
	p := Constant{RPS: 7}
	if p.Rate(0) != 7 || p.Rate(time.Hour) != 7 {
		t.Error("constant rate not constant")
	}
}

func TestWaveRate(t *testing.T) {
	w := Wave{Base: 10, Amplitude: 0.5, Period: time.Minute}
	if got := w.Rate(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("Rate(0) = %v, want 10 (sin 0)", got)
	}
	if got := w.Rate(15 * time.Second); math.Abs(got-15) > 1e-9 {
		t.Errorf("Rate(quarter) = %v, want 15 (peak)", got)
	}
	if got := w.Rate(45 * time.Second); math.Abs(got-5) > 1e-9 {
		t.Errorf("Rate(3/4) = %v, want 5 (trough)", got)
	}
}

func TestWaveNeverNegative(t *testing.T) {
	w := Wave{Base: 10, Amplitude: 2, Period: time.Minute} // swing exceeds base
	for i := 0; i < 60; i++ {
		if w.Rate(time.Duration(i)*time.Second) < 0 {
			t.Fatal("negative rate")
		}
	}
}

func TestWaveZeroPeriod(t *testing.T) {
	w := Wave{Base: 4}
	if w.Rate(time.Hour) != 4 {
		t.Error("zero-period wave should be flat")
	}
}

func TestWavePhaseShift(t *testing.T) {
	a := Wave{Base: 10, Amplitude: 0.5, Period: time.Minute}
	b := Wave{Base: 10, Amplitude: 0.5, Period: time.Minute, PhaseShift: 15 * time.Second}
	if math.Abs(b.Rate(0)-a.Rate(15*time.Second)) > 1e-9 {
		t.Error("phase shift not applied")
	}
}

func TestBurstRate(t *testing.T) {
	b := Burst{Base: 2, Peak: 20, Period: 10 * time.Minute, BurstLen: 2 * time.Minute}
	if got := b.Rate(time.Minute); got != 20 {
		t.Errorf("in-burst rate = %v, want 20", got)
	}
	if got := b.Rate(5 * time.Minute); got != 2 {
		t.Errorf("off-burst rate = %v, want 2", got)
	}
	// Next period bursts again.
	if got := b.Rate(10*time.Minute + time.Second); got != 20 {
		t.Errorf("second-period burst = %v, want 20", got)
	}
}

func TestFuncPattern(t *testing.T) {
	p := Func(func(at time.Duration) float64 { return at.Seconds() })
	if p.Rate(5*time.Second) != 5 {
		t.Error("Func pattern not forwarded")
	}
}

func TestIDAllocator(t *testing.T) {
	var a IDAllocator
	if a.Next() != 1 || a.Next() != 2 {
		t.Error("IDs not sequential")
	}
}

func TestDeterministicArrivalsMatchRate(t *testing.T) {
	var ids IDAllocator
	g := NewGenerator(spec(), Constant{RPS: 10}, &ids)
	total := 0
	tick := 100 * time.Millisecond
	for i := 0; i < 100; i++ { // ten seconds
		total += len(g.Arrivals(time.Duration(i)*tick, tick, nil))
	}
	if total != 100 {
		t.Errorf("arrivals = %d, want 100 (10 rps x 10 s)", total)
	}
}

func TestFractionalRatesAccumulate(t *testing.T) {
	var ids IDAllocator
	g := NewGenerator(spec(), Constant{RPS: 0.5}, &ids)
	total := 0
	for i := 0; i < 100; i++ { // ten seconds at 0.5 rps
		total += len(g.Arrivals(time.Duration(i)*100*time.Millisecond, 100*time.Millisecond, nil))
	}
	if total != 5 {
		t.Errorf("arrivals = %d, want 5", total)
	}
}

func TestArrivalsSpreadWithinWindow(t *testing.T) {
	var ids IDAllocator
	g := NewGenerator(spec(), Constant{RPS: 40}, &ids)
	reqs := g.Arrivals(time.Second, time.Second, nil)
	if len(reqs) != 40 {
		t.Fatalf("arrivals = %d, want 40", len(reqs))
	}
	prev := time.Duration(0)
	for _, r := range reqs {
		if r.Arrival < time.Second || r.Arrival >= 2*time.Second {
			t.Fatalf("arrival %v outside window", r.Arrival)
		}
		if r.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.Arrival
	}
}

func TestArrivalIDsUnique(t *testing.T) {
	var ids IDAllocator
	g1 := NewGenerator(spec(), Constant{RPS: 10}, &ids)
	g2 := NewGenerator(spec(), Constant{RPS: 10}, &ids)
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		for _, g := range []*Generator{g1, g2} {
			for _, r := range g.Arrivals(time.Duration(i)*time.Second, time.Second, nil) {
				if seen[r.ID] {
					t.Fatalf("duplicate ID %d", r.ID)
				}
				seen[r.ID] = true
			}
		}
	}
}

func TestPoissonReproducible(t *testing.T) {
	run := func() []int {
		var ids IDAllocator
		g := NewGenerator(spec(), Constant{RPS: 20}, &ids)
		g.Poisson = true
		rng := rand.New(rand.NewSource(5))
		var counts []int
		for i := 0; i < 50; i++ {
			counts = append(counts, len(g.Arrivals(time.Duration(i)*100*time.Millisecond, 100*time.Millisecond, rng)))
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different Poisson arrivals")
		}
	}
}

func TestPoissonMeanRoughlyMatches(t *testing.T) {
	var ids IDAllocator
	g := NewGenerator(spec(), Constant{RPS: 50}, &ids)
	g.Poisson = true
	rng := rand.New(rand.NewSource(1))
	total := 0
	const secs = 200
	for i := 0; i < secs*10; i++ {
		total += len(g.Arrivals(time.Duration(i)*100*time.Millisecond, 100*time.Millisecond, rng))
	}
	mean := float64(total) / secs
	if mean < 45 || mean > 55 {
		t.Errorf("Poisson mean rate = %v, want ~50", mean)
	}
}

func TestPoissonLargeLambdaNormalApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	total := 0
	const n = 2000
	for i := 0; i < n; i++ {
		total += poisson(rng, 100) // exercises the normal-approximation path
	}
	mean := float64(total) / n
	if mean < 95 || mean > 105 {
		t.Errorf("poisson(100) mean = %v, want ~100", mean)
	}
}

func TestZeroAndNegativeWindows(t *testing.T) {
	var ids IDAllocator
	g := NewGenerator(spec(), Constant{RPS: 100}, &ids)
	if got := g.Arrivals(0, 0, nil); got != nil {
		t.Error("zero window produced arrivals")
	}
	if got := g.Arrivals(0, -time.Second, nil); got != nil {
		t.Error("negative window produced arrivals")
	}
}
