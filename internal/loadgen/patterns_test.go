package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestRamp(t *testing.T) {
	r := Ramp{Start: 10, End: 50, Duration: 100 * time.Second}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10},
		{50 * time.Second, 30},
		{100 * time.Second, 50},
		{time.Hour, 50},
		{-time.Second, 10},
	}
	for _, tt := range tests {
		if got := r.Rate(tt.at); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Rate(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestRampZeroDuration(t *testing.T) {
	r := Ramp{Start: 10, End: 50}
	if r.Rate(0) != 50 {
		t.Error("zero-duration ramp should sit at End")
	}
}

func TestDiurnal(t *testing.T) {
	d := Diurnal{Base: 100, DayAmplitude: 0.5, Day: 24 * time.Hour}
	if got := d.Rate(0); math.Abs(got-100) > 1e-9 {
		t.Errorf("Rate(0) = %v, want 100", got)
	}
	if got := d.Rate(6 * time.Hour); math.Abs(got-150) > 1e-9 {
		t.Errorf("Rate(day peak) = %v, want 150", got)
	}
	if got := d.Rate(18 * time.Hour); math.Abs(got-50) > 1e-9 {
		t.Errorf("Rate(night) = %v, want 50", got)
	}
}

func TestDiurnalWithRippleNeverNegative(t *testing.T) {
	d := Diurnal{Base: 10, DayAmplitude: 1.0, Day: time.Hour, RippleAmplitude: 0.5, Ripple: 7 * time.Minute}
	for i := 0; i < 3600; i += 30 {
		if d.Rate(time.Duration(i)*time.Second) < 0 {
			t.Fatal("negative rate")
		}
	}
}

func TestFlashCrowd(t *testing.T) {
	f := FlashCrowd{
		Base: 5, Peak: 50,
		Start: time.Minute, RampUp: 30 * time.Second,
		Hold: time.Minute, Decay: 30 * time.Second,
	}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 5},
		{time.Minute + 15*time.Second, 27.5},   // mid-ramp
		{2 * time.Minute, 50},                  // holding
		{2*time.Minute + 45*time.Second, 27.5}, // mid-decay
		{time.Hour, 5},                         // back to base
	}
	for _, tt := range tests {
		if got := f.Rate(tt.at); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Rate(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestFlashCrowdNoDecay(t *testing.T) {
	f := FlashCrowd{Base: 1, Peak: 10, Start: 0, RampUp: time.Second, Hold: time.Second}
	if got := f.Rate(3 * time.Second); got != 1 {
		t.Errorf("after hold with no decay = %v, want base", got)
	}
}

func TestSum(t *testing.T) {
	s := Sum{Constant{RPS: 3}, Constant{RPS: 4}}
	if got := s.Rate(0); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
	if got := (Sum{}).Rate(0); got != 0 {
		t.Errorf("empty Sum = %v, want 0", got)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Pattern: Constant{RPS: 6}, Factor: 1.5}
	if got := s.Rate(0); got != 9 {
		t.Errorf("Scaled = %v, want 9", got)
	}
}
