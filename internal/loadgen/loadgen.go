// Package loadgen emulates the paper's client load: open-loop request
// arrivals following the stable "low-burst" wave, the unstable "high-burst"
// spiking pattern (§VI), fixed-count microbenchmarks (§III), and
// trace-driven demand (the Bitbrains replay of §VI-B).
package loadgen

import (
	"math"
	"math/rand"
	"time"

	"hyscale/internal/workload"
)

// Pattern yields the instantaneous request rate (requests/second) at a
// simulated time.
type Pattern interface {
	Rate(at time.Duration) float64
}

// Constant is a flat arrival rate.
type Constant struct {
	// RPS is the constant rate in requests per second.
	RPS float64
}

// Rate implements Pattern.
func (c Constant) Rate(time.Duration) float64 { return c.RPS }

// Wave is the paper's low-burst stable load: a low-amplitude sinusoid that
// emulates gentle peaks and troughs in client activity.
type Wave struct {
	// Base is the mean rate (requests/second).
	Base float64
	// Amplitude is the relative swing around Base (0.25 means ±25 %).
	Amplitude float64
	// Period is the wavelength of one peak-trough cycle.
	Period time.Duration
	// PhaseShift offsets the wave so services do not all peak together.
	PhaseShift time.Duration
}

// Rate implements Pattern.
func (w Wave) Rate(at time.Duration) float64 {
	if w.Period <= 0 {
		return w.Base
	}
	phase := 2 * math.Pi * float64(at+w.PhaseShift) / float64(w.Period)
	r := w.Base * (1 + w.Amplitude*math.Sin(phase))
	if r < 0 {
		return 0
	}
	return r
}

// Burst is the paper's high-burst unstable load: a spiking square wave that
// jumps from a quiet baseline to a peak for a short window each period.
type Burst struct {
	// Base is the off-peak rate (requests/second).
	Base float64
	// Peak is the in-burst rate (requests/second).
	Peak float64
	// Period is the time between burst starts.
	Period time.Duration
	// BurstLen is how long each burst lasts.
	BurstLen time.Duration
	// PhaseShift offsets the burst schedule.
	PhaseShift time.Duration
}

// Rate implements Pattern.
func (b Burst) Rate(at time.Duration) float64 {
	if b.Period <= 0 {
		return b.Base
	}
	pos := (at + b.PhaseShift) % b.Period
	if pos < b.BurstLen {
		return b.Peak
	}
	return b.Base
}

// Func adapts an arbitrary rate function to the Pattern interface; the
// trace package uses it to drive demand from Bitbrains usage series.
type Func func(at time.Duration) float64

// Rate implements Pattern.
func (f Func) Rate(at time.Duration) float64 { return f(at) }

// IDAllocator hands out process-wide unique request IDs for one experiment.
type IDAllocator struct{ next uint64 }

// Next returns a fresh request ID.
func (a *IDAllocator) Next() uint64 {
	a.next++
	return a.next
}

// Generator produces request arrivals for one microservice.
type Generator struct {
	// Spec is the target service.
	Spec workload.ServiceSpec
	// Pattern drives the arrival rate over time.
	Pattern Pattern
	// Poisson, when true, draws each tick's arrival count from a Poisson
	// distribution with the expected mean instead of a deterministic
	// accumulator. Deterministic mode is exactly reproducible and is the
	// default for benchmarks.
	Poisson bool

	ids *IDAllocator
	acc float64
	// buf is Arrivals' reusable result buffer; each tick's slice is valid
	// until the next Arrivals call on this generator.
	buf []*workload.Request
}

// NewGenerator builds a generator drawing IDs from ids.
func NewGenerator(spec workload.ServiceSpec, p Pattern, ids *IDAllocator) *Generator {
	return &Generator{Spec: spec, Pattern: p, ids: ids}
}

// Arrivals returns the requests arriving in the window [now, now+dt). The
// arrival instants are spread uniformly across the window for latency
// accuracy.
//
// The returned slice is a reused scratch buffer, valid until the next
// Arrivals call on this generator — consume (route) it immediately.
func (g *Generator) Arrivals(now, dt time.Duration, rng *rand.Rand) []*workload.Request {
	if dt <= 0 {
		return nil
	}
	rate := g.Pattern.Rate(now)
	expected := rate * dt.Seconds()

	var n int
	if g.Poisson && rng != nil {
		n = poisson(rng, expected)
	} else {
		g.acc += expected
		n = int(g.acc)
		g.acc -= float64(n)
	}
	if n <= 0 {
		return nil
	}
	g.buf = g.buf[:0]
	for i := 0; i < n; i++ {
		at := now + time.Duration(float64(dt)*(float64(i)+0.5)/float64(n))
		g.buf = append(g.buf, workload.NewRequest(g.ids.Next(), g.Spec, at))
	}
	return g.buf
}

// poisson draws a Poisson-distributed integer with mean lambda using
// Knuth's method for small lambda and a normal approximation above 30 to
// stay O(1).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
