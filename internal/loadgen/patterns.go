package loadgen

import (
	"math"
	"time"
)

// Additional load patterns beyond the paper's low-burst/high-burst pair:
// composable building blocks for the sensitivity sweeps and examples.

// Ramp grows the rate linearly from Start to End over Duration, then holds
// End — the classic capacity-planning shape for watching an autoscaler
// track sustained growth.
type Ramp struct {
	Start, End float64
	Duration   time.Duration
}

// Rate implements Pattern.
func (r Ramp) Rate(at time.Duration) float64 {
	if r.Duration <= 0 || at >= r.Duration {
		return r.End
	}
	if at < 0 {
		return r.Start
	}
	frac := float64(at) / float64(r.Duration)
	return r.Start + (r.End-r.Start)*frac
}

// Diurnal composes two sinusoids — a long day/night cycle and a shorter
// intra-day ripple — approximating the business-day load of the Bitbrains
// tenants (§VI-B).
type Diurnal struct {
	// Base is the mean rate.
	Base float64
	// DayAmplitude is the relative swing of the day/night cycle.
	DayAmplitude float64
	// Day is the long cycle length.
	Day time.Duration
	// RippleAmplitude and Ripple add the short cycle.
	RippleAmplitude float64
	Ripple          time.Duration
}

// Rate implements Pattern.
func (d Diurnal) Rate(at time.Duration) float64 {
	r := d.Base
	if d.Day > 0 {
		r += d.Base * d.DayAmplitude * math.Sin(2*math.Pi*float64(at)/float64(d.Day))
	}
	if d.Ripple > 0 {
		r += d.Base * d.RippleAmplitude * math.Sin(2*math.Pi*float64(at)/float64(d.Ripple))
	}
	if r < 0 {
		return 0
	}
	return r
}

// FlashCrowd is a single one-off spike on top of a flat baseline — the
// slashdot-effect shape that punishes slow scale-up the hardest.
type FlashCrowd struct {
	// Base is the steady rate outside the event.
	Base float64
	// Peak is the rate at the height of the crowd.
	Peak float64
	// Start is when the crowd begins.
	Start time.Duration
	// RampUp is how long the surge takes to reach Peak.
	RampUp time.Duration
	// Hold is how long the peak lasts.
	Hold time.Duration
	// Decay is how long the crowd takes to dissipate.
	Decay time.Duration
}

// Rate implements Pattern.
func (f FlashCrowd) Rate(at time.Duration) float64 {
	switch {
	case at < f.Start:
		return f.Base
	case at < f.Start+f.RampUp:
		frac := float64(at-f.Start) / float64(f.RampUp)
		return f.Base + (f.Peak-f.Base)*frac
	case at < f.Start+f.RampUp+f.Hold:
		return f.Peak
	case f.Decay > 0 && at < f.Start+f.RampUp+f.Hold+f.Decay:
		frac := float64(at-f.Start-f.RampUp-f.Hold) / float64(f.Decay)
		return f.Peak + (f.Base-f.Peak)*frac
	default:
		return f.Base
	}
}

// Sum superimposes patterns (e.g. a Diurnal baseline plus a FlashCrowd).
type Sum []Pattern

// Rate implements Pattern.
func (s Sum) Rate(at time.Duration) float64 {
	var total float64
	for _, p := range s {
		total += p.Rate(at)
	}
	return total
}

// Scaled multiplies a pattern's rate by a constant factor — handy for
// sweeping load intensity without rebuilding the pattern.
type Scaled struct {
	Pattern Pattern
	Factor  float64
}

// Rate implements Pattern.
func (s Scaled) Rate(at time.Duration) float64 {
	return s.Pattern.Rate(at) * s.Factor
}
