package scalermgr

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/resources"
)

// --- window aggregator -------------------------------------------------

func TestWindowEmpty(t *testing.T) {
	w := newWindow(time.Minute)
	if _, ok := w.Avg(0); ok {
		t.Error("Avg on empty window reported ok")
	}
	if _, ok := w.Max(0); ok {
		t.Error("Max on empty window reported ok")
	}
	if w.Len() != 0 {
		t.Errorf("Len = %d, want 0", w.Len())
	}
}

func TestWindowSingleSample(t *testing.T) {
	w := newWindow(time.Minute)
	w.Record(10*time.Second, 3.5)
	avg, ok := w.Avg(10 * time.Second)
	if !ok || avg != 3.5 {
		t.Errorf("Avg = %v, %v; want 3.5, true", avg, ok)
	}
	max, ok := w.Max(10 * time.Second)
	if !ok || max != 3.5 {
		t.Errorf("Max = %v, %v; want 3.5, true", max, ok)
	}
}

func TestWindowPrunesAgedSamples(t *testing.T) {
	w := newWindow(time.Minute)
	w.Record(0, 100)
	w.Record(30*time.Second, 2)
	// At t=59s the first sample is 59s old: still inside.
	if avg, _ := w.Avg(59 * time.Second); avg != 51 {
		t.Errorf("Avg at 59s = %v, want 51", avg)
	}
	// At t=60s it is exactly window-width old: pruned.
	if avg, _ := w.Avg(60 * time.Second); avg != 2 {
		t.Errorf("Avg at 60s = %v, want 2", avg)
	}
	// Long after the last sample the window is empty again.
	if _, ok := w.Avg(10 * time.Minute); ok {
		t.Error("window still has an opinion long after its last sample")
	}
}

// TestBurstWindowOutrunsStable is the manager's core scaling asymmetry: a
// short spike moves the burst window's max long before it moves the stable
// window's average, so scale-up reacts fast while scale-down stays damped.
func TestBurstWindowOutrunsStable(t *testing.T) {
	stable := newWindow(DefaultStableWindow) // 60 s avg
	burst := newWindow(DefaultBurstWindow)   // 15 s max
	// 50 s of calm then a 10 s spike, sampled every 5 s.
	for at := 0 * time.Second; at <= 60*time.Second; at += 5 * time.Second {
		v := 1.0
		if at >= 50*time.Second {
			v = 8.0
		}
		stable.Record(at, v)
		burst.Record(at, v)
	}
	now := 60 * time.Second
	avg, _ := stable.Avg(now)
	max, _ := burst.Max(now)
	if max != 8 {
		t.Errorf("burst max = %v, want 8", max)
	}
	if avg >= max {
		t.Errorf("stable avg %v should lag burst max %v during a spike", avg, max)
	}
	// With a 1.0 target the burst window demands 8 replicas while the
	// stable window justifies far fewer: scale-up is burst-driven.
	if sn, bn := need(avg, 1), need(max, 1); bn <= sn {
		t.Errorf("burstNeed %d should exceed stableNeed %d", bn, sn)
	}
}

// --- merge policies ----------------------------------------------------

func TestMergeMax(t *testing.T) {
	got := mergeMax([]Opinion{
		{Metric: "cpu", Desired: 2},
		{Metric: "memory", Desired: 7},
		{Metric: "net", Desired: 4},
	})
	if got != 7 {
		t.Errorf("mergeMax = %d, want 7", got)
	}
}

func TestMergeWeighted(t *testing.T) {
	// (3*4 + 1*1) / 4 = 3.25 → ceil → 4.
	got := mergeWeighted([]Opinion{
		{Metric: "cpu", Desired: 4, Weight: 3},
		{Metric: "memory", Desired: 1, Weight: 1},
	})
	if got != 4 {
		t.Errorf("mergeWeighted = %d, want 4", got)
	}
	// Zero weights fall back to weight 1: plain ceil-average.
	got = mergeWeighted([]Opinion{
		{Metric: "cpu", Desired: 1},
		{Metric: "net", Desired: 2},
	})
	if got != 2 {
		t.Errorf("mergeWeighted with default weights = %d, want 2", got)
	}
}

func TestUnknownMergePolicyRejected(t *testing.T) {
	_, err := New(core.DefaultConfig(), Config{MergePolicy: "median"}, false)
	if err == nil {
		t.Fatal("New accepted an unknown merge policy")
	}
}

func TestRegisterMergePolicyDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a built-in policy did not panic")
		}
	}()
	RegisterMergePolicy("max", mergeMax)
}

// --- cost allocator bounds property ------------------------------------

// TestCostAllocatorRespectsMinReplicas drives the cost-optimal manager over
// randomized snapshot sequences — random load, random freshness gaps, random
// per-service bounds — applies every plan to a synthetic cluster, and checks
// the bounds invariant after every round: no plan may take a service below
// MinReplicas (or above MaxReplicas), no matter which allocator path
// (optimizer, fallback, last-resort hold, scale-to-zero) produced it.
func TestCostAllocatorRespectsMinReplicas(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mgr, err := New(core.DefaultConfig(), Config{}, true)
			if err != nil {
				t.Fatal(err)
			}

			type svc struct {
				info     core.ServiceInfo
				replicas []core.ReplicaStats
				nextID   int
			}
			services := make([]*svc, 3)
			for i := range services {
				min := rng.Intn(3) // 0..2 — exercise scale-to-zero too
				s := &svc{info: core.ServiceInfo{
					Name:          fmt.Sprintf("svc-%d", i),
					MinReplicas:   min,
					MaxReplicas:   min + 1 + rng.Intn(5),
					TargetUtil:    0.5,
					BaselineMemMB: 100,
					InitialAlloc:  resources.Vector{CPU: 0.5, MemMB: 256, NetMbps: 20},
				}}
				for r := 0; r < min+1; r++ {
					s.replicas = append(s.replicas, core.ReplicaStats{
						ContainerID: fmt.Sprintf("svc-%d-c%d", i, s.nextID),
						NodeID:      fmt.Sprintf("node-%d", s.nextID%4),
						Requested:   s.info.InitialAlloc,
						Routable:    true,
					})
					s.nextID++
				}
				services[i] = s
			}

			now := time.Duration(0)
			for round := 0; round < 200; round++ {
				// Random decision-round gap: mostly the 5 s monitor period,
				// occasionally a long stall that trips the freshness check.
				if rng.Intn(10) == 0 {
					now += time.Duration(20+rng.Intn(600)) * time.Second
				} else {
					now += 5 * time.Second
				}

				snap := core.Snapshot{Now: now}
				for _, s := range services {
					for j := range s.replicas {
						r := &s.replicas[j]
						r.Usage = resources.Vector{
							CPU:     r.Requested.CPU * rng.Float64() * 1.6,
							MemMB:   100 + (r.Requested.MemMB-100)*rng.Float64()*1.4,
							NetMbps: r.Requested.NetMbps * rng.Float64() * 1.6,
						}
						r.Inflight = rng.Intn(12)
					}
					snap.Services = append(snap.Services, core.ServiceStats{Info: s.info, Replicas: s.replicas})
				}
				for n := 0; n < 4; n++ {
					snap.Nodes = append(snap.Nodes, core.NodeStats{
						ID:        fmt.Sprintf("node-%d", n),
						Capacity:  resources.Vector{CPU: 8, MemMB: 16384, NetMbps: 1000},
						Available: resources.Vector{CPU: 4, MemMB: 8192, NetMbps: 500},
					})
				}

				plan := mgr.Decide(snap)

				// Apply the plan to the synthetic cluster.
				for _, a := range plan.Actions {
					switch act := a.(type) {
					case core.ScaleOut:
						for _, s := range services {
							if s.info.Name == act.Service {
								s.replicas = append(s.replicas, core.ReplicaStats{
									ContainerID: fmt.Sprintf("%s-c%d", s.info.Name, s.nextID),
									NodeID:      act.NodeID,
									Requested:   act.Alloc,
									Routable:    true,
								})
								s.nextID++
							}
						}
					case core.ScaleIn:
						for _, s := range services {
							for j, r := range s.replicas {
								if r.ContainerID == act.ContainerID {
									s.replicas = append(s.replicas[:j], s.replicas[j+1:]...)
									break
								}
							}
						}
					}
				}

				for _, s := range services {
					if got := len(s.replicas); got < s.info.MinReplicas {
						t.Fatalf("round %d: %s at %d replicas, below MinReplicas %d",
							round, s.info.Name, got, s.info.MinReplicas)
					}
					if got := len(s.replicas); got > s.info.MaxReplicas {
						t.Fatalf("round %d: %s at %d replicas, above MaxReplicas %d",
							round, s.info.Name, got, s.info.MaxReplicas)
					}
				}
			}
		})
	}
}
