package scalermgr

import (
	"fmt"
	"time"
)

// Metric names understood by the built-in scalers.
const (
	MetricCPU    = "cpu"
	MetricMemory = "memory"
	MetricNet    = "net"
	MetricQueue  = "queue"
)

// ScalerConfig configures one scaler inside the manager.
type ScalerConfig struct {
	// Metric selects the signal: cpu | memory | net | queue.
	Metric string `json:"metric"`
	// Weight is the scaler's vote weight under the "weighted" merge policy
	// (ignored by "max"). Zero means 1.
	Weight float64 `json:"weight,omitempty"`
	// Target overrides the scaler's utilization target. For resource scalers
	// it is a fraction of the replica's request (0.5 == 50 %); zero falls
	// back to the service's TargetUtil. For the queue scaler it is the
	// per-replica queue depth; zero falls back to Config.QueueTarget.
	Target float64 `json:"target,omitempty"`
	// StableWindow / BurstWindow override the manager-wide window widths for
	// this scaler only. Zero inherits.
	StableWindow time.Duration `json:"stableWindow,omitempty"`
	BurstWindow  time.Duration `json:"burstWindow,omitempty"`
}

// ServiceTargets carries one service's SLO/cost objectives.
type ServiceTargets struct {
	// Service names the microservice the targets apply to.
	Service string `json:"service"`
	// SLOMs is the service's response-time objective in milliseconds. Under
	// the cost-optimal allocator a service with an SLO keeps burst-window
	// headroom on the way down (scale-down honours burst demand); services
	// without one shed headroom down to stable demand.
	SLOMs float64 `json:"sloMs,omitempty"`
	// TargetUtil overrides the utilization target for this service's
	// resource scalers.
	TargetUtil float64 `json:"targetUtil,omitempty"`
	// QueueTarget overrides the per-replica queue-depth target.
	QueueTarget float64 `json:"queueTarget,omitempty"`
}

// Config is the manager's tuning surface. The zero value is usable: New
// fills every unset field from the defaults below.
type Config struct {
	// StableWindow is the averaging window the stable aggregators use
	// (default 60 s). The stable signal drives scale-down.
	StableWindow time.Duration `json:"stableWindow,omitempty"`
	// BurstWindow is the max-tracking window the burst aggregators use
	// (default 15 s). The burst signal drives scale-up responsiveness.
	BurstWindow time.Duration `json:"burstWindow,omitempty"`
	// MergePolicy names the recommendation merge: "max" (default) or
	// "weighted", plus anything added via RegisterMergePolicy.
	MergePolicy string `json:"mergePolicy,omitempty"`
	// Scalers lists the per-service scalers. Empty means all four built-ins
	// (cpu, memory, net, queue) at weight 1.
	Scalers []ScalerConfig `json:"scalers,omitempty"`
	// QueueTarget is the default per-replica queue depth the queue scaler
	// aims for (default 4).
	QueueTarget float64 `json:"queueTarget,omitempty"`
	// FreshWithin bounds the gap between successive decision rounds for the
	// metric stream to count as fresh (default 15 s — three monitor
	// periods). A larger gap drops the cost allocator to its fallback path.
	FreshWithin time.Duration `json:"freshWithin,omitempty"`
	// Retention is how long demand must stay at zero before the cost
	// allocator scales a MinReplicas==0 service to zero (default 5 m).
	// Until it expires the service is held at one replica.
	Retention time.Duration `json:"retention,omitempty"`
	// SLOTargetMs is a default response-time objective applied to every
	// service without an explicit ServiceTargets entry (0 = none).
	SLOTargetMs float64 `json:"sloTargetMs,omitempty"`
	// Services holds per-service SLO/cost overrides.
	Services []ServiceTargets `json:"services,omitempty"`
}

// Default values used by Config.withDefaults.
const (
	DefaultStableWindow = 60 * time.Second
	DefaultBurstWindow  = 15 * time.Second
	DefaultFreshWithin  = 15 * time.Second
	DefaultRetention    = 5 * time.Minute
	DefaultQueueTarget  = 4.0
	DefaultMergePolicy  = "max"
)

// DefaultScalers returns the four built-in scalers at weight 1.
func DefaultScalers() []ScalerConfig {
	return []ScalerConfig{
		{Metric: MetricCPU},
		{Metric: MetricMemory},
		{Metric: MetricNet},
		{Metric: MetricQueue},
	}
}

// DefaultConfig returns the fully-populated default configuration.
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

// withDefaults returns a copy with every unset field filled in.
func (c Config) withDefaults() Config {
	if c.StableWindow <= 0 {
		c.StableWindow = DefaultStableWindow
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = DefaultBurstWindow
	}
	if c.MergePolicy == "" {
		c.MergePolicy = DefaultMergePolicy
	}
	if len(c.Scalers) == 0 {
		c.Scalers = DefaultScalers()
	} else {
		c.Scalers = append([]ScalerConfig(nil), c.Scalers...)
	}
	for i := range c.Scalers {
		if c.Scalers[i].Weight <= 0 {
			c.Scalers[i].Weight = 1
		}
		if c.Scalers[i].StableWindow <= 0 {
			c.Scalers[i].StableWindow = c.StableWindow
		}
		if c.Scalers[i].BurstWindow <= 0 {
			c.Scalers[i].BurstWindow = c.BurstWindow
		}
	}
	if c.QueueTarget <= 0 {
		c.QueueTarget = DefaultQueueTarget
	}
	if c.FreshWithin <= 0 {
		c.FreshWithin = DefaultFreshWithin
	}
	if c.Retention <= 0 {
		c.Retention = DefaultRetention
	}
	return c
}

// Validate rejects configurations New would silently misinterpret.
func (c Config) Validate() error {
	for i, s := range c.Scalers {
		switch s.Metric {
		case MetricCPU, MetricMemory, MetricNet, MetricQueue:
		default:
			return fmt.Errorf("scalermgr: scaler %d: unknown metric %q", i, s.Metric)
		}
		if s.Weight < 0 {
			return fmt.Errorf("scalermgr: scaler %d (%s): negative weight %g", i, s.Metric, s.Weight)
		}
		if s.Target < 0 {
			return fmt.Errorf("scalermgr: scaler %d (%s): negative target %g", i, s.Metric, s.Target)
		}
		if s.StableWindow < 0 || s.BurstWindow < 0 {
			return fmt.Errorf("scalermgr: scaler %d (%s): negative window", i, s.Metric)
		}
	}
	if c.MergePolicy != "" {
		if _, ok := mergePolicy(c.MergePolicy); !ok {
			return fmt.Errorf("scalermgr: unknown merge policy %q", c.MergePolicy)
		}
	}
	if c.StableWindow < 0 || c.BurstWindow < 0 || c.FreshWithin < 0 || c.Retention < 0 {
		return fmt.Errorf("scalermgr: negative duration in config")
	}
	if c.QueueTarget < 0 {
		return fmt.Errorf("scalermgr: negative queue target %g", c.QueueTarget)
	}
	seen := make(map[string]bool, len(c.Services))
	for _, t := range c.Services {
		if t.Service == "" {
			return fmt.Errorf("scalermgr: service targets entry without a service name")
		}
		if seen[t.Service] {
			return fmt.Errorf("scalermgr: duplicate service targets for %q", t.Service)
		}
		seen[t.Service] = true
		if t.SLOMs < 0 || t.TargetUtil < 0 || t.QueueTarget < 0 {
			return fmt.Errorf("scalermgr: negative target for service %q", t.Service)
		}
	}
	return nil
}

// targetsFor returns the service's override entry, if any.
func (c Config) targetsFor(service string) (ServiceTargets, bool) {
	for _, t := range c.Services {
		if t.Service == service {
			return t, true
		}
	}
	return ServiceTargets{}, false
}

// sloFor returns the effective response-time objective for the service
// (0 = none declared).
func (c Config) sloFor(service string) float64 {
	if t, ok := c.targetsFor(service); ok && t.SLOMs > 0 {
		return t.SLOMs
	}
	return c.SLOTargetMs
}
