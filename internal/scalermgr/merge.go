package scalermgr

import "math"

// Opinion is one scaler's replica recommendation entering the merge.
type Opinion struct {
	// Metric names the scaler that produced the opinion.
	Metric string
	// Desired is the scaler's recommended replica count (pre-clamp).
	Desired int
	// Weight is the scaler's configured vote weight.
	Weight float64
}

// MergeFunc combines per-scaler opinions into one replica count. Called
// only with a non-empty opinion list.
type MergeFunc func(ops []Opinion) int

var mergeRegistry = map[string]MergeFunc{
	"max":      mergeMax,
	"weighted": mergeWeighted,
}

// RegisterMergePolicy installs a named merge policy; it panics on a
// duplicate name so accidental shadowing of a built-in fails loudly at
// init time.
func RegisterMergePolicy(name string, fn MergeFunc) {
	if _, dup := mergeRegistry[name]; dup {
		panic("scalermgr: duplicate merge policy " + name)
	}
	mergeRegistry[name] = fn
}

// mergePolicy resolves a policy by name.
func mergePolicy(name string) (MergeFunc, bool) {
	fn, ok := mergeRegistry[name]
	return fn, ok
}

// mergeMax is the libkpa default: the largest recommendation wins, so every
// signal can force capacity up but none can force it down alone.
func mergeMax(ops []Opinion) int {
	m := ops[0].Desired
	for _, o := range ops[1:] {
		if o.Desired > m {
			m = o.Desired
		}
	}
	return m
}

// mergeWeighted takes the weight-averaged recommendation, rounded up so a
// fractional need still provisions a whole replica.
func mergeWeighted(ops []Opinion) int {
	var sum, wsum float64
	for _, o := range ops {
		w := o.Weight
		if w <= 0 {
			w = 1
		}
		sum += w * float64(o.Desired)
		wsum += w
	}
	if wsum == 0 {
		return mergeMax(ops)
	}
	return int(math.Ceil(sum / wsum))
}
