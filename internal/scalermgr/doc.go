// Package scalermgr generalises the algorithm layer into a multi-metric
// scaler manager: each service runs several independent scalers (CPU,
// memory, network bandwidth, and queue depth), every scaler aggregates its
// signal over a stable (average) and a burst (max) sliding window, and the
// Manager merges the per-scaler replica recommendations under a pluggable
// merge policy — max-wins by default, demand-weighted as an alternative
// (RegisterMergePolicy adds more).
//
// The package ships two algorithm spellings, both resolved through
// runner.NewAlgorithm:
//
//   - "manager": horizontal scaling straight from the merged recommendation,
//     the libkpa Manager/Scaler architecture.
//   - "manager-cost": the merged recommendation feeds a cost-optimal
//     allocator with an inferno-style decision hierarchy — optimizer when
//     metrics are fresh (scale up to burst demand, down to stable demand
//     unless the service declares an SLO), fallback to the last merged
//     recommendation when the metric stream has a gap, last-resort hold
//     otherwise — plus retention-period-aware scale-to-zero, forced binpack
//     placement, and drain-preferring scale-in so emptied machines stop
//     accruing machine-hours in internal/cost.
//
// Managers are deterministic: state is keyed by service, snapshots are
// walked in order, and no wall-clock or shared RNG is consulted, so runs
// remain byte-identical at any -parallel count.
package scalermgr
