package scalermgr

import "time"

// sample is one recorded aggregate with its simulated timestamp.
type sample struct {
	at time.Duration
	v  float64
}

// window is a time-based sliding-window aggregator over the periodic
// samples a scaler records each decision round. Samples older than the
// window width are pruned on every record and read, so an aggregator that
// stops receiving samples (monitor outage) naturally empties instead of
// serving stale data forever.
type window struct {
	width   time.Duration
	samples []sample
}

func newWindow(width time.Duration) *window { return &window{width: width} }

// Record appends a sample taken at the given simulated time and prunes
// everything that has aged out. Samples must arrive in non-decreasing time
// order (the decision loop guarantees this).
func (w *window) Record(at time.Duration, v float64) {
	w.samples = append(w.samples, sample{at: at, v: v})
	w.prune(at)
}

// prune drops samples with age >= width. A sample recorded exactly at `now`
// always survives (width is positive).
func (w *window) prune(now time.Duration) {
	cut := 0
	for cut < len(w.samples) && now-w.samples[cut].at >= w.width {
		cut++
	}
	if cut > 0 {
		w.samples = append(w.samples[:0], w.samples[cut:]...)
	}
}

// Avg returns the mean of the in-window samples; ok is false when the
// window is empty (no opinion).
func (w *window) Avg(now time.Duration) (avg float64, ok bool) {
	w.prune(now)
	if len(w.samples) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, s := range w.samples {
		sum += s.v
	}
	return sum / float64(len(w.samples)), true
}

// Max returns the maximum of the in-window samples; ok is false when the
// window is empty.
func (w *window) Max(now time.Duration) (max float64, ok bool) {
	w.prune(now)
	if len(w.samples) == 0 {
		return 0, false
	}
	m := w.samples[0].v
	for _, s := range w.samples[1:] {
		if s.v > m {
			m = s.v
		}
	}
	return m, true
}

// Len reports the number of samples currently inside the window.
func (w *window) Len() int { return len(w.samples) }
