package scalermgr

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/resources"
)

// Recommendation is one scaler's latest per-service recommendation, kept
// for observability (httpapi metrics, obs journal events).
type Recommendation struct {
	Service string `json:"service"`
	Scaler  string `json:"scaler"`
	// Stable and Burst are the replica counts the two windows justify.
	Stable int `json:"stable"`
	Burst  int `json:"burst"`
	// Desired is the scaler's recommendation: max(Stable, Burst).
	Desired int `json:"desired"`
	// Merged is the manager's post-merge decision for the service and
	// Current the replica count it saw.
	Merged  int `json:"merged"`
	Current int `json:"current"`
}

// scalerState is one scaler's aggregators for one service.
type scalerState struct {
	cfg    ScalerConfig
	stable *window
	burst  *window
}

// svcState is the manager's per-service memory.
type svcState struct {
	scalers []*scalerState

	// lastSampleAt feeds the freshness check: a decision-round gap larger
	// than FreshWithin (monitor crash, checkpoint restore) drops the cost
	// allocator to its fallback path for one round.
	lastSampleAt time.Duration
	haveSample   bool

	// lastWant is the last merged recommendation the optimizer produced —
	// the fallback allocation when metrics go stale.
	lastWant int
	haveWant bool

	// zeroSince tracks how long merged demand has been zero, for
	// retention-period-aware scale-to-zero.
	zeroSince    time.Duration
	trackingZero bool

	// gate state: per-service horizontal rescale throttling.
	lastUp, lastDown time.Duration
	didUp, didDown   bool
}

// Manager runs several scalers per service and merges their
// recommendations; see the package documentation for the architecture.
// It implements core.Algorithm.
type Manager struct {
	name    string
	cost    bool
	cfg     Config
	coreCfg core.Config
	merge   MergeFunc

	services map[string]*svcState

	// recs holds the latest per-scaler recommendations keyed by service,
	// refreshed every decision round the service appears in.
	recs map[string][]Recommendation

	// observer, when set, receives one callback per service per round in
	// which the merged recommendation differs from the current replica
	// count. Wired to the obs journal by the platform.
	observer func(at time.Duration, service, detail string)
}

var _ core.Algorithm = (*Manager)(nil)

// New builds a manager algorithm. costOptimal selects the "manager-cost"
// behaviour (decision hierarchy, binpack, drain-preferring scale-in,
// scale-to-zero); coreCfg supplies the shared knobs (rescale intervals,
// default placement).
func New(coreCfg core.Config, cfg Config, costOptimal bool) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	fn, ok := mergePolicy(cfg.MergePolicy)
	if !ok {
		return nil, fmt.Errorf("scalermgr: unknown merge policy %q", cfg.MergePolicy)
	}
	name := "manager"
	if costOptimal {
		name = "manager-cost"
	}
	return &Manager{
		name:     name,
		cost:     costOptimal,
		cfg:      cfg,
		coreCfg:  coreCfg,
		merge:    fn,
		services: make(map[string]*svcState),
		recs:     make(map[string][]Recommendation),
	}, nil
}

// Name implements core.Algorithm.
func (m *Manager) Name() string { return m.name }

// SetRecommendObserver installs the per-service recommendation callback
// (at most one; nil clears). The platform uses a structural type assertion
// on this method to wire the obs journal without an import cycle.
func (m *Manager) SetRecommendObserver(fn func(at time.Duration, service, detail string)) {
	m.observer = fn
}

// Recommendations returns the latest per-scaler recommendations in
// deterministic order (service name, then scaler position).
func (m *Manager) Recommendations() []Recommendation {
	names := make([]string, 0, len(m.recs))
	for name := range m.recs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Recommendation
	for _, name := range names {
		out = append(out, m.recs[name]...)
	}
	return out
}

// Decide implements core.Algorithm.
func (m *Manager) Decide(snap core.Snapshot) core.Plan {
	var plan core.Plan
	// One availability ledger for the round, shared across services, so
	// later placements see earlier ones.
	avail := core.AvailableByNode(snap)
	// The cost allocator drains machines: replicas on the least-occupied
	// nodes are removed first, so count residents per node once.
	var nodeLoad map[string]int
	if m.cost {
		nodeLoad = make(map[string]int, len(snap.Nodes))
		for _, svc := range snap.Services {
			for _, r := range svc.Replicas {
				nodeLoad[r.NodeID]++
			}
		}
	}
	for _, svc := range snap.Services {
		m.decideService(snap, svc, avail, nodeLoad, &plan)
	}
	return plan
}

// state returns (creating if needed) the per-service memory.
func (m *Manager) state(service string) *svcState {
	st, ok := m.services[service]
	if !ok {
		st = &svcState{}
		for _, sc := range m.cfg.Scalers {
			st.scalers = append(st.scalers, &scalerState{
				cfg:    sc,
				stable: newWindow(sc.StableWindow),
				burst:  newWindow(sc.BurstWindow),
			})
		}
		m.services[service] = st
	}
	return st
}

// sampleFor computes one scaler's aggregate signal over the service's
// replicas: the sum of per-replica utilization fractions for resource
// scalers, the total resident request count for the queue scaler. ok is
// false when no replica carries the signal (nothing to record).
//
// The memory scaler measures TRANSIENT memory (usage above the service's
// resident baseline) against transient capacity (request above baseline):
// baseline memory is paid per replica and does not redistribute when
// replicas are added, so counting it in summed utilization would ratchet
// every memory-heavy service to MaxReplicas.
func sampleFor(metric string, svc core.ServiceStats) (sum float64, ok bool) {
	baseline := svc.Info.BaselineMemMB
	for _, r := range svc.Replicas {
		switch metric {
		case MetricCPU:
			if r.Requested.CPU > 0 {
				sum += r.Usage.CPU / r.Requested.CPU
				ok = true
			}
		case MetricMemory:
			if cap := r.Requested.MemMB - baseline; cap > 0 {
				if transient := r.Usage.MemMB - baseline; transient > 0 {
					sum += transient / cap
				}
				ok = true
			}
		case MetricNet:
			if r.Requested.NetMbps > 0 {
				sum += r.Usage.NetMbps / r.Requested.NetMbps
				ok = true
			}
		case MetricQueue:
			sum += float64(r.Inflight)
			ok = true
		}
	}
	return sum, ok
}

// targetFor resolves one scaler's effective target for a service: the
// per-service override, then the scaler's own target, then the service's
// TargetUtil (resource scalers) or the manager's QueueTarget (queue).
func (m *Manager) targetFor(sc ScalerConfig, info core.ServiceInfo) float64 {
	ov, hasOv := m.cfg.targetsFor(info.Name)
	if sc.Metric == MetricQueue {
		if hasOv && ov.QueueTarget > 0 {
			return ov.QueueTarget
		}
		if sc.Target > 0 {
			return sc.Target
		}
		return m.cfg.QueueTarget
	}
	if hasOv && ov.TargetUtil > 0 {
		return ov.TargetUtil
	}
	if sc.Target > 0 {
		return sc.Target
	}
	return info.TargetUtil
}

// need converts an aggregated signal into a replica count at the target.
func need(agg, target float64) int {
	if agg <= 0 {
		return 0
	}
	return int(math.Ceil(agg / target))
}

func (m *Manager) decideService(snap core.Snapshot, svc core.ServiceStats,
	avail map[string]resources.Vector, nodeLoad map[string]int, plan *core.Plan) {

	info := svc.Info
	cur := len(svc.Replicas)

	// Bounds first, unconditionally — no allocator path may leave a
	// service outside [MinReplicas, MaxReplicas].
	if cur < info.MinReplicas {
		m.addReplicas(snap, info, info.MinReplicas-cur, avail, plan)
		return
	}
	if cur > info.MaxReplicas {
		m.removeReplicas(svc, cur-info.MaxReplicas, nodeLoad, plan)
		return
	}

	st := m.state(info.Name)

	// Freshness is judged on the gap since the previous round's samples —
	// before this round's are recorded.
	fresh := st.haveSample && snap.Now-st.lastSampleAt <= m.cfg.FreshWithin
	st.lastSampleAt = snap.Now
	st.haveSample = true

	// Record this round's sample into every scaler and collect opinions.
	recs := m.recs[info.Name][:0]
	var ops []Opinion
	var stableOps []Opinion
	for _, sc := range st.scalers {
		sum, ok := sampleFor(sc.cfg.Metric, svc)
		if ok {
			sc.stable.Record(snap.Now, sum)
			sc.burst.Record(snap.Now, sum)
		}
		target := m.targetFor(sc.cfg, info)
		if target <= 0 {
			continue
		}
		stAvg, okS := sc.stable.Avg(snap.Now)
		bMax, okB := sc.burst.Max(snap.Now)
		if !okS && !okB {
			continue // empty windows: no opinion
		}
		stableNeed, burstNeed := need(stAvg, target), need(bMax, target)
		desired := stableNeed
		if burstNeed > desired {
			desired = burstNeed
		}
		ops = append(ops, Opinion{Metric: sc.cfg.Metric, Desired: desired, Weight: sc.cfg.Weight})
		stableOps = append(stableOps, Opinion{Metric: sc.cfg.Metric, Desired: stableNeed, Weight: sc.cfg.Weight})
		recs = append(recs, Recommendation{
			Service: info.Name, Scaler: sc.cfg.Metric,
			Stable: stableNeed, Burst: burstNeed, Desired: desired, Current: cur,
		})
	}

	if len(ops) == 0 {
		// No scaler has an opinion (e.g. a service with zero replicas and
		// MinReplicas 0): hold.
		m.recs[info.Name] = recs
		return
	}

	merged := m.merge(ops)
	want := merged
	if m.cost {
		want = m.costWant(st, info, cur, merged, stableOps, fresh, snap.Now)
	}
	want = clamp(want, info.MinReplicas, info.MaxReplicas)

	for i := range recs {
		recs[i].Merged = merged
	}
	m.recs[info.Name] = recs

	if m.observer != nil && merged != cur {
		m.observer(snap.Now, info.Name, recDetail(info.Name, merged, cur, recs))
	}

	switch {
	case want > cur:
		if !st.canUp(snap.Now, m.coreCfg.ScaleUpInterval) {
			return
		}
		if m.addReplicas(snap, info, want-cur, avail, plan) > 0 {
			st.markUp(snap.Now)
		}
	case want < cur:
		if !st.canDown(snap.Now, m.coreCfg.ScaleDownInterval) {
			return
		}
		m.removeReplicas(svc, cur-want, nodeLoad, plan)
		st.markDown(snap.Now)
	}
}

// costWant applies the inferno-style decision hierarchy on top of the
// merged recommendation:
//
//  1. Optimizer (metrics fresh): scale up to merged burst-inclusive demand,
//     down only to stable demand — unless the service declares an SLO, in
//     which case burst headroom is kept on the way down too — with
//     retention-period-aware scale-to-zero for MinReplicas==0 services.
//  2. Fallback (metric stream has a gap): hold the last optimizer
//     allocation.
//  3. Last resort (no allocation yet): hold the current replica count.
func (m *Manager) costWant(st *svcState, info core.ServiceInfo, cur, merged int,
	stableOps []Opinion, fresh bool, now time.Duration) int {

	if !fresh {
		if st.haveWant {
			return st.lastWant // fallback allocation
		}
		return cur // last resort
	}

	// Optimizer path. Demand-zero tracking feeds scale-to-zero.
	if merged == 0 {
		if !st.trackingZero {
			st.trackingZero, st.zeroSince = true, now
		}
	} else {
		st.trackingZero = false
	}

	want := cur
	down := m.merge(stableOps)
	if m.cfg.sloFor(info.Name) > 0 {
		down = merged // SLO services keep burst headroom on the way down
	}
	switch {
	case merged > cur:
		want = merged
	case down < cur:
		want = down
	}
	if want == 0 && info.MinReplicas == 0 {
		// Scale-to-zero only after demand has stayed at zero for the
		// retention period; until then hold the last replica warm.
		if !(st.trackingZero && now-st.zeroSince >= m.cfg.Retention) {
			want = 1
		}
	}
	st.lastWant, st.haveWant = want, true
	return want
}

// canUp / canDown / markUp / markDown implement the per-service rescale
// interval gate (paper: 3 s up, 50 s down).
func (st *svcState) canUp(now time.Duration, every time.Duration) bool {
	return !st.didUp || now-st.lastUp >= every
}
func (st *svcState) canDown(now time.Duration, every time.Duration) bool {
	return !st.didDown || now-st.lastDown >= every
}
func (st *svcState) markUp(now time.Duration)   { st.didUp, st.lastUp = true, now }
func (st *svcState) markDown(now time.Duration) { st.didDown, st.lastDown = true, now }

// addReplicas schedules up to n new replicas, decrementing the shared
// ledger; the cost allocator forces binpack so emptied machines stay empty.
func (m *Manager) addReplicas(snap core.Snapshot, info core.ServiceInfo, n int,
	avail map[string]resources.Vector, plan *core.Plan) int {

	placement := m.coreCfg.Placement
	if m.cost {
		placement = core.PlacementBinPack
	}
	placed := 0
	for i := 0; i < n; i++ {
		nodeID := core.PickNodeFor(snap.Nodes, avail, info.InitialAlloc, "", placement)
		if nodeID == "" {
			break
		}
		plan.Actions = append(plan.Actions, core.ScaleOut{Service: info.Name, NodeID: nodeID, Alloc: info.InitialAlloc})
		avail[nodeID] = avail[nodeID].Sub(info.InitialAlloc).ClampNonNegative()
		placed++
	}
	return placed
}

// removeReplicas schedules n removals. The plain manager removes the
// newest replicas (least established, minimal churn); the cost allocator
// removes from the least-occupied nodes first — draining machines down to
// empty stops their machine-hour accrual — breaking ties newest-first.
func (m *Manager) removeReplicas(svc core.ServiceStats, n int, nodeLoad map[string]int, plan *core.Plan) {
	if n > len(svc.Replicas) {
		n = len(svc.Replicas)
	}
	if nodeLoad == nil {
		for i := 0; i < n; i++ {
			victim := svc.Replicas[len(svc.Replicas)-1-i]
			plan.Actions = append(plan.Actions, core.ScaleIn{ContainerID: victim.ContainerID})
		}
		return
	}
	order := make([]int, len(svc.Replicas))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la := nodeLoad[svc.Replicas[order[a]].NodeID]
		lb := nodeLoad[svc.Replicas[order[b]].NodeID]
		if la != lb {
			return la < lb
		}
		return order[a] > order[b]
	})
	for i := 0; i < n; i++ {
		victim := svc.Replicas[order[i]]
		plan.Actions = append(plan.Actions, core.ScaleIn{ContainerID: victim.ContainerID})
		nodeLoad[victim.NodeID]--
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// recDetail renders the per-scaler breakdown for the obs journal, e.g.
// "merged=5 current=3 cpu=5 memory=1 net=2 queue=1".
func recDetail(service string, merged, cur int, recs []Recommendation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "service=%s merged=%d current=%d", service, merged, cur)
	for _, r := range recs {
		fmt.Fprintf(&b, " %s=%d", r.Scaler, r.Desired)
	}
	return b.String()
}
