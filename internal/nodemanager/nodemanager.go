// Package nodemanager implements the NODE MANAGER (NM) of the paper's
// platform (§V-B): one per machine, it polls `docker stats` for every hosted
// container, aggregates usage between Monitor queries, and executes the
// vertical scaling commands (`docker update`) the Monitor sends down. NMs
// deliberately make no scaling decisions of their own — the paper explains
// that locally-optimal NM decisions oscillate against the Monitor's global
// ones (§V-B).
package nodemanager

import (
	"fmt"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/resources"
)

// ContainerStats is the per-container usage aggregate an NM reports to the
// Monitor.
type ContainerStats struct {
	ID      string
	Service string
	// Requested is the container's current allocation.
	Requested resources.Vector
	// Usage is the mean measured usage since the previous report.
	Usage resources.Vector
	// Routable reports whether the container is Running.
	Routable bool
	// Inflight is the number of requests resident in the container (queued
	// plus executing) at report time — the queue-depth signal.
	Inflight int
}

// Report is one NM's answer to a Monitor stats query.
type Report struct {
	NodeID     string
	Capacity   resources.Vector
	Available  resources.Vector
	Containers []ContainerStats
}

// Manager is the node-local agent.
type Manager struct {
	node *cluster.Node

	// samples accumulates per-container usage sums and counts between
	// reports.
	sums   map[string]resources.Vector
	counts map[string]int

	// containers is the reusable backing array for Report's stats slice —
	// cleared, not reallocated, each report, so steady-state polls allocate
	// nothing. Returned Reports alias it and are valid until the next Report
	// call; callers that cache must copy (see monitor.cachedReport).
	containers []ContainerStats

	missedQueries uint64
}

// New attaches a manager to its node.
func New(node *cluster.Node) *Manager {
	return &Manager{
		node:   node,
		sums:   make(map[string]resources.Vector),
		counts: make(map[string]int),
	}
}

// NodeID returns the managed node's ID.
func (m *Manager) NodeID() string { return m.node.ID() }

// Sample records each hosted container's latest usage (what one `docker
// stats` poll would observe). Call once per physics tick.
func (m *Manager) Sample() {
	for _, c := range m.node.Containers() {
		if c.State != container.StateRunning {
			continue
		}
		u := c.LastUsage()
		m.sums[c.ID] = m.sums[c.ID].Add(resources.Vector{CPU: u.CPU, MemMB: u.MemMB, NetMbps: u.NetMbps})
		m.counts[c.ID]++
	}
}

// Report aggregates the samples since the previous report and resets the
// window. Containers that produced no samples yet (e.g. still starting)
// report zero usage.
//
// The returned Report's Containers slice is reused across calls: it is valid
// until the next Report on this manager, and callers that keep it longer must
// copy it.
func (m *Manager) Report() Report {
	rep := Report{
		NodeID:    m.node.ID(),
		Capacity:  m.node.Capacity(),
		Available: m.node.Available(),
	}
	m.containers = m.containers[:0]
	for _, c := range m.node.Containers() {
		var usage resources.Vector
		if n := m.counts[c.ID]; n > 0 {
			usage = m.sums[c.ID].Scale(1 / float64(n))
		}
		m.containers = append(m.containers, ContainerStats{
			ID:        c.ID,
			Service:   c.Service,
			Requested: c.Alloc,
			Usage:     usage,
			Routable:  c.Routable(),
			Inflight:  c.Inflight(),
		})
	}
	rep.Containers = m.containers
	clear(m.sums)
	clear(m.counts)
	return rep
}

// NoteMissedQuery records a stats query whose answer never reached the
// Monitor. The sampling window is left intact, so the usage accumulated
// during the outage lands in the next successful Report — nothing is lost,
// only delayed.
func (m *Manager) NoteMissedQuery() { m.missedQueries++ }

// MissedQueries returns how many stats queries were dropped in transit.
func (m *Manager) MissedQueries() uint64 { return m.missedQueries }

// ApplyVertical executes a `docker update` on a hosted container.
func (m *Manager) ApplyVertical(containerID string, alloc resources.Vector) error {
	c := m.node.Container(containerID)
	if c == nil {
		return fmt.Errorf("nodemanager %s: unknown container %q", m.node.ID(), containerID)
	}
	return c.Update(alloc)
}

// Liveness reports the number of live (non-removed) containers; the paper's
// NMs check microservice liveness for the Monitor.
func (m *Manager) Liveness() int {
	n := 0
	for _, c := range m.node.Containers() {
		if c.State != container.StateRemoved {
			n++
		}
	}
	return n
}
