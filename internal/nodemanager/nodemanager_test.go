package nodemanager

import (
	"math"
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

func spec() workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: "svc", Kind: workload.KindCPUBound,
		CPUPerRequest: 1.0, MemPerRequest: 10, BaselineMemMB: 50,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 256,
		MinReplicas: 1, MaxReplicas: 4, Timeout: 30 * time.Second,
	}
}

func setup(t *testing.T) (*cluster.Node, *Manager, *container.Container) {
	t.Helper()
	n, err := cluster.NewNode(cluster.DefaultNodeConfig("node-0"))
	if err != nil {
		t.Fatal(err)
	}
	c := container.New("c-0", spec(), "node-0", resources.Vector{CPU: 2, MemMB: 512}, 0)
	c.MaybeStart(0)
	if err := n.AddContainer(c); err != nil {
		t.Fatal(err)
	}
	return n, New(n), c
}

func TestReportAveragesSamples(t *testing.T) {
	_, nm, c := setup(t)

	c.SetLastUsage(container.Usage{CPU: 1.0, MemMB: 100, NetMbps: 10})
	nm.Sample()
	c.SetLastUsage(container.Usage{CPU: 2.0, MemMB: 200, NetMbps: 30})
	nm.Sample()

	rep := nm.Report()
	if rep.NodeID != "node-0" {
		t.Errorf("NodeID = %q", rep.NodeID)
	}
	if len(rep.Containers) != 1 {
		t.Fatalf("containers = %d, want 1", len(rep.Containers))
	}
	cs := rep.Containers[0]
	if math.Abs(cs.Usage.CPU-1.5) > 1e-9 || math.Abs(cs.Usage.MemMB-150) > 1e-9 || math.Abs(cs.Usage.NetMbps-20) > 1e-9 {
		t.Errorf("averaged usage = %v", cs.Usage)
	}
	if cs.Requested.CPU != 2 {
		t.Errorf("requested = %v", cs.Requested)
	}
	if !cs.Routable {
		t.Error("running container reported unroutable")
	}
}

func TestReportResetsWindow(t *testing.T) {
	_, nm, c := setup(t)
	c.SetLastUsage(container.Usage{CPU: 4})
	nm.Sample()
	_ = nm.Report()

	// New window: no samples -> zero usage.
	rep := nm.Report()
	if rep.Containers[0].Usage.CPU != 0 {
		t.Errorf("window not reset: %v", rep.Containers[0].Usage)
	}
}

func TestReportIncludesCapacityAndAvailability(t *testing.T) {
	_, nm, _ := setup(t)
	rep := nm.Report()
	if rep.Capacity.CPU != 4 {
		t.Errorf("capacity = %v", rep.Capacity)
	}
	if rep.Available.CPU != 2 { // 4 - 2 allocated
		t.Errorf("available = %v", rep.Available)
	}
}

func TestStartingContainersNotSampled(t *testing.T) {
	n, _, _ := setup(t)
	nm := New(n)
	starting := container.New("c-1", spec(), "node-0", resources.Vector{CPU: 1, MemMB: 256}, time.Hour)
	_ = n.AddContainer(starting)
	nm.Sample()
	rep := nm.Report()
	for _, cs := range rep.Containers {
		if cs.ID == "c-1" {
			if cs.Routable {
				t.Error("starting container reported routable")
			}
			if cs.Usage.CPU != 0 {
				t.Error("starting container has usage")
			}
		}
	}
}

func TestApplyVertical(t *testing.T) {
	_, nm, c := setup(t)
	if err := nm.ApplyVertical("c-0", resources.Vector{CPU: 3, MemMB: 1024}); err != nil {
		t.Fatal(err)
	}
	if c.Alloc.CPU != 3 || c.Alloc.MemMB != 1024 {
		t.Errorf("alloc = %v after update", c.Alloc)
	}
	if err := nm.ApplyVertical("nope", resources.Vector{CPU: 1}); err == nil {
		t.Error("unknown container accepted")
	}
	if err := nm.ApplyVertical("c-0", resources.Vector{CPU: -1}); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestLiveness(t *testing.T) {
	n, nm, _ := setup(t)
	if nm.Liveness() != 1 {
		t.Errorf("liveness = %d, want 1", nm.Liveness())
	}
	n.RemoveContainer("c-0")
	if nm.Liveness() != 0 {
		t.Errorf("liveness = %d, want 0", nm.Liveness())
	}
}
