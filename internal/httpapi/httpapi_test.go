package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/loadgen"
	"hyscale/internal/platform"
	"hyscale/internal/workload"
)

func testWorld(t *testing.T) *platform.World {
	t.Helper()
	cfg := platform.DefaultConfig(1)
	cfg.Nodes = 4
	w, err := platform.New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.ServiceSpec{
		Name: "api", Kind: workload.KindCPUBound,
		CPUPerRequest: 0.05, MemPerRequest: 2, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 2, MaxReplicas: 6, Timeout: 10 * time.Second,
	}
	if err := w.AddService(spec, 0.5, loadgen.Constant{RPS: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return w
}

func get(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestHealth(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["simTime"] != "30s" {
		t.Errorf("body = %v", body)
	}
}

func TestSummary(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/v1/summary")
	var dto SummaryDTO
	if err := json.Unmarshal(rec.Body.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Completed < 100 {
		t.Errorf("completed = %d, want >= 100", dto.Completed)
	}
	if dto.MeanLatencyMs <= 0 {
		t.Error("zero mean latency")
	}
}

func TestServicesListAndDetail(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/v1/services")
	var list []ServiceDTO
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "api" {
		t.Fatalf("list = %+v", list)
	}
	if len(list[0].Replicas) < 2 {
		t.Errorf("replicas = %d, want >= MinReplicas", len(list[0].Replicas))
	}

	rec = get(t, srv, "/v1/services/api")
	if rec.Code != http.StatusOK {
		t.Fatalf("detail status = %d", rec.Code)
	}
	var dto ServiceDTO
	if err := json.Unmarshal(rec.Body.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	for _, r := range dto.Replicas {
		if r.Node == "" || r.State != "running" || r.CPU <= 0 {
			t.Errorf("replica DTO incomplete: %+v", r)
		}
	}

	if rec := get(t, srv, "/v1/services/ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("ghost service status = %d, want 404", rec.Code)
	}
}

func TestNodes(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/v1/nodes")
	var nodes []NodeDTO
	if err := json.Unmarshal(rec.Body.Bytes(), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(nodes))
	}
	total := 0
	for _, n := range nodes {
		if n.Capacity.CPU != 4 {
			t.Errorf("capacity = %v", n.Capacity)
		}
		total += len(n.Containers)
	}
	if total < 2 {
		t.Errorf("containers across nodes = %d, want >= 2", total)
	}
}

func TestManualScale(t *testing.T) {
	w := testWorld(t)
	srv := New(w)

	scale := func(n int) *httptest.ResponseRecorder {
		body, _ := json.Marshal(scaleRequest{Replicas: n})
		req := httptest.NewRequest(http.MethodPost, "/v1/services/api/scale", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	if rec := scale(4); rec.Code != http.StatusOK {
		t.Fatalf("scale up status = %d: %s", rec.Code, rec.Body)
	}
	if got := len(w.Monitor().Replicas("api")); got != 4 {
		t.Errorf("replicas = %d after scale-up, want 4", got)
	}
	if rec := scale(1); rec.Code != http.StatusOK {
		t.Fatalf("scale down status = %d", rec.Code)
	}
	if got := len(w.Monitor().Replicas("api")); got != 1 {
		t.Errorf("replicas = %d after scale-down, want 1", got)
	}
}

func TestManualScaleValidation(t *testing.T) {
	srv := New(testWorld(t))
	post := func(path, body string) int {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := post("/v1/services/api/scale", "{bad json"); code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", code)
	}
	if code := post("/v1/services/api/scale", `{"replicas":-1}`); code != http.StatusBadRequest {
		t.Errorf("negative replicas status = %d", code)
	}
	if code := post("/v1/services/ghost/scale", `{"replicas":2}`); code != http.StatusNotFound {
		t.Errorf("ghost scale status = %d", code)
	}
}

func TestMetricsExposition(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{
		"hyscale_requests_total",
		"hyscale_completed_total",
		`hyscale_failures_total{class="removal"}`,
		`hyscale_service_replicas{service="api"}`,
		`hyscale_node_cpu_allocated{node="node-0"}`,
		`hyscale_scaling_actions_total{kind="vertical"}`,
		"hyscale_control_retries_total",
		"hyscale_control_abandoned_total",
		"hyscale_control_stale_snapshots_total",
		"hyscale_control_placement_failures_total",
		`hyscale_connection_failures_total{cause="starting"}`,
		`hyscale_connection_failures_total{cause="absent"}`,
		`hyscale_connection_failures_total{cause="unhealthy"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCostAndActions(t *testing.T) {
	srv := New(testWorld(t))
	var costBody map[string]any
	if err := json.Unmarshal(get(t, srv, "/v1/cost").Body.Bytes(), &costBody); err != nil {
		t.Fatal(err)
	}
	if costBody["machineHours"].(float64) <= 0 {
		t.Error("zero machine hours")
	}
	var actions map[string]any
	if err := json.Unmarshal(get(t, srv, "/v1/actions").Body.Bytes(), &actions); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scaleOuts", "retries", "abandonedActions", "staleSnapshots"} {
		if _, ok := actions[key]; !ok {
			t.Errorf("actions missing %s", key)
		}
	}
}

// TestConcurrentAccessWithLocker serves requests from several goroutines
// while a mutex-guarded simulation steps forward — the cmd/hyscale-server
// deployment pattern.
func TestConcurrentAccessWithLocker(t *testing.T) {
	w := testWorld(t)
	var mu sync.Mutex
	srv := New(w, WithLocker(&mu))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			mu.Lock()
			// Step the simulation 1 simulated second.
			_ = w.Run(w.Engine().Now() + time.Second)
			mu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec := get(t, srv, "/v1/summary")
				if rec.Code != http.StatusOK {
					t.Errorf("status = %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
}

func TestLatencyHistogramEndpoint(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/v1/latency")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Count   uint64  `json:"count"`
		MeanMs  float64 `json:"meanMs"`
		P95Ms   float64 `json:"p95Ms"`
		Buckets []struct {
			UpperMs float64 `json:"upperMs"`
			Count   uint64  `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count < 100 || body.MeanMs <= 0 || body.P95Ms < body.MeanMs/2 {
		t.Errorf("latency summary implausible: %+v", body)
	}
	var sum uint64
	for _, b := range body.Buckets {
		sum += b.Count
	}
	if sum != body.Count {
		t.Errorf("bucket counts %d != total %d", sum, body.Count)
	}
}

// observedWorld is testWorld with the decision-trace journal enabled and a
// bursty load so the autoscaler actually acts.
func observedWorld(t *testing.T) *platform.World {
	t.Helper()
	cfg := platform.DefaultConfig(1)
	cfg.Nodes = 4
	cfg.Observe = true
	w, err := platform.New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.ServiceSpec{
		Name: "api", Kind: workload.KindCPUBound,
		CPUPerRequest: 0.08, MemPerRequest: 2, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 1, MaxReplicas: 6, Timeout: 10 * time.Second,
	}
	if err := w.AddService(spec, 0.5, loadgen.Constant{RPS: 25}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return w
}

type timelineBody struct {
	Enabled   bool `json:"enabled"`
	Decisions []struct {
		T       float64 `json:"t"`
		Service string  `json:"service"`
		Kind    string  `json:"kind"`
		Outcome string  `json:"outcome"`
	} `json:"decisions"`
	Outcomes map[string]int `json:"outcomes"`
}

func TestTimeline(t *testing.T) {
	srv := New(observedWorld(t))
	rec := get(t, srv, "/v1/timeline")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body timelineBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Enabled {
		t.Fatal("timeline reports disabled on an observed world")
	}
	if len(body.Decisions) == 0 {
		t.Fatal("no decisions journaled under sustained overload")
	}
	total := 0
	for _, n := range body.Outcomes {
		total += n
	}
	if total != len(body.Decisions) {
		t.Errorf("outcome tally %d != %d decisions", total, len(body.Decisions))
	}
	for i, d := range body.Decisions {
		if d.Service != "api" || d.Kind == "" || d.Outcome == "" {
			t.Fatalf("decision %d malformed: %+v", i, d)
		}
	}

	// The service filter must drop everything for an unknown name.
	rec = get(t, srv, "/v1/timeline?service=nope")
	var filtered timelineBody
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Decisions) != 0 || !filtered.Enabled {
		t.Errorf("filter leak: %d decisions", len(filtered.Decisions))
	}
}

func TestTimelineDisabled(t *testing.T) {
	srv := New(testWorld(t))
	rec := get(t, srv, "/v1/timeline")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body timelineBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Enabled || len(body.Decisions) != 0 {
		t.Errorf("unobserved world leaked a timeline: %+v", body)
	}
}

func zonedTestWorld(t *testing.T) *platform.World {
	t.Helper()
	cfg := platform.DefaultConfig(1)
	cfg.Nodes = 6
	cfg.Zones = 2
	w, err := platform.New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.ServiceSpec{
		Name: "api", Kind: workload.KindCPUBound,
		CPUPerRequest: 0.05, MemPerRequest: 2, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 2, MaxReplicas: 6, Timeout: 10 * time.Second,
	}
	if err := w.AddService(spec, 0.5, loadgen.Constant{RPS: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestZonesEndpoint(t *testing.T) {
	// Single-monitor worlds have no zones resource.
	if rec := get(t, New(testWorld(t)), "/v1/zones"); rec.Code != http.StatusNotFound {
		t.Fatalf("unzoned /v1/zones status = %d, want 404", rec.Code)
	}

	srv := New(zonedTestWorld(t))
	rec := get(t, srv, "/v1/zones")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Zones []struct {
			Zone     int `json:"zone"`
			Nodes    int `json:"nodes"`
			Replicas int `json:"replicas"`
		} `json:"zones"`
		CrossZone map[string]any `json:"crossZone"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Zones) != 2 {
		t.Fatalf("zones = %d, want 2", len(body.Zones))
	}
	nodes, replicas := 0, 0
	for _, z := range body.Zones {
		nodes += z.Nodes
		replicas += z.Replicas
	}
	if nodes != 6 {
		t.Errorf("zone nodes sum = %d, want 6", nodes)
	}
	if replicas < 2 {
		t.Errorf("zone replicas sum = %d, want >= 2", replicas)
	}
	if body.CrossZone == nil {
		t.Error("missing crossZone counters")
	}
}

func TestMetricsZoneSeries(t *testing.T) {
	// Unzoned exposition must not grow zone series.
	if out := get(t, New(testWorld(t)), "/metrics").Body.String(); strings.Contains(out, "hyscale_zone_") {
		t.Fatal("unzoned /metrics exposes hyscale_zone_ series")
	}
	out := get(t, New(zonedTestWorld(t)), "/metrics").Body.String()
	for _, want := range []string{
		`hyscale_zone_nodes{zone="0"}`,
		`hyscale_zone_replicas{zone="1"}`,
		`hyscale_zone_scaling_actions_total{zone="0",kind="scale_out"}`,
		"hyscale_cross_zone_node_leases_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
