// Package httpapi exposes the autoscaler platform over HTTP: JSON endpoints
// for services, replicas, nodes, metrics and costs, a Prometheus-style
// text endpoint, and a manual scaling hook (the "command-line interface"
// role of §V-C, as a control plane a real deployment would ship with).
//
// The platform itself is single-threaded; callers that serve while a
// simulation advances must interpose a lock via the Locker option (see
// cmd/hyscale-server).
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/obs"
	"hyscale/internal/platform"
	"hyscale/internal/resilience"
	"hyscale/internal/resources"
)

// Server serves the control-plane API for one World.
type Server struct {
	world *platform.World
	mu    sync.Locker
	mux   *http.ServeMux
}

// noopLock is used when the caller does not need synchronisation (e.g. the
// simulation is not advancing while serving).
type noopLock struct{}

func (noopLock) Lock()   {}
func (noopLock) Unlock() {}

// Option customises the server.
type Option func(*Server)

// WithLocker makes every request handler hold l, so the API can be served
// concurrently with a stepping simulation.
func WithLocker(l sync.Locker) Option {
	return func(s *Server) { s.mu = l }
}

// New builds the API server for w.
func New(w *platform.World, opts ...Option) *Server {
	s := &Server{world: w, mu: noopLock{}, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/summary", s.handleSummary)
	s.mux.HandleFunc("GET /v1/cost", s.handleCost)
	s.mux.HandleFunc("GET /v1/actions", s.handleActions)
	s.mux.HandleFunc("GET /v1/services", s.handleServices)
	s.mux.HandleFunc("GET /v1/services/{name}", s.handleService)
	s.mux.HandleFunc("POST /v1/services/{name}/scale", s.handleScale)
	s.mux.HandleFunc("GET /v1/nodes", s.handleNodes)
	s.mux.HandleFunc("GET /v1/zones", s.handleZones)
	s.mux.HandleFunc("GET /v1/latency", s.handleLatency)
	s.mux.HandleFunc("GET /v1/resilience", s.handleResilience)
	s.mux.HandleFunc("GET /v1/timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	now := s.world.Engine().Now()
	s.mu.Unlock()
	s.writeJSON(w, map[string]any{"status": "ok", "simTime": now.String()})
}

// SummaryDTO is the JSON form of the aggregate report.
type SummaryDTO struct {
	Requests           uint64  `json:"requests"`
	Completed          uint64  `json:"completed"`
	FailedPercent      float64 `json:"failedPercent"`
	RemovalFailures    uint64  `json:"removalFailures"`
	ConnectionFailures uint64  `json:"connectionFailures"`
	MeanLatencyMs      float64 `json:"meanLatencyMs"`
	P95LatencyMs       float64 `json:"p95LatencyMs"`
	P99LatencyMs       float64 `json:"p99LatencyMs"`
}

func (s *Server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sum := s.world.Summary()
	s.mu.Unlock()
	s.writeJSON(w, SummaryDTO{
		Requests:           sum.Requests,
		Completed:          sum.Completed,
		FailedPercent:      sum.FailedPercent(),
		RemovalFailures:    sum.RemovalFailures,
		ConnectionFailures: sum.ConnectionFailures,
		MeanLatencyMs:      float64(sum.MeanLatency) / float64(time.Millisecond),
		P95LatencyMs:       float64(sum.P95Latency) / float64(time.Millisecond),
		P99LatencyMs:       float64(sum.P99Latency) / float64(time.Millisecond),
	})
}

func (s *Server) handleCost(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	r := s.world.CostReport()
	s.mu.Unlock()
	s.writeJSON(w, map[string]any{
		"machineHours":     r.MachineHours,
		"slaViolations":    r.SLAViolations,
		"failures":         r.Failures,
		"violationPercent": r.ViolationPercent(),
		"machineCost":      r.MachineCost,
		"penaltyCost":      r.PenaltyCost,
		"totalCost":        r.TotalCost,
	})
}

func (s *Server) handleActions(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	c := s.world.Control().Counts()
	rec := s.world.Control().Recovery()
	pending := s.world.Control().PendingRetries()
	s.mu.Unlock()
	s.writeJSON(w, map[string]any{
		"vertical":          c.Vertical,
		"scaleOuts":         c.ScaleOuts,
		"scaleIns":          c.ScaleIns,
		"placementFailures": c.PlacementFailures,
		"retries":           c.Retries,
		"abandonedActions":  c.AbandonedActions,
		"staleSnapshots":    c.StaleSnapshots,
		"pendingRetries":    pending,
		"recovery": map[string]any{
			"suspected":          rec.Suspected,
			"declaredDead":       rec.DeclaredDead,
			"recovered":          rec.Recovered,
			"replicasLost":       rec.ReplicasLost,
			"replaced":           rec.Replaced,
			"readopted":          rec.Readopted,
			"staleDrained":       rec.StaleDrained,
			"reconcileCancelled": rec.ReconcileCancelled,
			"checkpointRestores": rec.CheckpointRestores,
			"coldRestarts":       rec.ColdRestarts,
		},
	})
}

// ReplicaDTO is the JSON form of one replica.
type ReplicaDTO struct {
	ID       string  `json:"id"`
	Node     string  `json:"node"`
	State    string  `json:"state"`
	CPU      float64 `json:"cpuRequest"`
	MemMB    float64 `json:"memLimitMB"`
	NetMbps  float64 `json:"netCapMbps"`
	Inflight int     `json:"inflight"`
	UsageCPU float64 `json:"usageCPU"`
	UsageMem float64 `json:"usageMemMB"`
}

func replicaDTO(c *container.Container) ReplicaDTO {
	u := c.LastUsage()
	return ReplicaDTO{
		ID: c.ID, Node: c.NodeID, State: c.State.String(),
		CPU: c.Alloc.CPU, MemMB: c.Alloc.MemMB, NetMbps: c.Alloc.NetMbps,
		Inflight: c.Inflight(), UsageCPU: u.CPU, UsageMem: u.MemMB,
	}
}

// ServiceDTO is the JSON form of one service.
type ServiceDTO struct {
	Name          string       `json:"name"`
	Replicas      []ReplicaDTO `json:"replicas"`
	Completed     uint64       `json:"completed"`
	FailedPercent float64      `json:"failedPercent"`
	MeanLatencyMs float64      `json:"meanLatencyMs"`
}

func (s *Server) serviceDTO(name string) ServiceDTO {
	dto := ServiceDTO{Name: name, Replicas: []ReplicaDTO{}}
	for _, rep := range s.world.Control().Replicas(name) {
		dto.Replicas = append(dto.Replicas, replicaDTO(rep))
	}
	sum := s.world.Recorder().SummarizeService(name)
	dto.Completed = sum.Completed
	dto.FailedPercent = sum.FailedPercent()
	dto.MeanLatencyMs = float64(sum.MeanLatency) / float64(time.Millisecond)
	return dto
}

func (s *Server) serviceNames() []string {
	names := make([]string, 0)
	for _, ss := range s.world.Recorder().Services() {
		names = append(names, ss.Name)
	}
	// Services with no traffic yet still exist; derive from the cluster.
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, node := range s.world.Cluster().Nodes() {
		for _, c := range node.Containers() {
			if !seen[c.Service] && !strings.HasPrefix(c.Service, "stress-") {
				seen[c.Service] = true
				names = append(names, c.Service)
			}
		}
	}
	sort.Strings(names)
	return names
}

func (s *Server) handleServices(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]ServiceDTO, 0)
	for _, name := range s.serviceNames() {
		out = append(out, s.serviceDTO(name))
	}
	s.mu.Unlock()
	s.writeJSON(w, out)
}

func (s *Server) handleService(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	dto := s.serviceDTO(name)
	s.mu.Unlock()
	if len(dto.Replicas) == 0 && dto.Completed == 0 {
		http.Error(w, fmt.Sprintf("unknown service %q", name), http.StatusNotFound)
		return
	}
	s.writeJSON(w, dto)
}

// scaleRequest is the body of POST /v1/services/{name}/scale.
type scaleRequest struct {
	// Replicas is the desired replica count.
	Replicas int `json:"replicas"`
}

func (s *Server) handleScale(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req scaleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Replicas < 0 {
		http.Error(w, "replicas must be non-negative", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	reps := s.world.Control().Replicas(name)
	if len(reps) == 0 {
		http.Error(w, fmt.Sprintf("unknown service %q", name), http.StatusNotFound)
		return
	}
	now := s.world.Engine().Now()
	var plan core.Plan
	switch {
	case req.Replicas > len(reps):
		// Place additional replicas on the emptiest nodes, cloning the
		// first replica's allocation.
		alloc := reps[0].Alloc
		for i := len(reps); i < req.Replicas; i++ {
			nodeID := s.pickNode(alloc)
			if nodeID == "" {
				http.Error(w, "no node fits a new replica", http.StatusConflict)
				return
			}
			plan.Actions = append(plan.Actions, core.ScaleOut{Service: name, NodeID: nodeID, Alloc: alloc})
		}
	case req.Replicas < len(reps):
		for i := len(reps) - 1; i >= req.Replicas; i-- {
			plan.Actions = append(plan.Actions, core.ScaleIn{ContainerID: reps[i].ID})
		}
	}
	s.world.Control().Apply(plan, now)
	s.writeJSON(w, map[string]any{"service": name, "replicas": req.Replicas, "actions": len(plan.Actions)})
}

func (s *Server) pickNode(alloc resources.Vector) string {
	best, bestCPU := "", -1.0
	for _, n := range s.world.Cluster().Nodes() {
		a := n.Available()
		if alloc.FitsIn(a) && a.CPU > bestCPU {
			best, bestCPU = n.ID(), a.CPU
		}
	}
	return best
}

// NodeDTO is the JSON form of one machine.
type NodeDTO struct {
	ID         string           `json:"id"`
	Capacity   resources.Vector `json:"capacity"`
	Allocated  resources.Vector `json:"allocated"`
	Available  resources.Vector `json:"available"`
	Containers []string         `json:"containers"`
}

func (s *Server) handleNodes(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]NodeDTO, 0)
	for _, n := range s.world.Cluster().Nodes() {
		dto := NodeDTO{
			ID: n.ID(), Capacity: n.Capacity(),
			Allocated: n.Allocated(), Available: n.Available(),
			Containers: []string{},
		}
		for _, c := range n.Containers() {
			dto.Containers = append(dto.Containers, c.ID)
		}
		out = append(out, dto)
	}
	s.mu.Unlock()
	s.writeJSON(w, out)
}

// handleLatency exports the constant-memory latency histogram: quantile
// estimates plus the non-empty buckets (milliseconds).
func (s *Server) handleLatency(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := s.world.Recorder().LatencyHistogram()
	type bucketDTO struct {
		UpperMs float64 `json:"upperMs"`
		Count   uint64  `json:"count"`
	}
	out := struct {
		Count   uint64      `json:"count"`
		MeanMs  float64     `json:"meanMs"`
		P50Ms   float64     `json:"p50Ms"`
		P95Ms   float64     `json:"p95Ms"`
		P99Ms   float64     `json:"p99Ms"`
		MaxMs   float64     `json:"maxMs"`
		Buckets []bucketDTO `json:"buckets"`
	}{
		Count:   h.Count(),
		MeanMs:  float64(h.Mean()) / float64(time.Millisecond),
		P50Ms:   float64(h.Quantile(0.50)) / float64(time.Millisecond),
		P95Ms:   float64(h.Quantile(0.95)) / float64(time.Millisecond),
		P99Ms:   float64(h.Quantile(0.99)) / float64(time.Millisecond),
		MaxMs:   float64(h.Max()) / float64(time.Millisecond),
		Buckets: []bucketDTO{},
	}
	for _, b := range h.Buckets() {
		out.Buckets = append(out.Buckets, bucketDTO{
			UpperMs: float64(b.UpperBound) / float64(time.Millisecond),
			Count:   b.Count,
		})
	}
	s.mu.Unlock()
	s.writeJSON(w, out)
}

// handleResilience exports the cascading-failure defense state: the cumulative
// counters (shed, retries, denials, deadline misses, short-circuits), every
// call-graph edge's current breaker position, and the cascade's root/edge
// conservation accounting. Worlds without a call graph report enabled=false
// and all-zero counters.
func (s *Server) handleResilience(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	res := s.world.Resilience()
	out := struct {
		Enabled  bool                  `json:"enabled"`
		Counters resilience.Counters   `json:"counters"`
		Breakers map[string]string     `json:"breakers"`
		Cascade  platform.CascadeStats `json:"cascade"`
	}{
		Enabled:  s.world.HasCallGraph(),
		Counters: res.Counters(),
		Breakers: map[string]string{},
		Cascade:  s.world.CascadeStats(),
	}
	for edge, st := range res.BreakerStates(s.world.Engine().Now()) {
		out.Breakers[edge] = st.String()
	}
	s.mu.Unlock()
	s.writeJSON(w, out)
}

// timelineDecision is the JSON form of one journaled decision, with the
// simulated timestamp in seconds first (the same shape as the obs JSONL
// artifact lines).
type timelineDecision struct {
	T float64 `json:"t"`
	obs.Decision
}

// timelineEvent is the JSON form of one journaled self-healing event.
type timelineEvent struct {
	T float64 `json:"t"`
	obs.Event
}

// handleTimeline exports the decision-trace journal (decisions plus
// self-healing events). Without observation enabled
// (platform.Config.Observe / hyscale-server -observe) it reports
// enabled=false and an empty timeline. ?service=NAME filters to one service.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	s.mu.Lock()
	j := s.world.Journal()
	out := struct {
		Enabled   bool                `json:"enabled"`
		Decisions []timelineDecision  `json:"decisions"`
		Outcomes  map[obs.Outcome]int `json:"outcomes"`
		Events    []timelineEvent     `json:"events"`
	}{
		Enabled:   j.Enabled(),
		Decisions: []timelineDecision{},
		Outcomes:  make(map[obs.Outcome]int),
		Events:    []timelineEvent{},
	}
	for _, d := range j.Decisions() {
		if service != "" && d.Service != service {
			continue
		}
		out.Decisions = append(out.Decisions, timelineDecision{T: d.At.Seconds(), Decision: d})
		out.Outcomes[d.Outcome]++
	}
	for _, e := range j.Events() {
		if service != "" && e.Service != service {
			continue
		}
		out.Events = append(out.Events, timelineEvent{T: e.At.Seconds(), Event: e})
	}
	s.mu.Unlock()
	s.writeJSON(w, out)
}

// handleZones reports the zoned control plane's per-zone ledgers and the
// global allocator's cross-zone counters; 404 on single-monitor worlds.
func (s *Server) handleZones(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	zs := s.world.ZoneSummaries()
	cz := s.world.CrossZone()
	ev := s.world.ZoneEvac()
	s.mu.Unlock()
	if zs == nil {
		http.Error(w, "control plane is not zoned", http.StatusNotFound)
		return
	}
	out := map[string]any{"zones": zs, "crossZone": cz}
	if ev != nil {
		out["evac"] = ev
	}
	s.writeJSON(w, out)
}

// handleMetrics renders a Prometheus-style text exposition of the key
// series: request counters, per-service replica gauges and per-node
// allocation gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	sum := s.world.Summary()
	fmt.Fprintf(w, "# TYPE hyscale_requests_total counter\nhyscale_requests_total %d\n", sum.Requests)
	fmt.Fprintf(w, "# TYPE hyscale_completed_total counter\nhyscale_completed_total %d\n", sum.Completed)
	fmt.Fprintf(w, "# TYPE hyscale_failures_total counter\n")
	fmt.Fprintf(w, "hyscale_failures_total{class=\"removal\"} %d\n", sum.RemovalFailures)
	fmt.Fprintf(w, "hyscale_failures_total{class=\"connection\"} %d\n", sum.ConnectionFailures)

	fmt.Fprintf(w, "# TYPE hyscale_service_replicas gauge\n")
	for _, name := range s.serviceNames() {
		fmt.Fprintf(w, "hyscale_service_replicas{service=%q} %d\n", name, len(s.world.Control().Replicas(name)))
	}

	fmt.Fprintf(w, "# TYPE hyscale_node_cpu_allocated gauge\n")
	for _, n := range s.world.Cluster().Nodes() {
		fmt.Fprintf(w, "hyscale_node_cpu_allocated{node=%q} %.3f\n", n.ID(), n.Allocated().CPU)
	}

	c := s.world.Control().Counts()
	fmt.Fprintf(w, "# TYPE hyscale_scaling_actions_total counter\n")
	fmt.Fprintf(w, "hyscale_scaling_actions_total{kind=\"vertical\"} %d\n", c.Vertical)
	fmt.Fprintf(w, "hyscale_scaling_actions_total{kind=\"scale_out\"} %d\n", c.ScaleOuts)
	fmt.Fprintf(w, "hyscale_scaling_actions_total{kind=\"scale_in\"} %d\n", c.ScaleIns)

	fmt.Fprintf(w, "# TYPE hyscale_control_retries_total counter\nhyscale_control_retries_total %d\n", c.Retries)
	fmt.Fprintf(w, "# TYPE hyscale_control_abandoned_total counter\nhyscale_control_abandoned_total %d\n", c.AbandonedActions)
	fmt.Fprintf(w, "# TYPE hyscale_control_stale_snapshots_total counter\nhyscale_control_stale_snapshots_total %d\n", c.StaleSnapshots)
	fmt.Fprintf(w, "# TYPE hyscale_control_placement_failures_total counter\nhyscale_control_placement_failures_total %d\n", c.PlacementFailures)
	fmt.Fprintf(w, "# TYPE hyscale_control_pending_retries gauge\nhyscale_control_pending_retries %d\n", s.world.Control().PendingRetries())

	rec := s.world.Control().Recovery()
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_nodes_suspected_total counter\nhyscale_selfheal_nodes_suspected_total %d\n", rec.Suspected)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_nodes_dead_total counter\nhyscale_selfheal_nodes_dead_total %d\n", rec.DeclaredDead)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_nodes_recovered_total counter\nhyscale_selfheal_nodes_recovered_total %d\n", rec.Recovered)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_replicas_lost_total counter\nhyscale_selfheal_replicas_lost_total %d\n", rec.ReplicasLost)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_replicas_replaced_total counter\nhyscale_selfheal_replicas_replaced_total %d\n", rec.Replaced)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_replicas_readopted_total counter\nhyscale_selfheal_replicas_readopted_total %d\n", rec.Readopted)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_replicas_drained_total counter\nhyscale_selfheal_replicas_drained_total %d\n", rec.StaleDrained)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_reconciles_cancelled_total counter\nhyscale_selfheal_reconciles_cancelled_total %d\n", rec.ReconcileCancelled)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_checkpoint_restores_total counter\nhyscale_selfheal_checkpoint_restores_total %d\n", rec.CheckpointRestores)
	fmt.Fprintf(w, "# TYPE hyscale_selfheal_cold_restarts_total counter\nhyscale_selfheal_cold_restarts_total %d\n", rec.ColdRestarts)

	fmt.Fprintf(w, "# TYPE hyscale_node_health gauge\n")
	for _, nc := range s.world.Control().NodeConditions() {
		fmt.Fprintf(w, "hyscale_node_health{node=%q,state=%q} %d\n", nc.Node, nc.Health.String(), int(nc.Health))
	}

	// Zone series only exist on zoned worlds, keeping the single-monitor
	// exposition byte-identical to before the sharded control plane.
	if zs := s.world.ZoneSummaries(); zs != nil {
		fmt.Fprintf(w, "# TYPE hyscale_zone_nodes gauge\n")
		for _, z := range zs {
			fmt.Fprintf(w, "hyscale_zone_nodes{zone=\"%d\"} %d\n", z.Zone, z.Nodes)
		}
		fmt.Fprintf(w, "# TYPE hyscale_zone_services gauge\n")
		for _, z := range zs {
			fmt.Fprintf(w, "hyscale_zone_services{zone=\"%d\"} %d\n", z.Zone, z.Services)
		}
		fmt.Fprintf(w, "# TYPE hyscale_zone_replicas gauge\n")
		for _, z := range zs {
			fmt.Fprintf(w, "hyscale_zone_replicas{zone=\"%d\"} %d\n", z.Zone, z.Replicas)
		}
		fmt.Fprintf(w, "# TYPE hyscale_zone_scaling_actions_total counter\n")
		for _, z := range zs {
			fmt.Fprintf(w, "hyscale_zone_scaling_actions_total{zone=\"%d\",kind=\"vertical\"} %d\n", z.Zone, z.Counts.Vertical)
			fmt.Fprintf(w, "hyscale_zone_scaling_actions_total{zone=\"%d\",kind=\"scale_out\"} %d\n", z.Zone, z.Counts.ScaleOuts)
			fmt.Fprintf(w, "hyscale_zone_scaling_actions_total{zone=\"%d\",kind=\"scale_in\"} %d\n", z.Zone, z.Counts.ScaleIns)
		}
		fmt.Fprintf(w, "# TYPE hyscale_zone_lease_failures_total counter\n")
		for _, z := range zs {
			fmt.Fprintf(w, "hyscale_zone_lease_failures_total{zone=\"%d\"} %d\n", z.Zone, z.LeaseFailures)
		}
		fmt.Fprintf(w, "# TYPE hyscale_zone_evacuated gauge\n")
		for _, z := range zs {
			v := 0
			if z.Evacuated {
				v = 1
			}
			fmt.Fprintf(w, "hyscale_zone_evacuated{zone=\"%d\"} %d\n", z.Zone, v)
		}
		cz := s.world.CrossZone()
		fmt.Fprintf(w, "# TYPE hyscale_cross_zone_node_leases_total counter\nhyscale_cross_zone_node_leases_total %d\n", cz.NodeLeases)
		fmt.Fprintf(w, "# TYPE hyscale_cross_zone_lease_failures_total counter\nhyscale_cross_zone_lease_failures_total %d\n", cz.LeaseFailures)
		if ev := s.world.ZoneEvac(); ev != nil {
			fmt.Fprintf(w, "# TYPE hyscale_zone_evac_zones_total counter\n")
			fmt.Fprintf(w, "hyscale_zone_evac_zones_total{phase=\"evacuated\"} %d\n", ev.ZonesEvacuated)
			fmt.Fprintf(w, "hyscale_zone_evac_zones_total{phase=\"readopted\"} %d\n", ev.ZonesReadopted)
			fmt.Fprintf(w, "# TYPE hyscale_zone_evac_services_total counter\n")
			fmt.Fprintf(w, "hyscale_zone_evac_services_total{phase=\"evacuated\"} %d\n", ev.ServicesEvacuated)
			fmt.Fprintf(w, "hyscale_zone_evac_services_total{phase=\"readopted\"} %d\n", ev.ServicesReadopted)
			fmt.Fprintf(w, "# TYPE hyscale_zone_evac_replicas_displaced_total counter\nhyscale_zone_evac_replicas_displaced_total %d\n", ev.ReplicasDisplaced)
			fmt.Fprintf(w, "# TYPE hyscale_zone_evac_spillover_placements_total counter\nhyscale_zone_evac_spillover_placements_total %d\n", ev.SpilloverPlacements)
		}
	}

	// Manager series only exist when the multi-metric scaler manager is the
	// running algorithm, keeping every other exposition byte-identical.
	if recs := s.world.ManagerRecommendations(); recs != nil {
		fmt.Fprintf(w, "# TYPE hyscale_manager_scaler_desired gauge\n")
		for _, r := range recs {
			fmt.Fprintf(w, "hyscale_manager_scaler_desired{service=%q,scaler=%q} %d\n", r.Service, r.Scaler, r.Desired)
		}
		fmt.Fprintf(w, "# TYPE hyscale_manager_merged_desired gauge\n")
		last := ""
		for _, r := range recs {
			if r.Service == last {
				continue
			}
			last = r.Service
			fmt.Fprintf(w, "hyscale_manager_merged_desired{service=%q} %d\n", r.Service, r.Merged)
		}
	}

	cf := s.world.ConnFailures()
	fmt.Fprintf(w, "# TYPE hyscale_connection_failures_total counter\n")
	fmt.Fprintf(w, "hyscale_connection_failures_total{cause=\"starting\"} %d\n", cf.Starting)
	fmt.Fprintf(w, "hyscale_connection_failures_total{cause=\"absent\"} %d\n", cf.Absent)
	fmt.Fprintf(w, "hyscale_connection_failures_total{cause=\"unhealthy\"} %d\n", cf.Unhealthy)

	// Resilience series only exist on call-graph worlds, so the exposition of
	// every pre-existing scenario is byte-identical to before the layer.
	if s.world.HasCallGraph() {
		res := s.world.Resilience()
		rc := res.Counters()
		fmt.Fprintf(w, "# TYPE hyscale_shed_total counter\nhyscale_shed_total %d\n", rc.Shed)
		fmt.Fprintf(w, "# TYPE hyscale_retries_issued_total counter\nhyscale_retries_issued_total %d\n", rc.Retries)
		fmt.Fprintf(w, "# TYPE hyscale_retries_denied_total counter\nhyscale_retries_denied_total %d\n", rc.RetriesDenied)
		fmt.Fprintf(w, "# TYPE hyscale_deadline_exceeded_total counter\nhyscale_deadline_exceeded_total %d\n", rc.DeadlineExceeded)
		fmt.Fprintf(w, "# TYPE hyscale_breaker_short_circuits_total counter\nhyscale_breaker_short_circuits_total %d\n", rc.ShortCircuited)
		fmt.Fprintf(w, "# TYPE hyscale_breaker_opens_total counter\nhyscale_breaker_opens_total %d\n", rc.BreakerOpens)

		fmt.Fprintf(w, "# TYPE hyscale_breaker_state gauge\n")
		states := res.BreakerStates(s.world.Engine().Now())
		for _, edge := range res.BreakerEdges() {
			fmt.Fprintf(w, "hyscale_breaker_state{edge=%q} %d\n", edge, int(states[edge]))
		}

		cs := s.world.CascadeStats()
		fmt.Fprintf(w, "# TYPE hyscale_cascade_roots_total counter\n")
		fmt.Fprintf(w, "hyscale_cascade_roots_total{outcome=\"generated\"} %d\n", cs.RootGenerated)
		fmt.Fprintf(w, "hyscale_cascade_roots_total{outcome=\"completed\"} %d\n", cs.RootCompleted)
		fmt.Fprintf(w, "hyscale_cascade_roots_total{outcome=\"shed\"} %d\n", cs.RootShed)
		fmt.Fprintf(w, "hyscale_cascade_roots_total{outcome=\"deadline\"} %d\n", cs.RootDeadline)
		fmt.Fprintf(w, "hyscale_cascade_roots_total{outcome=\"failed\"} %d\n", cs.RootFailed)

		fmt.Fprintf(w, "# TYPE hyscale_edge_calls_total counter\n")
		for _, key := range cs.EdgeKeys() {
			e := cs.Edges[key]
			fmt.Fprintf(w, "hyscale_edge_calls_total{edge=%q,result=\"delivered\"} %d\n", key, e.Delivered)
			fmt.Fprintf(w, "hyscale_edge_calls_total{edge=%q,result=\"dropped\"} %d\n", key, e.Dropped)
		}
	}
}
