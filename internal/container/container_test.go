package container

import (
	"math"
	"testing"
	"time"

	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

func spec() workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: "svc", Kind: workload.KindCPUBound,
		CPUPerRequest: 1.0, CPUOverheadPerRequest: 0,
		MemPerRequest: 50, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 1, MaxReplicas: 4,
		Timeout: 30 * time.Second,
	}
}

func newRunning(t *testing.T, s workload.ServiceSpec, alloc resources.Vector) *Container {
	t.Helper()
	c := New("c-0", s, "node-0", alloc, 0)
	c.MaybeStart(0)
	if !c.Routable() {
		t.Fatal("container not running")
	}
	return c
}

func TestLifecycle(t *testing.T) {
	c := New("c-0", spec(), "node-0", resources.Vector{CPU: 1, MemMB: 512}, 2*time.Second)
	if c.State != StateStarting || c.Routable() {
		t.Fatal("fresh container should be Starting and unroutable")
	}
	c.MaybeStart(time.Second)
	if c.State != StateStarting {
		t.Fatal("started before ReadyAt")
	}
	c.MaybeStart(2 * time.Second)
	if c.State != StateRunning || !c.Routable() {
		t.Fatal("did not start at ReadyAt")
	}
	c.Remove()
	if c.State != StateRemoved || c.Routable() {
		t.Fatal("removed container should be unroutable")
	}
}

func TestStateStrings(t *testing.T) {
	if StateStarting.String() != "starting" || StateRunning.String() != "running" || StateRemoved.String() != "removed" {
		t.Error("state strings wrong")
	}
}

func TestUpdateRejectsNegative(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 512})
	if err := c.Update(resources.Vector{CPU: -1}); err == nil {
		t.Error("negative allocation accepted")
	}
	if err := c.Update(resources.Vector{CPU: 2, MemMB: 1024}); err != nil {
		t.Errorf("valid update rejected: %v", err)
	}
	if c.Alloc.CPU != 2 {
		t.Errorf("Alloc.CPU = %v after update, want 2", c.Alloc.CPU)
	}
}

func TestAdvanceCompletesCPUWork(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 512})
	r := workload.NewRequest(1, spec(), 0) // needs 1.0 cpu-seconds
	c.Enqueue(r)

	// 1 core for 0.5s: half done.
	res := c.Advance(0, 500*time.Millisecond, 1.0, 0)
	if len(res.Completed) != 0 {
		t.Fatal("completed too early")
	}
	if math.Abs(r.RemainingCPU-0.5) > 1e-9 {
		t.Fatalf("RemainingCPU = %v, want 0.5", r.RemainingCPU)
	}

	// Another full second at 1 core: completes mid-tick at 0.5s + 0.5s.
	res = c.Advance(500*time.Millisecond, time.Second, 1.0, 0)
	if len(res.Completed) != 1 {
		t.Fatalf("Completed = %d, want 1", len(res.Completed))
	}
	if got := res.Completed[0].At; got != time.Second {
		t.Errorf("completion at %v, want 1s (sub-tick interpolation)", got)
	}
	if c.Completed() != 1 || c.Inflight() != 0 {
		t.Errorf("counters wrong: completed=%d inflight=%d", c.Completed(), c.Inflight())
	}
}

func TestAdvanceProcessorSharing(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 2, MemMB: 512})
	r1 := workload.NewRequest(1, spec(), 0)
	r2 := workload.NewRequest(2, spec(), 0)
	c.Enqueue(r1)
	c.Enqueue(r2)

	// 2 cores across 2 requests: 1 core each for 1s finishes both (work=1).
	res := c.Advance(0, time.Second, 2.0, 0)
	if len(res.Completed) != 2 {
		t.Fatalf("Completed = %d, want 2", len(res.Completed))
	}
}

func TestAdvanceSingleRequestCappedAtOneCore(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 4, MemMB: 512})
	r := workload.NewRequest(1, spec(), 0)
	c.Enqueue(r)
	// 4 cores delivered but a single-threaded request uses at most 1.
	c.Advance(0, 500*time.Millisecond, 4.0, 0)
	if math.Abs(r.RemainingCPU-0.5) > 1e-9 {
		t.Errorf("RemainingCPU = %v, want 0.5 (1-core cap)", r.RemainingCPU)
	}
}

func TestAdvanceNetworkPhase(t *testing.T) {
	s := spec()
	s.CPUPerRequest = 0.1
	s.NetPerRequest = 10 // megabits
	c := newRunning(t, s, resources.Vector{CPU: 1, MemMB: 512, NetMbps: 100})
	r := workload.NewRequest(1, s, 0)
	c.Enqueue(r)

	// CPU phase finishes within the first tick; request moves to net phase.
	c.Advance(0, 200*time.Millisecond, 1.0, 100)
	if r.Phase != workload.PhaseNet {
		t.Fatalf("Phase = %v, want PhaseNet", r.Phase)
	}
	if !c.NetActive() || c.NetFlowCount() != 1 {
		t.Error("net flow not visible")
	}

	// 100 Mbps for 0.1s = 10 Mb: transmission completes.
	res := c.Advance(200*time.Millisecond, 100*time.Millisecond, 0, 100)
	if len(res.Completed) != 1 {
		t.Fatalf("Completed = %d, want 1", len(res.Completed))
	}
}

func TestAdvanceTimeout(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 512})
	r := workload.NewRequest(1, spec(), 0) // deadline at 30s
	c.Enqueue(r)
	// No CPU delivered; at the 30s boundary the request times out.
	res := c.Advance(29*time.Second+900*time.Millisecond, 100*time.Millisecond, 0, 0)
	if len(res.TimedOut) != 1 {
		t.Fatalf("TimedOut = %d, want 1", len(res.TimedOut))
	}
	if c.Inflight() != 0 {
		t.Error("timed-out request still in flight")
	}
}

func TestMemUsageAndSwap(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 180})
	if got := c.MemUsageMB(); got != 100 {
		t.Fatalf("baseline MemUsage = %v, want 100", got)
	}
	if c.Swapping() {
		t.Fatal("swapping below limit")
	}
	c.Enqueue(workload.NewRequest(1, spec(), 0)) // +50MB
	c.Enqueue(workload.NewRequest(2, spec(), 0)) // +50MB -> 200 > 180
	if !c.Swapping() {
		t.Fatal("not swapping above limit")
	}
	if depth := c.SwapDepth(); math.Abs(depth-200.0/180) > 1e-9 {
		t.Errorf("SwapDepth = %v, want %v", depth, 200.0/180)
	}
	if c.Overloaded() {
		t.Error("overloaded too early")
	}
	for i := 3; i <= 10; i++ {
		c.Enqueue(workload.NewRequest(uint64(i), spec(), 0))
	}
	// 100 + 10*50 = 600 > 3*180.
	if !c.Overloaded() {
		t.Error("not overloaded at >3x limit")
	}
}

func TestSwapDepthWithoutLimit(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1})
	if c.SwapDepth() != 0 || c.Swapping() || c.Overloaded() {
		t.Error("no-limit container should never swap")
	}
}

func TestRemoveKillsInflight(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 512})
	c.Enqueue(workload.NewRequest(1, spec(), 0))
	c.Enqueue(workload.NewRequest(2, spec(), 0))
	killed := c.Remove()
	if len(killed) != 2 {
		t.Fatalf("killed = %d, want 2", len(killed))
	}
	if c.Inflight() != 0 {
		t.Error("in-flight not cleared")
	}
}

func TestStressCPUDemand(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 2, MemMB: 512})
	c.StressCPUDemand = 4
	if got := c.CPUDemand(); got != 4 {
		t.Fatalf("CPUDemand = %v, want 4", got)
	}
	// Usage reflects the granted rate even with no requests.
	c.Advance(0, time.Second, 3.0, 0)
	if got := c.LastUsage().CPU; math.Abs(got-3) > 1e-9 {
		t.Errorf("stress usage = %v, want 3", got)
	}
}

func TestStressNetFlows(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 512})
	c.StressNetFlows = 32
	if got := c.NetFlowCount(); got != 32 {
		t.Fatalf("NetFlowCount = %d, want 32", got)
	}
	c.Advance(0, time.Second, 0, 250)
	if got := c.LastUsage().NetMbps; math.Abs(got-250) > 1e-9 {
		t.Errorf("stress net usage = %v, want 250", got)
	}
}

func TestUsageAccounting(t *testing.T) {
	c := newRunning(t, spec(), resources.Vector{CPU: 1, MemMB: 512})
	r := workload.NewRequest(1, spec(), 0)
	c.Enqueue(r)
	c.Advance(0, time.Second, 0.5, 0)
	u := c.LastUsage()
	if math.Abs(u.CPU-0.5) > 1e-9 {
		t.Errorf("usage CPU = %v, want 0.5", u.CPU)
	}
	if u.MemMB != c.MemUsageMB() {
		t.Errorf("usage Mem = %v, want %v", u.MemMB, c.MemUsageMB())
	}
}

func TestCPUDemandCountsOnlyCPUPhase(t *testing.T) {
	s := spec()
	s.CPUPerRequest = 0.1
	s.NetPerRequest = 100
	c := newRunning(t, s, resources.Vector{CPU: 1, MemMB: 512})
	r := workload.NewRequest(1, s, 0)
	c.Enqueue(r)
	if c.CPUDemand() != 1 {
		t.Fatal("CPU-phase request should demand CPU")
	}
	c.Advance(0, 200*time.Millisecond, 1, 0) // finish CPU phase
	if r.Phase != workload.PhaseNet {
		t.Fatalf("Phase = %v, want net", r.Phase)
	}
	if c.CPUDemand() != 0 {
		t.Error("net-phase request still demands CPU")
	}
}
