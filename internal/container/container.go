// Package container models a Docker container hosting exactly one
// microservice replica, the paper's unit of deployment (§V-A). It reproduces
// the control surface the autoscaler platform drives — `docker update` for
// CPU shares and memory limits, tc egress caps, container start latency, and
// in-flight request loss on removal — without running real containers.
package container

import (
	"fmt"
	"time"

	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

// State is the container lifecycle state.
type State int

// Container lifecycle states. A container is only routable while Running.
const (
	StateStarting State = iota + 1
	StateRunning
	StateRemoved
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateRemoved:
		return "removed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Usage is a point-in-time resource usage sample for one container, in the
// same units the `docker stats` API reports conceptually: consumed CPU cores,
// resident memory, and egress bandwidth over the last accounting window.
type Usage struct {
	CPU     float64 // cores actually consumed
	MemMB   float64 // resident set, including what would be swapped
	NetMbps float64 // egress bandwidth achieved
}

// Container is one replica of a microservice. All mutation happens on the
// simulation goroutine; the type carries no locks by design (the engine is
// single-threaded).
type Container struct {
	// ID uniquely identifies the container in the cluster.
	ID string
	// Service is the microservice this replica belongs to.
	Service string
	// NodeID is the machine hosting the container.
	NodeID string

	// Spec is the service specification (per-request demands, baseline
	// memory, timeout).
	Spec workload.ServiceSpec

	// Alloc is the container's current resource allocation: the CPU request
	// (expressed through Docker CPU shares), the memory limit, and the tc
	// egress cap. Vertical scaling rewrites this vector in place, which is
	// the simulated `docker update`.
	Alloc resources.Vector

	// State is the lifecycle state.
	State State
	// ReadyAt is when a Starting container becomes Running.
	ReadyAt time.Duration

	// StressCPUDemand makes the container behave like the paper's progrium
	// stress contender: it permanently demands this many cores regardless of
	// in-flight requests. Zero for normal microservice replicas.
	StressCPUDemand float64
	// StressNetFlows makes the container hog egress bandwidth permanently
	// with this many concurrent flows, like the flooding network stress
	// container of §III-C. Zero for normal replicas.
	StressNetFlows int

	inflight []*workload.Request

	// lastUsage is the usage measured over the most recent physics tick; the
	// node manager samples it to answer the Monitor's stats queries.
	lastUsage Usage

	// cumulative counters for diagnostics and tests.
	completed uint64
}

// New creates a container in the Starting state that becomes Running at
// readyAt.
func New(id string, spec workload.ServiceSpec, nodeID string, alloc resources.Vector, readyAt time.Duration) *Container {
	return &Container{
		ID:      id,
		Service: spec.Name,
		NodeID:  nodeID,
		Spec:    spec,
		Alloc:   alloc,
		State:   StateStarting,
		ReadyAt: readyAt,
	}
}

// MaybeStart transitions Starting→Running once now has reached ReadyAt.
func (c *Container) MaybeStart(now time.Duration) {
	if c.State == StateStarting && now >= c.ReadyAt {
		c.State = StateRunning
	}
}

// Routable reports whether the load balancer may send requests here.
func (c *Container) Routable() bool { return c.State == StateRunning }

// Update applies a vertical scaling action (the simulated `docker update`):
// it replaces the allocation vector. Components must be non-negative.
func (c *Container) Update(alloc resources.Vector) error {
	if !alloc.NonNegative() {
		return fmt.Errorf("container %s: negative allocation %v", c.ID, alloc)
	}
	c.Alloc = alloc
	return nil
}

// Enqueue admits a request for processing. The caller (load balancer) must
// have checked Routable.
func (c *Container) Enqueue(r *workload.Request) {
	c.inflight = append(c.inflight, r)
}

// Inflight returns the number of requests currently being processed.
func (c *Container) Inflight() int { return len(c.inflight) }

// ActiveInflight returns the in-flight requests still doing CPU or network
// work — excluding PhaseWait call-graph parents, which hold a queue slot
// (back-pressure) but consume no resources while their downstream calls are
// outstanding. Load shedding keys off this: a queue full of waiters is not a
// saturated replica.
func (c *Container) ActiveInflight() int {
	n := 0
	for _, r := range c.inflight {
		if r.Phase != workload.PhaseWait {
			n++
		}
	}
	return n
}

// QueueFull reports whether the replica's bounded admission queue is at
// capacity. Always false when the service declares no queue limit, which is
// the paper's original unbounded model.
func (c *Container) QueueFull() bool {
	return c.Spec.QueueLimit > 0 && len(c.inflight) >= c.Spec.QueueLimit
}

// Release removes one request from the in-flight set without the usual
// completion/timeout bookkeeping — the call-graph layer uses it to resolve
// a PhaseWait parent the moment its last downstream call returns (success)
// or a child fails permanently (fail-fast). success increments the
// container's completed counter. Returns false when the request is not held
// here.
func (c *Container) Release(r *workload.Request, success bool) bool {
	for i, held := range c.inflight {
		if held == r {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			if success {
				c.completed++
			}
			return true
		}
	}
	return false
}

// InflightRequests exposes the in-flight slice for the physics loop. Callers
// must not retain the slice across ticks.
func (c *Container) InflightRequests() []*workload.Request { return c.inflight }

// Completed returns the cumulative number of requests this container
// finished successfully.
func (c *Container) Completed() uint64 { return c.completed }

// MemUsageMB returns current resident memory: the application baseline plus
// the transient footprint of every in-flight request. Usage beyond the
// memory limit is what forces the (simulated) kernel to swap.
func (c *Container) MemUsageMB() float64 {
	m := c.Spec.BaselineMemMB
	for _, r := range c.inflight {
		m += r.MemFootprintMB
	}
	return m
}

// Swapping reports whether resident memory exceeds the memory limit, i.e.
// the container is paying the swap penalty of §III-B.
func (c *Container) Swapping() bool {
	return c.Alloc.MemMB > 0 && c.MemUsageMB() > c.Alloc.MemMB
}

// SwapDepth returns resident memory as a multiple of the memory limit (1.0
// at the limit, 2.0 at twice the limit). The swap slowdown deepens with this
// ratio: the further past the limit, the larger the fraction of the working
// set living on disk. Returns 0 when no limit is set.
func (c *Container) SwapDepth() float64 {
	if c.Alloc.MemMB <= 0 {
		return 0
	}
	return c.MemUsageMB() / c.Alloc.MemMB
}

// Overloaded reports whether the container is so far past its memory limit
// that it stops accepting new connections (the microservice-level rejection
// behind the paper's "connection failures"). The threshold is three times
// the limit — by then nearly the whole working set is swapped.
func (c *Container) Overloaded() bool {
	return c.Alloc.MemMB > 0 && c.MemUsageMB() > 3*c.Alloc.MemMB
}

// CPUDemand returns the CPU the container could consume this instant: the
// application's constant background burn plus one core per in-flight
// request in the CPU phase (requests are single-threaded). Stress containers
// demand their configured amount permanently.
func (c *Container) CPUDemand() float64 {
	n := 0
	for _, r := range c.inflight {
		if r.Phase == workload.PhaseCPU {
			n++
		}
	}
	d := float64(n) + c.Spec.BackgroundCPU
	if c.StressCPUDemand > d {
		d = c.StressCPUDemand
	}
	return d
}

// NetActive reports whether any in-flight request is in the network phase
// (or the container is a network stress hog).
func (c *Container) NetActive() bool {
	return c.NetFlowCount() > 0
}

// NetFlowCount returns the number of concurrent transmitting micro-flows:
// the in-flight requests in the network phase, plus the persistent flows of
// a network stress hog. The node's tx-queue contention grows with this
// count.
func (c *Container) NetFlowCount() int {
	n := c.StressNetFlows
	for _, r := range c.inflight {
		if r.Phase == workload.PhaseNet {
			n++
		}
	}
	return n
}

// SetLastUsage records the usage measured over the latest physics tick.
func (c *Container) SetLastUsage(u Usage) { c.lastUsage = u }

// LastUsage returns the most recent usage sample (what `docker stats` would
// report).
func (c *Container) LastUsage() Usage { return c.lastUsage }

// AdvanceResult describes what happened to the container's in-flight
// requests during one physics tick.
type AdvanceResult struct {
	// Completed holds requests that finished both phases this tick, along
	// with the simulated completion time of each.
	Completed []CompletedRequest
	// TimedOut holds requests that crossed their deadline this tick.
	TimedOut []*workload.Request
}

// CompletedRequest pairs a finished request with its completion instant.
type CompletedRequest struct {
	Request *workload.Request
	At      time.Duration
}

// Advance progresses in-flight requests by dt given the CPU rate (cores
// actually delivered to this container this tick, after node-level sharing
// and contention) and the egress rate (Mbps delivered after tc shaping and
// tx-queue contention). It returns completions and timeouts and updates the
// container's usage sample.
//
// Within the container, requests in the CPU phase share the delivered CPU
// equally (processor sharing), and requests in the network phase share the
// delivered egress bandwidth equally — matching how the kernel scheduler and
// a fair tc qdisc behave.
func (c *Container) Advance(now time.Duration, dt time.Duration, cpuRate, netRate float64) AdvanceResult {
	var res AdvanceResult
	if dt <= 0 {
		return res
	}
	sec := dt.Seconds()

	cpuReqs := 0
	netReqs := 0
	for _, r := range c.inflight {
		switch r.Phase {
		case workload.PhaseCPU:
			cpuReqs++
		case workload.PhaseNet:
			netReqs++
		}
	}

	cpuConsumed := 0.0
	netConsumed := 0.0

	// The application's background burn (GC, agents) is served before
	// request work and produces no request progress.
	bg := c.Spec.BackgroundCPU
	if bg > cpuRate {
		bg = cpuRate
	}
	cpuConsumed += bg * sec
	requestRate := cpuRate - bg

	perReqCPU := 0.0
	if cpuReqs > 0 {
		perReqCPU = requestRate / float64(cpuReqs)
		// A single-threaded request can use at most one core.
		if perReqCPU > 1 {
			perReqCPU = 1
		}
	}
	perReqNet := 0.0
	if netReqs > 0 {
		perReqNet = netRate / float64(netReqs)
	}

	kept := c.inflight[:0]
	for _, r := range c.inflight {
		finishedAt := now + dt
		switch r.Phase {
		case workload.PhaseCPU:
			work := perReqCPU * sec
			if work >= r.RemainingCPU && perReqCPU > 0 {
				// Finished the CPU phase mid-tick; estimate the sub-tick
				// instant for response-time accuracy and move any leftover
				// effort to the network phase only conceptually (the network
				// phase starts next tick; the residual error is bounded by
				// one tick).
				frac := r.RemainingCPU / (perReqCPU * sec)
				cpuConsumed += r.RemainingCPU
				r.RemainingCPU = 0
				if r.RemainingNetMb <= 0 {
					r.Phase = workload.PhaseDone
					finishedAt = now + time.Duration(float64(dt)*frac)
				} else {
					r.Phase = workload.PhaseNet
				}
			} else {
				cpuConsumed += work
				r.RemainingCPU -= work
			}
		case workload.PhaseNet:
			sent := perReqNet * sec
			if sent >= r.RemainingNetMb && perReqNet > 0 {
				frac := r.RemainingNetMb / (perReqNet * sec)
				netConsumed += r.RemainingNetMb
				r.RemainingNetMb = 0
				r.Phase = workload.PhaseDone
				finishedAt = now + time.Duration(float64(dt)*frac)
			} else {
				netConsumed += sent
				r.RemainingNetMb -= sent
			}
		}

		// A call-graph parent whose own work is done but whose downstream
		// calls are still outstanding parks in PhaseWait: it keeps holding
		// its queue slot and memory footprint (back-pressure) and only
		// completes when the platform resolves its last child.
		if r.Phase == workload.PhaseDone && r.PendingChildren > 0 {
			r.Phase = workload.PhaseWait
			r.OwnDoneAt = finishedAt
		}

		switch {
		case r.Phase == workload.PhaseDone:
			c.completed++
			res.Completed = append(res.Completed, CompletedRequest{Request: r, At: finishedAt})
		case now+dt >= r.Deadline:
			res.TimedOut = append(res.TimedOut, r)
		default:
			kept = append(kept, r)
		}
	}
	// Zero the tail so dropped requests do not linger.
	for i := len(kept); i < len(c.inflight); i++ {
		c.inflight[i] = nil
	}
	c.inflight = kept

	// Stress containers burn whatever they were granted even though they
	// complete no requests.
	if c.StressCPUDemand > 0 {
		granted := cpuRate
		if granted > c.StressCPUDemand {
			granted = c.StressCPUDemand
		}
		if granted*sec > cpuConsumed {
			cpuConsumed = granted * sec
		}
	}
	if c.StressNetFlows > 0 && netRate*sec > netConsumed {
		netConsumed = netRate * sec
	}

	c.lastUsage = Usage{
		CPU:     cpuConsumed / sec,
		MemMB:   c.MemUsageMB(),
		NetMbps: netConsumed / sec,
	}
	return res
}

// Remove transitions the container to Removed and returns the in-flight
// requests that were killed — the paper's "removal failures".
func (c *Container) Remove() []*workload.Request {
	killed := c.inflight
	c.inflight = nil
	c.State = StateRemoved
	return killed
}
