// Package platform assembles the full autoscaler platform of §V — cluster,
// node managers, Monitor, load balancers, client load generators and metrics
// — into a single runnable World driven by the discrete-event engine. Every
// experiment and example in this repository is a World configuration.
package platform

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/cost"
	"hyscale/internal/faults"
	"hyscale/internal/lb"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/obs"
	"hyscale/internal/resilience"
	"hyscale/internal/resources"
	"hyscale/internal/scalermgr"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// Config parameterises a World. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Seed drives all randomness (Poisson arrivals).
	Seed int64
	// Nodes is the number of worker machines.
	Nodes int
	// NodeTemplate shapes every machine (ID is overwritten).
	NodeTemplate cluster.NodeConfig
	// Tick is the physics timestep.
	Tick time.Duration
	// MonitorPeriod is the stats-query/decision period (paper: 5 s).
	MonitorPeriod time.Duration
	// StartDelay is container start latency for scale-outs.
	StartDelay time.Duration
	// LBPolicy selects the load-balancer routing policy.
	LBPolicy lb.Policy
	// DistributionOverhead is the per-log2(replicas) latency the balancer
	// charges (§III-A). Zero disables it.
	DistributionOverhead time.Duration
	// BaseLatency is the constant per-request cost every request pays
	// regardless of scaling decisions: the LB proxy hop, connection setup
	// and network round trip inside the data centre.
	BaseLatency time.Duration
	// PoissonArrivals randomises per-tick arrival counts.
	PoissonArrivals bool
	// Cost prices the run (machine-hours + SLA penalties); see the cost
	// package. The default uses cost.DefaultConfig.
	Cost cost.Config
	// Faults configures control-plane fault injection; the zero value
	// injects nothing and leaves every hot path untouched.
	Faults faults.Config
	// HardeningOff disables the control plane's resilience mechanisms
	// (Monitor retry/backoff, stale-snapshot degradation, LB health checks)
	// so experiments can measure what the hardening buys.
	HardeningOff bool
	// SelfHealing configures the Monitor's failure detector, desired-state
	// reconciler and checkpoint/restore. The zero value disables all three,
	// reproducing the legacy behaviour where node failures are reported
	// out-of-band and lost replicas are never re-placed.
	SelfHealing monitor.SelfHealing
	// Observe enables the decision-trace observability layer: the World owns
	// an obs.Journal that records every Monitor decision and per-service
	// time series sampled each monitor period. Off (the default) costs
	// nothing on the hot path.
	Observe bool
	// CallGraph declares inter-service call dependencies. The zero value
	// (no edges) keeps every service independent — the paper's workload —
	// and leaves the request hot path untouched.
	CallGraph workload.CallGraph
	// Resilience enables the cascading-failure defenses (circuit breakers,
	// retry budgets, deadline propagation, load shedding) on the call
	// graph's traffic. The zero value disables everything.
	Resilience resilience.Config
	// Zones shards the control plane into that many per-zone arbiters under
	// a thin global allocator (see monitor.Plane), and shards the event heap
	// to match. 0 or 1 — the default — runs the single central Monitor with
	// byte-identical output to every release before zoning existed.
	Zones int
	// ZoneLeaseHeadroomCPU tunes the allocator's proactive-lease threshold
	// (cores of single-node headroom a zone must retain); zero means the
	// 1-core default. Ignored unless Zones > 1.
	ZoneLeaseHeadroomCPU float64
	// EvacuateZones enables the zone disaster-recovery path: a zone whose
	// nodes are all ruled dead has its services re-homed into surviving
	// zones, and migrated back (after an anti-flap cooldown) when it heals.
	// Requires SelfHealing — the per-zone failure detectors are the trigger.
	// Ignored unless Zones > 1.
	EvacuateZones bool
	// ZoneSpilloverZones bounds how many zones one evacuated service may
	// span when no single surviving zone fits all its replicas (home plus
	// spill shards). Values <= 1 disable spillover.
	ZoneSpilloverZones int
	// ZoneReadoptAfter is how long a healed zone must stay fully healthy
	// before its evacuated services migrate home; zero means the 30 s
	// default.
	ZoneReadoptAfter time.Duration
}

// DefaultConfig mirrors the paper's experimental setup: 24 nodes minus the
// five LB nodes leaves 19 workers; 4-core/8 GiB machines; 5 s monitor
// period.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                 seed,
		Nodes:                19,
		NodeTemplate:         cluster.DefaultNodeConfig(""),
		Tick:                 100 * time.Millisecond,
		MonitorPeriod:        5 * time.Second,
		StartDelay:           time.Second,
		LBPolicy:             lb.LeastOutstanding,
		DistributionOverhead: 25 * time.Millisecond,
		BaseLatency:          75 * time.Millisecond,
		PoissonArrivals:      false,
		Cost:                 cost.DefaultConfig(),
	}
}

// serviceRuntime couples a service with its load generator.
type serviceRuntime struct {
	spec workload.ServiceSpec
	gen  *loadgen.Generator
}

// ConnFailureBreakdown attributes connection failures recorded at routing
// time to their cause — the distinction the chaos experiment reports.
type ConnFailureBreakdown struct {
	// Starting: replicas existed but all were still mid-start.
	Starting uint64
	// Absent: no viable replica at all (none exist, or every one was
	// overloaded or health-ejected).
	Absent uint64
	// Unhealthy: the balancer picked a backend that was black-holing
	// connections (injected outage not yet detected by health probes).
	Unhealthy uint64
}

// World is one fully-wired experiment instance.
type World struct {
	cfg     Config
	engine  *sim.Engine
	cluster *cluster.Cluster
	// ctl is the control plane the world drives: the single monitor for
	// Zones <= 1, the zoned plane otherwise. Exactly one of monitor/plane is
	// non-nil.
	ctl     monitor.ControlPlane
	monitor *monitor.Monitor
	plane   *monitor.Plane
	lb      *lb.Balancer
	// algo is the algorithm instance driving the control plane, kept so
	// algorithm-specific observability (the scaler manager's per-scaler
	// recommendations) can be surfaced without re-plumbing the monitor.
	algo core.Algorithm

	services []*serviceRuntime
	byName   map[string]*serviceRuntime
	ids      loadgen.IDAllocator

	recorder *metrics.Recorder
	costs    *cost.Tracker
	faults   *faults.Injector
	connFail ConnFailureBreakdown
	journal  *obs.Journal
	// graph is the call-graph propagation layer, nil unless the config
	// declares a CallGraph or any resilience defense.
	graph *graphRun

	// ReplicaSeries records per-service replica counts at each monitor
	// poll, for the resource-efficiency analyses.
	ReplicaSeries map[string]*metrics.TimeSeries
	// UtilSeries records cluster-wide CPU usage fraction per poll.
	UtilSeries *metrics.TimeSeries

	// replicaBuf is the reusable replica-lookup buffer for per-request
	// routing — the single hottest path in a macro run. Valid only within
	// one route/poll call; never retained.
	replicaBuf []*container.Container

	stressIdx int
	started   bool
	// monitorDown tracks whether the last poll fell inside a monitor-crash
	// fault window, so the first poll after the window restarts the Monitor
	// (checkpoint restore or cold, per SelfHealing.Checkpoint).
	monitorDown bool
	// monitorCrashes counts poll periods lost to monitor-crash windows.
	monitorCrashes uint64
}

// New builds a world. algo may be nil for experiments with no autoscaler
// (the §III fixed-allocation microbenchmarks).
func New(cfg Config, algo core.Algorithm) (*World, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("platform: need at least one node")
	}
	if cfg.Tick <= 0 {
		return nil, fmt.Errorf("platform: tick must be positive")
	}
	cl, err := cluster.NewHomogeneous(cfg.Nodes, cfg.NodeTemplate)
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:           cfg,
		engine:        sim.New(cfg.Seed),
		cluster:       cl,
		lb:            lb.New(cfg.LBPolicy),
		byName:        make(map[string]*serviceRuntime),
		recorder:      metrics.NewRecorder(),
		costs:         cost.NewTracker(cfg.Cost),
		ReplicaSeries: make(map[string]*metrics.TimeSeries),
		UtilSeries:    &metrics.TimeSeries{Name: "cluster-cpu-util"},
	}
	w.lb.DistributionOverhead = cfg.DistributionOverhead
	if algo == nil {
		algo = noopAlgorithm{}
	}
	zones := cfg.Zones
	if zones > cfg.Nodes {
		// A zone with no nodes can never host a service, and the lease scan
		// would silently skip it — reject instead of shrinking the request.
		return nil, fmt.Errorf("platform: zones (%d) exceeds node count (%d)", zones, cfg.Nodes)
	}
	if cfg.EvacuateZones && !cfg.SelfHealing.Enabled {
		return nil, fmt.Errorf("platform: zone evacuation requires self-healing (the per-zone failure detectors are its trigger)")
	}
	if zones > 1 {
		p, err := monitor.NewPlane(cl, algo, monitor.PlaneConfig{
			Zones:            zones,
			LeaseHeadroomCPU: cfg.ZoneLeaseHeadroomCPU,
			Evacuate:         cfg.EvacuateZones,
			SpilloverZones:   cfg.ZoneSpilloverZones,
			ReadoptAfter:     cfg.ZoneReadoptAfter,
		})
		if err != nil {
			return nil, err
		}
		w.plane = p
		w.ctl = p
		// Shard the event heap to match: heap maintenance stays flat as the
		// zoned worlds grow the event volume. Ordering is provably identical.
		if err := w.engine.SetShards(zones); err != nil {
			return nil, err
		}
	} else {
		w.monitor = monitor.New(cl, algo)
		w.ctl = w.monitor
	}
	if cfg.Observe {
		w.journal = obs.NewJournal()
	}
	w.algo = algo
	// Multi-metric manager observability: a structural assertion (rather
	// than a scalermgr import in the hot path types) keeps non-manager runs
	// byte-identical — the observer fires only under Observe, and
	// ManagerRecommendations returns nil for every other algorithm.
	if cfg.Observe {
		if mgr, ok := algo.(recommendObservable); ok {
			mgr.SetRecommendObserver(func(now time.Duration, service, detail string) {
				w.journal.Event(obs.Event{
					At:      now,
					Kind:    obs.EventScalerRecommend,
					Service: service,
					Detail:  detail,
				})
			})
		}
	}
	onRemoval := func(r *workload.Request) {
		if w.graph != nil {
			w.graph.onRemoval(r)
			return
		}
		w.recorder.RecordFailure(r.Service, workload.FailureRemoval)
		w.costs.ObserveFailure()
	}
	for _, m := range w.arbiters() {
		m.Obs = w.journal
		m.StartDelay = cfg.StartDelay
		m.SelfHeal = cfg.SelfHealing
		m.OnRemovalFailure = onRemoval
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	for _, wnd := range cfg.Faults.Windows {
		if wnd.Kind != faults.KindZoneOutage && wnd.Kind != faults.KindZonePartition {
			continue
		}
		if zones <= 1 {
			return nil, fmt.Errorf("platform: %s fault windows need a zoned control plane (zones >= 2)", wnd.Kind)
		}
		zi, err := strconv.Atoi(wnd.Target)
		if err != nil || zi < 0 || zi >= zones {
			return nil, fmt.Errorf("platform: %s window targets zone %q, want an index in [0,%d)", wnd.Kind, wnd.Target, zones)
		}
	}
	if err := cfg.Resilience.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.CallGraph.Validate(nil); err != nil {
		return nil, err
	}
	if cfg.CallGraph.Enabled() || cfg.Resilience.Enabled() {
		m := resilience.NewManager(cfg.Resilience, cfg.Seed)
		if m != nil && cfg.Observe {
			m.OnTransition = func(now time.Duration, edge string, from, to resilience.BreakerState) {
				w.journal.Event(obs.Event{
					At:     now,
					Kind:   breakerEventKind(to),
					Detail: edge + ": " + from.String() + " -> " + to.String(),
				})
			}
		}
		w.graph = newGraphRun(w, cfg.CallGraph, m)
	}
	w.faults = faults.New(cfg.Faults)
	if w.plane != nil {
		w.plane.InstallZoneFaults(w.faults)
	}
	for _, m := range w.arbiters() {
		m.Faults = w.faults
		if cfg.HardeningOff {
			m.Hardening.Enabled = false
		}
	}
	if !cfg.HardeningOff && w.faults.Enabled() {
		// The hardened balancer probes backends against the injected outage
		// schedule; the unhardened one routes blind and eats the failures.
		w.lb.HealthCheck = func(now time.Duration, c *container.Container) bool {
			return !w.faults.BackendDown(now, c.Service, c.ID)
		}
	}
	return w, nil
}

// recommendObservable is the structural face of the scaler manager's
// observer hook (scalermgr.Manager implements it); asserting it here keeps
// the wiring independent of which algorithm the world runs.
type recommendObservable interface {
	SetRecommendObserver(func(at time.Duration, service, detail string))
}

// ManagerRecommendations returns the multi-metric scaler manager's latest
// per-scaler recommendations, and nil when any other algorithm drives the
// world — callers (httpapi) emit manager metrics only when non-nil.
func (w *World) ManagerRecommendations() []scalermgr.Recommendation {
	if mgr, ok := w.algo.(interface {
		Recommendations() []scalermgr.Recommendation
	}); ok {
		return mgr.Recommendations()
	}
	return nil
}

// noopAlgorithm never scales; it stands in when experiments drive
// allocations manually.
type noopAlgorithm struct{}

func (noopAlgorithm) Name() string                   { return "static" }
func (noopAlgorithm) Decide(core.Snapshot) core.Plan { return core.Plan{} }

// arbiters returns every Monitor in the world — the single central one, or
// one per zone — so shared configuration applies uniformly.
func (w *World) arbiters() []*monitor.Monitor {
	if w.plane != nil {
		return w.plane.Arbiters()
	}
	return []*monitor.Monitor{w.monitor}
}

// Engine exposes the simulation engine (for custom scheduled events).
func (w *World) Engine() *sim.Engine { return w.engine }

// Cluster exposes the cluster (for assertions in tests).
func (w *World) Cluster() *cluster.Cluster { return w.cluster }

// Monitor exposes the central arbiter. It is nil when the control plane is
// zoned (Config.Zones > 1); zone-agnostic callers should use Control.
func (w *World) Monitor() *monitor.Monitor { return w.monitor }

// Control exposes the control plane: the central Monitor, or the zoned
// Plane when Config.Zones > 1.
func (w *World) Control() monitor.ControlPlane { return w.ctl }

// Plane exposes the zoned control plane, nil when Config.Zones <= 1.
func (w *World) Plane() *monitor.Plane { return w.plane }

// Zones returns the number of control-plane zones (1 for the single
// central monitor).
func (w *World) Zones() int {
	if w.plane != nil {
		return w.plane.ZoneCount()
	}
	return 1
}

// ZoneSummaries returns per-zone merged views, nil for single-zone worlds.
func (w *World) ZoneSummaries() []monitor.ZoneSummary {
	if w.plane == nil {
		return nil
	}
	return w.plane.ZoneSummaries()
}

// CrossZone returns the global allocator's counters (zero for single-zone
// worlds).
func (w *World) CrossZone() monitor.CrossZoneCounts {
	if w.plane == nil {
		return monitor.CrossZoneCounts{}
	}
	return w.plane.Cross()
}

// ZoneEvac returns the zone evacuation / re-adoption counters, nil when the
// world is unzoned or evacuation is disabled.
func (w *World) ZoneEvac() *monitor.EvacCounts {
	if w.plane == nil || !w.cfg.EvacuateZones {
		return nil
	}
	ec := w.plane.Evac()
	return &ec
}

// Recorder exposes the metrics recorder.
func (w *World) Recorder() *metrics.Recorder { return w.recorder }

// AddService registers a microservice with its utilization target and load
// pattern, and deploys its minimum replicas.
func (w *World) AddService(spec workload.ServiceSpec, targetUtil float64, pattern loadgen.Pattern) error {
	if err := w.ctl.AddService(spec, targetUtil); err != nil {
		return err
	}
	rt := &serviceRuntime{spec: spec}
	if pattern != nil {
		rt.gen = loadgen.NewGenerator(spec, pattern, &w.ids)
		rt.gen.Poisson = w.cfg.PoissonArrivals
	}
	w.services = append(w.services, rt)
	w.byName[spec.Name] = rt
	w.ReplicaSeries[spec.Name] = &metrics.TimeSeries{Name: spec.Name + "-replicas"}
	if err := w.ctl.DeployInitial(spec.Name, w.engine.Now()); err != nil {
		return err
	}
	return nil
}

// DeployReplica pins one replica of service to a node with an explicit
// allocation — the §III microbenchmarks use this instead of the autoscaler.
func (w *World) DeployReplica(service, nodeID string, alloc resources.Vector) error {
	return w.ctl.StartReplica(service, nodeID, alloc, w.engine.Now())
}

// AddStressContainer places a stress contender (the paper's progrium-stress
// or network-hog container) on a node. cpuDemand is in cores; netFlows is
// the number of flooding egress flows (0 for none).
func (w *World) AddStressContainer(nodeID string, alloc resources.Vector, cpuDemand float64, netFlows int) error {
	n := w.cluster.Node(nodeID)
	if n == nil {
		return fmt.Errorf("platform: unknown node %q", nodeID)
	}
	w.stressIdx++
	spec := workload.ServiceSpec{
		Name: fmt.Sprintf("stress-%d", w.stressIdx), Kind: workload.KindCPUBound,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 64,
		MinReplicas: 1, MaxReplicas: 1, Timeout: time.Hour,
	}
	c := container.New(spec.Name, spec, nodeID, alloc, 0)
	c.StressCPUDemand = cpuDemand
	c.StressNetFlows = netFlows
	c.MaybeStart(0)
	return n.AddContainer(c)
}

// InjectRequests schedules n requests for the service arriving uniformly
// over the window starting at 'at' — used by the fixed-count (§III)
// microbenchmarks.
//
// Arrivals are coalesced: all n requests share one IndexedEvent closure, and
// requests landing on the same simulated instant share one heap entry
// (ScheduleBatch), so injection costs O(distinct instants) events instead of
// n closures. Request IDs, arrival instants and routing order are identical
// to scheduling each request individually.
func (w *World) InjectRequests(at time.Duration, window time.Duration, service string, n int) error {
	rt, ok := w.byName[service]
	if !ok {
		return fmt.Errorf("platform: unknown service %q", service)
	}
	if n <= 0 {
		return nil
	}
	if window <= 0 {
		window = w.cfg.Tick
	}
	w.recorder.Reserve(service, n)
	reqs := make([]*workload.Request, n)
	for i := range reqs {
		arrive := at + time.Duration(float64(window)*float64(i)/float64(n))
		reqs[i] = workload.NewRequest(w.ids.Next(), rt.spec, arrive)
	}
	fire := func(e *sim.Engine, i int) { w.route(reqs[i]) }
	for i := 0; i < n; {
		j := i + 1
		for j < n && reqs[j].Arrival == reqs[i].Arrival {
			j++
		}
		if err := w.engine.ScheduleBatch(reqs[i].Arrival, i, j-i, fire); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// route sends one request through the load balancer. Call-graph worlds
// divert to the propagation layer; plain worlds run the original path.
func (w *World) route(req *workload.Request) {
	if w.graph != nil {
		w.graph.route(req)
		return
	}
	req.ExtraLatency += w.cfg.BaseLatency
	now := w.engine.Now()
	w.replicaBuf = w.ctl.AppendReplicas(w.replicaBuf[:0], req.Service)
	target, err := w.lb.RouteAt(now, req, w.replicaBuf)
	if err != nil {
		if errors.Is(err, lb.ErrAllStarting) {
			w.connFail.Starting++
		} else {
			w.connFail.Absent++
		}
		w.recorder.RecordFailure(req.Service, workload.FailureConnection)
		w.costs.ObserveFailure()
		return
	}
	if w.faults.BackendDown(now, target.Service, target.ID) {
		// The chosen backend is black-holing connections — an outage the
		// balancer's probes have not (or, unhardened, will never) notice.
		w.connFail.Unhealthy++
		w.recorder.RecordFailure(req.Service, workload.FailureConnection)
		w.costs.ObserveFailure()
		return
	}
	target.Enqueue(req)
}

// tick runs one physics step: generate arrivals, advance the cluster,
// record completions/timeouts, sample node stats.
func (w *World) tick(e *sim.Engine) {
	now := e.Now()
	dt := w.cfg.Tick

	for _, rt := range w.services {
		if rt.gen == nil {
			continue
		}
		for _, req := range rt.gen.Arrivals(now, dt, e.Rand()) {
			w.route(req)
		}
	}

	res := w.cluster.Advance(now, dt)
	if w.graph != nil {
		w.graph.afterAdvance(now+dt, res)
	} else {
		for _, done := range res.Completed {
			r := done.Request
			latency := done.At - r.Arrival + r.ExtraLatency
			if latency < 0 {
				latency = 0
			}
			w.recorder.RecordCompletion(r.Service, latency)
			w.costs.ObserveCompletion(latency)
		}
		for _, r := range res.TimedOut {
			w.recorder.RecordFailure(r.Service, workload.FailureConnection)
			w.costs.ObserveFailure()
		}
	}

	// Machines hosting at least one container count as powered; idle ones
	// are assumed reclaimable (§I's power argument).
	active := 0
	for _, n := range w.cluster.Nodes() {
		if len(n.Containers()) > 0 {
			active++
		}
	}
	w.costs.ObserveMachines(active, dt)

	w.ctl.Sample()
}

// poll runs one Monitor decision period and records bookkeeping series.
// Polls inside a monitor-crash fault window are skipped entirely — the
// control plane is down while the data plane keeps serving — and the first
// poll after the window restarts the Monitor from its last checkpoint (or
// cold). The bookkeeping series keep sampling throughout so the outage is
// visible in the run artifacts.
func (w *World) poll(e *sim.Engine) {
	now := e.Now()
	if w.faults.MonitorCrashed(now) {
		w.monitorDown = true
		w.monitorCrashes++
	} else {
		if w.monitorDown {
			w.monitorDown = false
			w.ctl.Restart(now)
		}
		w.ctl.Poll(now)
		w.ctl.MaybeCheckpoint(now)
	}

	var usedCPU, capCPU float64
	for _, n := range w.cluster.Nodes() {
		capCPU += n.Capacity().CPU
		for _, c := range n.Containers() {
			usedCPU += c.LastUsage().CPU
		}
	}
	if capCPU > 0 {
		w.UtilSeries.Append(now, usedCPU/capCPU)
	}
	for name, ts := range w.ReplicaSeries {
		ts.Append(now, float64(w.ctl.ReplicaCount(name)))
	}

	if w.journal != nil {
		// Per-service time-series samples, in service registration order so
		// artifact bytes are deterministic.
		for _, rt := range w.services {
			name := rt.spec.Name
			w.replicaBuf = w.ctl.AppendReplicas(w.replicaBuf[:0], name)
			replicas := w.replicaBuf
			var cpuShares, cpuUsage, netMbps float64
			for _, c := range replicas {
				cpuShares += c.Alloc.CPU
				u := c.LastUsage()
				cpuUsage += u.CPU
				netMbps += u.NetMbps
			}
			completed, removal, conn, totalLat := w.recorder.ServiceCounters(name)
			w.journal.Sample(now, name, len(replicas), cpuShares, cpuUsage, netMbps,
				completed, removal+conn, totalLat)
		}
	}
}

// Run simulates until the horizon (absolute simulated time). It may be
// called repeatedly to step the world forward incrementally; the periodic
// physics and monitor tasks are scheduled exactly once.
func (w *World) Run(horizon time.Duration) error {
	if !w.started {
		if w.graph != nil {
			if err := w.graph.checkServices(); err != nil {
				return err
			}
		}
		if err := w.engine.SchedulePeriodic(w.cfg.Tick, w.cfg.Tick, w.tick); err != nil {
			return err
		}
		if w.cfg.MonitorPeriod > 0 {
			if err := w.engine.SchedulePeriodic(w.cfg.MonitorPeriod, w.cfg.MonitorPeriod, w.poll); err != nil {
				return err
			}
		}
		w.started = true
	}
	return w.engine.Run(horizon)
}

// RunUntilDrained keeps ticking past the horizon until no requests remain in
// flight (or maxExtra elapses) — fixed-count microbenchmarks use this so
// every injected request resolves.
func (w *World) RunUntilDrained(horizon, maxExtra time.Duration) error {
	if err := w.Run(horizon); err != nil {
		return err
	}
	deadline := horizon + maxExtra
	for w.engine.Now() < deadline {
		if w.inflight() == 0 {
			return nil
		}
		if err := w.engine.Run(w.engine.Now() + 10*w.cfg.Tick); err != nil {
			return err
		}
	}
	return nil
}

func (w *World) inflight() int {
	n := 0
	for _, node := range w.cluster.Nodes() {
		for _, c := range node.Containers() {
			n += c.Inflight()
		}
	}
	return n
}

// Summary returns the aggregate user-perceived performance report.
func (w *World) Summary() metrics.Summary { return w.recorder.Summarize() }

// ClampedEvents reports how many events the engine clamped to "now" because
// a component scheduled them in the past — see sim.Engine.Clamped. Run
// results surface this so stale-timestamp bugs cannot hide in dropped error
// returns.
func (w *World) ClampedEvents() uint64 { return w.engine.Clamped() }

// FaultInjector exposes the fault-injection layer (nil when faults are
// disabled) — experiments probe it for uptime accounting.
func (w *World) FaultInjector() *faults.Injector { return w.faults }

// ConnFailures returns the routing-time connection-failure breakdown.
func (w *World) ConnFailures() ConnFailureBreakdown { return w.connFail }

// Journal returns the decision-trace journal, or nil when Config.Observe was
// off. All Journal methods are nil-safe, so callers may use the result
// unconditionally.
func (w *World) Journal() *obs.Journal { return w.journal }

// MonitorCrashes returns how many poll periods were lost to monitor-crash
// fault windows.
func (w *World) MonitorCrashes() uint64 { return w.monitorCrashes }

// CascadeStats returns the call-graph run's root-outcome and per-edge
// counters (zero when no call graph is configured).
func (w *World) CascadeStats() CascadeStats {
	if w.graph == nil {
		return CascadeStats{}
	}
	return w.graph.Stats()
}

// HasCallGraph reports whether this world routes requests through a
// per-service call DAG (the cascade propagation layer).
func (w *World) HasCallGraph() bool { return w.graph != nil }

// Resilience returns the run's resilience manager, nil when no defense is
// enabled. All Manager methods are nil-safe.
func (w *World) Resilience() *resilience.Manager {
	if w.graph == nil {
		return nil
	}
	return w.graph.res
}

// CostReport prices the run so far (machine-hours + SLA penalties).
func (w *World) CostReport() cost.Report { return w.costs.Report() }

// ScheduleNodeFailure schedules machine nodeID to fail at the given
// simulated time: every container on it dies (in-flight requests are
// recorded as removal failures) and the Monitor stops querying it. Used by
// the availability-under-churn experiments.
func (w *World) ScheduleNodeFailure(at time.Duration, nodeID string) error {
	return w.engine.Schedule(at, func(e *sim.Engine) {
		killed, err := w.cluster.RemoveNode(nodeID)
		if err != nil {
			return // already gone
		}
		if w.plane != nil {
			// Mirror the physical removal into the owning zone's view so the
			// zone arbiter sees the machine gone, just as the single monitor
			// does through the shared cluster.
			w.plane.NoteNodeRemoved(nodeID)
		}
		if !w.cfg.SelfHealing.Enabled {
			// Legacy out-of-band notification. With self-healing on, the
			// failure detector must discover the death through missed polls.
			w.ctl.DetachNode(nodeID)
		}
		for _, r := range killed {
			w.recorder.RecordFailure(r.Service, workload.FailureRemoval)
			w.costs.ObserveFailure()
		}
	})
}

// ScheduleNodeRecovery schedules a fresh machine to join the cluster at the
// given simulated time (the paper's dynamic machine-addition future work).
func (w *World) ScheduleNodeRecovery(at time.Duration, cfg cluster.NodeConfig) error {
	return w.engine.Schedule(at, func(e *sim.Engine) {
		if err := w.cluster.AddNode(cfg); err != nil {
			return // duplicate ID
		}
		w.ctl.AttachNode(w.cluster.Node(cfg.ID))
	})
}
