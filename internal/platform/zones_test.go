package platform

// Cross-zone conservation property test (the zoned control plane's ledger
// integrity): under node churn, a partition and a monitor-crash window, the
// replica ledgers summed across all zone arbiters must agree exactly with
// the physical cluster — the same ground truth the unsharded monitor's
// ledger is graded against — and the merged action/recovery counters must
// balance the replica conservation equation.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/monitor"
	"hyscale/internal/workload"
)

func zonedChurnWorld(t *testing.T, seed int64, zones int) *World {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Nodes = 12
	cfg.Zones = zones
	cfg.SelfHealing = monitor.DefaultSelfHealing()
	cfg.Faults = faults.Config{
		Seed: seed,
		Windows: []faults.Window{
			{Kind: faults.KindPartition, Target: "node-2", From: 60 * time.Second, To: 90 * time.Second},
			{Kind: faults.KindMonitorCrash, From: 120 * time.Second, To: 140 * time.Second},
		},
	}
	w, err := New(cfg, core.NewHyScaleCPUMem(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		spec := workload.ServiceSpec{
			Name: fmt.Sprintf("svc-%d", i), Kind: workload.KindCPUBound,
			CPUPerRequest: 0.08, CPUOverheadPerRequest: 0.01, MemPerRequest: 2, BaselineMemMB: 200,
			InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
			MinReplicas: 1, MaxReplicas: 4, Timeout: 30 * time.Second,
		}
		pattern := loadgen.Wave{Base: 10, Amplitude: 0.4, Period: 3 * time.Minute,
			PhaseShift: time.Duration(i) * 20 * time.Second}
		if err := w.AddService(spec, 0.5, pattern); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.ScheduleNodeFailure(50*time.Second, "node-5"); err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleNodeRecovery(100*time.Second, cluster.DefaultNodeConfig("node-99")); err != nil {
		t.Fatal(err)
	}
	return w
}

// liveReplicas counts non-removed containers of the service in the physical
// cluster — the ground-truth ledger below any control plane.
func liveReplicas(w *World, service string) int {
	n := 0
	for _, node := range w.Cluster().Nodes() {
		for _, c := range node.Containers() {
			if c.Service == service && c.State != container.StateRemoved {
				n++
			}
		}
	}
	return n
}

func checkLedger(t *testing.T, w *World, label string) {
	t.Helper()
	ctl := w.Control()
	totalPhysical := 0
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("svc-%d", i)
		phys := liveReplicas(w, name)
		totalPhysical += phys
		if got := ctl.ReplicaCount(name); got != phys {
			t.Errorf("%s: %s ledger has %d replicas, physical cluster has %d", label, name, got, phys)
		}
	}
	// Conservation: every replica ever started is now live, scaled in, or
	// lost to a dead node — with re-adopted survivors returned and stale
	// drains (counted in both ScaleIns and ReplicasLost) added back.
	c, r := ctl.Counts(), ctl.Recovery()
	balance := int(c.ScaleOuts) - int(c.ScaleIns) - int(r.ReplicasLost) + int(r.Readopted) + int(r.StaleDrained)
	if balance != totalPhysical {
		t.Errorf("%s: ledger balance %d (scaleOuts %d - scaleIns %d - lost %d + readopted %d + staleDrained %d) != %d live replicas",
			label, balance, c.ScaleOuts, c.ScaleIns, r.ReplicasLost, r.Readopted, r.StaleDrained, totalPhysical)
	}
	if c.ScaleOuts == 0 {
		t.Errorf("%s: no scale-outs recorded — workload misconfigured", label)
	}
	// Zoned runs: ownership must be exclusive and exhaustive — the per-zone
	// replica sums cover the physical cluster exactly once.
	if p := w.Plane(); p != nil {
		zoneTotal := 0
		for _, zs := range p.ZoneSummaries() {
			zoneTotal += zs.Replicas
		}
		if zoneTotal != totalPhysical {
			t.Errorf("%s: zone arbiters own %d replicas, physical cluster has %d", label, zoneTotal, totalPhysical)
		}
	}
}

func TestZonedConservationUnderChurnAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, seed := range []int64{3, 17} {
		// Run well past the last fault window (crash ends at 140s) so limbo
		// replicas resolve, reconciliation drains, and the ledgers quiesce.
		zoned := zonedChurnWorld(t, seed, 3)
		if err := zoned.Run(4 * time.Minute); err != nil {
			t.Fatal(err)
		}
		checkLedger(t, zoned, fmt.Sprintf("seed %d zones=3", seed))
		if zoned.Control().Recovery().DeclaredDead == 0 {
			t.Errorf("seed %d: churn never tripped the failure detector", seed)
		}

		// The unsharded control plane over the identical scenario must honour
		// the same ledger identities — the reference the satellite names.
		flat := zonedChurnWorld(t, seed, 1)
		if err := flat.Run(4 * time.Minute); err != nil {
			t.Fatal(err)
		}
		checkLedger(t, flat, fmt.Sprintf("seed %d zones=1", seed))
	}
}

// zonedOutageWorld is the evacuation variant of zonedChurnWorld: a full
// zone-outage window with evacuation and spillover enabled, healing early
// enough that the evacuate → readopt round trip completes within the run.
func zonedOutageWorld(t *testing.T, seed int64, zones int) *World {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Nodes = 12
	cfg.Zones = zones
	cfg.SelfHealing = monitor.DefaultSelfHealing()
	cfg.EvacuateZones = true
	cfg.ZoneSpilloverZones = 2
	cfg.Faults = faults.Config{
		Seed: seed,
		Windows: []faults.Window{
			{Kind: faults.KindZoneOutage, Target: "0", From: 60 * time.Second, To: 150 * time.Second},
		},
	}
	w, err := New(cfg, core.NewHyScaleCPUMem(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		spec := workload.ServiceSpec{
			Name: fmt.Sprintf("svc-%d", i), Kind: workload.KindCPUBound,
			CPUPerRequest: 0.08, CPUOverheadPerRequest: 0.01, MemPerRequest: 2, BaselineMemMB: 200,
			InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
			MinReplicas: 1, MaxReplicas: 4, Timeout: 30 * time.Second,
		}
		pattern := loadgen.Wave{Base: 10, Amplitude: 0.4, Period: 3 * time.Minute,
			PhaseShift: time.Duration(i) * 20 * time.Second}
		if err := w.AddService(spec, 0.5, pattern); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestZonedConservationUnderZoneOutage drives the full disaster-recovery
// round trip — outage, evacuation, heal, re-adoption — and demands the same
// ledger identities as the churn test: per-service ledgers equal to the
// physical cluster, the merged counters balancing the conservation
// equation, and zone ownership exclusive and exhaustive. Nothing may leak
// across the evacuate → readopt cycle.
func TestZonedConservationUnderZoneOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, seed := range []int64{3, 17} {
		for _, zones := range []int{3, 8} {
			label := fmt.Sprintf("seed %d zones=%d", seed, zones)
			w := zonedOutageWorld(t, seed, zones)
			// The outage heals at 150s; the detector re-admission plus the
			// 30 s re-adoption cooldown land the migration home around 220s,
			// so 5 minutes leaves the ledgers time to quiesce.
			if err := w.Run(5 * time.Minute); err != nil {
				t.Fatal(err)
			}
			checkLedger(t, w, label)
			ev := w.ZoneEvac()
			if ev == nil {
				t.Fatalf("%s: ZoneEvac() = nil with evacuation enabled", label)
			}
			if ev.ZonesEvacuated == 0 || ev.ServicesEvacuated == 0 || ev.ReplicasDisplaced == 0 {
				t.Errorf("%s: outage never triggered an evacuation: %+v", label, *ev)
			}
			if ev.ZonesReadopted == 0 || ev.ServicesReadopted == 0 {
				t.Errorf("%s: healed zone was never re-adopted: %+v", label, *ev)
			}
			if w.Control().Recovery().DeclaredDead == 0 {
				t.Errorf("%s: outage never tripped the failure detector", label)
			}
		}
	}
}

// TestZonedOutageRunIsDeterministic re-runs the evacuation scenario and
// requires identical zone summaries, action counts and DR counters — the
// evacuation state machine must not introduce iteration-order or timing
// nondeterminism.
func TestZonedOutageRunIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	run := func() ([]monitor.ZoneSummary, monitor.ActionCounts, monitor.EvacCounts) {
		w := zonedOutageWorld(t, 9, 3)
		if err := w.Run(4 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return w.ZoneSummaries(), w.Control().Counts(), *w.ZoneEvac()
	}
	z1, c1, e1 := run()
	z2, c2, e2 := run()
	if !reflect.DeepEqual(z1, z2) {
		t.Fatalf("zone summaries differ between identical runs:\n%v\n%v", z1, z2)
	}
	if c1 != c2 {
		t.Fatalf("action counts differ: %v vs %v", c1, c2)
	}
	if e1 != e2 {
		t.Fatalf("evacuation counters differ: %+v vs %+v", e1, e2)
	}
}

func TestZonedRunIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	run := func() ([]monitor.ZoneSummary, monitor.ActionCounts, uint64) {
		w := zonedChurnWorld(t, 9, 3)
		if err := w.Run(3 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return w.ZoneSummaries(), w.Control().Counts(), w.Summary().Requests
	}
	z1, c1, r1 := run()
	z2, c2, r2 := run()
	if !reflect.DeepEqual(z1, z2) {
		t.Fatalf("zone summaries differ between identical runs:\n%v\n%v", z1, z2)
	}
	if c1 != c2 {
		t.Fatalf("action counts differ: %v vs %v", c1, c2)
	}
	if r1 != r2 {
		t.Fatalf("request totals differ: %d vs %d", r1, r2)
	}
}
