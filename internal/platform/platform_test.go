package platform

import (
	"testing"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/loadgen"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

func cpuSpec(name string) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: workload.KindCPUBound,
		CPUPerRequest: 0.1, MemPerRequest: 4, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 1, MaxReplicas: 6, Timeout: 10 * time.Second,
	}
}

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Nodes = 4
	cfg.BaseLatency = 0
	cfg.DistributionOverhead = 0
	return cfg
}

func TestWorldRunCompletesRequests(t *testing.T) {
	w, err := New(smallConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddService(cpuSpec("a"), 0.5, loadgen.Constant{RPS: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	// ~5 rps for 30 s, minus the tail still in flight.
	if s.Completed < 120 {
		t.Errorf("completed = %d, want >= 120", s.Completed)
	}
	if s.FailedPercent() > 1 {
		t.Errorf("failed = %.2f%%, want ~0", s.FailedPercent())
	}
	if s.MeanLatency <= 0 || s.MeanLatency > time.Second {
		t.Errorf("mean latency = %v, implausible", s.MeanLatency)
	}
}

func TestWorldValidation(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Nodes = 0
	if _, err := New(cfg, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg = smallConfig(1)
	cfg.Tick = 0
	if _, err := New(cfg, nil); err == nil {
		t.Error("zero tick accepted")
	}
}

func TestInjectRequestsFixedCount(t *testing.T) {
	w, err := New(smallConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddService(cpuSpec("a"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.InjectRequests(time.Second, 10*time.Second, "a", 50); err != nil {
		t.Fatal(err)
	}
	if err := w.InjectRequests(0, time.Second, "ghost", 1); err == nil {
		t.Error("unknown service accepted")
	}
	if err := w.RunUntilDrained(11*time.Second, time.Minute); err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.Requests != 50 {
		t.Errorf("requests = %d, want 50", s.Requests)
	}
	if s.Completed != 50 {
		t.Errorf("completed = %d, want 50", s.Completed)
	}
}

func TestNoBackendIsConnectionFailure(t *testing.T) {
	w, err := New(smallConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddService(cpuSpec("a"), 0, nil); err != nil {
		t.Fatal(err)
	}
	// Kill the only replica out from under the balancer.
	for _, rep := range w.Monitor().Replicas("a") {
		_, node := w.Cluster().FindContainer(rep.ID)
		node.RemoveContainer(rep.ID)
	}
	if err := w.InjectRequests(time.Second, time.Second, "a", 10); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.ConnectionFailures != 10 {
		t.Errorf("connection failures = %d, want 10", s.ConnectionFailures)
	}
}

func TestTimeoutsAreConnectionFailures(t *testing.T) {
	w, err := New(smallConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := cpuSpec("a")
	spec.CPUPerRequest = 1000 // can never finish before the 10s timeout
	if err := w.AddService(spec, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.InjectRequests(time.Second, time.Second, "a", 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.ConnectionFailures != 3 {
		t.Errorf("connection failures = %d, want 3 (timeouts)", s.ConnectionFailures)
	}
}

// scaleInOnce removes one replica on its first decision, to exercise
// removal-failure accounting end to end.
type scaleInOnce struct{ done bool }

func (s *scaleInOnce) Name() string { return "scale-in-once" }
func (s *scaleInOnce) Decide(snap core.Snapshot) core.Plan {
	if s.done || len(snap.Services) == 0 || len(snap.Services[0].Replicas) == 0 {
		return core.Plan{}
	}
	s.done = true
	return core.Plan{Actions: []core.Action{
		core.ScaleIn{ContainerID: snap.Services[0].Replicas[0].ContainerID},
	}}
}

func TestRemovalFailuresRecorded(t *testing.T) {
	cfg := smallConfig(1)
	cfg.MonitorPeriod = 2 * time.Second
	w, err := New(cfg, &scaleInOnce{})
	if err != nil {
		t.Fatal(err)
	}
	spec := cpuSpec("a")
	spec.CPUPerRequest = 30 // long enough to still be in flight at the poll
	if err := w.AddService(spec, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.InjectRequests(1500*time.Millisecond, 100*time.Millisecond, "a", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.RemovalFailures != 4 {
		t.Errorf("removal failures = %d, want 4", s.RemovalFailures)
	}
}

func TestDeployReplicaAndStress(t *testing.T) {
	w, err := New(smallConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddService(cpuSpec("a"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.DeployReplica("a", "node-1", resources.Vector{CPU: 2, MemMB: 256}); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Monitor().Replicas("a")); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	if err := w.AddStressContainer("node-1", resources.Vector{CPU: 2, MemMB: 64}, 4, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.AddStressContainer("ghost", resources.Vector{CPU: 1}, 1, 0); err == nil {
		t.Error("unknown node accepted")
	}
	// The stress container exists on the node but is not a service replica.
	n := w.Cluster().Node("node-1")
	if len(n.Containers()) != 2 {
		t.Errorf("node-1 containers = %d, want 2", len(n.Containers()))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		w, err := New(smallConfig(9), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AddService(cpuSpec("a"), 0.5, loadgen.Wave{Base: 8, Amplitude: 0.4, Period: 20 * time.Second}); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		s := w.Summary()
		return s.Completed, s.MeanLatency
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("runs differ: %d/%v vs %d/%v", c1, m1, c2, m2)
	}
}

func TestAutoscalerGrowsReplicasUnderLoad(t *testing.T) {
	cfg := smallConfig(2)
	w, err := New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := cpuSpec("a")
	if err := w.AddService(spec, 0.5, loadgen.Constant{RPS: 30}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	// 30 rps * 0.11 cpu-s = 3.3 cores demanded; at 50% target K8s needs
	// ~7 replicas of 1 CPU, clamped by max 6.
	if got := len(w.Monitor().Replicas("a")); got < 3 {
		t.Errorf("replicas = %d, want >= 3 under sustained load", got)
	}
	if w.Monitor().Counts().ScaleOuts == 0 {
		t.Error("no scale-outs recorded")
	}
	if w.UtilSeries.Len() == 0 {
		t.Error("UtilSeries not recorded")
	}
	if w.ReplicaSeries["a"].Len() == 0 {
		t.Error("ReplicaSeries not recorded")
	}
}

func TestBaseLatencyCharged(t *testing.T) {
	cfg := smallConfig(1)
	cfg.BaseLatency = 100 * time.Millisecond
	w, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := cpuSpec("a")
	spec.CPUPerRequest = 0.001
	if err := w.AddService(spec, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.InjectRequests(time.Second, time.Second, "a", 10); err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntilDrained(3*time.Second, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := w.Summary().MeanLatency; got < 100*time.Millisecond {
		t.Errorf("mean = %v, want >= the 100ms base latency", got)
	}
}
