package platform

// Call-graph propagation tests: the DAG conservation invariants, the
// retry-budget storm regression, and the guarantee that worlds without a
// callGraph/resilience block never touch the cascade machinery.

import (
	"testing"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/resilience"
	"hyscale/internal/workload"
)

// cascadeTier builds one CPU-bound tier with a bounded queue.
func cascadeTier(name string, cpuPerReq float64, timeout time.Duration) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: workload.KindCPUBound,
		CPUPerRequest:         cpuPerReq,
		CPUOverheadPerRequest: 0.005,
		MemPerRequest:         2,
		BaselineMemMB:         300,
		InitialReplicaCPU:     1,
		InitialReplicaMemMB:   512,
		MinReplicas:           2,
		MaxReplicas:           4,
		Timeout:               timeout,
		QueueLimit:            64,
	}
}

// cascadeWorld builds a world routing root traffic through graph, with the
// given defenses and fault schedule. Only graph roots receive external load.
func cascadeWorld(t *testing.T, seed int64, graph workload.CallGraph,
	res resilience.Config, fc faults.Config, services []workload.ServiceSpec, rps float64) *World {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Nodes = 8
	cfg.CallGraph = graph
	cfg.Resilience = res
	cfg.Faults = fc
	w, err := New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	roots := make(map[string]bool)
	for _, r := range graph.Roots() {
		roots[r] = true
	}
	for _, spec := range services {
		var pattern loadgen.Pattern
		if roots[spec.Name] {
			pattern = loadgen.Constant{RPS: rps}
		}
		if err := w.AddService(spec, 0.5, pattern); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// fanoutGraph is a DAG exercising probabilistic and multi-call edges with a
// shared leaf: gateway -> catalog (p=0.7), gateway -> orders (2 calls each),
// both -> db.
func fanoutGraph() (workload.CallGraph, []workload.ServiceSpec) {
	graph := workload.CallGraph{Edges: []workload.CallEdge{
		{From: "gateway", To: "catalog", Prob: 0.7},
		{From: "gateway", To: "orders", Calls: 2},
		{From: "catalog", To: "db"},
		{From: "orders", To: "db"},
	}}
	services := []workload.ServiceSpec{
		cascadeTier("gateway", 0.015, 10*time.Second),
		cascadeTier("catalog", 0.02, 6*time.Second),
		cascadeTier("orders", 0.02, 6*time.Second),
		cascadeTier("db", 0.03, 3*time.Second),
	}
	return graph, services
}

// TestCascadeConservation checks the accounting invariants that every
// downstream feature (reports, metrics, experiment tables) leans on, across
// seeds and defense levels, under a mid-run slow + black-hole fault:
//
//	roots:     Generated == Completed + Shed + Deadline + Failed
//	per edge:  Issued == Delivered + Dropped
//
// Requests must never be double-counted or lost, whatever mix of sheds,
// breaker short-circuits, deadline abandonments and retries the run hits.
func TestCascadeConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	defenses := map[string]resilience.Config{
		"naive": {Retry: &resilience.RetryConfig{MaxAttempts: 3, Backoff: 100 * time.Millisecond}},
		"full": {
			Breakers:  &resilience.BreakerConfig{FailuresToOpen: 5, OpenFor: 2 * time.Second},
			Retry:     &resilience.RetryConfig{MaxAttempts: 3, Backoff: 100 * time.Millisecond, Budget: 0.2},
			Deadlines: &resilience.DeadlineConfig{Margin: 50 * time.Millisecond},
			Shedding:  &resilience.ShedConfig{UtilThreshold: 0.2, MaxShed: 0.95},
		},
	}
	for name, res := range defenses {
		res := res
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 7} {
				graph, services := fanoutGraph()
				fc := faults.Config{Seed: seed + 3000, Windows: []faults.Window{
					{Kind: faults.KindSlowBackend, Target: "db", From: 60 * time.Second, To: 150 * time.Second, Factor: 20},
					{Kind: faults.KindBackend, Target: "db", From: 90 * time.Second, To: 120 * time.Second},
				}}
				w := cascadeWorld(t, seed, graph, res, fc, services, 10)
				if err := w.RunUntilDrained(4*time.Minute, time.Minute); err != nil {
					t.Fatal(err)
				}
				s := w.CascadeStats()
				if s.RootGenerated < 1000 {
					t.Fatalf("seed %d: RootGenerated = %d, workload too small to mean anything", seed, s.RootGenerated)
				}
				if got := s.RootCompleted + s.RootShed + s.RootDeadline + s.RootFailed; got != s.RootGenerated {
					t.Errorf("seed %d: root conservation violated: generated %d != completed %d + shed %d + deadline %d + failed %d",
						seed, s.RootGenerated, s.RootCompleted, s.RootShed, s.RootDeadline, s.RootFailed)
				}
				if len(s.Edges) != len(graph.Edges) {
					t.Errorf("seed %d: edge stats for %d edges, want %d", seed, len(s.Edges), len(graph.Edges))
				}
				for _, key := range s.EdgeKeys() {
					es := s.Edges[key]
					if es.Issued != es.Delivered+es.Dropped {
						t.Errorf("seed %d: edge %s conservation violated: issued %d != delivered %d + dropped %d",
							seed, key, es.Issued, es.Delivered, es.Dropped)
					}
					if es.Issued == 0 {
						t.Errorf("seed %d: edge %s saw no traffic", seed, key)
					}
				}
			}
		})
	}
}

// TestRetryBudgetStopsRetryStorm is the retry-storm regression: against a
// black-holed downstream, naive clients with MaxAttempts 4 amplify every
// call slot into ~4 attempts, while a 10% Finagle budget caps amplification
// at 1.1x regardless of how hard the tier fails.
func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	graph := workload.CallGraph{Edges: []workload.CallEdge{{From: "front", To: "back"}}}
	services := []workload.ServiceSpec{
		cascadeTier("front", 0.01, 10*time.Second),
		cascadeTier("back", 0.02, 3*time.Second),
	}
	run := func(budget float64) resilience.Counters {
		fc := faults.Config{Seed: 99, Windows: []faults.Window{
			// Black-holed from the start so every downstream call fails fast
			// and the amplification signal is pure.
			{Kind: faults.KindBackend, Target: "back", From: 0, To: time.Hour},
		}}
		res := resilience.Config{Retry: &resilience.RetryConfig{
			MaxAttempts: 4, Backoff: 100 * time.Millisecond, Budget: budget}}
		w := cascadeWorld(t, 5, graph, res, fc, services, 10)
		if err := w.RunUntilDrained(2*time.Minute, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		return w.Resilience().Counters()
	}

	naive := run(0)
	if naive.FirstAttempts < 500 {
		t.Fatalf("naive run made only %d first attempts", naive.FirstAttempts)
	}
	if amp := naive.Amplification(); amp <= 2 {
		t.Errorf("unbudgeted amplification = %.2fx, want > 2x (retry storm)", amp)
	}

	budgeted := run(0.1)
	if amp := budgeted.Amplification(); amp > 1.1 {
		t.Errorf("budgeted amplification = %.2fx, want <= 1.1x", amp)
	}
	if budgeted.RetriesDenied == 0 {
		t.Error("budget denied no retries against a black-holed backend")
	}
}

// TestPlainWorldSkipsCascadeMachinery guards the no-op contract: without a
// callGraph or resilience block the world must never instantiate the
// propagation layer, so the paper's original scenarios are bit-for-bit
// unaffected by this subsystem's existence.
func TestPlainWorldSkipsCascadeMachinery(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Nodes = 4
	w, err := New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := cascadeTier("solo", 0.02, 10*time.Second)
	if err := w.AddService(spec, 0.5, loadgen.Constant{RPS: 20}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if w.HasCallGraph() {
		t.Error("plain world reports a call graph")
	}
	if w.Resilience() != nil {
		t.Error("plain world instantiated a resilience manager")
	}
	if s := w.CascadeStats(); s.RootGenerated != 0 || len(s.Edges) != 0 {
		t.Errorf("plain world accumulated cascade stats: %+v", s)
	}
	if c := w.Resilience().Counters(); c != (resilience.Counters{}) {
		t.Errorf("plain world accumulated resilience counters: %+v", c)
	}
	if s := w.Summary(); s.Completed == 0 {
		t.Error("plain world completed nothing")
	}
}
