package platform

import (
	"errors"
	"sort"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/lb"
	"hyscale/internal/obs"
	"hyscale/internal/resilience"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// This file is the call-graph propagation layer: when a World's Config
// declares a CallGraph (or any resilience defense), requests admitted at a
// service spawn downstream calls along the graph's edges, parents wait on
// their children (holding queue slots — back-pressure), failures cascade
// upward with fail-fast semantics, and the resilience.Manager's breakers,
// retry budgets, deadlines and shedding gate every hop. Worlds without a
// graph never construct a graphRun and execute exactly the original code.

// EdgeStats counts one call-graph edge's traffic. Conservation invariant:
// Issued == Delivered + Dropped at every instant (each issued attempt is
// classified at its admission decision).
type EdgeStats struct {
	// Issued counts call attempts on the edge, including retries and
	// breaker short-circuits.
	Issued uint64 `json:"issued"`
	// Delivered counts attempts admitted to a downstream replica.
	Delivered uint64 `json:"delivered"`
	// Dropped counts attempts that never reached a replica: breaker
	// short-circuits, no-deadline-room, shed, queue-full, routing failures.
	Dropped uint64 `json:"dropped"`
}

// CascadeStats aggregates a call-graph run's root-request outcomes and
// per-edge traffic. Conservation invariant after a drained run:
// RootGenerated == RootCompleted + RootShed + RootDeadline + RootFailed.
type CascadeStats struct {
	RootGenerated uint64 `json:"rootGenerated"`
	RootCompleted uint64 `json:"rootCompleted"`
	// RootShed counts roots refused by overload shedding or back-pressure
	// (every replica queue full).
	RootShed uint64 `json:"rootShed"`
	// RootDeadline counts roots abandoned at their deadline.
	RootDeadline uint64 `json:"rootDeadline"`
	// RootFailed counts roots lost to routing failures, replica removal, or
	// a downstream call failing permanently (fail-fast cascade).
	RootFailed uint64               `json:"rootFailed"`
	Edges      map[string]EdgeStats `json:"edges,omitempty"`
}

// EdgeKeys returns the edge keys in sorted order for deterministic output.
func (s CascadeStats) EdgeKeys() []string {
	keys := make([]string, 0, len(s.Edges))
	for k := range s.Edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// outcome classifies how a tracked request resolved.
type outcome int

const (
	outcomeCompleted outcome = iota
	outcomeShed
	outcomeDeadline
	outcomeFailed
)

// reqNode tracks one request (root or downstream call attempt) through the
// call graph.
type reqNode struct {
	req    *workload.Request
	parent *reqNode
	edge   workload.CallEdge
	slot   int
	// cont is the replica holding the request, nil before admission and
	// after the request leaves the container.
	cont     *container.Container
	pending  int
	resolved bool
}

// graphRun is a World's call-graph state: the live request tree, per-edge
// counters, and the resilience manager (which may be nil when only a graph,
// no defenses, is configured).
type graphRun struct {
	w     *World
	graph workload.CallGraph
	res   *resilience.Manager

	nodes map[uint64]*reqNode
	edges map[string]*EdgeStats

	rootGenerated uint64
	rootCompleted uint64
	rootShed      uint64
	rootDeadline  uint64
	rootFailed    uint64
}

func newGraphRun(w *World, graph workload.CallGraph, m *resilience.Manager) *graphRun {
	return &graphRun{
		w:     w,
		graph: graph,
		res:   m,
		nodes: make(map[uint64]*reqNode),
		edges: make(map[string]*EdgeStats),
	}
}

// checkServices verifies every graph endpoint is a registered service; run
// once when the World starts, after all AddService calls.
func (g *graphRun) checkServices() error {
	known := make(map[string]bool, len(g.w.byName))
	for name := range g.w.byName {
		known[name] = true
	}
	return g.graph.Validate(known)
}

// dropEdge books an admission-refused downstream attempt against its edge,
// keeping the Issued == Delivered + Dropped invariant when admit refuses a
// call (routing failure, black-holed backend, shed). Roots have no edge.
func (g *graphRun) dropEdge(n *reqNode) {
	if n.parent != nil {
		g.edgeStats(n.edge.Key()).Dropped++
	}
}

// edgeStats returns the mutable counter cell for an edge key.
func (g *graphRun) edgeStats(key string) *EdgeStats {
	es, ok := g.edges[key]
	if !ok {
		es = &EdgeStats{}
		g.edges[key] = es
	}
	return es
}

// Stats snapshots the run's cascade counters.
func (g *graphRun) Stats() CascadeStats {
	s := CascadeStats{
		RootGenerated: g.rootGenerated,
		RootCompleted: g.rootCompleted,
		RootShed:      g.rootShed,
		RootDeadline:  g.rootDeadline,
		RootFailed:    g.rootFailed,
		Edges:         make(map[string]EdgeStats, len(g.edges)),
	}
	for k, es := range g.edges {
		s.Edges[k] = *es
	}
	return s
}

// route enters one externally-generated (root) request into the graph.
func (g *graphRun) route(req *workload.Request) {
	g.rootGenerated++
	n := &reqNode{req: req}
	g.nodes[req.ID] = n
	g.admit(n)
}

// admit routes a tracked request (root or child) to a replica, applying the
// shedding and fault checks, and spawns its downstream calls on admission.
func (g *graphRun) admit(n *reqNode) {
	w := g.w
	req := n.req
	req.ExtraLatency += w.cfg.BaseLatency
	now := w.engine.Now()

	w.replicaBuf = w.ctl.AppendReplicas(w.replicaBuf[:0], req.Service)
	target, err := w.lb.RouteAt(now, req, w.replicaBuf)
	if err != nil {
		g.dropEdge(n)
		switch {
		case errors.Is(err, lb.ErrAllFull):
			// Back-pressure: the saturated tier refuses the admission.
			g.res.CountShed()
			g.finish(n, outcomeShed, now, workload.FailureConnection)
		case errors.Is(err, lb.ErrAllStarting):
			w.connFail.Starting++
			g.finish(n, outcomeFailed, now, workload.FailureConnection)
		default:
			w.connFail.Absent++
			g.finish(n, outcomeFailed, now, workload.FailureConnection)
		}
		return
	}
	if w.faults.BackendDown(now, target.Service, target.ID) {
		w.connFail.Unhealthy++
		g.dropEdge(n)
		g.finish(n, outcomeFailed, now, workload.FailureConnection)
		return
	}
	// Adaptive shedding keys off active-queue occupancy, not CPU-over-
	// allocation: replicas legitimately burst past their allocation when the
	// node has slack, but an active queue deeper than the deadline can drain
	// is doomed work whatever the CPU counters say. PhaseWait parents are
	// excluded — they hold slots, not resources.
	if lim := target.Spec.QueueLimit; lim > 0 {
		occ := float64(target.ActiveInflight()) / float64(lim)
		if g.res.ShouldShed(occ, target.ID, req.ID) {
			g.dropEdge(n)
			g.finish(n, outcomeShed, now, workload.FailureConnection)
			return
		}
	}
	if f := w.faults.SlowFactor(now, req.Service); f > 1 {
		req.RemainingCPU *= f
	}

	n.cont = target
	target.Enqueue(req)
	if n.parent != nil {
		g.edgeStats(n.edge.Key()).Delivered++
	}
	g.spawnChildren(n)
}

// spawnChildren issues the node's downstream calls per its service's
// outgoing edges. Probabilistic edges draw from a pure (seed, edge, parent)
// hash, never the engine RNG, so enabling a graph does not perturb arrivals.
func (g *graphRun) spawnChildren(n *reqNode) {
	for _, e := range g.graph.Out(n.req.Service) {
		prob := e.EffectiveProb()
		for k := 0; k < e.EffectiveCalls(); k++ {
			if n.resolved {
				return // a sibling call already failed the parent fast
			}
			if prob < 1 && resilience.Roll(g.w.cfg.Seed, "call|"+e.Key(), n.req.ID<<8|uint64(k&0xff)) >= prob {
				continue
			}
			n.pending++
			n.req.PendingChildren++
			g.issueCall(n, e, k, 1)
		}
	}
}

// issueCall issues attempt #attempt of one call slot (parent, edge, slot):
// breaker gate, deadline math, then a fresh child request through admit.
func (g *graphRun) issueCall(p *reqNode, e workload.CallEdge, slot, attempt int) {
	now := g.w.engine.Now()
	key := e.Key()
	es := g.edgeStats(key)

	if !g.res.AllowCall(now, key) {
		// Short-circuited by an open breaker: fail fast, never retried, and
		// the downstream tier sees nothing.
		es.Issued++
		es.Dropped++
		g.failFast(p, now)
		return
	}
	rt := g.w.byName[e.To]
	deadline := g.res.ChildDeadline(now, p.req.Deadline, rt.spec.Timeout)
	if deadline <= now {
		// The propagated deadline leaves no room: starting the call could
		// never help the root request.
		es.Issued++
		es.Dropped++
		g.res.CountDeadlineExceeded()
		g.failFast(p, now)
		return
	}
	es.Issued++
	g.res.RecordAttempt(p.req.Service, attempt)

	req := workload.NewRequest(g.w.ids.Next(), rt.spec, now)
	req.Deadline = deadline
	req.Edge = key
	req.ParentID = p.req.ID
	req.Attempt = attempt
	n := &reqNode{req: req, parent: p, edge: e, slot: slot}
	g.nodes[req.ID] = n
	g.admit(n)
}

// finish resolves one tracked request with a terminal outcome. Exactly one
// finish per request keeps the recorder's conservation invariant intact;
// class selects the failure class recorded for non-completions.
func (g *graphRun) finish(n *reqNode, o outcome, at time.Duration, class workload.FailureClass) {
	if n.resolved {
		return
	}
	n.resolved = true
	delete(g.nodes, n.req.ID)
	w := g.w

	if o == outcomeCompleted {
		lat := at - n.req.Arrival + n.req.ExtraLatency
		if lat < 0 {
			lat = 0
		}
		w.recorder.RecordCompletion(n.req.Service, lat)
		w.costs.ObserveCompletion(lat)
	} else {
		w.recorder.RecordFailure(n.req.Service, class)
		w.costs.ObserveFailure()
	}

	if n.parent == nil {
		switch o {
		case outcomeCompleted:
			g.rootCompleted++
		case outcomeShed:
			g.rootShed++
		case outcomeDeadline:
			g.rootDeadline++
		default:
			g.rootFailed++
		}
		return
	}

	// Downstream call attempt: feed the edge breaker, then resolve the
	// parent's call slot — completion, retry, or fail-fast cascade. Overload
	// rejections (shedding, queue back-pressure) deliberately bypass the
	// breaker: they are the downstream tier protecting itself, and counting
	// them as failure accrual turns transient overload into an OpenFor-long
	// blackout of the edge — a defense-induced outage. Breakers react to
	// genuine failures only: black-holed backends, timeouts, removals.
	if o != outcomeShed {
		g.res.RecordCallResult(at, n.edge.Key(), o == outcomeCompleted)
	}
	if o == outcomeCompleted {
		g.childSucceeded(n.parent, at)
	} else {
		g.retryOrFail(n.parent, n.edge, n.slot, n.req.Attempt)
	}
}

// childSucceeded books one resolved call slot on the parent; when the last
// slot resolves and the parent's own phases already finished (PhaseWait),
// the parent completes now — downstream latency composition.
func (g *graphRun) childSucceeded(p *reqNode, at time.Duration) {
	if p.resolved {
		return
	}
	p.pending--
	p.req.PendingChildren--
	if p.pending == 0 && p.req.Phase == workload.PhaseWait {
		if p.cont != nil {
			p.cont.Release(p.req, true)
			p.cont = nil
		}
		p.req.Phase = workload.PhaseDone
		g.finish(p, outcomeCompleted, at, workload.FailureNone)
	}
}

// retryOrFail handles a failed call attempt: re-issue after backoff when the
// retry policy, budget and attempt cap allow, otherwise fail the parent fast.
func (g *graphRun) retryOrFail(p *reqNode, e workload.CallEdge, slot, attempt int) {
	if p.resolved {
		return // orphan result; the parent already resolved another way
	}
	now := g.w.engine.Now()
	maxAttempts, backoff := g.res.RetryPolicy()
	if attempt < maxAttempts && g.res.AllowRetry(p.req.Service) {
		g.w.engine.ScheduleAfter(backoff, func(*sim.Engine) {
			if p.resolved {
				return
			}
			g.issueCall(p, e, slot, attempt+1)
		})
		return
	}
	g.failFast(p, now)
}

// failFast resolves a parent as failed the moment one of its call slots
// fails permanently (synchronous-RPC semantics): it is released from its
// replica immediately and the failure propagates to its own caller, where
// the cycle repeats — possibly as a retried call attempt.
func (g *graphRun) failFast(p *reqNode, now time.Duration) {
	if p.resolved {
		return
	}
	if p.cont != nil {
		p.cont.Release(p.req, false)
		p.cont = nil
	}
	g.finish(p, outcomeFailed, now, workload.FailureConnection)
}

// afterAdvance consumes one physics tick's completions and timeouts.
func (g *graphRun) afterAdvance(now time.Duration, res cluster.TickResult) {
	for _, done := range res.Completed {
		n, ok := g.nodes[done.Request.ID]
		if !ok {
			continue
		}
		n.cont = nil
		g.finish(n, outcomeCompleted, done.At, workload.FailureNone)
	}
	for _, r := range res.TimedOut {
		n, ok := g.nodes[r.ID]
		if !ok {
			continue
		}
		n.cont = nil // Advance already dropped it from the in-flight set
		g.res.CountDeadlineExceeded()
		g.finish(n, outcomeDeadline, now, workload.FailureConnection)
	}
}

// onRemoval resolves a request killed by its container's removal.
func (g *graphRun) onRemoval(r *workload.Request) {
	n, ok := g.nodes[r.ID]
	if !ok {
		// Untracked (already resolved); keep the legacy accounting.
		g.w.recorder.RecordFailure(r.Service, workload.FailureRemoval)
		g.w.costs.ObserveFailure()
		return
	}
	n.cont = nil
	g.finish(n, outcomeFailed, g.w.engine.Now(), workload.FailureRemoval)
}

// breakerEventKind maps a breaker transition to its journal event kind.
func breakerEventKind(to resilience.BreakerState) obs.EventKind {
	switch to {
	case resilience.StateOpen:
		return obs.EventBreakerOpen
	case resilience.StateHalfOpen:
		return obs.EventBreakerHalfOpen
	default:
		return obs.EventBreakerClose
	}
}
