package platform

// Integration tests: whole-platform runs mixing service kinds and
// algorithms, checking cross-module invariants rather than single-module
// behaviour — allocation accounting, metric conservation, determinism
// across algorithms, and recovery from node failures.

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// mixedWorld builds a 10-node world with one service of each kind under
// moderate wave load.
func mixedWorld(t *testing.T, algo core.Algorithm, seed int64) *World {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Nodes = 10
	w, err := New(cfg, algo)
	if err != nil {
		t.Fatal(err)
	}
	specs := []workload.ServiceSpec{
		{
			Name: "cpu", Kind: workload.KindCPUBound,
			CPUPerRequest: 0.1, CPUOverheadPerRequest: 0.01, MemPerRequest: 2, BaselineMemMB: 300,
			InitialReplicaCPU: 1, InitialReplicaMemMB: 768,
			MinReplicas: 1, MaxReplicas: 6, Timeout: 30 * time.Second,
		},
		{
			Name: "mixed", Kind: workload.KindMixed,
			CPUPerRequest: 0.1, MemPerRequest: 60, BaselineMemMB: 300,
			InitialReplicaCPU: 1, InitialReplicaMemMB: 640,
			MinReplicas: 1, MaxReplicas: 6, Timeout: 30 * time.Second,
		},
		{
			Name: "net", Kind: workload.KindNetworkBound,
			CPUPerRequest: 0.03, MemPerRequest: 4, NetPerRequest: 5, BaselineMemMB: 200,
			InitialReplicaCPU: 1, InitialReplicaMemMB: 512, InitialReplicaNetMbps: 60,
			MinReplicas: 1, MaxReplicas: 6, Timeout: 30 * time.Second,
		},
	}
	for i, spec := range specs {
		pattern := loadgen.Wave{Base: 8, Amplitude: 0.3, Period: 4 * time.Minute,
			PhaseShift: time.Duration(i) * time.Minute}
		if err := w.AddService(spec, 0.5, pattern); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestIntegrationAllAlgorithmsStayHealthy runs every algorithm over the
// mixed world and checks global health: most requests complete, and the
// cluster's allocation accounting never goes insane.
func TestIntegrationAllAlgorithmsStayHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	algos := map[string]func() core.Algorithm{
		"kubernetes": func() core.Algorithm { return core.NewKubernetes(core.DefaultConfig()) },
		"network":    func() core.Algorithm { return core.NewNetworkHPA(core.DefaultConfig()) },
		"hybrid":     func() core.Algorithm { return core.NewHyScaleCPU(core.DefaultConfig()) },
		"hybridmem":  func() core.Algorithm { return core.NewHyScaleCPUMem(core.DefaultConfig()) },
	}
	for name, mk := range algos {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			w := mixedWorld(t, mk(), 11)
			if err := w.Run(10 * time.Minute); err != nil {
				t.Fatal(err)
			}
			s := w.Summary()
			if s.Requests < 10000 {
				t.Errorf("requests = %d, want >= 10000", s.Requests)
			}
			if s.FailedPercent() > 10 {
				t.Errorf("failed = %.2f%%, too unhealthy", s.FailedPercent())
			}
			if s.MeanLatency <= 0 || s.MeanLatency > 5*time.Second {
				t.Errorf("mean latency = %v, implausible", s.MeanLatency)
			}
		})
	}
}

// TestIntegrationAllocationAccounting checks the cluster-level invariant
// that drives every placement decision: HyScale's availability bookkeeping
// must keep per-node CPU allocations within a small factor of capacity
// (Docker shares allow oversubscription, but the planner works off
// advertised availability and should rarely exceed it).
func TestIntegrationAllocationAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	w := mixedWorld(t, core.NewHyScaleCPUMem(core.DefaultConfig()), 17)
	worst := 0.0
	// Piggyback an invariant probe on the engine every second.
	if err := w.Engine().SchedulePeriodic(time.Second, time.Second, func(e *sim.Engine) {
		for _, n := range w.Cluster().Nodes() {
			ratio := n.Allocated().CPU / n.Capacity().CPU
			if ratio > worst {
				worst = ratio
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if worst > 1.25 {
		t.Errorf("node CPU allocation reached %.0f%% of capacity — planner bookkeeping leak", worst*100)
	}
}

// TestIntegrationRequestConservation checks that every generated request is
// accounted exactly once: completed, removal failure, or connection failure.
func TestIntegrationRequestConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultConfig(3)
	cfg.Nodes = 4
	w, err := New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := cpuSpec("a")
	if err := w.AddService(spec, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	const n = 500
	if err := w.InjectRequests(time.Second, 30*time.Second, "a", n); err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntilDrained(31*time.Second, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if got := s.Completed + s.RemovalFailures + s.ConnectionFailures; got != n {
		t.Errorf("accounted requests = %d, want %d (conservation)", got, n)
	}
}

// TestIntegrationConservationUnderFaults is the property-test form of
// request conservation: no matter which fault mix the injector draws —
// failed verticals, failed or slow starts, dropped stats, black-holed
// backends, hardening on or off — every injected request must still be
// accounted exactly once as completed, removal failure, or connection
// failure.
func TestIntegrationConservationUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	prop := func(seed int64, pVert, pStart, pSlow, pStats, pDown uint8, hardened bool) bool {
		// Map raw bytes into valid probabilities; keep start-failure below
		// ~0.7 so min-replica deployment cannot starve forever.
		p := func(b uint8, max float64) float64 { return max * float64(b) / 255 }
		cfg := DefaultConfig(seed)
		cfg.Nodes = 4
		cfg.Faults = faults.Config{
			Seed:             seed + 1,
			VerticalFailProb: p(pVert, 1.0),
			StartFailProb:    p(pStart, 0.7),
			StartSlowProb:    p(pSlow, 1.0),
			StartSlowBy:      6 * time.Second,
			StatsDropProb:    p(pStats, 1.0),
			BackendDownProb:  p(pDown, 0.5),
			BackendDownFor:   8 * time.Second,
			BackendDownEvery: 30 * time.Second,
		}
		cfg.HardeningOff = !hardened
		w, err := New(cfg, core.NewKubernetes(core.DefaultConfig()))
		if err != nil {
			t.Log(err)
			return false
		}
		if err := w.AddService(cpuSpec("a"), 0.5, nil); err != nil {
			t.Log(err)
			return false
		}
		const n = 300
		if err := w.InjectRequests(time.Second, 30*time.Second, "a", n); err != nil {
			t.Log(err)
			return false
		}
		if err := w.RunUntilDrained(31*time.Second, 3*time.Minute); err != nil {
			t.Log(err)
			return false
		}
		s := w.Summary()
		got := s.Completed + s.RemovalFailures + s.ConnectionFailures
		if got != n {
			t.Logf("seed=%d faults=%+v hardened=%v: accounted %d of %d",
				seed, cfg.Faults, hardened, got, n)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestIntegrationNodeFailureRecovery kills a node mid-run and checks that
// the algorithm's min-replica enforcement restores every service.
func TestIntegrationNodeFailureRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	w := mixedWorld(t, core.NewHyScaleCPUMem(core.DefaultConfig()), 5)
	// Fail every node hosting the cpu service's replicas at t=2m.
	if err := w.ScheduleNodeFailure(2*time.Minute, "node-0"); err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleNodeFailure(2*time.Minute, "node-1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Cluster().Nodes()); got != 8 {
		t.Fatalf("nodes = %d, want 8 after failures", got)
	}
	for _, svc := range []string{"cpu", "mixed", "net"} {
		alive := 0
		for _, rep := range w.Monitor().Replicas(svc) {
			if rep.Routable() {
				alive++
			}
		}
		if alive == 0 {
			t.Errorf("service %s has no live replica after node failures", svc)
		}
	}
	// The failed nodes' replicas are gone from the replica lists.
	for _, svc := range []string{"cpu", "mixed", "net"} {
		for _, rep := range w.Monitor().Replicas(svc) {
			if rep.NodeID == "node-0" || rep.NodeID == "node-1" {
				t.Errorf("service %s still lists replica on failed node %s", svc, rep.NodeID)
			}
		}
	}
}

// TestIntegrationNodeRecoveryExpandsCluster verifies dynamically added
// machines become placement targets.
func TestIntegrationNodeRecoveryExpandsCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultConfig(7)
	cfg.Nodes = 2
	// Small originals: they cannot hold the full replica set, so placement
	// must spill onto the machines that join later.
	cfg.NodeTemplate.Capacity.CPU = 2
	w, err := New(cfg, core.NewKubernetes(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := cpuSpec("a")
	spec.MaxReplicas = 8
	if err := w.AddService(spec, 0.5, loadgen.Constant{RPS: 40}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		nc := cluster.DefaultNodeConfig(fmt.Sprintf("extra-%d", i))
		if err := w.ScheduleNodeRecovery(time.Minute, nc); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	onExtra := 0
	for _, rep := range w.Monitor().Replicas("a") {
		if len(rep.NodeID) >= 5 && rep.NodeID[:5] == "extra" {
			onExtra++
		}
	}
	if onExtra == 0 {
		t.Error("no replicas placed on dynamically added machines")
	}
}

// TestIntegrationCostTracking checks the cost report reflects the run.
func TestIntegrationCostTracking(t *testing.T) {
	w := mixedWorld(t, core.NewHyScaleCPUMem(core.DefaultConfig()), 13)
	if err := w.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r := w.CostReport()
	if r.MachineHours <= 0 {
		t.Error("no machine-hours accumulated")
	}
	if r.Completions == 0 {
		t.Error("no completions observed by cost tracker")
	}
	if r.TotalCost <= 0 {
		t.Error("zero total cost")
	}
	s := w.Summary()
	if r.Completions != s.Completed {
		t.Errorf("cost completions %d != metrics completed %d", r.Completions, s.Completed)
	}
	if r.Failures != s.RemovalFailures+s.ConnectionFailures {
		t.Errorf("cost failures %d != metrics failures %d", r.Failures, s.RemovalFailures+s.ConnectionFailures)
	}
}
