package platform

// Property test for event coalescing: InjectRequests batches same-instant
// arrivals into single ScheduleBatch heap entries, and no matter how the
// bursts coalesce — one giant same-nanosecond batch, partially grouped, or
// fully spread — every root request must still be accounted exactly once
// (roots = completed + shed + deadline + failed) and every call-graph edge
// must conserve its traffic.

import (
	"testing"
	"time"

	"hyscale/internal/faults"
	"hyscale/internal/resilience"
)

func TestBatchedInjectionConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	res := resilience.Config{
		Retry:     &resilience.RetryConfig{MaxAttempts: 3, Backoff: 100 * time.Millisecond, Budget: 0.2},
		Deadlines: &resilience.DeadlineConfig{Margin: 50 * time.Millisecond},
		Shedding:  &resilience.ShedConfig{UtilThreshold: 0.2, MaxShed: 0.95},
	}
	bursts := []struct {
		at     time.Duration
		window time.Duration
		n      int
	}{
		// window=1ns: every arrival truncates to the same instant — the
		// whole burst coalesces into ONE batch entry. 700 requests hitting
		// two 64-deep queues at once guarantees sheds, so the non-completed
		// outcome classes are exercised, not just the happy path.
		{2 * time.Second, 1, 400},
		{30 * time.Second, 1, 700},
		// Partial coalescing: a 1ms window over 250 requests yields runs of
		// same-nanosecond arrivals interleaved with distinct ones.
		{45 * time.Second, time.Millisecond, 250},
		// Fully spread: every arrival distinct, batches of size 1.
		{10 * time.Second, 5 * time.Second, 300},
	}
	for _, seed := range []int64{1, 5} {
		graph, services := fanoutGraph()
		// rps=0: injection is the only load source, so the totals are exact.
		w := cascadeWorld(t, seed, graph, res, faults.Config{}, services, 0)
		total := uint64(0)
		for _, b := range bursts {
			if err := w.InjectRequests(b.at, b.window, "gateway", b.n); err != nil {
				t.Fatal(err)
			}
			total += uint64(b.n)
		}
		if err := w.RunUntilDrained(time.Minute, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		s := w.CascadeStats()
		if s.RootGenerated != total {
			t.Errorf("seed %d: RootGenerated = %d, want %d injected", seed, s.RootGenerated, total)
		}
		if got := s.RootCompleted + s.RootShed + s.RootDeadline + s.RootFailed; got != s.RootGenerated {
			t.Errorf("seed %d: root conservation violated under coalescing: generated %d != completed %d + shed %d + deadline %d + failed %d",
				seed, s.RootGenerated, s.RootCompleted, s.RootShed, s.RootDeadline, s.RootFailed)
		}
		if s.RootCompleted == 0 {
			t.Errorf("seed %d: no root request completed — workload misconfigured", seed)
		}
		for _, key := range s.EdgeKeys() {
			es := s.Edges[key]
			if es.Issued != es.Delivered+es.Dropped {
				t.Errorf("seed %d: edge %s conservation violated: issued %d != delivered %d + dropped %d",
					seed, key, es.Issued, es.Delivered, es.Dropped)
			}
		}
	}
}
