package sim

// ScheduleBatch tests: a batch must be indistinguishable from scheduling its
// items back-to-back with Schedule — same relative order against every other
// event, same past-clamp behaviour — while a Stop inside a batch must leave
// the unfired remainder queued at the same instant for the next Run.

import (
	"errors"
	"testing"
	"time"
)

func TestScheduleBatchMatchesIndividualScheduling(t *testing.T) {
	// Interleave single events and a batch at one instant, plus neighbours
	// before and after. The firing order must equal the scheduling order at
	// the shared instant (FIFO), with the batch occupying its slot as a
	// contiguous run in index order.
	run := func(batched bool) []string {
		e := New(1)
		var got []string
		log := func(s string) Event { return func(*Engine) { got = append(got, s) } }
		_ = e.Schedule(2*time.Second, log("late"))
		_ = e.Schedule(time.Second, log("a"))
		if batched {
			_ = e.ScheduleBatch(time.Second, 10, 3, func(_ *Engine, idx int) {
				got = append(got, []string{"b0", "b1", "b2"}[idx-10])
			})
		} else {
			for _, s := range []string{"b0", "b1", "b2"} {
				_ = e.Schedule(time.Second, log(s))
			}
		}
		_ = e.Schedule(time.Second, log("z"))
		_ = e.Schedule(500*time.Millisecond, log("early"))
		if err := e.Run(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		return got
	}

	individual := run(false)
	batch := run(true)
	if len(batch) != len(individual) {
		t.Fatalf("batched run fired %d events, individual %d", len(batch), len(individual))
	}
	for i := range individual {
		if batch[i] != individual[i] {
			t.Fatalf("order diverges at %d: batched %v, individual %v", i, batch, individual)
		}
	}
}

func TestScheduleBatchClampsPast(t *testing.T) {
	e := New(1)
	_ = e.Schedule(time.Second, func(*Engine) {})
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	fired := 0
	err := e.ScheduleBatch(500*time.Millisecond, 0, 2, func(e *Engine, _ int) {
		fired++
		if e.Now() != time.Second {
			t.Errorf("clamped batch fired at %v, want now=%v", e.Now(), time.Second)
		}
	})
	if err == nil {
		t.Error("scheduling a batch in the past did not report an error")
	}
	if e.Clamped() != 1 {
		t.Errorf("Clamped = %d, want 1", e.Clamped())
	}
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("clamped batch fired %d items, want 2", fired)
	}
}

func TestScheduleBatchEmptyIsNoop(t *testing.T) {
	e := New(1)
	if err := e.ScheduleBatch(time.Second, 0, 0, func(*Engine, int) { t.Error("empty batch fired") }); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleBatch(time.Second, 0, -3, func(*Engine, int) { t.Error("negative batch fired") }); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after empty batches, want 0", e.Pending())
	}
}

func TestScheduleBatchStopResumesRemainder(t *testing.T) {
	e := New(1)
	var fired []int
	_ = e.ScheduleBatch(time.Second, 0, 5, func(e *Engine, idx int) {
		fired = append(fired, idx)
		if idx == 2 {
			e.Stop()
		}
	})
	// A same-instant event scheduled AFTER the batch must still fire after
	// the batch's remainder on resume: the requeued tail keeps the batch's
	// original sequence number.
	afterBatch := false
	_ = e.Schedule(time.Second, func(*Engine) { afterBatch = true })

	if err := e.Run(2 * time.Second); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if len(fired) != 3 || fired[2] != 2 {
		t.Fatalf("fired %v before stop, want [0 1 2]", fired)
	}
	if afterBatch {
		t.Fatal("later same-instant event fired before the batch remainder")
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after stop, want 2 (remainder + follower)", e.Pending())
	}

	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v after resume, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v after resume, want %v", fired, want)
		}
	}
	if !afterBatch {
		t.Error("follower event never fired after the batch resumed")
	}
}
