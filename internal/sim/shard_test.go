package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestShardedEngineEquivalence drives a randomized mix of single events,
// batches, periodic tasks and follow-up scheduling through engines with 1, 2,
// 4 and 7 lanes and requires the firing order to be identical. (at, seq) is a
// total order, so the lane partition must be invisible.
func TestShardedEngineEquivalence(t *testing.T) {
	trace := func(shards int) []string {
		e := New(42)
		if err := e.SetShards(shards); err != nil {
			t.Fatalf("SetShards(%d): %v", shards, err)
		}
		var log []string
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			i := i
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			switch i % 3 {
			case 0:
				_ = e.Schedule(at, func(e *Engine) {
					log = append(log, fmt.Sprintf("ev%d@%v", i, e.Now()))
					if i%10 == 0 {
						// Follow-up events exercise scheduling mid-run.
						e.ScheduleAfter(3*time.Millisecond, func(e *Engine) {
							log = append(log, fmt.Sprintf("follow%d@%v", i, e.Now()))
						})
					}
				})
			case 1:
				_ = e.ScheduleBatch(at, i, 3, func(e *Engine, idx int) {
					log = append(log, fmt.Sprintf("batch%d/%d@%v", i, idx, e.Now()))
				})
			default:
				_ = e.Schedule(at, func(e *Engine) {
					log = append(log, fmt.Sprintf("ev%d@%v", i, e.Now()))
				})
			}
		}
		_ = e.SchedulePeriodic(5*time.Millisecond, 10*time.Millisecond, func(e *Engine) {
			log = append(log, fmt.Sprintf("tick@%v", e.Now()))
		})
		if err := e.Run(60 * time.Millisecond); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return log
	}

	want := trace(1)
	if len(want) < 200 {
		t.Fatalf("trace too short: %d entries", len(want))
	}
	for _, k := range []int{2, 4, 7} {
		got := trace(k)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d events, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: event %d = %q, want %q", k, i, got[i], want[i])
			}
		}
	}
}

// TestSetShardsRejectsPending guards the "no relayout with events queued"
// contract, and that a stopped-then-resumed run keeps working on lanes.
func TestSetShardsRejectsPending(t *testing.T) {
	e := New(1)
	_ = e.Schedule(time.Millisecond, func(*Engine) {})
	if err := e.SetShards(4); err == nil {
		t.Fatal("SetShards with pending events should fail")
	}

	e2 := New(1)
	if err := e2.SetShards(3); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Millisecond
		_ = e2.Schedule(at, func(e *Engine) {
			fired++
			if fired == 5 {
				e.Stop()
			}
		})
	}
	if err := e2.Run(time.Second); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if err := e2.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("fired %d events across resumed runs, want 10", fired)
	}
	if e2.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e2.Pending())
	}
}
