package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.ScheduleAfter(3*time.Second, func(*Engine) { order = append(order, 3) })
	e.ScheduleAfter(1*time.Second, func(*Engine) { order = append(order, 1) })
	e.ScheduleAfter(2*time.Second, func(*Engine) { order = append(order, 2) })
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantIsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAfter(time.Second, func(*Engine) { order = append(order, i) })
	}
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.ScheduleAfter(5*time.Second, func(e *Engine) { at = e.Now() })
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Errorf("event saw Now=%v, want 5s", at)
	}
	if e.Now() != time.Minute {
		t.Errorf("after Run, Now=%v, want horizon 1m", e.Now())
	}
}

func TestScheduleInPastClampsAndReports(t *testing.T) {
	e := New(1)
	var ran bool
	e.ScheduleAfter(time.Second, func(e *Engine) {
		if err := e.Schedule(0, func(*Engine) { ran = true }); err == nil {
			t.Error("scheduling in the past should report an error")
		}
	})
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("clamped event did not run")
	}
}

func TestHorizonLeavesFutureEventsQueued(t *testing.T) {
	e := New(1)
	ran := false
	e.ScheduleAfter(10*time.Second, func(*Engine) { ran = true })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// Resuming past the event fires it.
	if err := e.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event did not run on resumed Run")
	}
}

func TestEventExactlyAtHorizonRuns(t *testing.T) {
	e := New(1)
	ran := false
	e.ScheduleAfter(5*time.Second, func(*Engine) { ran = true })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event at horizon did not run")
	}
}

func TestPeriodicRunsAtInterval(t *testing.T) {
	e := New(1)
	var times []time.Duration
	if err := e.SchedulePeriodic(time.Second, 2*time.Second, func(e *Engine) {
		times = append(times, e.Now())
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second, 7 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("got %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("got %v, want %v", times, want)
		}
	}
}

func TestPeriodicRejectsNonPositiveInterval(t *testing.T) {
	e := New(1)
	if err := e.SchedulePeriodic(0, 0, func(*Engine) {}); err == nil {
		t.Error("expected error for zero interval")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New(1)
	count := 0
	if err := e.SchedulePeriodic(time.Second, time.Second, func(e *Engine) {
		count++
		if count == 3 {
			e.Stop()
		}
	}); err != nil {
		t.Fatal(err)
	}
	err := e.Run(time.Minute)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	// Stop from inside a periodic task cancels the series: resuming the
	// engine does not revive it (documented SchedulePeriodic behaviour).
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("periodic revived after Stop: count=%d", count)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	e := New(1)
	ran := false
	e.ScheduleAfter(-time.Second, func(*Engine) { ran = true })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestClampedCounter(t *testing.T) {
	e := New(1)
	if e.Clamped() != 0 {
		t.Fatalf("fresh engine Clamped = %d, want 0", e.Clamped())
	}
	e.ScheduleAfter(-time.Second, func(*Engine) {}) // negative delay counts
	e.ScheduleAfter(time.Second, func(e *Engine) {
		_ = e.Schedule(0, func(*Engine) {}) // past-scheduling counts even when the error is dropped
	})
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Clamped() != 2 {
		t.Errorf("Clamped = %d, want 2", e.Clamped())
	}
	// Well-behaved scheduling leaves the counter alone.
	e.ScheduleAfter(time.Second, func(*Engine) {})
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Clamped() != 2 {
		t.Errorf("Clamped grew on valid scheduling: %d", e.Clamped())
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestEventsCanScheduleFollowUps(t *testing.T) {
	e := New(1)
	depth := 0
	var chain Event
	chain = func(e *Engine) {
		depth++
		if depth < 5 {
			e.ScheduleAfter(time.Second, chain)
		}
	}
	e.ScheduleAfter(time.Second, chain)
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
}

func TestRunWithEmptyQueueAdvancesClock(t *testing.T) {
	e := New(1)
	if err := e.Run(42 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 42*time.Second {
		t.Errorf("Now = %v, want 42s", e.Now())
	}
}

// BenchmarkEngineScheduleRun measures the schedule→dispatch hot path the way
// the platform drives it: a mix of periodic ticks and one-shot events, like
// the physics tick plus request completions. The value heap should keep this
// at zero allocations per event beyond the scheduled closures themselves.
func BenchmarkEngineScheduleRun(b *testing.B) {
	const eventsPerRun = 10000
	noop := func(*Engine) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < eventsPerRun; j++ {
			e.ScheduleAfter(time.Duration(j%97)*time.Millisecond, noop)
		}
		if err := e.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
