// Package sim provides a deterministic discrete-event simulation engine: a
// virtual clock, an event heap, and periodic tasks. Every experiment in this
// repository runs on top of it, which is what makes hour-long cluster
// benchmarks reproducible in milliseconds of wall time.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Event is a callback scheduled to run at a simulated instant. The engine
// passes itself so events can schedule follow-up events.
type Event func(e *Engine)

// IndexedEvent is a batched callback scheduled with ScheduleBatch: it is
// invoked once per item index in [start, start+count). A single IndexedEvent
// closure serves an arbitrarily large batch, so bulk request injection stops
// paying one closure allocation (and one heap entry) per request.
type IndexedEvent func(e *Engine, idx int)

type scheduledEvent struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	call Event
	// batch fields: when batch is non-nil this entry fires batch(e, i) for
	// i in [start, start+count) instead of call.
	batch IndexedEvent
	start int
	count int
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduled events run on the caller's goroutine inside
// Run.
//
// The event queue is a hand-rolled binary min-heap of event VALUES rather
// than container/heap over pointers: pushing through container/heap boxes
// every event into an interface{}, which costs one allocation per scheduled
// event. At millions of events per macro experiment that dominated GC time
// (see BenchmarkEngineScheduleRun).
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   []scheduledEvent
	rng     *rand.Rand
	stopped bool
	clamped uint64

	// lanes, when non-nil, shards the event queue: an event with sequence
	// number s lives in lane s % len(lanes), and popping takes the (at, seq)
	// minimum across lane roots. Because (at, seq) is a total order, the pop
	// sequence is identical to the single-heap engine — sharding is purely a
	// cost structure (each sift-down runs over a heap 1/k the size, which is
	// what lets zoned datacenter runs keep heap maintenance flat as event
	// volume grows). nil (the default) keeps the original single heap.
	lanes [][]scheduledEvent
	// pending counts queued events across queue and lanes.
	pending int
}

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// New creates an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source. Experiments must
// draw all randomness from here to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// eventLess orders events by (at, seq): earliest first, FIFO within an
// instant. seq is unique, so this is a total order — the property that makes
// the sharded lanes pop in exactly the single-heap sequence.
func eventLess(a, b scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushHeap inserts ev into the binary min-heap backed by *q.
func pushHeap(q *[]scheduledEvent, ev scheduledEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popHeap removes and returns the minimum of the heap backed by *q.
func popHeap(q *[]scheduledEvent) scheduledEvent {
	h := *q
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{} // drop the closure so GC can reclaim it
	h = h[:n]
	*q = h
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && eventLess(h[left], h[smallest]) {
			smallest = left
		}
		if right < n && eventLess(h[right], h[smallest]) {
			smallest = right
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return root
}

// SetShards splits the event queue into k independent lanes (see the Engine
// doc). k <= 1 keeps the single heap. It must be called before any event is
// scheduled; changing the lane layout with events in flight would scatter
// them.
func (e *Engine) SetShards(k int) error {
	if e.pending > 0 {
		return errors.New("sim: SetShards with events pending")
	}
	if k <= 1 {
		e.lanes = nil
		return nil
	}
	e.lanes = make([][]scheduledEvent, k)
	return nil
}

// Shards returns the number of event lanes (1 for the single-heap default).
func (e *Engine) Shards() int {
	if e.lanes == nil {
		return 1
	}
	return len(e.lanes)
}

func (e *Engine) push(ev scheduledEvent) {
	e.pending++
	if e.lanes != nil {
		pushHeap(&e.lanes[ev.seq%uint64(len(e.lanes))], ev)
		return
	}
	pushHeap(&e.queue, ev)
}

// headLane returns the index of the lane whose root is the global (at, seq)
// minimum. Callers guarantee at least one event is pending.
func (e *Engine) headLane() int {
	best := -1
	for i := range e.lanes {
		if len(e.lanes[i]) == 0 {
			continue
		}
		if best == -1 || eventLess(e.lanes[i][0], e.lanes[best][0]) {
			best = i
		}
	}
	return best
}

// head returns the next event without removing it.
func (e *Engine) head() *scheduledEvent {
	if e.lanes != nil {
		return &e.lanes[e.headLane()][0]
	}
	return &e.queue[0]
}

func (e *Engine) pop() scheduledEvent {
	e.pending--
	if e.lanes != nil {
		return popHeap(&e.lanes[e.headLane()])
	}
	return popHeap(&e.queue)
}

// Schedule runs fn at the absolute simulated time at. Scheduling in the past
// is an error: the event fires immediately at the current time instead, which
// keeps the clock monotonic, and Schedule both reports it and counts it in
// Clamped so callers that drop the error (periodic ticks, fire-and-forget
// hooks) still leave a visible trace.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	var err error
	if at < e.now {
		e.clamped++
		err = fmt.Errorf("sim: scheduling at %v before now %v; clamped", at, e.now)
		at = e.now
	}
	e.seq++
	e.push(scheduledEvent{at: at, seq: e.seq, call: fn})
	return err
}

// ScheduleBatch runs fn(e, i) for every i in [start, start+count) at the
// absolute simulated time at, as one heap entry holding one shared closure.
// The batch occupies a single (at, seq) slot, so relative ordering against
// every other event is exactly as if the items had been scheduled back-to-back
// with consecutive sequence numbers; within the batch, items fire in index
// order. Scheduling in the past clamps to now like Schedule. A Stop issued by
// an item halts the batch after that item; the remainder stays queued at the
// same (at, seq) and resumes with the next Run.
func (e *Engine) ScheduleBatch(at time.Duration, start, count int, fn IndexedEvent) error {
	if count <= 0 {
		return nil
	}
	var err error
	if at < e.now {
		e.clamped++
		err = fmt.Errorf("sim: scheduling at %v before now %v; clamped", at, e.now)
		at = e.now
	}
	e.seq++
	e.push(scheduledEvent{at: at, seq: e.seq, batch: fn, start: start, count: count})
	return err
}

// ScheduleAfter runs fn after delay relative to the current simulated time.
// Negative delays are clamped to zero and counted in Clamped.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) {
	if delay < 0 {
		e.clamped++
		delay = 0
	}
	// Scheduling relative to now can never be in the past.
	_ = e.Schedule(e.now+delay, fn)
}

// SchedulePeriodic runs fn every interval, starting at start, until the
// engine stops or the run horizon is reached. fn runs before the next
// occurrence is scheduled, so a task can call Stop to cancel the series.
func (e *Engine) SchedulePeriodic(start, interval time.Duration, fn Event) error {
	if interval <= 0 {
		return fmt.Errorf("sim: periodic interval must be positive, got %v", interval)
	}
	var tick Event
	tick = func(e *Engine) {
		fn(e)
		if !e.stopped {
			// Relative to now, so this cannot clamp; Clamped still counts it
			// if an fn rewinds its own schedule somehow.
			_ = e.Schedule(e.now+interval, tick)
		}
	}
	return e.Schedule(start, tick)
}

// Clamped returns how many events were scheduled in the past (or with a
// negative delay) and silently clamped to "now". A non-zero count after a run
// means some component computed a stale timestamp — the class of bug that
// used to vanish into dropped error returns.
func (e *Engine) Clamped() uint64 { return e.clamped }

// Stop halts the run after the current event returns. Pending events remain
// queued and a subsequent Run call resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or the clock
// would pass horizon. Events scheduled exactly at the horizon still run. It
// returns ErrStopped if Stop was called, otherwise nil.
func (e *Engine) Run(horizon time.Duration) error {
	e.stopped = false
	for e.pending > 0 {
		if e.head().at > horizon {
			// Leave future events queued; advance the clock to the horizon so
			// repeated Run calls see a consistent notion of "now".
			e.now = horizon
			return nil
		}
		next := e.pop()
		e.now = next.at
		if next.batch != nil {
			for i := 0; i < next.count; i++ {
				next.batch(e, next.start+i)
				if e.stopped {
					// Requeue the unfired remainder at the original (at, seq)
					// so a later Run resumes exactly where the batch stopped.
					if rest := next.count - i - 1; rest > 0 {
						e.push(scheduledEvent{at: e.now, seq: next.seq,
							batch: next.batch, start: next.start + i + 1, count: rest})
					}
					return ErrStopped
				}
			}
			continue
		}
		next.call(e)
		if e.stopped {
			return ErrStopped
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Pending returns the number of queued events, mainly for tests and
// diagnostics.
func (e *Engine) Pending() int { return e.pending }
