// Package sim provides a deterministic discrete-event simulation engine: a
// virtual clock, an event heap, and periodic tasks. Every experiment in this
// repository runs on top of it, which is what makes hour-long cluster
// benchmarks reproducible in milliseconds of wall time.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Event is a callback scheduled to run at a simulated instant. The engine
// passes itself so events can schedule follow-up events.
type Event func(e *Engine)

// IndexedEvent is a batched callback scheduled with ScheduleBatch: it is
// invoked once per item index in [start, start+count). A single IndexedEvent
// closure serves an arbitrarily large batch, so bulk request injection stops
// paying one closure allocation (and one heap entry) per request.
type IndexedEvent func(e *Engine, idx int)

type scheduledEvent struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	call Event
	// batch fields: when batch is non-nil this entry fires batch(e, i) for
	// i in [start, start+count) instead of call.
	batch IndexedEvent
	start int
	count int
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduled events run on the caller's goroutine inside
// Run.
//
// The event queue is a hand-rolled binary min-heap of event VALUES rather
// than container/heap over pointers: pushing through container/heap boxes
// every event into an interface{}, which costs one allocation per scheduled
// event. At millions of events per macro experiment that dominated GC time
// (see BenchmarkEngineScheduleRun).
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   []scheduledEvent
	rng     *rand.Rand
	stopped bool
	clamped uint64
}

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// New creates an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source. Experiments must
// draw all randomness from here to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// less orders the heap by (at, seq): earliest first, FIFO within an instant.
func (e *Engine) less(i, j int) bool {
	if e.queue[i].at != e.queue[j].at {
		return e.queue[i].at < e.queue[j].at
	}
	return e.queue[i].seq < e.queue[j].seq
}

func (e *Engine) push(ev scheduledEvent) {
	e.queue = append(e.queue, ev)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

func (e *Engine) pop() scheduledEvent {
	root := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = scheduledEvent{} // drop the closure so GC can reclaim it
	e.queue = e.queue[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && e.less(left, smallest) {
			smallest = left
		}
		if right < n && e.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		e.queue[i], e.queue[smallest] = e.queue[smallest], e.queue[i]
		i = smallest
	}
	return root
}

// Schedule runs fn at the absolute simulated time at. Scheduling in the past
// is an error: the event fires immediately at the current time instead, which
// keeps the clock monotonic, and Schedule both reports it and counts it in
// Clamped so callers that drop the error (periodic ticks, fire-and-forget
// hooks) still leave a visible trace.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	var err error
	if at < e.now {
		e.clamped++
		err = fmt.Errorf("sim: scheduling at %v before now %v; clamped", at, e.now)
		at = e.now
	}
	e.seq++
	e.push(scheduledEvent{at: at, seq: e.seq, call: fn})
	return err
}

// ScheduleBatch runs fn(e, i) for every i in [start, start+count) at the
// absolute simulated time at, as one heap entry holding one shared closure.
// The batch occupies a single (at, seq) slot, so relative ordering against
// every other event is exactly as if the items had been scheduled back-to-back
// with consecutive sequence numbers; within the batch, items fire in index
// order. Scheduling in the past clamps to now like Schedule. A Stop issued by
// an item halts the batch after that item; the remainder stays queued at the
// same (at, seq) and resumes with the next Run.
func (e *Engine) ScheduleBatch(at time.Duration, start, count int, fn IndexedEvent) error {
	if count <= 0 {
		return nil
	}
	var err error
	if at < e.now {
		e.clamped++
		err = fmt.Errorf("sim: scheduling at %v before now %v; clamped", at, e.now)
		at = e.now
	}
	e.seq++
	e.push(scheduledEvent{at: at, seq: e.seq, batch: fn, start: start, count: count})
	return err
}

// ScheduleAfter runs fn after delay relative to the current simulated time.
// Negative delays are clamped to zero and counted in Clamped.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) {
	if delay < 0 {
		e.clamped++
		delay = 0
	}
	// Scheduling relative to now can never be in the past.
	_ = e.Schedule(e.now+delay, fn)
}

// SchedulePeriodic runs fn every interval, starting at start, until the
// engine stops or the run horizon is reached. fn runs before the next
// occurrence is scheduled, so a task can call Stop to cancel the series.
func (e *Engine) SchedulePeriodic(start, interval time.Duration, fn Event) error {
	if interval <= 0 {
		return fmt.Errorf("sim: periodic interval must be positive, got %v", interval)
	}
	var tick Event
	tick = func(e *Engine) {
		fn(e)
		if !e.stopped {
			// Relative to now, so this cannot clamp; Clamped still counts it
			// if an fn rewinds its own schedule somehow.
			_ = e.Schedule(e.now+interval, tick)
		}
	}
	return e.Schedule(start, tick)
}

// Clamped returns how many events were scheduled in the past (or with a
// negative delay) and silently clamped to "now". A non-zero count after a run
// means some component computed a stale timestamp — the class of bug that
// used to vanish into dropped error returns.
func (e *Engine) Clamped() uint64 { return e.clamped }

// Stop halts the run after the current event returns. Pending events remain
// queued and a subsequent Run call resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or the clock
// would pass horizon. Events scheduled exactly at the horizon still run. It
// returns ErrStopped if Stop was called, otherwise nil.
func (e *Engine) Run(horizon time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.queue[0].at > horizon {
			// Leave future events queued; advance the clock to the horizon so
			// repeated Run calls see a consistent notion of "now".
			e.now = horizon
			return nil
		}
		next := e.pop()
		e.now = next.at
		if next.batch != nil {
			for i := 0; i < next.count; i++ {
				next.batch(e, next.start+i)
				if e.stopped {
					// Requeue the unfired remainder at the original (at, seq)
					// so a later Run resumes exactly where the batch stopped.
					if rest := next.count - i - 1; rest > 0 {
						e.push(scheduledEvent{at: e.now, seq: next.seq,
							batch: next.batch, start: next.start + i + 1, count: rest})
					}
					return ErrStopped
				}
			}
			continue
		}
		next.call(e)
		if e.stopped {
			return ErrStopped
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Pending returns the number of queued events, mainly for tests and
// diagnostics.
func (e *Engine) Pending() int { return len(e.queue) }
