// Package sim provides a deterministic discrete-event simulation engine: a
// virtual clock, an event heap, and periodic tasks. Every experiment in this
// repository runs on top of it, which is what makes hour-long cluster
// benchmarks reproducible in milliseconds of wall time.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Event is a callback scheduled to run at a simulated instant. The engine
// passes itself so events can schedule follow-up events.
type Event func(e *Engine)

type scheduledEvent struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	call Event
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*scheduledEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduled events run on the caller's goroutine inside
// Run.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
}

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// New creates an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source. Experiments must
// draw all randomness from here to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at the absolute simulated time at. Scheduling in the past
// is an error: the event fires immediately at the current time instead, which
// keeps the clock monotonic, and Schedule reports it.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	var err error
	if at < e.now {
		err = fmt.Errorf("sim: scheduling at %v before now %v; clamped", at, e.now)
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &scheduledEvent{at: at, seq: e.seq, call: fn})
	return err
}

// ScheduleAfter runs fn after delay relative to the current simulated time.
// Negative delays are clamped to zero.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	// Scheduling relative to now can never be in the past.
	_ = e.Schedule(e.now+delay, fn)
}

// SchedulePeriodic runs fn every interval, starting at start, until the
// engine stops or the run horizon is reached. fn runs before the next
// occurrence is scheduled, so a task can call Stop to cancel the series.
func (e *Engine) SchedulePeriodic(start, interval time.Duration, fn Event) error {
	if interval <= 0 {
		return fmt.Errorf("sim: periodic interval must be positive, got %v", interval)
	}
	var tick Event
	tick = func(e *Engine) {
		fn(e)
		if !e.stopped {
			_ = e.Schedule(e.now+interval, tick)
		}
	}
	return e.Schedule(start, tick)
}

// Stop halts the run after the current event returns. Pending events remain
// queued and a subsequent Run call resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or the clock
// would pass horizon. Events scheduled exactly at the horizon still run. It
// returns ErrStopped if Stop was called, otherwise nil.
func (e *Engine) Run(horizon time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > horizon {
			// Leave future events queued; advance the clock to the horizon so
			// repeated Run calls see a consistent notion of "now".
			e.now = horizon
			return nil
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.call(e)
		if e.stopped {
			return ErrStopped
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Pending returns the number of queued events, mainly for tests and
// diagnostics.
func (e *Engine) Pending() int { return len(e.queue) }
