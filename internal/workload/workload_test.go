package workload

import (
	"strings"
	"testing"
	"time"
)

func validSpec() ServiceSpec {
	return ServiceSpec{
		Name: "svc", Kind: KindCPUBound,
		CPUPerRequest: 0.1, CPUOverheadPerRequest: 0.01,
		MemPerRequest: 4, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 1, MaxReplicas: 4,
		Timeout: 30 * time.Second,
	}
}

func TestValidateAcceptsValidSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*ServiceSpec)
		wantSub string
	}{
		{"empty name", func(s *ServiceSpec) { s.Name = "" }, "empty name"},
		{"unknown kind", func(s *ServiceSpec) { s.Kind = KindUnknown }, "unknown kind"},
		{"negative cpu", func(s *ServiceSpec) { s.CPUPerRequest = -1 }, "negative per-request"},
		{"negative overhead", func(s *ServiceSpec) { s.CPUOverheadPerRequest = -1 }, "negative per-request"},
		{"negative mem", func(s *ServiceSpec) { s.MemPerRequest = -1 }, "negative per-request"},
		{"negative net", func(s *ServiceSpec) { s.NetPerRequest = -1 }, "negative per-request"},
		{"negative baseline", func(s *ServiceSpec) { s.BaselineMemMB = -1 }, "negative baseline"},
		{"zero initial cpu", func(s *ServiceSpec) { s.InitialReplicaCPU = 0 }, "positive initial CPU"},
		{"zero initial mem", func(s *ServiceSpec) { s.InitialReplicaMemMB = 0 }, "positive initial memory"},
		{"zero min replicas", func(s *ServiceSpec) { s.MinReplicas = 0 }, "MinReplicas"},
		{"max < min", func(s *ServiceSpec) { s.MaxReplicas = 0 }, "MaxReplicas"},
		{"zero timeout", func(s *ServiceSpec) { s.Timeout = 0 }, "timeout"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestTotalCPUWork(t *testing.T) {
	s := validSpec()
	if got := s.TotalCPUWork(); got != 0.11 {
		t.Errorf("TotalCPUWork = %v, want 0.11", got)
	}
}

func TestNewRequest(t *testing.T) {
	s := validSpec()
	s.NetPerRequest = 8
	r := NewRequest(7, s, 10*time.Second)

	if r.ID != 7 || r.Service != "svc" {
		t.Errorf("identity wrong: %+v", r)
	}
	if r.Arrival != 10*time.Second || r.Deadline != 40*time.Second {
		t.Errorf("timing wrong: arrival=%v deadline=%v", r.Arrival, r.Deadline)
	}
	if r.Phase != PhaseCPU {
		t.Errorf("Phase = %v, want PhaseCPU", r.Phase)
	}
	if r.RemainingCPU != s.TotalCPUWork() {
		t.Errorf("RemainingCPU = %v, want %v", r.RemainingCPU, s.TotalCPUWork())
	}
	if r.RemainingNetMb != 8 {
		t.Errorf("RemainingNetMb = %v, want 8", r.RemainingNetMb)
	}
	if r.MemFootprintMB != 4 {
		t.Errorf("MemFootprintMB = %v, want 4", r.MemFootprintMB)
	}
	if r.Finished() {
		t.Error("fresh request reports Finished")
	}
	r.Phase = PhaseDone
	if !r.Finished() {
		t.Error("done request reports unfinished")
	}
}

func TestKindStrings(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindCPUBound, "cpu-bound"},
		{KindMemoryBound, "memory-bound"},
		{KindNetworkBound, "network-bound"},
		{KindMixed, "mixed"},
		{KindUnknown, "unknown(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestFailureClassStrings(t *testing.T) {
	if FailureRemoval.String() != "removal" || FailureConnection.String() != "connection" || FailureNone.String() != "none" {
		t.Error("FailureClass strings wrong")
	}
}

func TestSyncDelay(t *testing.T) {
	s := validSpec()
	if s.SyncDelay() != 0 {
		t.Error("stateless service has sync delay")
	}
	s.StateSyncMB = 2048 // 2 GiB at the default 200 Mbps: 16384 Mb / 200 = 81.92 s
	want := time.Duration(2048 * 8 / 200.0 * float64(time.Second))
	if got := s.SyncDelay(); got != want {
		t.Errorf("SyncDelay = %v, want %v", got, want)
	}
	s.StateSyncMbps = 800
	if got := s.SyncDelay(); got != want/4 {
		t.Errorf("SyncDelay at 800 Mbps = %v, want %v", got, want/4)
	}
}
