package workload

import (
	"strings"
	"testing"
)

func TestCallGraphValidateRejections(t *testing.T) {
	known := map[string]bool{"a": true, "b": true, "c": true}
	cases := []struct {
		name  string
		graph CallGraph
		want  string
	}{
		{"empty endpoint", CallGraph{Edges: []CallEdge{{From: "a"}}}, "empty from/to"},
		{"self-loop", CallGraph{Edges: []CallEdge{{From: "a", To: "a"}}}, "self-loop"},
		{"bad prob", CallGraph{Edges: []CallEdge{{From: "a", To: "b", Prob: 1.5}}}, "prob"},
		{"negative calls", CallGraph{Edges: []CallEdge{{From: "a", To: "b", Calls: -1}}}, "negative calls"},
		{"duplicate edge", CallGraph{Edges: []CallEdge{{From: "a", To: "b"}, {From: "a", To: "b"}}}, "duplicate"},
		{"unknown service", CallGraph{Edges: []CallEdge{{From: "a", To: "zz"}}}, `unknown service "zz"`},
		{"two-cycle", CallGraph{Edges: []CallEdge{{From: "a", To: "b"}, {From: "b", To: "a"}}}, "cycle"},
		{"three-cycle", CallGraph{Edges: []CallEdge{
			{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "c", To: "a"}}}, "cycle"},
	}
	for _, tc := range cases {
		err := tc.graph.Validate(known)
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCallGraphCycleIsPrinted checks the error names the actual cycle path so
// a mis-declared chain is debuggable from the message alone.
func TestCallGraphCycleIsPrinted(t *testing.T) {
	g := CallGraph{Edges: []CallEdge{
		{From: "a", To: "b"},
		{From: "b", To: "c"},
		{From: "c", To: "b"},
	}}
	err := g.Validate(nil)
	if err == nil {
		t.Fatal("cyclic graph validated")
	}
	if !strings.Contains(err.Error(), "b -> c -> b") {
		t.Errorf("error %q does not print the cycle b -> c -> b", err)
	}
}

func TestCallGraphShape(t *testing.T) {
	g := CallGraph{Edges: []CallEdge{
		{From: "gw", To: "cat", Prob: 0.7},
		{From: "gw", To: "ord", Calls: 2},
		{From: "cat", To: "db"},
		{From: "ord", To: "db"},
	}}
	if err := g.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if !g.Enabled() || (CallGraph{}).Enabled() {
		t.Error("Enabled wrong for populated/zero graph")
	}
	if got := g.Roots(); len(got) != 1 || got[0] != "gw" {
		t.Errorf("Roots = %v, want [gw]", got)
	}
	if got := g.Services(); len(got) != 4 {
		t.Errorf("Services = %v, want 4 names", got)
	}
	if got := g.MaxDepth(); got != 2 {
		t.Errorf("MaxDepth = %d, want 2", got)
	}
	if got := g.Out("gw"); len(got) != 2 || got[0].To != "cat" || got[1].To != "ord" {
		t.Errorf("Out(gw) = %v, want declaration order [cat ord]", got)
	}
	if got := g.Out("db"); got != nil {
		t.Errorf("Out(db) = %v, want none", got)
	}
}

func TestCallEdgeDefaults(t *testing.T) {
	e := CallEdge{From: "a", To: "b"}
	if e.Key() != "a->b" {
		t.Errorf("Key = %q", e.Key())
	}
	if e.EffectiveProb() != 1 || e.EffectiveCalls() != 1 {
		t.Error("zero prob/calls must normalise to 1")
	}
	if (CallEdge{Prob: 0.3, Calls: 4}).EffectiveProb() != 0.3 {
		t.Error("explicit prob not honoured")
	}
	if (CallEdge{Calls: 4}).EffectiveCalls() != 4 {
		t.Error("explicit calls not honoured")
	}
}
