package workload

import (
	"fmt"
	"sort"
	"strings"
)

// CallEdge is one directed dependency in a service call DAG: every request
// admitted at From issues Calls downstream requests to To, each with
// probability Prob. The zero values of Calls and Prob mean "one call,
// always" so a bare {"from","to"} edge behaves like a plain synchronous
// dependency.
type CallEdge struct {
	// From is the calling service.
	From string `json:"from"`
	// To is the downstream service.
	To string `json:"to"`
	// Prob is the probability each call fires (0 or 1 means always).
	Prob float64 `json:"prob,omitempty"`
	// Calls is the number of downstream requests issued per admitted
	// request (0 means 1).
	Calls int `json:"calls,omitempty"`
}

// Key renders the edge identity used by breakers, counters and metrics.
func (e CallEdge) Key() string { return e.From + "->" + e.To }

// EffectiveProb returns the per-call firing probability with the zero value
// normalised to 1.
func (e CallEdge) EffectiveProb() float64 {
	if e.Prob <= 0 {
		return 1
	}
	if e.Prob > 1 {
		return 1
	}
	return e.Prob
}

// EffectiveCalls returns the fan-out count with the zero value normalised
// to 1.
func (e CallEdge) EffectiveCalls() int {
	if e.Calls <= 0 {
		return 1
	}
	return e.Calls
}

// CallGraph is a per-run service dependency DAG. The zero value (no edges)
// means every service is independent — exactly the paper's workload model —
// and costs nothing anywhere on the hot path.
type CallGraph struct {
	Edges []CallEdge `json:"edges,omitempty"`
}

// Enabled reports whether the graph declares any dependency at all.
func (g CallGraph) Enabled() bool { return len(g.Edges) > 0 }

// Out returns the outgoing edges of a service, in declaration order.
func (g CallGraph) Out(service string) []CallEdge {
	var out []CallEdge
	for _, e := range g.Edges {
		if e.From == service {
			out = append(out, e)
		}
	}
	return out
}

// Services returns every service named by the graph, sorted.
func (g CallGraph) Services() []string {
	seen := make(map[string]bool)
	var names []string
	for _, e := range g.Edges {
		for _, n := range []string{e.From, e.To} {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Roots returns the graph services with no incoming edge — the tiers that
// receive external client traffic directly — sorted.
func (g CallGraph) Roots() []string {
	callee := make(map[string]bool)
	for _, e := range g.Edges {
		callee[e.To] = true
	}
	var roots []string
	for _, n := range g.Services() {
		if !callee[n] {
			roots = append(roots, n)
		}
	}
	return roots
}

// MaxDepth returns the longest path length (in edges) through the DAG.
// Validate must have accepted the graph first; cyclic graphs would loop.
func (g CallGraph) MaxDepth() int {
	memo := make(map[string]int)
	var depth func(string) int
	depth = func(svc string) int {
		if d, ok := memo[svc]; ok {
			return d
		}
		best := 0
		for _, e := range g.Out(svc) {
			if d := depth(e.To) + 1; d > best {
				best = d
			}
		}
		memo[svc] = best
		return best
	}
	best := 0
	for _, n := range g.Services() {
		if d := depth(n); d > best {
			best = d
		}
	}
	return best
}

// Validate rejects malformed graphs: empty endpoints, self-loops, edges to
// services not in the known set (when one is supplied), out-of-range
// probabilities, negative fan-outs, duplicate edges, and cycles — the cycle
// itself is printed so a mis-declared chain is obvious. known may be nil to
// skip the membership check.
func (g CallGraph) Validate(known map[string]bool) error {
	seen := make(map[string]bool, len(g.Edges))
	for i, e := range g.Edges {
		if e.From == "" || e.To == "" {
			return fmt.Errorf("workload: callGraph.edges[%d]: empty from/to", i)
		}
		if e.From == e.To {
			return fmt.Errorf("workload: callGraph.edges[%d]: self-loop %s", i, e.Key())
		}
		if e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("workload: callGraph.edges[%d] (%s): prob %v out of [0,1]", i, e.Key(), e.Prob)
		}
		if e.Calls < 0 {
			return fmt.Errorf("workload: callGraph.edges[%d] (%s): negative calls %d", i, e.Key(), e.Calls)
		}
		if seen[e.Key()] {
			return fmt.Errorf("workload: callGraph.edges[%d]: duplicate edge %s", i, e.Key())
		}
		seen[e.Key()] = true
		if known != nil {
			if !known[e.From] {
				return fmt.Errorf("workload: callGraph.edges[%d]: unknown service %q", i, e.From)
			}
			if !known[e.To] {
				return fmt.Errorf("workload: callGraph.edges[%d]: unknown service %q", i, e.To)
			}
		}
	}
	if cycle := g.findCycle(); cycle != nil {
		return fmt.Errorf("workload: callGraph has a cycle: %s", strings.Join(cycle, " -> "))
	}
	return nil
}

// findCycle runs a colouring DFS over the edge set and returns the first
// cycle found as a service path ending where it started, or nil.
func (g CallGraph) findCycle() []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int)
	var stack []string
	var cycle []string
	var visit func(string) bool
	visit = func(svc string) bool {
		colour[svc] = grey
		stack = append(stack, svc)
		for _, e := range g.Out(svc) {
			switch colour[e.To] {
			case grey:
				// Found: slice the stack from the first occurrence of e.To
				// and close the loop.
				for i, s := range stack {
					if s == e.To {
						cycle = append(append(cycle, stack[i:]...), e.To)
						return true
					}
				}
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		colour[svc] = black
		return false
	}
	for _, n := range g.Services() {
		if colour[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}
