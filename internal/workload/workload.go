// Package workload defines the microservice and request abstractions shared
// by the whole simulator. It mirrors the paper's "custom Java microservice
// with configurable workload": each service declares how much CPU time,
// memory and egress traffic a single client request consumes, and the
// simulator charges those demands against the container hosting the replica.
package workload

import (
	"fmt"
	"time"
)

// Kind classifies a microservice by its dominant resource, matching the four
// microservice types evaluated in the paper (§VI): CPU-bound, memory-bound,
// network-bound, and mixed CPU+memory.
type Kind int

// Microservice kinds. Enum starts at one so the zero value is invalid and
// accidental zero-initialisation is caught early.
const (
	KindUnknown Kind = iota
	KindCPUBound
	KindMemoryBound
	KindNetworkBound
	KindMixed
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCPUBound:
		return "cpu-bound"
	case KindMemoryBound:
		return "memory-bound"
	case KindNetworkBound:
		return "network-bound"
	case KindMixed:
		return "mixed"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// ServiceSpec describes one emulated microservice: its identity, what a
// single request costs, and its deployment envelope (baseline memory of the
// application/image and the initial per-replica resource request).
type ServiceSpec struct {
	// Name uniquely identifies the microservice within an experiment.
	Name string
	// Kind is the dominant-resource classification.
	Kind Kind

	// CPUPerRequest is the amount of CPU work one request needs, expressed
	// in cpu-seconds (one core running for that long).
	CPUPerRequest float64
	// CPUOverheadPerRequest is a fixed per-request cost (request parsing,
	// JVM dispatch, serialisation) that does NOT shrink when the service is
	// replicated. The paper identifies this application overhead as a reason
	// horizontal scaling degrades CPU-bound response times (§III-A).
	CPUOverheadPerRequest float64
	// MemPerRequest is the transient memory footprint (MiB) a request holds
	// while it is being processed.
	MemPerRequest float64
	// NetPerRequest is the egress payload (megabits) the response carries.
	NetPerRequest float64

	// BaselineMemMB is the resident memory of the application and container
	// image itself (the "JVM overhead" of §III-B); every replica pays it.
	BaselineMemMB float64
	// BackgroundCPU is the CPU (cores) every replica burns regardless of
	// traffic — runtime agents, JVM GC, health checks. §III-A: the
	// application overhead that "when replicated several times ... becomes
	// much more significant" and penalises many-small-replica layouts.
	BackgroundCPU float64

	// InitialReplicaRequest is the resource request a fresh replica starts
	// with. Kubernetes keeps this fixed for the lifetime of the replica;
	// HyScale adjusts it through vertical scaling.
	InitialReplicaCPU float64
	// InitialReplicaMemMB is the memory limit a fresh replica starts with.
	InitialReplicaMemMB float64
	// InitialReplicaNetMbps is the tc egress cap a fresh replica starts with
	// (0 means unshaped).
	InitialReplicaNetMbps float64

	// MinReplicas and MaxReplicas bound horizontal scaling, as in the
	// Kubernetes HPA configuration.
	MinReplicas int
	MaxReplicas int

	// Timeout is how long a client waits before declaring the request failed
	// (a "connection failure" in the paper's terminology).
	Timeout time.Duration

	// QueueLimit bounds the number of in-flight requests one replica will
	// hold (its admission queue). Zero means unbounded — the paper's
	// original model. Bounded queues are what lets congestion at a slow
	// downstream tier back-pressure its callers instead of growing an
	// invisible infinite queue.
	QueueLimit int

	// StateSyncMB is the state a fresh replica must receive from the
	// existing replicas before it can serve (0 = stateless). The paper
	// singles out stateful services as the case where horizontal scaling is
	// "non-trivial" and vertical scaling shines (§IV-B); modelling the
	// state transfer as additional start latency captures that asymmetry.
	StateSyncMB float64
	// StateSyncMbps is the transfer rate of the state sync; defaults to
	// 200 Mbps when zero.
	StateSyncMbps float64
}

// SyncDelay returns the extra start latency a fresh replica pays to receive
// the service's state, zero for stateless services.
func (s ServiceSpec) SyncDelay() time.Duration {
	if s.StateSyncMB <= 0 {
		return 0
	}
	rate := s.StateSyncMbps
	if rate <= 0 {
		rate = 200
	}
	seconds := s.StateSyncMB * 8 / rate
	return time.Duration(seconds * float64(time.Second))
}

// Validate reports a descriptive error when the spec is not usable.
func (s ServiceSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: service spec has empty name")
	case s.Kind == KindUnknown:
		return fmt.Errorf("workload: service %q has unknown kind", s.Name)
	case s.CPUPerRequest < 0 || s.CPUOverheadPerRequest < 0 || s.MemPerRequest < 0 || s.NetPerRequest < 0:
		return fmt.Errorf("workload: service %q has negative per-request demand", s.Name)
	case s.BaselineMemMB < 0:
		return fmt.Errorf("workload: service %q has negative baseline memory", s.Name)
	case s.InitialReplicaCPU <= 0:
		return fmt.Errorf("workload: service %q needs a positive initial CPU request", s.Name)
	case s.InitialReplicaMemMB <= 0:
		return fmt.Errorf("workload: service %q needs a positive initial memory request", s.Name)
	case s.MinReplicas < 1:
		return fmt.Errorf("workload: service %q needs MinReplicas >= 1", s.Name)
	case s.MaxReplicas < s.MinReplicas:
		return fmt.Errorf("workload: service %q has MaxReplicas < MinReplicas", s.Name)
	case s.Timeout <= 0:
		return fmt.Errorf("workload: service %q needs a positive timeout", s.Name)
	case s.QueueLimit < 0:
		return fmt.Errorf("workload: service %q has negative queue limit", s.Name)
	}
	return nil
}

// TotalCPUWork returns the total cpu-seconds a request consumes, including
// the fixed application overhead.
func (s ServiceSpec) TotalCPUWork() float64 {
	return s.CPUPerRequest + s.CPUOverheadPerRequest
}

// FailureClass distinguishes the two premature-termination modes the paper
// reports separately in Figures 6-8: requests killed because their container
// was removed by a scale-in decision, and requests that failed at the
// microservice (no live replica, queue rejection, or timeout).
type FailureClass int

// Failure classes.
const (
	FailureNone FailureClass = iota
	// FailureRemoval is a request that ended prematurely because its
	// container was removed (paper: "removal failures").
	FailureRemoval
	// FailureConnection is a request that failed prematurely at the
	// microservice: no replica available or timeout (paper: "connection
	// failures").
	FailureConnection
)

// String implements fmt.Stringer.
func (f FailureClass) String() string {
	switch f {
	case FailureNone:
		return "none"
	case FailureRemoval:
		return "removal"
	case FailureConnection:
		return "connection"
	default:
		return fmt.Sprintf("FailureClass(%d)", int(f))
	}
}

// Phase tracks where in its lifecycle a request currently is. Requests are
// processed in two sequential stages: the CPU stage (compute the response)
// and the network stage (transmit it through the container's egress shaper).
type Phase int

// Request phases. PhaseWait only occurs in call-graph runs: the request's
// own CPU and network work is done but downstream calls are still
// outstanding, so it keeps holding its replica's queue slot and memory —
// the mechanism that back-pressures callers of a slow dependency.
const (
	PhaseCPU Phase = iota + 1
	PhaseNet
	PhaseWait
	PhaseDone
)

// Request is one in-flight client request. Requests are created by the load
// generator, routed by a load balancer to a container, and advanced by the
// cluster physics every tick.
type Request struct {
	// ID is unique within an experiment run.
	ID uint64
	// Service is the target microservice name.
	Service string
	// Arrival is the simulated time the request reached the load balancer.
	Arrival time.Duration
	// Deadline is Arrival + the service timeout.
	Deadline time.Duration

	// Phase is the current processing stage.
	Phase Phase
	// RemainingCPU is the cpu-seconds of work left in the CPU stage.
	RemainingCPU float64
	// RemainingNetMb is the megabits left to transmit in the network stage.
	RemainingNetMb float64
	// MemFootprintMB is the transient memory the request holds while in
	// flight.
	MemFootprintMB float64

	// ExtraLatency accumulates latency charged outside resource contention,
	// e.g. the cross-node distribution overhead of §III-A.
	ExtraLatency time.Duration

	// Call-graph fields, all zero for the paper's independent-service
	// workloads. Edge is the call-graph edge key ("from->to") for
	// downstream calls and empty for root requests; ParentID is the caller
	// request's ID (0 for roots); Attempt is the 1-based attempt ordinal of
	// this call slot (retries re-issue with Attempt+1).
	Edge     string
	ParentID uint64
	Attempt  int
	// PendingChildren counts downstream calls this request still waits on;
	// while positive a request whose own phases finished parks in
	// PhaseWait instead of completing. Managed by the platform layer.
	PendingChildren int
	// OwnDoneAt records when the request's own CPU/network phases finished,
	// for latency composition once the last child returns.
	OwnDoneAt time.Duration
}

// NewRequest builds a request for spec arriving at the given simulated time.
func NewRequest(id uint64, spec ServiceSpec, arrival time.Duration) *Request {
	return &Request{
		ID:             id,
		Service:        spec.Name,
		Arrival:        arrival,
		Deadline:       arrival + spec.Timeout,
		Phase:          PhaseCPU,
		RemainingCPU:   spec.TotalCPUWork(),
		RemainingNetMb: spec.NetPerRequest,
		MemFootprintMB: spec.MemPerRequest,
	}
}

// Finished reports whether both processing stages are complete.
func (r *Request) Finished() bool { return r.Phase == PhaseDone }
