package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hyscale/internal/resources"
)

// hySnapshot builds a snapshot with explicit usage/requested vectors.
func hySnapshot(now time.Duration, in ServiceInfo, replicas []ReplicaStats, nodeAvail map[string]resources.Vector) Snapshot {
	snap := Snapshot{Now: now, Services: []ServiceStats{{Info: in, Replicas: replicas}}}
	hosted := make(map[string][]string)
	for _, r := range replicas {
		hosted[r.NodeID] = append(hosted[r.NodeID], in.Name)
	}
	for id, avail := range nodeAvail {
		snap.Nodes = append(snap.Nodes, NodeStats{
			ID:        id,
			Capacity:  resources.Vector{CPU: 4, MemMB: 8192, NetMbps: 1000},
			Available: avail,
			Hosts:     uniq(hosted[id]),
		})
	}
	// Deterministic node order.
	for i := 0; i < len(snap.Nodes); i++ {
		for j := i + 1; j < len(snap.Nodes); j++ {
			if snap.Nodes[j].ID < snap.Nodes[i].ID {
				snap.Nodes[i], snap.Nodes[j] = snap.Nodes[j], snap.Nodes[i]
			}
		}
	}
	return snap
}

func uniq(in []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func rep(id, node string, reqCPU, useCPU, reqMem, useMem float64) ReplicaStats {
	return ReplicaStats{
		ContainerID: id, NodeID: node, Routable: true,
		Requested: resources.Vector{CPU: reqCPU, MemMB: reqMem},
		Usage:     resources.Vector{CPU: useCPU, MemMB: useMem},
	}
}

func findVertical(p Plan, id string) (VerticalScale, bool) {
	for _, a := range p.Actions {
		if v, ok := a.(VerticalScale); ok && v.ContainerID == id {
			return v, true
		}
	}
	return VerticalScale{}, false
}

func TestHyScaleVerticalAcquisition(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	// One replica: requested 1 CPU, using 1 CPU at target 0.5 →
	// Required = 1/(0.5*0.9) − 1 = 1.222; node has plenty.
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 1.0, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 3, MemMB: 7000}})
	plan := h.Decide(snap)
	v, ok := findVertical(plan, "r0")
	if !ok {
		t.Fatalf("no vertical action: %+v", plan.Actions)
	}
	want := 1 + (1.0/(0.5*0.9) - 1)
	if math.Abs(v.NewAlloc.CPU-want) > 1e-9 {
		t.Errorf("NewAlloc.CPU = %v, want %v", v.NewAlloc.CPU, want)
	}
	outs, ins, _ := countActions(plan)
	if outs != 0 || ins != 0 {
		t.Errorf("unexpected horizontal actions: %d out, %d in", outs, ins)
	}
}

func TestHyScaleAcquisitionCappedByNodeAvailability(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	in.MaxReplicas = 1 // forbid horizontal fallback
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 1.0, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 0.4, MemMB: 7000}})
	plan := h.Decide(snap)
	v, ok := findVertical(plan, "r0")
	if !ok {
		t.Fatalf("no vertical action: %+v", plan.Actions)
	}
	if math.Abs(v.NewAlloc.CPU-1.4) > 1e-9 {
		t.Errorf("NewAlloc.CPU = %v, want 1.4 (AvailableCPUs bound)", v.NewAlloc.CPU)
	}
}

func TestHyScaleHorizontalFallbackToNonHostingNode(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	// Node A is full; the deficit must go to a node NOT hosting the service.
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)},
		map[string]resources.Vector{
			"A": {CPU: 0, MemMB: 7000},
			"B": {CPU: 4, MemMB: 8000},
		})
	plan := h.Decide(snap)
	outs, _, _ := countActions(plan)
	if outs != 1 {
		t.Fatalf("outs = %d, want 1; plan %+v", outs, plan.Actions)
	}
	for _, a := range plan.Actions {
		if so, ok := a.(ScaleOut); ok {
			if so.NodeID != "B" {
				t.Errorf("scale-out to %s, want B (A already hosts)", so.NodeID)
			}
			if so.Alloc.CPU < h.cfg.MinScaleOutCPU {
				t.Errorf("scale-out CPU %v below minimum", so.Alloc.CPU)
			}
			if so.Alloc.MemMB <= 0 {
				t.Error("scale-out with no memory")
			}
		}
	}
}

func TestHyScaleNoScaleOutWithoutBaselineMemory(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info() // baseline 300, initial mem 512
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)},
		map[string]resources.Vector{
			"A": {CPU: 0, MemMB: 7000},
			"B": {CPU: 4, MemMB: 200}, // plenty CPU, not enough memory
		})
	outs, _, _ := countActions(h.Decide(snap))
	if outs != 0 {
		t.Fatal("scaled out onto node without baseline memory")
	}
}

func TestHyScaleNoScaleOutBelowCPUThreshold(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)},
		map[string]resources.Vector{
			"A": {CPU: 0, MemMB: 7000},
			"B": {CPU: 0.2, MemMB: 8000}, // below the 0.25 CPU minimum
		})
	outs, _, _ := countActions(h.Decide(snap))
	if outs != 0 {
		t.Fatal("scaled out onto node below the 0.25-CPU threshold")
	}
}

func TestHyScaleReclamation(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	// Using 0.2 of 2 requested at target 0.5: over-provisioned.
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 2, 0.2, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 1, MemMB: 7000}})
	plan := h.Decide(snap)
	v, ok := findVertical(plan, "r0")
	if !ok {
		t.Fatalf("no reclamation: %+v", plan.Actions)
	}
	// Reclaimable = 2 − 0.2/0.45 = 1.556, but bounded by the deficit
	// −Missing = (2*0.5 − 0.2)/0.5 = 1.6 → reclaim 1.556.
	want := 0.2 / 0.45
	if math.Abs(v.NewAlloc.CPU-want) > 1e-9 {
		t.Errorf("NewAlloc.CPU = %v, want %v", v.NewAlloc.CPU, want)
	}
}

func TestHyScaleRemovesTinyReplica(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	// Two replicas, one nearly idle: its want = 0.01/0.45 ≈ 0.022 < 0.1.
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{
			rep("r0", "A", 1, 0.45, 512, 300),
			rep("r1", "B", 1, 0.01, 512, 300),
		},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 7000}, "B": {CPU: 2, MemMB: 7000}})
	plan := h.Decide(snap)
	removed := false
	for _, a := range plan.Actions {
		if si, ok := a.(ScaleIn); ok && si.ContainerID == "r1" {
			removed = true
		}
	}
	if !removed {
		t.Fatalf("idle replica not removed: %+v", plan.Actions)
	}
}

func TestHyScaleKeepsMinReplicas(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info() // min 1
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 0.001, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 7000}})
	plan := h.Decide(snap)
	_, ins, _ := countActions(plan)
	if ins != 0 {
		t.Fatal("removed the last replica below MinReplicas")
	}
}

func TestHyScaleCPUMemRemovalRequiresBothThresholds(t *testing.T) {
	h := NewHyScaleCPUMem(DefaultConfig())
	in := info()
	// CPU idle but memory busy: HYSCALE_CPU+Mem must NOT remove (§IV-B2
	// requires CPU and memory conditions mutually).
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{
			rep("r0", "A", 1, 0.45, 512, 300),
			rep("r1", "B", 1, 0.01, 512, 500), // mem-busy: want 500/0.45 >> baseline
		},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 7000}, "B": {CPU: 2, MemMB: 7000}})
	plan := h.Decide(snap)
	for _, a := range plan.Actions {
		if si, ok := a.(ScaleIn); ok && si.ContainerID == "r1" {
			t.Fatal("memory-busy replica removed by CPU+Mem variant")
		}
	}

	// The CPU-only variant removes it regardless of memory.
	hc := NewHyScaleCPU(DefaultConfig())
	plan = hc.Decide(snap)
	removed := false
	for _, a := range plan.Actions {
		if si, ok := a.(ScaleIn); ok && si.ContainerID == "r1" {
			removed = true
		}
	}
	if !removed {
		t.Fatal("CPU-only variant kept the CPU-idle replica")
	}
}

func TestHyScaleCPUMemVerticalMemoryAcquisition(t *testing.T) {
	h := NewHyScaleCPUMem(DefaultConfig())
	in := info()
	// Memory pressure: using 600 of 512 at target 0.5.
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 0.4, 512, 600)},
		map[string]resources.Vector{"A": {CPU: 3, MemMB: 7000}})
	plan := h.Decide(snap)
	v, ok := findVertical(plan, "r0")
	if !ok {
		t.Fatalf("no vertical action: %+v", plan.Actions)
	}
	if v.NewAlloc.MemMB <= 512 {
		t.Errorf("memory not scaled up: %v", v.NewAlloc.MemMB)
	}
}

func TestHyScaleCPUIgnoresMemory(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 0.45, 512, 5000)}, // deep memory pressure
		map[string]resources.Vector{"A": {CPU: 3, MemMB: 7000}})
	plan := h.Decide(snap)
	if v, ok := findVertical(plan, "r0"); ok && v.NewAlloc.MemMB != 512 {
		t.Errorf("CPU-only variant changed memory: %v", v.NewAlloc.MemMB)
	}
}

func TestHyScaleMemReclamationFloorsAtBaseline(t *testing.T) {
	h := NewHyScaleCPUMem(DefaultConfig())
	in := info() // baseline 300
	// Memory barely used: reclamation must not go below baseline*(1+headroom).
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{
			rep("r0", "A", 1, 0.45, 2048, 310),
			rep("r1", "B", 1, 0.45, 2048, 310),
		},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 6000}, "B": {CPU: 2, MemMB: 6000}})
	plan := h.Decide(snap)
	floor := 300 * (1 + h.cfg.MemHeadroom)
	for _, a := range plan.Actions {
		if v, ok := a.(VerticalScale); ok {
			if v.NewAlloc.MemMB < floor-1e-9 {
				t.Errorf("memory reclaimed below baseline floor: %v < %v", v.NewAlloc.MemMB, floor)
			}
		}
	}
}

func TestHyScaleHorizontalGateThrottlesOnlyHorizontal(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	nodes := map[string]resources.Vector{
		"A": {CPU: 0, MemMB: 7000},
		"B": {CPU: 4, MemMB: 8000},
		"C": {CPU: 4, MemMB: 8000},
	}
	hot := []ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)}

	plan := h.Decide(hySnapshot(10*time.Second, in, hot, nodes))
	outs, _, _ := countActions(plan)
	if outs == 0 {
		t.Fatal("first horizontal scale-out suppressed")
	}

	// 1s later (inside 3s gate): horizontal suppressed, vertical NOT.
	nodes2 := map[string]resources.Vector{
		"A": {CPU: 1, MemMB: 7000}, // some vertical headroom appeared
		"B": {CPU: 4, MemMB: 8000},
		"C": {CPU: 4, MemMB: 8000},
	}
	plan = h.Decide(hySnapshot(11*time.Second, in, hot, nodes2))
	outs, _, verts := countActions(plan)
	if outs != 0 {
		t.Error("horizontal not throttled inside gate")
	}
	if verts == 0 {
		t.Error("vertical scaling wrongly throttled (must be exempt)")
	}
}

func TestHyScaleEnforcesBounds(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	in.MinReplicas = 2
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 0.45, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 7000}, "B": {CPU: 4, MemMB: 8000}})
	plan := h.Decide(snap)
	outs, _, _ := countActions(plan)
	if outs != 1 {
		t.Fatalf("outs = %d, want 1 (min-replica enforcement)", outs)
	}

	in2 := info()
	in2.MaxReplicas = 1
	snap = hySnapshot(time.Minute, in2,
		[]ReplicaStats{
			rep("r0", "A", 1, 0.45, 512, 300),
			rep("r1", "B", 1, 0.45, 512, 300),
		},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 7000}, "B": {CPU: 2, MemMB: 7000}})
	_, ins, _ := countActions(h.Decide(snap))
	if ins != 1 {
		t.Fatalf("ins = %d, want 1 (max-replica enforcement)", ins)
	}
}

func TestHyScaleBalancedServiceIsNoop(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	// usage exactly requested*target: Missing = 0.
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 0.5, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 2, MemMB: 7000}})
	// Missing=0 but per-replica Required = 0.5/0.45 − 1 = 0.11 > 0... the
	// deficit gate (cpu > eps) decides: (0.5−0.5)/0.5 = 0 → no-op.
	if plan := h.Decide(snap); !plan.Empty() {
		t.Fatalf("balanced service produced actions: %+v", plan.Actions)
	}
}

func TestHyScaleSkipsUnroutableReplicas(t *testing.T) {
	h := NewHyScaleCPU(DefaultConfig())
	in := info()
	starting := rep("r1", "B", 1, 0, 512, 0)
	starting.Routable = false
	snap := hySnapshot(time.Minute, in,
		[]ReplicaStats{rep("r0", "A", 1, 1.0, 512, 300), starting},
		map[string]resources.Vector{"A": {CPU: 3, MemMB: 7000}, "B": {CPU: 3, MemMB: 7000}})
	plan := h.Decide(snap)
	if _, ok := findVertical(plan, "r1"); ok {
		t.Fatal("vertical action on a starting replica")
	}
}

// Property test: over random snapshots, HyScale plans never emit negative
// allocations, never scale out onto hosting nodes, and never remove below
// MinReplicas.
func TestQuickHyScalePlanInvariants(t *testing.T) {
	cfgs := []*HyScale{NewHyScaleCPU(DefaultConfig()), NewHyScaleCPUMem(DefaultConfig())}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := info()
		in.MinReplicas = 1 + rng.Intn(2)
		in.MaxReplicas = in.MinReplicas + rng.Intn(5)

		nReplicas := 1 + rng.Intn(5)
		var reps []ReplicaStats
		hostedNodes := make(map[string]bool)
		for i := 0; i < nReplicas; i++ {
			node := nodeName(rng.Intn(6))
			hostedNodes[node] = true
			reps = append(reps, rep(
				"r"+nodeName(i), node,
				0.1+rng.Float64()*3, rng.Float64()*3,
				256+rng.Float64()*1024, rng.Float64()*1500,
			))
		}
		nodes := make(map[string]resources.Vector)
		for i := 0; i < 6; i++ {
			nodes[nodeName(i)] = resources.Vector{
				CPU:   rng.Float64() * 4,
				MemMB: rng.Float64() * 8192,
			}
		}
		snap := hySnapshot(time.Duration(rng.Intn(3600))*time.Second, in, reps, nodes)

		for _, h := range cfgs {
			plan := h.Decide(snap)
			removals := 0
			for _, a := range plan.Actions {
				switch act := a.(type) {
				case VerticalScale:
					if !act.NewAlloc.NonNegative() {
						return false
					}
				case ScaleOut:
					if !act.Alloc.NonNegative() {
						return false
					}
					for _, r := range reps {
						if r.NodeID == act.NodeID {
							return false // scaled onto a hosting node
						}
					}
				case ScaleIn:
					removals++
				}
			}
			if nReplicas-removals < in.MinReplicas && nReplicas >= in.MinReplicas {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHyScaleNames(t *testing.T) {
	if NewHyScaleCPU(DefaultConfig()).Name() != "hybrid" {
		t.Error("hybrid name wrong")
	}
	if NewHyScaleCPUMem(DefaultConfig()).Name() != "hybridmem" {
		t.Error("hybridmem name wrong")
	}
	if NewHyScaleCPUMem(DefaultConfig()).String() != "HyScale(memAware=true)" {
		t.Error("String wrong")
	}
}
