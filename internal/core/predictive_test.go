package core

import (
	"math"
	"testing"
	"time"

	"hyscale/internal/resources"
)

// captureAlgo records the snapshot it was handed.
type captureAlgo struct{ last Snapshot }

func (c *captureAlgo) Name() string { return "capture" }
func (c *captureAlgo) Decide(s Snapshot) Plan {
	c.last = s
	return Plan{}
}

func snapWithUsage(now time.Duration, cpu float64) Snapshot {
	return Snapshot{
		Now: now,
		Services: []ServiceStats{{
			Info: info(),
			Replicas: []ReplicaStats{{
				ContainerID: "r0", NodeID: "A", Routable: true,
				Requested: resources.Vector{CPU: 1, MemMB: 512},
				Usage:     resources.Vector{CPU: cpu, MemMB: 300},
			}},
		}},
		Nodes: []NodeStats{{ID: "A", Capacity: resources.Vector{CPU: 4, MemMB: 8192},
			Available: resources.Vector{CPU: 3, MemMB: 7000}, Hosts: []string{"svc"}}},
	}
}

func TestPredictiveExtrapolatesRisingUsage(t *testing.T) {
	inner := &captureAlgo{}
	p := NewPredictive(inner, 5*time.Second)

	// First round: no history, usage passes through unchanged.
	p.Decide(snapWithUsage(5*time.Second, 1.0))
	if got := inner.last.Services[0].Replicas[0].Usage.CPU; got != 1.0 {
		t.Fatalf("first round usage = %v, want raw 1.0", got)
	}

	// Second round 5s later: usage rose 1.0 -> 1.4; horizon == dt, so the
	// wrapped algorithm sees 1.8.
	p.Decide(snapWithUsage(10*time.Second, 1.4))
	if got := inner.last.Services[0].Replicas[0].Usage.CPU; math.Abs(got-1.8) > 1e-9 {
		t.Fatalf("extrapolated usage = %v, want 1.8", got)
	}

	// Third round: usage held at 1.4. The trend must be computed from the
	// RAW previous value (1.4), not the extrapolated 1.8 — flat stays 1.4.
	p.Decide(snapWithUsage(15*time.Second, 1.4))
	if got := inner.last.Services[0].Replicas[0].Usage.CPU; math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("flat-trend usage = %v, want 1.4 (no compounding)", got)
	}
}

func TestPredictiveDampsDownwardTrend(t *testing.T) {
	inner := &captureAlgo{}
	p := NewPredictive(inner, 5*time.Second)
	p.Decide(snapWithUsage(5*time.Second, 2.0))
	p.Decide(snapWithUsage(10*time.Second, 1.0)) // fell by 1.0; follow at half
	if got := inner.last.Services[0].Replicas[0].Usage.CPU; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("down-trend usage = %v, want 0.5", got)
	}
}

func TestPredictiveNeverNegative(t *testing.T) {
	inner := &captureAlgo{}
	p := NewPredictive(inner, 30*time.Second)
	p.Decide(snapWithUsage(5*time.Second, 2.0))
	p.Decide(snapWithUsage(10*time.Second, 0.1)) // steep fall, long horizon
	if got := inner.last.Services[0].Replicas[0].Usage.CPU; got < 0 {
		t.Fatalf("usage went negative: %v", got)
	}
}

func TestPredictiveName(t *testing.T) {
	p := NewPredictive(NewHyScaleCPUMem(DefaultConfig()), 5*time.Second)
	if p.Name() != "hybridmem-predictive" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPredictiveNewReplicasPassThrough(t *testing.T) {
	inner := &captureAlgo{}
	p := NewPredictive(inner, 5*time.Second)
	p.Decide(snapWithUsage(5*time.Second, 1.0))

	// A replica with no history must pass through unmodified.
	snap := snapWithUsage(10*time.Second, 1.4)
	snap.Services[0].Replicas = append(snap.Services[0].Replicas, ReplicaStats{
		ContainerID: "r1", NodeID: "A", Routable: true,
		Requested: resources.Vector{CPU: 1, MemMB: 512},
		Usage:     resources.Vector{CPU: 0.7},
	})
	p.Decide(snap)
	if got := inner.last.Services[0].Replicas[1].Usage.CPU; got != 0.7 {
		t.Errorf("fresh replica usage = %v, want raw 0.7", got)
	}
}
