package core

import (
	"math"

	"hyscale/internal/resources"
)

// Metric selects which resource dimension a horizontal autoscaler observes.
type Metric int

// Metrics.
const (
	MetricCPU Metric = iota + 1
	MetricNet
)

// Kubernetes implements the horizontal autoscaling algorithm of §IV-A1:
//
//	util_r       = usage_r / requested_r
//	NumReplicas  = ceil( Σ util_r / Target )
//
// with the 0.1 tolerance thrash guard, min/max replica clamps, and the
// 3 s / 50 s scale-up / scale-down intervals. The same decision procedure
// parameterised on egress bandwidth is the paper's network scaling
// algorithm (§IV-A2); see NewNetworkHPA.
type Kubernetes struct {
	cfg    Config
	metric Metric
	gate   *intervalGate
	name   string
}

var _ Algorithm = (*Kubernetes)(nil)

// NewKubernetes builds the CPU-driven baseline with the paper's settings.
func NewKubernetes(cfg Config) *Kubernetes {
	return &Kubernetes{
		cfg:    cfg,
		metric: MetricCPU,
		gate:   newIntervalGate(cfg.ScaleUpInterval, cfg.ScaleDownInterval),
		name:   "kubernetes",
	}
}

// NewNetworkHPA builds the dedicated network scaling algorithm: identical
// decision procedure with outgoing bandwidth substituted for CPU usage.
func NewNetworkHPA(cfg Config) *Kubernetes {
	return &Kubernetes{
		cfg:    cfg,
		metric: MetricNet,
		gate:   newIntervalGate(cfg.ScaleUpInterval, cfg.ScaleDownInterval),
		name:   "network",
	}
}

// Name implements Algorithm.
func (k *Kubernetes) Name() string { return k.name }

// Decide implements Algorithm.
func (k *Kubernetes) Decide(snap Snapshot) Plan {
	var plan Plan
	// One availability ledger for the whole round: services planned later
	// must see the placements of services planned earlier, or they all
	// pile onto the same "emptiest" node.
	avail := availableByNode(snap)
	for _, svc := range snap.Services {
		k.decideService(snap, svc, avail, &plan)
	}
	return plan
}

func (k *Kubernetes) usage(r ReplicaStats) float64 {
	if k.metric == MetricNet {
		return r.Usage.NetMbps
	}
	return r.Usage.CPU
}

func (k *Kubernetes) requested(r ReplicaStats) float64 {
	if k.metric == MetricNet {
		return r.Requested.NetMbps
	}
	return r.Requested.CPU
}

func (k *Kubernetes) decideService(snap Snapshot, svc ServiceStats, avail map[string]resources.Vector, plan *Plan) {
	info := svc.Info
	cur := len(svc.Replicas)

	// Fault-tolerance first: enforce the replica bounds unconditionally.
	if cur < info.MinReplicas {
		k.addReplicas(snap, info, info.MinReplicas-cur, avail, plan)
		return
	}
	if cur > info.MaxReplicas {
		k.removeReplicas(svc, cur-info.MaxReplicas, plan)
		return
	}
	if cur == 0 {
		return
	}

	target := info.TargetUtil
	if target <= 0 {
		return
	}

	var utilSum, utilAvg float64
	for _, r := range svc.Replicas {
		req := k.requested(r)
		if req <= 0 {
			continue
		}
		utilSum += k.usage(r) / req
	}
	utilAvg = utilSum / float64(cur)

	// Thrash guard: skip rescaling inside the tolerance band.
	if math.Abs(utilAvg/target-1) <= k.cfg.Tolerance {
		return
	}

	want := int(math.Ceil(utilSum / target))
	if want < info.MinReplicas {
		want = info.MinReplicas
	}
	if want > info.MaxReplicas {
		want = info.MaxReplicas
	}

	switch {
	case want > cur:
		if !k.gate.canUp(info.Name, snap.Now) {
			return
		}
		if k.addReplicas(snap, info, want-cur, avail, plan) > 0 {
			k.gate.markUp(info.Name, snap.Now)
		}
	case want < cur:
		if !k.gate.canDown(info.Name, snap.Now) {
			return
		}
		k.removeReplicas(svc, cur-want, plan)
		k.gate.markDown(info.Name, snap.Now)
	}
}

// addReplicas schedules up to n new replicas onto nodes chosen by the
// configured placement heuristic, decrementing the shared availability
// ledger. It returns how many were placed; placement can fall short when no
// node fits the initial request.
func (k *Kubernetes) addReplicas(snap Snapshot, info ServiceInfo, n int, avail map[string]resources.Vector, plan *Plan) int {
	placed := 0
	for i := 0; i < n; i++ {
		nodeID := pickNode(snap.Nodes, avail, info.InitialAlloc, "", k.cfg.Placement)
		if nodeID == "" {
			break
		}
		plan.Actions = append(plan.Actions, ScaleOut{Service: info.Name, NodeID: nodeID, Alloc: info.InitialAlloc})
		avail[nodeID] = avail[nodeID].Sub(info.InitialAlloc).ClampNonNegative()
		placed++
	}
	return placed
}

// removeReplicas schedules the n newest replicas for removal (the oldest
// replicas are the most established; removing the newest minimises churn).
func (k *Kubernetes) removeReplicas(svc ServiceStats, n int, plan *Plan) {
	for i := 0; i < n && i < len(svc.Replicas); i++ {
		victim := svc.Replicas[len(svc.Replicas)-1-i]
		plan.Actions = append(plan.Actions, ScaleIn{ContainerID: victim.ContainerID})
	}
}

// AvailableByNode copies the advertised availability into a working map a
// planner can decrement as it tentatively places replicas. External
// algorithm packages (internal/scalermgr) share this ledger shape so their
// placements compose with the heuristics here.
func AvailableByNode(snap Snapshot) map[string]resources.Vector {
	return availableByNode(snap)
}

// PickNodeFor exposes the shared placement heuristic: the best node that
// fits alloc under the given placement policy, decrementable via the avail
// ledger. Empty string means nothing fits.
func PickNodeFor(nodes []NodeStats, avail map[string]resources.Vector, alloc resources.Vector,
	excludeService string, placement Placement) string {
	return pickNode(nodes, avail, alloc, excludeService, placement)
}

// availableByNode copies the advertised availability into a working map the
// planner can decrement as it tentatively places replicas.
func availableByNode(snap Snapshot) map[string]resources.Vector {
	m := make(map[string]resources.Vector, len(snap.Nodes))
	for _, n := range snap.Nodes {
		m[n.ID] = n.Available
	}
	return m
}

// pickNode returns the ID of the best node that fits alloc under the given
// placement heuristic, optionally excluding nodes already hosting
// excludeService. Empty string means nothing fits.
func pickNode(nodes []NodeStats, avail map[string]resources.Vector, alloc resources.Vector,
	excludeService string, placement Placement) string {

	best := ""
	bestCPU := 0.0
	for _, n := range nodes {
		if excludeService != "" && n.HostsService(excludeService) {
			continue
		}
		a := avail[n.ID]
		if !alloc.FitsIn(a) {
			continue
		}
		better := best == "" ||
			(placement == PlacementBinPack && a.CPU < bestCPU) ||
			(placement != PlacementBinPack && a.CPU > bestCPU)
		if better {
			bestCPU = a.CPU
			best = n.ID
		}
	}
	return best
}
