package core

import "fmt"

// Placement selects how planners choose nodes for new replicas. The paper
// frames scaling as a multidimensional bin-packing problem (§I); these are
// the two classic heuristics for it.
type Placement int

// Placement strategies.
const (
	// PlacementSpread picks the node with the MOST available CPU — the
	// Kubernetes-like default that spreads load and minimises co-location
	// contention.
	PlacementSpread Placement = iota
	// PlacementBinPack picks the fullest node that still fits — packing
	// replicas onto fewer machines so idle nodes can be reclaimed (the
	// power-saving goal of §I).
	PlacementBinPack
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlacementBinPack:
		return "binpack"
	default:
		return "spread"
	}
}

// HyScaleOptions disables individual mechanisms of the hybrid algorithms
// for ablation studies (DESIGN.md §7): each flag removes one design choice
// so its contribution can be measured in isolation.
type HyScaleOptions struct {
	// DisableReclamation skips the downward vertical scaling phase
	// (§IV-B1's resource reclamation). Replicas only ever grow.
	DisableReclamation bool
	// DisableVertical skips all vertical scaling; the algorithm degrades to
	// a horizontal-only scaler with HyScale's placement rules.
	DisableVertical bool
	// DisableHorizontal skips the horizontal fallback; the algorithm only
	// resizes existing replicas (an ElasticDocker-like vertical scaler).
	DisableHorizontal bool
}

// Validate rejects contradictory combinations.
func (o HyScaleOptions) Validate() error {
	if o.DisableVertical && o.DisableHorizontal {
		return fmt.Errorf("core: ablation disables both vertical and horizontal scaling")
	}
	return nil
}

// suffix returns the ablation tag appended to the algorithm name.
func (o HyScaleOptions) suffix() string {
	switch {
	case o.DisableReclamation && !o.DisableVertical && !o.DisableHorizontal:
		return "-noreclaim"
	case o.DisableVertical:
		return "-horizontal-only"
	case o.DisableHorizontal:
		return "-vertical-only"
	default:
		return ""
	}
}

// NewHyScaleVariant builds an ablated hybrid algorithm. memAware selects
// HYSCALE_CPU+Mem vs HYSCALE_CPU semantics.
func NewHyScaleVariant(cfg Config, memAware bool, opts HyScaleOptions) (*HyScale, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var h *HyScale
	if memAware {
		h = NewHyScaleCPUMem(cfg)
	} else {
		h = NewHyScaleCPU(cfg)
	}
	h.opts = opts
	h.name += opts.suffix()
	return h, nil
}
