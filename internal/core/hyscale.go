package core

import (
	"fmt"

	"hyscale/internal/resources"
)

// HyScale implements the paper's hybrid autoscaling algorithms (§IV-B).
//
// Per decision round it: (1) enforces the min/max replica bounds for fault
// tolerance, (2) computes each service's missing resources
//
//	Missing_m = (Σ usage_r − Σ requested_r · Target) / Target
//
// (3) runs the reclamation phase — vertically scaling down over-provisioned
// replicas to usage/(Target·0.9) and removing replicas whose allocation
// falls below the minimum thresholds — and (4) runs the acquisition phase —
// vertically scaling starved replicas up by
//
//	Acquired_r = min( usage_r/(Target·0.9) − requested_r , Available_node )
//
// falling back to horizontal scale-out onto nodes that do not already host
// the service and advertise at least the service's baseline memory and the
// minimum CPU (0.25). Horizontal actions respect the rescale intervals;
// vertical actions are exempt (§IV-B1).
//
// With memAware=false this is HYSCALE_CPU; with memAware=true it is
// HYSCALE_CPU+Mem, which applies the same equations to memory and requires
// the CPU and memory removal/addition thresholds to be met mutually.
type HyScale struct {
	cfg      Config
	memAware bool
	gate     *intervalGate
	name     string
	opts     HyScaleOptions
}

var _ Algorithm = (*HyScale)(nil)

// NewHyScaleCPU builds HYSCALE_CPU (§IV-B1).
func NewHyScaleCPU(cfg Config) *HyScale {
	return &HyScale{
		cfg:  cfg,
		gate: newIntervalGate(cfg.ScaleUpInterval, cfg.ScaleDownInterval),
		name: "hybrid",
	}
}

// NewHyScaleCPUMem builds HYSCALE_CPU+Mem (§IV-B2).
func NewHyScaleCPUMem(cfg Config) *HyScale {
	return &HyScale{
		cfg:      cfg,
		memAware: true,
		gate:     newIntervalGate(cfg.ScaleUpInterval, cfg.ScaleDownInterval),
		name:     "hybridmem",
	}
}

// Name implements Algorithm.
func (h *HyScale) Name() string { return h.name }

// missing tracks a service's outstanding resource deficit (positive) or
// surplus (negative) during one decision round.
type missing struct {
	cpu float64
	mem float64
}

// pendingAllocs tracks in-round vertical adjustments so the reclamation and
// acquisition phases compose instead of overwriting each other with stale
// snapshot values. One merged VerticalScale per touched container is emitted
// at the end of the round.
type pendingAllocs struct {
	allocs map[string]resources.Vector
	order  []string
}

func newPendingAllocs() *pendingAllocs {
	return &pendingAllocs{allocs: make(map[string]resources.Vector)}
}

// current returns the replica's allocation as adjusted so far this round.
func (p *pendingAllocs) current(r ReplicaStats) resources.Vector {
	if a, ok := p.allocs[r.ContainerID]; ok {
		return a
	}
	return r.Requested
}

// set records an adjusted allocation.
func (p *pendingAllocs) set(id string, a resources.Vector) {
	if _, seen := p.allocs[id]; !seen {
		p.order = append(p.order, id)
	}
	p.allocs[id] = a
}

// emit appends one merged VerticalScale per touched container.
func (p *pendingAllocs) emit(plan *Plan, removed map[string]bool) {
	for _, id := range p.order {
		if removed[id] {
			continue
		}
		plan.Actions = append(plan.Actions, VerticalScale{ContainerID: id, NewAlloc: p.allocs[id]})
	}
}

// Decide implements Algorithm.
func (h *HyScale) Decide(snap Snapshot) Plan {
	var plan Plan
	avail := availableByNode(snap)
	// hosted tracks service→nodes placement including tentative scale-outs
	// made during this round.
	hosted := make(map[string]map[string]bool)
	for _, n := range snap.Nodes {
		for _, s := range n.Hosts {
			if hosted[s] == nil {
				hosted[s] = make(map[string]bool)
			}
			hosted[s][n.ID] = true
		}
	}
	// removed tracks containers scheduled for ScaleIn so later phases do not
	// also emit vertical actions for them.
	removed := make(map[string]bool)
	// replicaCount tracks tentative replica counts.
	replicaCount := make(map[string]int, len(snap.Services))

	deficits := make(map[string]*missing, len(snap.Services))
	for _, svc := range snap.Services {
		replicaCount[svc.Info.Name] = len(svc.Replicas)
		deficits[svc.Info.Name] = h.deficitOf(svc)
	}

	// Phase 0: fault-tolerance bounds.
	for _, svc := range snap.Services {
		h.enforceBounds(snap, svc, avail, hosted, removed, replicaCount, &plan)
	}

	pending := newPendingAllocs()

	// Phase 1: reclamation frees resources on every node before anyone
	// tries to acquire them.
	for _, svc := range snap.Services {
		h.reclaim(snap, svc, deficits[svc.Info.Name], avail, removed, replicaCount, pending, &plan)
	}

	// Phase 2: acquisition — vertical first, horizontal as a fallback.
	for _, svc := range snap.Services {
		h.acquire(snap, svc, deficits[svc.Info.Name], avail, hosted, removed, replicaCount, pending, &plan)
	}

	pending.emit(&plan, removed)
	return plan
}

// deficitOf computes Missing_m for CPU (and memory when memory-aware).
func (h *HyScale) deficitOf(svc ServiceStats) *missing {
	t := svc.Info.TargetUtil
	if t <= 0 {
		return &missing{}
	}
	var usageCPU, reqCPU, usageMem, reqMem float64
	for _, r := range svc.Replicas {
		usageCPU += r.Usage.CPU
		reqCPU += r.Requested.CPU
		usageMem += r.Usage.MemMB
		reqMem += r.Requested.MemMB
	}
	d := &missing{cpu: (usageCPU - reqCPU*t) / t}
	if h.memAware {
		d.mem = (usageMem - reqMem*t) / t
	}
	return d
}

// enforceBounds starts replicas below MinReplicas and removes replicas above
// MaxReplicas, bypassing the rescale gates (availability first).
func (h *HyScale) enforceBounds(snap Snapshot, svc ServiceStats, avail map[string]resources.Vector,
	hosted map[string]map[string]bool, removed map[string]bool, replicaCount map[string]int, plan *Plan) {

	info := svc.Info
	for replicaCount[info.Name] < info.MinReplicas {
		nodeID := h.pickScaleOutNode(snap, info, avail, hosted)
		if nodeID == "" {
			return
		}
		h.emitScaleOut(info, nodeID, info.InitialAlloc, avail, hosted, replicaCount, plan)
	}
	for i := len(svc.Replicas) - 1; i >= 0 && replicaCount[info.Name] > info.MaxReplicas; i-- {
		r := svc.Replicas[i]
		if removed[r.ContainerID] {
			continue
		}
		h.emitScaleIn(info.Name, r, avail, removed, replicaCount, plan)
	}
}

// reclaim performs downward vertical scaling on over-provisioned services
// and removes replicas that shrink below the minimum thresholds.
func (h *HyScale) reclaim(snap Snapshot, svc ServiceStats, def *missing, avail map[string]resources.Vector,
	removed map[string]bool, replicaCount map[string]int, pending *pendingAllocs, plan *Plan) {

	info := svc.Info
	t := info.TargetUtil
	if t <= 0 {
		return
	}
	if h.opts.DisableReclamation {
		return
	}
	reclaimCPU := def.cpu < 0
	reclaimMem := h.memAware && def.mem < 0
	if !reclaimCPU && !reclaimMem {
		return
	}
	// The horizontal-only ablation may still remove idle replicas but must
	// not resize them.
	resizeAllowed := !h.opts.DisableVertical

	for _, r := range svc.Replicas {
		if removed[r.ContainerID] || !r.Routable {
			continue
		}
		cur := pending.current(r)
		newAlloc := cur

		// Desired requests at 90 % of target so the replica keeps headroom.
		wantCPU := r.Usage.CPU / (t * 0.9)
		wantMem := r.Usage.MemMB / (t * 0.9)

		cpuIdle := wantCPU < h.cfg.MinReplicaCPU
		// Memory-idle looks at the transient footprint above the
		// application baseline: the baseline itself is resident in every
		// replica and says nothing about load.
		activeMem := maxf(r.Usage.MemMB-info.BaselineMemMB, 0)
		memIdle := activeMem/(t*0.9) < info.BaselineMemMB*h.cfg.MemHeadroom

		// Removal: the CPU threshold alone decides for HYSCALE_CPU; the
		// CPU and memory conditions must hold mutually for HYSCALE_CPU+Mem
		// (§IV-B2).
		// Replica removal is a horizontal action and honours the rescale
		// interval like every other horizontal action (§IV-B1's thrash
		// throttle); vertical reclamation below stays exempt.
		removable := cpuIdle && (!h.memAware || memIdle)
		if removable && replicaCount[info.Name] > info.MinReplicas && def.cpu < 0 &&
			h.gate.canDown(info.Name, snap.Now) {
			h.emitScaleIn(info.Name, r, avail, removed, replicaCount, plan)
			h.gate.markDown(info.Name, snap.Now)
			def.cpu += cur.CPU
			if h.memAware {
				def.mem += cur.MemMB
			}
			continue
		}

		if !resizeAllowed {
			continue
		}
		changed := false
		if reclaimCPU && wantCPU < cur.CPU {
			// ReclaimableCPUs_r = requested_r − usage_r/(Target·0.9).
			reclaimable := cur.CPU - wantCPU
			newAlloc.CPU = cur.CPU - reclaimable
			def.cpu += reclaimable
			changed = true
		}
		if reclaimMem {
			// Never reclaim below the application baseline: the replica
			// would immediately swap.
			floor := info.BaselineMemMB * (1 + h.cfg.MemHeadroom)
			wantMemClamped := maxf(wantMem, floor)
			if wantMemClamped < cur.MemMB {
				reclaimable := cur.MemMB - wantMemClamped
				newAlloc.MemMB = cur.MemMB - reclaimable
				def.mem += reclaimable
				changed = true
			}
		}
		if changed {
			freed := cur.Sub(newAlloc).ClampNonNegative()
			avail[r.NodeID] = avail[r.NodeID].Add(freed)
			pending.set(r.ContainerID, newAlloc)
		}
	}
}

// acquire vertically scales starved replicas up using node headroom and
// falls back to horizontal scale-out for whatever deficit remains.
func (h *HyScale) acquire(snap Snapshot, svc ServiceStats, def *missing, avail map[string]resources.Vector,
	hosted map[string]map[string]bool, removed map[string]bool, replicaCount map[string]int,
	pending *pendingAllocs, plan *Plan) {

	info := svc.Info
	t := info.TargetUtil
	if t <= 0 {
		return
	}
	const eps = 0.01
	needCPU := def.cpu > eps
	needMem := h.memAware && def.mem > eps
	if !needCPU && !needMem {
		return
	}

	for _, r := range svc.Replicas {
		if h.opts.DisableVertical {
			break
		}
		if removed[r.ContainerID] || !r.Routable {
			continue
		}
		a := avail[r.NodeID]
		cur := pending.current(r)
		newAlloc := cur
		changed := false

		if needCPU {
			// AcquiredCPUs_r = min(RequiredCPUs_r, AvailableCPUs_n).
			required := r.Usage.CPU/(t*0.9) - cur.CPU
			if required > 0 {
				acquired := minf(required, a.CPU)
				if acquired > 0 {
					newAlloc.CPU += acquired
					a.CPU -= acquired
					def.cpu -= acquired
					changed = true
				}
			}
		}
		if needMem {
			required := r.Usage.MemMB/(t*0.9) - cur.MemMB
			if required > 0 {
				acquired := minf(required, a.MemMB)
				if acquired > 0 {
					newAlloc.MemMB += acquired
					a.MemMB -= acquired
					def.mem -= acquired
					changed = true
				}
			}
		}
		if changed {
			avail[r.NodeID] = a
			pending.set(r.ContainerID, newAlloc)
		}
	}

	// Horizontal fallback for the remaining deficit, throttled by the
	// scale-up interval.
	if h.opts.DisableHorizontal {
		return
	}
	if def.cpu <= eps && (!h.memAware || def.mem <= eps) {
		return
	}
	if !h.gate.canUp(info.Name, snap.Now) {
		return
	}
	placedAny := false
	for (def.cpu > eps || (h.memAware && def.mem > eps)) && replicaCount[info.Name] < info.MaxReplicas {
		nodeID := h.pickScaleOutNode(snap, info, avail, hosted)
		if nodeID == "" {
			break
		}
		a := avail[nodeID]
		allocCPU := maxf(def.cpu, h.cfg.MinScaleOutCPU)
		allocCPU = minf(allocCPU, a.CPU)
		allocMem := info.InitialAlloc.MemMB
		if h.memAware {
			allocMem = maxf(allocMem, info.BaselineMemMB*(1+h.cfg.MemHeadroom)+maxf(def.mem, 0))
		}
		allocMem = minf(allocMem, a.MemMB)
		alloc := resources.Vector{CPU: allocCPU, MemMB: allocMem, NetMbps: info.InitialAlloc.NetMbps}
		h.emitScaleOut(info, nodeID, alloc, avail, hosted, replicaCount, plan)
		def.cpu -= allocCPU
		if h.memAware {
			def.mem -= allocMem - info.BaselineMemMB
		}
		placedAny = true
	}
	if placedAny {
		h.gate.markUp(info.Name, snap.Now)
	}
}

// pickScaleOutNode selects the node with the most available CPU that (a)
// does not already host the service and (b) advertises at least the
// service's baseline memory and the minimum scale-out CPU (§IV-B1).
func (h *HyScale) pickScaleOutNode(snap Snapshot, info ServiceInfo, avail map[string]resources.Vector,
	hosted map[string]map[string]bool) string {

	need := resources.Vector{CPU: h.cfg.MinScaleOutCPU, MemMB: maxf(info.BaselineMemMB, info.InitialAlloc.MemMB)}
	best := ""
	bestCPU := 0.0
	for _, n := range snap.Nodes {
		if hosted[info.Name][n.ID] {
			continue
		}
		a := avail[n.ID]
		if !need.FitsIn(a) {
			continue
		}
		better := best == "" ||
			(h.cfg.Placement == PlacementBinPack && a.CPU < bestCPU) ||
			(h.cfg.Placement != PlacementBinPack && a.CPU > bestCPU)
		if better {
			bestCPU = a.CPU
			best = n.ID
		}
	}
	return best
}

func (h *HyScale) emitScaleOut(info ServiceInfo, nodeID string, alloc resources.Vector,
	avail map[string]resources.Vector, hosted map[string]map[string]bool, replicaCount map[string]int, plan *Plan) {

	plan.Actions = append(plan.Actions, ScaleOut{Service: info.Name, NodeID: nodeID, Alloc: alloc})
	avail[nodeID] = avail[nodeID].Sub(alloc).ClampNonNegative()
	if hosted[info.Name] == nil {
		hosted[info.Name] = make(map[string]bool)
	}
	hosted[info.Name][nodeID] = true
	replicaCount[info.Name]++
}

func (h *HyScale) emitScaleIn(service string, r ReplicaStats, avail map[string]resources.Vector,
	removed map[string]bool, replicaCount map[string]int, plan *Plan) {

	plan.Actions = append(plan.Actions, ScaleIn{ContainerID: r.ContainerID})
	removed[r.ContainerID] = true
	avail[r.NodeID] = avail[r.NodeID].Add(r.Requested)
	replicaCount[service]--
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String implements fmt.Stringer for debugging.
func (h *HyScale) String() string {
	return fmt.Sprintf("HyScale(memAware=%v)", h.memAware)
}
