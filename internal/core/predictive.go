package core

import (
	"time"
)

// Predictive wraps an Algorithm with short-horizon demand extrapolation —
// the "machine learning aspect" the paper lists as future work (§VII), in
// its simplest defensible form: per-replica usage is linearly extrapolated
// one horizon ahead from the last two snapshots, so the wrapped algorithm
// provisions for where demand is *heading* rather than where it *was*.
// Downward trends are followed at half strength to avoid amplifying noise
// into scale-down thrash.
type Predictive struct {
	inner Algorithm
	// Horizon is how far ahead usage is extrapolated; defaults to the
	// monitor period when zero (set it to your decision interval).
	Horizon time.Duration

	prev     map[string]ReplicaStats
	prevTime time.Duration
}

var _ Algorithm = (*Predictive)(nil)

// NewPredictive wraps inner with linear usage extrapolation over horizon.
func NewPredictive(inner Algorithm, horizon time.Duration) *Predictive {
	return &Predictive{inner: inner, Horizon: horizon, prev: make(map[string]ReplicaStats)}
}

// Name implements Algorithm.
func (p *Predictive) Name() string { return p.inner.Name() + "-predictive" }

// Decide implements Algorithm: it rewrites every replica's usage to the
// extrapolated value, then delegates.
func (p *Predictive) Decide(snap Snapshot) Plan {
	// Capture the RAW observations first — extrapolating from previous
	// extrapolations would compound the trend.
	raw := make(map[string]ReplicaStats)
	for _, svc := range snap.Services {
		for _, r := range svc.Replicas {
			raw[r.ContainerID] = r
		}
	}

	dt := snap.Now - p.prevTime
	if dt > 0 && len(p.prev) > 0 && p.Horizon > 0 {
		scale := float64(p.Horizon) / float64(dt)
		for si := range snap.Services {
			svc := &snap.Services[si]
			for ri := range svc.Replicas {
				r := &svc.Replicas[ri]
				old, ok := p.prev[r.ContainerID]
				if !ok {
					continue
				}
				r.Usage.CPU = extrapolate(old.Usage.CPU, r.Usage.CPU, scale)
				r.Usage.MemMB = extrapolate(old.Usage.MemMB, r.Usage.MemMB, scale)
				r.Usage.NetMbps = extrapolate(old.Usage.NetMbps, r.Usage.NetMbps, scale)
			}
		}
	}

	p.prev = raw
	p.prevTime = snap.Now

	return p.inner.Decide(snap)
}

// extrapolate projects a linear trend `scale` intervals ahead, never below
// zero. Downward trends are followed at half strength.
func extrapolate(old, cur, scale float64) float64 {
	delta := cur - old
	if delta < 0 {
		delta /= 2
	}
	v := cur + delta*scale
	if v < 0 {
		return 0
	}
	return v
}
