package core

import (
	"strings"
	"testing"
	"time"

	"hyscale/internal/resources"
)

func TestHyScaleOptionsValidate(t *testing.T) {
	if err := (HyScaleOptions{}).Validate(); err != nil {
		t.Error("empty options rejected")
	}
	bad := HyScaleOptions{DisableVertical: true, DisableHorizontal: true}
	if err := bad.Validate(); err == nil {
		t.Error("contradictory options accepted")
	}
	if _, err := NewHyScaleVariant(DefaultConfig(), true, bad); err == nil {
		t.Error("NewHyScaleVariant accepted contradictory options")
	}
}

func TestVariantNames(t *testing.T) {
	tests := []struct {
		opts HyScaleOptions
		want string
	}{
		{HyScaleOptions{}, "hybridmem"},
		{HyScaleOptions{DisableReclamation: true}, "hybridmem-noreclaim"},
		{HyScaleOptions{DisableVertical: true}, "hybridmem-horizontal-only"},
		{HyScaleOptions{DisableHorizontal: true}, "hybridmem-vertical-only"},
	}
	for _, tt := range tests {
		h, err := NewHyScaleVariant(DefaultConfig(), true, tt.opts)
		if err != nil {
			t.Fatal(err)
		}
		if h.Name() != tt.want {
			t.Errorf("name = %q, want %q", h.Name(), tt.want)
		}
	}
	h, _ := NewHyScaleVariant(DefaultConfig(), false, HyScaleOptions{})
	if h.Name() != "hybrid" {
		t.Errorf("cpu variant name = %q", h.Name())
	}
}

func TestNoReclaimVariantNeverScalesDown(t *testing.T) {
	h, _ := NewHyScaleVariant(DefaultConfig(), false, HyScaleOptions{DisableReclamation: true})
	// Heavily over-provisioned: the stock algorithm would reclaim.
	snap := hySnapshot(time.Minute, info(),
		[]ReplicaStats{rep("r0", "A", 3, 0.2, 512, 300)},
		map[string]resources.Vector{"A": {CPU: 1, MemMB: 7000}})
	plan := h.Decide(snap)
	for _, a := range plan.Actions {
		if v, ok := a.(VerticalScale); ok && v.NewAlloc.CPU < 3 {
			t.Errorf("noreclaim variant reclaimed CPU: %+v", v)
		}
		if _, ok := a.(ScaleIn); ok {
			t.Error("noreclaim variant removed a replica")
		}
	}
}

func TestHorizontalOnlyVariantNeverResizes(t *testing.T) {
	h, _ := NewHyScaleVariant(DefaultConfig(), false, HyScaleOptions{DisableVertical: true})
	// Starved: the stock algorithm would scale r0 vertically.
	snap := hySnapshot(time.Minute, info(),
		[]ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)},
		map[string]resources.Vector{
			"A": {CPU: 3, MemMB: 7000},
			"B": {CPU: 4, MemMB: 8000},
		})
	plan := h.Decide(snap)
	outs := 0
	for _, a := range plan.Actions {
		switch a.(type) {
		case VerticalScale:
			t.Errorf("horizontal-only variant resized: %+v", a)
		case ScaleOut:
			outs++
		}
	}
	if outs == 0 {
		t.Error("horizontal-only variant did not scale out under deficit")
	}
}

func TestVerticalOnlyVariantNeverScalesOut(t *testing.T) {
	h, _ := NewHyScaleVariant(DefaultConfig(), false, HyScaleOptions{DisableHorizontal: true})
	// Node A full: stock algorithm would fall back to horizontal on B.
	snap := hySnapshot(time.Minute, info(),
		[]ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)},
		map[string]resources.Vector{
			"A": {CPU: 0, MemMB: 7000},
			"B": {CPU: 4, MemMB: 8000},
		})
	plan := h.Decide(snap)
	for _, a := range plan.Actions {
		if _, ok := a.(ScaleOut); ok {
			t.Errorf("vertical-only variant scaled out: %+v", a)
		}
	}
}

func TestPlacementString(t *testing.T) {
	if PlacementSpread.String() != "spread" || PlacementBinPack.String() != "binpack" {
		t.Error("placement strings wrong")
	}
}

func TestBinPackPlacementPicksFullestNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlacementBinPack
	k := NewKubernetes(cfg)
	snap := makeSnapshot(time.Minute, info(), []float64{1.5})
	// Node H nearly full but still fits; spread would pick an empty node.
	snap.Nodes[7].Available = resources.Vector{CPU: 1.2, MemMB: 600, NetMbps: 900}
	plan := k.Decide(snap)
	if len(plan.Actions) == 0 {
		t.Fatal("no actions")
	}
	if so, ok := plan.Actions[0].(ScaleOut); !ok || so.NodeID != "H" {
		t.Errorf("binpack placed on %+v, want the fullest fitting node H", plan.Actions[0])
	}
}

func TestBinPackSkipsNodesThatDoNotFit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlacementBinPack
	k := NewKubernetes(cfg)
	snap := makeSnapshot(time.Minute, info(), []float64{1.5})
	snap.Nodes[7].Available = resources.Vector{CPU: 0.5, MemMB: 100} // fullest but too small
	plan := k.Decide(snap)
	for _, a := range plan.Actions {
		if so, ok := a.(ScaleOut); ok && so.NodeID == "H" {
			t.Error("binpack placed on a node that does not fit")
		}
	}
}

func TestHyScaleBinPackPlacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlacementBinPack
	h, _ := NewHyScaleVariant(cfg, false, HyScaleOptions{})
	snap := hySnapshot(time.Minute, info(),
		[]ReplicaStats{rep("r0", "A", 1, 2.0, 512, 300)},
		map[string]resources.Vector{
			"A": {CPU: 0, MemMB: 7000},
			"B": {CPU: 4, MemMB: 8000},
			"C": {CPU: 1, MemMB: 8000}, // fullest fitting candidate
		})
	plan := h.Decide(snap)
	var outs []string
	for _, a := range plan.Actions {
		if so, ok := a.(ScaleOut); ok {
			outs = append(outs, so.NodeID)
		}
	}
	if len(outs) == 0 {
		t.Fatalf("no scale-out: %+v", plan.Actions)
	}
	// Binpack fills the fullest fitting node first; the residual deficit
	// may then spill onto emptier nodes.
	if outs[0] != "C" {
		t.Errorf("first binpack scale-out on %s, want C (fullest fitting)", outs[0])
	}
	if !strings.Contains(h.String(), "HyScale") {
		t.Error("String wrong")
	}
}
