// Package core contains the paper's primary contribution: the autoscaling
// algorithms. It defines the algorithm interface — a pure decision function
// from a cluster snapshot to a scaling plan — and four implementations:
//
//   - Kubernetes: the horizontal CPU autoscaler of §IV-A1 (the baseline),
//   - NetworkHPA: the dedicated horizontal network scaler of §IV-A2,
//   - HyScaleCPU: the hybrid vertical+horizontal CPU algorithm of §IV-B1,
//   - HyScaleCPUMem: the CPU+memory hybrid of §IV-B2.
//
// Algorithms are deliberately decoupled from the simulator: they see only
// usage/requested statistics (what `docker stats` and the node managers
// provide) and emit actions (`docker update`, start replica, remove
// replica), so the same code could drive a real Docker cluster.
package core

import (
	"time"

	"hyscale/internal/resources"
)

// ServiceInfo is the static, per-microservice configuration an algorithm
// needs: identity, replica bounds, the utilization target, and the envelope
// for fresh replicas.
type ServiceInfo struct {
	// Name identifies the microservice.
	Name string
	// MinReplicas and MaxReplicas bound horizontal scaling.
	MinReplicas int
	MaxReplicas int
	// TargetUtil is the utilization target as a fraction (0.5 == 50 %),
	// applied to whichever metric the algorithm scales on.
	TargetUtil float64
	// BaselineMemMB is the service's resident application/image memory; a
	// node must advertise at least this much for a new replica (§IV-B1).
	BaselineMemMB float64
	// InitialAlloc is the resource request a fresh replica starts with.
	InitialAlloc resources.Vector
}

// ReplicaStats is one replica's observed state at snapshot time.
type ReplicaStats struct {
	// ContainerID identifies the replica's container.
	ContainerID string
	// NodeID is the hosting machine.
	NodeID string
	// Requested is the replica's current resource allocation (CPU request /
	// memory limit / tc cap). Vertical scaling rewrites it.
	Requested resources.Vector
	// Usage is the measured consumption over the last stats window.
	Usage resources.Vector
	// Routable reports whether the replica is Running (not still starting).
	Routable bool
	// Inflight is the number of requests resident in the replica (queued plus
	// executing) at snapshot time — the queue-depth signal multi-metric
	// scalers read.
	Inflight int
}

// ServiceStats couples a service's configuration with its live replicas,
// listed in creation order (oldest first).
type ServiceStats struct {
	Info     ServiceInfo
	Replicas []ReplicaStats
}

// NodeStats is one machine's advertised state at snapshot time.
type NodeStats struct {
	// ID identifies the node.
	ID string
	// Capacity is the machine's total resources.
	Capacity resources.Vector
	// Available is capacity minus current allocations (what the node
	// "advertises" for placement).
	Available resources.Vector
	// Hosts lists the services with a replica on this node.
	Hosts []string
}

// HostsService reports whether the node already hosts a replica of the
// service.
func (n NodeStats) HostsService(service string) bool {
	for _, s := range n.Hosts {
		if s == service {
			return true
		}
	}
	return false
}

// Snapshot is the Monitor's cluster-wide view handed to an algorithm each
// decision period.
type Snapshot struct {
	// Now is the simulated time of the snapshot.
	Now time.Duration
	// Services holds per-service stats in deterministic order.
	Services []ServiceStats
	// Nodes holds per-node stats in deterministic order.
	Nodes []NodeStats
}

// Action is one scaling decision. Exactly one of the concrete types below.
type Action interface{ isAction() }

// VerticalScale adjusts a container's allocation in place — the simulated
// `docker update`. Vertical actions are exempt from rescale-interval
// throttling (§IV-B1).
type VerticalScale struct {
	ContainerID string
	// NewAlloc replaces the container's requested resources.
	NewAlloc resources.Vector
}

// ScaleOut starts a new replica of Service on Node with the given initial
// allocation.
type ScaleOut struct {
	Service string
	NodeID  string
	Alloc   resources.Vector
}

// ScaleIn removes the container (killing its in-flight requests).
type ScaleIn struct {
	ContainerID string
}

func (VerticalScale) isAction() {}
func (ScaleOut) isAction()      {}
func (ScaleIn) isAction()       {}

// Plan is an ordered list of actions; the Monitor applies them in order so
// resources freed early in the plan can be consumed later in it.
type Plan struct {
	Actions []Action
}

// Empty reports whether the plan does nothing.
func (p Plan) Empty() bool { return len(p.Actions) == 0 }

// Algorithm turns cluster snapshots into scaling plans. Implementations may
// keep internal state (rescale-interval clocks) but must be deterministic
// given the same snapshot sequence.
type Algorithm interface {
	// Name returns a short identifier used in reports ("kubernetes",
	// "hybrid", "hybridmem", "network").
	Name() string
	// Decide computes the scaling plan for the snapshot.
	Decide(snap Snapshot) Plan
}

// Config holds the knobs shared by the algorithms, preloaded with the
// paper's experimental settings.
type Config struct {
	// ScaleUpInterval is the minimum time between horizontal scale-up
	// operations per service (paper: 3 s).
	ScaleUpInterval time.Duration
	// ScaleDownInterval is the minimum time between horizontal scale-down
	// operations per service (paper: 50 s).
	ScaleDownInterval time.Duration
	// Tolerance is Kubernetes' thrash guard: no rescale while
	// |avg(util)/target − 1| <= Tolerance (paper: 0.1).
	Tolerance float64
	// MinReplicaCPU is HyScale's vertical-removal threshold: a replica
	// scaled below this many CPUs is removed entirely (paper: 0.1).
	MinReplicaCPU float64
	// MinScaleOutCPU is the minimum CPU a node must advertise — and a new
	// replica receives — for a HyScale horizontal scale-out (paper: 0.25).
	MinScaleOutCPU float64
	// MemHeadroom derates the memory-removal threshold: a replica whose
	// memory request has been reclaimed to below baseline·(1+MemHeadroom)
	// is considered memory-idle.
	MemHeadroom float64
	// Placement selects the node-choice heuristic for new replicas
	// (spread, the default, or binpack).
	Placement Placement
}

// DefaultConfig returns the paper's experimental settings.
func DefaultConfig() Config {
	return Config{
		ScaleUpInterval:   3 * time.Second,
		ScaleDownInterval: 50 * time.Second,
		Tolerance:         0.1,
		MinReplicaCPU:     0.1,
		MinScaleOutCPU:    0.25,
		MemHeadroom:       0.10,
	}
}

// intervalGate tracks per-service horizontal rescale throttling.
type intervalGate struct {
	lastUp   map[string]time.Duration
	lastDown map[string]time.Duration
	upEvery  time.Duration
	dnEvery  time.Duration
}

func newIntervalGate(up, down time.Duration) *intervalGate {
	return &intervalGate{
		lastUp:   make(map[string]time.Duration),
		lastDown: make(map[string]time.Duration),
		upEvery:  up,
		dnEvery:  down,
	}
}

// canUp reports whether a horizontal scale-up is allowed for the service.
func (g *intervalGate) canUp(service string, now time.Duration) bool {
	last, seen := g.lastUp[service]
	return !seen || now-last >= g.upEvery
}

// canDown reports whether a horizontal scale-down is allowed.
func (g *intervalGate) canDown(service string, now time.Duration) bool {
	last, seen := g.lastDown[service]
	return !seen || now-last >= g.dnEvery
}

func (g *intervalGate) markUp(service string, now time.Duration)   { g.lastUp[service] = now }
func (g *intervalGate) markDown(service string, now time.Duration) { g.lastDown[service] = now }
