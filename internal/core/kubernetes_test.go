package core

import (
	"testing"
	"time"

	"hyscale/internal/resources"
)

// makeSnapshot builds a one-service snapshot with the given replica
// utilizations (usage = util * requested CPU of 1.0) on distinct nodes.
func makeSnapshot(now time.Duration, info ServiceInfo, utils []float64) Snapshot {
	snap := Snapshot{Now: now}
	svc := ServiceStats{Info: info}
	for i, u := range utils {
		nodeID := nodeName(i)
		svc.Replicas = append(svc.Replicas, ReplicaStats{
			ContainerID: info.Name + "-" + nodeID,
			NodeID:      nodeID,
			Requested:   resources.Vector{CPU: 1, MemMB: 512, NetMbps: 100},
			Usage:       resources.Vector{CPU: u, MemMB: 300, NetMbps: u * 100},
			Routable:    true,
		})
	}
	snap.Services = []ServiceStats{svc}
	for i := 0; i < 8; i++ {
		ns := NodeStats{
			ID:        nodeName(i),
			Capacity:  resources.Vector{CPU: 4, MemMB: 8192, NetMbps: 1000},
			Available: resources.Vector{CPU: 3, MemMB: 7000, NetMbps: 900},
		}
		if i < len(utils) {
			ns.Hosts = []string{info.Name}
		}
		snap.Nodes = append(snap.Nodes, ns)
	}
	return snap
}

func nodeName(i int) string { return string(rune('A' + i)) }

func info() ServiceInfo {
	return ServiceInfo{
		Name: "svc", MinReplicas: 1, MaxReplicas: 6, TargetUtil: 0.5,
		BaselineMemMB: 300,
		InitialAlloc:  resources.Vector{CPU: 1, MemMB: 512},
	}
}

func countActions(p Plan) (outs, ins, verts int) {
	for _, a := range p.Actions {
		switch a.(type) {
		case ScaleOut:
			outs++
		case ScaleIn:
			ins++
		case VerticalScale:
			verts++
		}
	}
	return
}

func TestK8sScalesUpOnHighUtilization(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	// Two replicas at 150% utilization: want ceil(3.0/0.5) = 6 replicas.
	snap := makeSnapshot(time.Minute, info(), []float64{1.5, 1.5})
	plan := k.Decide(snap)
	outs, ins, verts := countActions(plan)
	if outs != 4 || ins != 0 || verts != 0 {
		t.Fatalf("actions = %d out / %d in / %d vert, want 4/0/0", outs, ins, verts)
	}
}

func TestK8sScalesDownOnLowUtilization(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	// Four replicas at 10%: want ceil(0.4/0.5) = 1 replica.
	snap := makeSnapshot(time.Minute, info(), []float64{0.1, 0.1, 0.1, 0.1})
	plan := k.Decide(snap)
	outs, ins, _ := countActions(plan)
	if ins != 3 || outs != 0 {
		t.Fatalf("actions = %d out / %d in, want 0/3", outs, ins)
	}
	// Victims are the newest replicas (last in creation order).
	if si, ok := plan.Actions[0].(ScaleIn); !ok || si.ContainerID != "svc-D" {
		t.Errorf("first victim = %+v, want newest (svc-D)", plan.Actions[0])
	}
}

func TestK8sToleranceBandSuppressesRescale(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	// avg util 0.54 -> |0.54/0.5 - 1| = 0.08 <= 0.1: hold.
	snap := makeSnapshot(time.Minute, info(), []float64{0.54, 0.54})
	if plan := k.Decide(snap); !plan.Empty() {
		t.Fatalf("expected empty plan inside tolerance, got %+v", plan.Actions)
	}
}

func TestK8sClampsToMaxReplicas(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	// util sum enormous, but max is 6 and we have 5: only 1 scale-out.
	snap := makeSnapshot(time.Minute, info(), []float64{3, 3, 3, 3, 3})
	outs, _, _ := countActions(k.Decide(snap))
	if outs != 1 {
		t.Fatalf("outs = %d, want 1 (clamped to max)", outs)
	}
}

func TestK8sEnforcesMinReplicas(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	in := info()
	in.MinReplicas = 2
	snap := makeSnapshot(time.Minute, in, []float64{0.5})
	outs, _, _ := countActions(k.Decide(snap))
	if outs != 1 {
		t.Fatalf("outs = %d, want 1 (min-replica enforcement)", outs)
	}
}

func TestK8sRemovesAboveMaxReplicas(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	in := info()
	in.MaxReplicas = 2
	snap := makeSnapshot(time.Minute, in, []float64{0.5, 0.5, 0.5})
	_, ins, _ := countActions(k.Decide(snap))
	if ins != 1 {
		t.Fatalf("ins = %d, want 1 (max-replica enforcement)", ins)
	}
}

func TestK8sScaleUpInterval(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	hot := []float64{1.5, 1.5}
	if plan := k.Decide(makeSnapshot(10*time.Second, info(), hot)); plan.Empty() {
		t.Fatal("first scale-up suppressed")
	}
	// 1 second later: inside the 3 s scale-up interval.
	if plan := k.Decide(makeSnapshot(11*time.Second, info(), hot)); !plan.Empty() {
		t.Fatal("scale-up not throttled inside interval")
	}
	// 4 seconds later: allowed again.
	if plan := k.Decide(makeSnapshot(14*time.Second, info(), hot)); plan.Empty() {
		t.Fatal("scale-up throttled past interval")
	}
}

func TestK8sScaleDownInterval(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	cold := []float64{0.1, 0.1, 0.1}
	if plan := k.Decide(makeSnapshot(time.Minute, info(), cold)); plan.Empty() {
		t.Fatal("first scale-down suppressed")
	}
	if plan := k.Decide(makeSnapshot(time.Minute+30*time.Second, info(), cold)); !plan.Empty() {
		t.Fatal("scale-down not throttled inside 50s interval")
	}
	if plan := k.Decide(makeSnapshot(2*time.Minute, info(), cold)); plan.Empty() {
		t.Fatal("scale-down throttled past interval")
	}
}

func TestK8sPlacesOnEmptiestNode(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	snap := makeSnapshot(time.Minute, info(), []float64{1.5})
	// Make node H clearly the emptiest.
	snap.Nodes[7].Available = resources.Vector{CPU: 4, MemMB: 8000, NetMbps: 1000}
	plan := k.Decide(snap)
	if len(plan.Actions) == 0 {
		t.Fatal("no actions")
	}
	if so, ok := plan.Actions[0].(ScaleOut); !ok || so.NodeID != "H" {
		t.Errorf("first placement = %+v, want node H", plan.Actions[0])
	}
}

func TestK8sStopsPlacingWhenNothingFits(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	snap := makeSnapshot(time.Minute, info(), []float64{3, 3})
	for i := range snap.Nodes {
		snap.Nodes[i].Available = resources.Vector{} // cluster full
	}
	outs, _, _ := countActions(k.Decide(snap))
	if outs != 0 {
		t.Fatalf("outs = %d, want 0 (no node fits)", outs)
	}
}

func TestK8sZeroTargetIsNoop(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	in := info()
	in.TargetUtil = 0
	if plan := k.Decide(makeSnapshot(time.Minute, in, []float64{3})); !plan.Empty() {
		t.Fatal("zero target should disable scaling")
	}
}

func TestNetworkHPAUsesNetMetric(t *testing.T) {
	n := NewNetworkHPA(DefaultConfig())
	if n.Name() != "network" {
		t.Fatalf("Name = %q", n.Name())
	}
	// CPU util low (0.2) but net util high (usage = util*100 Mbps over
	// requested 100): makeSnapshot couples them, so craft manually.
	snap := makeSnapshot(time.Minute, info(), []float64{0.2})
	snap.Services[0].Replicas[0].Usage = resources.Vector{CPU: 0.2, MemMB: 300, NetMbps: 150}
	plan := n.Decide(snap)
	outs, _, _ := countActions(plan)
	if outs != 2 { // ceil(1.5/0.5)=3 wanted, have 1
		t.Fatalf("outs = %d, want 2 (net-driven)", outs)
	}

	// The CPU algorithm on the same snapshot scales down instead.
	k := NewKubernetes(DefaultConfig())
	plan = k.Decide(snap)
	_, ins, _ := countActions(plan)
	if ins != 0 {
		// 0.2 util with min 1 replica: want = ceil(0.4)=1, cur=1 -> no-op.
		t.Fatalf("cpu variant ins = %d, want 0", ins)
	}
	if len(plan.Actions) != 0 {
		t.Fatalf("cpu variant should not scale on net usage: %+v", plan.Actions)
	}
}

func TestK8sName(t *testing.T) {
	if NewKubernetes(DefaultConfig()).Name() != "kubernetes" {
		t.Error("name wrong")
	}
}

func TestK8sSkipsZeroRequestedReplicas(t *testing.T) {
	k := NewKubernetes(DefaultConfig())
	snap := makeSnapshot(time.Minute, info(), []float64{1.5, 1.5})
	snap.Services[0].Replicas[0].Requested = resources.Vector{} // divide-by-zero bait
	// Must not panic; only replica 1 contributes.
	_ = k.Decide(snap)
}
