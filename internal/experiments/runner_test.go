package experiments

import (
	"testing"
	"testing/quick"
	"time"

	"hyscale/internal/platform"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// TestParallelDeterminism is the acceptance gate for the executor: the same
// experiment rendered with one worker and with eight must produce
// byte-identical tables. Fig. 6 covers the macro compile path (specs with
// algorithms and generated load) at smoke scale.
func TestParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		opts := Options{Seed: 1, Scale: 0.02, Parallel: parallel}
		out := ""
		r, err := RunFig6(LowBurst, opts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		out += r.Table().String()
		// Fig. 2 covers the micro compile path (pinned replicas, stress
		// contenders, fixed-count injection).
		f2, err := RunFig2(opts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		out += f2.Table().String()
		TakeTimings() // drain: timings are wall-clock and must not leak anywhere
		return out
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("tables differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSpecMatchesLegacyExecution is the refactor's equivalence property:
// compiling a macro row to a RunSpec and running it through the executor
// yields exactly the measurements the old hand-wired harness produced. The
// legacy path is reconstructed inline; testing/quick drives the seed.
func TestSpecMatchesLegacyExecution(t *testing.T) {
	property := func(seed16 uint16) bool {
		seed := int64(seed16) + 1
		opts := Options{Seed: seed, Scale: 0.01}
		services := makeServices(workload.KindCPUBound, 4, LowBurst, seed)

		// New path: compile and execute.
		row := macroRow{algorithm: "hybridmem"}
		spec := row.compile("quick", services, opts)
		res, err := runner.Run(spec)
		if err != nil {
			t.Logf("seed %d: runner: %v", seed, err)
			return false
		}

		// Legacy path: the pre-RunSpec wiring, verbatim.
		algo, err := newAlgorithm("hybridmem")
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		w, err := platform.New(platform.DefaultConfig(seed), algo)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, s := range services {
			if err := w.AddService(s.spec, s.target, s.pattern); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		if err := w.Run(macroDuration(opts)); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}

		if res.Summary != w.Summary() {
			t.Logf("seed %d: summaries diverge:\n  spec   %+v\n  legacy %+v", seed, res.Summary, w.Summary())
			return false
		}
		if res.Actions != w.Monitor().Counts() {
			t.Logf("seed %d: action counts diverge", seed)
			return false
		}
		if res.Cost != w.CostReport() {
			t.Logf("seed %d: cost reports diverge", seed)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// TestExecuteSurfacesClampedEvents: the per-engine clamped-event counter
// flows through the runner into every result.
func TestExecuteSurfacesClampedEvents(t *testing.T) {
	opts := Options{Seed: 1, Scale: 0.01}
	services := makeServices(workload.KindCPUBound, 2, LowBurst, opts.Seed)
	spec := macroRow{algorithm: "kubernetes"}.compile("clamp", services, opts)
	spec.Duration = 30 * time.Second
	res, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy run schedules nothing in the past.
	if res.ClampedEvents != 0 {
		t.Errorf("unexpected clamped events: %d", res.ClampedEvents)
	}
	if res.ClampedEvents != res.World.ClampedEvents() {
		t.Errorf("result counter (%d) diverges from world counter (%d)", res.ClampedEvents, res.World.ClampedEvents())
	}
}
