package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/platform"
	"hyscale/internal/runner"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// The disaster-recovery experiment measures the zoned control plane's zone
// fault domains end to end, at the datacenter scale the sharding was built
// for (1,000 nodes / 500 services / 8 zones). Three failure scenarios:
//
//	outage    — one zone's arbiter loses stats AND actions to every node
//	            for a bounded window (the classic zone outage); heals.
//	partition — the same zone loses only the stats direction (a gray
//	            failure: the arbiter rules its nodes dead but control
//	            actions still land); heals.
//	rolling   — two zones die back to back and stay dead; the second
//	            victim hosts a service too large for any single surviving
//	            zone's remaining capacity.
//
// crossed with three recovery variants:
//
//	no-evac — self-healing on, zone evacuation off: a dead zone's services
//	          stay down until the zone heals.
//	evac    — zone evacuation on, no spillover: each evacuated service
//	          must land whole in one surviving zone.
//	spill   — evacuation plus spillover across up to 3 zones.
//
// and three algorithms. The table reports availability (service-seconds
// with a routable replica), time-to-reconverge (first instant every service
// is back at its pre-failure replica count), cross-zone replica
// displacement, and the cost delta against the matching no-evac cell.

// drNodes/drZones/drFillers size the cluster so the rolling scenario's
// acceptance criterion is structural: each zone offers 500 CPU (125
// four-core nodes); fillers hold 4 one-core replicas each (~63 per
// untouched zone → ~248 CPU free), and a mammoth holds 230. The first dead
// zone's mammoth fits a surviving zone whole (230 ≤ 248), but evacuation
// concentrates it there: after wave one no survivor retains more than
// ~200 CPU free (the mammoth's landing zone drops to ~20, and the
// displaced fillers level the rest downward), so the second mammoth can
// only come back split across zones — spillover or bust.
const (
	drNodes           = 1000
	drZones           = 8
	drFillers         = 498
	drMammoths        = 2
	drMammothReplicas = 230
)

// drServices builds the filler fleet and, for the rolling scenario, the
// mammoths. Mammoths are registered first: the plane's fewest-services
// assignment then homes them in zones 0 and 1 — exactly the zones the
// rolling outage kills.
func drServices(fillers, mammoths, mammothReplicas int) []serviceLoad {
	out := make([]serviceLoad, 0, fillers+mammoths)
	for i := 0; i < mammoths; i++ {
		spec := workload.ServiceSpec{
			Name: fmt.Sprintf("mammoth-%d", i), Kind: workload.KindCPUBound,
			CPUPerRequest:         0.45,
			CPUOverheadPerRequest: 0.05,
			MemPerRequest:         2,
			BaselineMemMB:         300,
			InitialReplicaCPU:     1,
			InitialReplicaMemMB:   512,
			MinReplicas:           mammothReplicas,
			MaxReplicas:           mammothReplicas,
			Timeout:               30 * time.Second,
		}
		// N rps × 0.5 CPU/req = N/2 CPU demand: N one-core replicas run at
		// the 0.5 utilization target. The replica count is pinned
		// (min == max) so losing a zone's worth of mammoth can only be
		// repaired by re-placing the replicas somewhere — not by the
		// surviving home growing or vertically squeezing its way back — which
		// is exactly the placement problem spillover exists to solve.
		out = append(out, serviceLoad{spec: spec, target: 0.5, pattern: loadgen.Constant{RPS: float64(mammothReplicas)}})
	}
	for i := 0; i < fillers; i++ {
		spec := workload.ServiceSpec{
			Name: fmt.Sprintf("svc-%03d", i), Kind: workload.KindCPUBound,
			CPUPerRequest:         0.45,
			CPUOverheadPerRequest: 0.05,
			MemPerRequest:         2,
			BaselineMemMB:         300,
			InitialReplicaCPU:     1,
			InitialReplicaMemMB:   512,
			MinReplicas:           2,
			MaxReplicas:           8,
			Timeout:               30 * time.Second,
		}
		// 3.5 rps × 0.5 CPU/req = 1.75 CPU demand → a stable 4 replicas
		// (mid-interval, same reasoning as the mammoths).
		out = append(out, serviceLoad{spec: spec, target: 0.5, pattern: loadgen.Constant{RPS: 3.5}})
	}
	return out
}

// drScenario is one zone failure schedule.
type drScenario struct {
	name     string
	mammoths int
	windows  func(d time.Duration) []faults.Window
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// drScenarios returns the three failure schedules for a horizon d. The
// single-zone scenarios open at 35% of the horizon and heal after a quarter
// of it (at least 75 s — the detector, evacuation cooldown and re-adoption
// need room at reduced -scale); the rolling outage opens earlier, kills the
// second zone one stagger later, and never heals within the horizon.
func drScenarios() []drScenario {
	single := func(kind faults.Kind, direction string) func(d time.Duration) []faults.Window {
		return func(d time.Duration) []faults.Window {
			from := time.Duration(0.35 * float64(d))
			return []faults.Window{{
				Kind: kind, Target: "0", Direction: direction,
				From: from, To: from + maxDuration(d/4, 75*time.Second),
			}}
		}
	}
	return []drScenario{
		{name: "outage", windows: single(faults.KindZoneOutage, "")},
		{name: "partition", windows: single(faults.KindZonePartition, faults.DirectionStats)},
		{name: "rolling", mammoths: drMammoths, windows: func(d time.Duration) []faults.Window {
			first := d / 4
			second := first + maxDuration(d/5, 36*time.Second)
			return []faults.Window{
				{Kind: faults.KindZoneOutage, Target: "0", From: first, To: 10 * d},
				{Kind: faults.KindZoneOutage, Target: "1", From: second, To: 10 * d},
			}
		}},
	}
}

// drVariant is one recovery configuration.
type drVariant struct {
	name      string
	evacuate  bool
	spillover int
}

func drVariants() []drVariant {
	return []drVariant{
		{name: "no-evac"},
		{name: "evac", evacuate: true, spillover: 1},
		{name: "spill", evacuate: true, spillover: 3},
	}
}

// DROutcome is one (scenario, variant, algorithm) cell.
type DROutcome struct {
	Scenario  string
	Variant   string
	Algorithm string
	// ReconvergeSeconds is the time from the first zone failure until every
	// service last returned to its pre-failure provisioned capacity (-1:
	// never within the horizon — the cell did not survive).
	ReconvergeSeconds float64
	// AvailabilityPercent is the fraction of service-seconds with at least
	// one routable replica.
	AvailabilityPercent float64
	// Displaced / Spillover count replicas carried across a zone boundary
	// by evacuation, and the subset placed beyond the primary target zone.
	Displaced uint64
	Spillover uint64
	// CostDelta is this cell's total cost minus the matching no-evac
	// cell's — what the recovery paid for in machine-hours and penalties.
	CostDelta float64
	Summary   metrics.Summary
	Recovery  monitor.RecoveryCounts
}

// DRResult is the material behind the disaster-recovery comparison.
type DRResult struct {
	Name     string
	Outcomes []DROutcome
}

// Outcome returns the cell for (scenario, variant, algorithm), or nil.
func (r *DRResult) Outcome(scenario, variant, algorithm string) *DROutcome {
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Scenario == scenario && o.Variant == variant && o.Algorithm == algorithm {
			return o
		}
	}
	return nil
}

// Table renders the scenario × variant × algorithm comparison.
func (r *DRResult) Table() *Table {
	t := &Table{
		Title: r.Name,
		Columns: []string{"scenario", "variant", "algorithm", "reconverge", "avail %",
			"failed %", "displaced", "spillover", "cost Δ"},
	}
	for _, o := range r.Outcomes {
		reconverge := "-"
		if o.ReconvergeSeconds >= 0 {
			reconverge = fmt.Sprintf("%.0fs", o.ReconvergeSeconds)
		}
		t.AddRow(
			o.Scenario,
			o.Variant,
			o.Algorithm,
			reconverge,
			fmt.Sprintf("%.2f", o.AvailabilityPercent),
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%d", o.Displaced),
			fmt.Sprintf("%d", o.Spillover),
			fmt.Sprintf("%+.2f", o.CostDelta),
		)
	}
	return t
}

// drProbe measures time-to-reconverge and availability for zoned worlds. It
// mirrors the recovery probe but reads the control plane (the Monitor
// accessor is nil on zoned worlds, and replica counts must include
// spillover shards), and derives the failure instant from the spec's first
// zone fault window rather than a churn schedule.
type drProbe struct {
	failAt       time.Duration
	pre          map[string]float64
	degraded     bool
	reconvergeAt time.Duration
	total, up    uint64
}

// The reconvergence bars form a Schmitt trigger over each service's
// provisioned CPU, measured against a low-water pre-failure baseline (the
// minimum provisioned capacity observed over the later half of the pre-fail
// window). Capacity, not replica count, because the re-homed zone's
// algorithm is free to rebuild the same capacity out of fewer, larger
// replicas. A service arms the probe when it drops below 80% of baseline —
// only a real zone loss cuts that deep — and counts as restored at 95%; the
// gap keeps ordinary vertical/horizontal re-shaping jitter from re-arming a
// cell that has genuinely recovered.
const (
	drDegradedFraction = 0.80
	drRestoredFraction = 0.95
)

func (p *drProbe) attach(w *platform.World, spec runner.RunSpec) error {
	p.pre = make(map[string]float64)
	p.reconvergeAt = -1
	p.failAt = -1
	for _, fw := range spec.Platform.Faults.Windows {
		if fw.Kind != faults.KindZoneOutage && fw.Kind != faults.KindZonePartition {
			continue
		}
		if p.failAt < 0 || fw.From < p.failAt {
			p.failAt = fw.From
		}
	}
	ctl := w.Control()
	var buf []*container.Container
	return w.Engine().SchedulePeriodic(time.Second, time.Second, func(e *sim.Engine) {
		now := e.Now()
		before := p.failAt < 0 || now < p.failAt
		restored := true
		deep := false
		for _, s := range spec.Services {
			name := s.Spec.Name
			p.total++
			buf = ctl.AppendReplicas(buf[:0], name)
			var cpu float64
			routable := false
			for _, c := range buf {
				cpu += c.Alloc.CPU
				if c.Routable() {
					routable = true
				}
			}
			if routable {
				p.up++
			}
			switch {
			case before:
				// Low-water baseline over the settled half of the pre-fail
				// window (the earlier half is deployment ramp-up).
				if now >= p.failAt/2 {
					if v, ok := p.pre[name]; !ok || cpu < v {
						p.pre[name] = cpu
					}
				}
			case cpu < drDegradedFraction*p.pre[name]:
				restored = false
				deep = true
				p.degraded = true
			case cpu < drRestoredFraction*p.pre[name]:
				restored = false
			}
		}
		if before {
			return
		}
		// The detector takes several poll periods to excise a dead zone's
		// replicas, so the first post-failure samples still show pre-failure
		// capacity; reconvergence only counts once degradation has actually
		// been observed. A later failure wave (the rolling scenario) re-arms
		// the probe: the reported instant is the LAST return to pre-failure
		// capacity, so a cell that recovers from wave one but not wave two
		// reads as never reconverged. Only a deep dip (below the arming
		// threshold) re-arms; shallow jitter inside the hysteresis band
		// neither latches nor resets.
		switch {
		case restored && p.degraded && p.reconvergeAt < 0:
			p.reconvergeAt = now
		case deep:
			p.reconvergeAt = -1
		}
	})
}

// HookDRProbe is the registered runner hook attaching the zone
// disaster-recovery probe; its finalizer reports Extra["reconvergeSeconds"]
// (-1: never) and Extra["availabilityPercent"].
const HookDRProbe = "dr-probe"

func init() {
	runner.RegisterHook(HookDRProbe, func(w *platform.World, spec runner.RunSpec) (runner.Finalizer, error) {
		probe := &drProbe{}
		if err := probe.attach(w, spec); err != nil {
			return nil, err
		}
		return func(res *runner.Result) {
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			reconverge := -1.0
			if probe.reconvergeAt >= 0 {
				reconverge = (probe.reconvergeAt - probe.failAt).Seconds()
			}
			res.Extra["reconvergeSeconds"] = reconverge
			avail := 100.0
			if probe.total > 0 {
				avail = 100 * float64(probe.up) / float64(probe.total)
			}
			res.Extra["availabilityPercent"] = avail
		}, nil
	})
}

// drCell parameterises one DR run.
type drCell struct {
	scenario  drScenario
	variant   drVariant
	algorithm string
}

func (c drCell) compile(nodes, zones, fillers, mammothReplicas int, opts Options) runner.RunSpec {
	d := macroDuration(opts)
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Nodes = nodes
	cfg.Zones = zones
	cfg.SelfHealing = monitor.DefaultSelfHealing()
	cfg.EvacuateZones = c.variant.evacuate
	cfg.ZoneSpilloverZones = c.variant.spillover
	cfg.Faults = faults.Config{
		Seed:    opts.Seed + 3000,
		Windows: c.scenario.windows(d),
	}
	spec := runner.RunSpec{
		Name:      fmt.Sprintf("dr/%s-%s-%s", c.scenario.name, c.variant.name, c.algorithm),
		Label:     fmt.Sprintf("%s %s %s", c.scenario.name, c.variant.name, c.algorithm),
		Seed:      opts.Seed,
		Platform:  cfg,
		Algorithm: c.algorithm,
		Duration:  d,
		Hooks:     []string{HookDRProbe},
	}
	for _, s := range drServices(fillers, c.scenario.mammoths, mammothReplicas) {
		spec.Services = append(spec.Services, runner.ServiceRun{
			Spec: s.spec, Target: s.target, Load: runner.FromPattern(s.pattern),
		})
	}
	return spec
}

// runDRSized executes the DR grid on a cluster of the given size — the full
// ISSUE-pinned grid for RunDR, a reduced one for the smoke tests.
func runDRSized(opts Options, nodes, zones, fillers, mammothReplicas int, algorithms []string) (*DRResult, error) {
	opts = opts.scaled()
	var cells []drCell
	for _, sc := range drScenarios() {
		for _, v := range drVariants() {
			for _, a := range algorithms {
				cells = append(cells, drCell{scenario: sc, variant: v, algorithm: a})
			}
		}
	}
	specs := make([]runner.RunSpec, len(cells))
	for i, cell := range cells {
		specs[i] = cell.compile(nodes, zones, fillers, mammothReplicas, opts)
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	res := &DRResult{Name: "Disaster recovery: zone outage, evacuation and spillover"}
	for i, cell := range cells {
		r := results[i]
		o := DROutcome{
			Scenario:            cell.scenario.name,
			Variant:             cell.variant.name,
			Algorithm:           cell.algorithm,
			ReconvergeSeconds:   r.Extra["reconvergeSeconds"],
			AvailabilityPercent: r.Extra["availabilityPercent"],
			Summary:             r.Summary,
			Recovery:            r.Recovery,
		}
		if r.ZoneEvac != nil {
			o.Displaced = r.ZoneEvac.ReplicasDisplaced
			o.Spillover = r.ZoneEvac.SpilloverPlacements
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	// Cost deltas against the matching no-evac cell, computable only once
	// every cell is in.
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		base := res.Outcome(o.Scenario, "no-evac", o.Algorithm)
		if base == nil {
			continue
		}
		bi := results[drCellIndex(cells, o.Scenario, "no-evac", o.Algorithm)]
		oi := results[i]
		o.CostDelta = oi.Cost.TotalCost - bi.Cost.TotalCost
	}
	return res, nil
}

func drCellIndex(cells []drCell, scenario, variant, algorithm string) int {
	for i, c := range cells {
		if c.scenario.name == scenario && c.variant.name == variant && c.algorithm == algorithm {
			return i
		}
	}
	return 0
}

// RunDR runs the zone disaster-recovery grid at the ISSUE-pinned scale —
// 1,000 nodes, ~500 services, 8 zones — under {outage, partition, rolling}
// × {no-evac, evac, spill} × 3 algorithms (hyscale-bench -exp dr).
func RunDR(opts Options) (*DRResult, error) {
	return runDRSized(opts, drNodes, drZones, drFillers, drMammothReplicas,
		[]string{"kubernetes", "hybrid", "hybridmem"})
}
