package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/platform"
	"hyscale/internal/runner"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// The recovery experiment measures the self-healing control plane end to
// end: two worker machines die mid-run, and the table reports how long each
// algorithm takes to restore the pre-crash replica count (time-to-reconverge
// from the moment of the first node death) and the availability over the
// run. Four variants per algorithm isolate each layer's contribution:
//
//	no-heal    — legacy behaviour: the dead nodes' replicas are never
//	             re-placed; reconvergence relies on the autoscaler alone.
//	heal       — failure detector + reconciler + checkpointing on.
//	crash-ckpt — additionally the Monitor itself crashes for 30 s right
//	             after declaring the nodes dead; it restores from its last
//	             checkpoint, retry queue and reconcile plan intact.
//	crash-cold — the same crash without checkpointing: the Monitor cold
//	             restarts, rediscovers replicas from the cluster, and the
//	             queued re-placements are simply gone.

// recoveryFailAt places the node deaths at 35% of the horizon, leaving room
// for the post-crash monitor outage and the reconvergence tail.
func recoveryFailAt(opts Options) time.Duration {
	return time.Duration(0.35 * float64(macroDuration(opts)))
}

// Monitor-crash window, relative to the first node death: it opens after
// the detector has declared the nodes dead (≈20 s at default thresholds)
// and the reconcile cooldown has started, and lasts 30 s — long enough that
// checkpointed and cold restarts diverge maximally.
const (
	recoveryCrashOpen  = 22 * time.Second
	recoveryCrashClose = 52 * time.Second
)

// recoveryServices builds a CPU-bound constant-load service set whose
// pre-crash replica counts are stable, so "restored the pre-crash replica
// count" is a well-defined reconvergence criterion.
func recoveryServices(n int) []serviceLoad {
	out := make([]serviceLoad, 0, n)
	for i := 0; i < n; i++ {
		spec := workload.ServiceSpec{
			Name: fmt.Sprintf("svc-%02d", i), Kind: workload.KindCPUBound,
			CPUPerRequest:         0.1,
			CPUOverheadPerRequest: 0.01,
			MemPerRequest:         2,
			BaselineMemMB:         300,
			InitialReplicaCPU:     1,
			InitialReplicaMemMB:   512,
			MinReplicas:           2,
			MaxReplicas:           8,
			Timeout:               30 * time.Second,
		}
		out = append(out, serviceLoad{spec: spec, target: 0.5, pattern: loadgen.Constant{RPS: 12}})
	}
	return out
}

// RecoveryOutcome is one (algorithm, variant) cell.
type RecoveryOutcome struct {
	Algorithm string
	// Variant is one of no-heal|heal|crash-ckpt|crash-cold.
	Variant string
	// ReconvergeSeconds is the time from the first node death until every
	// service is back at its pre-crash replica count (-1: never within the
	// horizon).
	ReconvergeSeconds float64
	// AvailabilityPercent is the fraction of service-seconds with at least
	// one routable replica.
	AvailabilityPercent float64
	Summary             metrics.Summary
	Recovery            monitor.RecoveryCounts
	// MonitorCrashes counts poll periods lost to the monitor-crash window.
	MonitorCrashes uint64
}

// RecoveryResult is the material behind the self-healing comparison.
type RecoveryResult struct {
	Name     string
	Outcomes []RecoveryOutcome
}

// Outcome returns the cell for (algorithm, variant), or nil.
func (r *RecoveryResult) Outcome(algorithm, variant string) *RecoveryOutcome {
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Algorithm == algorithm && o.Variant == variant {
			return o
		}
	}
	return nil
}

// Table renders the per-algorithm recovery comparison.
func (r *RecoveryResult) Table() *Table {
	t := &Table{
		Title: r.Name,
		Columns: []string{"algorithm", "variant", "reconverge", "avail %", "failed %",
			"lost", "replaced", "drained", "ckpt restores", "cold restarts"},
	}
	for _, o := range r.Outcomes {
		reconverge := "-"
		if o.ReconvergeSeconds >= 0 {
			reconverge = fmt.Sprintf("%.0fs", o.ReconvergeSeconds)
		}
		t.AddRow(
			o.Algorithm,
			o.Variant,
			reconverge,
			fmt.Sprintf("%.2f", o.AvailabilityPercent),
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%d", o.Recovery.ReplicasLost),
			fmt.Sprintf("%d", o.Recovery.Replaced),
			fmt.Sprintf("%d", o.Recovery.StaleDrained),
			fmt.Sprintf("%d", o.Recovery.CheckpointRestores),
			fmt.Sprintf("%d", o.Recovery.ColdRestarts),
		)
	}
	return t
}

// recoveryProbe measures time-to-reconverge and availability. Pre-crash
// replica counts are tracked while the clock is before the first scheduled
// node failure; reconvergence is the first sample after it where every
// service is back at (or above) its pre-crash count.
type recoveryProbe struct {
	failAt       time.Duration
	pre          map[string]int
	reconvergeAt time.Duration
	total, up    uint64
}

// attach samples once per simulated second. The probe derives the failure
// instant from the spec's own churn schedule, so the hook needs no
// out-of-band parameters.
func (p *recoveryProbe) attach(w *platform.World, spec runner.RunSpec) error {
	p.pre = make(map[string]int)
	p.reconvergeAt = -1
	p.failAt = -1
	for _, f := range spec.NodeFailures {
		if p.failAt < 0 || f.At < p.failAt {
			p.failAt = f.At
		}
	}
	return w.Engine().SchedulePeriodic(time.Second, time.Second, func(e *sim.Engine) {
		now := e.Now()
		for _, s := range spec.Services {
			p.total++
			for _, c := range w.Monitor().Replicas(s.Spec.Name) {
				if c.Routable() {
					p.up++
					break
				}
			}
		}
		switch {
		case p.failAt < 0 || now < p.failAt:
			for _, s := range spec.Services {
				p.pre[s.Spec.Name] = len(w.Monitor().Replicas(s.Spec.Name))
			}
		case p.reconvergeAt < 0:
			restored := true
			for _, s := range spec.Services {
				if len(w.Monitor().Replicas(s.Spec.Name)) < p.pre[s.Spec.Name] {
					restored = false
					break
				}
			}
			if restored {
				p.reconvergeAt = now
			}
		}
	})
}

// HookRecoveryProbe is the registered runner hook attaching the recovery
// probe; its finalizer reports Extra["reconvergeSeconds"] (-1: never) and
// Extra["availabilityPercent"].
const HookRecoveryProbe = "recovery-probe"

func init() {
	runner.RegisterHook(HookRecoveryProbe, func(w *platform.World, spec runner.RunSpec) (runner.Finalizer, error) {
		probe := &recoveryProbe{}
		if err := probe.attach(w, spec); err != nil {
			return nil, err
		}
		return func(res *runner.Result) {
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			reconverge := -1.0
			if probe.reconvergeAt >= 0 {
				reconverge = (probe.reconvergeAt - probe.failAt).Seconds()
			}
			res.Extra["reconvergeSeconds"] = reconverge
			avail := 100.0
			if probe.total > 0 {
				avail = 100 * float64(probe.up) / float64(probe.total)
			}
			res.Extra["availabilityPercent"] = avail
		}, nil
	})
}

// recoveryCell parameterises one recovery run.
type recoveryCell struct {
	algorithm string
	variant   string
	selfHeal  monitor.SelfHealing
	crash     bool
}

// compile turns a cell into a RunSpec: the constant-load service set, two
// node deaths shortly after failAt, the optional monitor-crash window, and
// the recovery probe hook.
func (c recoveryCell) compile(services []serviceLoad, opts Options) runner.RunSpec {
	failAt := recoveryFailAt(opts)
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.SelfHealing = c.selfHeal
	if c.crash {
		cfg.Faults = faults.Config{
			Seed: opts.Seed + 2000,
			Windows: []faults.Window{{
				Kind: faults.KindMonitorCrash,
				From: failAt + recoveryCrashOpen,
				To:   failAt + recoveryCrashClose,
			}},
		}
	}
	spec := runner.RunSpec{
		Name:      fmt.Sprintf("recovery/%s-%s", c.algorithm, c.variant),
		Label:     fmt.Sprintf("%s %s", c.algorithm, c.variant),
		Seed:      opts.Seed,
		Platform:  cfg,
		Algorithm: c.algorithm,
		Duration:  macroDuration(opts),
		NodeFailures: []runner.NodeFailure{
			{At: failAt, Node: "node-0"},
			{At: failAt + time.Second, Node: "node-1"},
		},
		Hooks: []string{HookRecoveryProbe},
	}
	for _, s := range services {
		spec.Services = append(spec.Services, runner.ServiceRun{
			Spec: s.spec, Target: s.target, Load: runner.FromPattern(s.pattern),
		})
	}
	return spec
}

// recoveryVariants returns the four self-healing variants every algorithm
// runs under.
func recoveryVariants() []recoveryCell {
	heal := monitor.DefaultSelfHealing()
	cold := monitor.DefaultSelfHealing()
	cold.Checkpoint = false
	return []recoveryCell{
		{variant: "no-heal"},
		{variant: "heal", selfHeal: heal},
		{variant: "crash-ckpt", selfHeal: heal, crash: true},
		{variant: "crash-cold", selfHeal: cold, crash: true},
	}
}

// RunRecovery kills two worker machines mid-run and tabulates, per HyScale
// algorithm and self-healing variant, the time to restore the pre-crash
// replica count, availability, and the recovery counters (hyscale-bench
// -exp recovery).
func RunRecovery(opts Options) (*RecoveryResult, error) {
	opts = opts.scaled()
	services := recoveryServices(8)
	algorithms := []string{"kubernetes", "hybrid", "hybridmem"}
	var cells []recoveryCell
	for _, a := range algorithms {
		for _, v := range recoveryVariants() {
			v.algorithm = a
			cells = append(cells, v)
		}
	}
	specs := make([]runner.RunSpec, len(cells))
	for i, cell := range cells {
		specs[i] = cell.compile(services, opts)
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{Name: "Recovery: node death, reconciliation and monitor crash-restore"}
	for i, cell := range cells {
		r := results[i]
		res.Outcomes = append(res.Outcomes, RecoveryOutcome{
			Algorithm:           cell.algorithm,
			Variant:             cell.variant,
			ReconvergeSeconds:   r.Extra["reconvergeSeconds"],
			AvailabilityPercent: r.Extra["availabilityPercent"],
			Summary:             r.Summary,
			Recovery:            r.Recovery,
			MonitorCrashes:      r.MonitorCrashes,
		})
	}
	return res, nil
}
