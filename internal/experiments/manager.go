package experiments

import (
	"fmt"

	"hyscale/internal/cost"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// The manager experiment prices the multi-metric scaler manager
// (internal/scalermgr) against the paper's four single-signal algorithms.
// Every algorithm replays the same macro grids (mixed and CPU-bound services
// under both load shapes), the fan-out cascade topology, and the full-rate
// chaos mix, and the table reports the two axes the manager is designed to
// trade: SLO attainment (100 − cost.Report.ViolationPercent) and dollar cost
// (machine-hours at the cost model's rate plus violation penalties). The
// claim under test: manager-cost reaches equal-or-better SLO attainment than
// every single-metric algorithm at lower total cost in at least one cell.

// ManagerOutcome is one (workload, algorithm) cell of the pricing grid.
type ManagerOutcome struct {
	Workload  string
	Algorithm string
	Summary   metrics.Summary
	Actions   monitor.ActionCounts
	Cost      cost.Report
	// SLOAttainPercent is 100 − Cost.ViolationPercent(): the share of
	// completed work that met the cost model's latency SLA.
	SLOAttainPercent float64
	// UptimePercent is only meaningful on the chaos workload (the uptime
	// probe is attached there); zero elsewhere.
	UptimePercent float64
}

// ManagerResult is the material behind the manager pricing comparison.
type ManagerResult struct {
	Name     string
	Outcomes []ManagerOutcome
}

// Outcome returns the cell for (workload, algorithm), or nil.
func (r *ManagerResult) Outcome(workload, algorithm string) *ManagerOutcome {
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Workload == workload && o.Algorithm == algorithm {
			return o
		}
	}
	return nil
}

// Table renders the pricing grid: latency and failure stats next to SLO
// attainment, machine-hours and total dollar cost per cell.
func (r *ManagerResult) Table() *Table {
	t := &Table{
		Title: r.Name,
		Columns: []string{"workload", "algorithm", "mean response", "p95", "failed %",
			"SLO attain %", "machine-hours", "cost $", "scale-outs", "scale-ins"},
	}
	for _, o := range r.Outcomes {
		t.AddRow(
			o.Workload,
			o.Algorithm,
			fmtDur(o.Summary.MeanLatency),
			fmtDur(o.Summary.P95Latency),
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%.2f", o.SLOAttainPercent),
			fmt.Sprintf("%.1f", o.Cost.MachineHours),
			fmt.Sprintf("%.2f", o.Cost.TotalCost),
			fmt.Sprintf("%d", o.Actions.ScaleOuts),
			fmt.Sprintf("%d", o.Actions.ScaleIns),
		)
	}
	return t
}

// managerAlgorithms is the pricing line-up: the paper's four plus the two
// manager spellings.
func managerAlgorithms() []string {
	return []string{"kubernetes", "network", "hybrid", "hybridmem", "manager", "manager-cost"}
}

// RunManager prices the manager family against the paper's four algorithms
// on three macro cells, the fan-out cascade topology and the full-rate
// hardened chaos mix (hyscale-bench -exp manager). All rows of a cell pin
// the same seed so every algorithm faces an identical arrival sequence.
func RunManager(opts Options) (*ManagerResult, error) {
	opts = opts.scaled()
	type cell struct {
		workload string
		spec     runner.RunSpec
	}
	var cells []cell

	// Macro grid: the Fig. 6/7 service mixes under both load shapes.
	macro := []struct {
		name  string
		kind  workload.Kind
		shape LoadShape
	}{
		{"mixed-high-burst", workload.KindMixed, HighBurst},
		{"mixed-low-burst", workload.KindMixed, LowBurst},
		{"cpu-high-burst", workload.KindCPUBound, HighBurst},
	}
	for _, m := range macro {
		services := makeServices(m.kind, 15, m.shape, opts.Seed)
		for _, algo := range managerAlgorithms() {
			row := macroRow{algorithm: algo}
			spec := row.compile("manager/"+m.name, services, opts)
			cells = append(cells, cell{workload: m.name, spec: spec})
		}
	}

	// Cascade grid: the fan-out topology at full defenses — does multi-metric
	// scaling hold up when load arrives through a call graph rather than
	// directly?
	topo := cascadeTopologies()[0]
	defs := cascadeDefenses(topo.shedThreshold)
	def := defs[len(defs)-1]
	for _, algo := range managerAlgorithms() {
		cc := cascadeCell{topology: topo, algorithm: algo, defense: def}
		spec := cc.compile(opts)
		spec.Name = "manager/" + spec.Name
		cells = append(cells, cell{workload: "cascade-" + topo.name, spec: spec})
	}

	// Chaos grid: full fault mix with hardening on — the manager must not
	// buy its cost savings with fragility.
	chaosServices := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	base := ChaosFaults(opts.Seed + 1000)
	for _, algo := range managerAlgorithms() {
		cc := chaosCell{algorithm: algo, rate: 1.0, hardened: true}
		spec := cc.compile(chaosServices, base, opts)
		spec.Name = "manager/" + spec.Name
		cells = append(cells, cell{workload: "chaos-r1.0", spec: spec})
	}

	specs := make([]runner.RunSpec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	res := &ManagerResult{Name: "Manager: multi-metric scaling priced against the paper's algorithms"}
	for i, c := range cells {
		r := results[i]
		res.Outcomes = append(res.Outcomes, ManagerOutcome{
			Workload:         c.workload,
			Algorithm:        c.spec.Algorithm,
			Summary:          r.Summary,
			Actions:          r.Actions,
			Cost:             r.Cost,
			SLOAttainPercent: 100 - r.Cost.ViolationPercent(),
			UptimePercent:    r.Extra["uptimePercent"],
		})
	}
	return res, nil
}
