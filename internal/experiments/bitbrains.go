package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/loadgen"
	"hyscale/internal/trace"
	"hyscale/internal/workload"
)

// Fig9Result holds the Bitbrains Rnd trace shape (Figure 9): CPU and memory
// usage averaged over all VMs/microservices.
type Fig9Result struct {
	Mean trace.Series
}

// Table renders a down-sampled view of the averaged trace.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:   "Figure 9: Bitbrains Rnd trace, CPU and memory usage averaged over all series",
		Columns: []string{"time", "avg CPU %", "avg mem %"},
	}
	n := r.Mean.Len()
	step := n / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		t.AddRow(
			(time.Duration(i) * r.Mean.Interval).String(),
			fmt.Sprintf("%.1f", r.Mean.CPUPercent[i]),
			fmt.Sprintf("%.1f", r.Mean.MemPercent[i]),
		)
	}
	return t
}

// RunFig9 generates (or, via tr, replays) the Rnd trace and returns the
// across-series average — what Figure 9 plots. Pass nil to use the
// synthetic twin (see DESIGN.md substitutions).
func RunFig9(tr *trace.Trace, opts Options) (*Fig9Result, error) {
	opts = opts.scaled()
	if tr == nil {
		cfg := trace.DefaultRndConfig(opts.Seed)
		cfg.Duration = macroDuration(opts)
		tr = trace.GenerateRnd(cfg)
	}
	if len(tr.Series) == 0 {
		return nil, fmt.Errorf("fig9: trace has no series")
	}
	return &Fig9Result{Mean: tr.Mean()}, nil
}

// RunFig10 reproduces Figure 10: the Bitbrains Rnd trace re-purposed as
// microservice demand, replayed against kubernetes vs hybrid vs hybridmem.
// The 500 VM series are partitioned into 15 groups; each group's mean CPU
// and memory usage drives one mixed microservice's arrival rate (the paper
// "re-purposed this dataset ... and scaled it to run on our cluster").
// Pass a parsed real trace to replay the genuine dataset, or nil for the
// synthetic twin.
func RunFig10(tr *trace.Trace, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	if tr == nil {
		cfg := trace.DefaultRndConfig(opts.Seed)
		cfg.Duration = macroDuration(opts)
		tr = trace.GenerateRnd(cfg)
	}
	const nServices = 15
	parts := tr.Partition(nServices)

	services := make([]serviceLoad, 0, nServices)
	// Reuse the mixed-service parameterisation so Fig. 10 is comparable to
	// Fig. 7, exactly as the paper observes.
	mixed := makeServices(workload.KindMixed, nServices, LowBurst, opts.Seed)
	for i, part := range parts {
		spec := mixed[i].spec
		// Demand follows the partition's combined CPU+memory usage,
		// normalised so a 100 % busy partition drives ~2x the base rate.
		s := part
		base := 14.0
		pattern := loadgen.Func(func(at time.Duration) float64 {
			cpu, mem := s.At(at)
			return base * (0.6*cpu + 0.4*mem) / 40.0
		})
		services = append(services, serviceLoad{spec: spec, target: 0.5, pattern: pattern})
	}
	return runMacro(
		"Figure 10: Bitbrains Rnd replay (mixed services)",
		"bitbrains",
		services,
		[]string{"kubernetes", "hybrid", "hybridmem"},
		opts,
	)
}
