package experiments

import (
	"testing"

	"hyscale/internal/workload"
)

// chaosServices is the Fig. 6b service set at test scale.
func chaosServices(opts Options) []serviceLoad {
	return makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
}

// TestChaosHardeningReducesFailures is the resilience acceptance check: at
// full fault rate, retry/backoff + graceful degradation + LB health checks
// must yield strictly fewer failed requests than the identical fault
// schedule with hardening off.
func TestChaosHardeningReducesFailures(t *testing.T) {
	opts := shapeOpts()
	res, err := runChaosCells("hardening-vs-not", chaosServices(opts), []chaosCell{
		{algorithm: "hybridmem", rate: 1.0, hardened: true},
		{algorithm: "hybridmem", rate: 1.0, hardened: false},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	on := res.Outcome("hybridmem", 1.0, true)
	off := res.Outcome("hybridmem", 1.0, false)
	if on == nil || off == nil {
		t.Fatal("missing outcomes")
	}
	if on.Summary.FailedPercent() >= off.Summary.FailedPercent() {
		t.Errorf("hardened failed%% = %.2f, unhardened = %.2f — hardening must strictly reduce failures",
			on.Summary.FailedPercent(), off.Summary.FailedPercent())
	}
	// The hardened run visibly exercises its machinery...
	if on.Actions.Retries == 0 || on.Actions.StaleSnapshots == 0 {
		t.Errorf("hardened run shows no resilience activity: %+v", on.Actions)
	}
	// ...while the unhardened one drops failed actions on the floor.
	if off.Actions.Retries != 0 || off.Actions.StaleSnapshots != 0 {
		t.Errorf("unhardened run used hardening machinery: %+v", off.Actions)
	}
	if off.Actions.AbandonedActions == 0 {
		t.Error("unhardened run abandoned nothing despite injected faults")
	}
}

// TestChaosZeroRateMatchesBaseline: with the fault rate at 0 the chaos
// harness must reproduce the plain Fig. 6b outcome exactly — the injector,
// health checks and uptime probe must be invisible.
func TestChaosZeroRateMatchesBaseline(t *testing.T) {
	opts := shapeOpts()
	res, err := runChaosCells("zero-rate", chaosServices(opts), []chaosCell{
		{algorithm: "hybridmem", rate: 0, hardened: true},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runMacro("baseline", "cpu-high-burst", chaosServices(opts),
		[]string{"hybridmem"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outcome("hybridmem", 0, true)
	want := base.Outcome("hybridmem")
	if got.Summary != want.Summary {
		t.Errorf("zero-rate summary diverged from baseline:\n got %+v\nwant %+v",
			got.Summary, want.Summary)
	}
	if got.Actions != want.Actions {
		t.Errorf("zero-rate actions diverged from baseline:\n got %+v\nwant %+v",
			got.Actions, want.Actions)
	}
	if got.UptimePercent != 100 {
		t.Errorf("uptime = %.2f at zero rate, want 100", got.UptimePercent)
	}
}

// TestChaosDeterminism: same seed, same table — byte for byte.
func TestChaosDeterminism(t *testing.T) {
	opts := Options{Seed: 5, Scale: 0.05}
	run := func() string {
		res, err := runChaosCells("det", chaosServices(opts), []chaosCell{
			{algorithm: "kubernetes", rate: 1.0, hardened: true},
			{algorithm: "hybridmem", rate: 0.5, hardened: true},
			{algorithm: "hybridmem", rate: 1.0, hardened: false},
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("tables diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRunChaosShape checks the full sweep's row layout briefly at tiny scale.
func TestRunChaosShape(t *testing.T) {
	res, err := RunChaos(Options{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// 3 rates × 3 algorithms hardened + 3 unhardened at rate 1.0.
	if len(res.Outcomes) != 12 {
		t.Fatalf("outcomes = %d, want 12", len(res.Outcomes))
	}
	tab := res.Table()
	if len(tab.Rows) != 12 || len(tab.Columns) != 9 {
		t.Errorf("table shape = %dx%d, want 12x9", len(tab.Rows), len(tab.Columns))
	}
	if res.Outcome("hybrid", 0.5, true) == nil || res.Outcome("kubernetes", 1.0, false) == nil {
		t.Error("expected cells missing")
	}
}
