package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/metrics"
	"hyscale/internal/platform"
	"hyscale/internal/resources"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// Parameter sweeps: §III-C's robustness claim ("From varying these
// parameters, we found the results followed the same general trends"), the
// target-utilization sensitivity of the algorithms, and heterogeneous
// clusters (§I notes most clouds are heterogeneous).

// Fig3SweepResult verifies the Fig. 3 trend across total-bandwidth and
// request-size settings: horizontal network scaling keeps helping, tapering
// around 8 replicas, in every configuration.
type Fig3SweepResult struct {
	// Configs labels each sweep point ("100Mbps/10Mb" etc.).
	Configs []string
	// GainAt8 is the 1→8 replica speedup per config.
	GainAt8 []float64
	// TaperRatio is the 8→16 replica speedup per config (≈1 means taper).
	TaperRatio []float64
}

// Table renders the sweep.
func (r *Fig3SweepResult) Table() *Table {
	t := &Table{
		Title:   "§III-C sweep: network scaling trend across bandwidth and request size",
		Columns: []string{"config", "gain 1->8 replicas", "ratio 8->16 (taper)"},
	}
	for i, c := range r.Configs {
		t.AddRow(c, fmt.Sprintf("%.2fx", r.GainAt8[i]), fmt.Sprintf("%.2fx", r.TaperRatio[i]))
	}
	return t
}

// RunFig3Sweep runs the Fig. 3 scenario grid over {50,100,200} Mbps total
// bandwidth and {5,10,20} Mb payloads — 27 independent runs compiled up
// front and fanned through the executor.
func RunFig3Sweep(opts Options) (*Fig3SweepResult, error) {
	opts = opts.scaled()
	res := &Fig3SweepResult{}
	bandwidths := []float64{50, 100, 200}
	payloads := []float64{5, 10, 20}
	replicaGrid := []int{1, 8, 16}

	var specs []runner.RunSpec
	for _, totalMbps := range bandwidths {
		for _, payloadMb := range payloads {
			for _, replicas := range replicaGrid {
				specs = append(specs, netSweepRunSpec(opts, replicas, totalMbps/float64(replicas), payloadMb, totalMbps))
			}
		}
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, totalMbps := range bandwidths {
		for _, payloadMb := range payloads {
			means := make(map[int]time.Duration)
			for _, replicas := range replicaGrid {
				sum := results[i].Summary
				if sum.Completed == 0 {
					return nil, fmt.Errorf("fig3 sweep %v/%v x%d: no requests completed", totalMbps, payloadMb, replicas)
				}
				means[replicas] = sum.MeanLatency
				i++
			}
			res.Configs = append(res.Configs, fmt.Sprintf("%.0fMbps/%.0fMb", totalMbps, payloadMb))
			res.GainAt8 = append(res.GainAt8, float64(means[1])/float64(means[8]))
			res.TaperRatio = append(res.TaperRatio, float64(means[8])/float64(means[16]))
		}
	}
	return res, nil
}

// netSweepRunSpec compiles the §III-C scenario with configurable payload and
// bandwidth; the injection window keeps offered load at ~80 % of the total
// bandwidth like the base experiment.
func netSweepRunSpec(opts Options, replicas int, capEach, payloadMb, totalMbps float64) runner.RunSpec {
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Nodes = replicas
	cfg.MonitorPeriod = 0
	cfg.BaseLatency = 0
	cfg.DistributionOverhead = 0
	svc := workload.ServiceSpec{
		Name: "net-sweep", Kind: workload.KindNetworkBound,
		CPUPerRequest: 0.005, CPUOverheadPerRequest: 0.005,
		MemPerRequest: 1, NetPerRequest: payloadMb, BaselineMemMB: 80,
		InitialReplicaCPU: 0.5, InitialReplicaMemMB: 256, InitialReplicaNetMbps: capEach,
		MinReplicas: 1, MaxReplicas: 16, Timeout: 10 * time.Minute,
	}
	// Offered load ≈ 40 % of the total cap, matching the base Fig. 3 run.
	window := time.Duration(float64(microRequests) * payloadMb / (totalMbps * 0.4) * float64(time.Second))
	spec := runner.RunSpec{
		Name:       fmt.Sprintf("fig3sweep/%.0fMbps-%.0fMb-x%d", totalMbps, payloadMb, replicas),
		Seed:       opts.Seed,
		Platform:   cfg,
		Duration:   window + 2*time.Second,
		DrainExtra: 30 * time.Minute,
		Services:   []runner.ServiceRun{{Spec: svc}},
		Inject:     []runner.InjectSpec{{At: 2 * time.Second, Window: window, Service: svc.Name, Count: microRequests}},
	}
	for i := 1; i < replicas; i++ {
		spec.Pinned = append(spec.Pinned, runner.PinnedReplica{
			Service: svc.Name, Node: fmt.Sprintf("node-%d", i),
			Alloc: resources.Vector{CPU: 0.5, MemMB: 256, NetMbps: capEach},
		})
	}
	for i := 0; i < replicas; i++ {
		spec.Stress = append(spec.Stress, runner.StressSpec{
			Node: fmt.Sprintf("node-%d", i), Alloc: resources.Vector{CPU: 2, MemMB: 64},
			CPUDemand: 2, NetFlows: 32,
		})
	}
	return spec
}

// TargetUtilResult sweeps the utilization target — the one knob every
// algorithm shares — showing the latency/efficiency trade-off.
type TargetUtilResult struct {
	Targets []float64
	// PerAlgo maps algorithm -> mean latency per target.
	PerAlgo map[string][]metrics.Summary
	// MachineHours maps algorithm -> machine-hours per target.
	MachineHours map[string][]float64
	order        []string
}

// Table renders the sweep.
func (r *TargetUtilResult) Table() *Table {
	t := &Table{
		Title:   "Sensitivity: utilization target sweep (CPU-bound, low-burst)",
		Columns: []string{"algorithm", "target", "mean response", "failed %", "machine-hours"},
	}
	for _, algo := range r.order {
		for i, target := range r.Targets {
			s := r.PerAlgo[algo][i]
			t.AddRow(
				algo,
				fmt.Sprintf("%.0f%%", target*100),
				fmtDur(s.MeanLatency),
				fmt.Sprintf("%.2f", s.FailedPercent()),
				fmt.Sprintf("%.2f", r.MachineHours[algo][i]),
			)
		}
	}
	return t
}

// RunTargetUtilSweep runs kubernetes and hybridmem at 30/50/70 % targets —
// six independent runs compiled up front and fanned through the executor.
func RunTargetUtilSweep(opts Options) (*TargetUtilResult, error) {
	opts = opts.scaled()
	res := &TargetUtilResult{
		Targets:      []float64{0.3, 0.5, 0.7},
		PerAlgo:      make(map[string][]metrics.Summary),
		MachineHours: make(map[string][]float64),
		order:        []string{"kubernetes", "hybridmem"},
	}
	var specs []runner.RunSpec
	for _, algoName := range res.order {
		for _, target := range res.Targets {
			services := makeServices(workload.KindCPUBound, 15, LowBurst, opts.Seed)
			for i := range services {
				services[i].target = target
			}
			row := macroRow{algorithm: algoName, label: fmt.Sprintf("%s@%.0f%%", algoName, target*100)}
			specs = append(specs, row.compile("targetutil", services, opts))
		}
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, algoName := range res.order {
		for range res.Targets {
			r := results[i]
			i++
			res.PerAlgo[algoName] = append(res.PerAlgo[algoName], r.Summary)
			res.MachineHours[algoName] = append(res.MachineHours[algoName], r.Cost.MachineHours)
		}
	}
	return res, nil
}

// HookHeteroBigNodes is the registered runner hook that converts a freshly
// built world into the heterogeneous cluster of RunHeterogeneous.
const HookHeteroBigNodes = "hetero-big-nodes"

func init() {
	runner.RegisterHook(HookHeteroBigNodes, func(w *platform.World, _ runner.RunSpec) (runner.Finalizer, error) {
		// Replace the last 9 uniform nodes with big 8-core/16GiB machines.
		for i := 10; i < 19; i++ {
			id := fmt.Sprintf("node-%d", i)
			if _, err := w.Cluster().RemoveNode(id); err != nil {
				return nil, err
			}
			w.Monitor().DetachNode(id)
			big := cluster.DefaultNodeConfig(fmt.Sprintf("big-%d", i))
			big.Capacity = resources.Vector{CPU: 8, MemMB: 16384, NetMbps: 2000}
			big.Net.CapacityMbps = 2000
			if err := w.Cluster().AddNode(big); err != nil {
				return nil, err
			}
			w.Monitor().AttachNode(w.Cluster().Node(big.ID))
		}
		return nil, nil
	})
}

// RunHeterogeneous exercises the algorithms on a heterogeneous cluster —
// half the machines twice as large — verifying placement respects per-node
// capacities (§I: "most cloud clusters are heterogeneous").
func RunHeterogeneous(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	return runMacroSpecs(
		"Heterogeneous cluster: 10 small + 9 double-size nodes (CPU-bound, high-burst)",
		"heterogeneous",
		services,
		[]macroRow{
			{algorithm: "kubernetes", hooks: []string{HookHeteroBigNodes}},
			{algorithm: "hybrid", hooks: []string{HookHeteroBigNodes}},
			{algorithm: "hybridmem", hooks: []string{HookHeteroBigNodes}},
		},
		opts,
	)
}
