// Package experiments contains one reproducible harness per table and
// figure in the paper's evaluation (§III and §VI). Each experiment builds a
// World, drives the paper's workload, and returns a typed result that can
// render itself as the same rows/series the paper reports. The package is
// the single source of truth mapping paper artefacts to code — see
// DESIGN.md's per-experiment index.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"hyscale/internal/obs"
	"hyscale/internal/runner"
)

// Table is a rendered experiment artefact: the rows behind one paper figure
// or table.
type Table struct {
	// Title names the paper artefact, e.g. "Figure 2: ...".
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold pre-formatted cells; each row must have len(Columns) cells.
	Rows [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders an aligned plain-text table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown, used when
// regenerating EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed),
// with the title as a comment line — the format cmd/hyscale-bench's -csv
// flag writes for plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRec(t.Columns)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}

// Slug returns a filesystem-friendly name derived from the title.
func (t *Table) Slug() string {
	s := strings.ToLower(t.Title)
	var b strings.Builder
	dash := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// Options tunes experiment size so `go test -bench` stays quick while
// cmd/hyscale-bench can run paper-sized experiments.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies experiment durations (1.0 = paper-sized). Bench
	// defaults use 0.2.
	Scale float64
	// Parallel bounds how many runs execute concurrently (<=0 uses
	// GOMAXPROCS). Results are identical for any value: every run is an
	// isolated world with a seed fixed at compile time.
	Parallel int
	// Observe journals every run's scaling decisions and per-service time
	// series (see internal/obs); TakeArtifacts drains the collected
	// run reports. cmd/hyscale-bench -report sets this.
	Observe bool
}

// DefaultOptions returns paper-sized settings.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 1.0} }

func (o Options) scaled() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

var (
	timingsMu sync.Mutex
	timings   []runner.Timing
	artifacts []obs.RunReport
)

// execute fans the compiled specs through the runner with the experiment's
// parallelism, accumulating per-run wall-clock timings for TakeTimings and —
// when Options.Observe is set — per-run journals for TakeArtifacts.
func execute(specs []runner.RunSpec, opts Options) ([]runner.Result, error) {
	if opts.Observe {
		for i := range specs {
			specs[i].Observe = true
		}
	}
	results, ts, err := runner.Execute(opts.Parallel, opts.Seed, specs)
	timingsMu.Lock()
	timings = append(timings, ts...)
	if opts.Observe {
		// Keep only the lightweight journal + summary, not the Result's
		// *World — a paper-sized -all batch must not retain every world.
		for _, r := range results {
			if r.Journal == nil {
				continue
			}
			artifacts = append(artifacts, obs.RunReport{
				Name:      r.Spec.Name,
				Label:     r.Spec.RowLabel(),
				Algorithm: r.Spec.Algorithm,
				Seed:      r.Spec.Seed,
				Duration:  r.Spec.Duration,
				Summary:   r.Summary,
				Journal:   r.Journal,
				Counters:  runCounters(r),
			})
		}
	}
	timingsMu.Unlock()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runCounters flattens one run's control-plane counters — hardening,
// fault-injection fallout and self-healing recovery — into the ordered
// name/value pairs the Markdown report renders. The order is fixed so report
// bytes stay deterministic.
func runCounters(r runner.Result) []obs.Counter {
	a, rec := r.Actions, r.Recovery
	out := []obs.Counter{
		{Name: "retries", Value: a.Retries},
		{Name: "abandoned actions", Value: a.AbandonedActions},
		{Name: "stale snapshots", Value: a.StaleSnapshots},
		{Name: "placement failures", Value: a.PlacementFailures},
		{Name: "pending retries (end of run)", Value: uint64(r.PendingRetries)},
		{Name: "monitor crash periods", Value: r.MonitorCrashes},
		{Name: "nodes suspected", Value: rec.Suspected},
		{Name: "nodes declared dead", Value: rec.DeclaredDead},
		{Name: "nodes recovered", Value: rec.Recovered},
		{Name: "replicas lost", Value: rec.ReplicasLost},
		{Name: "replicas replaced", Value: rec.Replaced},
		{Name: "replicas re-adopted", Value: rec.Readopted},
		{Name: "stale replicas drained", Value: rec.StaleDrained},
		{Name: "reconciles cancelled", Value: rec.ReconcileCancelled},
		{Name: "checkpoint restores", Value: rec.CheckpointRestores},
		{Name: "cold restarts", Value: rec.ColdRestarts},
	}
	// Call-graph runs append the cascade-defense counters; runs without a
	// graph keep the exact pre-resilience counter list, so existing report
	// artifacts are byte-identical.
	if r.Cascade != nil && r.Resilience != nil {
		cs, rc := r.Cascade, r.Resilience
		out = append(out,
			obs.Counter{Name: "roots generated", Value: cs.RootGenerated},
			obs.Counter{Name: "roots completed", Value: cs.RootCompleted},
			obs.Counter{Name: "roots shed", Value: cs.RootShed},
			obs.Counter{Name: "roots deadline-exceeded", Value: cs.RootDeadline},
			obs.Counter{Name: "roots failed", Value: cs.RootFailed},
			obs.Counter{Name: "requests shed", Value: rc.Shed},
			obs.Counter{Name: "call retries issued", Value: rc.Retries},
			obs.Counter{Name: "call retries denied (budget)", Value: rc.RetriesDenied},
			obs.Counter{Name: "call deadline misses", Value: rc.DeadlineExceeded},
			obs.Counter{Name: "breaker short-circuits", Value: rc.ShortCircuited},
			obs.Counter{Name: "breaker opens", Value: rc.BreakerOpens},
		)
	}
	return out
}

// TakeTimings drains the per-run wall-clock timings accumulated since the
// last call — cmd/hyscale-bench prints them in its report footer. Timings
// are measurement metadata: they never appear in experiment tables, so
// rendered reports stay byte-identical across parallelism settings.
func TakeTimings() []runner.Timing {
	timingsMu.Lock()
	defer timingsMu.Unlock()
	out := timings
	timings = nil
	return out
}

// TakeArtifacts drains the run reports journaled since the last call (empty
// unless experiments ran with Options.Observe). Reports come back in spec
// order per experiment, so a -report directory's artifact set is
// deterministic for any parallelism.
func TakeArtifacts() []obs.RunReport {
	timingsMu.Lock()
	defer timingsMu.Unlock()
	out := artifacts
	artifacts = nil
	return out
}
