package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
	"hyscale/internal/lb"
	"hyscale/internal/loadgen"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// The extension experiments go beyond the paper's figures: ablations of the
// HyScale design choices, the monitor-period fairness question the paper
// raises against ElasticDocker (§II-A), the bin-packing cost trade-off
// (§I's power argument, priced by the cost package), and availability under
// node churn (the paper's dynamic-machine future work). They are indexed in
// DESIGN.md §7.

// CostTableFor renders a MacroResult with the cost columns appended.
func CostTableFor(m *MacroResult) *Table {
	t := &Table{
		Title: m.Name,
		Columns: []string{"algorithm", "mean response", "failed %", "machine-hours",
			"sla-violation %", "total cost $"},
	}
	for _, o := range m.Outcomes {
		t.AddRow(
			o.Algorithm,
			fmtDur(o.Summary.MeanLatency),
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%.2f", o.Cost.MachineHours),
			fmt.Sprintf("%.2f", o.Cost.ViolationPercent()),
			fmt.Sprintf("%.4f", o.Cost.TotalCost),
		)
	}
	return t
}

// RunAblation measures what each HyScale mechanism contributes: the full
// HYSCALE_CPU+Mem against variants with reclamation disabled, vertical
// scaling disabled (horizontal-only) and horizontal scaling disabled
// (vertical-only), on the mixed high-burst workload where every mechanism
// matters.
func RunAblation(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindMixed, 15, HighBurst, opts.Seed)
	return runMacroSpecs(
		"Ablation: HYSCALE_CPU+Mem mechanisms (mixed, high-burst)",
		"ablation",
		services,
		[]macroRow{
			{algorithm: "hybridmem"},
			{algorithm: "hybridmem-noreclaim"},
			{algorithm: "hybridmem-vertical-only"},
			{algorithm: "hybridmem-horizontal-only"},
		},
		opts,
	)
}

// RunMonitorPeriodSensitivity revisits the fairness critique the paper aims
// at ElasticDocker (§II-A): ElasticDocker polled every 4 s against a 30 s
// Kubernetes, an "unfair advantage to react to fluctuating workloads". Here
// HYSCALE_CPU+Mem runs at 5 s and at a handicapped 30 s against the 5 s
// Kubernetes baseline on CPU-bound high-burst load, quantifying how much of
// the hybrid advantage survives slower decisions.
func RunMonitorPeriodSensitivity(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	return runMacroSpecs(
		"Sensitivity: monitor period (CPU-bound, high-burst)",
		"monitor-period",
		services,
		[]macroRow{
			{label: "kubernetes@5s", algorithm: "kubernetes", monitorPeriod: 5 * time.Second},
			{label: "hybridmem@5s", algorithm: "hybridmem", monitorPeriod: 5 * time.Second},
			{label: "hybridmem@15s", algorithm: "hybridmem", monitorPeriod: 15 * time.Second},
			{label: "hybridmem@30s", algorithm: "hybridmem", monitorPeriod: 30 * time.Second},
		},
		opts,
	)
}

// RunPlacement compares the spread and bin-pack placement heuristics on
// machines used versus performance — the §I trade-off between power savings
// (fewer powered machines) and co-location contention.
func RunPlacement(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, LowBurst, opts.Seed)
	return runMacroSpecs(
		"Placement: spread vs binpack (CPU-bound, low-burst)",
		"placement",
		services,
		[]macroRow{
			{label: "kubernetes/spread", algorithm: "kubernetes", placement: core.PlacementSpread},
			{label: "kubernetes/binpack", algorithm: "kubernetes", placement: core.PlacementBinPack},
			{label: "hybridmem/spread", algorithm: "hybridmem", placement: core.PlacementSpread},
			{label: "hybridmem/binpack", algorithm: "hybridmem", placement: core.PlacementBinPack},
		},
		opts,
	)
}

// RunStateful explores the stateful-service question the paper reserves for
// future work (§VII): each fresh replica must first receive 2 GiB of state
// (~80 s of transfer) before serving, so horizontal scale-ups take effect
// late. The outcome is not a foregone conclusion — slow scale-ups penalise
// every algorithm's reactive replicas, while Kubernetes' coarse one-CPU
// replica granularity leaves it accidentally over-provisioned between
// bursts — and the harness records whichever way the trade-off falls (see
// EXPERIMENTS.md).
func RunStateful(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	for i := range services {
		services[i].spec.StateSyncMB = 2048
		services[i].spec.StateSyncMbps = 200
		// Keep the burst within one machine's vertical headroom so vertical
		// scaling is at least in the running against standing replicas.
		services[i].pattern = loadgen.Scaled{Pattern: services[i].pattern, Factor: 0.55}
	}
	return runMacroSpecs(
		"Stateful services: 2 GiB state sync per new replica (CPU-bound, high-burst)",
		"stateful",
		services,
		[]macroRow{
			{algorithm: "kubernetes"},
			{algorithm: "hybrid"},
			{algorithm: "hybridmem"},
		},
		opts,
	)
}

// RunPredictive evaluates the "machine learning aspect" of the paper's
// future work (§VII) in its simplest form: the same algorithms wrapped with
// one-period linear usage extrapolation, on CPU-bound high-burst load where
// reaction lag is what hurts.
func RunPredictive(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	return runMacroSpecs(
		"Predictive scaling: one-period usage extrapolation (CPU-bound, high-burst)",
		"predictive",
		services,
		[]macroRow{
			{algorithm: "kubernetes"},
			{algorithm: "kubernetes-predictive"},
			{algorithm: "hybridmem"},
			{algorithm: "hybridmem-predictive"},
		},
		opts,
	)
}

// RunLBPolicy compares load-balancer routing policies under HYSCALE_CPU+Mem,
// whose vertical scaling makes replica sizes heterogeneous: plain
// least-outstanding treats a 3-CPU replica and a 0.25-CPU replica as equals,
// while the weighted policy routes per unit of allocated CPU.
func RunLBPolicy(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	return runMacroSpecs(
		"Load balancing: least-outstanding vs weighted (hybridmem, CPU-bound, high-burst)",
		"lbpolicy",
		services,
		[]macroRow{
			{label: "hybridmem/least-outstanding", algorithm: "hybridmem", lbPolicy: lb.LeastOutstanding},
			{label: "hybridmem/weighted", algorithm: "hybridmem", lbPolicy: lb.WeightedLeastOutstanding},
			{label: "kubernetes/least-outstanding", algorithm: "kubernetes", lbPolicy: lb.LeastOutstanding},
			{label: "kubernetes/weighted", algorithm: "kubernetes", lbPolicy: lb.WeightedLeastOutstanding},
		},
		opts,
	)
}

// RunNodeChurn measures availability under machine failures: a quarter of
// the worker nodes fail mid-run (their containers die with them) and fresh
// machines join later. The algorithms' min-replica enforcement must
// re-replicate the lost services — the fault-tolerance property hybrid
// scaling shares with horizontal scaling (§I).
func RunNodeChurn(opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, LowBurst, opts.Seed)
	dur := macroDuration(opts)

	// Kill nodes 0..3 at 40% of the run, one second apart; replacement
	// machines join at 70%. Declarative RunSpec fields, so the churn schedule
	// serializes with the spec.
	var failures []runner.NodeFailure
	var recoveries []runner.NodeRecovery
	for i := 0; i < 4; i++ {
		failures = append(failures, runner.NodeFailure{
			At:   time.Duration(float64(dur)*0.4) + time.Duration(i)*time.Second,
			Node: fmt.Sprintf("node-%d", i),
		})
		recoveries = append(recoveries, runner.NodeRecovery{
			At:     time.Duration(float64(dur)*0.7) + time.Duration(i)*time.Second,
			Config: cluster.DefaultNodeConfig(fmt.Sprintf("spare-%d", i)),
		})
	}

	return runMacroSpecs(
		"Availability: node churn, 4 of 19 workers fail (CPU-bound, low-burst)",
		"node-churn",
		services,
		[]macroRow{
			{algorithm: "kubernetes", nodeFailures: failures, nodeRecoveries: recoveries},
			{algorithm: "hybrid", nodeFailures: failures, nodeRecoveries: recoveries},
			{algorithm: "hybridmem", nodeFailures: failures, nodeRecoveries: recoveries},
		},
		opts,
	)
}
