package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/faults"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/platform"
	"hyscale/internal/resilience"
	"hyscale/internal/runner"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// The cascade experiment measures cascading-failure behaviour on dependency-
// graph workloads. Two topologies — a three-tier synchronous chain and a
// fan-out DAG with a shared leaf — take a mid-run two-phase downstream fault
// that decays the way real incidents do: the chain's leaf slows 40x then eases
// to 15x; the DAG's shared leaf slows 24x (with a black-holed stretch inside
// the severe phase) then eases to 6x — while naive clients retry every
// failed call. Each of the paper's four algorithms runs under three defense
// levels:
//
//	off      — naive retries only: no breakers, no budget, no deadlines, no
//	           shedding. The retry-storm configuration.
//	breakers — per-edge circuit breakers added to the naive retries.
//	full     — breakers + a 10% retry budget + deadline propagation +
//	           queue-occupancy load shedding.
//
// The table reports goodput (roots completed / roots offered), tail latency,
// retry amplification (total call attempts / first attempts) and time-to-
// recovery: how long after the fault opens the per-second root goodput rate
// takes to sustainably regain 80% of its pre-fault mean.

// cascadeDuration is the per-cell horizon: 30 minutes at Scale=1.
func cascadeDuration(opts Options) time.Duration {
	return time.Duration(0.5 * float64(macroDuration(opts)))
}

// The downstream fault opens at 30% and clears at 60% of the horizon, leaving
// a 40% tail in which time-to-recovery is measurable.
const (
	cascadeFaultFrom = 0.30
	cascadeFaultTo   = 0.60
)

// cascadeTopology couples a call DAG with its service set and the fault
// schedule its deepest tier suffers.
type cascadeTopology struct {
	name  string
	graph workload.CallGraph
	// services lists every tier; only roots get external load.
	services []workload.ServiceSpec
	// windows builds the fault schedule for a run of the given horizon.
	windows func(dur time.Duration) []faults.Window
	// shedThreshold is the full-defense queue-occupancy shed threshold,
	// sized to the topology's healthy leaf concurrency the way an operator
	// sizes an admission limit: low enough to bound doomed queueing under
	// overload, high enough that healthy bursts never shed.
	shedThreshold float64
}

// cascadeService builds one tier: CPU-bound, bounded queue. Timeouts shrink
// down the stack (root tiers wait longest) — the standard RPC arrangement
// that also makes naive retry storms possible: a deep call can time out and
// be retried while its caller is still alive, after the slow tier already
// burned CPU on the doomed attempt.
func cascadeService(name string, cpuPerReq float64, maxReplicas int, timeout time.Duration) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: workload.KindCPUBound,
		CPUPerRequest:         cpuPerReq,
		CPUOverheadPerRequest: 0.005,
		MemPerRequest:         2,
		BaselineMemMB:         300,
		InitialReplicaCPU:     1,
		InitialReplicaMemMB:   512,
		MinReplicas:           2,
		MaxReplicas:           maxReplicas,
		Timeout:               timeout,
		QueueLimit:            96,
	}
}

// cascadeTopologies returns the two workloads under test.
func cascadeTopologies() []cascadeTopology {
	chain := cascadeTopology{
		name: "chain",
		graph: workload.CallGraph{Edges: []workload.CallEdge{
			{From: "frontend", To: "mid"},
			{From: "mid", To: "backend"},
		}},
		services: []workload.ServiceSpec{
			cascadeService("frontend", 0.02, 6, 10*time.Second),
			cascadeService("mid", 0.03, 6, 6*time.Second),
			cascadeService("backend", 0.04, 6, 3*time.Second),
		},
		// A two-phase decaying fault: a severe slowdown that eases to a
		// moderate one, the shape of a real incident. The severe phase
		// overwhelms even a scaled-out tier, so an undefended retry storm
		// piles past the deadline wall and the collapse self-sustains
		// through BOTH phases (the standing queue of retried work keeps
		// every request over deadline at factor 15 too). Defended runs
		// recover during the fault: breakers+scaling in the severe phase,
		// and even the never-scaling network HPA in the moderate phase,
		// where two bursting replicas can serve ~11.6 rps if — and only if
		// — concurrency is kept bounded.
		windows: func(dur time.Duration) []faults.Window {
			return []faults.Window{
				{
					Kind: faults.KindSlowBackend, Target: "backend",
					From:   time.Duration(cascadeFaultFrom * float64(dur)),
					To:     time.Duration(0.45 * float64(dur)),
					Factor: 40,
				},
				{
					Kind: faults.KindSlowBackend, Target: "backend",
					From:   time.Duration(0.45 * float64(dur)),
					To:     time.Duration(cascadeFaultTo * float64(dur)),
					Factor: 15,
				},
			}
		},
		shedThreshold: 0.05,
	}
	fanout := cascadeTopology{
		name: "fanout",
		graph: workload.CallGraph{Edges: []workload.CallEdge{
			{From: "gateway", To: "catalog"},
			{From: "gateway", To: "orders", Prob: 0.7},
			{From: "catalog", To: "db"},
			{From: "orders", To: "db", Calls: 2},
		}},
		services: []workload.ServiceSpec{
			cascadeService("gateway", 0.015, 6, 10*time.Second),
			cascadeService("catalog", 0.025, 6, 6*time.Second),
			cascadeService("orders", 0.025, 6, 6*time.Second),
			cascadeService("db", 0.035, 8, 3*time.Second),
		},
		// The shared leaf degrades severely (lock convoy), is fully
		// black-holed for a stretch — the blackout feeds breaker accrual —
		// then limps at a moderate factor before clearing. The fan-out
		// amplifies the storm: every root costs ~2.4 db calls, so the
		// undefended pile is deeper and stays collapsed through the
		// moderate phase, while defended runs come back as soon as the
		// blackout lifts.
		windows: func(dur time.Duration) []faults.Window {
			return []faults.Window{
				{
					Kind: faults.KindSlowBackend, Target: "db",
					From:   time.Duration(cascadeFaultFrom * float64(dur)),
					To:     time.Duration(0.45 * float64(dur)),
					Factor: 24,
				},
				{
					Kind: faults.KindBackend, Target: "db",
					From: time.Duration(0.40 * float64(dur)),
					To:   time.Duration(0.46 * float64(dur)),
				},
				// Factor 6 keeps the moderate phase inside the band where
				// the storm itself is the overload: an undefended client's
				// retried calls (~1.7x) exceed what two bursting db
				// replicas serve, while the defended call rate fits.
				{
					Kind: faults.KindSlowBackend, Target: "db",
					From:   time.Duration(0.46 * float64(dur)),
					To:     time.Duration(cascadeFaultTo * float64(dur)),
					Factor: 6,
				},
			}
		},
		shedThreshold: 0.07,
	}
	return []cascadeTopology{chain, fanout}
}

// cascadeDefense is one defense level of the comparison.
type cascadeDefense struct {
	name string
	cfg  resilience.Config
}

// cascadeDefenses returns the three levels every (topology, algorithm) pair
// runs under. All three retry with the same attempt bound so the defenses —
// not the retry count — are the only variable. shedThreshold is the
// topology-sized admission limit used by the full level.
func cascadeDefenses(shedThreshold float64) []cascadeDefense {
	retryStorm := &resilience.RetryConfig{MaxAttempts: 4, Backoff: 150 * time.Millisecond}
	budgeted := &resilience.RetryConfig{MaxAttempts: 4, Backoff: 150 * time.Millisecond, Budget: 0.1}
	breakers := &resilience.BreakerConfig{FailuresToOpen: 5, OpenFor: 2 * time.Second, HalfOpenProbes: 1}
	return []cascadeDefense{
		{name: "off", cfg: resilience.Config{Retry: retryStorm}},
		{name: "breakers", cfg: resilience.Config{Retry: retryStorm, Breakers: breakers}},
		// The shed threshold is deliberately low: with a 96-deep queue and
		// 3s leaf deadlines, anything past a few in-flight slow requests is
		// already doomed work, and shedding early is what keeps an
		// under-provisioned tier completing at its capacity instead of
		// missing every deadline at once under processor sharing.
		{name: "full", cfg: resilience.Config{
			Retry:     budgeted,
			Breakers:  breakers,
			Deadlines: &resilience.DeadlineConfig{Margin: 50 * time.Millisecond},
			Shedding:  &resilience.ShedConfig{UtilThreshold: shedThreshold, MaxShed: 0.95},
		}},
	}
}

// CascadeOutcome is one (topology, algorithm, defense) cell.
type CascadeOutcome struct {
	Topology  string
	Algorithm string
	Defense   string
	// GoodputPercent is roots completed / roots offered.
	GoodputPercent float64
	// Amplification is total call attempts / first attempts (1.0 = no
	// retries).
	Amplification float64
	// RecoverySeconds is the time from fault onset until the per-second
	// root goodput rate sustainably regains 80% of its pre-fault mean
	// (5-sample moving average holding to the end of the run). Defended
	// configurations recover while the fault is still active; an
	// undefended collapse only clears after the fault does.
	// (-1: never within the horizon; 0: goodput never degraded).
	RecoverySeconds float64
	// DegradedSeconds counts the seconds the per-second goodput rate spent
	// below 80% of its pre-fault mean — the total outage, wherever it fell.
	DegradedSeconds float64
	Summary         metrics.Summary
	Cascade         platform.CascadeStats
	Resilience      resilience.Counters
}

// CascadeResult is the material behind the cascading-failure comparison.
type CascadeResult struct {
	Name     string
	Outcomes []CascadeOutcome
}

// Outcome returns the cell for (topology, algorithm, defense), or nil.
func (r *CascadeResult) Outcome(topology, algorithm, defense string) *CascadeOutcome {
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Topology == topology && o.Algorithm == algorithm && o.Defense == defense {
			return o
		}
	}
	return nil
}

// Table renders the cascade comparison.
func (r *CascadeResult) Table() *Table {
	t := &Table{
		Title: r.Name,
		Columns: []string{"topology", "algorithm", "defense", "goodput %", "p99",
			"amplif.", "recovery", "degraded", "shed", "short-circuits", "deadline-miss"},
	}
	for _, o := range r.Outcomes {
		recovery := "-"
		switch {
		case o.RecoverySeconds == 0:
			recovery = "0s"
		case o.RecoverySeconds > 0:
			recovery = fmt.Sprintf("%.0fs", o.RecoverySeconds)
		}
		t.AddRow(
			o.Topology,
			o.Algorithm,
			o.Defense,
			fmt.Sprintf("%.2f", o.GoodputPercent),
			o.Summary.P99Latency.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", o.Amplification),
			recovery,
			fmt.Sprintf("%.0fs", o.DegradedSeconds),
			fmt.Sprintf("%d", o.Resilience.Shed),
			fmt.Sprintf("%d", o.Resilience.ShortCircuited),
			fmt.Sprintf("%d", o.Resilience.DeadlineExceeded),
		)
	}
	return t
}

// cascadeProbe samples the per-second root-completion rate and measures time
// to recovery: how long after the fault opens the rate takes to sustainably
// regain 80% of its pre-fault mean (a 5-sample moving average holding for at
// least 60s). A defended system recovers while the fault is still active — the
// breaker/shedder finds the post-fault operating point in seconds — whereas
// an undefended collapse only clears after the fault itself does. The fault
// window is derived from the spec's own fault config, so the hook needs no
// out-of-band parameters.
type cascadeProbe struct {
	faultFrom, faultTo time.Duration
	lastCompleted      uint64
	preSum             float64
	preCount           int
	window             []float64 // rolling 5 per-second rates since fault onset
	recoverAt          time.Duration
	degraded           bool
	degradedSeconds    int // samples below the 80% bar over the whole run
}

func (p *cascadeProbe) attach(w *platform.World, spec runner.RunSpec) error {
	p.faultFrom, p.faultTo = -1, -1
	for _, win := range spec.Platform.Faults.Windows {
		if p.faultFrom < 0 || win.From < p.faultFrom {
			p.faultFrom = win.From
		}
		if win.To > p.faultTo {
			p.faultTo = win.To
		}
	}
	p.recoverAt = -1
	return w.Engine().SchedulePeriodic(time.Second, time.Second, func(e *sim.Engine) {
		now := e.Now()
		completed := w.CascadeStats().RootCompleted
		rate := float64(completed - p.lastCompleted)
		p.lastCompleted = completed
		if p.faultFrom < 0 || now < p.faultFrom {
			p.preSum += rate
			p.preCount++
			return
		}
		pre := p.preSum / float64(max(p.preCount, 1))
		if rate < 0.8*pre {
			p.degraded = true
			p.degradedSeconds++
		}
		p.window = append(p.window, rate)
		if len(p.window) > 5 {
			p.window = p.window[1:]
		}
		var sum float64
		for _, r := range p.window {
			sum += r
		}
		switch {
		case len(p.window) == 5 && sum/5 >= 0.8*pre:
			if p.recoverAt < 0 {
				p.recoverAt = now
			}
		default:
			// A dip within 60s of a candidate recovery voids it; after 60s
			// the recovery is held — brief purge oscillations at the
			// capacity edge are not a re-outage.
			if p.recoverAt >= 0 && now-p.recoverAt < 60*time.Second {
				p.recoverAt = -1
			}
		}
	})
}

// HookCascadeProbe is the registered runner hook attaching the cascade
// recovery probe; its finalizer reports Extra["recoverySeconds"] (-1: never
// recovered, 0: never degraded).
const HookCascadeProbe = "cascade-probe"

func init() {
	runner.RegisterHook(HookCascadeProbe, func(w *platform.World, spec runner.RunSpec) (runner.Finalizer, error) {
		probe := &cascadeProbe{}
		if err := probe.attach(w, spec); err != nil {
			return nil, err
		}
		return func(res *runner.Result) {
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			recovery := -1.0
			switch {
			case !probe.degraded:
				recovery = 0
			case probe.recoverAt >= 0:
				recovery = (probe.recoverAt - probe.faultFrom).Seconds()
			}
			res.Extra["recoverySeconds"] = recovery
			res.Extra["degradedSeconds"] = float64(probe.degradedSeconds)
		}, nil
	})
}

// cascadeCell parameterises one run of the comparison.
type cascadeCell struct {
	topology  cascadeTopology
	algorithm string
	defense   cascadeDefense
}

// compile turns a cell into a RunSpec: root-only external load, the topology's
// call graph, the defense level's resilience config, and the downstream fault
// window.
func (c cascadeCell) compile(opts Options) runner.RunSpec {
	dur := cascadeDuration(opts)
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Nodes = 12
	cfg.CallGraph = c.topology.graph
	cfg.Resilience = c.defense.cfg
	cfg.Faults = faults.Config{Seed: opts.Seed + 3000, Windows: c.topology.windows(dur)}

	spec := runner.RunSpec{
		Name: fmt.Sprintf("cascade/%s-%s-%s", c.topology.name, c.algorithm, c.defense.name),
		Label: fmt.Sprintf("%s %s %s",
			c.topology.name, c.algorithm, c.defense.name),
		Seed:      opts.Seed,
		Platform:  cfg,
		Algorithm: c.algorithm,
		Duration:  dur,
		Hooks:     []string{HookCascadeProbe},
	}
	roots := make(map[string]bool)
	for _, r := range c.topology.graph.Roots() {
		roots[r] = true
	}
	for _, s := range c.topology.services {
		sr := runner.ServiceRun{Spec: s, Target: 0.5}
		if roots[s.Name] {
			sr.Load = runner.FromPattern(loadgen.Constant{RPS: 12})
		}
		spec.Services = append(spec.Services, sr)
	}
	return spec
}

// cascadeAlgorithms are the paper's four autoscalers.
func cascadeAlgorithms() []string {
	return []string{"kubernetes", "network", "hybrid", "hybridmem"}
}

// RunCascade drives the two dependency-graph topologies through a mid-run
// downstream fault under every (algorithm, defense level) pair and tabulates
// goodput, tail latency, retry amplification and time-to-recovery
// (hyscale-bench -exp cascade).
func RunCascade(opts Options) (*CascadeResult, error) {
	opts = opts.scaled()
	var cells []cascadeCell
	for _, topo := range cascadeTopologies() {
		for _, algo := range cascadeAlgorithms() {
			for _, def := range cascadeDefenses(topo.shedThreshold) {
				cells = append(cells, cascadeCell{topology: topo, algorithm: algo, defense: def})
			}
		}
	}
	specs := make([]runner.RunSpec, len(cells))
	for i, cell := range cells {
		specs[i] = cell.compile(opts)
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	res := &CascadeResult{Name: "Cascade: dependency-graph workloads under a downstream fault"}
	for i, cell := range cells {
		r := results[i]
		o := CascadeOutcome{
			Topology:        cell.topology.name,
			Algorithm:       cell.algorithm,
			Defense:         cell.defense.name,
			RecoverySeconds: r.Extra["recoverySeconds"],
			DegradedSeconds: r.Extra["degradedSeconds"],
			Summary:         r.Summary,
		}
		if r.Cascade != nil {
			o.Cascade = *r.Cascade
			if o.Cascade.RootGenerated > 0 {
				o.GoodputPercent = 100 * float64(o.Cascade.RootCompleted) / float64(o.Cascade.RootGenerated)
			}
		}
		if r.Resilience != nil {
			o.Resilience = *r.Resilience
			o.Amplification = r.Resilience.Amplification()
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res, nil
}
