package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/cost"
	"hyscale/internal/lb"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/platform"
	"hyscale/internal/runner"
	"hyscale/internal/scalermgr"
	"hyscale/internal/workload"
)

// The §VI macro-benchmarks run 15 emulated microservices for an hour on the
// paper's 24-node cluster (5 nodes are load balancers, so 19 workers host
// containers) and compare the scaling algorithms under low-burst (stable)
// and high-burst (spiking) client load.

// LoadShape selects the client load pattern of §VI.
type LoadShape int

// Load shapes.
const (
	LowBurst LoadShape = iota + 1
	HighBurst
)

// String implements fmt.Stringer.
func (l LoadShape) String() string {
	if l == HighBurst {
		return "high-burst"
	}
	return "low-burst"
}

// AlgoOutcome is one algorithm's aggregate result for one workload.
type AlgoOutcome struct {
	Algorithm string
	Summary   metrics.Summary
	Actions   monitor.ActionCounts
	Cost      cost.Report
}

// MacroResult is the material behind one sub-figure (e.g. Fig. 6a).
type MacroResult struct {
	Name     string
	Workload string
	Outcomes []AlgoOutcome
}

// Outcome returns the named algorithm's outcome, or nil.
func (m *MacroResult) Outcome(algorithm string) *AlgoOutcome {
	for i := range m.Outcomes {
		if m.Outcomes[i].Algorithm == algorithm {
			return &m.Outcomes[i]
		}
	}
	return nil
}

// Speedup returns mean-response-time speedup of algorithm b over a
// (a_mean / b_mean), the paper's headline metric.
func (m *MacroResult) Speedup(a, b string) float64 {
	oa, ob := m.Outcome(a), m.Outcome(b)
	if oa == nil || ob == nil || ob.Summary.MeanLatency <= 0 {
		return 0
	}
	return float64(oa.Summary.MeanLatency) / float64(ob.Summary.MeanLatency)
}

// Table renders the request-statistics graph data (failed % split by class
// plus mean response time per algorithm).
func (m *MacroResult) Table() *Table {
	t := &Table{
		Title:   m.Name,
		Columns: []string{"algorithm", "mean response", "p95", "failed %", "removal %", "connection %", "scale-outs", "scale-ins", "vertical ops"},
	}
	for _, o := range m.Outcomes {
		t.AddRow(
			o.Algorithm,
			fmtDur(o.Summary.MeanLatency),
			fmtDur(o.Summary.P95Latency),
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%.2f", o.Summary.RemovalFailedPercent()),
			fmt.Sprintf("%.2f", o.Summary.ConnectionFailedPercent()),
			fmt.Sprintf("%d", o.Actions.ScaleOuts),
			fmt.Sprintf("%d", o.Actions.ScaleIns),
			fmt.Sprintf("%d", o.Actions.Vertical),
		)
	}
	return t
}

// serviceLoad couples a spec with its load pattern.
type serviceLoad struct {
	spec    workload.ServiceSpec
	target  float64
	pattern loadgen.Pattern
}

// newAlgorithm instantiates a scaling algorithm by report name. Ablation
// variants are spelled "<base>-noreclaim", "<base>-vertical-only" and
// "<base>-horizontal-only". The mapping itself lives in runner.NewAlgorithm;
// this wrapper keeps the historical package-local spelling.
func newAlgorithm(name string) (core.Algorithm, error) {
	return runner.NewAlgorithm(name, core.DefaultConfig())
}

// macroDuration returns the experiment horizon: one hour at Scale=1.
func macroDuration(opts Options) time.Duration {
	return time.Duration(float64(time.Hour) * opts.Scale)
}

// macroRow parameterises one algorithm run inside a macro experiment beyond
// the algorithm itself: decision period, placement heuristic, churn schedule
// and named setup hooks. Each row COMPILES to a runner.RunSpec — the macro
// experiments are spec compilers, not executors.
type macroRow struct {
	// label names the row in the result table; defaults to algorithm.
	label string
	// algorithm is the runner.NewAlgorithm spelling ("hybridmem-noreclaim" …).
	algorithm string
	// monitorPeriod overrides the 5 s default when non-zero.
	monitorPeriod time.Duration
	// placement overrides the node-choice heuristic.
	placement core.Placement
	// lbPolicy overrides the load-balancer routing policy when non-zero.
	lbPolicy lb.Policy
	// nodeFailures / nodeRecoveries schedule machine churn.
	nodeFailures   []runner.NodeFailure
	nodeRecoveries []runner.NodeRecovery
	// hooks names registered runner hooks (world mutations a declarative
	// field cannot express, e.g. the heterogeneous node swap).
	hooks []string
	// manager carries the multi-metric manager configuration for
	// "manager"/"manager-cost" rows; nil rows use defaults.
	manager *scalermgr.Config
}

func (r macroRow) rowLabel() string {
	if r.label != "" {
		return r.label
	}
	return r.algorithm
}

// compile lowers a row to a self-contained RunSpec. Every row of a macro
// experiment pins the SAME seed (opts.Seed) so all algorithms face an
// identical arrival sequence — the paper's comparison discipline.
func (r macroRow) compile(name string, services []serviceLoad, opts Options) runner.RunSpec {
	cfg := platform.DefaultConfig(opts.Seed)
	if r.monitorPeriod > 0 {
		cfg.MonitorPeriod = r.monitorPeriod
	}
	if r.lbPolicy != 0 {
		cfg.LBPolicy = r.lbPolicy
	}
	algoCfg := core.DefaultConfig()
	algoCfg.Placement = r.placement
	spec := runner.RunSpec{
		Name:           name + "/" + r.rowLabel(),
		Label:          r.rowLabel(),
		Seed:           opts.Seed,
		Platform:       cfg,
		Algorithm:      r.algorithm,
		AlgoConfig:     &algoCfg,
		Manager:        r.manager,
		Duration:       macroDuration(opts),
		NodeFailures:   r.nodeFailures,
		NodeRecoveries: r.nodeRecoveries,
		Hooks:          r.hooks,
	}
	for _, s := range services {
		spec.Services = append(spec.Services, runner.ServiceRun{
			Spec: s.spec, Target: s.target, Load: runner.FromPattern(s.pattern),
		})
	}
	return spec
}

// runMacro runs the given service set under each algorithm and collects the
// outcomes. The same seed is used for every algorithm so they face an
// identical arrival sequence.
func runMacro(name, workloadName string, services []serviceLoad, algorithms []string, opts Options) (*MacroResult, error) {
	rows := make([]macroRow, len(algorithms))
	for i, a := range algorithms {
		rows[i] = macroRow{algorithm: a}
	}
	return runMacroSpecs(name, workloadName, services, rows, opts)
}

// runMacroSpecs is the generalised macro runner behind runMacro and the
// extension experiments (ablations, sensitivity, churn): it compiles every
// row to a RunSpec and fans them through the deterministic executor.
func runMacroSpecs(name, workloadName string, services []serviceLoad, rows []macroRow, opts Options) (*MacroResult, error) {
	specs := make([]runner.RunSpec, len(rows))
	for i, r := range rows {
		specs[i] = r.compile(name, services, opts)
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	res := &MacroResult{Name: name, Workload: workloadName}
	for _, r := range results {
		res.Outcomes = append(res.Outcomes, AlgoOutcome{
			Algorithm: r.Spec.RowLabel(),
			Summary:   r.Summary,
			Actions:   r.Actions,
			Cost:      r.Cost,
		})
	}
	return res, nil
}

// patternFor builds the per-service load pattern. Services are phase
// shifted so peaks do not all coincide, like independent tenants.
func patternFor(shape LoadShape, baseRPS float64, idx, total int) loadgen.Pattern {
	period := 8 * time.Minute
	shift := time.Duration(float64(period) * float64(idx) / float64(total))
	switch shape {
	case HighBurst:
		return loadgen.Burst{
			Base:       baseRPS * 0.8,
			Peak:       baseRPS * 2.4,
			Period:     10 * time.Minute,
			BurstLen:   2 * time.Minute,
			PhaseShift: time.Duration(float64(10*time.Minute) * float64(idx) / float64(total)),
		}
	default:
		return loadgen.Wave{
			Base:       baseRPS,
			Amplitude:  0.30,
			Period:     period,
			PhaseShift: shift,
		}
	}
}

// makeServices builds the paper's 15 emulated microservices of one kind,
// with per-service parameter variation drawn deterministically from seed.
func makeServices(kind workload.Kind, n int, shape LoadShape, seed int64) []serviceLoad {
	rng := rand.New(rand.NewSource(seed))
	out := make([]serviceLoad, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s-%02d", kind, i)
		spec := workload.ServiceSpec{
			Name: name, Kind: kind,
			CPUOverheadPerRequest: 0.01,
			BackgroundCPU:         0.035,
			BaselineMemMB:         300,
			InitialReplicaCPU:     1.0,
			InitialReplicaMemMB:   768,
			MinReplicas:           1,
			MaxReplicas:           10,
			Timeout:               30 * time.Second,
		}
		var baseRPS float64
		switch kind {
		case workload.KindCPUBound:
			spec.CPUPerRequest = 0.08 + rng.Float64()*0.12 // 0.08..0.20 cpu-s
			spec.MemPerRequest = 2
			// Sized so the 15 services' peaks push the cluster toward its
			// capacity (the "over-encumbered during peak hours" regime of
			// §I) — where coarse fixed-size replicas hit placement limits
			// that fine-grained vertical scaling can still pack around.
			baseRPS = 14 + rng.Float64()*6
		case workload.KindMemoryBound:
			spec.CPUPerRequest = 0.02
			spec.MemPerRequest = 20 + rng.Float64()*20
			baseRPS = 8 + rng.Float64()*6
		case workload.KindNetworkBound:
			spec.NetPerRequest = 4 + rng.Float64()*4 // megabits
			// Networking system calls cost moderate CPU (the paper notes
			// this keeps CPU-driven scalers competitive at low burst), but
			// CPU usage is a weak proxy for bandwidth need, which is what
			// sinks them under high bursts.
			spec.CPUPerRequest = 0.02 + rng.Float64()*0.01
			spec.MemPerRequest = 4
			spec.InitialReplicaNetMbps = 50
			baseRPS = 4 + rng.Float64()*1.5
		case workload.KindMixed:
			spec.CPUPerRequest = 0.10 + rng.Float64()*0.10
			// Mixed services hold a large transient footprint per request,
			// so bursts push a fixed-size replica over its memory limit —
			// the swap cliff that memory-blind algorithms cannot see.
			spec.MemPerRequest = 80 + rng.Float64()*40
			spec.InitialReplicaMemMB = 640
			baseRPS = 8 + rng.Float64()*4
		}
		out = append(out, serviceLoad{
			spec:    spec,
			target:  0.5,
			pattern: patternFor(shape, baseRPS, i, n),
		})
	}
	return out
}

// RunFig6 reproduces Figure 6 (a: low-burst, b: high-burst): 15 CPU-bound
// services; kubernetes vs hybrid vs hybridmem.
func RunFig6(shape LoadShape, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, shape, opts.Seed)
	sub := "6a"
	if shape == HighBurst {
		sub = "6b"
	}
	return runMacro(
		fmt.Sprintf("Figure %s: CPU-bound, %s", sub, shape),
		"cpu-"+shape.String(),
		services,
		[]string{"kubernetes", "hybrid", "hybridmem"},
		opts,
	)
}

// RunFig7 reproduces Figure 7 (a: low-burst, b: high-burst): 15 mixed
// CPU+memory services; kubernetes vs hybrid vs hybridmem.
func RunFig7(shape LoadShape, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindMixed, 15, shape, opts.Seed)
	sub := "7a"
	if shape == HighBurst {
		sub = "7b"
	}
	return runMacro(
		fmt.Sprintf("Figure %s: mixed CPU+memory, %s", sub, shape),
		"mixed-"+shape.String(),
		services,
		[]string{"kubernetes", "hybrid", "hybridmem"},
		opts,
	)
}

// RunFig8 reproduces Figure 8 (a: low-burst, b: high-burst): 15
// network-bound services; all four algorithms including the dedicated
// network scaler.
func RunFig8(shape LoadShape, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindNetworkBound, 15, shape, opts.Seed)
	sub := "8a"
	if shape == HighBurst {
		sub = "8b"
	}
	return runMacro(
		fmt.Sprintf("Figure %s: network-bound, %s", sub, shape),
		"network-"+shape.String(),
		services,
		[]string{"kubernetes", "hybrid", "hybridmem", "network"},
		opts,
	)
}
