package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/cost"
	"hyscale/internal/lb"
	"hyscale/internal/loadgen"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/platform"
	"hyscale/internal/workload"
)

// The §VI macro-benchmarks run 15 emulated microservices for an hour on the
// paper's 24-node cluster (5 nodes are load balancers, so 19 workers host
// containers) and compare the scaling algorithms under low-burst (stable)
// and high-burst (spiking) client load.

// LoadShape selects the client load pattern of §VI.
type LoadShape int

// Load shapes.
const (
	LowBurst LoadShape = iota + 1
	HighBurst
)

// String implements fmt.Stringer.
func (l LoadShape) String() string {
	if l == HighBurst {
		return "high-burst"
	}
	return "low-burst"
}

// AlgoOutcome is one algorithm's aggregate result for one workload.
type AlgoOutcome struct {
	Algorithm string
	Summary   metrics.Summary
	Actions   monitor.ActionCounts
	Cost      cost.Report
}

// MacroResult is the material behind one sub-figure (e.g. Fig. 6a).
type MacroResult struct {
	Name     string
	Workload string
	Outcomes []AlgoOutcome
}

// Outcome returns the named algorithm's outcome, or nil.
func (m *MacroResult) Outcome(algorithm string) *AlgoOutcome {
	for i := range m.Outcomes {
		if m.Outcomes[i].Algorithm == algorithm {
			return &m.Outcomes[i]
		}
	}
	return nil
}

// Speedup returns mean-response-time speedup of algorithm b over a
// (a_mean / b_mean), the paper's headline metric.
func (m *MacroResult) Speedup(a, b string) float64 {
	oa, ob := m.Outcome(a), m.Outcome(b)
	if oa == nil || ob == nil || ob.Summary.MeanLatency <= 0 {
		return 0
	}
	return float64(oa.Summary.MeanLatency) / float64(ob.Summary.MeanLatency)
}

// Table renders the request-statistics graph data (failed % split by class
// plus mean response time per algorithm).
func (m *MacroResult) Table() *Table {
	t := &Table{
		Title:   m.Name,
		Columns: []string{"algorithm", "mean response", "p95", "failed %", "removal %", "connection %", "scale-outs", "scale-ins", "vertical ops"},
	}
	for _, o := range m.Outcomes {
		t.AddRow(
			o.Algorithm,
			fmtDur(o.Summary.MeanLatency),
			fmtDur(o.Summary.P95Latency),
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%.2f", o.Summary.RemovalFailedPercent()),
			fmt.Sprintf("%.2f", o.Summary.ConnectionFailedPercent()),
			fmt.Sprintf("%d", o.Actions.ScaleOuts),
			fmt.Sprintf("%d", o.Actions.ScaleIns),
			fmt.Sprintf("%d", o.Actions.Vertical),
		)
	}
	return t
}

// serviceLoad couples a spec with its load pattern.
type serviceLoad struct {
	spec    workload.ServiceSpec
	target  float64
	pattern loadgen.Pattern
}

// newAlgorithm instantiates a scaling algorithm by report name. Ablation
// variants are spelled "<base>-noreclaim", "<base>-vertical-only" and
// "<base>-horizontal-only".
func newAlgorithm(name string) (core.Algorithm, error) {
	return newAlgorithmWith(name, core.DefaultConfig())
}

func newAlgorithmWith(name string, cfg core.Config) (core.Algorithm, error) {
	// "-predictive" composes with any base algorithm: it wraps the result
	// with linear usage extrapolation over one monitor period.
	if inner, ok := strings.CutSuffix(name, "-predictive"); ok {
		algo, err := newAlgorithmWith(inner, cfg)
		if err != nil {
			return nil, err
		}
		return core.NewPredictive(algo, 5*time.Second), nil
	}
	base, variant, _ := strings.Cut(name, "-")
	opts := core.HyScaleOptions{}
	switch variant {
	case "":
	case "noreclaim":
		opts.DisableReclamation = true
	case "vertical-only":
		opts.DisableHorizontal = true
	case "horizontal-only":
		opts.DisableVertical = true
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm variant %q", name)
	}
	switch base {
	case "kubernetes":
		if variant != "" {
			return nil, fmt.Errorf("experiments: kubernetes has no variants, got %q", name)
		}
		return core.NewKubernetes(cfg), nil
	case "network":
		if variant != "" {
			return nil, fmt.Errorf("experiments: network has no variants, got %q", name)
		}
		return core.NewNetworkHPA(cfg), nil
	case "hybrid":
		return core.NewHyScaleVariant(cfg, false, opts)
	case "hybridmem":
		return core.NewHyScaleVariant(cfg, true, opts)
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// macroDuration returns the experiment horizon: one hour at Scale=1.
func macroDuration(opts Options) time.Duration {
	return time.Duration(float64(time.Hour) * opts.Scale)
}

// runSpec parameterises one algorithm run inside a macro experiment beyond
// the algorithm itself: decision period, placement heuristic, and arbitrary
// world tweaks (e.g. failure injection).
type runSpec struct {
	// label names the row in the result table; defaults to algorithm.
	label string
	// algorithm is the newAlgorithm spelling ("hybridmem-noreclaim", …).
	algorithm string
	// monitorPeriod overrides the 5 s default when non-zero.
	monitorPeriod time.Duration
	// placement overrides the node-choice heuristic.
	placement core.Placement
	// lbPolicy overrides the load-balancer routing policy when non-zero.
	lbPolicy lb.Policy
	// setup, when non-nil, runs after services are deployed and before the
	// clock starts — the hook for failure injection.
	setup func(*platform.World) error
}

func (r runSpec) rowLabel() string {
	if r.label != "" {
		return r.label
	}
	return r.algorithm
}

// runMacro runs the given service set under each algorithm and collects the
// outcomes. The same seed is used for every algorithm so they face an
// identical arrival sequence.
func runMacro(name, workloadName string, services []serviceLoad, algorithms []string, opts Options) (*MacroResult, error) {
	specs := make([]runSpec, len(algorithms))
	for i, a := range algorithms {
		specs[i] = runSpec{algorithm: a}
	}
	return runMacroSpecs(name, workloadName, services, specs, opts)
}

// runMacroSpecs is the generalised macro runner behind runMacro and the
// extension experiments (ablations, sensitivity, churn).
func runMacroSpecs(name, workloadName string, services []serviceLoad, specs []runSpec, opts Options) (*MacroResult, error) {
	res := &MacroResult{Name: name, Workload: workloadName}
	for _, spec := range specs {
		algoCfg := core.DefaultConfig()
		algoCfg.Placement = spec.placement
		algo, err := newAlgorithmWith(spec.algorithm, algoCfg)
		if err != nil {
			return nil, err
		}
		cfg := platform.DefaultConfig(opts.Seed)
		if spec.monitorPeriod > 0 {
			cfg.MonitorPeriod = spec.monitorPeriod
		}
		if spec.lbPolicy != 0 {
			cfg.LBPolicy = spec.lbPolicy
		}
		w, err := platform.New(cfg, algo)
		if err != nil {
			return nil, err
		}
		for _, s := range services {
			if err := w.AddService(s.spec, s.target, s.pattern); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, spec.rowLabel(), err)
			}
		}
		if spec.setup != nil {
			if err := spec.setup(w); err != nil {
				return nil, fmt.Errorf("%s/%s setup: %w", name, spec.rowLabel(), err)
			}
		}
		if err := w.Run(macroDuration(opts)); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, spec.rowLabel(), err)
		}
		res.Outcomes = append(res.Outcomes, AlgoOutcome{
			Algorithm: spec.rowLabel(),
			Summary:   w.Summary(),
			Actions:   w.Monitor().Counts(),
			Cost:      w.CostReport(),
		})
	}
	return res, nil
}

// patternFor builds the per-service load pattern. Services are phase
// shifted so peaks do not all coincide, like independent tenants.
func patternFor(shape LoadShape, baseRPS float64, idx, total int) loadgen.Pattern {
	period := 8 * time.Minute
	shift := time.Duration(float64(period) * float64(idx) / float64(total))
	switch shape {
	case HighBurst:
		return loadgen.Burst{
			Base:       baseRPS * 0.8,
			Peak:       baseRPS * 2.4,
			Period:     10 * time.Minute,
			BurstLen:   2 * time.Minute,
			PhaseShift: time.Duration(float64(10*time.Minute) * float64(idx) / float64(total)),
		}
	default:
		return loadgen.Wave{
			Base:       baseRPS,
			Amplitude:  0.30,
			Period:     period,
			PhaseShift: shift,
		}
	}
}

// makeServices builds the paper's 15 emulated microservices of one kind,
// with per-service parameter variation drawn deterministically from seed.
func makeServices(kind workload.Kind, n int, shape LoadShape, seed int64) []serviceLoad {
	rng := rand.New(rand.NewSource(seed))
	out := make([]serviceLoad, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s-%02d", kind, i)
		spec := workload.ServiceSpec{
			Name: name, Kind: kind,
			CPUOverheadPerRequest: 0.01,
			BackgroundCPU:         0.035,
			BaselineMemMB:         300,
			InitialReplicaCPU:     1.0,
			InitialReplicaMemMB:   768,
			MinReplicas:           1,
			MaxReplicas:           10,
			Timeout:               30 * time.Second,
		}
		var baseRPS float64
		switch kind {
		case workload.KindCPUBound:
			spec.CPUPerRequest = 0.08 + rng.Float64()*0.12 // 0.08..0.20 cpu-s
			spec.MemPerRequest = 2
			// Sized so the 15 services' peaks push the cluster toward its
			// capacity (the "over-encumbered during peak hours" regime of
			// §I) — where coarse fixed-size replicas hit placement limits
			// that fine-grained vertical scaling can still pack around.
			baseRPS = 14 + rng.Float64()*6
		case workload.KindMemoryBound:
			spec.CPUPerRequest = 0.02
			spec.MemPerRequest = 20 + rng.Float64()*20
			baseRPS = 8 + rng.Float64()*6
		case workload.KindNetworkBound:
			spec.NetPerRequest = 4 + rng.Float64()*4 // megabits
			// Networking system calls cost moderate CPU (the paper notes
			// this keeps CPU-driven scalers competitive at low burst), but
			// CPU usage is a weak proxy for bandwidth need, which is what
			// sinks them under high bursts.
			spec.CPUPerRequest = 0.02 + rng.Float64()*0.01
			spec.MemPerRequest = 4
			spec.InitialReplicaNetMbps = 50
			baseRPS = 4 + rng.Float64()*1.5
		case workload.KindMixed:
			spec.CPUPerRequest = 0.10 + rng.Float64()*0.10
			// Mixed services hold a large transient footprint per request,
			// so bursts push a fixed-size replica over its memory limit —
			// the swap cliff that memory-blind algorithms cannot see.
			spec.MemPerRequest = 80 + rng.Float64()*40
			spec.InitialReplicaMemMB = 640
			baseRPS = 8 + rng.Float64()*4
		}
		out = append(out, serviceLoad{
			spec:    spec,
			target:  0.5,
			pattern: patternFor(shape, baseRPS, i, n),
		})
	}
	return out
}

// RunFig6 reproduces Figure 6 (a: low-burst, b: high-burst): 15 CPU-bound
// services; kubernetes vs hybrid vs hybridmem.
func RunFig6(shape LoadShape, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, shape, opts.Seed)
	sub := "6a"
	if shape == HighBurst {
		sub = "6b"
	}
	return runMacro(
		fmt.Sprintf("Figure %s: CPU-bound, %s", sub, shape),
		"cpu-"+shape.String(),
		services,
		[]string{"kubernetes", "hybrid", "hybridmem"},
		opts,
	)
}

// RunFig7 reproduces Figure 7 (a: low-burst, b: high-burst): 15 mixed
// CPU+memory services; kubernetes vs hybrid vs hybridmem.
func RunFig7(shape LoadShape, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindMixed, 15, shape, opts.Seed)
	sub := "7a"
	if shape == HighBurst {
		sub = "7b"
	}
	return runMacro(
		fmt.Sprintf("Figure %s: mixed CPU+memory, %s", sub, shape),
		"mixed-"+shape.String(),
		services,
		[]string{"kubernetes", "hybrid", "hybridmem"},
		opts,
	)
}

// RunFig8 reproduces Figure 8 (a: low-burst, b: high-burst): 15
// network-bound services; all four algorithms including the dedicated
// network scaler.
func RunFig8(shape LoadShape, opts Options) (*MacroResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindNetworkBound, 15, shape, opts.Seed)
	sub := "8a"
	if shape == HighBurst {
		sub = "8b"
	}
	return runMacro(
		fmt.Sprintf("Figure %s: network-bound, %s", sub, shape),
		"network-"+shape.String(),
		services,
		[]string{"kubernetes", "hybrid", "hybridmem", "network"},
		opts,
	)
}
