package experiments

import (
	"strings"
	"testing"
)

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunAblation(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	full := r.Outcome("hybridmem").Summary
	noreclaim := r.Outcome("hybridmem-noreclaim").Summary
	vertOnly := r.Outcome("hybridmem-vertical-only").Summary

	// Disabling reclamation leaves resources stranded on idle services:
	// the full algorithm must be clearly faster.
	if full.MeanLatency >= noreclaim.MeanLatency {
		t.Errorf("full (%v) not faster than noreclaim (%v)", full.MeanLatency, noreclaim.MeanLatency)
	}
	// Disabling the horizontal fallback caps a service at one node's
	// spare capacity: bursts overwhelm it.
	if full.MeanLatency >= vertOnly.MeanLatency {
		t.Errorf("full (%v) not faster than vertical-only (%v)", full.MeanLatency, vertOnly.MeanLatency)
	}
	if full.FailedPercent() >= vertOnly.FailedPercent() {
		t.Errorf("full failures (%.2f%%) not below vertical-only (%.2f%%)",
			full.FailedPercent(), vertOnly.FailedPercent())
	}
	if !strings.Contains(CostTableFor(r).String(), "total cost") {
		t.Error("cost table missing cost column")
	}
}

func TestMonitorPeriodSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunMonitorPeriodSensitivity(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	at5 := r.Outcome("hybridmem@5s").Summary.MeanLatency
	at15 := r.Outcome("hybridmem@15s").Summary.MeanLatency
	at30 := r.Outcome("hybridmem@30s").Summary.MeanLatency
	// Slower decisions must monotonically hurt under bursty load.
	if !(at5 < at15 && at15 < at30) {
		t.Errorf("monitor-period degradation not monotone: 5s=%v 15s=%v 30s=%v", at5, at15, at30)
	}
	// The ElasticDocker fairness question: at matched 5s periods the hybrid
	// still beats Kubernetes (its advantage is not just reaction speed).
	k8s := r.Outcome("kubernetes@5s").Summary.MeanLatency
	if at5 >= k8s {
		t.Errorf("hybridmem@5s (%v) not faster than kubernetes@5s (%v)", at5, k8s)
	}
}

func TestPlacementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunPlacement(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"kubernetes", "hybridmem"} {
		spread := r.Outcome(algo + "/spread")
		pack := r.Outcome(algo + "/binpack")
		// Bin-packing must use no more machine-hours than spreading. (The
		// latency comparison can go either way: under cluster pressure,
		// packing concentrates reclaimable slack, which sometimes beats
		// spreading's lower per-node contention.)
		if pack.Cost.MachineHours > spread.Cost.MachineHours+1e-9 {
			t.Errorf("%s: binpack machine-hours (%.2f) above spread (%.2f)",
				algo, pack.Cost.MachineHours, spread.Cost.MachineHours)
		}
		if pack.Summary.FailedPercent() > spread.Summary.FailedPercent()+10 {
			t.Errorf("%s: binpack failures (%.2f%%) collapse vs spread (%.2f%%)",
				algo, pack.Summary.FailedPercent(), spread.Summary.FailedPercent())
		}
	}
}

func TestNodeChurnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunNodeChurn(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range r.Outcomes {
		// Node failures kill in-flight requests, so some failures are
		// unavoidable — but the system must keep the vast majority alive.
		if o.Summary.FailedPercent() > 20 {
			t.Errorf("%s: failed %.2f%% under churn, availability collapsed", o.Algorithm, o.Summary.FailedPercent())
		}
		if o.Summary.Completed == 0 {
			t.Errorf("%s: nothing completed", o.Algorithm)
		}
	}
	// The hybrids absorb the lost capacity vertically and keep failures
	// well below the horizontal-only baseline.
	k8s := r.Outcome("kubernetes").Summary.FailedPercent()
	hyb := r.Outcome("hybridmem").Summary.FailedPercent()
	if hyb >= k8s {
		t.Errorf("hybridmem churn failures (%.2f%%) not below kubernetes (%.2f%%)", hyb, k8s)
	}
}

func TestNewAlgorithmVariants(t *testing.T) {
	for _, name := range []string{
		"kubernetes", "network", "hybrid", "hybridmem",
		"hybrid-noreclaim", "hybridmem-noreclaim",
		"hybrid-vertical-only", "hybridmem-horizontal-only",
	} {
		a, err := newAlgorithm(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Name() != name {
			t.Errorf("Name() = %q, want %q", a.Name(), name)
		}
	}
	for _, bad := range []string{"kubernetes-noreclaim", "network-vertical-only", "hybrid-bogus", "nope"} {
		if _, err := newAlgorithm(bad); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func TestStatefulShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunStateful(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// With 80s state syncs nobody may collapse: the load is sized within
	// vertical headroom and standing capacity.
	for _, o := range r.Outcomes {
		if o.Summary.FailedPercent() > 5 {
			t.Errorf("%s: failed %.2f%% on stateful workload", o.Algorithm, o.Summary.FailedPercent())
		}
		if o.Summary.Completed == 0 {
			t.Errorf("%s: nothing completed", o.Algorithm)
		}
	}
}

func TestPredictiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunPredictive(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Prediction is a trade, not a free win: assert sanity, not a winner.
	for _, o := range r.Outcomes {
		if o.Summary.Completed == 0 {
			t.Errorf("%s: nothing completed", o.Algorithm)
		}
		if o.Summary.FailedPercent() > 25 {
			t.Errorf("%s: failed %.2f%%, collapsed", o.Algorithm, o.Summary.FailedPercent())
		}
	}
	// The documented benefit: extrapolation cuts Kubernetes' burst-onset
	// failures (it provisions for where demand is heading).
	k := r.Outcome("kubernetes").Summary.FailedPercent()
	kp := r.Outcome("kubernetes-predictive").Summary.FailedPercent()
	if kp >= k {
		t.Errorf("kubernetes-predictive failures (%.2f%%) not below kubernetes (%.2f%%)", kp, k)
	}
}

func TestLBPolicyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunLBPolicy(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Kubernetes replicas are homogeneous (fixed 1-CPU requests), so the
	// weighted policy must change nothing for it.
	k := r.Outcome("kubernetes/least-outstanding").Summary
	kw := r.Outcome("kubernetes/weighted").Summary
	if k.MeanLatency != kw.MeanLatency || k.FailedPercent() != kw.FailedPercent() {
		t.Errorf("weighted LB changed homogeneous kubernetes: %v/%v vs %v/%v",
			k.MeanLatency, k.FailedPercent(), kw.MeanLatency, kw.FailedPercent())
	}
	// Hybridmem's heterogeneous replicas must all stay functional either way.
	for _, label := range []string{"hybridmem/least-outstanding", "hybridmem/weighted"} {
		if o := r.Outcome(label); o.Summary.Completed == 0 || o.Summary.FailedPercent() > 25 {
			t.Errorf("%s unhealthy: %v", label, o.Summary)
		}
	}
}
