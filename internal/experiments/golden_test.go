package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFig2TableGolden pins the rendered Fig-2 table bytes against a committed
// golden generated BEFORE the hot-path overhaul. Fig 2 drives the
// InjectRequests path — the exact code the event-coalescing change rewrites —
// so byte equality here proves coalesced arrivals reproduce the original
// per-request-closure schedule, not merely a self-consistent one.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestFig2TableGolden
func TestFig2TableGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunFig2(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(r.Table().String() + r.Table().CSV())

	goldenPath := filepath.Join("testdata", "golden_fig2_table.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(want) != string(got) {
		t.Fatalf("fig2 table diverged from pre-change golden:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
