package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the SHAPE of each paper artefact — orderings,
// inversions, crossover points — at reduced scale (0.2 = 12-minute macro
// runs), not the absolute numbers.

func shapeOpts() Options { return Options{Seed: 1, Scale: 0.2} }

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "a") || !strings.Contains(s, "--") {
		t.Errorf("String() = %q", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown() = %q", md)
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Seed: 1, Scale: 0}.scaled()
	if o.Scale != 1 {
		t.Errorf("zero scale not defaulted: %v", o.Scale)
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunFig2(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §III-A: the vertical scenario pays the co-location contention over
	// the solo baseline — the paper measured 17 %.
	oh := r.ContentionOverheadPercent()
	if oh < 8 || oh > 30 {
		t.Errorf("contention overhead = %.1f%%, want ~17%%", oh)
	}
	// Horizontal response time rises monotonically with replica count and
	// 1 replica ≈ vertical.
	if len(r.HorizontalMean) != len(r.Replicas) {
		t.Fatal("ragged result")
	}
	for i := 1; i < len(r.HorizontalMean); i++ {
		if r.HorizontalMean[i] <= r.HorizontalMean[i-1] {
			t.Errorf("horizontal RT not increasing at %d replicas: %v", r.Replicas[i], r.HorizontalMean)
		}
	}
	if d := r.HorizontalMean[0] - r.VerticalMean; d < -50*time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("1-replica horizontal (%v) should equal vertical (%v)", r.HorizontalMean[0], r.VerticalMean)
	}
	if got := r.Table().String(); !strings.Contains(got, "Figure 2") {
		t.Error("table title missing")
	}
}

func TestMemScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunMemScaling(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 3 {
		t.Fatalf("scenarios = %v", r.Scenarios)
	}
	// §III-B: vertical ≈ horizontal until the split forces swapping; the
	// 4x128MB split swaps (each replica pays the baseline again).
	if r.Mean[1] > 3*r.Mean[0] {
		t.Errorf("2x256 (%v) should be near 1x512 (%v)", r.Mean[1], r.Mean[0])
	}
	if r.Mean[2] < 3*r.Mean[0] {
		t.Errorf("4x128 (%v) should be drastically worse than 1x512 (%v) — swap cliff", r.Mean[2], r.Mean[0])
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunFig3(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §III-C: large decrease in execution time with more replicas,
	// tapering off at around 8.
	if r.HorizontalMean[1] >= r.HorizontalMean[0] {
		t.Errorf("2 replicas (%v) not faster than 1 (%v)", r.HorizontalMean[1], r.HorizontalMean[0])
	}
	gainEarly := float64(r.HorizontalMean[0]) / float64(r.HorizontalMean[2]) // 1 -> 4
	gainLate := float64(r.HorizontalMean[3]) / float64(r.HorizontalMean[4])  // 8 -> 16
	if gainEarly < 1.3 {
		t.Errorf("early horizontal gain = %.2fx, want > 1.3x", gainEarly)
	}
	if gainLate > 1.15 {
		t.Errorf("late gain 8->16 = %.2fx, want taper (~1x)", gainLate)
	}
	// Vertical (re-splitting tc on one machine) equals 1-replica horizontal.
	if r.VerticalMean != r.HorizontalMean[0] {
		t.Errorf("vertical %v != 1-replica %v", r.VerticalMean, r.HorizontalMean[0])
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	for _, shape := range []LoadShape{LowBurst, HighBurst} {
		r, err := RunFig6(shape, shapeOpts())
		if err != nil {
			t.Fatal(err)
		}
		// HYSCALE beats Kubernetes on CPU-bound load (paper: 1.49x/1.43x).
		for _, hy := range []string{"hybrid", "hybridmem"} {
			if sp := r.Speedup("kubernetes", hy); sp < 1.1 {
				t.Errorf("%v: %s speedup over kubernetes = %.2fx, want > 1.1x", shape, hy, sp)
			}
		}
		// HYSCALE uses vertical scaling; Kubernetes never does.
		if r.Outcome("kubernetes").Actions.Vertical != 0 {
			t.Error("kubernetes issued vertical ops")
		}
		if r.Outcome("hybrid").Actions.Vertical == 0 {
			t.Error("hybrid issued no vertical ops")
		}
	}
}

func TestFig6FailureOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunFig6(HighBurst, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	k := r.Outcome("kubernetes").Summary.FailedPercent()
	h := r.Outcome("hybridmem").Summary.FailedPercent()
	// Paper: up to 10x fewer failed requests for HYSCALE under bursty load.
	// The exact ratio depends on the saturation regime; require a clear
	// ordering with margin.
	if k < 1.3*h {
		t.Errorf("kubernetes failures (%.2f%%) not clearly above hybridmem (%.2f%%)", k, h)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	for _, shape := range []LoadShape{LowBurst, HighBurst} {
		r, err := RunFig7(shape, shapeOpts())
		if err != nil {
			t.Fatal(err)
		}
		mem := r.Outcome("hybridmem").Summary
		k8s := r.Outcome("kubernetes").Summary
		hyb := r.Outcome("hybrid").Summary
		// HYSCALE_CPU+Mem dominates mixed workloads (paper Fig. 7).
		if mem.MeanLatency >= k8s.MeanLatency || mem.MeanLatency >= hyb.MeanLatency {
			t.Errorf("%v: hybridmem (%v) not fastest (k8s %v, hybrid %v)",
				shape, mem.MeanLatency, k8s.MeanLatency, hyb.MeanLatency)
		}
		if mem.FailedPercent() >= k8s.FailedPercent() || mem.FailedPercent() >= hyb.FailedPercent() {
			t.Errorf("%v: hybridmem failures not lowest", shape)
		}
		// The paper's inversion: memory-blind HYSCALE_CPU fails more than
		// Kubernetes, whose horizontal scale-outs add memory by accident.
		if hyb.FailedPercent() <= k8s.FailedPercent() {
			t.Errorf("%v: expected hybrid failures (%.2f%%) above kubernetes (%.2f%%)",
				shape, hyb.FailedPercent(), k8s.FailedPercent())
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	// Low burst: everyone competitive (within 2x of the network scaler).
	r, err := RunFig8(LowBurst, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	net := r.Outcome("network").Summary.MeanLatency
	for _, other := range []string{"kubernetes", "hybrid", "hybridmem"} {
		if m := r.Outcome(other).Summary.MeanLatency; float64(m) > 2*float64(net) {
			t.Errorf("low-burst: %s (%v) not competitive with network (%v)", other, m, net)
		}
	}

	// High burst: dedicated network scaling clearly wins (paper: response
	// times dropping by up to 59.22%, 1.69x speedup).
	r, err = RunFig8(HighBurst, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sp := r.Speedup("kubernetes", "network"); sp < 1.3 {
		t.Errorf("high-burst: network speedup over kubernetes = %.2fx, want > 1.3x", sp)
	}
	netFail := r.Outcome("network").Summary.FailedPercent()
	for _, other := range []string{"kubernetes", "hybrid", "hybridmem"} {
		if f := r.Outcome(other).Summary.FailedPercent(); f < netFail {
			t.Errorf("high-burst: %s failures (%.2f%%) below network (%.2f%%)", other, f, netFail)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := RunFig9(nil, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := r.Mean
	if m.Len() == 0 {
		t.Fatal("empty mean series")
	}
	var minC, maxC float64
	for i, v := range m.CPUPercent {
		if v < 0 || v > 100 {
			t.Fatal("CPU% out of range")
		}
		if i == 0 || v < minC {
			minC = v
		}
		if i == 0 || v > maxC {
			maxC = v
		}
	}
	// The trace must be wave-like, not flat (Fig. 9's visible bursts).
	if maxC/minC < 1.15 {
		t.Errorf("trace too flat: min=%.1f max=%.1f", minC, maxC)
	}
	if !strings.Contains(r.Table().String(), "Figure 9") {
		t.Error("table title missing")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunFig10(nil, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	mem := r.Outcome("hybridmem").Summary
	k8s := r.Outcome("kubernetes").Summary
	hyb := r.Outcome("hybrid").Summary
	// Paper Fig. 10: HYSCALE_CPU+Mem performs best; Kubernetes outperforms
	// HYSCALE_CPU (fewer timed-out requests via accidental memory).
	if mem.MeanLatency >= k8s.MeanLatency || mem.FailedPercent() >= k8s.FailedPercent() {
		t.Error("hybridmem not best on Bitbrains replay")
	}
	if hyb.FailedPercent() <= k8s.FailedPercent() {
		t.Errorf("expected kubernetes (%.2f%%) to beat hybrid (%.2f%%) on failures",
			k8s.FailedPercent(), hyb.FailedPercent())
	}
}

func TestRunMacroUnknownAlgorithm(t *testing.T) {
	if _, err := runMacro("x", "x", nil, []string{"nope"}, Options{Seed: 1, Scale: 0.01}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMacroResultHelpers(t *testing.T) {
	r := &MacroResult{Outcomes: []AlgoOutcome{{Algorithm: "a"}, {Algorithm: "b"}}}
	if r.Outcome("a") == nil || r.Outcome("c") != nil {
		t.Error("Outcome lookup wrong")
	}
	if r.Speedup("a", "b") != 0 {
		t.Error("Speedup with zero latency should be 0")
	}
	r.Outcomes[0].Summary.MeanLatency = 200 * time.Millisecond
	r.Outcomes[1].Summary.MeanLatency = 100 * time.Millisecond
	if got := r.Speedup("a", "b"); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
}

func TestLoadShapeString(t *testing.T) {
	if LowBurst.String() != "low-burst" || HighBurst.String() != "high-burst" {
		t.Error("shape strings wrong")
	}
}
