package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/faults"
	"hyscale/internal/metrics"
	"hyscale/internal/monitor"
	"hyscale/internal/platform"
	"hyscale/internal/runner"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// The chaos experiment replays Fig. 6b's mixed-burst workload (15 CPU-bound
// services under high-burst load) while the control plane degrades:
// `docker update`s fail, replica starts fail or stall, stats queries drop
// and backends black-hole connections. It sweeps the fault rate and, at the
// highest rate, re-runs with the hardening (retry/backoff, stale-snapshot
// degradation, LB health checks) switched off — so the table directly
// prices what the resilience machinery buys per algorithm.

// ChaosFaults is the base fault mix the chaos experiment scales; rate 1.0
// applies it as-is. Exported so tests and the facade can reuse it.
func ChaosFaults(seed int64) faults.Config {
	return faults.Config{
		Seed:             seed,
		VerticalFailProb: 0.25,
		StartFailProb:    0.20,
		StartSlowProb:    0.25,
		StartSlowBy:      8 * time.Second,
		StatsDropProb:    0.25,
		BackendDownProb:  0.15,
		BackendDownFor:   10 * time.Second,
		BackendDownEvery: time.Minute,
	}
}

// ChaosOutcome is one (fault rate, algorithm, hardening) cell.
type ChaosOutcome struct {
	Algorithm string
	FaultRate float64
	Hardened  bool
	Summary   metrics.Summary
	Actions   monitor.ActionCounts
	ConnFail  platform.ConnFailureBreakdown
	// UptimePercent is the fraction of service-seconds with at least one
	// replica that was both routable and not black-holed — the §VI uptime
	// metric under chaos.
	UptimePercent float64
}

// ChaosResult is the material behind the resilience comparison.
type ChaosResult struct {
	Name     string
	Outcomes []ChaosOutcome
}

// Outcome returns the cell for (algorithm, rate, hardened), or nil.
func (r *ChaosResult) Outcome(algorithm string, rate float64, hardened bool) *ChaosOutcome {
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Algorithm == algorithm && o.FaultRate == rate && o.Hardened == hardened {
			return o
		}
	}
	return nil
}

// Table renders the per-algorithm resilience comparison.
func (r *ChaosResult) Table() *Table {
	t := &Table{
		Title: r.Name,
		Columns: []string{"fault rate", "algorithm", "hardened", "failed %", "uptime %",
			"mean response", "retries", "abandoned", "stale snaps"},
	}
	for _, o := range r.Outcomes {
		hardened := "yes"
		if !o.Hardened {
			hardened = "no"
		}
		t.AddRow(
			fmt.Sprintf("%.1f", o.FaultRate),
			o.Algorithm,
			hardened,
			fmt.Sprintf("%.2f", o.Summary.FailedPercent()),
			fmt.Sprintf("%.2f", o.UptimePercent),
			fmtDur(o.Summary.MeanLatency),
			fmt.Sprintf("%d", o.Actions.Retries),
			fmt.Sprintf("%d", o.Actions.AbandonedActions),
			fmt.Sprintf("%d", o.Actions.StaleSnapshots),
		)
	}
	return t
}

// uptimeProbe counts service-seconds of availability.
type uptimeProbe struct {
	total uint64
	up    uint64
}

// percent returns availability as a percentage (100 when never sampled).
func (u *uptimeProbe) percent() float64 {
	if u.total == 0 {
		return 100
	}
	return 100 * float64(u.up) / float64(u.total)
}

// attach samples every service in the spec once per simulated second: a
// service is up when at least one replica is routable and not inside an
// injected backend outage.
func (u *uptimeProbe) attach(w *platform.World, spec runner.RunSpec) error {
	inj := w.FaultInjector()
	return w.Engine().SchedulePeriodic(time.Second, time.Second, func(e *sim.Engine) {
		now := e.Now()
		for _, s := range spec.Services {
			u.total++
			for _, c := range w.Monitor().Replicas(s.Spec.Name) {
				if c.Routable() && !inj.BackendDown(now, c.Service, c.ID) {
					u.up++
					break
				}
			}
		}
	})
}

// HookChaosUptime is the registered runner hook attaching the uptime probe;
// its finalizer reports availability as Extra["uptimePercent"].
const HookChaosUptime = "chaos-uptime"

func init() {
	runner.RegisterHook(HookChaosUptime, func(w *platform.World, spec runner.RunSpec) (runner.Finalizer, error) {
		probe := &uptimeProbe{}
		if err := probe.attach(w, spec); err != nil {
			return nil, err
		}
		return func(res *runner.Result) {
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra["uptimePercent"] = probe.percent()
		}, nil
	})
}

// chaosCell parameterises one chaos run.
type chaosCell struct {
	algorithm string
	rate      float64
	hardened  bool
}

// compile turns a cell into a RunSpec: the Fig. 6b workload plus a scaled
// fault mix, optional hardening kill-switch, and the uptime probe hook.
func (c chaosCell) compile(services []serviceLoad, base faults.Config, opts Options) runner.RunSpec {
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Faults = base.Scaled(c.rate)
	cfg.HardeningOff = !c.hardened
	hardened := "hardened"
	if !c.hardened {
		hardened = "unhardened"
	}
	spec := runner.RunSpec{
		Name:      fmt.Sprintf("chaos/%s-r%.1f-%s", c.algorithm, c.rate, hardened),
		Seed:      opts.Seed,
		Platform:  cfg,
		Algorithm: c.algorithm,
		Duration:  macroDuration(opts),
		Hooks:     []string{HookChaosUptime},
	}
	for _, s := range services {
		spec.Services = append(spec.Services, runner.ServiceRun{
			Spec: s.spec, Target: s.target, Load: runner.FromPattern(s.pattern),
		})
	}
	return spec
}

// runChaosCells compiles every cell up front, fans them through the
// executor, and collects outcomes in cell order.
func runChaosCells(name string, services []serviceLoad, cells []chaosCell, opts Options) (*ChaosResult, error) {
	res := &ChaosResult{Name: name}
	base := ChaosFaults(opts.Seed + 1000)
	specs := make([]runner.RunSpec, len(cells))
	for i, cell := range cells {
		specs[i] = cell.compile(services, base, opts)
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	for i, cell := range cells {
		r := results[i]
		res.Outcomes = append(res.Outcomes, ChaosOutcome{
			Algorithm:     cell.algorithm,
			FaultRate:     cell.rate,
			Hardened:      cell.hardened,
			Summary:       r.Summary,
			Actions:       r.Actions,
			ConnFail:      r.ConnFail,
			UptimePercent: r.Extra["uptimePercent"],
		})
	}
	return res, nil
}

// RunChaos replays Fig. 6b's high-burst CPU-bound workload under a fault
// sweep (rates 0, 0.5, 1.0 with hardening on) plus an unhardened run at
// rate 1.0 per algorithm, tabulating failed-request %, uptime and retry
// volume.
func RunChaos(opts Options) (*ChaosResult, error) {
	opts = opts.scaled()
	services := makeServices(workload.KindCPUBound, 15, HighBurst, opts.Seed)
	algorithms := []string{"kubernetes", "hybrid", "hybridmem"}
	var cells []chaosCell
	for _, rate := range []float64{0, 0.5, 1.0} {
		for _, a := range algorithms {
			cells = append(cells, chaosCell{algorithm: a, rate: rate, hardened: true})
		}
	}
	for _, a := range algorithms {
		cells = append(cells, chaosCell{algorithm: a, rate: 1.0, hardened: false})
	}
	return runChaosCells(
		"Chaos: CPU-bound high-burst under control-plane faults",
		services, cells, opts,
	)
}
