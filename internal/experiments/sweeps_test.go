package experiments

import (
	"strings"
	"testing"
)

func TestFig3SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunFig3Sweep(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != 9 {
		t.Fatalf("configs = %d, want 9", len(r.Configs))
	}
	// §III-C: "the results followed the same general trends" — horizontal
	// helps in every configuration and the gains taper at high counts.
	for i, c := range r.Configs {
		if r.GainAt8[i] < 1.1 {
			t.Errorf("%s: gain 1->8 = %.2fx, want > 1.1x", c, r.GainAt8[i])
		}
		if r.TaperRatio[i] > 1.6 {
			t.Errorf("%s: 8->16 ratio = %.2fx, want taper", c, r.TaperRatio[i])
		}
	}
	if !strings.Contains(r.Table().String(), "sweep") {
		t.Error("table title missing")
	}
}

func TestTargetUtilSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunTargetUtilSweep(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"kubernetes", "hybridmem"} {
		if len(r.PerAlgo[algo]) != 3 {
			t.Fatalf("%s: %d points, want 3", algo, len(r.PerAlgo[algo]))
		}
		// 70% target must not be catastrophically worse than 50% (the
		// cluster has headroom), and the machine-hours must be recorded.
		for i := range r.Targets {
			if r.MachineHours[algo][i] <= 0 {
				t.Errorf("%s@%v: no machine-hours", algo, r.Targets[i])
			}
		}
	}
	// The interesting inversion: an aggressive 30% target over-packs the
	// cluster with requested-but-idle capacity and hurts rather than helps.
	k := r.PerAlgo["kubernetes"]
	if k[0].MeanLatency <= k[1].MeanLatency {
		t.Logf("note: 30%% target (%v) did not over-pack vs 50%% (%v) at this scale",
			k[0].MeanLatency, k[1].MeanLatency)
	}
	if !strings.Contains(r.Table().String(), "target") {
		t.Error("table missing target column")
	}
}

func TestHeterogeneousShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := RunHeterogeneous(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range r.Outcomes {
		// All algorithms must handle mixed node sizes without collapsing;
		// the transient failures come from the setup's node swap killing
		// initial replicas.
		if o.Summary.FailedPercent() > 5 {
			t.Errorf("%s: failed %.2f%% on heterogeneous cluster", o.Algorithm, o.Summary.FailedPercent())
		}
		if o.Summary.Completed == 0 {
			t.Errorf("%s: nothing completed", o.Algorithm)
		}
	}
}

func TestTableCSVAndSlug(t *testing.T) {
	tab := &Table{Title: "Figure 2: CPU, stuff", Columns: []string{"a", "b"}}
	tab.AddRow("1,5", `say "hi"`)
	csv := tab.CSV()
	if !strings.Contains(csv, "# Figure 2: CPU, stuff\n") {
		t.Errorf("CSV missing title comment: %q", csv)
	}
	if !strings.Contains(csv, `"1,5","say ""hi"""`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
	if got := tab.Slug(); got != "figure-2-cpu-stuff" {
		t.Errorf("Slug = %q", got)
	}
}
