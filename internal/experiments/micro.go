package experiments

import (
	"fmt"
	"time"

	"hyscale/internal/lb"
	"hyscale/internal/platform"
	"hyscale/internal/resources"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// The §III microbenchmarks give a microservice an EQUAL TOTAL amount of a
// resource in every scenario and compare one big replica (vertical) against
// many small replicas spread over machines (horizontal), with a stress
// contender eating the rest of each machine — isolating the physical
// trade-offs the autoscaling algorithms later face.

// microRequests matches the paper's fixed client load of 640 requests.
const microRequests = 640

// Fig2Result holds the CPU scaling comparison (§III-A, Figure 2).
type Fig2Result struct {
	// BaselineMean is the solo service on a full node (no contender).
	BaselineMean time.Duration
	// VerticalMean is one replica holding half the node next to a stress
	// contender — the vertically-scaled scenario.
	VerticalMean time.Duration
	// Replicas and HorizontalMean are parallel: HorizontalMean[i] is the
	// mean response time with Replicas[i] replicas over Replicas[i]
	// machines, equal total CPU.
	Replicas       []int
	HorizontalMean []time.Duration
}

// ContentionOverheadPercent is the §III-A headline: the response-time
// increase of the vertical scenario over the uncontended baseline (the
// paper measured 17 %).
func (r *Fig2Result) ContentionOverheadPercent() float64 {
	if r.BaselineMean <= 0 {
		return 0
	}
	return 100 * (float64(r.VerticalMean)/float64(r.BaselineMean) - 1)
}

// Table renders Figure 2.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:   "Figure 2: response times of horizontal scaling for the CPU tests (equal total CPU)",
		Columns: []string{"scenario", "replicas", "mean response"},
	}
	t.AddRow("baseline (solo, full node)", "1", fmtDur(r.BaselineMean))
	t.AddRow("vertical (half node + stress)", "1", fmtDur(r.VerticalMean))
	for i, n := range r.Replicas {
		t.AddRow("horizontal + stress", fmt.Sprintf("%d", n), fmtDur(r.HorizontalMean[i]))
	}
	t.AddRow("contention overhead", "-", fmt.Sprintf("%.1f%%", r.ContentionOverheadPercent()))
	return t
}

func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// cpuMicroSpec is the CPU-bound emulated microservice of §III-A.
func cpuMicroSpec() workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: "cpu-micro", Kind: workload.KindCPUBound,
		CPUPerRequest:         0.25,
		CPUOverheadPerRequest: 0.02,
		BackgroundCPU:         0.015,
		MemPerRequest:         2,
		BaselineMemMB:         300,
		InitialReplicaCPU:     2, InitialReplicaMemMB: 1024,
		MinReplicas: 1, MaxReplicas: 16,
		Timeout: 10 * time.Minute,
	}
}

// RunFig2 reproduces Figure 2: 640 requests against a CPU-bound service
// with equal total CPU (half of one node's cores) split across 1..16
// replicas on as many machines, each machine shared with a CPU stress
// container holding the remaining shares. All seven scenarios compile to
// RunSpecs up front and fan through the executor.
func RunFig2(opts Options) (*Fig2Result, error) {
	opts = opts.scaled()
	specs, res := fig2Specs(opts)
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	return res, fig2Collect(res, results)
}

// fig2Specs compiles the seven Fig-2 scenarios. Baseline: whole node to
// itself. Vertical: half the node, stress takes the other half. Horizontal:
// the same 2 cores split over R machines; on each machine the stress
// container holds the remaining shares so the service's total CPU access
// time stays constant (the paper's share arithmetic).
func fig2Specs(opts Options) ([]runner.RunSpec, *Fig2Result) {
	res := &Fig2Result{Replicas: []int{1, 2, 4, 8, 16}}
	specs := []runner.RunSpec{
		cpuMicroRunSpec(opts, "fig2/baseline", 1, 4, 0),
		cpuMicroRunSpec(opts, "fig2/vertical", 1, 2, 2),
	}
	for _, r := range res.Replicas {
		perReplica := 2.0 / float64(r)
		specs = append(specs, cpuMicroRunSpec(opts, fmt.Sprintf("fig2/horizontal-%d", r), r, perReplica, 4-perReplica))
	}
	return specs, res
}

// fig2Collect harvests the executed specs into the result, in spec order.
func fig2Collect(res *Fig2Result, results []runner.Result) error {
	for _, r := range results {
		if r.Summary.Completed == 0 {
			return fmt.Errorf("%s: no requests completed", r.Spec.Name)
		}
	}
	res.BaselineMean = results[0].Summary.MeanLatency
	res.VerticalMean = results[1].Summary.MeanLatency
	for i := range res.Replicas {
		res.HorizontalMean = append(res.HorizontalMean, results[2+i].Summary.MeanLatency)
	}
	return nil
}

// cpuMicroRunSpec compiles one Fig-2 scenario: replicas pinned one per node
// with equal CPU shares, an optional stress contender on every machine, and
// the paper's fixed 640-request client.
func cpuMicroRunSpec(opts Options, name string, replicas int, cpuEach, stressCPU float64) runner.RunSpec {
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Nodes = replicas
	cfg.MonitorPeriod = 0 // no autoscaling: fixed allocations
	cfg.BaseLatency = 0   // Section III measures microservice execution time directly
	cfg.LBPolicy = lb.LeastOutstanding
	svc := cpuMicroSpec()
	svc.InitialReplicaCPU = cpuEach
	// 640 requests at ~85 % of the vertical scenario's service capacity.
	window := 120 * time.Second
	spec := runner.RunSpec{
		Name:       name,
		Seed:       opts.Seed,
		Platform:   cfg,
		Duration:   window + 2*time.Second,
		DrainExtra: 15 * time.Minute,
		Services:   []runner.ServiceRun{{Spec: svc}},
		Inject:     []runner.InjectSpec{{At: 2 * time.Second, Window: window, Service: svc.Name, Count: microRequests}},
	}
	// AddService deploys replica 0 on node-0; pin the rest one per node.
	for i := 1; i < replicas; i++ {
		spec.Pinned = append(spec.Pinned, runner.PinnedReplica{
			Service: svc.Name, Node: fmt.Sprintf("node-%d", i),
			Alloc: resources.Vector{CPU: cpuEach, MemMB: svc.InitialReplicaMemMB},
		})
	}
	if stressCPU > 0 {
		for i := 0; i < replicas; i++ {
			spec.Stress = append(spec.Stress, runner.StressSpec{
				Node: fmt.Sprintf("node-%d", i), Alloc: resources.Vector{CPU: stressCPU, MemMB: 64},
				CPUDemand: 4,
			})
		}
	}
	return spec
}

// MemResult holds the §III-B memory scaling comparison.
type MemResult struct {
	// Scenarios are labels like "1x512MB"; Mean and SwapShare are parallel.
	Scenarios []string
	Mean      []time.Duration
	// FailedPercent is the share of requests that timed out (deep swap).
	FailedPercent []float64
}

// Table renders the §III-B result rows.
func (r *MemResult) Table() *Table {
	t := &Table{
		Title:   "§III-B: memory scaling, equal total memory (vertical vs horizontal)",
		Columns: []string{"scenario", "mean response", "failed %"},
	}
	for i, s := range r.Scenarios {
		t.AddRow(s, fmtDur(r.Mean[i]), fmt.Sprintf("%.2f", r.FailedPercent[i]))
	}
	return t
}

// RunMemScaling reproduces the §III-B experiment: a memory-bound service
// with equal TOTAL memory in every scenario (one 512 MB container ≡ two
// 256 MB containers, and so on). Horizontal replicas each pay the
// application's baseline memory again, so they hit the swap cliff earlier —
// the paper's key memory observation.
func RunMemScaling(opts Options) (*MemResult, error) {
	opts = opts.scaled()
	res := &MemResult{}
	type scenario struct {
		replicas int
		memEach  float64
	}
	scenarios := []scenario{{1, 512}, {2, 256}, {4, 128}}
	var specs []runner.RunSpec
	for _, sc := range scenarios {
		specs = append(specs, memMicroRunSpec(opts, sc.replicas, sc.memEach))
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		sum := results[i].Summary
		res.Scenarios = append(res.Scenarios, fmt.Sprintf("%dx%.0fMB", sc.replicas, sc.memEach))
		// Deep swap can time every request out; report mean 0 with the
		// failure share rather than erroring (the cliff IS the result).
		mean := time.Duration(0)
		if sum.Completed > 0 {
			mean = sum.MeanLatency
		}
		res.Mean = append(res.Mean, mean)
		res.FailedPercent = append(res.FailedPercent, sum.FailedPercent())
	}
	return res, nil
}

// memMicroRunSpec compiles one §III-B scenario: equal total memory split
// across replicas pinned one per node.
func memMicroRunSpec(opts Options, replicas int, memEach float64) runner.RunSpec {
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Nodes = replicas
	cfg.MonitorPeriod = 0
	cfg.BaseLatency = 0 // Section III measures microservice execution time directly
	svc := workload.ServiceSpec{
		Name: "mem-micro", Kind: workload.KindMemoryBound,
		CPUPerRequest:         0.05,
		CPUOverheadPerRequest: 0.01,
		MemPerRequest:         24,
		BaselineMemMB:         110,
		InitialReplicaCPU:     2, InitialReplicaMemMB: memEach,
		MinReplicas: 1, MaxReplicas: 8,
		Timeout: 60 * time.Second,
	}
	window := 60 * time.Second
	spec := runner.RunSpec{
		Name:       fmt.Sprintf("mem/%dx%.0fMB", replicas, memEach),
		Seed:       opts.Seed,
		Platform:   cfg,
		Duration:   window + 2*time.Second,
		DrainExtra: 15 * time.Minute,
		Services:   []runner.ServiceRun{{Spec: svc}},
		Inject:     []runner.InjectSpec{{At: 2 * time.Second, Window: window, Service: svc.Name, Count: microRequests}},
	}
	for i := 1; i < replicas; i++ {
		spec.Pinned = append(spec.Pinned, runner.PinnedReplica{
			Service: svc.Name, Node: fmt.Sprintf("node-%d", i),
			Alloc: resources.Vector{CPU: 2, MemMB: memEach},
		})
	}
	return spec
}

// Fig3Result holds the network scaling comparison (§III-C, Figure 3).
type Fig3Result struct {
	// VerticalMean is the single-machine scenario with the full 100 Mbps tc
	// cap (re-splitting the cap on one machine changes nothing, per §III-C).
	VerticalMean time.Duration
	// Replicas and HorizontalMean are parallel: a total of 100 Mbps split
	// across R machines, each shared with a network+CPU stress hog.
	Replicas       []int
	HorizontalMean []time.Duration
}

// Table renders Figure 3.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:   "Figure 3: response times of horizontal scaling for the network tests (100 Mbps total)",
		Columns: []string{"scenario", "replicas", "mean response"},
	}
	t.AddRow("vertical (single machine)", "1", fmtDur(r.VerticalMean))
	for i, n := range r.Replicas {
		t.AddRow("horizontal + stress", fmt.Sprintf("%d", n), fmtDur(r.HorizontalMean[i]))
	}
	return t
}

// RunFig3 reproduces Figure 3: an iperf-like service with a 100 Mbps total
// egress allocation split across 1..16 machines, each machine also hosting
// a stress container that floods the NIC and hogs CPU. Horizontal scaling
// relieves per-node tx-queue contention until the per-replica tc slice
// becomes the bottleneck (~8 replicas).
func RunFig3(opts Options) (*Fig3Result, error) {
	opts = opts.scaled()
	res := &Fig3Result{Replicas: []int{1, 2, 4, 8, 16}}

	specs := []runner.RunSpec{netMicroRunSpec(opts, "fig3/vertical", 1, 100)}
	for _, r := range res.Replicas {
		specs = append(specs, netMicroRunSpec(opts, fmt.Sprintf("fig3/horizontal-%d", r), r, 100/float64(r)))
	}
	results, err := execute(specs, opts)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Summary.Completed == 0 {
			return nil, fmt.Errorf("%s: no requests completed", r.Spec.Name)
		}
	}
	res.VerticalMean = results[0].Summary.MeanLatency
	for i := range res.Replicas {
		res.HorizontalMean = append(res.HorizontalMean, results[1+i].Summary.MeanLatency)
	}
	return res, nil
}

// netMicroRunSpec compiles one §III-C scenario: a 100 Mbps total egress
// allocation split across replicas pinned one per node, a flooding stress
// hog (CPU + 32 egress flows) on every machine, and the fixed 640-request
// client.
func netMicroRunSpec(opts Options, name string, replicas int, capEach float64) runner.RunSpec {
	cfg := platform.DefaultConfig(opts.Seed)
	cfg.Nodes = replicas
	cfg.MonitorPeriod = 0
	cfg.BaseLatency = 0          // Section III measures microservice execution time directly
	cfg.DistributionOverhead = 0 // the paper's iperf test measures pure transfer
	svc := workload.ServiceSpec{
		Name: "net-micro", Kind: workload.KindNetworkBound,
		CPUPerRequest:         0.005,
		CPUOverheadPerRequest: 0.005,
		MemPerRequest:         1,
		NetPerRequest:         10, // megabits per request
		BaselineMemMB:         80,
		InitialReplicaCPU:     0.5, InitialReplicaMemMB: 256,
		InitialReplicaNetMbps: capEach,
		MinReplicas:           1, MaxReplicas: 16,
		Timeout: 10 * time.Minute,
	}
	window := 160 * time.Second
	spec := runner.RunSpec{
		Name:       name,
		Seed:       opts.Seed,
		Platform:   cfg,
		Duration:   window + 2*time.Second,
		DrainExtra: 20 * time.Minute,
		Services:   []runner.ServiceRun{{Spec: svc}},
		Inject:     []runner.InjectSpec{{At: 2 * time.Second, Window: window, Service: svc.Name, Count: microRequests}},
	}
	for i := 1; i < replicas; i++ {
		spec.Pinned = append(spec.Pinned, runner.PinnedReplica{
			Service: svc.Name, Node: fmt.Sprintf("node-%d", i),
			Alloc: resources.Vector{CPU: 0.5, MemMB: 256, NetMbps: capEach},
		})
	}
	for i := 0; i < replicas; i++ {
		spec.Stress = append(spec.Stress, runner.StressSpec{
			Node: fmt.Sprintf("node-%d", i), Alloc: resources.Vector{CPU: 2, MemMB: 64},
			CPUDemand: 2, NetFlows: 32,
		})
	}
	return spec
}
