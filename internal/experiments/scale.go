package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hyscale/internal/platform"
	"hyscale/internal/runner"
	"hyscale/internal/workload"
)

// The scale experiment is the perf-trajectory harness behind ROADMAP item 1:
// it sweeps the cluster far past the paper's 24-node / 15-service world and
// records how many simulated seconds each configuration executes per
// wall-clock second. The ratio is the single number that makes hot-path work
// provable across PRs — cmd/hyscale-bench's -perf mode embeds these points
// in BENCH_<n>.json so every optimization pass leaves a recorded trajectory.

// ScalePoint is one node-count × service-count configuration's measurement.
type ScalePoint struct {
	Nodes    int `json:"nodes"`
	Services int `json:"services"`
	// Zones is the control-plane shard count (0 or 1 = the classic single
	// central monitor).
	Zones int `json:"zones,omitempty"`

	// SimSeconds is the simulated horizon the run covered.
	SimSeconds float64 `json:"simSeconds"`
	// WallSeconds is the wall-clock time the run took.
	WallSeconds float64 `json:"wallSeconds"`
	// SimRatio is SimSeconds / WallSeconds — simulated seconds executed per
	// wall second, the headline scaling metric.
	SimRatio float64 `json:"simRatio"`

	// Requests is the total client requests the run generated.
	Requests uint64 `json:"requests"`
	// ScaleOuts counts autoscaler scale-out actions, as a sanity signal that
	// the control plane actually worked at this scale.
	ScaleOuts uint64 `json:"scaleOuts"`
}

// ScaleResult is the sweep across all configurations.
type ScaleResult struct {
	Points []ScalePoint
}

// Point returns the measurement for a nodes/services pair with a single-zone
// control plane, or nil.
func (r *ScaleResult) Point(nodes, services int) *ScalePoint {
	for i := range r.Points {
		if r.Points[i].Nodes == nodes && r.Points[i].Services == services && r.Points[i].Zones <= 1 {
			return &r.Points[i]
		}
	}
	return nil
}

// Table renders the sweep.
func (r *ScaleResult) Table() *Table {
	t := &Table{
		Title:   "Scale sweep: sim-seconds per wall-second by cluster size",
		Columns: []string{"nodes", "services", "zones", "sim s", "wall s", "sim/wall", "requests", "scale-outs"},
	}
	for _, p := range r.Points {
		zones := p.Zones
		if zones < 1 {
			zones = 1
		}
		t.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.Services),
			fmt.Sprintf("%d", zones),
			fmt.Sprintf("%.0f", p.SimSeconds),
			fmt.Sprintf("%.2f", p.WallSeconds),
			fmt.Sprintf("%.1f", p.SimRatio),
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%d", p.ScaleOuts),
		)
	}
	return t
}

// ScaleConfig is one sweep configuration: cluster size plus the control-plane
// shard count (Zones <= 1 runs the classic single monitor).
type ScaleConfig struct {
	Nodes    int
	Services int
	Zones    int
}

// ScaleGrid is the pinned sweep: the paper's 24/15 testbed, two intermediate
// datacenter slices, the 1,000-node / 500-service north-star point of
// ROADMAP item 1 — and the zoned control plane at that same point plus the
// 5,000-node / 2,000-service configuration only the sharded monitor makes
// tractable.
func ScaleGrid() []ScaleConfig {
	return []ScaleConfig{
		{Nodes: 24, Services: 15},
		{Nodes: 96, Services: 60},
		{Nodes: 200, Services: 100},
		{Nodes: 1000, Services: 500},
		{Nodes: 1000, Services: 500, Zones: 8},
		{Nodes: 5000, Services: 2000, Zones: 16},
	}
}

// scaleServices builds n CPU-bound services with per-service variation drawn
// deterministically from seed, shaped like the macro workload but with a
// bounded replica ceiling so the biggest grid points stay placeable.
func scaleServices(n int, seed int64) []runner.ServiceRun {
	rng := rand.New(rand.NewSource(seed))
	out := make([]runner.ServiceRun, 0, n)
	for i := 0; i < n; i++ {
		spec := workload.ServiceSpec{
			Name: fmt.Sprintf("svc-%03d", i), Kind: workload.KindCPUBound,
			CPUPerRequest:         0.05 + rng.Float64()*0.05,
			CPUOverheadPerRequest: 0.01,
			MemPerRequest:         2,
			BackgroundCPU:         0.02,
			BaselineMemMB:         200,
			InitialReplicaCPU:     1.0,
			InitialReplicaMemMB:   512,
			MinReplicas:           1,
			MaxReplicas:           4,
			Timeout:               30 * time.Second,
		}
		baseRPS := 8 + rng.Float64()*8
		out = append(out, runner.ServiceRun{
			Spec:   spec,
			Target: 0.5,
			Load: runner.LoadSpec{
				Type:      "wave",
				Base:      baseRPS,
				Amplitude: 0.3,
				Period:    4 * time.Minute,
				Phase:     time.Duration(float64(4*time.Minute) * float64(i) / float64(n)),
			},
		})
	}
	return out
}

// scaleDuration returns the per-point simulated horizon: two minutes at
// Scale=1, enough for ~24 monitor periods and a full load-wave cycle.
func scaleDuration(opts Options) time.Duration {
	return time.Duration(float64(2*time.Minute) * opts.Scale)
}

// RunScale sweeps ScaleGrid and measures sim-seconds-per-wall-second at each
// point. Runs execute sequentially (never in parallel) so wall-clock numbers
// measure single-run speed, not scheduler contention — the -parallel flag is
// deliberately ignored here.
func RunScale(opts Options) (*ScaleResult, error) {
	opts = opts.scaled()
	duration := scaleDuration(opts)
	res := &ScaleResult{}
	for _, g := range ScaleGrid() {
		nodes, services := g.Nodes, g.Services
		cfg := platform.DefaultConfig(opts.Seed)
		cfg.Nodes = nodes
		name := fmt.Sprintf("scale/%dn-%ds", nodes, services)
		if g.Zones > 1 {
			cfg.Zones = g.Zones
			name = fmt.Sprintf("%s-%dz", name, g.Zones)
		}
		spec := runner.RunSpec{
			Name:      name,
			Seed:      opts.Seed,
			Platform:  cfg,
			Algorithm: "hybridmem",
			Duration:  duration,
			Services:  scaleServices(services, opts.Seed),
		}
		// Run through execute (not raw runner.Execute) so -report/-timing see
		// scale runs like any other experiment, but force Parallel=1.
		seq := opts
		seq.Parallel = 1
		results, err := execute([]runner.RunSpec{spec}, seq)
		if err != nil {
			return nil, err
		}
		r := results[0]
		wall := r.Elapsed.Seconds()
		p := ScalePoint{
			Nodes:       nodes,
			Services:    services,
			Zones:       g.Zones,
			SimSeconds:  duration.Seconds(),
			WallSeconds: wall,
			Requests:    r.Summary.Requests,
			ScaleOuts:   r.Actions.ScaleOuts,
		}
		if wall > 0 {
			p.SimRatio = p.SimSeconds / wall
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
