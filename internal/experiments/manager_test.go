package experiments

import (
	"strings"
	"testing"
)

// TestManagerParallelInvariance: the manager pricing table must be
// byte-identical for any worker count — the repo-wide determinism contract
// extends to the scalermgr algorithms and their cost allocator.
func TestManagerParallelInvariance(t *testing.T) {
	render := func(parallel int) string {
		res, err := RunManager(Options{Seed: 1, Scale: 0.02, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().String()
	}
	base := render(1)
	for _, p := range []int{4, 8} {
		if got := render(p); got != base {
			t.Errorf("-parallel %d diverged:\n%s\nvs\n%s", p, got, base)
		}
	}
	for _, want := range []string{"manager-cost", "mixed-high-burst", "chaos-r1.0", "cascade-", "SLO attain %"} {
		if !strings.Contains(base, want) {
			t.Errorf("table missing %q:\n%s", want, base)
		}
	}
}

// TestManagerGridShape: every workload cell carries all six algorithms and
// the cost ledger is populated (machine-hours accrue on every run).
func TestManagerGridShape(t *testing.T) {
	res, err := RunManager(Options{Seed: 2, Scale: 0.01, Parallel: 0})
	if err != nil {
		t.Fatal(err)
	}
	byWorkload := map[string]int{}
	for _, o := range res.Outcomes {
		byWorkload[o.Workload]++
		if o.Cost.MachineHours <= 0 {
			t.Errorf("%s/%s: zero machine-hours in cost report", o.Workload, o.Algorithm)
		}
		if o.SLOAttainPercent < 0 || o.SLOAttainPercent > 100 {
			t.Errorf("%s/%s: SLO attainment %.2f out of range", o.Workload, o.Algorithm, o.SLOAttainPercent)
		}
	}
	want := len(managerAlgorithms())
	for wl, n := range byWorkload {
		if n != want {
			t.Errorf("workload %s has %d outcomes, want %d", wl, n, want)
		}
	}
	if len(byWorkload) != 5 {
		t.Errorf("grid has %d workloads, want 5 (3 macro + cascade + chaos)", len(byWorkload))
	}
}
