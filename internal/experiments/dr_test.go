package experiments

import (
	"strings"
	"testing"
)

// drSmoke runs the DR grid on a proportionally shrunk cluster: 120 nodes in
// 4 zones (120 CPU per zone), 58 fillers (~15 per zone, 60 CPU used) and a
// 55-replica mammoth that fits a fresh zone's ~60 free CPU. The horizon at
// scale 0.02 reaches the evacuation but not the heal — the full round trip
// is covered by the platform-level conservation tests and the CI bench run.
func drSmoke(t *testing.T, parallel int) *DRResult {
	t.Helper()
	res, err := runDRSized(Options{Seed: 1, Scale: 0.02, Parallel: parallel},
		120, 4, 58, 55, []string{"hybridmem"})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDRGridShape checks the reduced grid covers every scenario × variant
// cell and that evacuation-enabled cells actually displace replicas while
// no-evac cells never do.
func TestDRGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	res := drSmoke(t, 0)
	if len(res.Outcomes) != 9 {
		t.Fatalf("outcomes = %d, want 3 scenarios x 3 variants", len(res.Outcomes))
	}
	for _, scenario := range []string{"outage", "partition", "rolling"} {
		for _, variant := range []string{"no-evac", "evac", "spill"} {
			o := res.Outcome(scenario, variant, "hybridmem")
			if o == nil {
				t.Fatalf("missing outcome %s/%s", scenario, variant)
			}
			if variant == "no-evac" {
				if o.Displaced != 0 || o.Spillover != 0 {
					t.Errorf("%s/no-evac displaced %d replicas", scenario, o.Displaced)
				}
				continue
			}
			if o.Displaced == 0 {
				t.Errorf("%s/%s: zone death displaced no replicas", scenario, variant)
			}
		}
	}
	// The no-evac cell pays for the outage in availability; evacuation must
	// not make it worse.
	base := res.Outcome("outage", "no-evac", "hybridmem")
	evac := res.Outcome("outage", "evac", "hybridmem")
	if evac.AvailabilityPercent < base.AvailabilityPercent {
		t.Errorf("outage availability: evac %.2f%% < no-evac %.2f%%",
			evac.AvailabilityPercent, base.AvailabilityPercent)
	}
}

// TestDRParallelInvariance: the rendered table must be byte-identical for
// any worker count.
func TestDRParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	base := drSmoke(t, 1).Table().String()
	for _, p := range []int{2, 4} {
		if got := drSmoke(t, p).Table().String(); got != base {
			t.Errorf("-parallel %d diverged:\n%s\nvs\n%s", p, got, base)
		}
	}
	for _, want := range []string{"rolling", "spill", "reconverge", "displaced"} {
		if !strings.Contains(base, want) {
			t.Errorf("table missing %q:\n%s", want, base)
		}
	}
}
