package experiments

import (
	"strings"
	"testing"

	"hyscale/internal/monitor"
)

// recoveryBoundSeconds is the reconvergence acceptance bound: 20 default
// monitor periods (5s each) after the first node death.
const recoveryBoundSeconds = 20 * 5

// TestRecoveryReconvergesWithinBound is the self-healing acceptance check:
// every algorithm restores the pre-crash replica count within a bounded
// number of monitor periods after the node deaths, both with and without a
// monitor crash in between.
func TestRecoveryReconvergesWithinBound(t *testing.T) {
	res, err := RunRecovery(Options{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 12 {
		t.Fatalf("outcomes = %d, want 3 algorithms x 4 variants", len(res.Outcomes))
	}
	for _, algo := range []string{"kubernetes", "hybrid", "hybridmem"} {
		for _, variant := range []string{"heal", "crash-ckpt", "crash-cold"} {
			o := res.Outcome(algo, variant)
			if o == nil {
				t.Fatalf("missing outcome %s/%s", algo, variant)
			}
			if o.ReconvergeSeconds < 0 || o.ReconvergeSeconds > recoveryBoundSeconds {
				t.Errorf("%s/%s: reconverge = %.0fs, want within [0, %ds]",
					algo, variant, o.ReconvergeSeconds, recoveryBoundSeconds)
			}
			if o.Recovery.DeclaredDead != 2 {
				t.Errorf("%s/%s: declared dead = %d, want 2", algo, variant, o.Recovery.DeclaredDead)
			}
			if o.Recovery.ReplicasLost == 0 {
				t.Errorf("%s/%s: no replicas recorded lost", algo, variant)
			}
		}

		// Checkpointed restarts keep the reconcile plan; cold restarts lose
		// it (the autoscaler alone recovers the count).
		ckpt, cold := res.Outcome(algo, "crash-ckpt"), res.Outcome(algo, "crash-cold")
		if ckpt.Recovery.CheckpointRestores != 1 || ckpt.Recovery.ColdRestarts != 0 {
			t.Errorf("%s/crash-ckpt: restarts = %+v", algo, ckpt.Recovery)
		}
		if cold.Recovery.ColdRestarts != 1 || cold.Recovery.CheckpointRestores != 0 {
			t.Errorf("%s/crash-cold: restarts = %+v", algo, cold.Recovery)
		}
		if ckpt.Recovery.Replaced == 0 {
			t.Errorf("%s/crash-ckpt: checkpointed restart replaced nothing", algo)
		}
		if ckpt.MonitorCrashes == 0 || cold.MonitorCrashes == 0 {
			t.Errorf("%s: crash variants lost no poll periods (ckpt=%d cold=%d)",
				algo, ckpt.MonitorCrashes, cold.MonitorCrashes)
		}

		// The legacy variant must not touch any self-healing machinery.
		none := res.Outcome(algo, "no-heal")
		if none.Recovery != (monitor.RecoveryCounts{}) {
			t.Errorf("%s/no-heal: recovery counters non-zero: %+v", algo, none.Recovery)
		}
		if none.MonitorCrashes != 0 {
			t.Errorf("%s/no-heal: monitor crashed %d times", algo, none.MonitorCrashes)
		}
	}
}

// TestRecoveryParallelInvariance: the rendered table must be byte-identical
// for any worker count.
func TestRecoveryParallelInvariance(t *testing.T) {
	render := func(parallel int) string {
		res, err := RunRecovery(Options{Seed: 1, Scale: 0.05, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().String()
	}
	base := render(1)
	for _, p := range []int{2, 4} {
		if got := render(p); got != base {
			t.Errorf("-parallel %d diverged:\n%s\nvs\n%s", p, got, base)
		}
	}
	if !strings.Contains(base, "crash-ckpt") || !strings.Contains(base, "cold restarts") {
		t.Errorf("table missing expected rows/columns:\n%s", base)
	}
}
