package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFig2TableGoldenZonesOne is the sharded-control-plane equivalence
// regression: an explicit zones=1 configuration must reproduce the committed
// pre-refactor Fig-2 golden byte-for-byte, at several executor worker
// counts. zones=1 routes through the ControlPlane interface and the World's
// zone plumbing, so byte equality proves that plumbing is inert when the
// plane is not sharded.
func TestFig2TableGoldenZonesOne(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig2_table.txt"))
	if err != nil {
		t.Fatalf("missing golden file (generate via TestFig2TableGolden with UPDATE_GOLDEN=1): %v", err)
	}
	for _, workers := range []int{1, 4, 8} {
		opts := shapeOpts().scaled()
		opts.Parallel = workers
		specs, res := fig2Specs(opts)
		for i := range specs {
			specs[i].Platform.Zones = 1
		}
		results, err := execute(specs, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := fig2Collect(res, results); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Table().String() + res.Table().CSV()
		if string(want) != got {
			t.Fatalf("workers=%d: zones=1 fig2 table diverged from pre-refactor golden:\n--- want ---\n%s\n--- got ---\n%s",
				workers, want, got)
		}
	}
}
