// Package resilience implements the request-level cascading-failure
// defenses that keep a call-graph workload from melting down when one tier
// degrades: per-edge circuit breakers, client retries governed by a retry
// budget, deadline propagation from the root request down the chain, and
// utilization-triggered adaptive load shedding at saturated replicas.
//
// Everything is off by default — the zero Config is a no-op, and a nil
// *Manager answers every query with "allow" — so the paper's original
// independent-service scenarios pay nothing. Every probabilistic decision
// (shed rolls) is a pure hash of (seed, identity, request), never a shared
// random stream, so runs are byte-identical under the parallel RunSpec
// executor at any worker count.
package resilience

import (
	"fmt"
	"sort"
	"time"
)

// BreakerConfig parameterises the per-edge circuit breakers.
type BreakerConfig struct {
	// FailuresToOpen is the consecutive-failure count that trips a closed
	// breaker open. Zero means the default of 5.
	FailuresToOpen int `json:"failuresToOpen,omitempty"`
	// OpenFor is how long an open breaker short-circuits calls before
	// probing again (half-open). Zero means the default of 5s.
	OpenFor time.Duration `json:"openFor,omitempty"`
	// HalfOpenProbes is how many trial calls a half-open breaker admits;
	// all must succeed to close it, any failure re-opens it. Zero means 1.
	HalfOpenProbes int `json:"halfOpenProbes,omitempty"`
}

func (c BreakerConfig) failuresToOpen() int {
	if c.FailuresToOpen <= 0 {
		return 5
	}
	return c.FailuresToOpen
}

func (c BreakerConfig) openFor() time.Duration {
	if c.OpenFor <= 0 {
		return 5 * time.Second
	}
	return c.OpenFor
}

func (c BreakerConfig) halfOpenProbes() int {
	if c.HalfOpenProbes <= 0 {
		return 1
	}
	return c.HalfOpenProbes
}

// RetryConfig parameterises client retries of failed downstream calls.
type RetryConfig struct {
	// MaxAttempts bounds attempts per call slot, including the first.
	// Zero means the default of 3.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// Backoff is the fixed delay before a retry is issued. Zero means the
	// default of 100ms.
	Backoff time.Duration `json:"backoff,omitempty"`
	// Budget caps retry amplification per calling service, Finagle-style:
	// retries may never exceed Budget × first-attempt calls, so total
	// attempts stay ≤ (1 + Budget) × first attempts no matter how hard a
	// downstream tier fails. Zero means unlimited (no budget) — the
	// retry-storm configuration.
	Budget float64 `json:"budget,omitempty"`
}

func (c RetryConfig) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c RetryConfig) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.Backoff
}

// DeadlineConfig enables deadline propagation: a downstream call's deadline
// is the minimum of its own service timeout and the caller's remaining
// deadline, so work that can no longer help the root request is never
// started.
type DeadlineConfig struct {
	// Margin is subtracted per hop from the inherited deadline to cover
	// response transit back up the chain. Optional.
	Margin time.Duration `json:"margin,omitempty"`
}

// ShedConfig parameterises adaptive load shedding at saturated replicas.
type ShedConfig struct {
	// UtilThreshold is the admission-queue occupancy (inflight / queue
	// limit) above which a replica starts refusing a fraction of new
	// admissions. Queue depth, not CPU-over-allocation, is the shed signal:
	// replicas burst past their CPU allocation when the node has slack, but
	// a queue deeper than the deadline can drain is doomed work. The shed
	// probability ramps linearly from zero at the threshold to MaxShed at
	// twice the threshold (capped at occupancy 1). Zero means the default
	// of 0.9. Only replicas with a queue limit shed.
	UtilThreshold float64 `json:"utilThreshold,omitempty"`
	// MaxShed caps the shed probability at the top of the ramp. Zero means
	// the default of 0.95 — even a saturated replica keeps a trickle
	// flowing so recovery is observable.
	MaxShed float64 `json:"maxShed,omitempty"`
}

func (c ShedConfig) utilThreshold() float64 {
	if c.UtilThreshold <= 0 {
		return 0.9
	}
	return c.UtilThreshold
}

func (c ShedConfig) maxShed() float64 {
	if c.MaxShed <= 0 {
		return 0.95
	}
	return c.MaxShed
}

// Config selects which defenses a run enables. Nil sub-configs are off; the
// zero value disables everything.
type Config struct {
	Breakers  *BreakerConfig  `json:"breakers,omitempty"`
	Retry     *RetryConfig    `json:"retry,omitempty"`
	Deadlines *DeadlineConfig `json:"deadlines,omitempty"`
	Shedding  *ShedConfig     `json:"shedding,omitempty"`
}

// Enabled reports whether any defense is on.
func (c Config) Enabled() bool {
	return c.Breakers != nil || c.Retry != nil || c.Deadlines != nil || c.Shedding != nil
}

// Validate rejects out-of-range parameters.
func (c Config) Validate() error {
	if b := c.Breakers; b != nil {
		if b.FailuresToOpen < 0 {
			return fmt.Errorf("resilience: breakers.failuresToOpen must be >= 0")
		}
		if b.OpenFor < 0 {
			return fmt.Errorf("resilience: breakers.openFor must be >= 0")
		}
		if b.HalfOpenProbes < 0 {
			return fmt.Errorf("resilience: breakers.halfOpenProbes must be >= 0")
		}
	}
	if r := c.Retry; r != nil {
		if r.MaxAttempts < 0 {
			return fmt.Errorf("resilience: retry.maxAttempts must be >= 0")
		}
		if r.Backoff < 0 {
			return fmt.Errorf("resilience: retry.backoff must be >= 0")
		}
		if r.Budget < 0 {
			return fmt.Errorf("resilience: retry.budget must be >= 0")
		}
	}
	if d := c.Deadlines; d != nil && d.Margin < 0 {
		return fmt.Errorf("resilience: deadlines.margin must be >= 0")
	}
	if s := c.Shedding; s != nil {
		if s.UtilThreshold < 0 || s.UtilThreshold >= 1 {
			return fmt.Errorf("resilience: shedding.utilThreshold %v out of [0,1)", s.UtilThreshold)
		}
		if s.MaxShed < 0 || s.MaxShed > 1 {
			return fmt.Errorf("resilience: shedding.maxShed %v out of [0,1]", s.MaxShed)
		}
	}
	return nil
}

// BreakerState is a circuit breaker's position in its state machine.
type BreakerState int

// Breaker states. Closed passes traffic, Open short-circuits it, HalfOpen
// admits a bounded number of probes to test recovery.
const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is one call-graph edge's circuit breaker: closed → open after
// FailuresToOpen consecutive failures, open → half-open after OpenFor, and
// half-open → closed after HalfOpenProbes consecutive probe successes (any
// probe failure re-opens). Probe admission is deterministic — the first K
// calls after the cooldown are the probes — so the state machine is a pure
// function of the call/result sequence and the clock.
type Breaker struct {
	cfg BreakerConfig

	state       BreakerState
	consecFails int
	openedAt    time.Duration
	probesOut   int
	probeOK     int
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// State returns the current state, advancing Open → HalfOpen when the
// cooldown has elapsed at now.
func (b *Breaker) State(now time.Duration) BreakerState {
	if b.state == StateOpen && now >= b.openedAt+b.cfg.openFor() {
		b.state = StateHalfOpen
		b.probesOut = 0
		b.probeOK = 0
	}
	return b.state
}

// Allow reports whether a call through the edge may proceed at now. A
// half-open breaker admits only its first HalfOpenProbes calls as probes.
func (b *Breaker) Allow(now time.Duration) bool {
	switch b.State(now) {
	case StateClosed:
		return true
	case StateHalfOpen:
		if b.probesOut < b.cfg.halfOpenProbes() {
			b.probesOut++
			return true
		}
		return false
	default:
		return false
	}
}

// Record feeds the outcome of an admitted call back into the state machine.
func (b *Breaker) Record(now time.Duration, success bool) (from, to BreakerState) {
	from = b.State(now)
	switch from {
	case StateClosed:
		if success {
			b.consecFails = 0
		} else {
			b.consecFails++
			if b.consecFails >= b.cfg.failuresToOpen() {
				b.trip(now)
			}
		}
	case StateHalfOpen:
		if success {
			b.probeOK++
			if b.probeOK >= b.cfg.halfOpenProbes() {
				b.state = StateClosed
				b.consecFails = 0
			}
		} else {
			b.trip(now)
		}
	case StateOpen:
		// A late result from before the trip; the breaker is already open.
	}
	return from, b.state
}

func (b *Breaker) trip(now time.Duration) {
	b.state = StateOpen
	b.openedAt = now
	b.consecFails = 0
	b.probesOut = 0
	b.probeOK = 0
}

// Counters aggregates the run's resilience activity for reports, the obs
// journal and the HTTP API.
type Counters struct {
	// Shed counts admissions refused by overload shedding (including
	// back-pressure drops when every replica queue was full).
	Shed uint64 `json:"shed"`
	// Retries counts downstream call re-issues that were admitted.
	Retries uint64 `json:"retries"`
	// RetriesDenied counts retries the budget refused.
	RetriesDenied uint64 `json:"retriesDenied"`
	// DeadlineExceeded counts requests abandoned because their (possibly
	// propagated) deadline passed.
	DeadlineExceeded uint64 `json:"deadlineExceeded"`
	// ShortCircuited counts calls an open breaker failed fast.
	ShortCircuited uint64 `json:"shortCircuited"`
	// BreakerOpens counts closed/half-open → open transitions.
	BreakerOpens uint64 `json:"breakerOpens"`
	// FirstAttempts and TotalAttempts measure retry amplification:
	// TotalAttempts / FirstAttempts is the run's amplification factor.
	FirstAttempts uint64 `json:"firstAttempts"`
	TotalAttempts uint64 `json:"totalAttempts"`
}

// Amplification returns TotalAttempts / FirstAttempts (1 when no calls).
func (c Counters) Amplification() float64 {
	if c.FirstAttempts == 0 {
		return 1
	}
	return float64(c.TotalAttempts) / float64(c.FirstAttempts)
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Shed += other.Shed
	c.Retries += other.Retries
	c.RetriesDenied += other.RetriesDenied
	c.DeadlineExceeded += other.DeadlineExceeded
	c.ShortCircuited += other.ShortCircuited
	c.BreakerOpens += other.BreakerOpens
	c.FirstAttempts += other.FirstAttempts
	c.TotalAttempts += other.TotalAttempts
}

// budget is one calling service's retry ledger.
type budget struct {
	firstAttempts uint64
	retries       uint64
}

// Manager owns the per-edge breakers, per-service retry budgets, shed
// decisions and deadline math for one run. A nil Manager allows everything
// and records nothing, so call sites need no guards. Like the rest of the
// simulator it is single-goroutine.
type Manager struct {
	cfg  Config
	seed int64

	breakers map[string]*Breaker
	budgets  map[string]*budget
	counters Counters

	// OnTransition, when set, observes breaker state changes (for the obs
	// journal and metrics).
	OnTransition func(now time.Duration, edge string, from, to BreakerState)
}

// NewManager builds a manager, or nil when the config enables nothing —
// composing directly with the nil-safe methods.
func NewManager(cfg Config, seed int64) *Manager {
	if !cfg.Enabled() {
		return nil
	}
	return &Manager{
		cfg:      cfg,
		seed:     seed,
		breakers: make(map[string]*Breaker),
		budgets:  make(map[string]*budget),
	}
}

// Config returns the manager's configuration (zero for nil).
func (m *Manager) Config() Config {
	if m == nil {
		return Config{}
	}
	return m.cfg
}

// Counters returns the accumulated counters (zero for nil).
func (m *Manager) Counters() Counters {
	if m == nil {
		return Counters{}
	}
	return m.counters
}

// breaker returns the edge's breaker, creating it closed on first use.
func (m *Manager) breaker(edge string) *Breaker {
	b, ok := m.breakers[edge]
	if !ok {
		b = NewBreaker(*m.cfg.Breakers)
		m.breakers[edge] = b
	}
	return b
}

// AllowCall reports whether the breaker on edge admits a call at now. Denied
// calls count as short-circuited; they are failures to the caller but do not
// touch the downstream service or the retry ledger's first-attempt count.
func (m *Manager) AllowCall(now time.Duration, edge string) bool {
	if m == nil || m.cfg.Breakers == nil {
		return true
	}
	if m.breaker(edge).Allow(now) {
		return true
	}
	m.counters.ShortCircuited++
	return false
}

// RecordCallResult feeds an admitted call's outcome into the edge breaker.
func (m *Manager) RecordCallResult(now time.Duration, edge string, success bool) {
	if m == nil || m.cfg.Breakers == nil {
		return
	}
	from, to := m.breaker(edge).Record(now, success)
	if from != to {
		if to == StateOpen {
			m.counters.BreakerOpens++
		}
		if m.OnTransition != nil {
			m.OnTransition(now, edge, from, to)
		}
	}
}

// BreakerStates returns every instantiated breaker's current state, keyed by
// edge, for the HTTP API and reports. Nil manager returns nil.
func (m *Manager) BreakerStates(now time.Duration) map[string]BreakerState {
	if m == nil || len(m.breakers) == 0 {
		return nil
	}
	out := make(map[string]BreakerState, len(m.breakers))
	for edge, b := range m.breakers {
		out[edge] = b.State(now)
	}
	return out
}

// BreakerEdges returns the instantiated breaker edges, sorted, for
// deterministic rendering.
func (m *Manager) BreakerEdges() []string {
	if m == nil {
		return nil
	}
	edges := make([]string, 0, len(m.breakers))
	for e := range m.breakers {
		edges = append(edges, e)
	}
	sort.Strings(edges)
	return edges
}

// RecordAttempt books one admitted downstream call attempt (1-based) into
// the calling service's retry ledger and the amplification counters.
func (m *Manager) RecordAttempt(service string, attempt int) {
	if m == nil {
		return
	}
	m.counters.TotalAttempts++
	bd := m.budgets[service]
	if bd == nil {
		bd = &budget{}
		m.budgets[service] = bd
	}
	if attempt <= 1 {
		m.counters.FirstAttempts++
		bd.firstAttempts++
	} else {
		m.counters.Retries++
		bd.retries++
	}
}

// RetryPolicy returns the effective retry parameters (attempt cap and
// backoff). With no retry config, max attempts is 1: failures are terminal.
func (m *Manager) RetryPolicy() (maxAttempts int, backoff time.Duration) {
	if m == nil || m.cfg.Retry == nil {
		return 1, 0
	}
	return m.cfg.Retry.maxAttempts(), m.cfg.Retry.backoff()
}

// AllowRetry consults service's retry budget for one more re-issue. The
// Finagle-style ledger guarantees retries ≤ Budget × first attempts, hence
// amplification ≤ 1 + Budget. Budget 0 means unlimited. Denials are counted.
func (m *Manager) AllowRetry(service string) bool {
	if m == nil || m.cfg.Retry == nil {
		return false
	}
	b := m.cfg.Retry.Budget
	if b <= 0 {
		return true
	}
	bd := m.budgets[service]
	if bd == nil {
		bd = &budget{}
		m.budgets[service] = bd
	}
	if float64(bd.retries+1) <= b*float64(bd.firstAttempts) {
		return true
	}
	m.counters.RetriesDenied++
	return false
}

// ChildDeadline composes a downstream call's deadline from its own service
// timeout and the caller's deadline. Without deadline propagation the child
// keeps its own timeout, as if it were a fresh client request.
func (m *Manager) ChildDeadline(now, parentDeadline time.Duration, childTimeout time.Duration) time.Duration {
	own := now + childTimeout
	if m == nil || m.cfg.Deadlines == nil {
		return own
	}
	inherited := parentDeadline - m.cfg.Deadlines.Margin
	if inherited < own {
		return inherited
	}
	return own
}

// DeadlinesOn reports whether deadline propagation is enabled.
func (m *Manager) DeadlinesOn() bool {
	return m != nil && m.cfg.Deadlines != nil
}

// ShouldShed decides whether a saturated replica refuses this admission.
// util is the replica's admission-queue occupancy (inflight over queue
// limit); above the threshold the shed probability ramps linearly to
// MaxShed at twice the threshold (or occupancy 1.0, whichever is lower), so
// a low threshold still bites instead of trickling up towards a full queue.
// The roll is a pure hash of (seed, container, request), so the decision is
// independent of evaluation order.
func (m *Manager) ShouldShed(util float64, containerID string, reqID uint64) bool {
	if m == nil || m.cfg.Shedding == nil {
		return false
	}
	threshold := m.cfg.Shedding.utilThreshold()
	if util <= threshold {
		return false
	}
	rampEnd := 2 * threshold
	if rampEnd > 1 {
		rampEnd = 1
	}
	p := (util - threshold) / (rampEnd - threshold) * m.cfg.Shedding.maxShed()
	if p > m.cfg.Shedding.maxShed() {
		p = m.cfg.Shedding.maxShed()
	}
	if Roll(m.seed, containerID, reqID) < p {
		m.counters.Shed++
		return true
	}
	return false
}

// CountShed books a shed that happened outside ShouldShed (back-pressure
// drop when every replica queue was full).
func (m *Manager) CountShed() {
	if m != nil {
		m.counters.Shed++
	}
}

// CountDeadlineExceeded books one deadline-exceeded abandonment.
func (m *Manager) CountDeadlineExceeded() {
	if m != nil {
		m.counters.DeadlineExceeded++
	}
}

// Roll maps (seed, id, n) to a uniform [0,1) draw with an FNV-1a mix and a
// splitmix64 finaliser — the same construction the faults injector uses.
// Shed decisions and the platform's call-probability draws use it instead of
// a shared random stream, so adding a defense never perturbs arrivals and
// runs stay byte-identical at any parallelism.
func Roll(seed int64, id string, n uint64) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, c := range []byte(id) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	for k := 0; k < 8; k++ {
		h ^= uint64(byte(n >> (8 * k)))
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
