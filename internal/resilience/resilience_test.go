package resilience

import (
	"math"
	"testing"
	"time"
)

// TestBreakerStateMachine walks the full closed → open → half-open → closed
// cycle and the half-open re-trip path.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{FailuresToOpen: 3, OpenFor: 10 * time.Second, HalfOpenProbes: 2}
	b := NewBreaker(cfg)
	now := time.Duration(0)

	if got := b.State(now); got != StateClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}

	// Two failures interleaved with a success never trip: the counter is
	// consecutive.
	b.Record(now, false)
	b.Record(now, false)
	b.Record(now, true)
	b.Record(now, false)
	b.Record(now, false)
	if got := b.State(now); got != StateClosed {
		t.Fatalf("after interleaved failures state = %v, want closed", got)
	}

	// The third consecutive failure trips it open.
	from, to := b.Record(now, false)
	if from != StateClosed || to != StateOpen {
		t.Fatalf("trip transition = %v -> %v, want closed -> open", from, to)
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted a call")
	}

	// Before the cooldown it stays open; at the cooldown it half-opens and
	// admits exactly HalfOpenProbes probes.
	if got := b.State(now + 9*time.Second); got != StateOpen {
		t.Fatalf("state before cooldown = %v, want open", got)
	}
	now += 10 * time.Second
	if got := b.State(now); got != StateHalfOpen {
		t.Fatalf("state at cooldown = %v, want half-open", got)
	}
	if !b.Allow(now) || !b.Allow(now) {
		t.Fatal("half-open breaker refused a probe")
	}
	if b.Allow(now) {
		t.Fatal("half-open breaker admitted a third probe with HalfOpenProbes=2")
	}

	// One probe success is not enough; the second closes it.
	b.Record(now, true)
	if got := b.State(now); got != StateHalfOpen {
		t.Fatalf("state after first probe success = %v, want half-open", got)
	}
	from, to = b.Record(now, true)
	if from != StateHalfOpen || to != StateClosed {
		t.Fatalf("close transition = %v -> %v, want half-open -> closed", from, to)
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker refused a call")
	}

	// Re-trip, half-open, then a probe failure re-opens and restarts the
	// cooldown from the failure time.
	for i := 0; i < 3; i++ {
		b.Record(now, false)
	}
	now += 10 * time.Second
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused its probe after re-trip")
	}
	from, to = b.Record(now, false)
	if from != StateHalfOpen || to != StateOpen {
		t.Fatalf("probe-failure transition = %v -> %v, want half-open -> open", from, to)
	}
	if got := b.State(now + 9*time.Second); got != StateOpen {
		t.Fatalf("re-opened breaker state before new cooldown = %v, want open", got)
	}
	if got := b.State(now + 10*time.Second); got != StateHalfOpen {
		t.Fatalf("re-opened breaker state after new cooldown = %v, want half-open", got)
	}
}

// TestBreakerLateResultWhileOpen checks that a straggler result arriving
// after the trip leaves the open state untouched.
func TestBreakerLateResultWhileOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailuresToOpen: 1, OpenFor: time.Minute})
	b.Record(0, false)
	from, to := b.Record(time.Second, true)
	if from != StateOpen || to != StateOpen {
		t.Fatalf("late result transition = %v -> %v, want open -> open", from, to)
	}
}

// TestManagerBreakerAccounting checks the manager-level wrapping: per-edge
// isolation, short-circuit and open counters, and transition callbacks.
func TestManagerBreakerAccounting(t *testing.T) {
	m := NewManager(Config{Breakers: &BreakerConfig{FailuresToOpen: 2, OpenFor: 5 * time.Second}}, 1)
	var transitions []string
	m.OnTransition = func(now time.Duration, edge string, from, to BreakerState) {
		transitions = append(transitions, edge+":"+from.String()+"->"+to.String())
	}

	for i := 0; i < 2; i++ {
		if !m.AllowCall(0, "a->b") {
			t.Fatal("closed breaker denied a call")
		}
		m.RecordCallResult(0, "a->b", false)
	}
	if m.AllowCall(0, "a->b") {
		t.Fatal("open edge a->b admitted a call")
	}
	if !m.AllowCall(0, "a->c") {
		t.Fatal("edge a->c was affected by a->b's breaker")
	}

	c := m.Counters()
	if c.ShortCircuited != 1 {
		t.Errorf("ShortCircuited = %d, want 1", c.ShortCircuited)
	}
	if c.BreakerOpens != 1 {
		t.Errorf("BreakerOpens = %d, want 1", c.BreakerOpens)
	}
	if len(transitions) != 1 || transitions[0] != "a->b:closed->open" {
		t.Errorf("transitions = %v, want [a->b:closed->open]", transitions)
	}
	if got := m.BreakerEdges(); len(got) != 2 || got[0] != "a->b" || got[1] != "a->c" {
		t.Errorf("BreakerEdges = %v, want [a->b a->c]", got)
	}
	states := m.BreakerStates(0)
	if states["a->b"] != StateOpen || states["a->c"] != StateClosed {
		t.Errorf("BreakerStates = %v", states)
	}
}

// TestRetryBudgetLedger checks the Finagle-style guarantee: retries never
// exceed Budget × first attempts, per calling service.
func TestRetryBudgetLedger(t *testing.T) {
	m := NewManager(Config{Retry: &RetryConfig{MaxAttempts: 4, Budget: 0.1}}, 1)

	// 100 first attempts fund exactly 10 retries.
	for i := 0; i < 100; i++ {
		m.RecordAttempt("svc", 1)
	}
	granted := 0
	for i := 0; i < 50; i++ {
		if m.AllowRetry("svc") {
			granted++
			m.RecordAttempt("svc", 2)
		}
	}
	if granted != 10 {
		t.Errorf("granted retries = %d, want 10 (budget 0.1 x 100)", granted)
	}
	c := m.Counters()
	if c.Retries != 10 || c.RetriesDenied != 40 {
		t.Errorf("Retries = %d, RetriesDenied = %d, want 10, 40", c.Retries, c.RetriesDenied)
	}
	if amp := c.Amplification(); amp != 1.1 {
		t.Errorf("Amplification = %v, want 1.1", amp)
	}

	// Ledgers are per calling service: a fresh service with no first
	// attempts gets nothing.
	if m.AllowRetry("other") {
		t.Error("service with zero first attempts was granted a retry")
	}

	// Budget 0 means unlimited.
	un := NewManager(Config{Retry: &RetryConfig{MaxAttempts: 4}}, 1)
	for i := 0; i < 20; i++ {
		if !un.AllowRetry("svc") {
			t.Fatal("unbudgeted retry denied")
		}
	}
}

// TestRetryPolicyDefaults checks policy resolution with and without config.
func TestRetryPolicyDefaults(t *testing.T) {
	var nilMgr *Manager
	if attempts, backoff := nilMgr.RetryPolicy(); attempts != 1 || backoff != 0 {
		t.Errorf("nil manager policy = (%d, %v), want (1, 0)", attempts, backoff)
	}
	m := NewManager(Config{Retry: &RetryConfig{}}, 1)
	if attempts, backoff := m.RetryPolicy(); attempts != 3 || backoff != 100*time.Millisecond {
		t.Errorf("default policy = (%d, %v), want (3, 100ms)", attempts, backoff)
	}
}

// TestChildDeadline checks the propagation min and the per-hop margin.
func TestChildDeadline(t *testing.T) {
	now := 10 * time.Second
	parent := 12 * time.Second

	// Without propagation the child keeps its own timeout.
	var nilMgr *Manager
	if d := nilMgr.ChildDeadline(now, parent, 6*time.Second); d != 16*time.Second {
		t.Errorf("nil manager child deadline = %v, want 16s", d)
	}

	m := NewManager(Config{Deadlines: &DeadlineConfig{Margin: 500 * time.Millisecond}}, 1)
	if !m.DeadlinesOn() {
		t.Fatal("DeadlinesOn = false with deadline config set")
	}
	// Inherited (12s - 500ms = 11.5s) beats own (16s).
	if d := m.ChildDeadline(now, parent, 6*time.Second); d != 11500*time.Millisecond {
		t.Errorf("propagated child deadline = %v, want 11.5s", d)
	}
	// Own (10.2s) beats a distant parent deadline.
	if d := m.ChildDeadline(now, time.Minute, 200*time.Millisecond); d != 10200*time.Millisecond {
		t.Errorf("own-timeout child deadline = %v, want 10.2s", d)
	}
}

// TestShouldShedRamp checks the occupancy ramp: nothing at or below the
// threshold, MaxShed at the top, and a deterministic pure-hash roll.
func TestShouldShedRamp(t *testing.T) {
	m := NewManager(Config{Shedding: &ShedConfig{UtilThreshold: 0.4, MaxShed: 1}}, 7)

	for _, util := range []float64{0, 0.2, 0.4} {
		for req := uint64(0); req < 100; req++ {
			if m.ShouldShed(util, "c1", req) {
				t.Fatalf("shed at occupancy %v <= threshold", util)
			}
		}
	}
	// At twice the threshold with MaxShed 1, everything sheds.
	for req := uint64(0); req < 100; req++ {
		if !m.ShouldShed(0.8, "c1", req) {
			t.Fatalf("request %d not shed at ramp top with MaxShed 1", req)
		}
	}
	if got := m.Counters().Shed; got != 100 {
		t.Errorf("Shed counter = %d, want 100", got)
	}

	// Mid-ramp the decision is a pure function of (seed, container, request):
	// two managers with the same seed agree on every roll.
	a := NewManager(Config{Shedding: &ShedConfig{UtilThreshold: 0.4, MaxShed: 0.95}}, 42)
	b := NewManager(Config{Shedding: &ShedConfig{UtilThreshold: 0.4, MaxShed: 0.95}}, 42)
	shed := 0
	for req := uint64(0); req < 2000; req++ {
		x, y := a.ShouldShed(0.6, "c1", req), b.ShouldShed(0.6, "c1", req)
		if x != y {
			t.Fatalf("same-seed managers disagreed on request %d", req)
		}
		if x {
			shed++
		}
	}
	// Halfway up the ramp the probability is MaxShed/2 = 0.475; with 2000
	// deterministic uniform rolls the count lands well inside ±10 points.
	if frac := float64(shed) / 2000; math.Abs(frac-0.475) > 0.1 {
		t.Errorf("mid-ramp shed fraction = %v, want ~0.475", frac)
	}
}

// TestRollIsUniformAndStable spot-checks the hash: bounded to [0,1),
// deterministic, and sensitive to each input.
func TestRollIsUniformAndStable(t *testing.T) {
	sum := 0.0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		v := Roll(1, "id", i)
		if v < 0 || v >= 1 {
			t.Fatalf("Roll out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Roll mean = %v, want ~0.5", mean)
	}
	if Roll(1, "id", 9) != Roll(1, "id", 9) {
		t.Error("Roll is not deterministic")
	}
	if Roll(1, "id", 9) == Roll(2, "id", 9) || Roll(1, "id", 9) == Roll(1, "di", 9) || Roll(1, "id", 9) == Roll(1, "id", 10) {
		t.Error("Roll insensitive to an input")
	}
}

// TestNilManagerAllowsEverything checks the nil-safe surface end to end: the
// disabled configuration must cost nothing and deny nothing.
func TestNilManagerAllowsEverything(t *testing.T) {
	m := NewManager(Config{}, 1)
	if m != nil {
		t.Fatal("NewManager with zero config should return nil")
	}
	if !m.AllowCall(0, "a->b") {
		t.Error("nil manager denied a call")
	}
	if m.AllowRetry("svc") {
		t.Error("nil manager granted a retry (retries are off without config)")
	}
	if m.ShouldShed(1, "c", 1) {
		t.Error("nil manager shed")
	}
	if m.DeadlinesOn() {
		t.Error("nil manager propagates deadlines")
	}
	m.RecordAttempt("svc", 1)
	m.RecordCallResult(0, "a->b", false)
	m.CountShed()
	m.CountDeadlineExceeded()
	if c := m.Counters(); c != (Counters{}) {
		t.Errorf("nil manager counters = %+v, want zero", c)
	}
	if m.BreakerStates(0) != nil || m.BreakerEdges() != nil {
		t.Error("nil manager reported breakers")
	}
}

// TestConfigValidate exercises the rejection paths.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Breakers: &BreakerConfig{FailuresToOpen: -1}},
		{Breakers: &BreakerConfig{OpenFor: -time.Second}},
		{Breakers: &BreakerConfig{HalfOpenProbes: -1}},
		{Retry: &RetryConfig{MaxAttempts: -1}},
		{Retry: &RetryConfig{Backoff: -time.Second}},
		{Retry: &RetryConfig{Budget: -0.1}},
		{Deadlines: &DeadlineConfig{Margin: -time.Second}},
		{Shedding: &ShedConfig{UtilThreshold: 1}},
		{Shedding: &ShedConfig{UtilThreshold: -0.1}},
		{Shedding: &ShedConfig{MaxShed: 1.5}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	good := Config{
		Breakers:  &BreakerConfig{FailuresToOpen: 5, OpenFor: 2 * time.Second, HalfOpenProbes: 1},
		Retry:     &RetryConfig{MaxAttempts: 4, Backoff: 150 * time.Millisecond, Budget: 0.1},
		Deadlines: &DeadlineConfig{Margin: 50 * time.Millisecond},
		Shedding:  &ShedConfig{UtilThreshold: 0.5, MaxShed: 0.95},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if !good.Enabled() {
		t.Error("full config reports disabled")
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
}

// TestCountersAdd checks aggregation used by the parallel executor's merge.
func TestCountersAdd(t *testing.T) {
	a := Counters{Shed: 1, Retries: 2, RetriesDenied: 3, DeadlineExceeded: 4,
		ShortCircuited: 5, BreakerOpens: 6, FirstAttempts: 7, TotalAttempts: 8}
	b := a
	a.Add(b)
	want := Counters{Shed: 2, Retries: 4, RetriesDenied: 6, DeadlineExceeded: 8,
		ShortCircuited: 10, BreakerOpens: 12, FirstAttempts: 14, TotalAttempts: 16}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	if (Counters{}).Amplification() != 1 {
		t.Error("zero counters amplification != 1")
	}
}
