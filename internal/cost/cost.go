// Package cost implements the cost-based accounting the paper lists as
// future work (§VII): data centres pay for powered machines and for SLA
// violation penalties (§I), so an autoscaler's quality is ultimately a cost
// trade-off — machines kept busy versus requests answered late or lost.
package cost

import (
	"fmt"
	"time"
)

// Config prices a run.
type Config struct {
	// MachineCostPerHour is the operating cost of one powered machine
	// (energy + amortised hardware).
	MachineCostPerHour float64
	// SLATargetLatency is the per-request response-time target from the
	// tenant's SLA; completions above it are violations.
	SLATargetLatency time.Duration
	// ViolationPenalty is the SLA penalty per violated or failed request.
	ViolationPenalty float64
}

// DefaultConfig returns plausible cloud prices: $0.20 per machine-hour, a
// one-second SLA, and a $0.001 penalty per violation.
func DefaultConfig() Config {
	return Config{
		MachineCostPerHour: 0.20,
		SLATargetLatency:   time.Second,
		ViolationPenalty:   0.001,
	}
}

// Tracker accumulates cost-relevant observations over one run. Not safe for
// concurrent use (the simulation is single-threaded).
type Tracker struct {
	cfg Config

	machineSeconds float64
	completions    uint64
	violations     uint64
	failures       uint64
}

// NewTracker returns a tracker priced by cfg.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg}
}

// ObserveMachines records that `active` machines were powered for dt. Call
// once per accounting interval with the number of nodes hosting at least
// one container — idle machines are assumed reclaimable (§I's
// power-conservation argument).
func (t *Tracker) ObserveMachines(active int, dt time.Duration) {
	if active < 0 || dt <= 0 {
		return
	}
	t.machineSeconds += float64(active) * dt.Seconds()
}

// ObserveCompletion records a finished request and checks it against the
// SLA target.
func (t *Tracker) ObserveCompletion(latency time.Duration) {
	t.completions++
	if t.cfg.SLATargetLatency > 0 && latency > t.cfg.SLATargetLatency {
		t.violations++
	}
}

// ObserveFailure records a failed request; failures always violate the SLA.
func (t *Tracker) ObserveFailure() {
	t.failures++
}

// Report is the priced outcome of a run.
type Report struct {
	// MachineHours is the integral of powered machines over time.
	MachineHours float64
	// Completions, SLAViolations and Failures count requests.
	Completions   uint64
	SLAViolations uint64
	Failures      uint64
	// MachineCost, PenaltyCost and TotalCost are in the configured currency.
	MachineCost float64
	PenaltyCost float64
	TotalCost   float64
}

// ViolationPercent returns the share of all requests that violated the SLA
// (late completions plus failures).
func (r Report) ViolationPercent() float64 {
	total := r.Completions + r.Failures
	if total == 0 {
		return 0
	}
	return 100 * float64(r.SLAViolations+r.Failures) / float64(total)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("machine-hours=%.2f sla-violations=%.2f%% cost=$%.4f (machines $%.4f + penalties $%.4f)",
		r.MachineHours, r.ViolationPercent(), r.TotalCost, r.MachineCost, r.PenaltyCost)
}

// Report prices the observations so far.
func (t *Tracker) Report() Report {
	r := Report{
		MachineHours:  t.machineSeconds / 3600,
		Completions:   t.completions,
		SLAViolations: t.violations,
		Failures:      t.failures,
	}
	r.MachineCost = r.MachineHours * t.cfg.MachineCostPerHour
	r.PenaltyCost = float64(t.violations+t.failures) * t.cfg.ViolationPenalty
	r.TotalCost = r.MachineCost + r.PenaltyCost
	return r
}
