package cost

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMachineAccounting(t *testing.T) {
	tr := NewTracker(Config{MachineCostPerHour: 0.5})
	tr.ObserveMachines(10, 30*time.Minute)
	tr.ObserveMachines(20, 30*time.Minute)
	r := tr.Report()
	if math.Abs(r.MachineHours-15) > 1e-9 {
		t.Errorf("MachineHours = %v, want 15", r.MachineHours)
	}
	if math.Abs(r.MachineCost-7.5) > 1e-9 {
		t.Errorf("MachineCost = %v, want 7.5", r.MachineCost)
	}
}

func TestMachineAccountingIgnoresBadInput(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	tr.ObserveMachines(-1, time.Hour)
	tr.ObserveMachines(5, -time.Hour)
	if r := tr.Report(); r.MachineHours != 0 {
		t.Errorf("MachineHours = %v, want 0", r.MachineHours)
	}
}

func TestSLAViolations(t *testing.T) {
	tr := NewTracker(Config{SLATargetLatency: time.Second, ViolationPenalty: 0.01})
	tr.ObserveCompletion(500 * time.Millisecond) // ok
	tr.ObserveCompletion(2 * time.Second)        // late
	tr.ObserveFailure()                          // failed

	r := tr.Report()
	if r.Completions != 2 || r.SLAViolations != 1 || r.Failures != 1 {
		t.Fatalf("report = %+v", r)
	}
	if math.Abs(r.PenaltyCost-0.02) > 1e-12 {
		t.Errorf("PenaltyCost = %v, want 0.02", r.PenaltyCost)
	}
	want := 100.0 * 2 / 3
	if math.Abs(r.ViolationPercent()-want) > 1e-9 {
		t.Errorf("ViolationPercent = %v, want %v", r.ViolationPercent(), want)
	}
}

func TestZeroSLADisablesLatencyCheck(t *testing.T) {
	tr := NewTracker(Config{})
	tr.ObserveCompletion(time.Hour)
	if tr.Report().SLAViolations != 0 {
		t.Error("violation counted with zero SLA target")
	}
}

func TestTotalCost(t *testing.T) {
	tr := NewTracker(Config{MachineCostPerHour: 1, SLATargetLatency: time.Second, ViolationPenalty: 0.5})
	tr.ObserveMachines(2, time.Hour)
	tr.ObserveCompletion(2 * time.Second)
	r := tr.Report()
	if math.Abs(r.TotalCost-2.5) > 1e-9 {
		t.Errorf("TotalCost = %v, want 2.5", r.TotalCost)
	}
}

func TestEmptyReport(t *testing.T) {
	r := NewTracker(DefaultConfig()).Report()
	if r.ViolationPercent() != 0 || r.TotalCost != 0 {
		t.Error("empty tracker should report zeros")
	}
}

func TestReportString(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	tr.ObserveMachines(1, time.Hour)
	if s := tr.Report().String(); !strings.Contains(s, "machine-hours=1.00") {
		t.Errorf("String = %q", s)
	}
}
