// Package perf runs the pinned performance suite behind `hyscale-bench
// -perf` and renders its results as a BENCH_<n>.json report. The suite is
// deliberately small and fixed — engine schedule/run micro-benchmarks,
// monitor poll cycles at the paper's 24-node scale and the roadmap's
// 200/1000-node scales, the Fig. 7 macro run, and the node×service scale
// sweep — so the same numbers are comparable across PRs and the repo
// accumulates a perf trajectory instead of anecdotes.
//
// Each report embeds the unoptimized baseline recorded before the first
// optimization pass, so the speedup claims are verifiable from the file
// alone: compare scaleSweep's simRatio against baselineUnoptimized's at the
// same grid point.
package perf

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
	"hyscale/internal/experiments"
	"hyscale/internal/monitor"
	"hyscale/internal/sim"
	"hyscale/internal/workload"
)

// BenchResult is one micro-benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	OpsPerSec   float64 `json:"opsPerSec"`
}

// MacroPerf summarises a macro experiment's throughput: how much simulated
// time it executed per wall-clock second.
type MacroPerf struct {
	Scale       float64 `json:"scale"`
	Runs        int     `json:"runs"`
	SimSeconds  float64 `json:"simSeconds"`
	WallSeconds float64 `json:"wallSeconds"`
	SimRatio    float64 `json:"simRatio"`
}

// Baseline is a pre-change reference measurement embedded in every report so
// speedups are checkable without digging through git history.
type Baseline struct {
	// Commit is the tree the baseline was measured on.
	Commit string `json:"commit"`
	// ScaleSweep is the unoptimized sweep at Scale=1 (120 simulated
	// seconds per point).
	ScaleSweep []experiments.ScalePoint `json:"scaleSweep"`
	// Fig7 is the unoptimized Fig. 7 macro run (both load shapes).
	Fig7 MacroPerf `json:"fig7"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Suite     string  `json:"suite"`
	PR        int     `json:"pr"`
	GoVersion string  `json:"goVersion"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`

	Benchmarks []BenchResult            `json:"benchmarks"`
	ScaleSweep []experiments.ScalePoint `json:"scaleSweep"`
	Fig7       MacroPerf                `json:"fig7"`

	Baseline Baseline `json:"baselineUnoptimized"`
}

// JSON renders the report with stable indentation for committing.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Options configures a suite run.
type Options struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Scale multiplies the macro and sweep durations (1.0 = pinned full
	// size; CI smoke uses a fraction). Micro-benchmarks ignore it.
	Scale float64
	// PR numbers the report (BENCH_<PR>.json).
	PR int
}

// BaselineUnoptimized is the measurement taken on the tree immediately
// before the hot-path optimization pass (commit 34ad6dc), on the same pinned
// suite: `-exp scale -seed 1` at Scale=1 and `-exp fig7 -scale 0.2 -seed 1
// -parallel 1`. The 1000-node/500-service simRatio of 30.5 is the number
// later reports are graded against.
func BaselineUnoptimized() Baseline {
	return Baseline{
		Commit: "34ad6dc",
		ScaleSweep: []experiments.ScalePoint{
			{Nodes: 24, Services: 15, SimSeconds: 120, WallSeconds: 0.035, SimRatio: 3470.8, Requests: 21367, ScaleOuts: 15},
			{Nodes: 96, Services: 60, SimSeconds: 120, WallSeconds: 0.138, SimRatio: 866.8, Requests: 85665, ScaleOuts: 60},
			{Nodes: 200, Services: 100, SimSeconds: 120, WallSeconds: 0.249, SimRatio: 482.4, Requests: 141704, ScaleOuts: 102},
			{Nodes: 1000, Services: 500, SimSeconds: 120, WallSeconds: 3.93, SimRatio: 30.5, Requests: 714476, ScaleOuts: 514},
		},
		Fig7: MacroPerf{Scale: 0.2, Runs: 6, SimSeconds: 4320, WallSeconds: 1.729, SimRatio: 2498.6},
	}
}

// Run executes the pinned suite and assembles the report.
func Run(opts Options) (*Report, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rep := &Report{
		Suite:     "hyscale-perf/v1",
		PR:        opts.PR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      opts.Seed,
		Scale:     opts.Scale,
		Baseline:  BaselineUnoptimized(),
	}

	rep.Benchmarks = append(rep.Benchmarks,
		benchEngineScheduleRun(),
		benchEngineScheduleBatch(),
		benchMonitorPoll(24, 15),
		benchMonitorPoll(200, 100),
		benchMonitorPoll(1000, 500),
	)

	fig7, err := runFig7(opts)
	if err != nil {
		return nil, err
	}
	rep.Fig7 = fig7

	sweep, err := experiments.RunScale(experiments.Options{Seed: opts.Seed, Scale: opts.Scale, Parallel: 1})
	if err != nil {
		return nil, err
	}
	experiments.TakeTimings() // drain so a following experiment's footer stays clean
	rep.ScaleSweep = sweep.Points
	return rep, nil
}

// Summary renders the headline lines printed after a -perf run.
func (r *Report) Summary() string {
	out := fmt.Sprintf("perf suite %s (seed %d, scale %g)\n", r.Suite, r.Seed, r.Scale)
	for _, b := range r.Benchmarks {
		out += fmt.Sprintf("  %-24s %12.1f ns/op  %4d allocs/op  %10.0f ops/sec\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.OpsPerSec)
	}
	out += fmt.Sprintf("  %-24s %9.1f sim-s/wall-s (%d runs, %.2fs wall)\n",
		"fig7", r.Fig7.SimRatio, r.Fig7.Runs, r.Fig7.WallSeconds)
	for _, p := range r.ScaleSweep {
		speedup := ""
		if base := baselinePoint(r.Baseline.ScaleSweep, p.Nodes, p.Services); base != nil && base.SimRatio > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs baseline %.1f)", p.SimRatio/base.SimRatio, base.SimRatio)
		}
		label := fmt.Sprintf("scale/%dn-%ds", p.Nodes, p.Services)
		if p.Zones > 1 {
			label = fmt.Sprintf("%s-%dz", label, p.Zones)
		}
		out += fmt.Sprintf("  %-24s %9.1f sim-s/wall-s%s\n", label, p.SimRatio, speedup)
	}
	return out
}

func baselinePoint(points []experiments.ScalePoint, nodes, services int) *experiments.ScalePoint {
	for i := range points {
		if points[i].Nodes == nodes && points[i].Services == services {
			return &points[i]
		}
	}
	return nil
}

// result converts a testing.BenchmarkResult into the report row.
func result(name string, r testing.BenchmarkResult) BenchResult {
	ns := float64(r.T.Nanoseconds()) / float64(max(r.N, 1))
	br := BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		br.OpsPerSec = 1e9 / ns
	}
	return br
}

// benchEngineScheduleRun measures one Schedule call plus its execution
// through Run — the per-event cost of the individually-scheduled path.
func benchEngineScheduleRun() BenchResult {
	fired := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.New(1)
		ev := func(*sim.Engine) { fired++ }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Schedule(time.Duration(i)*time.Microsecond, ev)
		}
		_ = e.Run(time.Duration(b.N) * time.Microsecond)
	})
	return result("engine/schedule-run", r)
}

// benchEngineScheduleBatch measures the per-item cost of the coalesced
// path: one heap entry and one shared closure, however large the batch.
func benchEngineScheduleBatch() BenchResult {
	fired := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.New(1)
		b.ResetTimer()
		_ = e.ScheduleBatch(time.Microsecond, 0, b.N, func(*sim.Engine, int) { fired++ })
		_ = e.Run(time.Microsecond)
	})
	return result("engine/schedule-batch", r)
}

// pollAlgo is the no-op scaling algorithm the poll benchmarks run against,
// so the measurement isolates monitor overhead from scaling decisions.
type pollAlgo struct{}

func (pollAlgo) Name() string                   { return "static" }
func (pollAlgo) Decide(core.Snapshot) core.Plan { return core.Plan{} }

func pollSpec(name string) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: workload.KindCPUBound,
		CPUPerRequest: 0.1, MemPerRequest: 10, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 2, MaxReplicas: 6, Timeout: 30 * time.Second,
	}
}

// benchMonitorPoll measures one steady-state Sample+Poll cycle over a
// cluster of the given size. AllocsPerOp here is the acceptance number: the
// optimized monitor must report 0.
func benchMonitorPoll(nodes, services int) BenchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cl, err := cluster.NewHomogeneous(nodes, cluster.DefaultNodeConfig(""))
		if err != nil {
			b.Fatal(err)
		}
		m := monitor.New(cl, pollAlgo{})
		for i := 0; i < services; i++ {
			sp := pollSpec(fmt.Sprintf("svc-%03d", i))
			if err := m.AddService(sp, 0.5); err != nil {
				b.Fatal(err)
			}
			if err := m.DeployInitial(sp.Name, 0); err != nil {
				b.Fatal(err)
			}
		}
		now := time.Duration(0)
		cycle := func() {
			now += time.Second
			m.Sample()
			m.Poll(now)
		}
		for i := 0; i < 3; i++ {
			cycle() // warm the report caches and scratch buffers
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle()
		}
	})
	return result(fmt.Sprintf("monitor/poll-%dn", nodes), r)
}

// runFig7 executes the Fig. 7 macro experiment (both load shapes,
// sequentially) and reports simulated-vs-wall throughput.
func runFig7(opts Options) (MacroPerf, error) {
	eo := experiments.Options{Seed: opts.Seed, Scale: opts.Scale * 0.2, Parallel: 1}
	experiments.TakeTimings() // reset
	start := time.Now()
	for _, shape := range []experiments.LoadShape{experiments.LowBurst, experiments.HighBurst} {
		if _, err := experiments.RunFig7(shape, eo); err != nil {
			return MacroPerf{}, err
		}
	}
	wall := time.Since(start).Seconds()
	runs := len(experiments.TakeTimings())
	sim := float64(runs) * 3600 * eo.Scale
	mp := MacroPerf{Scale: eo.Scale, Runs: runs, SimSeconds: sim, WallSeconds: wall}
	if wall > 0 {
		mp.SimRatio = sim / wall
	}
	return mp, nil
}
