package cluster

import (
	"fmt"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/workload"
)

// Cluster is the set of worker machines the Monitor arbitrates over.
type Cluster struct {
	nodes []*Node
	byID  map[string]*Node

	// tickBuf is Advance's reusable merge buffer; the returned TickResult
	// aliases it and is valid until the next Advance.
	tickBuf TickResult
}

// New builds a cluster from node configs, preserving order.
func New(cfgs ...NodeConfig) (*Cluster, error) {
	c := &Cluster{byID: make(map[string]*Node, len(cfgs))}
	for _, cfg := range cfgs {
		if err := c.AddNode(cfg); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// NewHomogeneous builds n identical nodes named node-0 … node-(n-1) using
// the supplied template config (its ID field is overwritten).
func NewHomogeneous(n int, template NodeConfig) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	cfgs := make([]NodeConfig, n)
	for i := range cfgs {
		cfgs[i] = template
		cfgs[i].ID = fmt.Sprintf("node-%d", i)
	}
	return New(cfgs...)
}

// AddNode registers a new machine, supporting the paper's future-work item
// of dynamic machine addition.
func (c *Cluster) AddNode(cfg NodeConfig) error {
	if _, dup := c.byID[cfg.ID]; dup {
		return fmt.Errorf("cluster: duplicate node ID %q", cfg.ID)
	}
	n, err := NewNode(cfg)
	if err != nil {
		return err
	}
	c.nodes = append(c.nodes, n)
	c.byID[cfg.ID] = n
	return nil
}

// RemoveNode decommissions a machine, killing every container on it. It
// returns the requests that died with the node, or an error for unknown IDs.
func (c *Cluster) RemoveNode(id string) ([]*workload.Request, error) {
	n, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", id)
	}
	var killed []*workload.Request
	for _, cc := range append([]*container.Container(nil), n.Containers()...) {
		killed = append(killed, n.RemoveContainer(cc.ID)...)
	}
	delete(c.byID, id)
	for i, nn := range c.nodes {
		if nn.ID() == id {
			c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
			break
		}
	}
	return killed, nil
}

// AdoptNode registers an existing node object without creating a new
// machine. Zone views use it to share *Node pointers with the physical
// cluster: the zone's control plane sees exactly the machines it owns while
// the global cluster keeps ticking all of them.
func (c *Cluster) AdoptNode(n *Node) error {
	if _, dup := c.byID[n.ID()]; dup {
		return fmt.Errorf("cluster: duplicate node ID %q", n.ID())
	}
	c.nodes = append(c.nodes, n)
	c.byID[n.ID()] = n
	return nil
}

// ReleaseNode removes a node from this cluster's membership WITHOUT killing
// its containers, returning the node object (or nil for unknown IDs). The
// counterpart of AdoptNode: moving a machine between zone views must not
// disturb the workloads running on it.
func (c *Cluster) ReleaseNode(id string) *Node {
	n, ok := c.byID[id]
	if !ok {
		return nil
	}
	delete(c.byID, id)
	for i, nn := range c.nodes {
		if nn.ID() == id {
			c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
			break
		}
	}
	return n
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id string) *Node { return c.byID[id] }

// Nodes returns all nodes in deterministic order. Callers must not mutate
// the slice.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// FindContainer locates a container anywhere in the cluster.
func (c *Cluster) FindContainer(id string) (*container.Container, *Node) {
	for _, n := range c.nodes {
		if cc := n.Container(id); cc != nil {
			return cc, n
		}
	}
	return nil, nil
}

// ReplicasOf returns every non-removed replica of the service across the
// cluster, in deterministic node/container order.
func (c *Cluster) ReplicasOf(service string) []*container.Container {
	var out []*container.Container
	for _, n := range c.nodes {
		for _, cc := range n.Containers() {
			if cc.Service == service && cc.State != container.StateRemoved {
				out = append(out, cc)
			}
		}
	}
	return out
}

// Advance runs one physics tick on every node and merges the results. The
// returned TickResult's slices are scratch reused by the next Advance;
// consume them before ticking again.
func (c *Cluster) Advance(now time.Duration, dt time.Duration) TickResult {
	res := TickResult{Completed: c.tickBuf.Completed[:0], TimedOut: c.tickBuf.TimedOut[:0]}
	for _, n := range c.nodes {
		r := n.Advance(now, dt)
		res.Completed = append(res.Completed, r.Completed...)
		res.TimedOut = append(res.TimedOut, r.TimedOut...)
	}
	c.tickBuf = res
	return res
}
