// Package cluster models the physical machines of the paper's testbed: a set
// of (possibly heterogeneous) nodes, each with a CPU/memory/NIC capacity,
// hosting Docker containers. The package owns the per-tick physics —
// weighted processor sharing with co-location contention (§III-A), the swap
// cliff (§III-B), and NIC tx-queue contention (§III-C) — so that every
// scaling algorithm is judged against the same physical effects the paper
// measured.
package cluster

import (
	"fmt"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/netem"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

// NodeConfig describes one machine.
type NodeConfig struct {
	// ID uniquely identifies the node.
	ID string
	// Capacity is the machine's total resources. The paper's nodes have
	// 4 cores, 8192 MiB and a shared NIC.
	Capacity resources.Vector
	// Net is the NIC model (line rate + tx-queue contention).
	Net netem.Model
	// CPUContention is the co-location contention coefficient, calibrated
	// for a four-core machine: with k CPU-active containers on 4 cores,
	// delivered CPU is derated by 1/(1+c·(k−1)). Larger machines interfere
	// less per extra container, so the effective coefficient scales by
	// 4/cores. The paper measured a 17 % response-time increase with one
	// co-located contender on its 4-core nodes, i.e. c ≈ 0.17 (we use 0.13
	// because queueing amplifies the per-request slowdown into the measured
	// response-time increase).
	CPUContention float64
	// SwapPenalty divides a swapping container's CPU progress (and observed
	// CPU usage, since the process stalls in iowait). Must be >= 1.
	SwapPenalty float64
}

// DefaultNodeConfig returns a node shaped like the paper's cluster machines.
func DefaultNodeConfig(id string) NodeConfig {
	return NodeConfig{
		ID:            id,
		Capacity:      resources.Vector{CPU: 4, MemMB: 8192, NetMbps: 1000},
		Net:           netem.Model{CapacityMbps: 1000, TxQueueContention: 0.15},
		CPUContention: 0.13,
		SwapPenalty:   8,
	}
}

// Node is one machine. All methods must be called from the simulation
// goroutine.
type Node struct {
	cfg NodeConfig

	// containers preserves insertion order for deterministic iteration;
	// byID provides O(1) lookup.
	containers []*container.Container
	byID       map[string]*container.Container

	// version counts container set changes (adds and removals), letting the
	// Monitor skip rebuilding per-node snapshot state when nothing moved.
	version uint64

	// Per-tick scratch buffers reused across Advance calls so steady-state
	// physics ticks allocate nothing.
	flowsBuf []netem.Flow
	ratesBuf []float64
	claimBuf []cpuClaimant
	netAlloc netem.Allocator
	tickBuf  TickResult
}

// NewNode builds a node from cfg.
func NewNode(cfg NodeConfig) (*Node, error) {
	switch {
	case cfg.ID == "":
		return nil, fmt.Errorf("cluster: node needs an ID")
	case cfg.Capacity.CPU <= 0 || cfg.Capacity.MemMB <= 0:
		return nil, fmt.Errorf("cluster: node %q needs positive CPU and memory capacity", cfg.ID)
	case cfg.SwapPenalty < 1:
		return nil, fmt.Errorf("cluster: node %q needs SwapPenalty >= 1, got %v", cfg.ID, cfg.SwapPenalty)
	case cfg.CPUContention < 0:
		return nil, fmt.Errorf("cluster: node %q has negative CPUContention", cfg.ID)
	}
	return &Node{cfg: cfg, byID: make(map[string]*container.Container)}, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.cfg.ID }

// Capacity returns the node's total resources.
func (n *Node) Capacity() resources.Vector { return n.cfg.Capacity }

// Config returns the node configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// AddContainer places c on this node. The container ID must be unique.
func (n *Node) AddContainer(c *container.Container) error {
	if _, dup := n.byID[c.ID]; dup {
		return fmt.Errorf("cluster: node %s already hosts container %s", n.cfg.ID, c.ID)
	}
	c.NodeID = n.cfg.ID
	n.containers = append(n.containers, c)
	n.byID[c.ID] = c
	n.version++
	return nil
}

// Version counts container placements and removals on this node. A snapshot
// layer can cache per-node derived state and rebuild it only when the version
// moved.
func (n *Node) Version() uint64 { return n.version }

// RemoveContainer removes the container and returns its killed in-flight
// requests (removal failures). It is a no-op returning nil for unknown IDs.
func (n *Node) RemoveContainer(id string) []*workload.Request {
	c, ok := n.byID[id]
	if !ok {
		return nil
	}
	delete(n.byID, id)
	for i, cc := range n.containers {
		if cc.ID == id {
			n.containers = append(n.containers[:i], n.containers[i+1:]...)
			break
		}
	}
	n.version++
	return c.Remove()
}

// Container returns the hosted container with the given ID, or nil.
func (n *Node) Container(id string) *container.Container { return n.byID[id] }

// Containers returns the hosted containers in deterministic (insertion)
// order. Callers must not mutate the returned slice.
func (n *Node) Containers() []*container.Container { return n.containers }

// Allocated returns the sum of all hosted containers' allocations.
func (n *Node) Allocated() resources.Vector {
	var v resources.Vector
	for _, c := range n.containers {
		v = v.Add(c.Alloc)
	}
	return v
}

// Available returns capacity minus allocations, floored at zero. This is
// what the node "advertises" to the Monitor for placement decisions.
func (n *Node) Available() resources.Vector {
	return n.cfg.Capacity.Sub(n.Allocated()).ClampNonNegative()
}

// HostsService reports whether any non-removed replica of the service runs
// (or is starting) on this node. HyScale's horizontal step only targets
// nodes that do NOT already host the service.
func (n *Node) HostsService(service string) bool {
	for _, c := range n.containers {
		if c.Service == service && c.State != container.StateRemoved {
			return true
		}
	}
	return false
}

// TickResult aggregates what happened on a node (or across the cluster)
// during one physics tick.
type TickResult struct {
	Completed []container.CompletedRequest
	TimedOut  []*workload.Request
}

// merge appends o's contents into t.
func (t *TickResult) merge(o container.AdvanceResult) {
	t.Completed = append(t.Completed, o.Completed...)
	t.TimedOut = append(t.TimedOut, o.TimedOut...)
}

// Advance runs dt of physics on this node:
//
//  1. Starting containers that reached their ready time become Running.
//  2. CPU: weighted max-min fair processor sharing across CPU-active
//     containers (weight = CPU request, i.e. Docker cpu-shares), with the
//     node's deliverable CPU derated by co-location contention and each
//     swapping container's progress derated by the swap penalty.
//  3. Network: max-min fair NIC allocation with tc caps and tx-queue
//     contention (see netem).
//  4. Each container advances its in-flight requests.
//
// The returned TickResult's slices are scratch reused by the next Advance on
// this node; consume them before ticking again.
func (n *Node) Advance(now time.Duration, dt time.Duration) TickResult {
	n.tickBuf.Completed = n.tickBuf.Completed[:0]
	n.tickBuf.TimedOut = n.tickBuf.TimedOut[:0]
	res := TickResult{Completed: n.tickBuf.Completed, TimedOut: n.tickBuf.TimedOut}
	if dt <= 0 || len(n.containers) == 0 {
		return res
	}
	for _, c := range n.containers {
		c.MaybeStart(now)
	}

	cpuRates := n.allocateCPU()

	n.flowsBuf = n.flowsBuf[:0]
	for _, c := range n.containers {
		f := netem.Flow{}
		if c.State == container.StateRunning {
			f = netem.Flow{CapMbps: c.Alloc.NetMbps, Count: c.NetFlowCount()}
		}
		n.flowsBuf = append(n.flowsBuf, f)
	}
	netShares := n.netAlloc.Allocate(n.cfg.Net, n.flowsBuf)

	for i, c := range n.containers {
		if c.State != container.StateRunning {
			// Starting containers process nothing; keep a zero usage sample.
			c.SetLastUsage(container.Usage{MemMB: 0})
			continue
		}
		res.merge(c.Advance(now, dt, cpuRates[i], netShares[i].RateMbps))
	}
	n.tickBuf = res
	return res
}

// cpuClaimant is one running container's demand in the weighted
// water-filling round of allocateCPU.
type cpuClaimant struct {
	idx    int
	weight float64
	demand float64
	rate   float64
	frozen bool
}

// allocateCPU computes the CPU rate delivered to each container this tick.
// The returned slice is indexed like n.containers and reused across ticks.
func (n *Node) allocateCPU() []float64 {
	if cap(n.ratesBuf) < len(n.containers) {
		n.ratesBuf = make([]float64, len(n.containers))
	}
	rates := n.ratesBuf[:len(n.containers)]
	clear(rates)

	claimants := n.claimBuf[:0]
	active := 0
	for i, c := range n.containers {
		if c.State != container.StateRunning {
			continue
		}
		d := c.CPUDemand()
		if d <= 0 {
			continue
		}
		// A swapping container stalls in iowait: it can only make progress —
		// and only occupies the CPU — at a fraction of its demand. The
		// slowdown deepens with how far past the limit the working set is
		// (more of it lives on disk).
		if c.Swapping() {
			d /= n.cfg.SwapPenalty * c.SwapDepth()
		}
		w := c.Alloc.CPU
		if w <= 0 {
			// Docker gives every container a minimum share; model a tiny
			// weight so zero-request containers still make progress.
			w = 0.01
		}
		claimants = append(claimants, cpuClaimant{idx: i, weight: w, demand: d})
		active++
	}
	n.claimBuf = claimants
	if active == 0 {
		return rates
	}

	// Co-location contention derates the whole node's deliverable CPU. The
	// coefficient is calibrated per 4 cores: bigger machines suffer less
	// interference per extra container.
	contention := n.cfg.CPUContention * 4 / n.cfg.Capacity.CPU
	capacity := n.cfg.Capacity.CPU / (1 + contention*float64(active-1))

	// Weighted water-filling: distribute capacity proportionally to weights;
	// freeze claimants whose demand binds and redistribute the slack
	// (work-conserving, like Docker cpu-shares).
	remaining := capacity
	unfrozen := active
	for unfrozen > 0 && remaining > 1e-12 {
		var weightSum float64
		for _, cl := range claimants {
			if !cl.frozen {
				weightSum += cl.weight
			}
		}
		if weightSum <= 0 {
			break
		}
		progressed := false
		for i := range claimants {
			cl := &claimants[i]
			if cl.frozen {
				continue
			}
			grant := remaining * cl.weight / weightSum
			if cl.rate+grant >= cl.demand {
				extra := cl.demand - cl.rate
				if extra < 0 {
					extra = 0
				}
				cl.rate = cl.demand
				remaining -= extra
				cl.frozen = true
				unfrozen--
				progressed = true
			}
		}
		if !progressed {
			// No demand binds: hand out the final proportional split.
			for i := range claimants {
				cl := &claimants[i]
				if !cl.frozen {
					cl.rate += remaining * cl.weight / weightSum
				}
			}
			remaining = 0
		}
	}

	for _, cl := range claimants {
		rates[cl.idx] = cl.rate
	}
	return rates
}
