package cluster

import (
	"math"
	"testing"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/netem"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

func testSpec() workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: "svc", Kind: workload.KindCPUBound,
		CPUPerRequest: 1.0,
		MemPerRequest: 10, BaselineMemMB: 50,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 256,
		MinReplicas: 1, MaxReplicas: 8,
		Timeout: 60 * time.Second,
	}
}

func testNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(DefaultNodeConfig("node-0"))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func running(id string, spec workload.ServiceSpec, alloc resources.Vector) *container.Container {
	c := container.New(id, spec, "", alloc, 0)
	c.MaybeStart(0)
	return c
}

func TestNewNodeValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*NodeConfig)
	}{
		{"empty id", func(c *NodeConfig) { c.ID = "" }},
		{"zero cpu", func(c *NodeConfig) { c.Capacity.CPU = 0 }},
		{"zero mem", func(c *NodeConfig) { c.Capacity.MemMB = 0 }},
		{"swap penalty < 1", func(c *NodeConfig) { c.SwapPenalty = 0.5 }},
		{"negative contention", func(c *NodeConfig) { c.CPUContention = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultNodeConfig("n")
			tt.mutate(&cfg)
			if _, err := NewNode(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestAddRemoveContainer(t *testing.T) {
	n := testNode(t)
	c := running("c-0", testSpec(), resources.Vector{CPU: 1, MemMB: 256})
	if err := n.AddContainer(c); err != nil {
		t.Fatal(err)
	}
	if c.NodeID != "node-0" {
		t.Errorf("NodeID = %q, want node-0", c.NodeID)
	}
	if err := n.AddContainer(c); err == nil {
		t.Error("duplicate container accepted")
	}
	if n.Container("c-0") != c {
		t.Error("lookup failed")
	}

	c.Enqueue(workload.NewRequest(1, testSpec(), 0))
	killed := n.RemoveContainer("c-0")
	if len(killed) != 1 {
		t.Errorf("killed = %d, want 1", len(killed))
	}
	if n.Container("c-0") != nil || len(n.Containers()) != 0 {
		t.Error("container not removed")
	}
	if n.RemoveContainer("nope") != nil {
		t.Error("removing unknown container returned requests")
	}
}

func TestAllocatedAvailable(t *testing.T) {
	n := testNode(t)
	_ = n.AddContainer(running("a", testSpec(), resources.Vector{CPU: 1, MemMB: 1024}))
	_ = n.AddContainer(running("b", testSpec(), resources.Vector{CPU: 2.5, MemMB: 4096, NetMbps: 100}))

	alloc := n.Allocated()
	if alloc.CPU != 3.5 || alloc.MemMB != 5120 || alloc.NetMbps != 100 {
		t.Errorf("Allocated = %v", alloc)
	}
	avail := n.Available()
	if avail.CPU != 0.5 || avail.MemMB != 8192-5120 {
		t.Errorf("Available = %v", avail)
	}
}

func TestAvailableFloorsAtZero(t *testing.T) {
	n := testNode(t)
	_ = n.AddContainer(running("a", testSpec(), resources.Vector{CPU: 10, MemMB: 99999}))
	avail := n.Available()
	if avail.CPU != 0 || avail.MemMB != 0 {
		t.Errorf("Available = %v, want zeros", avail)
	}
}

func TestHostsService(t *testing.T) {
	n := testNode(t)
	_ = n.AddContainer(running("a", testSpec(), resources.Vector{CPU: 1, MemMB: 100}))
	if !n.HostsService("svc") {
		t.Error("HostsService(svc) = false")
	}
	if n.HostsService("other") {
		t.Error("HostsService(other) = true")
	}
}

// TestProportionalSharing checks the Docker cpu-shares semantics: two
// saturated containers with 1:2 weights split the (contention-derated)
// capacity 1:2.
func TestProportionalSharing(t *testing.T) {
	cfg := DefaultNodeConfig("n")
	cfg.CPUContention = 0 // isolate the proportionality
	n, _ := NewNode(cfg)

	a := running("a", testSpec(), resources.Vector{CPU: 1, MemMB: 256})
	b := running("b", testSpec(), resources.Vector{CPU: 2, MemMB: 256})
	a.StressCPUDemand = 8
	b.StressCPUDemand = 8
	_ = n.AddContainer(a)
	_ = n.AddContainer(b)

	n.Advance(0, time.Second)
	ua, ub := a.LastUsage().CPU, b.LastUsage().CPU
	if math.Abs(ua-4.0/3) > 1e-6 || math.Abs(ub-8.0/3) > 1e-6 {
		t.Errorf("shares = %.3f/%.3f, want 1.333/2.667", ua, ub)
	}
}

// TestWorkConservingSharing checks that slack from an idle-ish container is
// redistributed (cpu-shares are weights, not caps).
func TestWorkConservingSharing(t *testing.T) {
	cfg := DefaultNodeConfig("n")
	cfg.CPUContention = 0
	n, _ := NewNode(cfg)

	a := running("a", testSpec(), resources.Vector{CPU: 2, MemMB: 256})
	b := running("b", testSpec(), resources.Vector{CPU: 2, MemMB: 256})
	a.StressCPUDemand = 0.5 // demands less than its share
	b.StressCPUDemand = 8
	_ = n.AddContainer(a)
	_ = n.AddContainer(b)

	n.Advance(0, time.Second)
	if got := a.LastUsage().CPU; math.Abs(got-0.5) > 1e-6 {
		t.Errorf("a usage = %v, want its demand 0.5", got)
	}
	if got := b.LastUsage().CPU; math.Abs(got-3.5) > 1e-6 {
		t.Errorf("b usage = %v, want 3.5 (work-conserving slack)", got)
	}
}

// TestContentionDerate checks the §III-A co-location effect: with two active
// containers the node delivers capacity/(1+c).
func TestContentionDerate(t *testing.T) {
	cfg := DefaultNodeConfig("n")
	cfg.CPUContention = 0.17
	n, _ := NewNode(cfg)

	a := running("a", testSpec(), resources.Vector{CPU: 2, MemMB: 256})
	b := running("b", testSpec(), resources.Vector{CPU: 2, MemMB: 256})
	a.StressCPUDemand = 8
	b.StressCPUDemand = 8
	_ = n.AddContainer(a)
	_ = n.AddContainer(b)

	n.Advance(0, time.Second)
	total := a.LastUsage().CPU + b.LastUsage().CPU
	want := 4.0 / 1.17
	if math.Abs(total-want) > 1e-6 {
		t.Errorf("total delivered = %v, want %v", total, want)
	}
}

// TestSwapThrottlesProgress checks the §III-B swap cliff: a container past
// its memory limit progresses at a fraction of its demand.
func TestSwapThrottlesProgress(t *testing.T) {
	cfg := DefaultNodeConfig("n")
	cfg.CPUContention = 0
	cfg.SwapPenalty = 8
	n, _ := NewNode(cfg)

	s := testSpec()
	s.MemPerRequest = 100
	// Limit 140 < baseline 50 + 100: a single request forces swapping.
	c := running("c", s, resources.Vector{CPU: 4, MemMB: 140})
	_ = n.AddContainer(c)
	c.Enqueue(workload.NewRequest(1, s, 0))

	n.Advance(0, time.Second)
	// Demand 1 core; depth = 150/140; throttled to 1/(8*150/140) ≈ 0.117.
	want := 1.0 / (8 * (150.0 / 140.0))
	if got := c.LastUsage().CPU; math.Abs(got-want) > 1e-6 {
		t.Errorf("swapping usage = %v, want %v", got, want)
	}
}

func TestStartingContainersDoNotProcess(t *testing.T) {
	n := testNode(t)
	c := container.New("c", testSpec(), "", resources.Vector{CPU: 1, MemMB: 256}, 5*time.Second)
	_ = n.AddContainer(c)
	c.Enqueue(workload.NewRequest(1, testSpec(), 0))

	res := n.Advance(0, time.Second)
	if len(res.Completed) != 0 {
		t.Fatal("starting container completed work")
	}
	// At t=5s MaybeStart fires inside Advance and it begins processing.
	res = n.Advance(5*time.Second, time.Second)
	if c.State != container.StateRunning {
		t.Fatal("container did not start")
	}
	if len(res.Completed) != 1 {
		t.Fatalf("Completed = %d, want 1", len(res.Completed))
	}
}

func TestNetworkAllocationOnNode(t *testing.T) {
	cfg := DefaultNodeConfig("n")
	cfg.Net = netem.Model{CapacityMbps: 100, TxQueueContention: 0}
	n, _ := NewNode(cfg)

	s := testSpec()
	s.CPUPerRequest = 0.001
	s.NetPerRequest = 1000 // long transfer
	c := running("c", s, resources.Vector{CPU: 1, MemMB: 256, NetMbps: 40})
	_ = n.AddContainer(c)
	c.Enqueue(workload.NewRequest(1, s, 0))

	// First tick finishes the CPU phase.
	n.Advance(0, 100*time.Millisecond)
	// Second tick transmits at the tc cap (40 Mbps).
	n.Advance(100*time.Millisecond, time.Second)
	if got := c.LastUsage().NetMbps; math.Abs(got-40) > 1e-6 {
		t.Errorf("net usage = %v, want tc cap 40", got)
	}
}

func TestClusterBasics(t *testing.T) {
	cl, err := NewHomogeneous(3, DefaultNodeConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes()) != 3 {
		t.Fatalf("nodes = %d, want 3", len(cl.Nodes()))
	}
	if cl.Node("node-1") == nil || cl.Node("nope") != nil {
		t.Error("Node lookup wrong")
	}
	if err := cl.AddNode(DefaultNodeConfig("node-1")); err == nil {
		t.Error("duplicate node accepted")
	}

	c := running("c-0", testSpec(), resources.Vector{CPU: 1, MemMB: 256})
	_ = cl.Node("node-2").AddContainer(c)
	found, node := cl.FindContainer("c-0")
	if found != c || node.ID() != "node-2" {
		t.Error("FindContainer failed")
	}
	if got := len(cl.ReplicasOf("svc")); got != 1 {
		t.Errorf("ReplicasOf = %d, want 1", got)
	}
}

func TestNewHomogeneousRejectsZero(t *testing.T) {
	if _, err := NewHomogeneous(0, DefaultNodeConfig("")); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestRemoveNode(t *testing.T) {
	cl, _ := NewHomogeneous(2, DefaultNodeConfig(""))
	c := running("c-0", testSpec(), resources.Vector{CPU: 1, MemMB: 256})
	_ = cl.Node("node-0").AddContainer(c)
	c.Enqueue(workload.NewRequest(1, testSpec(), 0))

	killed, err := cl.RemoveNode("node-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(killed) != 1 {
		t.Errorf("killed = %d, want 1", len(killed))
	}
	if len(cl.Nodes()) != 1 || cl.Node("node-0") != nil {
		t.Error("node not removed")
	}
	if _, err := cl.RemoveNode("node-0"); err == nil {
		t.Error("removing unknown node succeeded")
	}
}

func TestClusterAdvanceMergesResults(t *testing.T) {
	cl, _ := NewHomogeneous(2, DefaultNodeConfig(""))
	for i, id := range []string{"node-0", "node-1"} {
		s := testSpec()
		s.CPUPerRequest = 0.5
		c := running(string(rune('a'+i)), s, resources.Vector{CPU: 2, MemMB: 256})
		_ = cl.Node(id).AddContainer(c)
		c.Enqueue(workload.NewRequest(uint64(i), s, 0))
	}
	res := cl.Advance(0, time.Second)
	if len(res.Completed) != 2 {
		t.Errorf("Completed = %d, want 2 (one per node)", len(res.Completed))
	}
}
