package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, time.Second, 1.1); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewHistogram(time.Second, time.Second, 1.1); err == nil {
		t.Error("max == min accepted")
	}
	if _, err := NewHistogram(time.Millisecond, time.Second, 1.0); err == nil {
		t.Error("growth 1.0 accepted")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := DefaultLatencyHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	h.Observe(100 * time.Millisecond)
	h.Observe(200 * time.Millisecond)
	h.Observe(300 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 200*time.Millisecond {
		t.Errorf("Mean = %v, want exactly 200ms", h.Mean())
	}
	if h.Max() != 300*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if s := h.String(); !strings.Contains(s, "n=3") {
		t.Errorf("String = %q", s)
	}
}

// TestQuantileAccuracy checks the bounded-relative-error guarantee against
// exact percentiles on random data.
func TestQuantileAccuracy(t *testing.T) {
	h := DefaultLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	var samples []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform between 2ms and 30s.
		d := time.Duration(float64(2*time.Millisecond) * math.Exp(rng.Float64()*math.Log(15000)))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(math.Ceil(q*float64(len(samples))))-1]
		est := h.Quantile(q)
		relErr := math.Abs(float64(est)-float64(exact)) / float64(exact)
		if relErr > 0.12 { // growth 1.1 plus rank rounding
			t.Errorf("q=%.2f: est %v vs exact %v (rel err %.3f)", q, est, exact, relErr)
		}
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h, err := NewHistogram(10*time.Millisecond, time.Second, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(time.Millisecond) // under
	h.Observe(time.Minute)      // over
	h.Observe(100 * time.Millisecond)

	if got := h.Quantile(0.01); got != 10*time.Millisecond {
		t.Errorf("under-range quantile = %v, want min", got)
	}
	if got := h.Quantile(1.0); got != time.Minute {
		t.Errorf("over-range quantile = %v, want observed max", got)
	}
	buckets := h.Buckets()
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3 (under + one cell + over)", len(buckets))
	}
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count())
	}
}

func TestQuantileClamps(t *testing.T) {
	h := DefaultLatencyHistogram()
	h.Observe(50 * time.Millisecond)
	if h.Quantile(-1) == 0 || h.Quantile(2) == 0 {
		t.Error("out-of-range q mishandled")
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		h := DefaultLatencyHistogram()
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(20 * time.Second))))
		}
		prev := time.Duration(0)
		for q := 0.05; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7)
	}
}

// Property: Welford matches the two-pass computation.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		var w Welford
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			w.Observe(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Error("unseeded EWMA not zero")
	}
	e.Observe(10) // seeds
	if e.Value() != 10 {
		t.Errorf("seed = %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Errorf("after 20 = %v, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Errorf("after 15 = %v, want 15", e.Value())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.2)
	e.Observe(0)
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-6 {
		t.Errorf("EWMA did not converge: %v", e.Value())
	}
}
