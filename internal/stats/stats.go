// Package stats provides streaming statistics: a log-bucketed latency
// histogram with bounded relative error and O(1) memory, online
// mean/variance (Welford), and exponentially weighted moving averages.
// The exact-percentile recorder in internal/metrics stores every sample —
// fine for experiments; the histogram here is what a long-lived deployment
// (cmd/hyscale-server) exports without unbounded growth.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-bucketed duration histogram: bucket i covers
// [min·growth^i, min·growth^(i+1)), giving a constant relative error of
// (growth−1) on quantile estimates. The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	min    time.Duration
	growth float64
	counts []uint64
	under  uint64 // samples below min
	over   uint64 // samples beyond the last bucket
	total  uint64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram builds a histogram covering [min, max] with the given
// per-bucket growth factor (e.g. 1.1 ⇒ ≤10 % quantile error).
func NewHistogram(min, max time.Duration, growth float64) (*Histogram, error) {
	switch {
	case min <= 0:
		return nil, fmt.Errorf("stats: histogram min must be positive, got %v", min)
	case max <= min:
		return nil, fmt.Errorf("stats: histogram max %v must exceed min %v", max, min)
	case growth <= 1:
		return nil, fmt.Errorf("stats: growth must be > 1, got %v", growth)
	}
	n := int(math.Ceil(math.Log(float64(max)/float64(min))/math.Log(growth))) + 1
	return &Histogram{min: min, growth: growth, counts: make([]uint64, n)}, nil
}

// DefaultLatencyHistogram covers 1 ms .. 10 min at ≤10 % error — right for
// request latencies in this system.
func DefaultLatencyHistogram() *Histogram {
	h, err := NewHistogram(time.Millisecond, 10*time.Minute, 1.1)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.under++
		return
	}
	i := int(math.Log(float64(d)/float64(h.min)) / math.Log(h.growth))
	if i >= len(h.counts) {
		h.over++
		return
	}
	h.counts[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean of all observations (tracked outside the
// buckets, so it carries no bucketing error).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile estimates the q-quantile (0..1) with relative error bounded by
// the growth factor. Samples below min report min; beyond the range report
// the exact observed max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank <= h.under {
		return h.min
	}
	cum := h.under
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Upper edge of bucket i.
			return time.Duration(float64(h.min) * math.Pow(h.growth, float64(i+1)))
		}
	}
	return h.max
}

// Buckets returns non-empty buckets as (upperBound, count) pairs, for
// exporting in Prometheus-style expositions.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	if h.under > 0 {
		out = append(out, Bucket{UpperBound: h.min, Count: h.under})
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		ub := time.Duration(float64(h.min) * math.Pow(h.growth, float64(i+1)))
		out = append(out, Bucket{UpperBound: ub, Count: c})
	}
	if h.over > 0 {
		out = append(out, Bucket{UpperBound: h.max, Count: h.over})
	}
	return out
}

// Bucket is one histogram cell.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper latency edge.
	UpperBound time.Duration
	// Count is the number of samples in the cell.
	Count uint64
}

// String renders a compact summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Millisecond),
		h.Quantile(0.50).Round(time.Millisecond),
		h.Quantile(0.95).Round(time.Millisecond),
		h.Quantile(0.99).Round(time.Millisecond),
		h.max.Round(time.Millisecond))
	return b.String()
}

// Welford tracks online mean and variance without storing samples.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe records one value.
func (w *Welford) Observe(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// EWMA is an exponentially weighted moving average: each Observe folds the
// new value in with weight alpha. The zero value with a zero alpha is not
// useful; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA builds an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha follows the signal more closely.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("stats: EWMA alpha must be in (0,1], got %v", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds in a new value; the first observation seeds the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }
