package lb

import (
	"errors"
	"testing"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/resources"
)

// startingReplica is a replica still inside its start delay at probe time.
func startingReplica(id string, readyAt time.Duration) *container.Container {
	return container.New(id, spec(), "node", resources.Vector{CPU: 1, MemMB: 256}, readyAt)
}

func TestAllStartingIsDistinguishedFromAbsent(t *testing.T) {
	b := New(RoundRobin)

	if _, err := b.RouteAt(0, req(1), nil); !errors.Is(err, ErrNoBackend) {
		t.Errorf("no replicas: err = %v, want ErrNoBackend", err)
	}

	reps := []*container.Container{startingReplica("a", 5*time.Second), startingReplica("b", 5*time.Second)}
	if _, err := b.RouteAt(0, req(2), reps); !errors.Is(err, ErrAllStarting) {
		t.Errorf("all starting: err = %v, want ErrAllStarting", err)
	}
	// ErrAllStarting is itself a no-backend condition callers may handle
	// generically — but the two must stay distinguishable.
	if errors.Is(ErrAllStarting, ErrNoBackend) {
		t.Error("ErrAllStarting must not alias ErrNoBackend")
	}

	reps[0].MaybeStart(5 * time.Second)
	if c, err := b.RouteAt(5*time.Second, req(3), reps); err != nil || c.ID != "a" {
		t.Errorf("one started: got %v, %v", c, err)
	}
}

func TestHealthCheckEjectsAndReadmits(t *testing.T) {
	down := map[string]bool{"a": true}
	b := New(RoundRobin)
	b.HealthCheck = func(now time.Duration, c *container.Container) bool { return !down[c.ID] }
	b.ProbeInterval = 2 * time.Second

	reps := []*container.Container{replica("a"), replica("b")}
	for i := 0; i < 4; i++ {
		c, err := b.RouteAt(0, req(uint64(i)), reps)
		if err != nil {
			t.Fatal(err)
		}
		if c.ID != "b" {
			t.Fatalf("routed to unhealthy backend %s", c.ID)
		}
	}

	// Recovery is observed only at the next probe.
	down["a"] = false
	if c, _ := b.RouteAt(time.Second, req(10), reps); c.ID != "b" {
		t.Error("cached probe should still eject a")
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		c, err := b.RouteAt(3*time.Second, req(20+uint64(i)), reps)
		if err != nil {
			t.Fatal(err)
		}
		seen[c.ID] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("after readmission rotation = %v, want both", seen)
	}
}

func TestAllEjectedIsNoBackendNotStarting(t *testing.T) {
	b := New(LeastOutstanding)
	b.HealthCheck = func(time.Duration, *container.Container) bool { return false }
	reps := []*container.Container{replica("a"), replica("b")}
	if _, err := b.RouteAt(0, req(1), reps); !errors.Is(err, ErrNoBackend) {
		t.Errorf("all ejected: err = %v, want ErrNoBackend", err)
	}
}

func TestProbeCacheExpiresAndForgets(t *testing.T) {
	calls := 0
	b := New(RoundRobin)
	b.HealthCheck = func(time.Duration, *container.Container) bool { calls++; return true }
	b.ProbeInterval = 2 * time.Second
	reps := []*container.Container{replica("a")}

	b.RouteAt(0, req(1), reps)
	b.RouteAt(time.Second, req(2), reps) // within interval: cached
	if calls != 1 {
		t.Fatalf("probe calls = %d, want 1 (cache hit)", calls)
	}
	b.RouteAt(2500*time.Millisecond, req(3), reps) // expired: re-probe
	if calls != 2 {
		t.Fatalf("probe calls = %d, want 2 (cache expiry)", calls)
	}

	b.Forget("a")
	b.RouteAt(2600*time.Millisecond, req(4), reps)
	if calls != 3 {
		t.Fatalf("probe calls = %d, want 3 (Forget clears cache)", calls)
	}
}
