package lb

import (
	"errors"
	"testing"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

func spec() workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: "svc", Kind: workload.KindCPUBound,
		CPUPerRequest: 0.1, MemPerRequest: 10, BaselineMemMB: 50,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 256,
		MinReplicas: 1, MaxReplicas: 4, Timeout: 30 * time.Second,
	}
}

func replica(id string) *container.Container {
	c := container.New(id, spec(), "node", resources.Vector{CPU: 1, MemMB: 256}, 0)
	c.MaybeStart(0)
	return c
}

func req(id uint64) *workload.Request { return workload.NewRequest(id, spec(), 0) }

func TestRoundRobinCycles(t *testing.T) {
	b := New(RoundRobin)
	reps := []*container.Container{replica("a"), replica("b"), replica("c")}
	var got []string
	for i := 0; i < 6; i++ {
		c, err := b.Route(req(uint64(i)), reps)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c.ID)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestLeastOutstanding(t *testing.T) {
	b := New(LeastOutstanding)
	a, c := replica("a"), replica("b")
	a.Enqueue(req(1))
	a.Enqueue(req(2))
	c.Enqueue(req(3))
	picked, err := b.Route(req(4), []*container.Container{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if picked.ID != "b" {
		t.Errorf("picked %s, want b (fewest in flight)", picked.ID)
	}
}

func TestLeastOutstandingTieBreaksByOrder(t *testing.T) {
	b := New(LeastOutstanding)
	reps := []*container.Container{replica("a"), replica("b")}
	picked, _ := b.Route(req(1), reps)
	if picked.ID != "a" {
		t.Errorf("picked %s, want a (first on tie)", picked.ID)
	}
}

func TestNoBackend(t *testing.T) {
	b := New(RoundRobin)
	if _, err := b.Route(req(1), nil); !errors.Is(err, ErrNoBackend) {
		t.Errorf("err = %v, want ErrNoBackend", err)
	}
}

func TestSkipsStartingReplicas(t *testing.T) {
	b := New(RoundRobin)
	starting := container.New("s", spec(), "node", resources.Vector{CPU: 1, MemMB: 256}, time.Hour)
	run := replica("r")
	for i := 0; i < 3; i++ {
		picked, err := b.Route(req(uint64(i)), []*container.Container{starting, run})
		if err != nil {
			t.Fatal(err)
		}
		if picked.ID != "r" {
			t.Errorf("picked starting replica")
		}
	}
}

func TestSkipsOverloadedReplicas(t *testing.T) {
	b := New(LeastOutstanding)
	over := replica("over")
	// Push resident memory past 3x the 256MB limit: 50 + 80*10 = 850.
	for i := 0; i < 80; i++ {
		over.Enqueue(req(uint64(i)))
	}
	if !over.Overloaded() {
		t.Fatal("setup: replica not overloaded")
	}
	ok := replica("ok")
	picked, err := b.Route(req(999), []*container.Container{over, ok})
	if err != nil {
		t.Fatal(err)
	}
	if picked.ID != "ok" {
		t.Error("routed to overloaded replica")
	}

	// All overloaded -> connection failure.
	if _, err := b.Route(req(1000), []*container.Container{over}); !errors.Is(err, ErrNoBackend) {
		t.Errorf("err = %v, want ErrNoBackend", err)
	}
}

func TestDistributionOverhead(t *testing.T) {
	b := New(RoundRobin)
	b.DistributionOverhead = 40 * time.Millisecond

	// One replica: no overhead.
	r1 := req(1)
	if _, err := b.Route(r1, []*container.Container{replica("a")}); err != nil {
		t.Fatal(err)
	}
	if r1.ExtraLatency != 0 {
		t.Errorf("single-replica overhead = %v, want 0", r1.ExtraLatency)
	}

	// Four replicas: 40ms * log2(4) = 80ms.
	reps := []*container.Container{replica("a"), replica("b"), replica("c"), replica("d")}
	r2 := req(2)
	if _, err := b.Route(r2, reps); err != nil {
		t.Fatal(err)
	}
	if r2.ExtraLatency != 80*time.Millisecond {
		t.Errorf("overhead = %v, want 80ms", r2.ExtraLatency)
	}
}

func TestPolicyStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastOutstanding.String() != "least-outstanding" {
		t.Error("policy strings wrong")
	}
}

func TestWeightedLeastOutstanding(t *testing.T) {
	b := New(WeightedLeastOutstanding)
	big := container.New("big", spec(), "node", resources.Vector{CPU: 4, MemMB: 256}, 0)
	big.MaybeStart(0)
	small := container.New("small", spec(), "node", resources.Vector{CPU: 0.5, MemMB: 256}, 0)
	small.MaybeStart(0)

	// big has 4 in flight (score 1.0), small has 1 (score 2.0): the
	// weighted policy still prefers the big replica.
	for i := 0; i < 4; i++ {
		big.Enqueue(req(uint64(i)))
	}
	small.Enqueue(req(10))

	picked, err := b.Route(req(99), []*container.Container{small, big})
	if err != nil {
		t.Fatal(err)
	}
	if picked.ID != "big" {
		t.Errorf("picked %s, want big (lower load per CPU)", picked.ID)
	}

	// Plain LeastOutstanding would pick small here.
	lo := New(LeastOutstanding)
	picked, _ = lo.Route(req(100), []*container.Container{small, big})
	if picked.ID != "small" {
		t.Errorf("least-outstanding picked %s, want small", picked.ID)
	}
}

func TestWeightedScoreZeroCPU(t *testing.T) {
	c := container.New("z", spec(), "node", resources.Vector{MemMB: 256}, 0)
	c.MaybeStart(0)
	c.Enqueue(req(1))
	if s := weightedScore(c); s <= 0 || s != 100 {
		t.Errorf("weightedScore = %v, want 100 (1 inflight / 0.01 floor)", s)
	}
}

func TestWeightedPolicyString(t *testing.T) {
	if WeightedLeastOutstanding.String() != "weighted-least-outstanding" {
		t.Error("policy string wrong")
	}
}
