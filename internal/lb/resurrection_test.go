package lb

import (
	"strings"
	"testing"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/faults"
)

// routeSeq routes n requests at now and returns the backend IDs in order.
func routeSeq(t *testing.T, b *Balancer, now time.Duration, reps []*container.Container, n int) string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c, err := b.RouteAt(now, req(uint64(now)*100+uint64(i)), reps)
		if err != nil {
			t.Fatalf("route %d at %v: %v", i, now, err)
		}
		ids = append(ids, c.ID)
	}
	return strings.Join(ids, " ")
}

// TestRoundRobinResurrectionOrderIsStable: a backend ejected by health
// checks and later readmitted re-enters the round-robin rotation in its
// original slice position, and the whole sequence is reproducible — the
// regression guard for flap-induced rotation reshuffles.
func TestRoundRobinResurrectionOrderIsStable(t *testing.T) {
	run := func() string {
		down := map[string]bool{"b": true}
		b := New(RoundRobin)
		b.HealthCheck = func(now time.Duration, c *container.Container) bool { return !down[c.ID] }
		b.ProbeInterval = 2 * time.Second
		reps := []*container.Container{replica("a"), replica("b"), replica("c")}

		var log []string
		log = append(log, routeSeq(t, b, 0, reps, 4)) // b ejected
		down["b"] = false
		log = append(log, routeSeq(t, b, time.Second, reps, 2))   // probe cached: still out
		log = append(log, routeSeq(t, b, 3*time.Second, reps, 6)) // readmitted
		return strings.Join(log, " | ")
	}

	got := run()
	want := "a c a c | a c | a b c a b c"
	if got != want {
		t.Errorf("rotation = %q, want %q", got, want)
	}
	if again := run(); again != got {
		t.Errorf("resurrection rotation not reproducible:\n first %q\nsecond %q", got, again)
	}
}

// TestRotationAfterAllStarting: replicas that were all mid-start (the
// ErrAllStarting verdict) enter rotation in slice order once ready, not in
// readiness-completion order.
func TestRotationAfterAllStarting(t *testing.T) {
	b := New(RoundRobin)
	reps := []*container.Container{
		startingReplica("a", 5*time.Second),
		startingReplica("b", 3*time.Second),
		startingReplica("c", 4*time.Second),
	}
	if _, err := b.RouteAt(0, req(1), reps); err != ErrAllStarting {
		t.Fatalf("err = %v, want ErrAllStarting", err)
	}
	for _, c := range reps {
		c.MaybeStart(5 * time.Second)
	}
	if got := routeSeq(t, b, 6*time.Second, reps, 6); got != "a b c a b c" {
		t.Errorf("post-start rotation = %q, want slice order", got)
	}
}

// TestBackendDownResurrectionViaInjector: wiring the fault injector's
// BackendDown verdict as the health check (how the platform composes them),
// a backend forced down by a window is ejected and rejoins rotation
// deterministically when the window closes.
func TestBackendDownResurrectionViaInjector(t *testing.T) {
	inj := faults.New(faults.Config{Windows: []faults.Window{
		{Kind: faults.KindBackend, Target: "b", From: 0, To: 10 * time.Second},
	}})
	run := func() string {
		b := New(RoundRobin)
		b.HealthCheck = func(now time.Duration, c *container.Container) bool {
			return !inj.BackendDown(now, c.Service, c.ID)
		}
		b.ProbeInterval = 2 * time.Second
		reps := []*container.Container{replica("a"), replica("b"), replica("c")}
		during := routeSeq(t, b, 5*time.Second, reps, 4)
		after := routeSeq(t, b, 12*time.Second, reps, 6)
		return during + " | " + after
	}
	got := run()
	want := "a c a c | a b c a b c"
	if got != want {
		t.Errorf("rotation = %q, want %q", got, want)
	}
	if again := run(); again != got {
		t.Errorf("injector resurrection not reproducible:\n first %q\nsecond %q", got, again)
	}
}
