// Package lb implements the distributed server-side load balancers of the
// paper's platform (§V): they proxy client requests to the replicas of a
// microservice. The balancer also charges the cross-node distribution
// overhead the paper measured in §III-A — a latency term that grows
// logarithmically with the number of replicas.
package lb

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/workload"
)

// Policy selects how the balancer picks a replica.
type Policy int

// Routing policies.
const (
	// RoundRobin cycles through routable replicas per service.
	RoundRobin Policy = iota + 1
	// LeastOutstanding picks the routable replica with the fewest in-flight
	// requests, breaking ties by order.
	LeastOutstanding
	// WeightedLeastOutstanding picks the replica with the lowest in-flight
	// count per allocated CPU — the right policy when vertical scaling has
	// made replica sizes heterogeneous (a 3-CPU replica should carry ~12x
	// the load of a 0.25-CPU one).
	WeightedLeastOutstanding
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case WeightedLeastOutstanding:
		return "weighted-least-outstanding"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ErrNoBackend is returned when a service has no routable replica; the
// request becomes a connection failure.
var ErrNoBackend = errors.New("lb: no routable replica")

// Balancer routes requests to replicas. It is single-goroutine like the
// rest of the simulator.
type Balancer struct {
	policy Policy
	// DistributionOverhead is the latency charged per doubling of the
	// replica set (c·log2(replicas), §III-A). Zero disables the effect.
	DistributionOverhead time.Duration

	rr map[string]int
}

// New creates a balancer with the given policy.
func New(policy Policy) *Balancer {
	return &Balancer{policy: policy, rr: make(map[string]int)}
}

// Policy returns the routing policy.
func (b *Balancer) Policy() Policy { return b.policy }

// Route picks a routable replica for the request and charges the
// distribution overhead. It does not enqueue the request; the caller does,
// which keeps routing decisions testable in isolation. Returns ErrNoBackend
// when every replica is down or still starting.
func (b *Balancer) Route(req *workload.Request, replicas []*container.Container) (*container.Container, error) {
	routable := routableOf(replicas)
	if len(routable) == 0 {
		return nil, ErrNoBackend
	}

	if b.DistributionOverhead > 0 && len(routable) > 1 {
		req.ExtraLatency += time.Duration(float64(b.DistributionOverhead) * math.Log2(float64(len(routable))))
	}

	switch b.policy {
	case LeastOutstanding:
		best := routable[0]
		for _, c := range routable[1:] {
			if c.Inflight() < best.Inflight() {
				best = c
			}
		}
		return best, nil
	case WeightedLeastOutstanding:
		best := routable[0]
		bestScore := weightedScore(best)
		for _, c := range routable[1:] {
			if s := weightedScore(c); s < bestScore {
				best, bestScore = c, s
			}
		}
		return best, nil
	default: // RoundRobin, also the fallback for unknown policies
		i := b.rr[req.Service] % len(routable)
		b.rr[req.Service] = (i + 1) % len(routable)
		return routable[i], nil
	}
}

// weightedScore is in-flight load per allocated CPU; replicas with no CPU
// request count as minimally sized so they still sort sanely.
func weightedScore(c *container.Container) float64 {
	cpu := c.Alloc.CPU
	if cpu <= 0 {
		cpu = 0.01
	}
	return float64(c.Inflight()) / cpu
}

func routableOf(replicas []*container.Container) []*container.Container {
	out := make([]*container.Container, 0, len(replicas))
	for _, c := range replicas {
		if c.Routable() && !c.Overloaded() {
			out = append(out, c)
		}
	}
	return out
}
