// Package lb implements the distributed server-side load balancers of the
// paper's platform (§V): they proxy client requests to the replicas of a
// microservice. The balancer also charges the cross-node distribution
// overhead the paper measured in §III-A — a latency term that grows
// logarithmically with the number of replicas.
//
// The balancer actively health-checks its backends: an installed
// HealthCheck probe is consulted (at most once per ProbeInterval per
// backend) and unhealthy replicas are ejected from rotation until a later
// probe sees them recover. The probe cache models real LB behaviour —
// detection and readmission both lag by up to one probe interval.
package lb

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/workload"
)

// Policy selects how the balancer picks a replica.
type Policy int

// Routing policies.
const (
	// RoundRobin cycles through routable replicas per service.
	RoundRobin Policy = iota + 1
	// LeastOutstanding picks the routable replica with the fewest in-flight
	// requests, breaking ties by order.
	LeastOutstanding
	// WeightedLeastOutstanding picks the replica with the lowest in-flight
	// count per allocated CPU — the right policy when vertical scaling has
	// made replica sizes heterogeneous (a 3-CPU replica should carry ~12x
	// the load of a 0.25-CPU one).
	WeightedLeastOutstanding
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case WeightedLeastOutstanding:
		return "weighted-least-outstanding"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ErrNoBackend is returned when a service has no replica that could ever
// take the request — none exist, all are overloaded, or health checks have
// ejected every one; the request becomes a connection failure.
var ErrNoBackend = errors.New("lb: no routable replica")

// ErrAllStarting is returned when replicas exist but every one is still
// mid-start — the autoscaler has reacted, capacity just isn't ready yet.
// Chaos analyses attribute these failures to start latency, not absence.
var ErrAllStarting = errors.New("lb: all replicas still starting")

// ErrAllFull is returned when healthy replicas exist but every one's bounded
// admission queue is at capacity — the back-pressure signal of a saturated
// tier. Only possible for services that declare a QueueLimit; callers treat
// it as a shed/drop, not an outage.
var ErrAllFull = errors.New("lb: all replica queues full")

// defaultProbeInterval spaces health probes per backend.
const defaultProbeInterval = 2 * time.Second

// probeState caches one backend's last health probe.
type probeState struct {
	at      time.Duration
	healthy bool
}

// Balancer routes requests to replicas. It is single-goroutine like the
// rest of the simulator.
type Balancer struct {
	policy Policy
	// DistributionOverhead is the latency charged per doubling of the
	// replica set (c·log2(replicas), §III-A). Zero disables the effect.
	DistributionOverhead time.Duration

	// HealthCheck, when set, is probed per backend (at most once per
	// ProbeInterval) and unhealthy backends are ejected from rotation until
	// a later probe readmits them. Nil disables health checking.
	HealthCheck func(now time.Duration, c *container.Container) bool
	// ProbeInterval caps probe frequency per backend; zero uses the 2s
	// default. The cache is what makes detection realistic: a backend that
	// just went down keeps receiving (and dropping) traffic until the next
	// probe notices.
	ProbeInterval time.Duration

	rr     map[string]int
	probes map[string]probeState

	// rotation is split's reusable scratch for the viable-replica set —
	// rebuilt on every RouteAt, so routing a request allocates nothing.
	rotation []*container.Container
}

// New creates a balancer with the given policy.
func New(policy Policy) *Balancer {
	return &Balancer{
		policy: policy,
		rr:     make(map[string]int),
		probes: make(map[string]probeState),
	}
}

// Policy returns the routing policy.
func (b *Balancer) Policy() Policy { return b.policy }

// Route picks a replica for the request with the request's arrival as the
// probe clock. See RouteAt.
func (b *Balancer) Route(req *workload.Request, replicas []*container.Container) (*container.Container, error) {
	return b.RouteAt(req.Arrival, req, replicas)
}

// RouteAt picks a routable, healthy replica for the request and charges the
// distribution overhead. It does not enqueue the request; the caller does,
// which keeps routing decisions testable in isolation. Returns
// ErrAllStarting when replicas exist but none has finished starting, and
// ErrNoBackend when there is no viable backend at all.
func (b *Balancer) RouteAt(now time.Duration, req *workload.Request, replicas []*container.Container) (*container.Container, error) {
	routable, starting, full := b.split(now, replicas)
	if len(routable) == 0 {
		switch {
		case full > 0:
			return nil, ErrAllFull
		case starting > 0:
			return nil, ErrAllStarting
		}
		return nil, ErrNoBackend
	}

	if b.DistributionOverhead > 0 && len(routable) > 1 {
		req.ExtraLatency += time.Duration(float64(b.DistributionOverhead) * math.Log2(float64(len(routable))))
	}

	switch b.policy {
	case LeastOutstanding:
		best := routable[0]
		for _, c := range routable[1:] {
			if c.Inflight() < best.Inflight() {
				best = c
			}
		}
		return best, nil
	case WeightedLeastOutstanding:
		best := routable[0]
		bestScore := weightedScore(best)
		for _, c := range routable[1:] {
			if s := weightedScore(c); s < bestScore {
				best, bestScore = c, s
			}
		}
		return best, nil
	default: // RoundRobin, also the fallback for unknown policies
		i := b.rr[req.Service] % len(routable)
		b.rr[req.Service] = (i + 1) % len(routable)
		return routable[i], nil
	}
}

// weightedScore is in-flight load per allocated CPU; replicas with no CPU
// request count as minimally sized so they still sort sanely.
func weightedScore(c *container.Container) float64 {
	cpu := c.Alloc.CPU
	if cpu <= 0 {
		cpu = 0.01
	}
	return float64(c.Inflight()) / cpu
}

// split partitions replicas into the viable rotation plus counts of those
// still starting and those healthy-but-queue-full. Health-ejected and
// overloaded replicas belong to none of the three: they exist but cannot
// take traffic, which keeps ErrNoBackend (not ErrAllStarting) the verdict
// when ejection empties the rotation. Queue-full replicas are counted
// separately so an entirely saturated tier reads as back-pressure
// (ErrAllFull), not an outage.
func (b *Balancer) split(now time.Duration, replicas []*container.Container) ([]*container.Container, int, int) {
	out := b.rotation[:0]
	starting := 0
	full := 0
	for _, c := range replicas {
		if !c.Routable() {
			if c.State == container.StateStarting {
				starting++
			}
			continue
		}
		if c.Overloaded() || !b.healthy(now, c) {
			continue
		}
		if c.QueueFull() {
			full++
			continue
		}
		out = append(out, c)
	}
	b.rotation = out
	return out, starting, full
}

// healthy returns the (possibly cached) probe verdict for a backend.
func (b *Balancer) healthy(now time.Duration, c *container.Container) bool {
	if b.HealthCheck == nil {
		return true
	}
	interval := b.ProbeInterval
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	if p, ok := b.probes[c.ID]; ok && now-p.at < interval {
		return p.healthy
	}
	h := b.HealthCheck(now, c)
	b.probes[c.ID] = probeState{at: now, healthy: h}
	return h
}

// Forget drops a backend's cached probe state; call when a replica is
// removed so its ID can be reused without inheriting stale health.
func (b *Balancer) Forget(containerID string) {
	delete(b.probes, containerID)
}
