package trace

import (
	"math"
	"strings"
	"testing"
	"testing/fstest"
	"time"
)

func TestSeriesAt(t *testing.T) {
	s := Series{
		Interval:   time.Minute,
		CPUPercent: []float64{10, 20, 30},
		MemPercent: []float64{1, 2, 3},
	}
	cpu, mem := s.At(0)
	if cpu != 10 || mem != 1 {
		t.Errorf("At(0) = %v/%v", cpu, mem)
	}
	cpu, _ = s.At(90 * time.Second) // second sample
	if cpu != 20 {
		t.Errorf("At(90s) = %v, want 20", cpu)
	}
	// Wraps past the end.
	cpu, _ = s.At(3 * time.Minute)
	if cpu != 10 {
		t.Errorf("At(wrap) = %v, want 10", cpu)
	}
}

func TestSeriesAtEmpty(t *testing.T) {
	var s Series
	if cpu, mem := s.At(time.Hour); cpu != 0 || mem != 0 {
		t.Error("empty series should return zeros")
	}
}

func TestSeriesDuration(t *testing.T) {
	s := Series{Interval: 30 * time.Second, CPUPercent: make([]float64, 4)}
	if s.Duration() != 2*time.Minute {
		t.Errorf("Duration = %v, want 2m", s.Duration())
	}
}

func TestTraceMean(t *testing.T) {
	tr := &Trace{
		Interval: time.Minute,
		Series: []Series{
			{Interval: time.Minute, CPUPercent: []float64{10, 20}, MemPercent: []float64{0, 0}},
			{Interval: time.Minute, CPUPercent: []float64{30, 40}, MemPercent: []float64{10, 10}},
		},
	}
	m := tr.Mean()
	if m.CPUPercent[0] != 20 || m.CPUPercent[1] != 30 {
		t.Errorf("mean CPU = %v", m.CPUPercent)
	}
	if m.MemPercent[0] != 5 {
		t.Errorf("mean mem = %v", m.MemPercent)
	}
}

func TestTraceMeanRaggedLengths(t *testing.T) {
	tr := &Trace{
		Interval: time.Minute,
		Series: []Series{
			{Interval: time.Minute, CPUPercent: []float64{10}, MemPercent: []float64{2}},
			{Interval: time.Minute, CPUPercent: []float64{30, 50}, MemPercent: []float64{4, 6}},
		},
	}
	m := tr.Mean()
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if m.CPUPercent[0] != 20 || m.CPUPercent[1] != 50 {
		t.Errorf("ragged mean = %v", m.CPUPercent)
	}
}

func TestPartition(t *testing.T) {
	tr := &Trace{Interval: time.Minute}
	for i := 0; i < 10; i++ {
		tr.Series = append(tr.Series, Series{
			Interval:   time.Minute,
			CPUPercent: []float64{float64(i)},
			MemPercent: []float64{0},
		})
	}
	parts := tr.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	// Round-robin: group 0 gets series 0,3,6,9 -> mean 4.5.
	if got := parts[0].CPUPercent[0]; got != 4.5 {
		t.Errorf("part 0 mean = %v, want 4.5", got)
	}
	if Partition := tr.Partition(0); Partition != nil {
		t.Error("Partition(0) should be nil")
	}
}

func TestGenerateRndShape(t *testing.T) {
	cfg := DefaultRndConfig(1)
	cfg.VMs = 100
	cfg.Duration = 30 * time.Minute
	tr := GenerateRnd(cfg)
	if len(tr.Series) != 100 {
		t.Fatalf("series = %d, want 100", len(tr.Series))
	}
	for _, s := range tr.Series {
		if s.Len() != 60 {
			t.Fatalf("samples = %d, want 60", s.Len())
		}
		for i := 0; i < s.Len(); i++ {
			if s.CPUPercent[i] < 0 || s.CPUPercent[i] > 100 || s.MemPercent[i] < 0 || s.MemPercent[i] > 100 {
				t.Fatal("sample out of [0,100]")
			}
		}
	}

	// The across-VM average must keep a visible wave (correlated phases),
	// like Figure 9.
	m := tr.Mean()
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range m.CPUPercent {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV/minV < 1.15 {
		t.Errorf("average CPU wave too flat: min=%v max=%v", minV, maxV)
	}
}

func TestGenerateRndDeterministic(t *testing.T) {
	cfg := DefaultRndConfig(7)
	cfg.VMs = 10
	cfg.Duration = 10 * time.Minute
	a, b := GenerateRnd(cfg), GenerateRnd(cfg)
	for i := range a.Series {
		for j := range a.Series[i].CPUPercent {
			if a.Series[i].CPUPercent[j] != b.Series[i].CPUPercent[j] {
				t.Fatal("same seed produced different traces")
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := GenerateRnd(cfg2)
	same := true
	for j := range a.Series[0].CPUPercent {
		if a.Series[0].CPUPercent[j] != c.Series[0].CPUPercent[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

const gwaHeader = "Timestamp [ms];CPU cores;CPU capacity provisioned [MHZ];CPU usage [MHZ];CPU usage [%];Memory capacity provisioned [KB];Memory usage [KB];Disk read throughput [KB/s];Disk write throughput [KB/s];Network received throughput [KB/s];Network transmitted throughput [KB/s]"

func TestParseGWA(t *testing.T) {
	data := gwaHeader + "\n" +
		"0;4;11704;1170.4;10.0;8388608;4194304;0;0;0;0\n" +
		"300000;4;11704;2340.8;20.0;8388608;2097152;0;0;0;0\n"
	s, err := ParseGWA(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("samples = %d, want 2", s.Len())
	}
	if s.CPUPercent[0] != 10 || s.CPUPercent[1] != 20 {
		t.Errorf("cpu = %v", s.CPUPercent)
	}
	if s.MemPercent[0] != 50 || s.MemPercent[1] != 25 {
		t.Errorf("mem = %v", s.MemPercent)
	}
	if s.Interval != 300*time.Second {
		t.Errorf("interval = %v, want 5m", s.Interval)
	}
}

func TestParseGWASkipsBadRows(t *testing.T) {
	data := gwaHeader + "\n" +
		"0;4;11704;1170.4;10.0;8388608;4194304;0;0;0;0\n" +
		"garbage;;;;;;;;;\n" +
		"600;4;11704;1170.4;30.0;8388608;4194304;0;0;0;0\n"
	s, err := ParseGWA(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("samples = %d, want 2 (bad row skipped)", s.Len())
	}
}

func TestParseGWAErrors(t *testing.T) {
	if _, err := ParseGWA(strings.NewReader("")); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := ParseGWA(strings.NewReader("a;b;c\n1;2;3\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ParseGWA(strings.NewReader(gwaHeader + "\n")); err == nil {
		t.Error("file with no samples accepted")
	}
}

func TestLoadGWADir(t *testing.T) {
	row := "0;4;11704;1170.4;10.0;8388608;4194304;0;0;0;0\n"
	fsys := fstest.MapFS{
		"rnd/1.csv":      {Data: []byte(gwaHeader + "\n" + row)},
		"rnd/2.csv":      {Data: []byte(gwaHeader + "\n" + row + row)},
		"rnd/ignore.txt": {Data: []byte("not a trace")},
	}
	tr, err := LoadGWADir(fsys, "rnd")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(tr.Series))
	}
	if tr.Series[1].Len() != 2 {
		t.Error("file order / content mismatch")
	}
}

func TestLoadGWADirErrors(t *testing.T) {
	if _, err := LoadGWADir(fstest.MapFS{}, "missing"); err == nil {
		t.Error("missing dir accepted")
	}
	fsys := fstest.MapFS{"d/readme.md": {Data: []byte("x")}}
	if _, err := LoadGWADir(fsys, "d"); err == nil {
		t.Error("dir without CSVs accepted")
	}
	bad := fstest.MapFS{"d/1.csv": {Data: []byte("bad header\n1;2\n")}}
	if _, err := LoadGWADir(bad, "d"); err == nil {
		t.Error("bad csv accepted")
	}
}
