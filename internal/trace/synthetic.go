package trace

import (
	"math"
	"math/rand"
	"time"
)

// RndConfig parameterises the synthetic Bitbrains-like generator. The
// defaults mirror the `Rnd` dataset's documented shape: 500 VMs, 300 s
// sampling, wave-like mixed CPU+memory load with bursty spikes.
type RndConfig struct {
	// Seed makes the trace reproducible.
	Seed int64
	// VMs is the number of series to generate (paper: 500).
	VMs int
	// Interval is the sampling period (GWA-T-12: 300 s).
	Interval time.Duration
	// Duration is the span each series covers.
	Duration time.Duration

	// BaseCPU and BaseMem are the mean usage levels (percent).
	BaseCPU float64
	BaseMem float64
	// WaveAmplitude is the relative diurnal swing (0.5 = ±50 %).
	WaveAmplitude float64
	// WavePeriod is the diurnal cycle length.
	WavePeriod time.Duration
	// SpikeProb is the per-sample probability that a VM enters a burst.
	SpikeProb float64
	// SpikeBoost multiplies usage during a burst.
	SpikeBoost float64
	// Noise is the sample-to-sample Gaussian noise (percent, stddev).
	Noise float64

	// PhaseJitter is the per-VM deviation (radians) from the shared diurnal
	// phase. Small values keep the across-VM average wave visible, the way
	// tenant workloads correlate with the business day in the real trace.
	PhaseJitter float64
	// ClusterSpikeProb is the per-sample probability that a cluster-wide
	// burst starts; individual VMs join it with probability 1/2. These
	// correlated spikes are what give Fig. 9's average its bursty texture.
	ClusterSpikeProb float64
}

// DefaultRndConfig returns a configuration shaped like the Bitbrains Rnd
// trace compressed to a one-hour experiment (the paper rescaled the trace
// to its cluster and experiment duration the same way).
func DefaultRndConfig(seed int64) RndConfig {
	return RndConfig{
		Seed:             seed,
		VMs:              500,
		Interval:         30 * time.Second,
		Duration:         time.Hour,
		BaseCPU:          30,
		BaseMem:          45,
		WaveAmplitude:    0.45,
		WavePeriod:       20 * time.Minute,
		SpikeProb:        0.04,
		SpikeBoost:       2.8,
		Noise:            4,
		PhaseJitter:      0.7,
		ClusterSpikeProb: 0.03,
	}
}

// GenerateRnd produces a synthetic trace with cfg's shape. Each VM gets a
// random phase so the aggregate keeps visible waves plus spiky bursts, like
// Fig. 9.
func GenerateRnd(cfg RndConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Duration / cfg.Interval)
	if n < 1 {
		n = 1
	}

	// Cluster-wide burst windows shared by half the VMs.
	clusterBurst := make([]bool, n)
	left := 0
	for i := 0; i < n; i++ {
		if left == 0 && rng.Float64() < cfg.ClusterSpikeProb {
			left = 2 + rng.Intn(3)
		}
		if left > 0 {
			clusterBurst[i] = true
			left--
		}
	}

	tr := &Trace{Interval: cfg.Interval}
	for vm := 0; vm < cfg.VMs; vm++ {
		s := Series{
			Interval:   cfg.Interval,
			CPUPercent: make([]float64, n),
			MemPercent: make([]float64, n),
		}
		phase := rng.NormFloat64() * cfg.PhaseJitter
		joinsClusterBursts := rng.Float64() < 0.5
		// Per-VM scale: some VMs are hot, some idle (log-normal-ish skew as
		// in real data-centre traces).
		scale := math.Exp(rng.NormFloat64()*0.5 - 0.125)
		burstLeft := 0
		memLevel := cfg.BaseMem * scale * (0.8 + 0.4*rng.Float64())
		for i := 0; i < n; i++ {
			t := time.Duration(i) * cfg.Interval
			wave := 1 + cfg.WaveAmplitude*math.Sin(2*math.Pi*float64(t)/float64(cfg.WavePeriod)+phase)
			cpu := cfg.BaseCPU * scale * wave

			if burstLeft == 0 && rng.Float64() < cfg.SpikeProb {
				burstLeft = 1 + rng.Intn(3)
			}
			if burstLeft > 0 {
				cpu *= cfg.SpikeBoost
				burstLeft--
			} else if joinsClusterBursts && clusterBurst[i] {
				cpu *= cfg.SpikeBoost
			}
			cpu += rng.NormFloat64() * cfg.Noise
			s.CPUPercent[i] = clampPct(cpu)

			// Memory moves slowly: an AR(1) walk toward a wave-modulated
			// level, mimicking resident-set growth and GC release.
			target := memLevel * (1 + 0.3*cfg.WaveAmplitude*math.Sin(2*math.Pi*float64(t)/float64(cfg.WavePeriod)+phase))
			prev := target
			if i > 0 {
				prev = s.MemPercent[i-1]
			}
			mem := prev + 0.2*(target-prev) + rng.NormFloat64()*cfg.Noise*0.3
			s.MemPercent[i] = clampPct(mem)
		}
		tr.Series = append(tr.Series, s)
	}
	return tr
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
