package trace

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseGWA reads one GWA-T-12 Bitbrains per-VM CSV file. The format is
// semicolon-separated with a header row:
//
//	Timestamp [ms];CPU cores;CPU capacity provisioned [MHZ];CPU usage [MHZ];
//	CPU usage [%];Memory capacity provisioned [KB];Memory usage [KB];...
//
// Memory percent is derived from usage/provisioned since the dataset has no
// memory-percent column. Rows with an unparsable numeric field are skipped
// (the public dataset contains a handful), but a malformed header is an
// error.
func ParseGWA(r io.Reader) (Series, error) {
	s := Series{Interval: 300 * time.Second}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	if !sc.Scan() {
		return s, fmt.Errorf("trace: empty GWA file")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ";")
	cpuPct, memProv, memUse := -1, -1, -1
	for i, h := range header {
		h = strings.TrimSpace(strings.Trim(h, "\""))
		switch {
		case strings.HasPrefix(h, "CPU usage [%]"):
			cpuPct = i
		case strings.HasPrefix(h, "Memory capacity provisioned"):
			memProv = i
		case strings.HasPrefix(h, "Memory usage"):
			memUse = i
		}
	}
	if cpuPct < 0 || memProv < 0 || memUse < 0 {
		return s, fmt.Errorf("trace: unrecognised GWA header %q", strings.Join(header, ";"))
	}

	var prevTS, interval int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ";")
		if len(fields) <= memUse || len(fields) <= cpuPct {
			continue
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err == nil {
			if prevTS != 0 && ts > prevTS && interval == 0 {
				interval = ts - prevTS
			}
			prevTS = ts
		}
		cpu, err1 := strconv.ParseFloat(strings.TrimSpace(fields[cpuPct]), 64)
		prov, err2 := strconv.ParseFloat(strings.TrimSpace(fields[memProv]), 64)
		use, err3 := strconv.ParseFloat(strings.TrimSpace(fields[memUse]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		memPct := 0.0
		if prov > 0 {
			memPct = 100 * use / prov
		}
		s.CPUPercent = append(s.CPUPercent, clampPct(cpu))
		s.MemPercent = append(s.MemPercent, clampPct(memPct))
	}
	if err := sc.Err(); err != nil {
		return s, fmt.Errorf("trace: reading GWA file: %w", err)
	}
	if interval > 0 {
		// GWA timestamps are in milliseconds... the published Rnd files use
		// seconds; accept either by sanity-checking the magnitude.
		if interval > 10_000 {
			s.Interval = time.Duration(interval) * time.Millisecond
		} else {
			s.Interval = time.Duration(interval) * time.Second
		}
	}
	if s.Len() == 0 {
		return s, fmt.Errorf("trace: GWA file contained no samples")
	}
	return s, nil
}

// LoadGWADir parses every *.csv file under dir in the filesystem fsys as one
// VM series and assembles a Trace, sorted by filename for determinism. Use
// this to replay the real Bitbrains Rnd dataset when a copy is on disk.
func LoadGWADir(fsys fs.FS, dir string) (*Trace, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("trace: reading dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("trace: no .csv files under %s", dir)
	}
	tr := &Trace{}
	for _, name := range names {
		f, err := fsys.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("trace: opening %s: %w", name, err)
		}
		s, err := ParseGWA(f)
		closeErr := f.(io.Closer).Close()
		if err != nil {
			return nil, fmt.Errorf("trace: parsing %s: %w", name, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("trace: closing %s: %w", name, closeErr)
		}
		tr.Series = append(tr.Series, s)
		if tr.Interval == 0 {
			tr.Interval = s.Interval
		}
	}
	return tr, nil
}
