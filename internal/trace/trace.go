// Package trace handles the GWA-T-12 Bitbrains workload used in §VI-B. It
// provides (a) a parser for the real dataset's per-VM CSV files, so the
// experiments can replay the genuine `Rnd` trace when a copy is available,
// and (b) a seeded synthetic generator that reproduces the trace's
// documented shape — 500 VM usage series with wave-like mixed CPU+memory
// load and bursty spikes (Fig. 9) — for offline runs. The substitution is
// recorded in DESIGN.md: the paper itself notes the trace "exhibits the same
// behaviour as the low-burst mix and high-burst mix workloads".
package trace

import (
	"time"
)

// Series is one VM's (or one aggregate's) resource usage over time, sampled
// at a fixed interval. Values are percentages of the VM's provisioned
// capacity, matching the GWA-T-12 "CPU usage [%]" convention.
type Series struct {
	// Interval is the sampling period (GWA-T-12 uses 300 s).
	Interval time.Duration
	// CPUPercent holds CPU usage samples in [0,100].
	CPUPercent []float64
	// MemPercent holds memory usage samples in [0,100].
	MemPercent []float64
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.CPUPercent) }

// Duration returns the time span the series covers.
func (s Series) Duration() time.Duration {
	return time.Duration(s.Len()) * s.Interval
}

// At returns the (cpu%, mem%) sample active at time t. Times beyond the end
// wrap around, so a short trace can drive a longer experiment.
func (s Series) At(t time.Duration) (cpu, mem float64) {
	if s.Len() == 0 || s.Interval <= 0 {
		return 0, 0
	}
	idx := int(t/s.Interval) % s.Len()
	if idx < 0 {
		idx += s.Len()
	}
	cpu = s.CPUPercent[idx]
	if idx < len(s.MemPercent) {
		mem = s.MemPercent[idx]
	}
	return cpu, mem
}

// MaxCPU returns the largest CPU sample, or 0 when empty.
func (s Series) MaxCPU() float64 {
	var m float64
	for _, v := range s.CPUPercent {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanCPU returns the average CPU sample, or 0 when empty.
func (s Series) MeanCPU() float64 {
	if len(s.CPUPercent) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.CPUPercent {
		sum += v
	}
	return sum / float64(len(s.CPUPercent))
}

// Trace is a collection of VM series with a common interval — the shape of
// the Bitbrains `Rnd` dataset (500 VMs).
type Trace struct {
	Interval time.Duration
	Series   []Series
}

// Mean returns the across-VM average series — what Fig. 9 plots ("CPU and
// memory usage averaged over all microservices").
func (t *Trace) Mean() Series {
	out := Series{Interval: t.Interval}
	if len(t.Series) == 0 {
		return out
	}
	n := 0
	for _, s := range t.Series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	out.CPUPercent = make([]float64, n)
	out.MemPercent = make([]float64, n)
	for i := 0; i < n; i++ {
		var cpu, mem float64
		var cnt int
		for _, s := range t.Series {
			if i < s.Len() {
				cpu += s.CPUPercent[i]
				if i < len(s.MemPercent) {
					mem += s.MemPercent[i]
				}
				cnt++
			}
		}
		if cnt > 0 {
			out.CPUPercent[i] = cpu / float64(cnt)
			out.MemPercent[i] = mem / float64(cnt)
		}
	}
	return out
}

// Partition splits the trace's series into k disjoint groups (round-robin)
// and returns the mean series of each — used to drive the paper's 15
// microservices from the 500-VM trace.
func (t *Trace) Partition(k int) []Series {
	if k <= 0 {
		return nil
	}
	groups := make([]Trace, k)
	for i := range groups {
		groups[i].Interval = t.Interval
	}
	for i, s := range t.Series {
		g := i % k
		groups[g].Series = append(groups[g].Series, s)
	}
	out := make([]Series, k)
	for i := range groups {
		out[i] = groups[i].Mean()
	}
	return out
}
