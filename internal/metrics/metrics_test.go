package metrics

import (
	"strings"
	"testing"
	"time"

	"hyscale/internal/workload"
)

func TestRecordAndSummarize(t *testing.T) {
	r := NewRecorder()
	r.RecordCompletion("a", 100*time.Millisecond)
	r.RecordCompletion("a", 300*time.Millisecond)
	r.RecordFailure("a", workload.FailureRemoval)
	r.RecordFailure("b", workload.FailureConnection)

	s := r.Summarize()
	if s.Requests != 4 || s.Completed != 2 {
		t.Fatalf("requests=%d completed=%d, want 4/2", s.Requests, s.Completed)
	}
	if s.RemovalFailures != 1 || s.ConnectionFailures != 1 {
		t.Fatalf("failures = %d/%d, want 1/1", s.RemovalFailures, s.ConnectionFailures)
	}
	if s.MeanLatency != 200*time.Millisecond {
		t.Errorf("mean = %v, want 200ms", s.MeanLatency)
	}
	if s.FailedPercent() != 50 {
		t.Errorf("FailedPercent = %v, want 50", s.FailedPercent())
	}
	if s.RemovalFailedPercent() != 25 || s.ConnectionFailedPercent() != 25 {
		t.Error("class percents wrong")
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRecorder().Summarize()
	if s.Requests != 0 || s.FailedPercent() != 0 || s.MeanLatency != 0 {
		t.Error("empty recorder should summarize to zeros")
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.RecordCompletion("a", time.Duration(i)*time.Millisecond)
	}
	s := r.Summarize()
	if s.P50Latency != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", s.P50Latency)
	}
	if s.P95Latency != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", s.P95Latency)
	}
	if s.P99Latency != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", s.P99Latency)
	}
	if s.MaxLatency != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", s.MaxLatency)
	}
}

func TestSummarizeService(t *testing.T) {
	r := NewRecorder()
	r.RecordCompletion("a", 10*time.Millisecond)
	r.RecordCompletion("b", 90*time.Millisecond)
	r.RecordFailure("b", workload.FailureConnection)

	sa := r.SummarizeService("a")
	if sa.Requests != 1 || sa.MeanLatency != 10*time.Millisecond {
		t.Errorf("service a summary wrong: %+v", sa)
	}
	sb := r.SummarizeService("b")
	if sb.Requests != 2 || sb.ConnectionFailures != 1 {
		t.Errorf("service b summary wrong: %+v", sb)
	}
	if z := r.SummarizeService("nope"); z.Requests != 0 {
		t.Error("unknown service should be zero")
	}
}

func TestServicesOrderedFirstSeen(t *testing.T) {
	r := NewRecorder()
	r.RecordCompletion("z", time.Millisecond)
	r.RecordCompletion("a", time.Millisecond)
	r.RecordCompletion("z", time.Millisecond)
	ss := r.Services()
	if len(ss) != 2 || ss[0].Name != "z" || ss[1].Name != "a" {
		t.Errorf("order wrong: %v", ss)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.RecordCompletion("a", 123*time.Millisecond)
	s := r.Summarize().String()
	if !strings.Contains(s, "requests=1") || !strings.Contains(s, "mean=123ms") {
		t.Errorf("String = %q", s)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := &TimeSeries{Name: "x"}
	if ts.Mean() != 0 || ts.Max() != 0 || ts.Len() != 0 {
		t.Error("empty series stats should be zero")
	}
	ts.Append(time.Second, 1)
	ts.Append(2*time.Second, 3)
	ts.Append(3*time.Second, 2)
	if ts.Len() != 3 {
		t.Errorf("Len = %d", ts.Len())
	}
	if ts.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", ts.Mean())
	}
	if ts.Max() != 3 {
		t.Errorf("Max = %v, want 3", ts.Max())
	}
}

func TestUnknownFailureClassCountsAsConnection(t *testing.T) {
	r := NewRecorder()
	r.RecordFailure("a", workload.FailureNone)
	if got := r.Summarize().ConnectionFailures; got != 1 {
		t.Errorf("ConnectionFailures = %d, want 1", got)
	}
}

func TestSummaryCacheInvalidatesOnNewSamples(t *testing.T) {
	r := NewRecorder()
	r.RecordCompletion("a", 300*time.Millisecond)
	r.RecordCompletion("a", 100*time.Millisecond)
	if got := r.Summarize().P50Latency; got != 100*time.Millisecond {
		t.Fatalf("p50 = %v, want 100ms", got)
	}
	// A summary between recordings must not freeze the sorted caches: new
	// samples (including a new max, and for a second service) have to land.
	r.RecordCompletion("a", 500*time.Millisecond)
	r.RecordCompletion("b", 700*time.Millisecond)
	s := r.Summarize()
	if s.MaxLatency != 700*time.Millisecond {
		t.Errorf("max = %v, want 700ms after cache refresh", s.MaxLatency)
	}
	if s.P50Latency != 300*time.Millisecond {
		t.Errorf("p50 = %v, want 300ms", s.P50Latency)
	}
	sa := r.SummarizeService("a")
	if sa.MaxLatency != 500*time.Millisecond || sa.P50Latency != 300*time.Millisecond {
		t.Errorf("service summary stale: %+v", sa)
	}
	// Repeated summaries without new samples stay stable.
	if again := r.SummarizeService("a"); again != sa {
		t.Errorf("repeated summary differs: %+v vs %+v", again, sa)
	}
}

// BenchmarkSummarize measures the repeated-summary path the monitor and HTTP
// API hit: many samples, periodic Summarize calls with only a few recordings
// in between. The sorted-scratch cache should make the steady-state calls
// cheap.
func BenchmarkSummarize(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < 100000; i++ {
		r.RecordCompletion("svc", time.Duration(i%997)*time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Summarize()
	}
}

func TestLatencyHistogramTracksCompletions(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 1000; i++ {
		r.RecordCompletion("a", time.Duration(i)*time.Millisecond)
	}
	h := r.LatencyHistogram()
	if h.Count() != 1000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	// Histogram p95 must approximate the exact recorder's p95 within the
	// bucket error (~10%).
	exact := r.Summarize().P95Latency
	est := h.Quantile(0.95)
	ratio := float64(est) / float64(exact)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("histogram p95 %v vs exact %v (ratio %.2f)", est, exact, ratio)
	}
}
