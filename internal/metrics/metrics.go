// Package metrics collects the user-perceived performance measurements the
// paper reports: average response times, request failure percentages broken
// down by class (removal vs connection failures), availability, and
// time-series samples for plotting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hyscale/internal/stats"
	"hyscale/internal/workload"
)

// Recorder accumulates per-service request outcomes for one experiment run.
// It is not safe for concurrent use; the simulation is single-threaded.
//
// The recorder keeps every latency sample for exact percentiles (what the
// experiment tables report) and, in parallel, a constant-memory log-bucket
// histogram for long-lived deployments to export (see LatencyHistogram and
// the /v1/latency endpoint in internal/httpapi).
type Recorder struct {
	services map[string]*ServiceStats
	order    []string
	hist     *stats.Histogram

	// allSorted caches the cross-service sorted latency slice for Summarize;
	// it is valid while it holds exactly as many samples as have been
	// recorded (latencies are append-only, so a length match means clean).
	// Refreshes are incremental: each service tracks how many of its samples
	// were already merged (allTaken), so a refresh sorts and merges only the
	// newly-appended suffix instead of re-sorting everything.
	allSorted []time.Duration

	// svcScratch is Services' reusable result buffer — valid until the next
	// Services call.
	svcScratch []*ServiceStats

	// mergeBuf is the shared scratch for incremental sorted merges.
	mergeBuf []time.Duration
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		services: make(map[string]*ServiceStats),
		hist:     stats.DefaultLatencyHistogram(),
	}
}

// LatencyHistogram returns the streaming latency histogram across all
// services.
func (r *Recorder) LatencyHistogram() *stats.Histogram { return r.hist }

// ServiceStats holds the outcome counters and latency samples for one
// microservice.
type ServiceStats struct {
	Name string

	Completed          uint64
	RemovalFailures    uint64
	ConnectionFailures uint64

	latencies []time.Duration
	totalLat  time.Duration

	// sorted is a reused scratch copy of latencies kept in ascending order;
	// like Recorder.allSorted it is clean exactly when the lengths match, so
	// repeated percentile/summary calls between recordings cost nothing.
	sorted []time.Duration

	// allTaken counts how many of this service's latencies the Recorder has
	// already merged into its cross-service allSorted cache.
	allTaken int

	// mergeBuf is the scratch for this service's incremental sorted merges.
	mergeBuf []time.Duration
}

// sortedLatencies returns the service's latencies in ascending order. The
// scratch copy is maintained incrementally: only samples appended since the
// last call are sorted, then merged into the existing run — O(new·log new +
// shifted) instead of a full O(n log n) re-sort per refresh.
func (s *ServiceStats) sortedLatencies() []time.Duration {
	if have := len(s.sorted); have != len(s.latencies) {
		s.sorted = append(s.sorted, s.latencies[have:]...)
		s.mergeBuf = mergeSortedSuffix(s.sorted, have, s.mergeBuf)
	}
	return s.sorted
}

// mergeSortedSuffix sorts all[n:] and merges it into the already-sorted
// all[:n], in place, using (and returning) buf as scratch for the suffix.
func mergeSortedSuffix(all []time.Duration, n int, buf []time.Duration) []time.Duration {
	tail := all[n:]
	if len(tail) == 0 {
		return buf
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	if n == 0 || all[n-1] <= tail[0] {
		// Already in order — the common case when latencies trend upward.
		return buf
	}
	buf = append(buf[:0], tail...)
	// Backward two-pointer merge: stops as soon as the suffix is placed, so
	// the cost is proportional to how far new samples reach into the run.
	i, k := n-1, len(all)-1
	for j := len(buf) - 1; j >= 0; {
		if i >= 0 && all[i] > buf[j] {
			all[k] = all[i]
			i--
		} else {
			all[k] = buf[j]
			j--
		}
		k--
	}
	return buf
}

func (r *Recorder) service(name string) *ServiceStats {
	s, ok := r.services[name]
	if !ok {
		s = &ServiceStats{Name: name}
		r.services[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// RecordCompletion records a successful request with its response time.
func (r *Recorder) RecordCompletion(service string, latency time.Duration) {
	s := r.service(service)
	s.Completed++
	s.latencies = append(s.latencies, latency)
	s.totalLat += latency
	r.hist.Observe(latency)
}

// RecordFailure records a failed request with its failure class.
func (r *Recorder) RecordFailure(service string, class workload.FailureClass) {
	s := r.service(service)
	switch class {
	case workload.FailureRemoval:
		s.RemovalFailures++
	default:
		s.ConnectionFailures++
	}
}

// Services returns the per-service stats in first-seen order. The returned
// slice is a reused scratch buffer, valid until the next Services call; copy
// it to keep it longer.
func (r *Recorder) Services() []*ServiceStats {
	r.svcScratch = r.svcScratch[:0]
	for _, name := range r.order {
		r.svcScratch = append(r.svcScratch, r.services[name])
	}
	return r.svcScratch
}

// Reserve pre-sizes the latency storage for a service expected to complete
// about n requests, so bulk injection does not grow the sample slices
// repeatedly. It never shrinks and is safe to call at any time.
func (r *Recorder) Reserve(service string, n int) {
	s := r.service(service)
	if extra := n - (cap(s.latencies) - len(s.latencies)); extra > 0 {
		grown := make([]time.Duration, len(s.latencies), cap(s.latencies)+extra)
		copy(grown, s.latencies)
		s.latencies = grown
	}
}

// ServiceCounters returns one service's cumulative outcome counters and
// total completed-request latency — the cheap O(1) accessors the
// observability layer samples each monitor period (unknown services return
// zeros).
func (r *Recorder) ServiceCounters(name string) (completed, removalFailed, connFailed uint64, totalLatency time.Duration) {
	s, ok := r.services[name]
	if !ok {
		return 0, 0, 0, 0
	}
	return s.Completed, s.RemovalFailures, s.ConnectionFailures, s.totalLat
}

// Summary is the cross-service aggregate the paper's figures report.
type Summary struct {
	Requests           uint64
	Completed          uint64
	RemovalFailures    uint64
	ConnectionFailures uint64

	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	MaxLatency  time.Duration
}

// FailedPercent returns the percentage of all requests that failed.
func (s Summary) FailedPercent() float64 {
	if s.Requests == 0 {
		return 0
	}
	return 100 * float64(s.RemovalFailures+s.ConnectionFailures) / float64(s.Requests)
}

// RemovalFailedPercent returns the percentage of requests that died to
// container removals.
func (s Summary) RemovalFailedPercent() float64 {
	if s.Requests == 0 {
		return 0
	}
	return 100 * float64(s.RemovalFailures) / float64(s.Requests)
}

// ConnectionFailedPercent returns the percentage of requests that failed at
// the microservice.
func (s Summary) ConnectionFailedPercent() float64 {
	if s.Requests == 0 {
		return 0
	}
	return 100 * float64(s.ConnectionFailures) / float64(s.Requests)
}

// String implements fmt.Stringer with the row format used in EXPERIMENTS.md.
func (s Summary) String() string {
	return fmt.Sprintf("requests=%d completed=%d failed=%.2f%% (removal=%.2f%% connection=%.2f%%) mean=%v p95=%v",
		s.Requests, s.Completed, s.FailedPercent(), s.RemovalFailedPercent(), s.ConnectionFailedPercent(),
		s.MeanLatency.Round(time.Millisecond), s.P95Latency.Round(time.Millisecond))
}

// Summarize aggregates all services into one Summary.
func (r *Recorder) Summarize() Summary {
	var sum Summary
	var total time.Duration
	samples := 0
	for _, s := range r.services {
		sum.Completed += s.Completed
		sum.RemovalFailures += s.RemovalFailures
		sum.ConnectionFailures += s.ConnectionFailures
		samples += len(s.latencies)
		total += s.totalLat
	}
	sum.Requests = sum.Completed + sum.RemovalFailures + sum.ConnectionFailures
	if samples > 0 {
		if len(r.allSorted) != samples {
			// Gather only the samples recorded since the last refresh (in
			// deterministic first-seen service order), sort that suffix, and
			// merge it into the existing sorted run.
			have := len(r.allSorted)
			for _, name := range r.order {
				s := r.services[name]
				if s.allTaken < len(s.latencies) {
					r.allSorted = append(r.allSorted, s.latencies[s.allTaken:]...)
					s.allTaken = len(s.latencies)
				}
			}
			r.mergeBuf = mergeSortedSuffix(r.allSorted, have, r.mergeBuf)
		}
		all := r.allSorted
		sum.MeanLatency = total / time.Duration(len(all))
		sum.P50Latency = percentile(all, 0.50)
		sum.P95Latency = percentile(all, 0.95)
		sum.P99Latency = percentile(all, 0.99)
		sum.MaxLatency = all[len(all)-1]
	}
	return sum
}

// SummarizeService aggregates a single service, returning a zero Summary for
// unknown names.
func (r *Recorder) SummarizeService(name string) Summary {
	s, ok := r.services[name]
	if !ok {
		return Summary{}
	}
	var sum Summary
	sum.Completed = s.Completed
	sum.RemovalFailures = s.RemovalFailures
	sum.ConnectionFailures = s.ConnectionFailures
	sum.Requests = sum.Completed + sum.RemovalFailures + sum.ConnectionFailures
	if len(s.latencies) > 0 {
		lat := s.sortedLatencies()
		sum.MeanLatency = s.totalLat / time.Duration(len(lat))
		sum.P50Latency = percentile(lat, 0.50)
		sum.P95Latency = percentile(lat, 0.95)
		sum.P99Latency = percentile(lat, 0.99)
		sum.MaxLatency = lat[len(lat)-1]
	}
	return sum
}

// percentile returns the p-quantile (0..1) of a sorted slice using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TimeSeries is an append-only series of (time, value) samples used to
// reproduce the paper's trace plots (e.g. Fig. 9).
type TimeSeries struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// Append adds a sample.
func (t *TimeSeries) Append(at time.Duration, v float64) {
	t.Times = append(t.Times, at)
	t.Values = append(t.Values, v)
}

// Len returns the number of samples.
func (t *TimeSeries) Len() int { return len(t.Values) }

// Mean returns the average of all values, or 0 when empty.
func (t *TimeSeries) Mean() float64 {
	if len(t.Values) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Values {
		s += v
	}
	return s / float64(len(t.Values))
}

// Max returns the maximum value, or 0 when empty.
func (t *TimeSeries) Max() float64 {
	var m float64
	for i, v := range t.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}
