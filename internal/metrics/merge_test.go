package metrics

// Tests for the incremental sorted-merge machinery that replaced the full
// per-refresh re-sort, plus allocation regressions for the accessors the
// observability layer calls every monitor period.

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestMergeSortedSuffixProperty cross-checks the in-place suffix merge
// against a plain full sort across random prefix/suffix shapes, including
// the degenerate cases (empty prefix, empty suffix, suffix entirely before
// or after the prefix).
func TestMergeSortedSuffixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf []time.Duration
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		m := rng.Intn(40)
		all := make([]time.Duration, 0, n+m)
		for i := 0; i < n; i++ {
			all = append(all, time.Duration(rng.Intn(1000)))
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 0; i < m; i++ {
			all = append(all, time.Duration(rng.Intn(1000)))
		}
		want := append([]time.Duration(nil), all...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		buf = mergeSortedSuffix(all, n, buf)
		for i := range want {
			if all[i] != want[i] {
				t.Fatalf("trial %d (n=%d m=%d): merged[%d] = %v, want %v\nmerged: %v\nwant:   %v",
					trial, n, m, i, all[i], want[i], all, want)
			}
		}
	}
}

// TestIncrementalSummariesMatchFullSort records in several interleaved
// rounds and checks that the incrementally-maintained percentile caches
// agree with a from-scratch recorder fed the same samples all at once.
func TestIncrementalSummariesMatchFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc := NewRecorder()
	type sample struct {
		svc string
		lat time.Duration
	}
	var history []sample
	svcs := []string{"a", "b", "c"}
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			s := sample{svcs[rng.Intn(len(svcs))], time.Duration(rng.Intn(5000)) * time.Millisecond}
			history = append(history, s)
			inc.RecordCompletion(s.svc, s.lat)
		}
		// Summarize mid-stream so later rounds merge into a warm cache.
		fresh := NewRecorder()
		for _, s := range history {
			fresh.RecordCompletion(s.svc, s.lat)
		}
		got, want := inc.Summarize(), fresh.Summarize()
		if got != want {
			t.Fatalf("round %d: incremental summary %+v != full-sort summary %+v", round, got, want)
		}
		for _, svc := range svcs {
			if g, w := inc.SummarizeService(svc), fresh.SummarizeService(svc); g != w {
				t.Fatalf("round %d: service %s incremental %+v != full %+v", round, svc, g, w)
			}
		}
	}
}

// TestServicesAllocFree pins the per-poll accessor to zero steady-state
// allocations: the returned slice is reused scratch.
func TestServicesAllocFree(t *testing.T) {
	r := NewRecorder()
	for _, svc := range []string{"a", "b", "c", "d"} {
		r.RecordCompletion(svc, time.Millisecond)
	}
	r.Services() // size the scratch buffer
	if allocs := testing.AllocsPerRun(100, func() { r.Services() }); allocs != 0 {
		t.Errorf("Services allocates %.1f objects/call, want 0", allocs)
	}
}
