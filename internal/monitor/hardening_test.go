package monitor

import (
	"testing"
	"time"

	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/resources"
)

// faultWindow builds an injector that forces kind on target during [from, to).
func faultWindow(kind faults.Kind, target string, from, to time.Duration) *faults.Injector {
	return faults.New(faults.Config{
		Windows: []faults.Window{{Kind: kind, Target: target, From: from, To: to}},
	})
}

func TestVerticalRetrySucceedsAfterTransientFault(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	rep := m.Replicas("a")[0]
	// The update fails until t=12s; the retry at t=15s lands after recovery.
	m.Faults = faultWindow(faults.KindVertical, rep.ID, 0, 12*time.Second)

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.VerticalScale{ContainerID: rep.ID, NewAlloc: resources.Vector{CPU: 2.5, MemMB: 600}},
	}}
	m.Poll(10 * time.Second)
	algo.plan = core.Plan{}

	if rep.Alloc.CPU == 2.5 {
		t.Fatal("faulted vertical applied anyway")
	}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending retries = %d, want 1", m.PendingRetries())
	}

	m.Poll(12 * time.Second) // backoff (5s) not yet elapsed
	if rep.Alloc.CPU == 2.5 {
		t.Fatal("retry ran before its backoff deadline")
	}

	m.Poll(15 * time.Second)
	if rep.Alloc.CPU != 2.5 {
		t.Error("retry did not apply the vertical scale")
	}
	c := m.Counts()
	if c.Retries != 1 || c.Vertical != 1 || c.AbandonedActions != 0 {
		t.Errorf("counts = %+v", c)
	}
}

func TestRetryAbandonedAfterMaxAttempts(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	rep := m.Replicas("a")[0]
	m.Faults = faultWindow(faults.KindVertical, rep.ID, 0, time.Hour) // never recovers

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.VerticalScale{ContainerID: rep.ID, NewAlloc: resources.Vector{CPU: 2, MemMB: 600}},
	}}
	m.Poll(10 * time.Second)
	algo.plan = core.Plan{}

	// Backoff doubles from the 5s base: retries fall due at 15s, 25s, 45s.
	for _, at := range []time.Duration{15 * time.Second, 25 * time.Second, 45 * time.Second} {
		m.Poll(at)
	}
	c := m.Counts()
	if c.Retries != 3 {
		t.Errorf("Retries = %d, want 3", c.Retries)
	}
	if c.AbandonedActions != 1 {
		t.Errorf("AbandonedActions = %d, want 1", c.AbandonedActions)
	}
	if c.Vertical != 0 {
		t.Errorf("Vertical = %d, want 0", c.Vertical)
	}
	if m.PendingRetries() != 0 {
		t.Errorf("pending retries = %d after abandon, want 0", m.PendingRetries())
	}
}

func TestHardeningDisabledDropsFailedActions(t *testing.T) {
	cl, m := setup(t, nil)
	m.Hardening.Enabled = false
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	rep := m.Replicas("a")[0]
	m.Faults = faultWindow(faults.KindVertical, rep.ID, 0, time.Hour)

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.VerticalScale{ContainerID: rep.ID, NewAlloc: resources.Vector{CPU: 2, MemMB: 600}},
	}}
	m.Poll(10 * time.Second)

	c := m.Counts()
	if c.AbandonedActions != 1 || m.PendingRetries() != 0 {
		t.Errorf("unhardened monitor should abandon immediately: %+v, pending=%d",
			c, m.PendingRetries())
	}
}

func TestStaleSnapshotServedWithinBound(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)
	m.Sample()

	// node-0's manager is unreachable from t=4s to t=30s.
	m.Faults = faultWindow(faults.KindStats, "node-0", 4*time.Second, 30*time.Second)

	if got := len(m.Snapshot(0).Nodes); got != 3 {
		t.Fatalf("nodes before outage = %d, want 3", got)
	}
	// 5s into the run the cache (from t=0) is 5s old — within the 15s bound.
	if got := len(m.Snapshot(5 * time.Second).Nodes); got != 3 {
		t.Errorf("nodes during outage (fresh cache) = %d, want 3", got)
	}
	if m.Counts().StaleSnapshots != 1 {
		t.Errorf("StaleSnapshots = %d, want 1", m.Counts().StaleSnapshots)
	}
	// At 18s the cache is 18s old — past the bound, so the node drops out.
	if got := len(m.Snapshot(18 * time.Second).Nodes); got != 2 {
		t.Errorf("nodes during outage (stale cache) = %d, want 2", got)
	}
	// After recovery the live report returns.
	if got := len(m.Snapshot(35 * time.Second).Nodes); got != 3 {
		t.Errorf("nodes after recovery = %d, want 3", got)
	}
	// The node manager recorded the misses.
	if got := m.nmByID["node-0"].MissedQueries(); got != 2 {
		t.Errorf("MissedQueries = %d, want 2", got)
	}
}

func TestStaleSnapshotDisabledDropsNodeImmediately(t *testing.T) {
	cl, m := setup(t, nil)
	m.Hardening.Enabled = false
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	m.Faults = faultWindow(faults.KindStats, "node-0", 4*time.Second, 30*time.Second)
	_ = m.Snapshot(0) // cache would be warm, but hardening is off
	if got := len(m.Snapshot(5 * time.Second).Nodes); got != 2 {
		t.Errorf("unhardened nodes during outage = %d, want 2", got)
	}
	if m.Counts().StaleSnapshots != 0 {
		t.Errorf("StaleSnapshots = %d, want 0", m.Counts().StaleSnapshots)
	}
}

func TestPlacementFailureRequeuedAndRepicked(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)
	before := len(m.Replicas("a"))

	// The planned node died between the algorithm's decision and Apply —
	// the only way a scale-out placement fails.
	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "gone-node", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)
	algo.plan = core.Plan{}

	if len(m.Replicas("a")) != before {
		t.Fatal("scale-out succeeded despite missing node")
	}
	if c := m.Counts(); c.PlacementFailures != 1 || m.PendingRetries() != 1 {
		t.Fatalf("counts = %+v, pending = %d", c, m.PendingRetries())
	}

	// The retry re-picks a live node instead of failing forever.
	m.Poll(15 * time.Second)
	reps := m.Replicas("a")
	if len(reps) != before+1 {
		t.Fatalf("replicas = %d, want %d after requeued scale-out", len(reps), before+1)
	}
	if id := reps[len(reps)-1].NodeID; id == "gone-node" || id == "" {
		t.Errorf("retry placed on %q", id)
	}
	c := m.Counts()
	if c.Retries != 1 || c.PlacementFailures != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestRetriedScaleOutRespectsMaxReplicas(t *testing.T) {
	cl, m := setup(t, nil)
	sp := spec("a")
	sp.MaxReplicas = 3
	_ = m.AddService(sp, 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	// The start fails once; while it waits, a manual start fills the ceiling.
	m.Faults = faultWindow(faults.KindStart, "", 0, 12*time.Second)
	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-2", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)
	algo.plan = core.Plan{}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending = %d, want 1", m.PendingRetries())
	}
	if err := m.StartReplica("a", "node-2", resources.Vector{CPU: 1, MemMB: 512}, 11*time.Second); err != nil {
		t.Fatal(err)
	}

	m.Poll(15 * time.Second)
	if got := len(m.Replicas("a")); got != 3 {
		t.Errorf("replicas = %d, want 3 (retry must not exceed MaxReplicas)", got)
	}
}

func TestSlowStartStretchesReadiness(t *testing.T) {
	cl, m := setup(t, nil)
	m.StartDelay = time.Second
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	m.Faults = faults.New(faults.Config{
		StartSlowProb: 1, StartSlowBy: 7 * time.Second,
	})
	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-2", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)

	reps := m.Replicas("a")
	fresh := reps[len(reps)-1]
	// ReadyAt = poll (10s) + start delay (1s) + injected slowdown (7s).
	if fresh.ReadyAt != 18*time.Second {
		t.Errorf("ReadyAt = %v, want 18s", fresh.ReadyAt)
	}
}
