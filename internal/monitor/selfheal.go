// Self-healing control plane: a heartbeat failure detector over the node
// managers, a desired-state reconciler that re-places replicas lost to dead
// nodes, and a checkpoint/restore path that lets the Monitor survive its own
// crashes without forgetting in-flight recovery work.
//
// The detector is driven by the same polls the Monitor already performs: a
// node whose stats query fails (machine gone, stats-drop fault, or a
// partition blackout) accrues consecutive misses; SuspectAfter misses make
// it suspect, DeadAfter make it dead. While a node is suspect its replicas
// are served from last-known data so the algorithm does not react before
// the detector rules. On death the reconciler excises the node's replicas,
// records them as lost, and enqueues capacity-aware re-placements through
// the retry queue with an anti-flap cooldown — a node that answers again
// before its replacements execute has them cancelled and its surviving
// replicas re-adopted; replicas whose replacements already ran are drained
// as stale.
package monitor

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/nodemanager"
	"hyscale/internal/obs"
	"hyscale/internal/resources"
)

// SelfHealing configures the failure detector, reconciler and checkpointing.
// The zero value disables all three, reproducing the legacy behaviour
// (node failures must be reported out-of-band via DetachNode).
type SelfHealing struct {
	// Enabled turns on the heartbeat failure detector and the desired-state
	// reconciler.
	Enabled bool
	// SuspectAfter is the number of consecutive missed polls before a node
	// becomes suspect (default 2).
	SuspectAfter int
	// DeadAfter is the number of consecutive missed polls before a suspect
	// node is declared dead and its replicas reconciled (default 4).
	DeadAfter int
	// Cooldown delays each lost replica's re-placement, so a node that
	// recovers promptly cancels its replacements instead of racing them —
	// the anti-flap guard (default 10s).
	Cooldown time.Duration
	// Checkpoint enables periodic decision-state snapshots; after a monitor
	// crash (faults.KindMonitorCrash) the monitor restores from the last
	// checkpoint instead of cold-restarting.
	Checkpoint bool
	// CheckpointEvery spaces checkpoints; zero checkpoints every poll.
	CheckpointEvery time.Duration
}

// DefaultSelfHealing returns the default self-healing settings: suspect
// after 2 missed polls, dead after 4, a 10 s re-placement cooldown, and
// checkpointing every poll.
func DefaultSelfHealing() SelfHealing {
	return SelfHealing{
		Enabled:      true,
		SuspectAfter: 2,
		DeadAfter:    4,
		Cooldown:     10 * time.Second,
		Checkpoint:   true,
	}
}

func (s SelfHealing) suspectAfter() int {
	if s.SuspectAfter > 0 {
		return s.SuspectAfter
	}
	return 2
}

func (s SelfHealing) deadAfter() int {
	d := s.DeadAfter
	if d <= 0 {
		d = 4
	}
	if d <= s.suspectAfter() {
		d = s.suspectAfter() + 1
	}
	return d
}

func (s SelfHealing) cooldown() time.Duration {
	if s.Cooldown > 0 {
		return s.Cooldown
	}
	return 10 * time.Second
}

// NodeHealth is a detector state.
type NodeHealth int

// Detector states: healthy → suspect → dead, back to healthy on contact.
const (
	NodeHealthy NodeHealth = iota
	NodeSuspect
	NodeDead
)

// String implements fmt.Stringer.
func (h NodeHealth) String() string {
	switch h {
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	default:
		return "healthy"
	}
}

// nodeState is the detector's per-node record.
type nodeState struct {
	missed int
	health NodeHealth
}

// lostReplica is one replica excised when its node was declared dead,
// awaiting either replacement (reconciler scale-out) or re-adoption (node
// recovered before the replacement ran).
type lostReplica struct {
	service string
	id      string
	node    string
	alloc   resources.Vector
	// replaced marks that a reconciler scale-out for this replica has
	// applied; if the node later recovers, the surviving original is
	// drained as stale instead of re-adopted.
	replaced bool
}

// RecoveryCounts tallies the self-healing layer's activity.
type RecoveryCounts struct {
	// Suspected / DeclaredDead / Recovered count detector transitions.
	Suspected    uint64
	DeclaredDead uint64
	Recovered    uint64
	// ReplicasLost counts replicas excised from dead nodes; Replaced counts
	// reconciler re-placements that applied; Readopted counts survivors
	// taken back after a recovery; StaleDrained counts survivors drained
	// because their replacement already ran; ReconcileCancelled counts
	// queued re-placements cancelled by a recovery (the anti-flap path).
	ReplicasLost       uint64
	Replaced           uint64
	Readopted          uint64
	StaleDrained       uint64
	ReconcileCancelled uint64
	// CheckpointRestores / ColdRestarts count how monitor crashes ended.
	CheckpointRestores uint64
	ColdRestarts       uint64
}

// NodeCondition is one node's detector state, for /metrics and debugging.
type NodeCondition struct {
	Node        string
	Health      NodeHealth
	MissedPolls int
}

// Recovery returns the cumulative self-healing counters.
func (m *Monitor) Recovery() RecoveryCounts { return m.recovery }

// NodeConditions returns the detector state of every attached node in
// attachment order. Nodes are healthy until the detector (SelfHeal.Enabled)
// observes a missed poll.
func (m *Monitor) NodeConditions() []NodeCondition {
	out := make([]NodeCondition, 0, len(m.nms))
	for _, nm := range m.nms {
		c := NodeCondition{Node: nm.NodeID()}
		if st, ok := m.nodeStates[nm.NodeID()]; ok {
			c.Health = st.health
			c.MissedPolls = st.missed
		}
		out = append(out, c)
	}
	return out
}

// event journals one self-healing event. No-op unless Obs is set.
func (m *Monitor) event(now time.Duration, kind obs.EventKind, node, service, cid, detail string) {
	if m.Obs == nil {
		return
	}
	m.Obs.Event(obs.Event{At: now, Kind: kind, Node: node, Service: service, Container: cid, Detail: detail})
}

// noteMissedPoll advances the failure detector after a failed stats query.
func (m *Monitor) noteMissedPoll(nodeID string, now time.Duration) {
	if !m.SelfHeal.Enabled {
		return
	}
	st := m.nodeStates[nodeID]
	if st == nil {
		st = &nodeState{}
		m.nodeStates[nodeID] = st
	}
	if st.health == NodeDead {
		return // already ruled; nothing further to detect
	}
	st.missed++
	if st.health == NodeHealthy && st.missed >= m.SelfHeal.suspectAfter() {
		st.health = NodeSuspect
		m.recovery.Suspected++
		m.event(now, obs.EventNodeSuspect, nodeID, "", "", fmt.Sprintf("%d missed polls", st.missed))
	}
	if st.health == NodeSuspect && st.missed >= m.SelfHeal.deadAfter() {
		st.health = NodeDead
		m.declareDead(nodeID, now)
	}
}

// notePollOK resets the detector after a successful stats query, recovering
// a suspect or dead node.
func (m *Monitor) notePollOK(nodeID string, now time.Duration) {
	if !m.SelfHeal.Enabled {
		return
	}
	st := m.nodeStates[nodeID]
	if st == nil || (st.missed == 0 && st.health == NodeHealthy) {
		return
	}
	was := st.health
	st.missed = 0
	st.health = NodeHealthy
	if was == NodeHealthy {
		return
	}
	m.recovery.Recovered++
	m.event(now, obs.EventNodeRecovered, nodeID, "", "", "was "+was.String())
	if was == NodeDead {
		m.reconcileRecovery(nodeID, now)
	}
}

// nodeDead reports whether the detector has ruled nodeID dead.
func (m *Monitor) nodeDead(nodeID string) bool {
	st := m.nodeStates[nodeID]
	return st != nil && st.health == NodeDead
}

// limboHome returns the node a vanished replica should still be attributed
// to: its last-known host, while that host is unreachable but not yet ruled
// dead. During this grace the replica stays in the snapshot (served from
// cached stats) so the algorithm does not double-provision before the
// detector decides.
func (m *Monitor) limboHome(id string) string {
	if !m.SelfHeal.Enabled {
		return ""
	}
	home, ok := m.replicaHome[id]
	if !ok {
		return ""
	}
	if _, attached := m.nmByID[home]; !attached {
		return ""
	}
	st := m.nodeStates[home]
	if st == nil || st.missed == 0 || st.health == NodeDead {
		return ""
	}
	return home
}

// lastKnownReplica synthesizes a limbo replica's stats from the node's
// cached report, falling back to the service's initial envelope.
func (m *Monitor) lastKnownReplica(id, home string, st *serviceState) core.ReplicaStats {
	rs := core.ReplicaStats{
		ContainerID: id,
		NodeID:      home,
		Requested:   st.info.InitialAlloc,
		Routable:    true,
	}
	if cached := m.lastReports[home]; cached != nil {
		for _, cs := range cached.rep.Containers {
			if cs.ID == id {
				rs.Requested = cs.Requested
				rs.Usage = cs.Usage
				rs.Routable = cs.Routable
				rs.Inflight = cs.Inflight
				break
			}
		}
	}
	return rs
}

// declareDead excises every replica homed on the dead node, records each as
// lost, and enqueues a capacity-aware re-placement through the retry queue
// with the anti-flap cooldown. A machine that is also gone from the cluster
// entirely (RemoveNode) is detached by the Snapshot sweep afterwards — it
// can never answer again under this identity.
func (m *Monitor) declareDead(nodeID string, now time.Duration) {
	m.recovery.DeclaredDead++
	m.event(now, obs.EventNodeDead, nodeID, "", "", "")

	notBefore := now + m.SelfHeal.cooldown()
	for _, st := range m.services {
		kept := st.replicaIDs[:0]
		for _, id := range st.replicaIDs {
			if m.replicaHome[id] != nodeID {
				kept = append(kept, id)
				continue
			}
			alloc := st.info.InitialAlloc
			if c, _ := m.cluster.FindContainer(id); c != nil {
				alloc = c.Alloc
			} else if cached := m.lastReports[nodeID]; cached != nil {
				for _, cs := range cached.rep.Containers {
					if cs.ID == id {
						alloc = cs.Requested
						break
					}
				}
			}
			m.lost = append(m.lost, lostReplica{
				service: st.spec.Name, id: id, node: nodeID, alloc: alloc,
			})
			delete(m.replicaHome, id)
			m.recovery.ReplicasLost++
			// NodeID is left empty: the placement is resolved against live
			// capacity when the action finally executes, not now.
			m.retries = append(m.retries, pendingAction{
				action:        core.ScaleOut{Service: st.spec.Name, Alloc: alloc},
				notBefore:     notBefore,
				reconcileNode: nodeID,
				lostID:        id,
			})
			m.event(now, obs.EventReconcileEnqueue, nodeID, st.spec.Name, id, "replace after "+m.SelfHeal.cooldown().String())
		}
		for i := len(kept); i < len(st.replicaIDs); i++ {
			st.replicaIDs[i] = ""
		}
		st.replicaIDs = kept
	}
	m.topoGen++ // dead node's replicas left every desired set
}

// reconcileRecovery handles a dead node answering again (a partition that
// healed): queued re-placements for it are cancelled, survivors whose
// replacement never ran are re-adopted, and survivors whose replacement
// already ran are drained as stale.
func (m *Monitor) reconcileRecovery(nodeID string, now time.Duration) {
	kept := m.retries[:0]
	for _, p := range m.retries {
		if p.reconcileNode != nodeID {
			kept = append(kept, p)
			continue
		}
		m.recovery.ReconcileCancelled++
		if act, ok := p.action.(core.ScaleOut); ok {
			m.event(now, obs.EventReconcileCancel, nodeID, act.Service, p.lostID, "node recovered")
		}
	}
	for i := len(kept); i < len(m.retries); i++ {
		m.retries[i] = pendingAction{}
	}
	m.retries = kept

	remaining := m.lost[:0]
	for _, l := range m.lost {
		if l.node != nodeID {
			remaining = append(remaining, l)
			continue
		}
		c, _ := m.cluster.FindContainer(l.id)
		alive := c != nil && c.State != container.StateRemoved
		switch {
		case !alive:
			// Nothing survived the outage; the replacement (ran or
			// cancelled) is all there is.
		case l.replaced:
			m.removeReplica(l.id)
			m.recovery.StaleDrained++
			m.event(now, obs.EventStaleDrained, nodeID, l.service, l.id, "")
		default:
			if st, ok := m.byName[l.service]; ok {
				st.replicaIDs = append(st.replicaIDs, l.id)
				m.replicaHome[l.id] = nodeID
				m.recovery.Readopted++
				m.event(now, obs.EventReadopted, nodeID, l.service, l.id, "")
			}
		}
	}
	m.lost = remaining
	m.topoGen++ // re-adoptions and stale drains changed the replica sets
}

// finishLost marks a lost replica's replacement as done. When the dead node
// is gone for good (detached), the record is dropped — there is no recovery
// left to reconcile against.
func (m *Monitor) finishLost(lostID string) {
	for i := range m.lost {
		if m.lost[i].id != lostID {
			continue
		}
		if _, attached := m.nmByID[m.lost[i].node]; !attached {
			m.lost = append(m.lost[:i], m.lost[i+1:]...)
		} else {
			m.lost[i].replaced = true
		}
		return
	}
}

// --- Checkpoint / restore ---------------------------------------------------

// checkpoint is a deep copy of the Monitor's decision state: the retry
// queue (re-placements and their cooldown deadlines included), the failure
// detector, the lost-replica ledger, the desired replica sets, and the
// last-known node reports.
type checkpoint struct {
	at          time.Duration
	retries     []pendingAction
	lastReports map[string]cachedReport
	nodeStates  map[string]nodeState
	lost        []lostReplica
	replicaIDs  map[string][]string
	replicaHome map[string]string
}

// CheckpointNow snapshots the Monitor's decision state unconditionally.
// Node reports are deep-copied: the live cache entries reuse their Containers
// buffers every poll, and a checkpoint must not see those later overwrites.
func (m *Monitor) CheckpointNow(now time.Duration) {
	cp := &checkpoint{
		at:          now,
		retries:     append([]pendingAction(nil), m.retries...),
		lastReports: make(map[string]cachedReport, len(m.lastReports)),
		nodeStates:  make(map[string]nodeState, len(m.nodeStates)),
		lost:        append([]lostReplica(nil), m.lost...),
		replicaIDs:  make(map[string][]string, len(m.services)),
		replicaHome: make(map[string]string, len(m.replicaHome)),
	}
	for k, v := range m.lastReports {
		frozen := cachedReport{rep: v.rep, at: v.at}
		frozen.rep.Containers = append([]nodemanager.ContainerStats(nil), v.rep.Containers...)
		cp.lastReports[k] = frozen
	}
	for k, v := range m.nodeStates {
		cp.nodeStates[k] = *v
	}
	for _, st := range m.services {
		cp.replicaIDs[st.spec.Name] = append([]string(nil), st.replicaIDs...)
	}
	for k, v := range m.replicaHome {
		cp.replicaHome[k] = v
	}
	m.lastCheckpoint = cp
	m.lastCheckpointAt = now
}

// MaybeCheckpoint snapshots decision state when checkpointing is enabled
// and CheckpointEvery has elapsed since the last snapshot (zero spacing
// checkpoints every call). The platform calls this after each poll.
func (m *Monitor) MaybeCheckpoint(now time.Duration) {
	if !m.SelfHeal.Checkpoint {
		return
	}
	if m.lastCheckpoint != nil && m.SelfHeal.CheckpointEvery > 0 &&
		now-m.lastCheckpointAt < m.SelfHeal.CheckpointEvery {
		return
	}
	m.CheckpointNow(now)
}

// Restart brings the Monitor back after a crash window: from the last
// checkpoint when checkpointing is on and one exists, otherwise cold — the
// retry queue, detector state and lost-replica ledger are gone, and the
// desired replica sets are rediscovered from whatever containers still run.
func (m *Monitor) Restart(now time.Duration) {
	if m.SelfHeal.Checkpoint && m.lastCheckpoint != nil {
		m.restore(m.lastCheckpoint, now)
		return
	}
	m.coldRestart(now)
}

func (m *Monitor) restore(cp *checkpoint, now time.Duration) {
	m.retries = append([]pendingAction(nil), cp.retries...)
	m.lastReports = make(map[string]*cachedReport, len(cp.lastReports))
	for k, v := range cp.lastReports {
		restored := &cachedReport{rep: v.rep, at: v.at}
		// Copy out of the checkpoint so post-restore polls appending into the
		// live cache never mutate the frozen state; the hosts cache rebuilds
		// lazily (hostsOK is false).
		restored.rep.Containers = append([]nodemanager.ContainerStats(nil), v.rep.Containers...)
		m.lastReports[k] = restored
	}
	m.nodeStates = make(map[string]*nodeState, len(cp.nodeStates))
	for k, v := range cp.nodeStates {
		st := v
		m.nodeStates[k] = &st
	}
	m.lost = append([]lostReplica(nil), cp.lost...)
	for _, st := range m.services {
		st.replicaIDs = append([]string(nil), cp.replicaIDs[st.spec.Name]...)
	}
	m.replicaHome = make(map[string]string, len(cp.replicaHome))
	for k, v := range cp.replicaHome {
		m.replicaHome[k] = v
	}
	m.topoGen++ // restored replica sets may differ from the cached view
	m.recovery.CheckpointRestores++
	m.event(now, obs.EventCheckpointRestore, "", "", "", fmt.Sprintf("checkpoint from %v", cp.at))
}

// coldRestart models a monitor process that restarts with no durable state:
// it re-discovers replicas from the cluster (docker ps) but loses the retry
// queue, the detector's evidence, and the lost-replica ledger — re-
// placements that had not run yet simply never happen.
func (m *Monitor) coldRestart(now time.Duration) {
	m.retries = nil
	m.lastReports = make(map[string]*cachedReport)
	m.nodeStates = make(map[string]*nodeState)
	m.lost = nil
	m.replicaHome = make(map[string]string)
	for _, st := range m.services {
		ids := make([]string, 0, len(st.replicaIDs))
		for _, c := range m.cluster.ReplicasOf(st.spec.Name) {
			ids = append(ids, c.ID)
			m.replicaHome[c.ID] = c.NodeID
		}
		sortReplicaIDs(ids)
		st.replicaIDs = ids
	}
	m.topoGen++ // rediscovered replica sets invalidate every cache
	m.recovery.ColdRestarts++
	m.event(now, obs.EventColdRestart, "", "", "", "")
}

// sortReplicaIDs orders rediscovered replica IDs by their creation index
// ("<service>-<idx>"), so a cold restart yields the same replica order on
// every run.
func sortReplicaIDs(ids []string) {
	idx := func(id string) int {
		if i := strings.LastIndex(id, "-"); i >= 0 {
			if n, err := strconv.Atoi(id[i+1:]); err == nil {
				return n
			}
		}
		return 0
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && idx(ids[j]) < idx(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
