package monitor

import (
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/faults"
)

// evacPlane builds a zoned plane with self-healing detectors armed and the
// evacuation state machine configured, plus one zone-outage fault window.
func evacPlane(t *testing.T, nodes, zones, spillover int, outage faults.Window) *Plane {
	t.Helper()
	cl, err := cluster.NewHomogeneous(nodes, cluster.DefaultNodeConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlane(cl, planeNoopAlgo{}, PlaneConfig{
		Zones: zones, Evacuate: true, SpilloverZones: spillover,
		ReadoptAfter: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Arbiters() {
		m.SelfHeal = DefaultSelfHealing()
	}
	p.InstallZoneFaults(faults.New(faults.Config{Windows: []faults.Window{outage}}))
	return p
}

func pollRange(p *Plane, from, to time.Duration) {
	for now := from; now <= to; now += 5 * time.Second {
		p.Poll(now)
	}
}

// TestZoneEvacuateReadoptRoundTrip drives the full state machine: the
// outage collapses zone 0, its service is re-homed into a survivor and its
// replicas re-placed there; after the heal plus the anti-flap cooldown the
// service migrates back home.
func TestZoneEvacuateReadoptRoundTrip(t *testing.T) {
	p := evacPlane(t, 8, 4, 0, faults.Window{
		Kind: faults.KindZoneOutage, Target: "0", From: 4 * time.Second, To: 122 * time.Second,
	})
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := p.AddService(planeSpec(name, 1, 2, 2), 0.5); err != nil {
			t.Fatal(err)
		}
		if err := p.DeployInitial(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	if z := p.ZoneOfService("a"); z != 0 {
		t.Fatalf("service a homed in zone %d, want 0", z)
	}

	// Detector: suspect after 2 missed polls, dead after 4; both zone-0
	// nodes are dead by t=20s, and the next tick evacuates.
	pollRange(p, 5*time.Second, 60*time.Second)
	ev := p.Evac()
	if ev.ZonesEvacuated != 1 || ev.ServicesEvacuated != 1 {
		t.Fatalf("after outage: evac counts = %+v", ev)
	}
	if ev.ReplicasDisplaced != 2 {
		t.Errorf("displaced = %d, want 2", ev.ReplicasDisplaced)
	}
	if z := p.ZoneOfService("a"); z == 0 {
		t.Error("service a still homed in the dead zone")
	}
	if !p.ZoneSummaries()[0].Evacuated {
		t.Error("zone 0 not marked evacuated")
	}
	if got := p.ReplicaCount("a"); got != 2 {
		t.Errorf("replicas after evacuation = %d, want 2 re-placed", got)
	}

	// Heal at 122s; the zone must stay fully healthy for ReadoptAfter (20s)
	// before the service migrates home.
	pollRange(p, 65*time.Second, 200*time.Second)
	ev = p.Evac()
	if ev.ZonesReadopted != 1 || ev.ServicesReadopted != 1 {
		t.Fatalf("after heal: evac counts = %+v", ev)
	}
	if z := p.ZoneOfService("a"); z != 0 {
		t.Errorf("service a homed in zone %d after re-adoption, want 0", z)
	}
	if p.ZoneSummaries()[0].Evacuated {
		t.Error("healed zone still marked evacuated")
	}
	if got := p.ReplicaCount("a"); got != 2 {
		t.Errorf("replicas after re-adoption = %d, want 2", got)
	}
	// Ownership stays exclusive and exhaustive through the round trip.
	total := 0
	for _, zs := range p.ZoneSummaries() {
		total += zs.Replicas
	}
	want := 0
	for _, name := range []string{"a", "b", "c", "d"} {
		want += p.ReplicaCount(name)
	}
	if total != want {
		t.Errorf("zone ledgers own %d replicas, services report %d", total, want)
	}
}

// TestZoneEvacuationSpillover forces a service too large for any single
// survivor: 6 two-core replicas against survivors with 8 CPU free each.
// With spillover the remainder lands as a guest shard in a second zone;
// without it the overflow is abandoned after the retry budget.
func TestZoneEvacuationSpillover(t *testing.T) {
	outage := faults.Window{
		Kind: faults.KindZoneOutage, Target: "0", From: 4 * time.Second, To: time.Hour,
	}
	// 12 nodes in 3 zones: 16 CPU per zone. Zone 0: the 12-CPU mammoth;
	// zones 1 and 2: 8 CPU of fillers each, leaving 8 free apiece.
	build := func(spillover int) *Plane {
		p := evacPlane(t, 12, 3, spillover, outage)
		for _, s := range []struct {
			name     string
			replicas int
		}{{"a", 6}, {"b", 4}, {"c", 4}} {
			if err := p.AddService(planeSpec(s.name, 2, s.replicas, s.replicas), 0.5); err != nil {
				t.Fatal(err)
			}
			if err := p.DeployInitial(s.name, 0); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}

	withSpill := build(2)
	pollRange(withSpill, 5*time.Second, 120*time.Second)
	ev := withSpill.Evac()
	if ev.ReplicasDisplaced != 6 {
		t.Errorf("spillover run displaced %d, want 6", ev.ReplicasDisplaced)
	}
	if ev.SpilloverPlacements != 2 {
		t.Errorf("spillover placements = %d, want 2 (4 fit the primary)", ev.SpilloverPlacements)
	}
	if got := withSpill.ReplicaCount("a"); got != 6 {
		t.Errorf("with spillover: replicas = %d, want all 6 re-placed", got)
	}

	plain := build(0)
	pollRange(plain, 5*time.Second, 200*time.Second)
	ev = plain.Evac()
	if ev.SpilloverPlacements != 0 {
		t.Errorf("plain evacuation recorded %d spillover placements", ev.SpilloverPlacements)
	}
	if got := plain.ReplicaCount("a"); got != 4 {
		t.Errorf("without spillover: replicas = %d, want 4 (overflow abandoned)", got)
	}
	if plain.Counts().AbandonedActions == 0 {
		t.Error("overflow replicas were never abandoned")
	}
}

// TestZoneOutageWithoutEvacuationStaysPut: with the DR path disabled a
// collapsed zone keeps its services — nothing is re-homed and no DR
// counters move.
func TestZoneOutageWithoutEvacuationStaysPut(t *testing.T) {
	cl, err := cluster.NewHomogeneous(8, cluster.DefaultNodeConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlane(cl, planeNoopAlgo{}, PlaneConfig{Zones: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Arbiters() {
		m.SelfHeal = DefaultSelfHealing()
	}
	p.InstallZoneFaults(faults.New(faults.Config{Windows: []faults.Window{
		{Kind: faults.KindZoneOutage, Target: "0", From: 4 * time.Second, To: time.Hour},
	}}))
	if err := p.AddService(planeSpec("a", 1, 2, 2), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := p.DeployInitial("a", 0); err != nil {
		t.Fatal(err)
	}
	pollRange(p, 5*time.Second, 120*time.Second)
	if ev := p.Evac(); ev != (EvacCounts{}) {
		t.Errorf("evacuation disabled but counters moved: %+v", ev)
	}
	if z := p.ZoneOfService("a"); z != 0 {
		t.Errorf("service a re-homed to zone %d with evacuation disabled", z)
	}
}
