// Zone evacuation and re-adoption: the disaster-recovery half of the zoned
// control plane. The per-zone failure detectors (selfheal.go) already excise
// replicas from dead nodes and queue re-placements — but when EVERY node of a
// zone is dead, those re-placements retry against the same dead zone forever.
// The evacuation state machine closes that gap at the allocator level:
//
//	up ──all nodes dead──▶ evacuate (re-home services + their queued
//	                       re-placements into surviving zones, splitting
//	                       across up to SpilloverZones when no single zone
//	                       fits) ──▶ down
//	down ──all nodes healthy for ReadoptAfter──▶ readopt (drain the
//	                       temporary replicas, migrate state home, re-place
//	                       there) ──▶ up
//
// Everything here runs inside Plane.Poll before the zones poll, on the same
// goroutine as the rest of the simulator, and scans only deterministic
// slices — byte-identical output at any -parallel count is preserved.
package monitor

import (
	"fmt"
	"time"

	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/obs"
	"hyscale/internal/resources"
)

// EvacCounts tallies the plane's disaster-recovery activity.
type EvacCounts struct {
	// ZonesEvacuated / ZonesReadopted count state-machine transitions of
	// zones that had services or spillover shards to move.
	ZonesEvacuated uint64 `json:"zonesEvacuated"`
	ZonesReadopted uint64 `json:"zonesReadopted"`
	// ServicesEvacuated counts services re-homed out of a dead zone;
	// ServicesReadopted counts services migrated back after a heal.
	ServicesEvacuated uint64 `json:"servicesEvacuated"`
	ServicesReadopted uint64 `json:"servicesReadopted"`
	// ReplicasDisplaced counts queued re-placements carried across a zone
	// boundary by an evacuation — the paper's "cross-zone replica
	// displacement".
	ReplicasDisplaced uint64 `json:"replicasDisplaced"`
	// SpilloverPlacements counts displaced replicas assigned beyond the
	// primary target zone because no single surviving zone fit the service.
	SpilloverPlacements uint64 `json:"spilloverPlacements"`
}

// evacTick advances the evacuation ⇄ re-adoption state machine for every zone
// in index order. Driven by the per-zone failure detectors, so it requires
// self-healing: with the detector off no node is ever ruled dead and the tick
// is a no-op.
func (p *Plane) evacTick(now time.Duration) {
	for _, z := range p.zones {
		collapsed := p.zoneCollapsed(z)
		switch {
		case collapsed && !z.down:
			p.evacuateZone(z, now)
			z.down = true
			z.healthyAt = -1
		case collapsed:
			z.healthyAt = -1
		case z.down:
			if !p.zoneAllHealthy(z) {
				// Partially healed: wait until every node answers again, and
				// restart the anti-flap clock on any relapse.
				z.healthyAt = -1
				continue
			}
			if z.healthyAt < 0 {
				z.healthyAt = now
			}
			if now-z.healthyAt >= p.cfg.readoptAfter() {
				p.readoptZone(z, now)
				z.down = false
				z.healthyAt = -1
			}
		}
	}
}

// zoneCollapsed reports whether every node of the zone is ruled dead by the
// zone's own failure detector. An empty zone (possible only transiently) is
// not collapsed — there is nothing to evacuate from it.
func (p *Plane) zoneCollapsed(z *zoneArbiter) bool {
	nodes := z.view.Nodes()
	if len(nodes) == 0 {
		return false
	}
	for _, n := range nodes {
		if !z.mon.nodeDead(n.ID()) {
			return false
		}
	}
	return true
}

// zoneAllHealthy reports whether every node of the zone has a clean detector
// record — the re-adoption gate, stricter than "not collapsed".
func (p *Plane) zoneAllHealthy(z *zoneArbiter) bool {
	nodes := z.view.Nodes()
	if len(nodes) == 0 {
		return false
	}
	return p.healthyNodes(z) == len(nodes)
}

// zoneUsable reports whether a zone may receive evacuated services: not
// already evacuated and not itself collapsed (relevant when several zones die
// in the same tick — index order means a later victim is not yet marked down
// when an earlier one evacuates).
func (p *Plane) zoneUsable(z *zoneArbiter) bool {
	return !z.down && !p.zoneCollapsed(z)
}

// evacuateZone re-homes everything the dead zone owned. Spillover shards
// guested here collapse back to their service's current home (the queued
// recovery work must live where the ledger does); home services are then
// assigned to surviving zones capacity-aware and moved with their retry-queue
// entries and lost-replica ledgers.
func (p *Plane) evacuateZone(z *zoneArbiter, now time.Duration) {
	work := len(z.services) + len(z.guests)
	for _, s := range append([]string(nil), z.guests...) {
		home := p.home(s)
		if home == nil || home == z {
			continue
		}
		p.dropGuest(z, s, home, now)
	}
	p.rehomeServices(z, now)
	if work > 0 {
		p.evac.ZonesEvacuated++
	}
}

// zoneShare is one zone's slice of an evacuated service's displaced replicas.
type zoneShare struct {
	zone  int
	count int
}

// rehomeServices moves every service homed in the dead zone into surviving
// zones. Free capacity is snapshotted once and consumed as services are
// assigned (in registration order), so services evacuated in the same tick
// spread instead of piling onto the zone that looked roomiest first.
func (p *Plane) rehomeServices(z *zoneArbiter, now time.Duration) {
	if len(z.services) == 0 {
		return
	}
	free := p.freeCapacity(z)
	for _, s := range append([]string(nil), z.services...) {
		st := z.mon.byName[s]
		if st == nil {
			continue
		}
		// The service's queued re-placements are the demand to fit: every
		// replica the detector excised has a ScaleOut waiting in the retry
		// queue (already-abandoned ones are gone for good either way).
		pend := extractPendings(z.mon, s)
		allocs := make([]resources.Vector, len(pend))
		for i, pa := range pend {
			if act, ok := pa.action.(core.ScaleOut); ok {
				allocs[i] = act.Alloc
			}
		}
		shares := p.splitAcrossZones(free, allocs)
		if shares == nil {
			// No surviving zone at all: leave the service in place; its
			// re-placements keep retrying against the dead zone until it
			// heals or they abandon.
			z.mon.retries = append(z.mon.retries, pend...)
			continue
		}
		primary := p.zones[shares[0].zone]
		if _, already := p.evacHome[s]; !already {
			p.evacHome[s] = z.idx // first home wins across chained evacuations
		}
		moveServiceState(z.mon, primary.mon, s)
		z.removeService(s)
		primary.services = append(primary.services, s)
		p.zoneOfService[s] = primary.idx
		// Lost-replica ledger entries follow their pending to whichever
		// monitor executes the replacement, so finishLost resolves locally;
		// entries with no pending left (replacement already ran or
		// abandoned) stay with the home state.
		idx := 0
		for si, share := range shares {
			dest := p.zones[share.zone]
			if si > 0 && share.count > 0 {
				p.ensureGuest(dest, primary.mon.byName[s], share.count)
				p.addSpill(s, dest.idx)
				p.evac.SpilloverPlacements += uint64(share.count)
			}
			for k := 0; k < share.count && idx < len(pend); k++ {
				moveLostByID(z.mon, dest.mon, pend[idx].lostID)
				dest.mon.retries = append(dest.mon.retries, pend[idx])
				idx++
			}
		}
		for ; idx < len(pend); idx++ { // defensive: anything unassigned → primary
			moveLostByID(z.mon, primary.mon, pend[idx].lostID)
			primary.mon.retries = append(primary.mon.retries, pend[idx])
		}
		moveLost(z.mon, primary.mon, s)
		p.evac.ServicesEvacuated++
		p.evac.ReplicasDisplaced += uint64(len(pend))
		detail := fmt.Sprintf("zone %d -> zone %d", z.idx, primary.idx)
		if len(shares) > 1 {
			detail += fmt.Sprintf(" (+%d spill zones)", len(shares)-1)
		}
		z.mon.event(now, obs.EventZoneEvacuate, "", s, "", detail)
	}
}

// freeCapacity snapshots each usable zone's per-healthy-node availability,
// indexed by zone (nil = zone unusable). splitAcrossZones consumes it.
func (p *Plane) freeCapacity(exclude *zoneArbiter) [][]resources.Vector {
	free := make([][]resources.Vector, len(p.zones))
	for _, z := range p.zones {
		if z == exclude || !p.zoneUsable(z) {
			continue
		}
		var nodes []resources.Vector
		for _, n := range z.view.Nodes() {
			if st := z.mon.nodeStates[n.ID()]; st != nil && (st.missed > 0 || st.health != NodeHealthy) {
				continue
			}
			nodes = append(nodes, n.Available())
		}
		free[z.idx] = nodes
	}
	return free
}

// splitAcrossZones assigns each displaced replica to a surviving zone: the
// zone fitting the most of them becomes the primary, ties broken by the most
// remaining free capacity (then lowest index) so successive evacuated
// services spread across the survivors instead of piling into one zone; when
// the primary cannot hold every replica and spillover is enabled, the
// remainder spreads over further zones, up to SpilloverZones total. Replicas
// no zone can hold are charged to the primary — they retry there and lease or
// abandon like any other placement failure. The free ledger is decremented
// by what was placed. Returns nil when no surviving zone exists at all.
func (p *Plane) splitAcrossZones(free [][]resources.Vector, allocs []resources.Vector) []zoneShare {
	maxSpan := p.cfg.SpilloverZones
	if maxSpan < 1 {
		maxSpan = 1
	}
	var shares []zoneShare
	taken := make(map[int]bool)
	remaining := allocs
	for {
		best, bestFit, bestFree := -1, -1, 0.0
		for zi := range free {
			if free[zi] == nil || taken[zi] {
				continue
			}
			fit := fitCount(free[zi], remaining, false)
			if fit < bestFit {
				continue
			}
			headroom := freeScore(free[zi])
			if fit > bestFit || headroom > bestFree {
				best, bestFit, bestFree = zi, fit, headroom
			}
		}
		if best < 0 {
			break
		}
		take := bestFit
		if take > len(remaining) {
			take = len(remaining)
		}
		fitCount(free[best], remaining[:take], true)
		shares = append(shares, zoneShare{zone: best, count: take})
		taken[best] = true
		remaining = remaining[take:]
		if len(remaining) == 0 || len(shares) >= maxSpan || bestFit == 0 {
			break
		}
	}
	if len(shares) == 0 {
		return nil
	}
	shares[0].count += len(remaining)
	return shares
}

// freeScore collapses a zone's free vectors into one balance scalar (CPU
// plus memory in GB) used to spread evacuees across equally-fitting zones.
func freeScore(nodes []resources.Vector) float64 {
	var s float64
	for _, n := range nodes {
		s += n.CPU + n.MemMB/1024
	}
	return s
}

// fitCount reports how many of allocs (in order) fit onto the nodes, placing
// each on the first node with room. commit=false probes a scratch copy;
// commit=true consumes the real availability vectors.
func fitCount(nodes []resources.Vector, allocs []resources.Vector, commit bool) int {
	if !commit {
		nodes = append([]resources.Vector(nil), nodes...)
	}
	fit := 0
	for _, a := range allocs {
		for i := range nodes {
			if a.FitsIn(nodes[i]) {
				nodes[i] = nodes[i].Sub(a)
				fit++
				break
			}
		}
	}
	return fit
}

// ensureGuest registers (or refreshes) a spillover shard of the home service
// in the destination zone, reserving a replica-index range on the home state
// so the two monitors never mint colliding container IDs.
func (p *Plane) ensureGuest(za *zoneArbiter, home *serviceState, reserve int) {
	if home == nil {
		return
	}
	name := home.spec.Name
	if g, ok := za.mon.byName[name]; ok && g.guest {
		g.nextIdx = home.nextIdx
		home.nextIdx += reserve
		return
	}
	g := &serviceState{spec: home.spec, info: home.info, guest: true, nextIdx: home.nextIdx}
	home.nextIdx += reserve
	za.mon.services = append(za.mon.services, g)
	za.mon.byName[name] = g
	za.guests = append(za.guests, name)
	za.mon.topoGen++
	za.mon.lastCheckpoint = nil // a restore must not resurrect a pre-shard view
}

// dropGuest tears a spillover shard out of a zone: live shard replicas are
// drained (their allocations returned so the caller can re-place them), and
// the shard's queued re-placements and lost-ledger entries move to dest —
// the service's current home. Used both when a guest's host zone dies (no
// live replicas remain then) and when the service migrates home.
func (p *Plane) dropGuest(za *zoneArbiter, s string, dest *zoneArbiter, now time.Duration) []resources.Vector {
	g := za.mon.byName[s]
	if g == nil || !g.guest {
		return nil
	}
	var allocs []resources.Vector
	for _, id := range append([]string(nil), g.replicaIDs...) {
		if c, _ := za.mon.findReplica(id); c != nil && c.State != container.StateRemoved {
			allocs = append(allocs, c.Alloc)
			za.mon.removeReplica(id)
		}
	}
	g.replicaIDs = g.replicaIDs[:0]
	movePendings(za.mon, dest.mon, s)
	moveLost(za.mon, dest.mon, s)
	delete(za.mon.byName, s)
	for i, st := range za.mon.services {
		if st == g {
			za.mon.services = append(za.mon.services[:i], za.mon.services[i+1:]...)
			break
		}
	}
	za.guests = removeString(za.guests, s)
	p.removeSpill(s, za.idx)
	za.mon.topoGen++
	za.mon.lastCheckpoint = nil
	dest.mon.lastCheckpoint = nil
	return allocs
}

// readoptZone migrates every service whose original home was this zone back
// into it: spillover shards and the temporary home are drained (allocations
// captured), decision state and ledgers move home, lost originals that
// survived the outage un-replaced are re-adopted, and everything drained is
// re-placed through the home reconciler's retry queue. A final sweep drains
// any orphan container left on the zone's nodes by work that resolved while
// the zone was unreachable.
func (p *Plane) readoptZone(z *zoneArbiter, now time.Duration) {
	// Deterministic service order: scan zones/services, not the evacHome map.
	var names []string
	for _, zz := range p.zones {
		for _, s := range zz.services {
			if home, ok := p.evacHome[s]; ok && home == z.idx {
				names = append(names, s)
			}
		}
	}
	for _, s := range names {
		cur := p.zones[p.zoneOfService[s]]
		if cur == z {
			delete(p.evacHome, s)
			continue
		}
		st := cur.mon.byName[s]
		if st == nil {
			delete(p.evacHome, s)
			continue
		}
		// Collapse spillover shards into the current home first, then drain
		// the home's own replicas: every displaced replica's allocation ends
		// up in allocs for re-placement back here.
		var allocs []resources.Vector
		for _, zi := range append([]int(nil), p.spills[s]...) {
			allocs = append(allocs, p.dropGuest(p.zones[zi], s, cur, now)...)
		}
		delete(p.spills, s)
		for _, id := range append([]string(nil), st.replicaIDs...) {
			if c, _ := cur.mon.findReplica(id); c != nil && c.State != container.StateRemoved {
				allocs = append(allocs, c.Alloc)
				cur.mon.removeReplica(id)
			}
		}
		st.replicaIDs = st.replicaIDs[:0]
		moveServiceState(cur.mon, z.mon, s)
		cur.removeService(s)
		z.services = append(z.services, s)
		p.zoneOfService[s] = z.idx
		movePendings(cur.mon, z.mon, s)
		moveLost(cur.mon, z.mon, s)
		p.resolveLostHome(z, s, now)
		for _, a := range allocs {
			z.mon.retries = append(z.mon.retries, pendingAction{
				action: core.ScaleOut{Service: s, Alloc: a}, notBefore: now,
			})
		}
		// Every replica the service now has was started this instant with
		// zero observed usage; hold the algorithm off for one poll so it
		// does not trim them to the minimum before stats arrive.
		if home := z.mon.byName[s]; home != nil && home.holdPolls == 0 {
			home.holdPolls = 1
			z.mon.held++
		}
		delete(p.evacHome, s)
		p.evac.ServicesReadopted++
		z.mon.event(now, obs.EventZoneReadopt, "", s, "",
			fmt.Sprintf("zone %d -> zone %d", cur.idx, z.idx))
	}
	p.sweepOrphans(z, now)
	if len(names) > 0 {
		p.evac.ZonesReadopted++
	}
}

// resolveLostHome settles the re-homed service's lost-replica ledger against
// what physically survived the outage in the home zone: un-replaced
// survivors are re-adopted (and any still-queued replacement cancelled),
// replaced survivors are drained as stale, vanished replicas are forgotten.
func (p *Plane) resolveLostHome(z *zoneArbiter, s string, now time.Duration) {
	st := z.mon.byName[s]
	if st == nil {
		return
	}
	remaining := z.mon.lost[:0]
	for _, l := range z.mon.lost {
		if l.service != s {
			remaining = append(remaining, l)
			continue
		}
		c, _ := z.view.FindContainer(l.id)
		alive := c != nil && c.State != container.StateRemoved
		switch {
		case !alive:
		case l.replaced:
			z.mon.removeReplica(l.id)
			z.mon.recovery.StaleDrained++
			z.mon.event(now, obs.EventStaleDrained, l.node, s, l.id, "")
		default:
			st.replicaIDs = append(st.replicaIDs, l.id)
			z.mon.replicaHome[l.id] = c.NodeID
			z.mon.recovery.Readopted++
			z.mon.event(now, obs.EventReadopted, c.NodeID, s, l.id, "")
			cancelPendingFor(z.mon, l.id, now)
		}
	}
	z.mon.lost = remaining
	z.mon.topoGen++
}

// cancelPendingFor drops the queued replacement for one re-adopted replica.
func cancelPendingFor(m *Monitor, lostID string, now time.Duration) {
	for i, pa := range m.retries {
		if pa.lostID != lostID || pa.lostID == "" {
			continue
		}
		m.recovery.ReconcileCancelled++
		if act, ok := pa.action.(core.ScaleOut); ok {
			m.event(now, obs.EventReconcileCancel, pa.reconcileNode, act.Service, lostID, "replica readopted")
		}
		m.retries = append(m.retries[:i], m.retries[i+1:]...)
		return
	}
}

// sweepOrphans drains containers on the zone's nodes that no arbiter owns —
// lost originals whose service's ledger entry was dropped while the zone was
// unreachable (e.g. a spillover shard's host zone died and the replacement
// resolved elsewhere). Their lost entries, wherever they ended up, go too.
func (p *Plane) sweepOrphans(z *zoneArbiter, now time.Duration) {
	for _, n := range z.view.Nodes() {
		var orphans []string
		for _, c := range n.Containers() {
			if c.State == container.StateRemoved {
				continue
			}
			if _, owned := z.mon.replicaHome[c.ID]; owned {
				continue
			}
			orphans = append(orphans, c.ID)
		}
		for _, id := range orphans {
			p.dropLostEverywhere(id)
			z.mon.removeReplica(id)
			z.mon.recovery.StaleDrained++
			z.mon.event(now, obs.EventStaleDrained, n.ID(), z.mon.serviceOfContainer(id), id, "zone sweep")
		}
	}
}

// dropLostEverywhere forgets a container from every arbiter's lost ledger.
func (p *Plane) dropLostEverywhere(id string) {
	for _, z := range p.zones {
		for i := range z.mon.lost {
			if z.mon.lost[i].id == id {
				z.mon.lost = append(z.mon.lost[:i], z.mon.lost[i+1:]...)
				break
			}
		}
	}
}

// addSpill records that a service keeps a spillover shard in zone zi.
func (p *Plane) addSpill(s string, zi int) {
	for _, z := range p.spills[s] {
		if z == zi {
			return
		}
	}
	p.spills[s] = append(p.spills[s], zi)
}

// removeSpill forgets a service's spillover shard in zone zi.
func (p *Plane) removeSpill(s string, zi int) {
	zs := p.spills[s]
	for i, z := range zs {
		if z == zi {
			p.spills[s] = append(zs[:i], zs[i+1:]...)
			if len(p.spills[s]) == 0 {
				delete(p.spills, s)
			}
			return
		}
	}
}

// removeService drops a service from the arbiter's home-service list.
func (z *zoneArbiter) removeService(s string) {
	z.services = removeString(z.services, s)
}

func removeString(xs []string, s string) []string {
	for i, x := range xs {
		if x == s {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// moveServiceState transfers a service's decision state between monitors.
// Both monitors' topologies change and neither's checkpoint may survive — a
// restore would otherwise resurrect the service in its old zone.
func moveServiceState(from, to *Monitor, s string) {
	st := from.byName[s]
	if st == nil {
		return
	}
	delete(from.byName, s)
	for i, x := range from.services {
		if x == st {
			from.services = append(from.services[:i], from.services[i+1:]...)
			break
		}
	}
	st.guest = false
	st.resolved = st.resolved[:0]
	st.resolvedGen = 0 // topoGen starts at 1, so 0 always misses the cache
	to.services = append(to.services, st)
	to.byName[s] = st
	from.topoGen++
	to.topoGen++
	from.lastCheckpoint = nil
	to.lastCheckpoint = nil
}

// extractPendings removes and returns, in queue order, every queued ScaleOut
// for the service — both reconciler re-placements and backing-off retries.
func extractPendings(m *Monitor, s string) []pendingAction {
	var out []pendingAction
	kept := m.retries[:0]
	for _, pa := range m.retries {
		if act, ok := pa.action.(core.ScaleOut); ok && act.Service == s {
			out = append(out, pa)
			continue
		}
		kept = append(kept, pa)
	}
	for i := len(kept); i < len(m.retries); i++ {
		m.retries[i] = pendingAction{}
	}
	m.retries = kept
	return out
}

// movePendings transfers the service's queued ScaleOuts from one monitor's
// retry queue to another's, preserving order.
func movePendings(from, to *Monitor, s string) {
	to.retries = append(to.retries, extractPendings(from, s)...)
}

// moveLost transfers every lost-ledger entry of the service between monitors.
func moveLost(from, to *Monitor, s string) {
	kept := from.lost[:0]
	for _, l := range from.lost {
		if l.service == s {
			to.lost = append(to.lost, l)
			continue
		}
		kept = append(kept, l)
	}
	from.lost = kept
}

// moveLostByID transfers one lost-ledger entry between monitors (no-op when
// the entry is gone — already replaced-and-dropped or never recorded).
func moveLostByID(from, to *Monitor, id string) {
	if id == "" {
		return
	}
	for i := range from.lost {
		if from.lost[i].id == id {
			to.lost = append(to.lost, from.lost[i])
			from.lost = append(from.lost[:i], from.lost[i+1:]...)
			return
		}
	}
}
