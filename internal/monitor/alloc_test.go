package monitor

// Allocation regression tests for the monitor's hot path. The poll loop runs
// once per MonitorPeriod for every node in the cluster; at 1000 nodes a
// single stray per-node allocation turns into tens of thousands of garbage
// objects per simulated minute. Snapshot assembly is built around reused
// scratch (statsByID, seenGen, snapNodes/snapServices, cached per-node
// reports), so in steady state — warm replicas, no churn, no faults — a full
// Sample+Poll cycle must allocate nothing. AllocsPerRun pins that at 0.

import (
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
)

// staticAlgo never scales and records nothing, so the measurement sees only
// the monitor's own allocations.
type staticAlgo struct{}

func (staticAlgo) Name() string                   { return "static" }
func (staticAlgo) Decide(core.Snapshot) core.Plan { return core.Plan{} }

func TestPollSteadyStateAllocFree(t *testing.T) {
	cl, err := cluster.NewHomogeneous(6, cluster.DefaultNodeConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	m := New(cl, staticAlgo{})
	for _, name := range []string{"a", "b", "c"} {
		if err := m.AddService(spec(name), 0.5); err != nil {
			t.Fatal(err)
		}
		if err := m.DeployInitial(name, 0); err != nil {
			t.Fatal(err)
		}
	}

	now := time.Duration(0)
	cycle := func() {
		now += time.Second
		m.Sample()
		m.Poll(now)
	}
	// Warm-up polls size every scratch buffer and populate the per-node
	// report caches; steady state starts after the first full cycle, but a
	// few extra rounds keep the test honest about cache stability.
	for i := 0; i < 3; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("steady-state Sample+Poll allocates %.1f objects/cycle, want 0", allocs)
	}
}
