// The zoned control plane: the datacenter-scale successor to the single
// central arbiter. Nodes are partitioned into zones, each owned by a zone
// arbiter — a full Monitor running over a zone-local cluster view — and a
// thin global allocator (the Plane) sits above them handling service→zone
// assignment, cross-zone capacity leasing when a zone runs dry, and the
// merging of per-zone ledgers into the cluster-wide view experiments, obs
// and httpapi consume.
//
// Each arbiter polls only its own nodes and hands the scaling algorithm a
// zone-local snapshot, so the per-poll placement scan drops from O(services
// × nodes) to O(services × nodes / zones) — the structural speedup ROADMAP
// item 1 asked for after PR 7 exhausted micro-optimization.
//
// Zones stay disjoint: a node belongs to exactly one arbiter at a time, so
// no machine is double-polled and every replica has exactly one owner.
// Cross-zone placement is therefore node leasing, not remote placement —
// when a zone is out of capacity the allocator moves an idle (container-free,
// detector-healthy) machine from the richest donor zone into the starved
// one. Determinism is preserved: zones are polled in index order and every
// scan is over deterministic slices.
package monitor

import (
	"fmt"
	"strconv"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

// ControlPlane is the surface the platform drives: both the single Monitor
// and the zoned Plane implement it, so every consumer of the cluster view —
// runner, httpapi, obs sampling, the facade — is agnostic to sharding.
type ControlPlane interface {
	AddService(spec workload.ServiceSpec, targetUtil float64) error
	DeployInitial(service string, now time.Duration) error
	StartReplica(service, nodeID string, alloc resources.Vector, now time.Duration) error

	Sample()
	Poll(now time.Duration)
	Apply(plan core.Plan, now time.Duration)
	MaybeCheckpoint(now time.Duration)
	Restart(now time.Duration)

	Replicas(service string) []*container.Container
	AppendReplicas(buf []*container.Container, service string) []*container.Container
	ReplicaCount(service string) int

	Counts() ActionCounts
	Recovery() RecoveryCounts
	NodeConditions() []NodeCondition
	PendingRetries() int
	Algorithm() core.Algorithm

	DetachNode(nodeID string)
	AttachNode(n *cluster.Node)
}

var (
	_ ControlPlane = (*Monitor)(nil)
	_ ControlPlane = (*Plane)(nil)
)

// PlaneConfig parameterises the zoned control plane.
type PlaneConfig struct {
	// Zones is the number of zone arbiters; clamped to the node count.
	Zones int
	// LeaseHeadroomCPU triggers proactive leasing: when a zone's best
	// single-node available CPU falls below this many cores before a poll,
	// the allocator moves one idle node in so the zone's algorithm still has
	// somewhere to scale out. Zero means the 1-core default.
	LeaseHeadroomCPU float64
	// Evacuate enables the disaster-recovery path: when every node of a zone
	// is ruled dead by its arbiter's failure detector, the allocator re-homes
	// the zone's services into surviving zones and lets the reconciler
	// re-place their lost replicas there. Requires self-healing (the detector
	// is the trigger); off, a dead zone's services stay down until it heals.
	Evacuate bool
	// SpilloverZones bounds how many zones one evacuated service may span
	// when no single surviving zone has capacity for all its replicas:
	// its home plus up to SpilloverZones-1 spill shards. Values ≤ 1 disable
	// spillover (the whole service lands in one zone, fit or not).
	SpilloverZones int
	// ReadoptAfter is the anti-flap cooldown before an evacuated service
	// migrates home: the healed zone must stay fully healthy this long
	// first. Zero means the 30 s default.
	ReadoptAfter time.Duration
}

func (c PlaneConfig) headroom() resources.Vector {
	h := c.LeaseHeadroomCPU
	if h <= 0 {
		h = 1
	}
	return resources.Vector{CPU: h}
}

func (c PlaneConfig) readoptAfter() time.Duration {
	if c.ReadoptAfter > 0 {
		return c.ReadoptAfter
	}
	return 30 * time.Second
}

// CrossZoneCounts tallies the global allocator's activity.
type CrossZoneCounts struct {
	// NodeLeases counts idle machines moved between zones.
	NodeLeases uint64 `json:"nodeLeases"`
	// LeaseFailures counts lease attempts that found no movable machine.
	LeaseFailures uint64 `json:"leaseFailures"`
}

// ZoneSummary is one zone's merged view, for per-zone metrics and the
// hyscale-sim summary lines.
type ZoneSummary struct {
	Zone           int            `json:"zone"`
	Nodes          int            `json:"nodes"`
	Services       int            `json:"services"`
	Replicas       int            `json:"replicas"`
	Counts         ActionCounts   `json:"counts"`
	Recovery       RecoveryCounts `json:"recovery"`
	PendingRetries int            `json:"pendingRetries"`
	// LeaseFailures counts lease attempts this zone initiated that found no
	// movable machine anywhere (the per-zone attribution of the global
	// CrossZoneCounts.LeaseFailures).
	LeaseFailures uint64 `json:"leaseFailures"`
	// Evacuated marks a zone currently ruled down by the evacuation state
	// machine (its services re-homed into surviving zones).
	Evacuated bool `json:"evacuated,omitempty"`
}

// zoneArbiter couples one zone's cluster view with the Monitor that owns it.
type zoneArbiter struct {
	idx      int
	name     string // decimal zone index, the target key of zone fault windows
	view     *cluster.Cluster
	mon      *Monitor
	services []string
	// guests lists services whose home is another zone but which keep a
	// bounded spillover shard of replicas here (see evac.go).
	guests []string

	// leaseFailures counts failed lease attempts initiated on this zone's
	// behalf.
	leaseFailures uint64

	// down / healthyAt drive the evacuation ⇄ re-adoption state machine:
	// down is set when the zone is evacuated, healthyAt records when the
	// zone was last observed transitioning to fully healthy (-1 = not
	// currently healthy).
	down      bool
	healthyAt time.Duration
}

// Plane is the two-level control plane: zone arbiters below, the global
// allocator above. Single-goroutine like everything else in the simulator.
type Plane struct {
	global *cluster.Cluster
	cfg    PlaneConfig
	algo   core.Algorithm

	zones         []*zoneArbiter
	zoneOfNode    map[string]int
	zoneOfService map[string]int

	// evacHome remembers an evacuated service's original zone, so it
	// migrates home when that zone heals; spills lists the zones holding a
	// service's spillover shards beyond its (current) home.
	evacHome map[string]int
	spills   map[string][]int

	cross CrossZoneCounts
	evac  EvacCounts
}

// NewPlane partitions the cluster's nodes into contiguous zones and builds
// one arbiter per zone. The algorithm instance is shared by all arbiters:
// every algorithm in internal/core keys its state per service name, services
// are assigned to exactly one zone, and zones decide sequentially, so no
// state crosses zone boundaries.
func NewPlane(cl *cluster.Cluster, algo core.Algorithm, cfg PlaneConfig) (*Plane, error) {
	nodes := cl.Nodes()
	if cfg.Zones < 2 {
		return nil, fmt.Errorf("monitor: plane needs at least 2 zones, got %d (use Monitor for 1)", cfg.Zones)
	}
	k := cfg.Zones
	if k > len(nodes) {
		k = len(nodes)
	}
	p := &Plane{
		global:        cl,
		cfg:           cfg,
		algo:          algo,
		zoneOfNode:    make(map[string]int, len(nodes)),
		zoneOfService: make(map[string]int),
		evacHome:      make(map[string]int),
		spills:        make(map[string][]int),
	}
	for z := 0; z < k; z++ {
		view, err := cluster.New()
		if err != nil {
			return nil, err
		}
		lo, hi := z*len(nodes)/k, (z+1)*len(nodes)/k
		for _, n := range nodes[lo:hi] {
			if err := view.AdoptNode(n); err != nil {
				return nil, err
			}
			p.zoneOfNode[n.ID()] = z
		}
		za := &zoneArbiter{
			idx: z, name: strconv.Itoa(z), view: view, mon: New(view, algo),
			healthyAt: -1,
		}
		zi := z
		za.mon.OutOfCapacity = func(alloc resources.Vector) bool {
			return p.leaseInto(zi, alloc)
		}
		p.zones = append(p.zones, za)
	}
	return p, nil
}

// InstallZoneFaults wires zone-outage / zone-partition windows into every
// arbiter: the injector is keyed by zone index, which only the plane's node→
// zone map can resolve, and a leased node answers for whichever zone it is in
// *now*. No-op (hooks stay nil, hot path untouched) when the config has no
// zone windows.
func (p *Plane) InstallZoneFaults(inj *faults.Injector) {
	if !inj.HasZoneWindows() {
		return
	}
	stats := func(now time.Duration, nodeID string) bool {
		zi, ok := p.zoneOfNode[nodeID]
		return ok && inj.ZoneStatsCut(now, p.zones[zi].name)
	}
	actions := func(now time.Duration, nodeID string) bool {
		zi, ok := p.zoneOfNode[nodeID]
		return ok && inj.ZoneActionsCut(now, p.zones[zi].name)
	}
	for _, z := range p.zones {
		z.mon.StatsCut = stats
		z.mon.ActionsCut = actions
	}
}

// Arbiters returns the zone monitors in zone order, so the platform can
// apply shared configuration (faults, hardening, self-healing, obs) and
// tests can inspect per-zone ledgers.
func (p *Plane) Arbiters() []*Monitor {
	out := make([]*Monitor, len(p.zones))
	for i, z := range p.zones {
		out[i] = z.mon
	}
	return out
}

// ZoneCount returns the number of zones.
func (p *Plane) ZoneCount() int { return len(p.zones) }

// ZoneOfService returns the zone a service was assigned to, or -1.
func (p *Plane) ZoneOfService(name string) int {
	if z, ok := p.zoneOfService[name]; ok {
		return z
	}
	return -1
}

// Cross returns the global allocator's cumulative counters.
func (p *Plane) Cross() CrossZoneCounts { return p.cross }

// ZoneSummaries returns each zone's merged view in zone order.
func (p *Plane) ZoneSummaries() []ZoneSummary {
	out := make([]ZoneSummary, len(p.zones))
	for i, z := range p.zones {
		s := ZoneSummary{
			Zone:           z.idx,
			Nodes:          len(z.view.Nodes()),
			Services:       len(z.services),
			Counts:         z.mon.Counts(),
			Recovery:       z.mon.Recovery(),
			PendingRetries: z.mon.PendingRetries(),
			LeaseFailures:  z.leaseFailures,
			Evacuated:      z.down,
		}
		for _, name := range z.services {
			s.Replicas += z.mon.ReplicaCount(name)
		}
		for _, name := range z.guests {
			s.Replicas += z.mon.ReplicaCount(name)
		}
		out[i] = s
	}
	return out
}

// Evac returns the evacuation / re-adoption counters.
func (p *Plane) Evac() EvacCounts { return p.evac }

// home returns the arbiter owning a service, or nil.
func (p *Plane) home(service string) *zoneArbiter {
	z, ok := p.zoneOfService[service]
	if !ok {
		return nil
	}
	return p.zones[z]
}

// AddService assigns the service to the zone with the fewest services
// (lowest index on ties — round-robin for uniform registration) and
// registers it with that zone's arbiter.
func (p *Plane) AddService(spec workload.ServiceSpec, targetUtil float64) error {
	if _, dup := p.zoneOfService[spec.Name]; dup {
		return fmt.Errorf("monitor: duplicate service %q", spec.Name)
	}
	best := 0
	for i := 1; i < len(p.zones); i++ {
		if len(p.zones[i].services) < len(p.zones[best].services) {
			best = i
		}
	}
	za := p.zones[best]
	if err := za.mon.AddService(spec, targetUtil); err != nil {
		return err
	}
	za.services = append(za.services, spec.Name)
	p.zoneOfService[spec.Name] = best
	return nil
}

// DeployInitial forwards to the service's home arbiter; a full home zone
// leases capacity through the arbiter's OutOfCapacity hook.
func (p *Plane) DeployInitial(service string, now time.Duration) error {
	za := p.home(service)
	if za == nil {
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	return za.mon.DeployInitial(service, now)
}

// StartReplica forwards a pinned placement to the service's home arbiter.
// The pinned node must live in the home zone: zones own their machines
// exclusively, so a cross-zone pin would create a replica its owner cannot
// poll.
func (p *Plane) StartReplica(service, nodeID string, alloc resources.Vector, now time.Duration) error {
	za := p.home(service)
	if za == nil {
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	if z, ok := p.zoneOfNode[nodeID]; !ok || z != za.idx {
		return fmt.Errorf("monitor: node %q is not in service %q's zone %d", nodeID, service, za.idx)
	}
	return za.mon.StartReplica(service, nodeID, alloc, now)
}

// Sample forwards a stats-sampling tick to every zone's node managers.
func (p *Plane) Sample() {
	for _, z := range p.zones {
		z.mon.Sample()
	}
}

// Poll runs one monitoring period across all zones in index order. Before a
// zone decides, the allocator tops up its headroom: algorithms silently skip
// scale-outs when no local node fits, so a starved zone must receive an idle
// machine before Decide runs, not after.
func (p *Plane) Poll(now time.Duration) {
	if p.cfg.Evacuate {
		p.evacTick(now)
	}
	for _, z := range p.zones {
		if len(z.services) > 0 && p.starved(z) {
			p.leaseInto(z.idx, p.cfg.headroom())
		}
		z.mon.Poll(now)
	}
}

// healthyNodes counts the zone's nodes with a clean detector record (never
// missed a poll, ruled healthy).
func (p *Plane) healthyNodes(z *zoneArbiter) int {
	n := 0
	for _, node := range z.view.Nodes() {
		if st := z.mon.nodeStates[node.ID()]; st == nil || (st.missed == 0 && st.health == NodeHealthy) {
			n++
		}
	}
	return n
}

// starved reports whether no node in the zone has at least the configured
// headroom free (dead nodes excluded).
func (p *Plane) starved(z *zoneArbiter) bool {
	need := p.cfg.headroom()
	for _, n := range z.view.Nodes() {
		if z.mon.nodeDead(n.ID()) {
			continue
		}
		if need.FitsIn(n.Available()) {
			return false
		}
	}
	return true
}

// leaseInto moves one idle machine into the starved zone: the donor scan
// picks, across all other zones, the container-free detector-healthy node
// with the most available CPU that fits alloc (first such node on ties, in
// zone/node order), provided its donor keeps at least one *healthy* machine
// afterwards — a donor whose only other nodes are dead or suspect must not
// be drained down to them. Returns whether a machine moved.
func (p *Plane) leaseInto(zi int, alloc resources.Vector) bool {
	var donor *zoneArbiter
	var pick *cluster.Node
	for _, z := range p.zones {
		if z.idx == zi || p.healthyNodes(z) < 2 {
			continue
		}
		for _, n := range z.view.Nodes() {
			if len(n.Containers()) != 0 {
				continue
			}
			if st := z.mon.nodeStates[n.ID()]; st != nil && (st.missed > 0 || st.health != NodeHealthy) {
				// Unreachable machines don't move: the borrower would inherit
				// a node its fresh detector state knows nothing about.
				continue
			}
			if !alloc.FitsIn(n.Available()) {
				continue
			}
			if pick == nil || n.Available().CPU > pick.Available().CPU {
				donor, pick = z, n
			}
		}
	}
	if pick == nil {
		p.cross.LeaseFailures++
		p.zones[zi].leaseFailures++
		return false
	}
	id := pick.ID()
	donor.view.ReleaseNode(id)
	donor.mon.DetachNode(id)
	borrower := p.zones[zi]
	if err := borrower.view.AdoptNode(pick); err != nil {
		return false // unreachable: zones are disjoint
	}
	borrower.mon.AttachNode(pick)
	p.zoneOfNode[id] = zi
	p.cross.NodeLeases++
	return true
}

// Apply routes a plan's actions: scale-outs to the service's home arbiter,
// container-addressed actions to the zone whose view holds the container.
// Used by the manual-scale HTTP endpoint; the periodic loop never crosses
// this path (each arbiter applies its own plans inside Poll).
func (p *Plane) Apply(plan core.Plan, now time.Duration) {
	for _, a := range plan.Actions {
		one := core.Plan{Actions: []core.Action{a}}
		switch act := a.(type) {
		case core.ScaleOut:
			if za := p.home(act.Service); za != nil {
				za.mon.Apply(one, now)
			}
		case core.VerticalScale:
			if za := p.owner(act.ContainerID); za != nil {
				za.mon.Apply(one, now)
			}
		case core.ScaleIn:
			if za := p.owner(act.ContainerID); za != nil {
				za.mon.Apply(one, now)
			}
		}
	}
}

// owner returns the arbiter whose view holds the container, or nil.
func (p *Plane) owner(containerID string) *zoneArbiter {
	for _, z := range p.zones {
		if c, _ := z.view.FindContainer(containerID); c != nil {
			return z
		}
	}
	return nil
}

// MaybeCheckpoint forwards to every arbiter: the control plane crashes and
// checkpoints as a unit.
func (p *Plane) MaybeCheckpoint(now time.Duration) {
	for _, z := range p.zones {
		z.mon.MaybeCheckpoint(now)
	}
}

// Restart restarts every arbiter after a control-plane crash window, each
// from its own checkpoint (or cold).
func (p *Plane) Restart(now time.Duration) {
	for _, z := range p.zones {
		z.mon.Restart(now)
	}
}

// Replicas returns a service's live replicas from its home arbiter.
func (p *Plane) Replicas(service string) []*container.Container {
	return p.AppendReplicas(nil, service)
}

// AppendReplicas appends a service's live replicas from its home arbiter,
// followed by any spillover shards in zone order.
func (p *Plane) AppendReplicas(buf []*container.Container, service string) []*container.Container {
	za := p.home(service)
	if za == nil {
		return buf
	}
	buf = za.mon.AppendReplicas(buf, service)
	for _, zi := range p.spills[service] {
		buf = p.zones[zi].mon.AppendReplicas(buf, service)
	}
	return buf
}

// ReplicaCount returns a service's live replica count across its home
// arbiter and any spillover shards.
func (p *Plane) ReplicaCount(service string) int {
	za := p.home(service)
	if za == nil {
		return 0
	}
	n := za.mon.ReplicaCount(service)
	for _, zi := range p.spills[service] {
		n += p.zones[zi].mon.ReplicaCount(service)
	}
	return n
}

// Counts returns the action counters summed across all zone arbiters.
func (p *Plane) Counts() ActionCounts {
	var out ActionCounts
	for _, z := range p.zones {
		c := z.mon.Counts()
		out.Vertical += c.Vertical
		out.ScaleOuts += c.ScaleOuts
		out.ScaleIns += c.ScaleIns
		out.PlacementFailures += c.PlacementFailures
		out.Retries += c.Retries
		out.AbandonedActions += c.AbandonedActions
		out.StaleSnapshots += c.StaleSnapshots
	}
	return out
}

// Recovery returns the self-healing counters summed across all arbiters.
func (p *Plane) Recovery() RecoveryCounts {
	var out RecoveryCounts
	for _, z := range p.zones {
		r := z.mon.Recovery()
		out.Suspected += r.Suspected
		out.DeclaredDead += r.DeclaredDead
		out.Recovered += r.Recovered
		out.ReplicasLost += r.ReplicasLost
		out.Replaced += r.Replaced
		out.Readopted += r.Readopted
		out.StaleDrained += r.StaleDrained
		out.ReconcileCancelled += r.ReconcileCancelled
		out.CheckpointRestores += r.CheckpointRestores
		out.ColdRestarts += r.ColdRestarts
	}
	return out
}

// NodeConditions concatenates every zone's detector view in zone order.
func (p *Plane) NodeConditions() []NodeCondition {
	var out []NodeCondition
	for _, z := range p.zones {
		out = append(out, z.mon.NodeConditions()...)
	}
	return out
}

// PendingRetries sums the retry-queue depth across all arbiters.
func (p *Plane) PendingRetries() int {
	n := 0
	for _, z := range p.zones {
		n += z.mon.PendingRetries()
	}
	return n
}

// Algorithm returns the shared scaling algorithm.
func (p *Plane) Algorithm() core.Algorithm { return p.algo }

// DetachNode drops a machine from its zone's view and arbiter — the
// out-of-band failure notification used when self-healing is off.
func (p *Plane) DetachNode(nodeID string) {
	z, ok := p.zoneOfNode[nodeID]
	if !ok {
		return
	}
	p.zones[z].view.ReleaseNode(nodeID) // nil when NoteNodeRemoved already ran
	p.zones[z].mon.DetachNode(nodeID)
	delete(p.zoneOfNode, nodeID)
}

// AttachNode assigns a newly added machine to the zone with the fewest nodes
// (lowest index on ties) and registers it with that zone's arbiter.
func (p *Plane) AttachNode(n *cluster.Node) {
	if _, dup := p.zoneOfNode[n.ID()]; dup {
		return
	}
	best := 0
	for i := 1; i < len(p.zones); i++ {
		if len(p.zones[i].view.Nodes()) < len(p.zones[best].view.Nodes()) {
			best = i
		}
	}
	if err := p.zones[best].view.AdoptNode(n); err != nil {
		return
	}
	p.zones[best].mon.AttachNode(n)
	p.zoneOfNode[n.ID()] = best
}

// NoteNodeRemoved mirrors a machine's physical removal into its zone view
// WITHOUT detaching it from the arbiter: the zone's failure detector must
// discover the death through missed polls, exactly as the single monitor
// does when the platform removes a node under self-healing.
func (p *Plane) NoteNodeRemoved(nodeID string) {
	if z, ok := p.zoneOfNode[nodeID]; ok {
		p.zones[z].view.ReleaseNode(nodeID)
	}
}
