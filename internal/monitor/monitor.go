// Package monitor implements the MONITOR of the paper's platform (§V-C): the
// central arbiter that periodically queries every node manager for resource
// statistics, hands the cluster-wide snapshot to the configured autoscaling
// algorithm, and executes the resulting plan — vertical `docker update`s,
// replica scale-outs with container start latency, and replica removals
// (whose in-flight requests become removal failures).
package monitor

import (
	"fmt"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/nodemanager"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

// ActionCounts tallies the scaling operations the Monitor has executed,
// used by the resource-efficiency analyses.
type ActionCounts struct {
	Vertical  uint64
	ScaleOuts uint64
	ScaleIns  uint64
	// PlacementFailures counts scale-outs that could not be executed
	// because the target node no longer fit the allocation.
	PlacementFailures uint64
}

// serviceState tracks a registered microservice.
type serviceState struct {
	spec workload.ServiceSpec
	info core.ServiceInfo
	// replicaIDs lists live container IDs in creation order.
	replicaIDs []string
	nextIdx    int
}

// Monitor is the central arbiter. Single-goroutine, like the rest of the
// simulator.
type Monitor struct {
	cluster *cluster.Cluster
	nms     []*nodemanager.Manager
	nmByID  map[string]*nodemanager.Manager
	algo    core.Algorithm

	services []*serviceState
	byName   map[string]*serviceState

	// StartDelay is the container start latency applied to scale-outs.
	StartDelay time.Duration

	// OnRemovalFailure is invoked for every in-flight request killed by a
	// scale-in. Nil is allowed.
	OnRemovalFailure func(*workload.Request)

	counts ActionCounts
}

// New wires a monitor to the cluster, creating one node manager per node,
// and installs the scaling algorithm.
func New(cl *cluster.Cluster, algo core.Algorithm) *Monitor {
	m := &Monitor{
		cluster:    cl,
		nmByID:     make(map[string]*nodemanager.Manager),
		algo:       algo,
		byName:     make(map[string]*serviceState),
		StartDelay: time.Second,
	}
	for _, n := range cl.Nodes() {
		nm := nodemanager.New(n)
		m.nms = append(m.nms, nm)
		m.nmByID[n.ID()] = nm
	}
	return m
}

// Algorithm returns the installed scaling algorithm.
func (m *Monitor) Algorithm() core.Algorithm { return m.algo }

// Counts returns the cumulative action counters.
func (m *Monitor) Counts() ActionCounts { return m.counts }

// DetachNode drops the node manager of a failed machine so the Monitor
// stops querying it. Call after cluster.RemoveNode. Unknown IDs are a no-op.
func (m *Monitor) DetachNode(nodeID string) {
	if _, ok := m.nmByID[nodeID]; !ok {
		return
	}
	delete(m.nmByID, nodeID)
	for i, nm := range m.nms {
		if nm.NodeID() == nodeID {
			m.nms = append(m.nms[:i], m.nms[i+1:]...)
			break
		}
	}
}

// AttachNode registers a node manager for a newly added machine (the
// paper's future-work item of dynamic machine addition).
func (m *Monitor) AttachNode(n *cluster.Node) {
	if _, dup := m.nmByID[n.ID()]; dup {
		return
	}
	nm := nodemanager.New(n)
	m.nms = append(m.nms, nm)
	m.nmByID[n.ID()] = nm
}

// AddService registers a microservice with its scaling target. No replicas
// are created; call DeployInitial (or let the algorithm's min-replica
// enforcement do it).
func (m *Monitor) AddService(spec workload.ServiceSpec, targetUtil float64) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := m.byName[spec.Name]; dup {
		return fmt.Errorf("monitor: duplicate service %q", spec.Name)
	}
	st := &serviceState{
		spec: spec,
		info: core.ServiceInfo{
			Name:          spec.Name,
			MinReplicas:   spec.MinReplicas,
			MaxReplicas:   spec.MaxReplicas,
			TargetUtil:    targetUtil,
			BaselineMemMB: spec.BaselineMemMB,
			InitialAlloc: resources.Vector{
				CPU:     spec.InitialReplicaCPU,
				MemMB:   spec.InitialReplicaMemMB,
				NetMbps: spec.InitialReplicaNetMbps,
			},
		},
	}
	m.services = append(m.services, st)
	m.byName[spec.Name] = st
	return nil
}

// DeployInitial starts the service's minimum replica count, spreading
// across the least-loaded nodes. Initial deployments are warm: the replicas
// are ready immediately, modelling services already running before the
// experiment's measurement window opens (only autoscaler-initiated
// scale-outs pay the container start latency).
func (m *Monitor) DeployInitial(service string, now time.Duration) error {
	st, ok := m.byName[service]
	if !ok {
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	for len(st.replicaIDs) < st.spec.MinReplicas {
		nodeID := m.leastLoadedNode(st.info.InitialAlloc)
		if nodeID == "" {
			return fmt.Errorf("monitor: no node fits initial replica of %q", service)
		}
		if err := m.startReplicaAt(st, nodeID, st.info.InitialAlloc, now); err != nil {
			return err
		}
	}
	return nil
}

// StartReplica manually starts one replica of the service on the given node
// with the given allocation — used by experiments that pin placement (the
// §III microbenchmarks) and by initial deployments.
func (m *Monitor) StartReplica(service, nodeID string, alloc resources.Vector, now time.Duration) error {
	st, ok := m.byName[service]
	if !ok {
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	return m.startReplica(st, nodeID, alloc, now)
}

// leastLoadedNode returns the node with the most available CPU that fits
// alloc, or "".
func (m *Monitor) leastLoadedNode(alloc resources.Vector) string {
	best := ""
	bestCPU := -1.0
	for _, n := range m.cluster.Nodes() {
		a := n.Available()
		if !alloc.FitsIn(a) {
			continue
		}
		if a.CPU > bestCPU {
			bestCPU = a.CPU
			best = n.ID()
		}
	}
	return best
}

// Replicas returns the live replicas of a service in creation order.
func (m *Monitor) Replicas(service string) []*container.Container {
	st, ok := m.byName[service]
	if !ok {
		return nil
	}
	out := make([]*container.Container, 0, len(st.replicaIDs))
	for _, id := range st.replicaIDs {
		if c, _ := m.cluster.FindContainer(id); c != nil && c.State != container.StateRemoved {
			out = append(out, c)
		}
	}
	return out
}

// Sample forwards a stats-sampling tick to every node manager.
func (m *Monitor) Sample() {
	for _, nm := range m.nms {
		nm.Sample()
	}
}

// Poll executes one monitoring period: query all NMs, build the snapshot,
// ask the algorithm for a plan, and apply it.
func (m *Monitor) Poll(now time.Duration) {
	snap := m.Snapshot(now)
	plan := m.algo.Decide(snap)
	m.Apply(plan, now)
}

// Snapshot assembles the cluster-wide view from NM reports.
func (m *Monitor) Snapshot(now time.Duration) core.Snapshot {
	snap := core.Snapshot{Now: now}

	// One report per node; index container stats for replica lookup.
	statsByID := make(map[string]nodemanager.ContainerStats)
	for _, nm := range m.nms {
		rep := nm.Report()
		ns := core.NodeStats{ID: rep.NodeID, Capacity: rep.Capacity, Available: rep.Available}
		seen := make(map[string]bool)
		for _, cs := range rep.Containers {
			statsByID[cs.ID] = cs
			if !seen[cs.Service] {
				ns.Hosts = append(ns.Hosts, cs.Service)
				seen[cs.Service] = true
			}
		}
		snap.Nodes = append(snap.Nodes, ns)
	}

	for _, st := range m.services {
		ss := core.ServiceStats{Info: st.info}
		live := st.replicaIDs[:0]
		for _, id := range st.replicaIDs {
			c, node := m.cluster.FindContainer(id)
			if c == nil || c.State == container.StateRemoved {
				continue
			}
			live = append(live, id)
			cs, ok := statsByID[id]
			if !ok {
				cs = nodemanager.ContainerStats{ID: id, Service: st.spec.Name, Requested: c.Alloc, Routable: c.Routable()}
			}
			ss.Replicas = append(ss.Replicas, core.ReplicaStats{
				ContainerID: id,
				NodeID:      node.ID(),
				Requested:   cs.Requested,
				Usage:       cs.Usage,
				Routable:    cs.Routable,
			})
		}
		st.replicaIDs = live
		snap.Services = append(snap.Services, ss)
	}
	return snap
}

// Apply executes a plan action-by-action.
func (m *Monitor) Apply(plan core.Plan, now time.Duration) {
	for _, a := range plan.Actions {
		switch act := a.(type) {
		case core.VerticalScale:
			c, _ := m.cluster.FindContainer(act.ContainerID)
			if c == nil || c.State == container.StateRemoved {
				continue
			}
			if nm := m.nmByID[c.NodeID]; nm != nil {
				if err := nm.ApplyVertical(act.ContainerID, act.NewAlloc); err == nil {
					m.counts.Vertical++
				}
			}
		case core.ScaleOut:
			st, ok := m.byName[act.Service]
			if !ok {
				continue
			}
			if err := m.startReplica(st, act.NodeID, act.Alloc, now); err != nil {
				m.counts.PlacementFailures++
				continue
			}
		case core.ScaleIn:
			m.removeReplica(act.ContainerID)
		}
	}
}

func (m *Monitor) startReplica(st *serviceState, nodeID string, alloc resources.Vector, now time.Duration) error {
	// Stateful services pay the state-transfer time on top of the container
	// start latency (§IV-B's motivation for preferring vertical scaling).
	return m.startReplicaWithReady(st, nodeID, alloc, now+m.StartDelay+st.spec.SyncDelay(), false)
}

// startReplicaAt starts a replica that is ready immediately (warm initial
// deployment).
func (m *Monitor) startReplicaAt(st *serviceState, nodeID string, alloc resources.Vector, now time.Duration) error {
	return m.startReplicaWithReady(st, nodeID, alloc, now, true)
}

func (m *Monitor) startReplicaWithReady(st *serviceState, nodeID string, alloc resources.Vector, readyAt time.Duration, warm bool) error {
	node := m.cluster.Node(nodeID)
	if node == nil {
		return fmt.Errorf("monitor: unknown node %q", nodeID)
	}
	id := fmt.Sprintf("%s-%d", st.spec.Name, st.nextIdx)
	st.nextIdx++
	c := container.New(id, st.spec, nodeID, alloc, readyAt)
	if warm {
		c.MaybeStart(readyAt)
	}
	if err := node.AddContainer(c); err != nil {
		return err
	}
	st.replicaIDs = append(st.replicaIDs, id)
	m.counts.ScaleOuts++
	return nil
}

func (m *Monitor) removeReplica(containerID string) {
	_, node := m.cluster.FindContainer(containerID)
	if node == nil {
		return
	}
	killed := node.RemoveContainer(containerID)
	m.counts.ScaleIns++
	if m.OnRemovalFailure != nil {
		for _, r := range killed {
			m.OnRemovalFailure(r)
		}
	}
}
