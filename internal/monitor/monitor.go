// Package monitor implements the MONITOR of the paper's platform (§V-C): the
// central arbiter that periodically queries every node manager for resource
// statistics, hands the cluster-wide snapshot to the configured autoscaling
// algorithm, and executes the resulting plan — vertical `docker update`s,
// replica scale-outs with container start latency, and replica removals
// (whose in-flight requests become removal failures).
//
// The Monitor is hardened against a flaky control plane (see
// internal/faults): failed or faulted actions are retried with capped
// exponential backoff, scale-outs that hit placement failures are requeued
// for the next monitoring period instead of dropped, and when a node
// manager's stats query is lost the Monitor degrades gracefully by scaling
// on its last-known report within a staleness bound.
package monitor

import (
	"fmt"
	"strings"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/nodemanager"
	"hyscale/internal/obs"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

// ActionCounts tallies the scaling operations the Monitor has executed,
// used by the resource-efficiency and resilience analyses.
type ActionCounts struct {
	Vertical  uint64
	ScaleOuts uint64
	ScaleIns  uint64
	// PlacementFailures counts scale-out attempts that could not be
	// executed because the target node no longer fit the allocation.
	PlacementFailures uint64
	// Retries counts re-executed attempts of previously failed actions.
	Retries uint64
	// AbandonedActions counts actions dropped after exhausting their retry
	// budget (or immediately, when hardening is disabled).
	AbandonedActions uint64
	// StaleSnapshots counts node reports served from the last-known cache
	// because the live stats query was lost.
	StaleSnapshots uint64
}

// Hardening configures the Monitor's resilience to control-plane faults.
type Hardening struct {
	// Enabled turns on retry/backoff, placement-failure requeue and
	// stale-snapshot degradation. Disabled reproduces the legacy behaviour:
	// failed actions are dropped and lost stats queries blank the node out
	// of the snapshot.
	Enabled bool
	// RetryBackoffBase is the delay before the first retry; each further
	// retry doubles it.
	RetryBackoffBase time.Duration
	// RetryBackoffMax caps the exponential backoff.
	RetryBackoffMax time.Duration
	// MaxAttempts bounds total executions of one action (first try
	// included) before it is abandoned.
	MaxAttempts int
	// StalenessBound is how old a cached node report may be and still
	// stand in for a lost stats query.
	StalenessBound time.Duration
}

// DefaultHardening returns the default resilience settings: retries start
// one monitor period (5 s) after the failure, back off to 40 s, give up
// after 4 attempts, and snapshots tolerate 15 s (three periods) of
// staleness.
func DefaultHardening() Hardening {
	return Hardening{
		Enabled:          true,
		RetryBackoffBase: 5 * time.Second,
		RetryBackoffMax:  40 * time.Second,
		MaxAttempts:      4,
		StalenessBound:   15 * time.Second,
	}
}

// serviceState tracks a registered microservice.
type serviceState struct {
	spec workload.ServiceSpec
	info core.ServiceInfo
	// replicaIDs lists live container IDs in creation order.
	replicaIDs []string
	nextIdx    int

	// guest marks a cross-zone spillover shard: the service's home arbiter
	// lives in another zone, and this monitor merely hosts a bounded slice
	// of its replicas (see plane evacuation). Guest services are excluded
	// from the snapshot so the local algorithm never scales them; their
	// replicas still serve traffic, count against node capacity, and are
	// covered by the failure detector.
	guest bool

	// holdPolls withholds this service from algorithm decisions for that
	// many polls. A zone readoption re-places every replica at once, so the
	// very next decision would see fresh containers with zero observed
	// usage and trim them to the minimum; one held poll lets real stats
	// arrive first. Reconciler retries are unaffected.
	holdPolls int

	// resolved caches replicaIDs resolved to container pointers, valid
	// while resolvedGen matches Monitor.topoGen. Per-request routing walks
	// this instead of re-resolving IDs through three map lookups each.
	resolved    []*container.Container
	resolvedGen uint64
}

// pendingAction is one queued action awaiting its deadline: a failed action
// backing off, or a reconciler re-placement waiting out its cooldown.
type pendingAction struct {
	action core.Action
	// attempts is the number of executions so far.
	attempts  int
	notBefore time.Duration
	// reconcileNode tags a reconciler re-placement with the dead node it
	// compensates for, so a prompt recovery cancels it (the anti-flap path).
	reconcileNode string
	// lostID names the lost replica this re-placement replaces.
	lostID string
}

// cachedReport is a node manager's last successfully delivered report. The
// Containers slice is owned by this cache entry (copied from the NM's scratch
// report, which is reused every poll) so it can outlive the poll for the
// staleness-degradation and checkpoint paths.
type cachedReport struct {
	rep nodemanager.Report
	at  time.Duration

	// hosts is the deduplicated service list derived from rep.Containers,
	// rebuilt only when the node's container set version moves.
	hosts    []string
	hostsVer uint64
	hostsOK  bool
}

// Monitor is the central arbiter. Single-goroutine, like the rest of the
// simulator.
type Monitor struct {
	cluster *cluster.Cluster
	nms     []*nodemanager.Manager
	nmByID  map[string]*nodemanager.Manager
	algo    core.Algorithm

	services []*serviceState
	byName   map[string]*serviceState

	// held counts services with holdPolls > 0, so the hold machinery costs
	// nothing when idle (always, outside zone readoptions).
	held int

	// StartDelay is the container start latency applied to scale-outs.
	StartDelay time.Duration

	// OnRemovalFailure is invoked for every in-flight request killed by a
	// scale-in. Nil is allowed.
	OnRemovalFailure func(*workload.Request)

	// Faults injects control-plane failures; nil injects nothing.
	Faults *faults.Injector

	// Hardening configures retry/backoff and graceful degradation.
	Hardening Hardening

	// SelfHeal configures the failure detector, desired-state reconciler and
	// checkpoint/restore (see selfheal.go). Zero value: disabled.
	SelfHeal SelfHealing

	// Obs, when non-nil, journals every action attempt with the observed
	// service inputs that motivated it (the decision-trace observability
	// layer). Nil — the default — keeps the hot path untouched.
	Obs *obs.Journal

	// OutOfCapacity, when non-nil, is consulted after a placement finds no
	// fitting node: it may add capacity (the zoned control plane leases an
	// idle machine from another zone) and returns whether it did, in which
	// case the placement is retried once. Nil — the single-arbiter default —
	// leaves every placement path byte-identical to the unsharded monitor.
	OutOfCapacity func(alloc resources.Vector) bool

	// StatsCut / ActionsCut, when non-nil, report an additional sustained
	// blackout of a node's stats answers / control actions beyond what the
	// node-keyed fault injector knows. The zoned control plane installs
	// these so zone-outage and zone-partition windows — keyed by zone index,
	// which only the plane's zone map can resolve — reach the per-zone
	// monitors. Nil (the default) keeps every fault path byte-identical.
	StatsCut   func(now time.Duration, nodeID string) bool
	ActionsCut func(now time.Duration, nodeID string) bool

	retries     []pendingAction
	lastReports map[string]*cachedReport
	// lastObs caches each service's aggregate observed usage from the most
	// recent snapshot, attached to journaled decisions. Only maintained when
	// Obs is set.
	lastObs map[string]obs.ServiceObserved

	// nodeStates is the failure detector's per-node record; replicaHome maps
	// every live replica to its host node; lost is the reconciler's ledger of
	// replicas excised from dead nodes (see selfheal.go).
	nodeStates  map[string]*nodeState
	replicaHome map[string]string
	lost        []lostReplica

	// topoGen versions the replica topology: every scale action, node
	// attach/detach, and self-heal transition bumps it, invalidating the
	// per-service resolved replica caches.
	topoGen uint64

	lastCheckpoint   *checkpoint
	lastCheckpointAt time.Duration

	counts   ActionCounts
	recovery RecoveryCounts

	// Snapshot scratch, reused every poll so the steady-state monitor loop
	// allocates nothing (see Snapshot). The snapshot handed to the algorithm
	// aliases these buffers and is valid until the next Snapshot call — every
	// consumer (Poll → Decide → Apply) runs synchronously inside that window.
	statsByID    map[string]nodemanager.ContainerStats
	seenGen      map[string]uint64
	gen          uint64
	snapNodes    []core.NodeStats
	snapServices []core.ServiceStats
	detachBuf    []string
}

// New wires a monitor to the cluster, creating one node manager per node,
// and installs the scaling algorithm. Hardening defaults on.
func New(cl *cluster.Cluster, algo core.Algorithm) *Monitor {
	m := &Monitor{
		cluster:     cl,
		nmByID:      make(map[string]*nodemanager.Manager),
		algo:        algo,
		byName:      make(map[string]*serviceState),
		StartDelay:  time.Second,
		Hardening:   DefaultHardening(),
		lastReports: make(map[string]*cachedReport),
		lastObs:     make(map[string]obs.ServiceObserved),
		nodeStates:  make(map[string]*nodeState),
		replicaHome: make(map[string]string),
		statsByID:   make(map[string]nodemanager.ContainerStats),
		seenGen:     make(map[string]uint64),
		topoGen:     1, // above the zero resolvedGen, so fresh services resolve
	}
	for _, n := range cl.Nodes() {
		nm := nodemanager.New(n)
		m.nms = append(m.nms, nm)
		m.nmByID[n.ID()] = nm
	}
	return m
}

// Algorithm returns the installed scaling algorithm.
func (m *Monitor) Algorithm() core.Algorithm { return m.algo }

// Counts returns the cumulative action counters.
func (m *Monitor) Counts() ActionCounts { return m.counts }

// PendingRetries returns the number of actions waiting in the retry queue.
func (m *Monitor) PendingRetries() int { return len(m.retries) }

// DetachNode drops the node manager of a failed machine so the Monitor
// stops querying it. Call after cluster.RemoveNode. Unknown IDs are a no-op.
func (m *Monitor) DetachNode(nodeID string) {
	if _, ok := m.nmByID[nodeID]; !ok {
		return
	}
	delete(m.nmByID, nodeID)
	delete(m.lastReports, nodeID)
	delete(m.nodeStates, nodeID)
	for i, nm := range m.nms {
		if nm.NodeID() == nodeID {
			m.nms = append(m.nms[:i], m.nms[i+1:]...)
			break
		}
	}
	m.topoGen++ // cached pointers may reference the departed node's containers
}

// AttachNode registers a node manager for a newly added machine (the
// paper's future-work item of dynamic machine addition).
func (m *Monitor) AttachNode(n *cluster.Node) {
	if _, dup := m.nmByID[n.ID()]; dup {
		return
	}
	nm := nodemanager.New(n)
	m.nms = append(m.nms, nm)
	m.nmByID[n.ID()] = nm
	m.topoGen++ // replicas unfindable while detached may resolve again
}

// AddService registers a microservice with its scaling target. No replicas
// are created; call DeployInitial (or let the algorithm's min-replica
// enforcement do it).
func (m *Monitor) AddService(spec workload.ServiceSpec, targetUtil float64) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := m.byName[spec.Name]; dup {
		return fmt.Errorf("monitor: duplicate service %q", spec.Name)
	}
	st := &serviceState{
		spec: spec,
		info: core.ServiceInfo{
			Name:          spec.Name,
			MinReplicas:   spec.MinReplicas,
			MaxReplicas:   spec.MaxReplicas,
			TargetUtil:    targetUtil,
			BaselineMemMB: spec.BaselineMemMB,
			InitialAlloc: resources.Vector{
				CPU:     spec.InitialReplicaCPU,
				MemMB:   spec.InitialReplicaMemMB,
				NetMbps: spec.InitialReplicaNetMbps,
			},
		},
	}
	m.services = append(m.services, st)
	m.byName[spec.Name] = st
	return nil
}

// DeployInitial starts the service's minimum replica count, spreading
// across the least-loaded nodes. Initial deployments are warm: the replicas
// are ready immediately, modelling services already running before the
// experiment's measurement window opens (only autoscaler-initiated
// scale-outs pay the container start latency, and only those see injected
// faults).
func (m *Monitor) DeployInitial(service string, now time.Duration) error {
	st, ok := m.byName[service]
	if !ok {
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	for len(st.replicaIDs) < st.spec.MinReplicas {
		nodeID := m.leastLoadedNode(st.info.InitialAlloc)
		if nodeID == "" && m.OutOfCapacity != nil && m.OutOfCapacity(st.info.InitialAlloc) {
			nodeID = m.leastLoadedNode(st.info.InitialAlloc)
		}
		if nodeID == "" {
			return fmt.Errorf("monitor: no node fits initial replica of %q", service)
		}
		if err := m.startReplicaAt(st, nodeID, st.info.InitialAlloc, now); err != nil {
			return err
		}
	}
	return nil
}

// StartReplica manually starts one replica of the service on the given node
// with the given allocation — used by experiments that pin placement (the
// §III microbenchmarks) and by initial deployments.
func (m *Monitor) StartReplica(service, nodeID string, alloc resources.Vector, now time.Duration) error {
	st, ok := m.byName[service]
	if !ok {
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	return m.startReplica(st, nodeID, alloc, now, 0)
}

// leastLoadedNode returns the node with the most available CPU that fits
// alloc, or "".
func (m *Monitor) leastLoadedNode(alloc resources.Vector) string {
	best := ""
	bestCPU := -1.0
	for _, n := range m.cluster.Nodes() {
		if m.nodeDead(n.ID()) {
			// Never place onto a node the failure detector has ruled dead,
			// even if it still appears in the cluster (partitioned).
			continue
		}
		a := n.Available()
		if !alloc.FitsIn(a) {
			continue
		}
		if a.CPU > bestCPU {
			bestCPU = a.CPU
			best = n.ID()
		}
	}
	return best
}

// Replicas returns the live replicas of a service in creation order. It
// allocates a fresh slice the caller may keep; hot paths that route every
// request should use AppendReplicas with a reusable buffer instead.
func (m *Monitor) Replicas(service string) []*container.Container {
	return m.AppendReplicas(nil, service)
}

// AppendReplicas appends the live replicas of a service, in creation order,
// to buf and returns the extended slice — the zero-allocation variant of
// Replicas for per-request routing.
func (m *Monitor) AppendReplicas(buf []*container.Container, service string) []*container.Container {
	st, ok := m.byName[service]
	if !ok {
		return buf
	}
	for _, c := range m.resolvedFor(st) {
		if c.State != container.StateRemoved {
			buf = append(buf, c)
		}
	}
	return buf
}

// ReplicaCount returns the number of live replicas of a service without
// materialising the slice.
func (m *Monitor) ReplicaCount(service string) int {
	st, ok := m.byName[service]
	if !ok {
		return 0
	}
	n := 0
	for _, c := range m.resolvedFor(st) {
		if c.State != container.StateRemoved {
			n++
		}
	}
	return n
}

// resolvedFor returns st's replicas as container pointers, in creation
// order, rebuilding the cache after any topology change. The State filter
// stays with the callers: a replica removed by a scale-in flips to
// StateRemoved without a topology bump, and the pointer check is free.
func (m *Monitor) resolvedFor(st *serviceState) []*container.Container {
	if st.resolvedGen != m.topoGen {
		st.resolved = st.resolved[:0]
		for _, id := range st.replicaIDs {
			if c, _ := m.findReplica(id); c != nil {
				st.resolved = append(st.resolved, c)
			}
		}
		st.resolvedGen = m.topoGen
	}
	return st.resolved
}

// Sample forwards a stats-sampling tick to every node manager.
func (m *Monitor) Sample() {
	for _, nm := range m.nms {
		nm.Sample()
	}
}

// Poll executes one monitoring period: re-attempt due retries, query all
// NMs, build the snapshot, ask the algorithm for a plan, and apply it.
// Retries run before the snapshot so replicas they start are visible to the
// algorithm and not double-provisioned.
func (m *Monitor) Poll(now time.Duration) {
	m.drainRetries(now)
	snap := m.Snapshot(now)
	plan := m.algo.Decide(snap)
	m.Apply(plan, now)
	m.releaseHolds()
}

// releaseHolds ticks down per-service decision holds after a poll's plan was
// applied. No-op unless a zone readoption set one this period.
func (m *Monitor) releaseHolds() {
	if m.held == 0 {
		return
	}
	for _, st := range m.services {
		if st.holdPolls > 0 {
			st.holdPolls--
			if st.holdPolls == 0 {
				m.held--
			}
		}
	}
}

// drainRetries re-executes every pending action whose backoff deadline has
// passed, in the order the failures occurred.
func (m *Monitor) drainRetries(now time.Duration) {
	if len(m.retries) == 0 {
		return
	}
	var due []pendingAction
	kept := m.retries[:0]
	for _, p := range m.retries {
		if p.notBefore <= now {
			due = append(due, p)
		} else {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(m.retries); i++ {
		m.retries[i] = pendingAction{}
	}
	m.retries = kept
	for _, p := range due {
		// Reconciler re-placements enter the queue before any execution, so
		// their first run is not a retry.
		if p.attempts > 0 {
			m.counts.Retries++
		}
		m.execute(p, now)
	}
}

// Snapshot assembles the cluster-wide view from NM reports. A report whose
// stats query was dropped is replaced by the node's last-known report when
// hardening allows (within StalenessBound); otherwise the node is absent
// from the snapshot this period, exactly as if its manager were offline.
//
// The returned snapshot aliases per-Monitor scratch buffers: it is valid
// until the next Snapshot call, which is exactly the Poll→Decide→Apply
// window. In steady state (no container churn, no faults) assembling it
// allocates nothing — maps are cleared and slices resliced, never remade.
func (m *Monitor) Snapshot(now time.Duration) core.Snapshot {
	snap := core.Snapshot{Now: now}

	// One report per node; index container stats for replica lookup.
	clear(m.statsByID)
	m.snapNodes = m.snapNodes[:0]
	m.snapServices = m.snapServices[:0]
	for _, nm := range m.nms {
		id := nm.NodeID()
		node := m.cluster.Node(id)
		if node == nil {
			// The machine is gone from the cluster entirely: no cached
			// report can stand in for a node that hosts nothing. The
			// detector accrues the miss; once it rules the node dead the
			// reconciler takes over (legacy runs detach such nodes
			// out-of-band and never reach here).
			nm.NoteMissedQuery()
			m.noteMissedPoll(id, now)
			continue
		}
		var cached *cachedReport
		if m.Faults.StatsDropped(now, id) || m.Faults.StatsBlackout(now, id) ||
			(m.StatsCut != nil && m.StatsCut(now, id)) {
			nm.NoteMissedQuery()
			m.noteMissedPoll(id, now)
			cached = m.lastReports[id]
			if !m.Hardening.Enabled || cached == nil || now-cached.at > m.Hardening.StalenessBound {
				// No usable data: the node vanishes from this snapshot.
				continue
			}
			m.counts.StaleSnapshots++
		} else {
			rep := nm.Report()
			cached = m.lastReports[id]
			if cached == nil {
				cached = &cachedReport{}
				m.lastReports[id] = cached
			}
			// Copy into the cache's own buffer: the NM reuses its report
			// slice next poll, while this cache must survive for the
			// staleness-degradation and checkpoint paths.
			cached.rep.NodeID = rep.NodeID
			cached.rep.Capacity = rep.Capacity
			cached.rep.Available = rep.Available
			cached.rep.Containers = append(cached.rep.Containers[:0], rep.Containers...)
			cached.at = now
			m.notePollOK(id, now)
		}
		for _, cs := range cached.rep.Containers {
			m.statsByID[cs.ID] = cs
		}
		// The deduplicated hosts list only changes when containers are placed
		// or removed; key it on the node's version so unchanged nodes skip
		// the rebuild entirely.
		if v := node.Version(); !cached.hostsOK || cached.hostsVer != v {
			cached.hosts = cached.hosts[:0]
			m.gen++
			for _, cs := range cached.rep.Containers {
				if m.seenGen[cs.Service] != m.gen {
					m.seenGen[cs.Service] = m.gen
					cached.hosts = append(cached.hosts, cs.Service)
				}
			}
			cached.hostsVer = v
			cached.hostsOK = true
		}
		ns := growNodeStats(&m.snapNodes)
		ns.ID = cached.rep.NodeID
		ns.Capacity = cached.rep.Capacity
		ns.Available = cached.rep.Available
		ns.Hosts = append(ns.Hosts[:0], cached.hosts...)
	}
	snap.Nodes = m.snapNodes

	// A node both ruled dead and gone from the cluster can never answer
	// under this identity again; stop tracking it. Done outside the node
	// loop so the slice is not mutated mid-iteration.
	if m.SelfHeal.Enabled {
		detach := m.detachBuf[:0]
		for _, nm := range m.nms {
			if id := nm.NodeID(); m.nodeDead(id) && m.cluster.Node(id) == nil {
				detach = append(detach, id)
			}
		}
		m.detachBuf = detach
		for _, id := range detach {
			m.DetachNode(id)
		}
	}

	for _, st := range m.services {
		if st.guest {
			// Spillover shards are not this zone's to scale: keep them out
			// of the snapshot so the algorithm neither grows nor shrinks
			// them. Their capacity still shows in the node stats above.
			continue
		}
		ss := growServiceStats(&m.snapServices)
		ss.Info = st.info
		ss.Replicas = ss.Replicas[:0]
		live := st.replicaIDs[:0]
		for _, id := range st.replicaIDs {
			c, node := m.findReplica(id)
			if c == nil || c.State == container.StateRemoved {
				// A replica that vanished with an unreachable-but-undecided
				// node stays in the snapshot on last-known data, so the
				// algorithm does not double-provision before the detector
				// rules the node dead or recovered.
				if home := m.limboHome(id); home != "" {
					live = append(live, id)
					ss.Replicas = append(ss.Replicas, m.lastKnownReplica(id, home, st))
				} else {
					delete(m.replicaHome, id)
				}
				continue
			}
			live = append(live, id)
			cs, ok := m.statsByID[id]
			if !ok {
				cs = nodemanager.ContainerStats{ID: id, Service: st.spec.Name, Requested: c.Alloc, Routable: c.Routable()}
			}
			ss.Replicas = append(ss.Replicas, core.ReplicaStats{
				ContainerID: id,
				NodeID:      node.ID(),
				Requested:   cs.Requested,
				Usage:       cs.Usage,
				Routable:    cs.Routable,
				Inflight:    cs.Inflight,
			})
		}
		if len(live) != len(st.replicaIDs) {
			m.topoGen++ // pruned vanished replicas from the desired set
		}
		st.replicaIDs = live
		if m.Obs != nil {
			ob := obs.ServiceObserved{Replicas: len(ss.Replicas)}
			for _, r := range ss.Replicas {
				ob.CPU += r.Usage.CPU
				ob.MemMB += r.Usage.MemMB
				ob.NetMbps += r.Usage.NetMbps
				ob.RequestedCPU += r.Requested.CPU
			}
			m.lastObs[st.spec.Name] = ob
		}
	}
	snap.Services = m.snapServices
	return snap
}

// growNodeStats extends s by one entry, recycling the backing array (and the
// recycled entry's Hosts buffer) when capacity allows — the trick that keeps
// nested snapshot slices allocation-free across polls.
func growNodeStats(s *[]core.NodeStats) *core.NodeStats {
	if cap(*s) > len(*s) {
		*s = (*s)[:len(*s)+1]
	} else {
		*s = append(*s, core.NodeStats{})
	}
	return &(*s)[len(*s)-1]
}

// growServiceStats is growNodeStats for the services slice, preserving each
// recycled entry's Replicas buffer.
func growServiceStats(s *[]core.ServiceStats) *core.ServiceStats {
	if cap(*s) > len(*s) {
		*s = (*s)[:len(*s)+1]
	} else {
		*s = append(*s, core.ServiceStats{})
	}
	return &(*s)[len(*s)-1]
}

// findReplica resolves a live replica ID to its container and host node in
// O(1) via the replicaHome index, falling back to the cluster-wide scan only
// when the index is stale (e.g. a checkpoint restored across topology
// changes). The fallback keeps behaviour identical to the original
// FindContainer-based lookup.
func (m *Monitor) findReplica(id string) (*container.Container, *cluster.Node) {
	if home, ok := m.replicaHome[id]; ok {
		if n := m.cluster.Node(home); n != nil {
			if c := n.Container(id); c != nil {
				return c, n
			}
		}
	}
	return m.cluster.FindContainer(id)
}

// serviceOfContainer maps a container ID back to its service, falling back
// to the "<service>-<idx>" naming convention when the container is already
// gone from the cluster.
func (m *Monitor) serviceOfContainer(id string) string {
	if c, _ := m.cluster.FindContainer(id); c != nil {
		return c.Service
	}
	if i := strings.LastIndex(id, "-"); i > 0 {
		return id[:i]
	}
	return id
}

// observe journals one action attempt with its outcome and the observed
// inputs from the snapshot that motivated it. createdID names the replica a
// successful scale-out started. No-op unless Obs is set.
func (m *Monitor) observe(a core.Action, now time.Duration, attempt int, outcome obs.Outcome, createdID string) {
	if m.Obs == nil {
		return
	}
	d := obs.Decision{At: now, Attempt: attempt, Outcome: outcome}
	switch act := a.(type) {
	case core.VerticalScale:
		d.Kind = obs.KindVertical
		d.Container = act.ContainerID
		d.Alloc = act.NewAlloc
		d.Service = m.serviceOfContainer(act.ContainerID)
		if c, _ := m.cluster.FindContainer(act.ContainerID); c != nil {
			d.Node = c.NodeID
		}
	case core.ScaleOut:
		d.Kind = obs.KindScaleOut
		d.Service = act.Service
		d.Node = act.NodeID
		d.Alloc = act.Alloc
		d.Container = createdID
	case core.ScaleIn:
		d.Kind = obs.KindScaleIn
		d.Container = act.ContainerID
		d.Service = m.serviceOfContainer(act.ContainerID)
		if c, _ := m.cluster.FindContainer(act.ContainerID); c != nil {
			d.Node = c.NodeID
		}
	}
	d.Observed = m.lastObs[d.Service]
	m.Obs.Decision(d)
}

// Apply executes a plan action-by-action. Actions against services under a
// decision hold (freshly readopted, see serviceState.holdPolls) are dropped:
// the algorithm decided off zero-usage stats for replicas placed this very
// period.
func (m *Monitor) Apply(plan core.Plan, now time.Duration) {
	for _, a := range plan.Actions {
		if m.held > 0 {
			if st := m.byName[m.actionService(a)]; st != nil && st.holdPolls > 0 {
				continue
			}
		}
		m.execute(pendingAction{action: a}, now)
	}
}

// actionService resolves the service an action targets.
func (m *Monitor) actionService(a core.Action) string {
	switch act := a.(type) {
	case core.ScaleOut:
		return act.Service
	case core.ScaleIn:
		return m.serviceOfContainer(act.ContainerID)
	case core.VerticalScale:
		return m.serviceOfContainer(act.ContainerID)
	}
	return ""
}

// actionsCut reports whether control actions towards nodeID are black-holed
// at now — by a node-keyed partition window or by the plane-installed
// zone-fault hook.
func (m *Monitor) actionsCut(now time.Duration, nodeID string) bool {
	return m.Faults.ActionBlackout(now, nodeID) ||
		(m.ActionsCut != nil && m.ActionsCut(now, nodeID))
}

// execute runs one attempt of a queued action; p.attempts counts prior
// executions. Faulted, black-holed or placement-failed attempts are requeued
// with backoff (when hardening is enabled) or abandoned.
func (m *Monitor) execute(p pendingAction, now time.Duration) {
	a := p.action
	switch act := a.(type) {
	case core.VerticalScale:
		c, _ := m.cluster.FindContainer(act.ContainerID)
		if c == nil || c.State == container.StateRemoved {
			m.observe(a, now, p.attempts, obs.OutcomeMoot, "")
			return // target gone; the action is moot, not failed
		}
		nm := m.nmByID[c.NodeID]
		if nm == nil {
			m.observe(a, now, p.attempts, obs.OutcomeMoot, "")
			return
		}
		if m.actionsCut(now, c.NodeID) || m.Faults.VerticalFails(now, act.ContainerID) {
			m.observe(a, now, p.attempts, m.requeue(p, now), "")
			return
		}
		if err := nm.ApplyVertical(act.ContainerID, act.NewAlloc); err == nil {
			m.counts.Vertical++
			m.observe(a, now, p.attempts, obs.OutcomeApplied, "")
		} else {
			m.observe(a, now, p.attempts, obs.OutcomeRejected, "")
		}
	case core.ScaleOut:
		st, ok := m.byName[act.Service]
		if !ok {
			return
		}
		// A queued scale-out (retry or reconciler re-placement) may have
		// been overtaken by the algorithm's own fresh decisions; never push
		// past the replica ceiling.
		if (p.attempts > 0 || p.lostID != "") && len(m.Replicas(act.Service)) >= st.spec.MaxReplicas {
			if p.lostID != "" {
				// The ceiling already covers the lost capacity; treat the
				// original as superseded so a recovery drains it.
				m.finishLost(p.lostID)
			}
			m.observe(a, now, p.attempts, obs.OutcomeOvertaken, "")
			return
		}
		// Reconciler re-placements carry no node: resolve against live
		// capacity at execution time, not at enqueue time.
		if act.NodeID == "" {
			act.NodeID = m.leastLoadedNode(act.Alloc)
			if act.NodeID == "" && m.OutOfCapacity != nil && m.OutOfCapacity(act.Alloc) {
				act.NodeID = m.leastLoadedNode(act.Alloc)
			}
			a = act
			if act.NodeID == "" {
				m.counts.PlacementFailures++
				m.observe(a, now, p.attempts, m.requeue(p, now), "")
				return
			}
		}
		if m.actionsCut(now, act.NodeID) {
			m.observe(a, now, p.attempts, m.requeue(p, now), "")
			return
		}
		key := fmt.Sprintf("%s/%d", act.Service, st.nextIdx)
		fail, slowBy := m.Faults.StartFault(now, key)
		if fail {
			m.observe(a, now, p.attempts, m.requeue(p, now), "")
			return
		}
		err := m.startReplica(st, act.NodeID, act.Alloc, now, slowBy)
		if err != nil && p.attempts > 0 {
			// The originally chosen node filled up while the action waited;
			// fall back to the best currently fitting node.
			if alt := m.leastLoadedNode(act.Alloc); alt != "" && alt != act.NodeID {
				act.NodeID = alt
				a = act
				err = m.startReplica(st, alt, act.Alloc, now, slowBy)
			}
		}
		if err != nil && m.OutOfCapacity != nil && m.OutOfCapacity(act.Alloc) {
			if alt := m.leastLoadedNode(act.Alloc); alt != "" && alt != act.NodeID {
				act.NodeID = alt
				a = act
				err = m.startReplica(st, alt, act.Alloc, now, slowBy)
			}
		}
		if err != nil {
			m.counts.PlacementFailures++
			m.observe(a, now, p.attempts, m.requeue(p, now), "")
		} else {
			created := st.replicaIDs[len(st.replicaIDs)-1]
			if p.lostID != "" {
				m.finishLost(p.lostID)
				m.recovery.Replaced++
				m.event(now, obs.EventReplicaReplaced, act.NodeID, act.Service, created, "replaces "+p.lostID)
			}
			m.observe(a, now, p.attempts, obs.OutcomeApplied, created)
		}
	case core.ScaleIn:
		_, node := m.cluster.FindContainer(act.ContainerID)
		if node == nil {
			m.observe(a, now, p.attempts, obs.OutcomeMoot, "")
			return
		}
		if m.actionsCut(now, node.ID()) {
			m.observe(a, now, p.attempts, m.requeue(p, now), "")
			return
		}
		m.observe(a, now, p.attempts, obs.OutcomeApplied, "")
		m.removeReplica(act.ContainerID)
	}
}

// requeue schedules another attempt of a failed action with capped
// exponential backoff, returning OutcomeRequeued — or abandons it and
// returns OutcomeAbandoned when the budget is spent (or hardening is off).
// Reconcile tags (reconcileNode, lostID) survive the requeue, so a recovery
// can still cancel the re-placement mid-backoff.
func (m *Monitor) requeue(p pendingAction, now time.Duration) obs.Outcome {
	executed := p.attempts + 1
	if !m.Hardening.Enabled || executed >= m.Hardening.MaxAttempts {
		m.counts.AbandonedActions++
		return obs.OutcomeAbandoned
	}
	backoff := m.Hardening.RetryBackoffBase
	for i := 1; i < executed; i++ {
		backoff *= 2
		if backoff >= m.Hardening.RetryBackoffMax {
			backoff = m.Hardening.RetryBackoffMax
			break
		}
	}
	if backoff > m.Hardening.RetryBackoffMax {
		backoff = m.Hardening.RetryBackoffMax
	}
	p.attempts = executed
	p.notBefore = now + backoff
	m.retries = append(m.retries, p)
	return obs.OutcomeRequeued
}

func (m *Monitor) startReplica(st *serviceState, nodeID string, alloc resources.Vector, now time.Duration, slowBy time.Duration) error {
	// Stateful services pay the state-transfer time on top of the container
	// start latency (§IV-B's motivation for preferring vertical scaling);
	// injected slow starts stretch readiness further.
	return m.startReplicaWithReady(st, nodeID, alloc, now+m.StartDelay+st.spec.SyncDelay()+slowBy, false)
}

// startReplicaAt starts a replica that is ready immediately (warm initial
// deployment).
func (m *Monitor) startReplicaAt(st *serviceState, nodeID string, alloc resources.Vector, now time.Duration) error {
	return m.startReplicaWithReady(st, nodeID, alloc, now, true)
}

func (m *Monitor) startReplicaWithReady(st *serviceState, nodeID string, alloc resources.Vector, readyAt time.Duration, warm bool) error {
	node := m.cluster.Node(nodeID)
	if node == nil {
		return fmt.Errorf("monitor: unknown node %q", nodeID)
	}
	id := fmt.Sprintf("%s-%d", st.spec.Name, st.nextIdx)
	st.nextIdx++
	c := container.New(id, st.spec, nodeID, alloc, readyAt)
	if warm {
		c.MaybeStart(readyAt)
	}
	if err := node.AddContainer(c); err != nil {
		st.nextIdx-- // the slot was never used; keep IDs dense
		return err
	}
	st.replicaIDs = append(st.replicaIDs, id)
	m.replicaHome[id] = nodeID
	m.topoGen++
	m.counts.ScaleOuts++
	return nil
}

func (m *Monitor) removeReplica(containerID string) {
	_, node := m.cluster.FindContainer(containerID)
	if node == nil {
		return
	}
	killed := node.RemoveContainer(containerID)
	delete(m.replicaHome, containerID)
	m.counts.ScaleIns++
	if m.OnRemovalFailure != nil {
		for _, r := range killed {
			m.OnRemovalFailure(r)
		}
	}
}
