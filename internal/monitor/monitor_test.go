package monitor

import (
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

func spec(name string) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: workload.KindCPUBound,
		CPUPerRequest: 0.1, MemPerRequest: 10, BaselineMemMB: 100,
		InitialReplicaCPU: 1, InitialReplicaMemMB: 512,
		MinReplicas: 2, MaxReplicas: 6, Timeout: 30 * time.Second,
	}
}

// recordingAlgo returns a fixed plan and captures the snapshots it saw.
type recordingAlgo struct {
	plan  core.Plan
	snaps []core.Snapshot
}

func (r *recordingAlgo) Name() string { return "recording" }
func (r *recordingAlgo) Decide(s core.Snapshot) core.Plan {
	r.snaps = append(r.snaps, s)
	return r.plan
}

func setup(t *testing.T, algo core.Algorithm) (*cluster.Cluster, *Monitor) {
	t.Helper()
	cl, err := cluster.NewHomogeneous(3, cluster.DefaultNodeConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if algo == nil {
		algo = &recordingAlgo{}
	}
	return cl, New(cl, algo)
}

func TestAddServiceValidation(t *testing.T) {
	_, m := setup(t, nil)
	if err := m.AddService(spec("a"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.AddService(spec("a"), 0.5); err == nil {
		t.Error("duplicate service accepted")
	}
	bad := spec("b")
	bad.MinReplicas = 0
	if err := m.AddService(bad, 0.5); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestDeployInitialSpreadsReplicas(t *testing.T) {
	_, m := setup(t, nil)
	if err := m.AddService(spec("a"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.DeployInitial("a", 0); err != nil {
		t.Fatal(err)
	}
	reps := m.Replicas("a")
	if len(reps) != 2 {
		t.Fatalf("replicas = %d, want MinReplicas=2", len(reps))
	}
	if reps[0].NodeID == reps[1].NodeID {
		t.Error("replicas not spread across nodes")
	}
	if err := m.DeployInitial("nope", 0); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestInitialDeploymentIsWarm(t *testing.T) {
	_, m := setup(t, nil)
	m.StartDelay = 2 * time.Second
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	for _, r := range m.Replicas("a") {
		if !r.Routable() {
			t.Error("initial replica not warm")
		}
	}
}

func TestScaleOutReplicasPayStartDelay(t *testing.T) {
	cl, m := setup(t, nil)
	m.StartDelay = 2 * time.Second
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-2", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)
	algo.plan = core.Plan{}

	fresh := m.Replicas("a")[2]
	if fresh.Routable() {
		t.Error("scale-out replica routable before start delay")
	}
	cl.Advance(12*time.Second, 100*time.Millisecond)
	if !fresh.Routable() {
		t.Error("scale-out replica not routable after start delay")
	}
}

func TestSnapshotStructure(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond) // start replicas
	m.Sample()

	snap := m.Snapshot(5 * time.Second)
	if snap.Now != 5*time.Second {
		t.Errorf("Now = %v", snap.Now)
	}
	if len(snap.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(snap.Nodes))
	}
	if len(snap.Services) != 1 {
		t.Fatalf("services = %d, want 1", len(snap.Services))
	}
	svc := snap.Services[0]
	if svc.Info.Name != "a" || svc.Info.TargetUtil != 0.5 || svc.Info.MinReplicas != 2 {
		t.Errorf("info = %+v", svc.Info)
	}
	if len(svc.Replicas) != 2 {
		t.Fatalf("replicas = %d", len(svc.Replicas))
	}
	for _, r := range svc.Replicas {
		if r.Requested.CPU != 1 || !r.Routable || r.NodeID == "" {
			t.Errorf("replica stats wrong: %+v", r)
		}
	}
	// Hosting nodes advertise the service.
	hosting := 0
	for _, n := range snap.Nodes {
		if n.HostsService("a") {
			hosting++
		}
	}
	if hosting != 2 {
		t.Errorf("hosting nodes = %d, want 2", hosting)
	}
}

func TestPollAppliesPlan(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	rep := m.Replicas("a")[0]
	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.VerticalScale{ContainerID: rep.ID, NewAlloc: resources.Vector{CPU: 2.5, MemMB: 600}},
		core.ScaleOut{Service: "a", NodeID: "node-2", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)

	if rep.Alloc.CPU != 2.5 {
		t.Errorf("vertical not applied: %v", rep.Alloc)
	}
	if got := len(m.Replicas("a")); got != 3 {
		t.Errorf("replicas = %d after scale-out, want 3", got)
	}
	counts := m.Counts()
	if counts.Vertical != 1 || counts.ScaleOuts != 3 { // 2 initial + 1
		t.Errorf("counts = %+v", counts)
	}
}

func TestScaleInReportsRemovalFailures(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	var killed []*workload.Request
	m.OnRemovalFailure = func(r *workload.Request) { killed = append(killed, r) }

	victim := m.Replicas("a")[0]
	victim.Enqueue(workload.NewRequest(1, spec("a"), 0))
	victim.Enqueue(workload.NewRequest(2, spec("a"), 0))

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{core.ScaleIn{ContainerID: victim.ID}}}
	m.Poll(10 * time.Second)

	if len(killed) != 2 {
		t.Errorf("removal failures = %d, want 2", len(killed))
	}
	if got := len(m.Replicas("a")); got != 1 {
		t.Errorf("replicas = %d, want 1", got)
	}
	if m.Counts().ScaleIns != 1 {
		t.Errorf("ScaleIns = %d", m.Counts().ScaleIns)
	}
}

func TestApplyIgnoresBogusActions(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.VerticalScale{ContainerID: "ghost", NewAlloc: resources.Vector{CPU: 1}},
		core.ScaleOut{Service: "ghost", NodeID: "node-0", Alloc: resources.Vector{CPU: 1, MemMB: 10}},
		core.ScaleOut{Service: "a", NodeID: "ghost-node", Alloc: resources.Vector{CPU: 1, MemMB: 10}},
		core.ScaleIn{ContainerID: "ghost"},
	}}
	m.Poll(10 * time.Second) // must not panic
	if m.Counts().PlacementFailures != 1 {
		t.Errorf("PlacementFailures = %d, want 1 (unknown node)", m.Counts().PlacementFailures)
	}
}

func TestSnapshotDropsRemovedReplicas(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	victim := m.Replicas("a")[1]
	_, node := cl.FindContainer(victim.ID)
	node.RemoveContainer(victim.ID)

	snap := m.Snapshot(5 * time.Second)
	if got := len(snap.Services[0].Replicas); got != 1 {
		t.Errorf("snapshot replicas = %d, want 1", got)
	}
}

func TestStartReplicaManualPlacement(t *testing.T) {
	_, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	if err := m.StartReplica("a", "node-1", resources.Vector{CPU: 0.5, MemMB: 256}, 0); err != nil {
		t.Fatal(err)
	}
	reps := m.Replicas("a")
	if len(reps) != 1 || reps[0].NodeID != "node-1" || reps[0].Alloc.CPU != 0.5 {
		t.Errorf("manual placement wrong: %+v", reps)
	}
	if err := m.StartReplica("nope", "node-1", resources.Vector{CPU: 1, MemMB: 1}, 0); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestReplicaIDsAreUniqueAcrossRestart(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	first := m.Replicas("a")[0].ID
	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{core.ScaleIn{ContainerID: first}}}
	m.Poll(5 * time.Second)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-0", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)

	seen := make(map[string]bool)
	for _, r := range m.Replicas("a") {
		if seen[r.ID] {
			t.Fatalf("duplicate replica ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.ID == first {
			t.Fatalf("replica ID %s reused", first)
		}
	}
}

func TestSnapshotUsageComesFromSamples(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)

	rep := m.Replicas("a")[0]
	rep.SetLastUsage(container.Usage{CPU: 0.7, MemMB: 200})
	m.Sample()

	snap := m.Snapshot(5 * time.Second)
	found := false
	for _, r := range snap.Services[0].Replicas {
		if r.ContainerID == rep.ID {
			found = true
			if r.Usage.CPU != 0.7 {
				t.Errorf("usage = %v, want 0.7", r.Usage.CPU)
			}
		}
	}
	if !found {
		t.Fatal("replica missing from snapshot")
	}
}

func TestStatefulScaleOutPaysSyncDelay(t *testing.T) {
	_, m := setup(t, nil)
	m.StartDelay = time.Second
	stateful := spec("a")
	stateful.StateSyncMB = 250 // 10s at 200 Mbps
	_ = m.AddService(stateful, 0.5)
	_ = m.DeployInitial("a", 0) // warm, no delay

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-2", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(0)

	fresh := m.Replicas("a")[2]
	// ReadyAt = start delay (1s) + sync (10s).
	if fresh.ReadyAt != 11*time.Second {
		t.Errorf("ReadyAt = %v, want 11s (start delay + state sync)", fresh.ReadyAt)
	}
}

func TestDetachAttachNode(t *testing.T) {
	cl, m := setup(t, nil)
	before := len(m.Snapshot(0).Nodes)
	m.DetachNode("node-2")
	if got := len(m.Snapshot(0).Nodes); got != before-1 {
		t.Errorf("nodes after detach = %d, want %d", got, before-1)
	}
	m.DetachNode("ghost") // no-op
	m.AttachNode(cl.Node("node-2"))
	if got := len(m.Snapshot(0).Nodes); got != before {
		t.Errorf("nodes after attach = %d, want %d", got, before)
	}
	m.AttachNode(cl.Node("node-2")) // duplicate: no-op
	if got := len(m.Snapshot(0).Nodes); got != before {
		t.Errorf("nodes after duplicate attach = %d", got)
	}
}
