package monitor

import (
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/core"
	"hyscale/internal/faults"
	"hyscale/internal/resources"
)

// healSetup is setup() with the self-healing control plane enabled and one
// deployed service (MinReplicas=2 spread over node-0/node-1).
func healSetup(t *testing.T) (*cluster.Cluster, *Monitor) {
	t.Helper()
	cl, m := setup(t, nil)
	m.SelfHeal = DefaultSelfHealing()
	if err := m.AddService(spec("a"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.DeployInitial("a", 0); err != nil {
		t.Fatal(err)
	}
	cl.Advance(time.Second, 100*time.Millisecond)
	return cl, m
}

// health returns node's detector state, or -1 if untracked.
func health(m *Monitor, node string) NodeHealth {
	for _, c := range m.NodeConditions() {
		if c.Node == node {
			return c.Health
		}
	}
	return NodeHealth(-1)
}

func TestDetectorTransitionsAndRecovery(t *testing.T) {
	cl, m := healSetup(t)
	_ = cl
	// node-0's manager is unreachable for four consecutive polls.
	m.Faults = faultWindow(faults.KindStats, "node-0", 4*time.Second, 22*time.Second)

	m.Poll(5 * time.Second)
	if got := health(m, "node-0"); got != NodeHealthy {
		t.Fatalf("after 1 miss: health = %v, want healthy", got)
	}
	m.Poll(10 * time.Second)
	if got := health(m, "node-0"); got != NodeSuspect {
		t.Fatalf("after 2 misses: health = %v, want suspect", got)
	}
	m.Poll(15 * time.Second)
	if got := health(m, "node-0"); got != NodeSuspect {
		t.Fatalf("after 3 misses: health = %v, want suspect", got)
	}
	m.Poll(20 * time.Second)
	if got := health(m, "node-0"); got != NodeDead {
		t.Fatalf("after 4 misses: health = %v, want dead", got)
	}

	// The window closes at 22s; the next successful poll resurrects the node.
	m.Poll(25 * time.Second)
	if got := health(m, "node-0"); got != NodeHealthy {
		t.Fatalf("after recovery: health = %v, want healthy", got)
	}
	rec := m.Recovery()
	if rec.Suspected != 1 || rec.DeclaredDead != 1 || rec.Recovered != 1 {
		t.Errorf("recovery counts = %+v", rec)
	}
}

func TestDetectorDisabledNeverSuspects(t *testing.T) {
	cl, m := setup(t, nil)
	_ = m.AddService(spec("a"), 0.5)
	_ = m.DeployInitial("a", 0)
	cl.Advance(time.Second, 100*time.Millisecond)
	m.Faults = faultWindow(faults.KindStats, "node-0", 0, time.Hour)

	for _, at := range []time.Duration{5, 10, 15, 20, 25} {
		m.Poll(at * time.Second)
	}
	rec := m.Recovery()
	if rec.Suspected != 0 || rec.DeclaredDead != 0 {
		t.Errorf("disabled self-healing still detected: %+v", rec)
	}
}

// TestLimboReplicasStayInSnapshot: between the first missed poll and the
// death verdict the unreachable node's replicas must stay visible to the
// algorithm (from cached stats), so an undecided outage cannot trigger a
// scale-out stampede.
func TestLimboReplicasStayInSnapshot(t *testing.T) {
	_, m := healSetup(t)
	m.Sample()
	m.Faults = faultWindow(faults.KindStats, "node-0", 4*time.Second, time.Hour)

	algo := m.algo.(*recordingAlgo)
	m.Poll(5 * time.Second)  // miss 1
	m.Poll(10 * time.Second) // miss 2: suspect
	m.Poll(15 * time.Second) // miss 3: still suspect

	for i, snap := range algo.snaps {
		if len(snap.Services) != 1 {
			t.Fatalf("snapshot %d: services = %d", i, len(snap.Services))
		}
		if got := len(snap.Services[0].Replicas); got != 2 {
			t.Fatalf("snapshot %d: replicas = %d, want 2 (limbo retention)", i, got)
		}
	}

	// The death verdict excises the replica.
	m.Poll(20 * time.Second)
	last := algo.snaps[len(algo.snaps)-1]
	if got := len(last.Services[0].Replicas); got != 1 {
		t.Errorf("post-death snapshot replicas = %d, want 1", got)
	}
}

// TestDeadNodeReplicasReplacedAfterCooldown: a machine that vanishes from
// the cluster is declared dead after DeadAfter missed polls; its replica is
// re-placed on a surviving node, but only after the anti-flap cooldown.
func TestDeadNodeReplicasReplacedAfterCooldown(t *testing.T) {
	cl, m := healSetup(t)
	if _, err := cl.RemoveNode("node-0"); err != nil {
		t.Fatal(err)
	}

	for _, at := range []time.Duration{5, 10, 15, 20} {
		m.Poll(at * time.Second)
	}
	rec := m.Recovery()
	if rec.DeclaredDead != 1 || rec.ReplicasLost != 1 {
		t.Fatalf("recovery counts after death = %+v", rec)
	}
	if got := len(m.Replicas("a")); got != 1 {
		t.Fatalf("replicas after death = %d, want 1", got)
	}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending reconciles = %d, want 1", m.PendingRetries())
	}

	// Cooldown is 10s from the death verdict at 20s: the 25s poll must not
	// re-place yet, the 30s poll must.
	m.Poll(25 * time.Second)
	if got := len(m.Replicas("a")); got != 1 {
		t.Fatalf("replica re-placed before cooldown elapsed (replicas = %d)", got)
	}
	m.Poll(30 * time.Second)
	reps := m.Replicas("a")
	if len(reps) != 2 {
		t.Fatalf("replicas after reconcile = %d, want 2", len(reps))
	}
	for _, r := range reps {
		if r.NodeID == "node-0" {
			t.Errorf("replacement placed on the dead node")
		}
	}
	rec = m.Recovery()
	if rec.Replaced != 1 {
		t.Errorf("Replaced = %d, want 1", rec.Replaced)
	}
	// The reconcile's first execution is not a retry.
	if c := m.Counts(); c.Retries != 0 {
		t.Errorf("Retries = %d, want 0", c.Retries)
	}
}

// TestAntiFlapCancelsQueuedReconcile: a node declared dead that recovers
// within the cooldown gets its queued re-placements cancelled and its
// still-running replicas re-adopted — zero duplicate placements.
func TestAntiFlapCancelsQueuedReconcile(t *testing.T) {
	_, m := healSetup(t)
	// Unreachable long enough to be declared dead (20s), back before the
	// 10s cooldown expires at 30s.
	m.Faults = faultWindow(faults.KindStats, "node-0", 4*time.Second, 22*time.Second)

	for _, at := range []time.Duration{5, 10, 15, 20} {
		m.Poll(at * time.Second)
	}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending reconciles = %d, want 1", m.PendingRetries())
	}

	m.Poll(25 * time.Second) // poll OK: recovery inside the cooldown
	if m.PendingRetries() != 0 {
		t.Fatalf("reconcile not cancelled on recovery (pending = %d)", m.PendingRetries())
	}
	// Past the (now cancelled) cooldown deadline: no duplicate placement.
	m.Poll(30 * time.Second)
	m.Poll(35 * time.Second)
	if got := len(m.Replicas("a")); got != 2 {
		t.Fatalf("replicas after flap = %d, want exactly 2 (no duplicates)", got)
	}
	rec := m.Recovery()
	if rec.ReconcileCancelled != 1 || rec.Readopted != 1 || rec.Replaced != 0 {
		t.Errorf("recovery counts = %+v", rec)
	}
}

// TestStaleReplicaDrainedAfterReplacement: if the reconciler has already
// re-placed a replica when its home node resurfaces, the stale original is
// drained instead of re-adopted.
func TestStaleReplicaDrainedAfterReplacement(t *testing.T) {
	_, m := healSetup(t)
	// Unreachable past the cooldown: dead at 20s, re-placed at 30s, back
	// at 35s.
	m.Faults = faultWindow(faults.KindStats, "node-0", 4*time.Second, 32*time.Second)

	for _, at := range []time.Duration{5, 10, 15, 20, 25, 30} {
		m.Poll(at * time.Second)
	}
	rec := m.Recovery()
	if rec.Replaced != 1 {
		t.Fatalf("Replaced = %d, want 1 before resurrection", rec.Replaced)
	}

	m.Poll(35 * time.Second)
	rec = m.Recovery()
	if rec.StaleDrained != 1 || rec.Readopted != 0 {
		t.Errorf("recovery counts = %+v (want the stale original drained)", rec)
	}
	reps := m.Replicas("a")
	if len(reps) != 2 {
		t.Fatalf("replicas after drain = %d, want 2", len(reps))
	}
	for _, r := range reps {
		if r.NodeID == "node-0" {
			t.Errorf("stale replica on node-0 still in the service")
		}
	}
}

// TestCheckpointRestoreKeepsReconcilePlan: a monitor restarted from a
// checkpoint keeps the queued re-placements and executes them on schedule.
func TestCheckpointRestoreKeepsReconcilePlan(t *testing.T) {
	cl, m := healSetup(t)
	if _, err := cl.RemoveNode("node-0"); err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{5, 10, 15, 20} {
		m.Poll(at * time.Second)
		m.MaybeCheckpoint(at * time.Second)
	}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending reconciles = %d, want 1", m.PendingRetries())
	}

	m.Restart(22 * time.Second)
	if m.PendingRetries() != 1 {
		t.Fatalf("pending reconciles after restore = %d, want 1", m.PendingRetries())
	}
	m.Poll(30 * time.Second)
	if got := len(m.Replicas("a")); got != 2 {
		t.Errorf("replicas after restored reconcile = %d, want 2", got)
	}
	rec := m.Recovery()
	if rec.CheckpointRestores != 1 || rec.ColdRestarts != 0 || rec.Replaced != 1 {
		t.Errorf("recovery counts = %+v", rec)
	}
}

// TestColdRestartLosesReconcilePlan: without checkpointing a restart
// rediscovers replicas from the cluster but forgets the reconcile queue —
// the lost replica is never replaced.
func TestColdRestartLosesReconcilePlan(t *testing.T) {
	cl, m := healSetup(t)
	m.SelfHeal.Checkpoint = false
	if _, err := cl.RemoveNode("node-0"); err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{5, 10, 15, 20} {
		m.Poll(at * time.Second)
		m.MaybeCheckpoint(at * time.Second)
	}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending reconciles = %d, want 1", m.PendingRetries())
	}

	m.Restart(22 * time.Second)
	if m.PendingRetries() != 0 {
		t.Fatalf("cold restart kept %d pending reconciles", m.PendingRetries())
	}
	// Rediscovery still finds the surviving replica.
	if got := len(m.Replicas("a")); got != 1 {
		t.Fatalf("replicas after cold restart = %d, want 1", got)
	}
	m.Poll(30 * time.Second)
	if got := len(m.Replicas("a")); got != 1 {
		t.Errorf("cold restart executed a forgotten reconcile (replicas = %d)", got)
	}
	rec := m.Recovery()
	if rec.ColdRestarts != 1 || rec.CheckpointRestores != 0 || rec.Replaced != 0 {
		t.Errorf("recovery counts = %+v", rec)
	}
}

// TestPartitionStatsDirectionOnly: a stats-direction partition blinds the
// monitor (missed polls accumulate) but actions still go through.
func TestPartitionStatsDirectionOnly(t *testing.T) {
	_, m := healSetup(t)
	m.Faults = faults.New(faults.Config{Windows: []faults.Window{{
		Kind: faults.KindPartition, Target: "node-0",
		Direction: faults.DirectionStats, From: 0, To: time.Hour,
	}}})

	m.Poll(5 * time.Second)
	m.Poll(10 * time.Second)
	if got := health(m, "node-0"); got != NodeSuspect {
		t.Fatalf("stats partition not detected: health = %v", got)
	}

	// An action aimed at the partitioned node still executes.
	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-0", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(15 * time.Second)
	algo.plan = core.Plan{}
	if got := len(m.Replicas("a")); got != 3 {
		t.Errorf("replicas = %d, want 3 (actions unaffected by stats partition)", got)
	}
}

// TestPartitionActionsDirectionOnly: an actions-direction partition defers
// actions on the node (requeued, landing after the window) while stats keep
// flowing — the detector never fires.
func TestPartitionActionsDirectionOnly(t *testing.T) {
	_, m := healSetup(t)
	m.Faults = faults.New(faults.Config{Windows: []faults.Window{{
		Kind: faults.KindPartition, Target: "node-0",
		Direction: faults.DirectionActions, From: 0, To: 12 * time.Second,
	}}})

	algo := m.algo.(*recordingAlgo)
	algo.plan = core.Plan{Actions: []core.Action{
		core.ScaleOut{Service: "a", NodeID: "node-0", Alloc: resources.Vector{CPU: 1, MemMB: 512}},
	}}
	m.Poll(10 * time.Second)
	algo.plan = core.Plan{}

	if got := len(m.Replicas("a")); got != 2 {
		t.Fatalf("action executed through the partition (replicas = %d)", got)
	}
	if m.PendingRetries() != 1 {
		t.Fatalf("pending = %d, want 1 (action deferred)", m.PendingRetries())
	}
	if got := health(m, "node-0"); got != NodeHealthy {
		t.Fatalf("stats flow but node marked %v", got)
	}

	// The retry lands once the partition heals.
	m.Poll(15 * time.Second)
	if got := len(m.Replicas("a")); got != 3 {
		t.Errorf("replicas = %d, want 3 after partition heals", got)
	}
}

// TestReconcileSkipsDeadNodes: replacement placement must never pick a node
// currently marked dead even if the cluster still lists it.
func TestReconcileSkipsDeadNodes(t *testing.T) {
	_, m := healSetup(t)
	// node-2 hosts nothing but is unreachable — it must not attract the
	// replacement for node-0's lost replica.
	m.Faults = faults.New(faults.Config{Windows: []faults.Window{
		{Kind: faults.KindStats, Target: "node-0", From: 4 * time.Second, To: time.Hour},
		{Kind: faults.KindStats, Target: "node-2", From: 4 * time.Second, To: time.Hour},
	}})
	for _, at := range []time.Duration{5, 10, 15, 20, 25, 30} {
		m.Poll(at * time.Second)
	}
	reps := m.Replicas("a")
	if len(reps) != 2 {
		t.Fatalf("replicas = %d, want 2 after reconcile", len(reps))
	}
	for _, r := range reps {
		if r.NodeID != "node-1" {
			t.Errorf("replica on %s, want node-1 (only live node)", r.NodeID)
		}
	}
}
