package monitor

import (
	"testing"
	"time"

	"hyscale/internal/cluster"
	"hyscale/internal/container"
	"hyscale/internal/core"
	"hyscale/internal/resources"
	"hyscale/internal/workload"
)

type planeNoopAlgo struct{}

func (planeNoopAlgo) Name() string                   { return "static" }
func (planeNoopAlgo) Decide(core.Snapshot) core.Plan { return core.Plan{} }

func planeSpec(name string, cpu float64, min, max int) workload.ServiceSpec {
	return workload.ServiceSpec{
		Name: name, Kind: workload.KindCPUBound,
		CPUPerRequest: 0.1, MemPerRequest: 10, BaselineMemMB: 100,
		InitialReplicaCPU: cpu, InitialReplicaMemMB: 256,
		MinReplicas: min, MaxReplicas: max, Timeout: 30 * time.Second,
	}
}

func newTestPlane(t *testing.T, nodes, zones int) (*Plane, *cluster.Cluster) {
	t.Helper()
	cl, err := cluster.NewHomogeneous(nodes, cluster.DefaultNodeConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlane(cl, planeNoopAlgo{}, PlaneConfig{Zones: zones})
	if err != nil {
		t.Fatal(err)
	}
	return p, cl
}

func TestPlanePartitionsNodesContiguously(t *testing.T) {
	p, _ := newTestPlane(t, 10, 3)
	sizes := []int{}
	total := 0
	for _, s := range p.ZoneSummaries() {
		sizes = append(sizes, s.Nodes)
		total += s.Nodes
	}
	if total != 10 {
		t.Fatalf("zones cover %d nodes, want 10", total)
	}
	want := []int{3, 3, 4}
	for i, n := range want {
		if sizes[i] != n {
			t.Fatalf("zone sizes = %v, want %v", sizes, want)
		}
	}
	// node-0..2 → zone 0, node-3..5 → zone 1, node-6..9 → zone 2.
	for id, z := range map[string]int{"node-0": 0, "node-2": 0, "node-3": 1, "node-9": 2} {
		if got := p.zoneOfNode[id]; got != z {
			t.Fatalf("zoneOfNode[%s] = %d, want %d", id, got, z)
		}
	}
	if got := len(p.NodeConditions()); got != 10 {
		t.Fatalf("NodeConditions() covers %d nodes, want 10", got)
	}
}

func TestPlaneAssignsServicesRoundRobin(t *testing.T) {
	p, _ := newTestPlane(t, 8, 4)
	for i, name := range []string{"a", "b", "c", "d", "e", "f"} {
		if err := p.AddService(planeSpec(name, 1, 1, 4), 0.5); err != nil {
			t.Fatal(err)
		}
		if got, want := p.ZoneOfService(name), i%4; got != want {
			t.Fatalf("service %s assigned to zone %d, want %d", name, got, want)
		}
	}
	if err := p.AddService(planeSpec("a", 1, 1, 4), 0.5); err == nil {
		t.Fatal("duplicate service registration should fail")
	}
}

func TestPlaneLeasesIdleNodeWhenZoneIsFull(t *testing.T) {
	// Zone 0 owns node-0/node-1 (4 CPU each); three 3-CPU replicas need a
	// third machine, which must be leased from zone 1.
	p, _ := newTestPlane(t, 4, 2)
	if err := p.AddService(planeSpec("web", 3, 3, 6), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := p.DeployInitial("web", 0); err != nil {
		t.Fatalf("DeployInitial should lease capacity: %v", err)
	}
	if got := p.ReplicaCount("web"); got != 3 {
		t.Fatalf("ReplicaCount = %d, want 3", got)
	}
	if c := p.Cross(); c.NodeLeases != 1 {
		t.Fatalf("NodeLeases = %d, want 1", c.NodeLeases)
	}
	zs := p.ZoneSummaries()
	if zs[0].Nodes != 3 || zs[1].Nodes != 1 {
		t.Fatalf("zone sizes after lease = %d/%d, want 3/1", zs[0].Nodes, zs[1].Nodes)
	}
	// The donor must keep its last machine: with zone 1 down to one node,
	// further lease attempts must fail rather than drain it to zero.
	before := p.Cross().NodeLeases
	if p.leaseInto(0, resources.Vector{CPU: 3}) {
		t.Fatal("lease should fail when the donor would drop to zero nodes")
	}
	if p.Cross().NodeLeases != before {
		t.Fatal("failed lease must not count as a lease")
	}
	if p.Cross().LeaseFailures == 0 {
		t.Fatal("failed lease should count as a lease failure")
	}
}

func TestPlaneProactiveLeaseBeforePoll(t *testing.T) {
	// The scaling algorithm silently skips scale-outs with no fitting node,
	// so a starved zone must receive an idle machine BEFORE Decide runs.
	p, cl := newTestPlane(t, 4, 2)
	if err := p.AddService(planeSpec("web", 1, 1, 8), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := p.DeployInitial("web", 0); err != nil {
		t.Fatal(err)
	}
	// Exhaust zone 0's headroom with pinned ballast so no node retains a
	// full core.
	for _, id := range []string{"node-0", "node-1"} {
		n := cl.Node(id)
		free := n.Available()
		ballast := container.New("ballast-"+id, planeSpec("ballast-"+id, 1, 1, 1), id,
			resources.Vector{CPU: free.CPU - 0.5, MemMB: 64}, 0)
		ballast.MaybeStart(0)
		if err := n.AddContainer(ballast); err != nil {
			t.Fatal(err)
		}
	}
	p.Sample()
	p.Poll(5 * time.Second)
	if c := p.Cross(); c.NodeLeases != 1 {
		t.Fatalf("NodeLeases = %d, want 1 proactive lease", c.NodeLeases)
	}
	zs := p.ZoneSummaries()
	if zs[0].Nodes != 3 {
		t.Fatalf("zone 0 has %d nodes after proactive lease, want 3", zs[0].Nodes)
	}
}

func TestPlaneStartReplicaRejectsCrossZonePin(t *testing.T) {
	p, _ := newTestPlane(t, 4, 2)
	if err := p.AddService(planeSpec("web", 1, 1, 4), 0.5); err != nil {
		t.Fatal(err)
	}
	// web lives in zone 0; node-3 belongs to zone 1.
	if err := p.StartReplica("web", "node-3", resources.Vector{CPU: 1, MemMB: 256}, 0); err == nil {
		t.Fatal("cross-zone pin should be rejected")
	}
	if err := p.StartReplica("web", "node-1", resources.Vector{CPU: 1, MemMB: 256}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneAttachDetachKeepsZonesBalanced(t *testing.T) {
	p, cl := newTestPlane(t, 4, 2)
	if err := cl.AddNode(cluster.DefaultNodeConfig("node-new")); err != nil {
		t.Fatal(err)
	}
	p.AttachNode(cl.Node("node-new"))
	if got := p.zoneOfNode["node-new"]; got != 0 {
		t.Fatalf("new node assigned to zone %d, want 0 (fewest-nodes tie → lowest)", got)
	}
	p.DetachNode("node-new")
	if _, ok := p.zoneOfNode["node-new"]; ok {
		t.Fatal("detached node still mapped to a zone")
	}
	if got := len(p.NodeConditions()); got != 4 {
		t.Fatalf("NodeConditions() covers %d nodes after detach, want 4", got)
	}
}
