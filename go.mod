module hyscale

go 1.22
