// Algocompare: the paper's core claim in one program. Run the same bursty
// mixed CPU+memory workload under all three autoscalers (Kubernetes HPA,
// HYSCALE_CPU, HYSCALE_CPU+Mem) and compare response times and failure
// rates — reproducing in miniature the Figure 7 result that memory-blind
// scaling falls off the swap cliff while the memory-aware hybrid does not.
//
//	go run ./examples/algocompare
package main

import (
	"fmt"
	"log"
	"time"

	"hyscale"
)

func main() {
	algos := []hyscale.AlgorithmName{
		hyscale.AlgoKubernetes,
		hyscale.AlgoHyScaleCPU,
		hyscale.AlgoHyScaleCPUMem,
	}

	fmt.Printf("%-12s %-14s %-10s %-10s\n", "algorithm", "mean response", "failed %", "actions (V/out/in)")
	for _, algo := range algos {
		sim, err := hyscale.NewSimulation(hyscale.SimConfig{
			Seed:      7,
			Nodes:     19,
			Algorithm: algo,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Five mixed services with heavy per-request memory footprints and
		// spiky load: each burst pushes fixed-size replicas past their
		// memory limit.
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("mixed-%d", i)
			spec := hyscale.MixedService(name, 0.14, 110)
			load := hyscale.BurstLoad(5, 16, 8*time.Minute, 2*time.Minute)
			if err := sim.AddService(spec, 0.5, load); err != nil {
				log.Fatal(err)
			}
		}

		if err := sim.Run(20 * time.Minute); err != nil {
			log.Fatal(err)
		}

		r := sim.Report()
		a := sim.Actions()
		fmt.Printf("%-12s %-14v %-10.2f %d/%d/%d\n",
			algo, r.MeanLatency.Round(time.Millisecond), r.FailedPercent(),
			a.Vertical, a.ScaleOuts, a.ScaleIns)
	}
}
