// Bitbrains: replay the GWA-T-12 Bitbrains "Rnd" data-centre workload
// (§VI-B) against the CPU+memory hybrid autoscaler. By default the example
// uses the synthetic twin of the trace; point -dir at a directory of real
// GWA-T-12 per-VM CSV files to replay the genuine dataset.
//
//	go run ./examples/bitbrains
//	go run ./examples/bitbrains -dir /data/bitbrains/rnd/2013-7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hyscale"
	"hyscale/internal/loadgen"
	"hyscale/internal/trace"
)

func main() {
	dir := flag.String("dir", "", "directory of real GWA-T-12 per-VM CSV files (empty = synthetic twin)")
	dur := flag.Duration("duration", 30*time.Minute, "simulated duration")
	flag.Parse()

	var tr *trace.Trace
	if *dir != "" {
		var err error
		tr, err = trace.LoadGWADir(os.DirFS("/"), (*dir)[1:])
		if err != nil {
			log.Fatalf("loading real trace: %v", err)
		}
		fmt.Printf("replaying real trace: %d VM series\n", len(tr.Series))
	} else {
		cfg := trace.DefaultRndConfig(1)
		cfg.Duration = *dur
		tr = trace.GenerateRnd(cfg)
		fmt.Printf("replaying synthetic Rnd twin: %d VM series\n", len(tr.Series))
	}

	sim, err := hyscale.NewSimulation(hyscale.SimConfig{
		Seed:      1,
		Nodes:     19,
		Algorithm: hyscale.AlgoHyScaleCPUMem,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Partition the VM series into 10 groups; each group's combined CPU and
	// memory usage drives one mixed microservice's request rate.
	parts := tr.Partition(10)
	for i, part := range parts {
		name := fmt.Sprintf("tenant-%02d", i)
		spec := hyscale.MixedService(name, 0.12, 90)
		s := part
		pattern := loadgen.Func(func(at time.Duration) float64 {
			cpu, mem := s.At(at)
			return 14 * (0.6*cpu + 0.4*mem) / 40
		})
		if err := sim.AddService(spec, 0.5, pattern); err != nil {
			log.Fatal(err)
		}
	}

	if err := sim.Run(*dur); err != nil {
		log.Fatal(err)
	}

	fmt.Println("aggregate:", sim.Report())
	a := sim.Actions()
	fmt.Printf("scaling actions: %d vertical, %d scale-outs, %d scale-ins\n",
		a.Vertical, a.ScaleOuts, a.ScaleIns)
}
