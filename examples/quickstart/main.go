// Quickstart: run one CPU-bound microservice under the HYSCALE_CPU+Mem
// hybrid autoscaler for 10 simulated minutes of wave-shaped load and print
// the user-perceived performance report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"hyscale"
)

func main() {
	// A 19-worker cluster (the paper's testbed minus the five LB nodes)
	// managed by the CPU+memory hybrid algorithm.
	sim, err := hyscale.NewSimulation(hyscale.SimConfig{
		Seed:      42,
		Nodes:     19,
		Algorithm: hyscale.AlgoHyScaleCPUMem,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One microservice consuming 120 ms of CPU per request, targeted at
	// 50 % utilization, under a ±30 % sinusoidal load around 15 req/s.
	svc := hyscale.CPUBoundService("api", 0.12)
	if err := sim.AddService(svc, 0.5, hyscale.WaveLoad(15, 0.3, 4*time.Minute)); err != nil {
		log.Fatal(err)
	}

	// Ten minutes of simulated time run in milliseconds of wall time.
	if err := sim.Run(10 * time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println("aggregate:", sim.Report())
	fmt.Println("replicas at end:", sim.Replicas("api"))
	a := sim.Actions()
	fmt.Printf("scaling actions: %d vertical, %d scale-outs, %d scale-ins\n",
		a.Vertical, a.ScaleOuts, a.ScaleIns)
}
