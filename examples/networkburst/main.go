// Networkburst: demonstrates the dedicated network scaling algorithm
// (§IV-A2) against the Kubernetes CPU baseline on bandwidth-hungry services
// under high-burst traffic — the Figure 8b scenario. The network scaler
// reads egress bandwidth and scales out before the tx queues saturate; the
// CPU-driven baseline reacts to a weak proxy signal and lags.
//
//	go run ./examples/networkburst
package main

import (
	"fmt"
	"log"
	"time"

	"hyscale"
)

func main() {
	for _, algo := range []hyscale.AlgorithmName{hyscale.AlgoKubernetes, hyscale.AlgoNetwork} {
		sim, err := hyscale.NewSimulation(hyscale.SimConfig{
			Seed:      3,
			Nodes:     19,
			Algorithm: algo,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Streaming-style services: 6 Mb responses shaped at 60 Mbps per
		// replica, bursting to nearly 3x base rate.
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("stream-%d", i)
			spec := hyscale.NetworkBoundService(name, 6, 60)
			load := hyscale.BurstLoad(4, 11, 10*time.Minute, 2*time.Minute)
			if err := sim.AddService(spec, 0.5, load); err != nil {
				log.Fatal(err)
			}
		}

		if err := sim.Run(25 * time.Minute); err != nil {
			log.Fatal(err)
		}

		r := sim.Report()
		fmt.Printf("%-11s mean=%-8v p95=%-8v failed=%.2f%%\n",
			algo,
			r.MeanLatency.Round(time.Millisecond),
			r.P95Latency.Round(time.Millisecond),
			r.FailedPercent())
	}
}
