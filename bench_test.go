package hyscale

// One benchmark per table/figure of the paper's evaluation. Each benchmark
// runs the corresponding experiment harness at reduced scale (macro runs are
// 12 simulated minutes instead of the paper's hour; `cmd/hyscale-bench
// -all -scale 1` runs them paper-sized) and reports the figure's headline
// quantity as a custom metric, so `go test -bench=. -benchmem` regenerates
// the whole evaluation:
//
//	BenchmarkFig2HorizontalCPU    — §III-A  (Fig. 2)
//	BenchmarkMemScaling           — §III-B  (text result)
//	BenchmarkFig3HorizontalNet    — §III-C  (Fig. 3)
//	BenchmarkFig6CPUBound*        — §VI     (Fig. 6a/6b)
//	BenchmarkFig7Mixed*           — §VI     (Fig. 7a/7b)
//	BenchmarkFig8NetworkBound*    — §VI     (Fig. 8a/8b)
//	BenchmarkFig9TraceShape       — §VI-B   (Fig. 9)
//	BenchmarkFig10Bitbrains       — §VI-B   (Fig. 10)

import (
	"testing"

	"hyscale/internal/experiments"
)

func benchOpts() experiments.Options { return experiments.Options{Seed: 1, Scale: 0.2} }

func BenchmarkFig2HorizontalCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ContentionOverheadPercent(), "contention-%")
		b.ReportMetric(float64(r.HorizontalMean[len(r.HorizontalMean)-1])/float64(r.HorizontalMean[0]), "slowdown-16x")
	}
}

func BenchmarkMemScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMemScaling(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Mean[2])/float64(r.Mean[0]), "swap-cliff-x")
	}
}

func BenchmarkFig3HorizontalNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.HorizontalMean[0])/float64(r.HorizontalMean[3]), "gain-at-8x")
	}
}

func benchMacro(b *testing.B, run func(experiments.LoadShape, experiments.Options) (*experiments.MacroResult, error),
	shape experiments.LoadShape, baseline, challenger string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run(shape, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup(baseline, challenger), "speedup-x")
		b.ReportMetric(r.Outcome(baseline).Summary.FailedPercent(), baseline+"-failed-%")
		b.ReportMetric(r.Outcome(challenger).Summary.FailedPercent(), challenger+"-failed-%")
	}
}

func BenchmarkFig6CPUBoundLowBurst(b *testing.B) {
	benchMacro(b, experiments.RunFig6, experiments.LowBurst, "kubernetes", "hybridmem")
}

func BenchmarkFig6CPUBoundHighBurst(b *testing.B) {
	benchMacro(b, experiments.RunFig6, experiments.HighBurst, "kubernetes", "hybridmem")
}

func BenchmarkFig7MixedLowBurst(b *testing.B) {
	benchMacro(b, experiments.RunFig7, experiments.LowBurst, "kubernetes", "hybridmem")
}

func BenchmarkFig7MixedHighBurst(b *testing.B) {
	benchMacro(b, experiments.RunFig7, experiments.HighBurst, "kubernetes", "hybridmem")
}

func BenchmarkFig8NetworkBoundLowBurst(b *testing.B) {
	benchMacro(b, experiments.RunFig8, experiments.LowBurst, "kubernetes", "network")
}

func BenchmarkFig8NetworkBoundHighBurst(b *testing.B) {
	benchMacro(b, experiments.RunFig8, experiments.HighBurst, "kubernetes", "network")
}

func BenchmarkFig9TraceShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9(nil, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean.CPUPercent[0], "cpu-%-t0")
		b.ReportMetric(r.Mean.MaxCPU(), "cpu-%-peak")
	}
}

func BenchmarkFig10Bitbrains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10(nil, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup("kubernetes", "hybridmem"), "speedup-x")
		b.ReportMetric(r.Speedup("hybrid", "kubernetes"), "k8s-over-hybrid-x")
	}
}

// --- Extension benches (ablations and cost analyses; DESIGN.md §7) --------

func BenchmarkAblationHyScaleMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup("hybridmem-noreclaim", "hybridmem"), "reclaim-gain-x")
		b.ReportMetric(r.Speedup("hybridmem-vertical-only", "hybridmem"), "horizontal-gain-x")
	}
}

func BenchmarkMonitorPeriodSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMonitorPeriodSensitivity(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup("hybridmem@30s", "hybridmem@5s"), "5s-over-30s-x")
		b.ReportMetric(r.Speedup("kubernetes@5s", "hybridmem@5s"), "fair-speedup-x")
	}
}

func BenchmarkPlacementSpreadVsBinpack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPlacement(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		spread := r.Outcome("hybridmem/spread")
		pack := r.Outcome("hybridmem/binpack")
		b.ReportMetric(spread.Cost.MachineHours-pack.Cost.MachineHours, "machine-hours-saved")
		b.ReportMetric(r.Speedup("hybridmem/binpack", "hybridmem/spread"), "spread-speedup-x")
	}
}

func BenchmarkNodeChurnAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunNodeChurn(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Outcome("kubernetes").Summary.FailedPercent(), "k8s-failed-%")
		b.ReportMetric(r.Outcome("hybridmem").Summary.FailedPercent(), "hybridmem-failed-%")
	}
}
