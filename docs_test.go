package hyscale

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the repository documents whose links CI verifies.
var docFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md", "docs/ALGORITHMS.md"}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every relative markdown link in the top-level
// docs points at a file that exists (external URLs and in-page anchors are
// skipped). This is the docs job's link check; it also runs with the normal
// test suite so broken links fail before CI.
func TestMarkdownLinks(t *testing.T) {
	for _, doc := range docFiles {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			// Relative links resolve against the document's own directory,
			// the way GitHub renders them.
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, m[0], err)
			}
		}
	}
}

// TestDocsMentionPackagesThatExist keeps DESIGN.md's inventory honest: every
// `internal/...` path it names must be a real package directory.
func TestDocsMentionPackagesThatExist(t *testing.T) {
	pkgRef := regexp.MustCompile("`(internal/[a-z]+)`")
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range pkgRef.FindAllStringSubmatch(string(body), -1) {
			if fi, err := os.Stat(m[1]); err != nil || !fi.IsDir() {
				t.Errorf("%s references %s, which is not a package directory", doc, m[1])
			}
		}
	}
}
