// Command hyscale-bench regenerates every table and figure of the paper's
// evaluation. Run with -all to reproduce the whole evaluation and emit a
// markdown report (the source of EXPERIMENTS.md), or with -exp to run a
// single experiment:
//
//	hyscale-bench -exp fig2            # §III-A CPU scaling
//	hyscale-bench -exp fig6 -scale 0.2 # Fig. 6 at 20 % duration
//	hyscale-bench -all -md report.md   # full evaluation + markdown report
//
// -report DIR additionally journals every run's scaling decisions and
// per-service time series (see internal/obs) and writes a report directory:
// decisions/<run>.jsonl, series/<run>.csv, and report.md with sparkline
// charts and decision timelines. Artifact bytes are identical for any
// -parallel worker count.
//
// -perf runs the pinned performance suite instead of an experiment and
// writes a BENCH_<n>.json report (see internal/perf and DESIGN.md §12);
// -cpuprofile/-memprofile capture pprof profiles of whatever mode ran.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hyscale/internal/experiments"
	"hyscale/internal/obs"
	"hyscale/internal/perf"
)

func main() { os.Exit(realMain()) }

// realMain carries the exit code back to main so deferred profile writers
// run on every path; a bare os.Exit would silently truncate the profiles.
func realMain() int {
	var (
		exp        = flag.String("exp", "", "experiment to run: fig2|mem|fig3|fig6|fig7|fig8|fig9|fig10|macro|... (empty with -all runs everything)")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.Float64("scale", 1.0, "duration scale (1.0 = paper-sized, one hour macro runs)")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 0, "max simulation runs in flight (<=0 uses GOMAXPROCS); results are identical for any value")
		md         = flag.String("md", "", "also write a markdown report to this file")
		csv        = flag.String("csv", "", "also write each table as CSV into this directory")
		report     = flag.String("report", "", "journal every run and write decision logs, time-series CSVs and a rendered report into this directory")
		timing     = flag.Bool("timing", true, "print per-run wall-clock timings after each experiment")
		perfMode   = flag.Bool("perf", false, "run the pinned performance suite and write a BENCH_<n>.json report instead of an experiment")
		perfOut    = flag.String("perf-out", "BENCH_8.json", "output path for the -perf report")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if !*all && *exp == "" && !*perfMode {
		fmt.Fprintln(os.Stderr, "usage: hyscale-bench -all | -exp <id> | -perf [-scale S] [-seed N] [-parallel N] [-md file] [-report dir]")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyscale-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hyscale-bench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hyscale-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // snapshot live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hyscale-bench: %v\n", err)
			}
		}()
	}

	if *perfMode {
		return runPerf(*seed, *scale, *perfOut)
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallel: *parallel, Observe: *report != ""}
	ids := []string{
		"fig2", "mem", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation", "monitorperiod", "placement", "churn", "stateful",
		"fig3sweep", "targetutil", "hetero", "predictive", "lbpolicy",
		"chaos", "recovery", "cascade", "manager", "dr",
	}
	if !*all {
		ids = strings.Split(*exp, ",")
	}

	// All stdout goes through one buffered writer, and each experiment's
	// tables and timing footer are assembled into a single block before being
	// written, so nothing can interleave mid-experiment regardless of
	// -parallel.
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var tables []*experiments.Table
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		expStart := time.Now()
		ts, err := run(id, opts)
		if err != nil {
			out.Flush()
			fmt.Fprintf(os.Stderr, "hyscale-bench: %s: %v\n", id, err)
			return 1
		}
		var block strings.Builder
		for _, t := range ts {
			block.WriteString(t.String())
			block.WriteByte('\n')
			tables = append(tables, t)
		}
		// Timing is measurement metadata, printed to stdout only: tables and
		// the -md report stay byte-identical across -parallel settings.
		runTimings := experiments.TakeTimings()
		if *timing {
			var runTotal time.Duration
			for _, rt := range runTimings {
				runTotal += rt.Elapsed
			}
			fmt.Fprintf(&block, "%s: %d runs, %v run-time in %v wall\n\n",
				id, len(runTimings), runTotal.Round(time.Millisecond),
				time.Since(expStart).Round(time.Millisecond))
		}
		out.WriteString(block.String())
		out.Flush()
	}
	fmt.Fprintf(out, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	out.Flush()

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hyscale-bench: %v\n", err)
			return 1
		}
		for _, t := range tables {
			path := filepath.Join(*csv, t.Slug()+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hyscale-bench: writing %s: %v\n", path, err)
				return 1
			}
		}
		fmt.Fprintf(out, "wrote %d CSV files to %s\n", len(tables), *csv)
		out.Flush()
	}

	if *md != "" {
		var b strings.Builder
		b.WriteString("# HyScale reproduction report\n\n")
		fmt.Fprintf(&b, "Generated by `hyscale-bench -all -scale %g -seed %d`.\n\n", *scale, *seed)
		for _, t := range tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		if err := os.WriteFile(*md, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hyscale-bench: writing %s: %v\n", *md, err)
			return 1
		}
		fmt.Fprintf(out, "wrote %s\n", *md)
		out.Flush()
	}

	if *report != "" {
		runs := experiments.TakeArtifacts()
		if err := obs.WriteReportDir(*report, reproduceCommand(*all, ids, *scale, *seed, *report), runs); err != nil {
			fmt.Fprintf(os.Stderr, "hyscale-bench: report: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "wrote report for %d runs to %s\n", len(runs), *report)
		out.Flush()
	}
	return 0
}

// runPerf executes the pinned performance suite and writes the JSON report.
func runPerf(seed int64, scale float64, outPath string) int {
	rep, err := perf.Run(perf.Options{Seed: seed, Scale: scale, PR: 8})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyscale-bench: perf: %v\n", err)
		return 1
	}
	b, err := rep.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyscale-bench: perf: %v\n", err)
		return 1
	}
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hyscale-bench: perf: %v\n", err)
		return 1
	}
	fmt.Print(rep.Summary())
	fmt.Printf("wrote %s\n", outPath)
	return 0
}

// reproduceCommand reconstructs the canonical command line that regenerates a
// report directory. It deliberately omits -parallel: artifacts are identical
// for any worker count, and the quoted command must be too.
func reproduceCommand(all bool, ids []string, scale float64, seed int64, dir string) string {
	sel := "-all"
	if !all {
		sel = "-exp " + strings.Join(ids, ",")
	}
	return fmt.Sprintf("hyscale-bench %s -scale %g -seed %d -report %s", sel, scale, seed, dir)
}

// run executes one experiment ID and returns its rendered tables.
func run(id string, opts experiments.Options) ([]*experiments.Table, error) {
	switch id {
	case "fig2":
		r, err := experiments.RunFig2(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "mem":
		r, err := experiments.RunMemScaling(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "fig3":
		r, err := experiments.RunFig3(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "fig6", "fig7", "fig8", "macro":
		// "macro" is the canonical four-algorithm macrobenchmark (Fig. 6 under
		// both load shapes) — the CI smoke target.
		var tables []*experiments.Table
		for _, shape := range []experiments.LoadShape{experiments.LowBurst, experiments.HighBurst} {
			var (
				r   *experiments.MacroResult
				err error
			)
			switch id {
			case "fig7":
				r, err = experiments.RunFig7(shape, opts)
			case "fig8":
				r, err = experiments.RunFig8(shape, opts)
			default:
				r, err = experiments.RunFig6(shape, opts)
			}
			if err != nil {
				return nil, err
			}
			tables = append(tables, r.Table())
		}
		return tables, nil
	case "fig9":
		r, err := experiments.RunFig9(nil, opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "fig10":
		r, err := experiments.RunFig10(nil, opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "chaos":
		r, err := experiments.RunChaos(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "recovery":
		r, err := experiments.RunRecovery(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "dr":
		r, err := experiments.RunDR(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "cascade":
		r, err := experiments.RunCascade(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "manager":
		r, err := experiments.RunManager(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "scale":
		r, err := experiments.RunScale(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "fig3sweep":
		r, err := experiments.RunFig3Sweep(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "targetutil":
		r, err := experiments.RunTargetUtilSweep(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	case "hetero":
		r, err := experiments.RunHeterogeneous(opts)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{experiments.CostTableFor(r)}, nil
	case "ablation", "monitorperiod", "placement", "churn", "stateful", "predictive", "lbpolicy":
		var (
			r   *experiments.MacroResult
			err error
		)
		switch id {
		case "ablation":
			r, err = experiments.RunAblation(opts)
		case "monitorperiod":
			r, err = experiments.RunMonitorPeriodSensitivity(opts)
		case "placement":
			r, err = experiments.RunPlacement(opts)
		case "stateful":
			r, err = experiments.RunStateful(opts)
		case "predictive":
			r, err = experiments.RunPredictive(opts)
		case "lbpolicy":
			r, err = experiments.RunLBPolicy(opts)
		default:
			r, err = experiments.RunNodeChurn(opts)
		}
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{experiments.CostTableFor(r)}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}
