// Command hyscale-sim runs a single ad-hoc autoscaling simulation and prints
// per-service and aggregate request statistics — a quick way to explore how
// the algorithms behave outside the paper's fixed experiment grid.
//
//	hyscale-sim -algo hybridmem -kind mixed -services 10 -duration 20m
//	hyscale-sim -algo kubernetes -kind cpu -rps 20 -load burst
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hyscale"
	"hyscale/internal/loadgen"
	"hyscale/internal/scenario"
	"hyscale/internal/workload"
)

func main() {
	var (
		algo     = flag.String("algo", "hybridmem", "autoscaler: kubernetes|network|hybrid|hybridmem|none")
		kind     = flag.String("kind", "cpu", "service kind: cpu|mem|net|mixed")
		services = flag.Int("services", 5, "number of microservices")
		nodes    = flag.Int("nodes", 19, "worker nodes")
		rps      = flag.Float64("rps", 12, "base request rate per service")
		load     = flag.String("load", "wave", "load pattern: constant|wave|burst")
		duration = flag.Duration("duration", 15*time.Minute, "simulated duration")
		seed     = flag.Int64("seed", 1, "random seed")
		config   = flag.String("config", "", "run a JSON scenario file instead of the flag-built workload (see scenarios/)")
	)
	flag.Parse()

	if *config != "" {
		runScenario(*config)
		return
	}

	sim, err := hyscale.NewSimulation(hyscale.SimConfig{
		Seed:      *seed,
		Nodes:     *nodes,
		Algorithm: hyscale.AlgorithmName(*algo),
	})
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, *services)
	for i := 0; i < *services; i++ {
		name := fmt.Sprintf("svc-%02d", i)
		var spec workload.ServiceSpec
		switch *kind {
		case "cpu":
			spec = hyscale.CPUBoundService(name, 0.12)
		case "mem":
			spec = hyscale.MemoryBoundService(name, 40)
		case "net":
			spec = hyscale.NetworkBoundService(name, 6, 60)
		case "mixed":
			spec = hyscale.MixedService(name, 0.12, 90)
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		var pattern loadgen.Pattern
		switch *load {
		case "constant":
			pattern = hyscale.ConstantLoad(*rps)
		case "burst":
			pattern = hyscale.BurstLoad(*rps*0.5, *rps*2.75, 10*time.Minute, 2*time.Minute)
		case "wave":
			pattern = hyscale.WaveLoad(*rps, 0.3, 8*time.Minute)
		default:
			fatal(fmt.Errorf("unknown load %q", *load))
		}
		if err := sim.AddService(spec, 0.5, pattern); err != nil {
			fatal(err)
		}
		names = append(names, name)
	}

	if err := sim.Run(*duration); err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm=%s kind=%s services=%d nodes=%d duration=%v\n\n", *algo, *kind, *services, *nodes, *duration)
	for _, name := range names {
		s := sim.ServiceReport(name)
		fmt.Printf("%-8s %s  replicas=%d\n", name, s, sim.Replicas(name))
	}
	fmt.Printf("\nTOTAL    %s\n", sim.Report())
	a := sim.Actions()
	fmt.Printf("actions: scale-outs=%d scale-ins=%d vertical=%d placement-failures=%d\n",
		a.ScaleOuts, a.ScaleIns, a.Vertical, a.PlacementFailures)
}

// runScenario executes a declarative JSON scenario file.
func runScenario(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Parse(f)
	if err != nil {
		fatal(err)
	}
	w, err := sc.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario %s: algorithm=%s nodes=%d duration=%v\n\n", path, sc.Algorithm, len(w.Cluster().Nodes()), time.Duration(sc.Duration))
	for _, svc := range sc.Services {
		s := w.Recorder().SummarizeService(svc.Name)
		fmt.Printf("%-10s %s  replicas=%d\n", svc.Name, s, len(w.Monitor().Replicas(svc.Name)))
	}
	fmt.Printf("\nTOTAL      %s\n", w.Summary())
	fmt.Printf("cost: %s\n", w.CostReport())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hyscale-sim: %v\n", err)
	os.Exit(1)
}
